module recmem

go 1.24
