package recmem

import (
	"context"
	"time"
)

// Client is the backend-agnostic surface of the shared-memory emulation:
// one process's view of the register space. Two implementations exist —
// *Process (a process of the in-process simulated cluster) and
// remote.Client (a TCP connection to a live recmem-node) — and they are
// interchangeable: the same application, workload, or torture scenario runs
// against either, selected only by which Client is passed in.
//
// Register returns a first-class handle on a named register; all reads and
// writes go through handles. Crash and Recover inject the crash-recovery
// model's process faults (on the simulator they fail the emulated process;
// on a remote node they fail the live process behind the control port).
// Close releases the client handle — it never shuts down the emulation
// behind it.
type Client interface {
	// Register resolves a handle on the named register. Resolution work
	// (dispatcher shard, submission queue, write lock — or the encoded name
	// for remote clients) happens once, here: reuse handles on hot paths.
	Register(name string) *Register
	// Crash fails the process behind the client: volatile state is lost and
	// in-flight operations return ErrCrashed. ErrDown if already down.
	Crash(ctx context.Context) error
	// Recover restarts the crashed process: stable state is reloaded and
	// the algorithm's recovery procedure runs (requiring a reachable
	// majority for the persistent algorithm). ErrNotDown if it is up.
	Recover(ctx context.Context) error
	// Close releases the client. The emulation keeps running.
	Close() error
}

// OpOptions is the resolved per-operation option set. Backends receive it
// through the RegisterBackend driver interface; applications build it with
// the With... functional options.
type OpOptions struct {
	// Deadline bounds the operation (0 = none; negative = already expired).
	// Synchronous operations run under a context with this timeout; remote
	// backends also ship it to the server so the node-side wait is bounded
	// too.
	Deadline time.Duration
	// Consistency selects the read's criterion: 0 means the algorithm's
	// native read; Regularity and Safety are selectable only under the
	// RegularRegister algorithm (Safety buys a 2-message read served by the
	// writer alone — see WithConsistency).
	Consistency Criterion
	// Cost, if non-nil, receives the operation id for CostOf accounting.
	Cost *OpID
	// Witness, if non-nil, receives the operation's tag witness on a
	// successful synchronous operation: the tag the emulation adopted for
	// the written or returned value (see WithWitness). Backends that cannot
	// report one leave it zero.
	Witness *Tag
	// Epoch, if non-nil, receives the incarnation epoch the serving node
	// completed the operation under (see WithEpoch). Zero on failure and on
	// backends that cannot report one.
	Epoch *uint64
}

// OpOption customizes one operation on a Register handle.
type OpOption func(*OpOptions)

// WithDeadline bounds the operation to d. A synchronous operation whose
// deadline expires returns context.DeadlineExceeded; the protocol execution
// itself is abandoned by the wait, not aborted (exactly like cancelling the
// context passed to Read/Write). A non-positive d (other than the zero
// value, which means "no deadline" when resolved) is an already-expired
// deadline: the operation fails with context.DeadlineExceeded immediately —
// it is never silently converted into an unbounded one.
func WithDeadline(d time.Duration) OpOption {
	return func(o *OpOptions) { o.Deadline = d }
}

// WithWitness captures the operation's tag witness into dst: the tag the
// emulation adopted for the written value (the write's minted timestamp) or
// for the value a read returned. dst is left zero when the operation fails,
// when a read returns the initial value ⊥, and for the rare coalesced write
// whose value was superseded within its batch. The witness is the
// server-side ordering evidence history.Merge uses to order merged
// live-mesh histories where client clocks cannot.
func WithWitness(dst *Tag) OpOption {
	return func(o *OpOptions) { o.Witness = dst }
}

// WithEpoch captures the serving node's incarnation epoch into dst: a
// monotonic per-boot counter that strictly increases across every recovery
// of the node, including real process restarts over the same stable storage
// (docs/adr/0006). dst is zeroed first and left zero when the operation
// fails. An epoch that advances between two replies from one node proves the
// node crashed and recovered in between — even if nobody injected the fault —
// which is what lets recording clients verify kill-restart meshes under
// transient atomicity.
func WithEpoch(dst *uint64) OpOption {
	return func(o *OpOptions) { o.Epoch = dst }
}

// WithCost captures the operation id into dst, for Cluster.CostOf log-
// complexity accounting (the paper's §I-B metric). dst is written as soon
// as the id is known: on return for synchronous operations.
func WithCost(dst *OpID) OpOption {
	return func(o *OpOptions) { o.Cost = dst }
}

// WithConsistency selects the read's criterion under the RegularRegister
// algorithm: Regularity is the native one-round majority read; Safety is
// the §VI safe read, served by the designated writer alone — 2 messages
// instead of a majority fan-out and still log-free, at the price of
// availability (safe reads block while the writer is down). Any selection
// under another algorithm, or on a write, is an error.
func WithConsistency(cr Criterion) OpOption {
	return func(o *OpOptions) { o.Consistency = cr }
}

// resolveOpts folds functional options into the resolved set.
func resolveOpts(opts []OpOption) OpOptions {
	var o OpOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// opCtx derives the operation context from the deadline option. A negative
// deadline (already expired) yields an already-cancelled context — the old
// `> 0` guard silently turned an expired deadline into no deadline at all.
func (o OpOptions) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.Deadline != 0 {
		return context.WithTimeout(ctx, o.Deadline)
	}
	return ctx, func() {}
}
