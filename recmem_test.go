package recmem_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"recmem"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func newTestCluster(t *testing.T, n int, algo recmem.Algorithm, opts ...recmem.Option) *recmem.Cluster {
	t.Helper()
	opts = append([]recmem.Option{recmem.WithRetransmitEvery(10 * time.Millisecond)}, opts...)
	c, err := recmem.New(n, algo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func allAlgorithms() []recmem.Algorithm {
	return []recmem.Algorithm{
		recmem.CrashStop, recmem.TransientAtomic, recmem.PersistentAtomic, recmem.NaiveLogging,
	}
}

func TestQuickstartFlow(t *testing.T) {
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			c := newTestCluster(t, 5, algo)
			ctx := testCtx(t)
			if err := c.Process(0).Write(ctx, "x", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			got, err := c.Process(1).Read(ctx, "x")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("hello")) {
				t.Fatalf("read = %q", got)
			}
			if err := c.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

func TestCrashRecoverFlow(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic)
	ctx := testCtx(t)
	p0 := c.Process(0)
	if err := p0.Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := p0.Crash(ctx); err != nil {
		t.Fatalf("crash failed: %v", err)
	}
	if p0.Up() {
		t.Fatal("up after crash")
	}
	if err := p0.Write(ctx, "x", []byte("w")); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("write while down: %v", err)
	}
	if err := p0.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if !p0.Up() {
		t.Fatal("not up after recover")
	}
	got, err := p0.Read(ctx, "x")
	if err != nil || string(got) != "v" {
		t.Fatalf("read after recover = %q, %v", got, err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashStopCannotRecover(t *testing.T) {
	c := newTestCluster(t, 3, recmem.CrashStop)
	_ = c.Process(0).Crash(testCtx(t))
	if err := c.Process(0).Recover(testCtx(t)); !errors.Is(err, recmem.ErrCannotRecover) {
		t.Fatalf("recover: %v", err)
	}
}

func TestCostAccounting(t *testing.T) {
	c := newTestCluster(t, 5, recmem.PersistentAtomic)
	ctx := testCtx(t)
	var op recmem.OpID
	if err := c.Process(0).Register("x").Write(ctx, []byte("v"), recmem.WithCost(&op)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cost := c.CostOf(op)
	if cost.CausalLogs != 2 {
		t.Fatalf("persistent write causal logs = %+v, want 2", cost)
	}
	if cost.TotalLogs < 1+3 { // writer pre-log + majority adoptions
		t.Fatalf("total logs = %+v", cost)
	}
	var rop recmem.OpID
	if _, err := c.Process(1).Register("x").Read(ctx, recmem.WithCost(&rop)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if cost := c.CostOf(rop); cost.CausalLogs != 0 {
		t.Fatalf("quiescent read causal logs = %+v, want 0", cost)
	}
}

func TestLatencyStats(t *testing.T) {
	c := newTestCluster(t, 3, recmem.TransientAtomic)
	ctx := testCtx(t)
	for i := 0; i < 5; i++ {
		if err := c.Process(0).Write(ctx, "x", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Process(1).Read(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	ws := c.WriteLatency()
	if ws.Count != 5 || ws.Mean <= 0 || ws.Max < ws.Min {
		t.Fatalf("write stats = %+v", ws)
	}
	if rs := c.ReadLatency(); rs.Count != 1 {
		t.Fatalf("read stats = %+v", rs)
	}
}

func TestVerifyCriteria(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic)
	ctx := testCtx(t)
	if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, cr := range []recmem.Criterion{
		recmem.Linearizability, recmem.PersistentAtomicity, recmem.TransientAtomicity,
	} {
		if err := c.VerifyCriterion(cr); err != nil {
			t.Fatalf("%v: %v", cr, err)
		}
	}
	if err := c.VerifyCriterion(recmem.Criterion(99)); err == nil {
		t.Fatal("accepted unknown criterion")
	}
	if got := c.DefaultCriterion(); got != recmem.PersistentAtomicity {
		t.Fatalf("default criterion = %v", got)
	}
}

func TestDefaultCriteria(t *testing.T) {
	want := map[recmem.Algorithm]recmem.Criterion{
		recmem.CrashStop:        recmem.Linearizability,
		recmem.TransientAtomic:  recmem.TransientAtomicity,
		recmem.PersistentAtomic: recmem.PersistentAtomicity,
		recmem.NaiveLogging:     recmem.PersistentAtomicity,
	}
	for algo, cr := range want {
		c := newTestCluster(t, 1, algo)
		if got := c.DefaultCriterion(); got != cr {
			t.Fatalf("%v: criterion %v, want %v", algo, got, cr)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := recmem.New(3, recmem.Algorithm(77)); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if _, err := recmem.New(0, recmem.PersistentAtomic); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestProcessPanicsOutOfRange(t *testing.T) {
	c := newTestCluster(t, 2, recmem.PersistentAtomic)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range process")
		}
	}()
	c.Process(7)
}

func TestFileStorageOption(t *testing.T) {
	dir := t.TempDir()
	c := newTestCluster(t, 3, recmem.PersistentAtomic, recmem.WithFileStorage(dir))
	ctx := testCtx(t)
	if err := c.Process(0).Write(ctx, "x", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		_ = c.Process(p).Crash(ctx)
	}
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if err := c.Process(p).Recover(ctx); err != nil {
				t.Errorf("recover %d: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	got, err := c.Process(2).Read(ctx, "x")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestLossyNetworkOptions(t *testing.T) {
	c := newTestCluster(t, 5, recmem.TransientAtomic,
		recmem.WithMessageLoss(0.25),
		recmem.WithDuplication(0.1),
		recmem.WithSeed(9),
		recmem.WithRetransmitEvery(2*time.Millisecond),
	)
	ctx := testCtx(t)
	for i := 0; i < 10; i++ {
		val := []byte(fmt.Sprintf("v%d", i))
		if err := c.Process(i%5).Write(ctx, "x", val); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBlocksThenHeals(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic)
	ctx := testCtx(t)
	c.Partition(0)
	short, cancel := context.WithTimeout(ctx, 80*time.Millisecond)
	defer cancel()
	if err := c.Process(0).Write(short, "x", []byte("v")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partitioned write: %v", err)
	}
	c.Heal(0)
	if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
		t.Fatalf("healed write: %v", err)
	}
}

// TestScriptedOverlappingWrite reproduces the Figure 1 anomaly through the
// public API: the transient algorithm admits a run where, after a crashed
// write, a read returns the old value and a later read returns the crashed
// write's value.
func TestScriptedOverlappingWrite(t *testing.T) {
	c := newTestCluster(t, 5, recmem.TransientAtomic)
	ctx := testCtx(t)
	if err := c.Process(0).Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let all replicas adopt v1

	// W(v2) reaches only process 3, then the writer crashes.
	c.RestrictAcks(0, 0, 1, 2)
	c.RestrictWritePropagation(0, 3)
	done := make(chan error, 1)
	go func() { done <- c.Process(0).Write(ctx, "x", []byte("v2")) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Wait until p3 has seen v2 (observable via a read quorumed on p3).
		if time.Now().After(deadline) {
			t.Fatal("v2 never reached p3")
		}
		c.RestrictAcks(4, 3, 4, 2)
		v, err := c.Process(4).Read(ctx, "x")
		if err != nil {
			t.Fatal(err)
		}
		if string(v) == "v2" {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = c.Process(0).Crash(ctx)
	if err := <-done; !errors.Is(err, recmem.ErrCrashed) {
		t.Fatalf("crashed write returned %v", err)
	}
	c.ClearNetworkScript()
	if err := c.Process(0).Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("transient verification: %v", err)
	}
}

func TestNetworkAndDiskOptions(t *testing.T) {
	// A cluster with explicit latency knobs: a write must take at least the
	// configured round trips plus logging on the critical path.
	c := newTestCluster(t, 3, recmem.PersistentAtomic,
		recmem.WithNetwork(300*time.Microsecond, 50*time.Microsecond, 10e6),
		recmem.WithDisk(500*time.Microsecond, 0),
	)
	ctx := testCtx(t)
	start := time.Now()
	if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// 2 round trips (4 x 300µs) + writer log (500µs) + replica log (500µs).
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("write finished in %v, faster than the configured latencies allow", el)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestWithLANLadder(t *testing.T) {
	// WithLAN reproduces the calibrated testbed: a persistent write lands in
	// the high hundreds of microseconds, not milliseconds and not tens of
	// microseconds. Generous bounds keep this robust on noisy hosts.
	c := newTestCluster(t, 5, recmem.PersistentAtomic, recmem.WithLAN())
	ctx := testCtx(t)
	for i := 0; i < 5; i++ {
		if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	mean := c.WriteLatency().Mean
	if mean < 500*time.Microsecond || mean > 50*time.Millisecond {
		t.Fatalf("LAN-profile persistent write mean = %v", mean)
	}
}
