// Package recmem robustly emulates shared memory — multi-writer multi-reader
// read/write registers — on top of an asynchronous message-passing system in
// which every process may crash and recover, after Guerraoui & Levy, "Robust
// Emulations of Shared Memory in a Crash-Recovery Model" (ICDCS 2004).
//
// Three emulations are provided:
//
//   - PersistentAtomic (the paper's Figure 4): atomicity persists through
//     crashes. Log-optimal: 2 causal logs per write, 1 per read (0 when no
//     concurrent write is observed).
//   - TransientAtomic (Figure 5): atomicity may be transiently relaxed when
//     a writer crashes mid-write — the unfinished write can appear to
//     overlap the writer's next write. Log-optimal: 1 causal log per write
//     and per read, plus one log per recovery.
//   - CrashStop: the Lynch-Shvartsman crash-stop baseline the paper builds
//     on — no logging, but crashed processes may never return.
//
// All three use 4 communication steps per operation and tolerate any number
// of crashes as long as a majority of processes is eventually up (crash-stop:
// a permanent majority of correct processes).
//
// A cluster simulates its processes in-process over a configurable fair-lossy
// network and per-process stable storage; every run records a history that
// can be verified against the matching consistency criterion.
//
// All operations go through the backend-agnostic Client interface and its
// first-class Register handles. The simulated cluster's processes implement
// Client; so does remote.Client, a TCP connection to a live recmem-node
// (cmd/recmem-node) — the same application code runs against either.
//
// Quickstart:
//
//	c, err := recmem.New(5, recmem.PersistentAtomic)
//	if err != nil { ... }
//	defer c.Close()
//	x := c.Process(0).Register("x")
//	err = x.Write(ctx, []byte("hello"))
//	val, err := c.Process(1).Register("x").Read(ctx)
//	err = c.Process(0).Crash(ctx)
//	err = c.Process(0).Recover(ctx)
//	err = c.Verify() // checks the recorded history
package recmem

import (
	"context"
	"fmt"
	"sync"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/causal"
	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/metrics"
	"recmem/internal/netsim"
	"recmem/internal/stable"
)

// Algorithm selects the register emulation.
type Algorithm int

// Supported emulation algorithms.
const (
	// CrashStop is the no-logging baseline for the crash-stop model.
	CrashStop Algorithm = iota + 1
	// TransientAtomic is the 1-causal-log-per-write emulation (Fig. 5).
	TransientAtomic
	// PersistentAtomic is the 2-causal-logs-per-write emulation (Fig. 4).
	PersistentAtomic
	// NaiveLogging is the log-every-step straw man (§I-C), kept as an
	// ablation baseline.
	NaiveLogging
	// RegularRegister is the §VI extension: a single-writer/multi-reader
	// regular register — writes are one round with 1 causal log, reads are
	// one round with no logging. Only process 0 may write.
	RegularRegister
)

// String returns the algorithm name.
func (a Algorithm) String() string { return a.kind().String() }

func (a Algorithm) kind() core.AlgorithmKind {
	switch a {
	case CrashStop:
		return core.CrashStop
	case TransientAtomic:
		return core.Transient
	case PersistentAtomic:
		return core.Persistent
	case NaiveLogging:
		return core.Naive
	case RegularRegister:
		return core.RegularSW
	default:
		return 0
	}
}

// Criterion is a consistency criterion for Verify.
type Criterion int

// Supported criteria (§III of the paper).
const (
	// Linearizability is atomicity for crash-free (crash-stop) histories.
	Linearizability Criterion = iota + 1
	// PersistentAtomicity requires atomicity to persist through crashes.
	PersistentAtomicity
	// TransientAtomicity allows a crashed write to overlap the writer's
	// next write.
	TransientAtomicity
	// Regularity is single-writer regularity (§VI): reads return the last
	// completed or any concurrent write; new-old inversion is allowed.
	Regularity
	// Safety is single-writer safety (§VI): only reads not concurrent with
	// a write are constrained.
	Safety
)

// String returns the criterion name.
func (c Criterion) String() string {
	switch c {
	case Regularity:
		return "regular"
	case Safety:
		return "safe"
	default:
		return c.mode().String()
	}
}

func (c Criterion) mode() atomicity.Mode {
	switch c {
	case Linearizability:
		return atomicity.Linearizable
	case PersistentAtomicity:
		return atomicity.Persistent
	case TransientAtomicity:
		return atomicity.Transient
	default:
		return 0
	}
}

// Re-exported sentinel errors.
var (
	// ErrCrashed is returned by an operation interrupted by its process's
	// crash; the operation may or may not have taken effect.
	ErrCrashed = core.ErrCrashed
	// ErrDown is returned when invoking an operation on a crashed process
	// (and by Crash on a process that is already down).
	ErrDown = core.ErrDown
	// ErrNotDown is returned by Recover on a process that is not crashed.
	ErrNotDown = core.ErrNotDown
	// ErrCannotRecover is returned by Recover under the CrashStop algorithm.
	ErrCannotRecover = core.ErrCannotRecover
	// ErrNotWriter is returned by Write at a process other than process 0
	// under the RegularRegister algorithm.
	ErrNotWriter = core.ErrNotWriter
)

// config collects option state.
type config struct {
	node        core.Options
	net         netsim.Options
	disk        stable.Profile
	diskBackend string
	diskDir     string
}

// Option customizes a cluster.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithLAN simulates the paper's measurement testbed: a 100 Mb/s LAN with
// ≈ 0.1 ms one-way transit and synchronous disk logging at ≈ 0.2 ms. Without
// it the simulated network and disks are instantaneous, which is what tests
// want.
func WithLAN() Option {
	return optionFunc(func(c *config) {
		c.net.Profile = netsim.LANProfile()
		c.disk = stable.DiskProfile()
	})
}

// WithNetwork sets the simulated network latency: one-way propagation delay,
// uniform jitter bound, and bandwidth in bytes per second (0 = infinite).
func WithNetwork(propagation, jitter time.Duration, bytesPerSec float64) Option {
	return optionFunc(func(c *config) {
		c.net.Profile.Propagation = propagation
		c.net.Profile.Jitter = jitter
		c.net.Profile.BytesPerSec = bytesPerSec
	})
}

// WithDisk sets the simulated stable-storage latency: per-store delay and
// streaming bandwidth in bytes per second (0 = infinite).
func WithDisk(storeDelay time.Duration, bytesPerSec float64) Option {
	return optionFunc(func(c *config) {
		c.disk.StoreDelay = storeDelay
		c.disk.BytesPerSec = bytesPerSec
	})
}

// WithFileStorage stores each process's stable state in dir/node<i>, using
// real files with synchronous writes instead of the simulated disk: one file
// per record, replaced atomically — two fsyncs per causal log.
func WithFileStorage(dir string) Option {
	return optionFunc(func(c *config) { c.diskBackend = "file"; c.diskDir = dir })
}

// WithWALStorage stores each process's stable state in dir/node<i> on the
// log-structured engine: one append-only CRC-framed log whose group-commit
// daemon coalesces the causal logs of concurrent rounds into shared
// fdatasyncs, with periodic snapshot + truncation. The fastest real-disk
// backend; see docs/adr/0002-wal-group-commit-storage.md.
func WithWALStorage(dir string) Option {
	return optionFunc(func(c *config) { c.diskBackend = "wal"; c.diskDir = dir })
}

// WithShardedStorage stores each process's stable state in dir/node<i> on
// the sharded compacting engine: records hash onto per-shard WAL segment
// chains with background compaction into indexed snapshots, tombstoned
// deletes, and LRU value eviction, so recovery time and resident memory are
// bounded by the compaction policy instead of the register-namespace size.
// The backend for large namespaces; see
// docs/adr/0008-sharded-compacting-store.md.
func WithShardedStorage(dir string) Option {
	return optionFunc(func(c *config) { c.diskBackend = "sharded"; c.diskDir = dir })
}

// WithMessageLoss drops each message with the given probability in [0,1).
// The emulations retransmit, so operations still terminate.
func WithMessageLoss(rate float64) Option {
	return optionFunc(func(c *config) { c.net.LossRate = rate })
}

// WithDuplication duplicates each message with the given probability in
// [0,1).
func WithDuplication(rate float64) Option {
	return optionFunc(func(c *config) { c.net.DupRate = rate })
}

// WithSeed seeds the simulated network's randomness (loss, jitter,
// duplication decisions).
func WithSeed(seed int64) Option {
	return optionFunc(func(c *config) { c.net.Seed = seed })
}

// WithRetransmitEvery sets the resend period for unacknowledged protocol
// rounds (default 25 ms).
func WithRetransmitEvery(d time.Duration) Option {
	return optionFunc(func(c *config) { c.node.RetransmitEvery = d })
}

// WithHardenedTags makes the transient algorithm append the persisted
// recovery counter to its timestamps as a final tiebreak, closing the
// tag-collision window of the paper's literal Figure 5 (see DESIGN.md §7).
func WithHardenedTags() Option {
	return optionFunc(func(c *config) { c.node.HardenedTags = true })
}

// WithUnsafeNoReadLog disables logging in the read's write-back round. This
// re-introduces the impossibility of Theorem 2 and exists only so that the
// lower bound can be demonstrated; never use it otherwise.
func WithUnsafeNoReadLog() Option {
	return optionFunc(func(c *config) { c.node.UnsafeNoReadLog = true })
}

// Cluster is a running shared-memory emulation over n simulated processes.
type Cluster struct {
	inner *cluster.Cluster
	algo  Algorithm

	scriptMu sync.Mutex
	script   *gate
}

// validate rejects option values that the simulation would otherwise apply
// silently (or trip over later): probabilities outside [0,1) and negative
// latencies or bandwidths.
func (c *config) validate() error {
	if r := c.net.LossRate; r < 0 || r >= 1 {
		return fmt.Errorf("recmem: WithMessageLoss rate %v outside [0,1)", r)
	}
	if r := c.net.DupRate; r < 0 || r >= 1 {
		return fmt.Errorf("recmem: WithDuplication rate %v outside [0,1)", r)
	}
	p := c.net.Profile
	if p.Propagation < 0 || p.SelfDelay < 0 || p.Jitter < 0 {
		return fmt.Errorf("recmem: negative network latency (propagation %v, self %v, jitter %v)",
			p.Propagation, p.SelfDelay, p.Jitter)
	}
	if p.BytesPerSec < 0 {
		return fmt.Errorf("recmem: negative network bandwidth %v bytes/s", p.BytesPerSec)
	}
	if c.disk.StoreDelay < 0 {
		return fmt.Errorf("recmem: negative disk store delay %v", c.disk.StoreDelay)
	}
	if c.disk.BytesPerSec < 0 {
		return fmt.Errorf("recmem: negative disk bandwidth %v bytes/s", c.disk.BytesPerSec)
	}
	if c.node.RetransmitEvery < 0 {
		return fmt.Errorf("recmem: negative retransmission period %v", c.node.RetransmitEvery)
	}
	return nil
}

// New starts a cluster of n processes running the given algorithm.
func New(n int, algo Algorithm, opts ...Option) (*Cluster, error) {
	kind := algo.kind()
	if kind == 0 {
		return nil, fmt.Errorf("recmem: unknown algorithm %d", int(algo))
	}
	var cfg config
	for _, o := range opts {
		o.apply(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cc := cluster.Config{
		N:           n,
		Algorithm:   kind,
		Node:        cfg.node,
		Net:         cfg.net,
		Disk:        cfg.disk,
		DiskBackend: cfg.diskBackend,
		DiskDir:     cfg.diskDir,
	}
	inner, err := cluster.New(cc)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner, algo: algo}, nil
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.inner.N() }

// Algorithm returns the emulation algorithm.
func (c *Cluster) Algorithm() Algorithm { return c.algo }

// Process returns the handle for invoking operations at process id (0-based).
func (c *Cluster) Process(id int) *Process {
	if id < 0 || id >= c.inner.N() {
		panic(fmt.Sprintf("recmem: process %d out of range [0,%d)", id, c.inner.N()))
	}
	return &Process{c: c.inner, id: int32(id)}
}

// DefaultCriterion returns the criterion the algorithm guarantees.
func (c *Cluster) DefaultCriterion() Criterion {
	if c.algo == RegularRegister {
		return Regularity
	}
	switch c.inner.DefaultMode() {
	case atomicity.Linearizable:
		return Linearizability
	case atomicity.Transient:
		return TransientAtomicity
	default:
		return PersistentAtomicity
	}
}

// Verify checks the recorded history of the cluster against the algorithm's
// own criterion. It returns nil if the run was correct.
func (c *Cluster) Verify() error {
	return c.inner.VerifyDefault()
}

// VerifyCriterion checks the recorded history against an explicit criterion.
func (c *Cluster) VerifyCriterion(cr Criterion) error {
	switch cr {
	case Regularity:
		return c.inner.CheckRegular()
	case Safety:
		return c.inner.CheckSafe()
	}
	m := cr.mode()
	if m == 0 {
		return fmt.Errorf("recmem: unknown criterion %d", int(cr))
	}
	return c.inner.Check(m)
}

// LatencyStats summarizes operation latencies.
type LatencyStats struct {
	Count                    int
	Mean, P50, P95, Min, Max time.Duration
}

// WriteLatency summarizes all completed writes.
func (c *Cluster) WriteLatency() LatencyStats { return toStats(c.inner.WriteStats()) }

// ReadLatency summarizes all completed reads.
func (c *Cluster) ReadLatency() LatencyStats { return toStats(c.inner.ReadStats()) }

// OpCost is the stable-storage bill of one operation (the paper's
// log-complexity metric, §I-B).
type OpCost struct {
	// CausalLogs is the length of the longest causal chain of logs inside
	// the operation: the paper's headline metric (persistent write: 2,
	// transient write: 1, quiescent read: 0).
	CausalLogs int
	// TotalLogs counts every store performed on behalf of the operation
	// across all processes.
	TotalLogs int
	// Bytes is the total volume written to stable storage.
	Bytes int
}

// CostOf returns the accounting of a finished operation. Processes beyond
// the acknowledging majority may still be logging when the operation
// returns; their stragglers are added as they land.
func (c *Cluster) CostOf(op OpID) OpCost {
	return toCost(c.inner.LogCost(uint64(op)))
}

// Close shuts the cluster down.
func (c *Cluster) Close() { c.inner.Close() }

// OpID identifies a completed operation for accounting.
type OpID uint64

// Process is the client handle of one emulated process; it implements
// Client, making it interchangeable with remote.Client (a TCP connection to
// a live recmem-node). Synchronous operations on a process are sequential
// (the model's processes are sequential); calling concurrently from
// multiple goroutines serializes them.
type Process struct {
	c  *cluster.Cluster
	id int32
}

var _ Client = (*Process)(nil)

// ID returns the process id.
func (p *Process) ID() int { return int(p.id) }

// Register resolves a first-class handle on the named register. The
// dispatcher shard, submission queue and write lock are resolved here, once
// — operations through the handle skip the per-operation string-map lookups
// that Process.Write/Read pay, so hot paths should hold on to handles.
func (p *Process) Register(name string) *Register {
	return NewRegister(name, processRegister{h: p.c.Handle(p.id, name)})
}

// Write writes val to the named register. It blocks until a majority of
// processes acknowledges and returns ErrCrashed if the process crashes
// mid-operation (in which case the write may or may not take effect — its
// invocation stays pending in the history). Equivalent to
// p.Register(register).Write(ctx, val); use a handle on hot paths.
func (p *Process) Write(ctx context.Context, register string, val []byte) error {
	_, err := p.c.Write(ctx, p.id, register, val)
	return err
}

// Read returns the register's current value (nil if never written). Reads
// are atomic: they never return stale values relative to completed writes
// and other completed reads, per the algorithm's criterion. Equivalent to
// p.Register(register).Read(ctx); use a handle on hot paths.
func (p *Process) Read(ctx context.Context, register string) ([]byte, error) {
	val, _, err := p.c.Read(ctx, p.id, register)
	return val, err
}

// SubmitWrite asynchronously writes val to the named register through the
// process's batching engine and returns a future for the acknowledgement.
// Writes submitted while an earlier write to the same register is still in
// flight coalesce with it into a single quorum round (one minted timestamp,
// one causal log chain for the whole batch); submissions to different
// registers pipeline, overlapping their network rounds. Unlike Write,
// submissions from one process do not serialize with each other — use the
// futures to order operations that must not overlap.
//
// Verify still checks histories containing submitted operations, but its
// witness search is exponential in the number of mutually concurrent
// operations per register: runs meant for verification should keep async
// bursts small (tens, not thousands, in flight per register).
func (p *Process) SubmitWrite(register string, val []byte) (*WriteFuture, error) {
	f, err := p.c.SubmitWrite(p.id, register, val)
	if err != nil {
		return nil, err
	}
	return &WriteFuture{f: f}, nil
}

// SubmitRead asynchronously reads the named register through the process's
// batching engine; concurrent submitted reads of one register share a single
// quorum round and all return its value.
func (p *Process) SubmitRead(register string) (*ReadFuture, error) {
	f, err := p.c.SubmitRead(p.id, register)
	if err != nil {
		return nil, err
	}
	return &ReadFuture{f: f}, nil
}

// Crash fails the process: volatile state is lost and in-flight operations
// return ErrCrashed. Returns ErrDown if it was already down. The context is
// unused in the simulation (crashes are instantaneous); it exists for the
// Client contract, where a remote crash is a network round-trip.
func (p *Process) Crash(_ context.Context) error {
	if !p.c.Crash(p.id) {
		return ErrDown
	}
	return nil
}

// Recover restarts a crashed process, reloading stable storage and running
// the algorithm's recovery procedure (which for PersistentAtomic finishes
// the interrupted write and requires a reachable majority).
func (p *Process) Recover(ctx context.Context) error { return p.c.Recover(ctx, p.id) }

// Close releases the client handle. The emulated process keeps running —
// the cluster owns its lifecycle (Cluster.Close).
func (p *Process) Close() error { return nil }

// Up reports whether the process currently accepts operations.
func (p *Process) Up() bool { return p.c.Node(p.id).Up() }

// Peek returns the process's current volatile view of a register without
// running the protocol. It is a harness-side inspection facility for demos
// and tests — not a register operation, not atomic, and not recorded in the
// history.
func (p *Process) Peek(register string) (val []byte, ok bool) {
	_, v, ok := p.c.Node(p.id).RegisterState(register)
	return v, ok
}

func toStats(s metrics.Stats) LatencyStats {
	return LatencyStats{
		Count: s.Count,
		Mean:  s.Mean,
		P50:   s.P50,
		P95:   s.P95,
		Min:   s.Min,
		Max:   s.Max,
	}
}

func toCost(c causal.OpCost) OpCost {
	return OpCost{CausalLogs: c.CausalDepth, TotalLogs: c.Logs, Bytes: c.Bytes}
}
