package recmem_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"recmem"
)

// TestSubmitBasic: the asynchronous API round-trips a value for every
// algorithm and the recorded history verifies against the algorithm's own
// criterion.
func TestSubmitBasic(t *testing.T) {
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			c := newTestCluster(t, 3, algo)
			ctx := testCtx(t)
			var futs []*recmem.WriteFuture
			for i := 0; i < 10; i++ {
				f, err := c.Process(0).SubmitWrite("x", []byte(fmt.Sprintf("v%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				futs = append(futs, f)
			}
			for i, f := range futs {
				if err := f.Wait(ctx); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			rf, err := c.Process(1).SubmitRead("x")
			if err != nil {
				t.Fatal(err)
			}
			got, err := rf.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "v9" {
				t.Fatalf("read = %q, want the last submitted value", got)
			}
			if err := c.Verify(); err != nil {
				t.Fatalf("history does not verify: %v", err)
			}
		})
	}
}

// TestSubmitConcurrentLinearizes floods several processes' engines with
// concurrent writes and reads over a handful of registers — coalescing and
// pipelining at every node — and checks the complete recorded history
// against the algorithm's atomicity criterion. This is the batching layer's
// central correctness obligation: coalesced operations must still linearize.
//
// The per-register concurrency is kept small on purpose: the atomicity
// checker's witness search is exponential in the number of mutually
// concurrent operations, so each client submits in windows of four.
func TestSubmitConcurrentLinearizes(t *testing.T) {
	for _, algo := range allAlgorithms() {
		t.Run(algo.String(), func(t *testing.T) {
			const n, rounds, window = 3, 5, 4
			c := newTestCluster(t, n, algo)
			ctx := testCtx(t)
			regs := []string{"a", "b"}
			var wg sync.WaitGroup
			errCh := make(chan error, n*rounds*window)
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						var pending []interface{ Done() <-chan struct{} }
						for i := 0; i < window; i++ {
							k := r*window + i
							reg := regs[k%len(regs)]
							if k%3 == 2 {
								f, err := c.Process(p).SubmitRead(reg)
								if err != nil {
									errCh <- err
									return
								}
								pending = append(pending, f)
							} else {
								f, err := c.Process(p).SubmitWrite(reg, []byte(fmt.Sprintf("p%d-%d", p, k)))
								if err != nil {
									errCh <- err
									return
								}
								pending = append(pending, f)
							}
						}
						for _, f := range pending {
							select {
							case <-f.Done():
							case <-ctx.Done():
								errCh <- ctx.Err()
								return
							}
						}
					}
				}(p)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if err := c.Verify(); err != nil {
				t.Fatalf("coalesced history does not linearize: %v", err)
			}
		})
	}
}

// TestSubmitCrashRecoveryReplays interrupts in-flight batches with a crash,
// recovers, keeps operating, and checks that the whole history — completed
// ops, pending ops cut off by the crash, post-recovery ops — still verifies.
func TestSubmitCrashRecoveryReplays(t *testing.T) {
	for _, algo := range []recmem.Algorithm{recmem.TransientAtomic, recmem.PersistentAtomic, recmem.NaiveLogging} {
		t.Run(algo.String(), func(t *testing.T) {
			c := newTestCluster(t, 3, algo, recmem.WithNetwork(500*time.Microsecond, 0, 0))
			ctx := testCtx(t)
			var futs []*recmem.WriteFuture
			for i := 0; i < 12; i++ {
				f, err := c.Process(0).SubmitWrite("x", []byte(fmt.Sprintf("v%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				futs = append(futs, f)
			}
			time.Sleep(time.Millisecond) // let part of the batch commit
			_ = c.Process(0).Crash(ctx)
			for _, f := range futs {
				if err := f.Wait(ctx); err != nil && !errors.Is(err, recmem.ErrCrashed) {
					t.Fatalf("unexpected error: %v", err)
				}
			}
			if err := c.Process(0).Recover(ctx); err != nil {
				t.Fatalf("recover: %v", err)
			}
			// The recovered process resumes batched operation.
			f, err := c.Process(0).SubmitWrite("x", []byte("after"))
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			got, err := c.Process(1).Read(ctx, "x")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "after" {
				t.Fatalf("read = %q after recovery", got)
			}
			if err := c.Verify(); err != nil {
				t.Fatalf("crash-interrupted batch history does not verify: %v", err)
			}
		})
	}
}

// TestSubmitAckedWriteSurvivesCrash: an operation whose future resolved
// without error is acknowledged by a majority; no crash of the submitting
// process may lose it.
func TestSubmitAckedWriteSurvivesCrash(t *testing.T) {
	for _, algo := range []recmem.Algorithm{recmem.TransientAtomic, recmem.PersistentAtomic} {
		t.Run(algo.String(), func(t *testing.T) {
			c := newTestCluster(t, 3, algo)
			ctx := testCtx(t)
			for i := 0; i < 10; i++ {
				f, err := c.Process(0).SubmitWrite("x", []byte(fmt.Sprintf("v%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Wait(ctx); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				_ = c.Process(0).Crash(ctx)
				got, err := c.Process(1).Read(ctx, "x")
				if err != nil {
					t.Fatal(err)
				}
				var idx int
				if _, err := fmt.Sscanf(string(got), "v%d", &idx); err != nil || idx < i {
					t.Fatalf("after acked v%d and crash, read = %q — acknowledged write lost", i, got)
				}
				if err := c.Process(0).Recover(ctx); err != nil {
					t.Fatalf("recover: %v", err)
				}
			}
			if err := c.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSubmitRejections mirrors the synchronous API's admission errors.
func TestSubmitRejections(t *testing.T) {
	c := newTestCluster(t, 3, recmem.RegularRegister)
	if _, err := c.Process(1).SubmitWrite("x", []byte("v")); !errors.Is(err, recmem.ErrNotWriter) {
		t.Fatalf("non-writer submit: %v", err)
	}
	p := c.Process(2)
	_ = p.Crash(context.Background())
	if _, err := p.SubmitRead("x"); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("down submit: %v", err)
	}
}

// TestSubmitWaitHonorsContext: cancelling the wait abandons the wait, not
// the operation.
func TestSubmitWaitHonorsContext(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic, recmem.WithLAN())
	f, err := c.Process(0).SubmitWrite("x", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Wait(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on cancelled ctx = %v", err)
	}
	if err := f.Wait(testCtx(t)); err != nil {
		t.Fatalf("the operation itself must still complete: %v", err)
	}
}
