// bakery: Lamport's bakery mutual-exclusion algorithm running on the
// emulated shared memory — the classic shared-memory algorithm executing
// unchanged over an asynchronous message-passing system, which is exactly
// the programming model the paper's emulations exist to provide.
//
// Each contender process takes a ticket in the shared registers choosing/i
// and number/i, enters the critical section in ticket order, and increments
// an unprotected shared counter (read, +1, write). Mutual exclusion makes
// the final counter equal the total number of entries; without it, lost
// updates would leave it short. The registers are atomic, which is what the
// bakery algorithm requires of its shared variables.
//
//	go run ./examples/bakery
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"recmem"
)

// contender is one thread of the bakery algorithm, bound to one client.
// The bakery's waiting loops poll the same registers over and over, so the
// contender holds first-class Register handles: each register's dispatch
// resolution happens once, not per poll — and because the contender is
// written against recmem.Client, the identical code would run against a
// live TCP mesh through remote.Dial.
type contender struct {
	c    recmem.Client
	id   int
	n    int // number of contenders
	regs map[string]*recmem.Register
}

func newContender(c recmem.Client, id, n int) *contender {
	return &contender{c: c, id: id, n: n, regs: make(map[string]*recmem.Register)}
}

func register(prefix string, i int) string { return prefix + "/" + strconv.Itoa(i) }

// reg returns the cached handle for a register name.
func (c *contender) reg(name string) *recmem.Register {
	r := c.regs[name]
	if r == nil {
		r = c.c.Register(name)
		c.regs[name] = r
	}
	return r
}

func (c *contender) readInt(ctx context.Context, reg string) (int, error) {
	val, err := c.reg(reg).Read(ctx)
	if err != nil {
		return 0, err
	}
	if len(val) == 0 {
		return 0, nil
	}
	return strconv.Atoi(string(val))
}

func (c *contender) writeInt(ctx context.Context, reg string, v int) error {
	return c.reg(reg).Write(ctx, []byte(strconv.Itoa(v)))
}

// lock runs the bakery doorway and waiting protocol.
func (c *contender) lock(ctx context.Context) error {
	// Doorway: choosing[i] := 1; number[i] := 1 + max(number[*]).
	if err := c.writeInt(ctx, register("choosing", c.id), 1); err != nil {
		return err
	}
	max := 0
	for j := 0; j < c.n; j++ {
		n, err := c.readInt(ctx, register("number", j))
		if err != nil {
			return err
		}
		if n > max {
			max = n
		}
	}
	if err := c.writeInt(ctx, register("number", c.id), max+1); err != nil {
		return err
	}
	if err := c.writeInt(ctx, register("choosing", c.id), 0); err != nil {
		return err
	}
	// Wait for every other contender to either not hold a ticket or hold a
	// larger one (ties broken by id).
	for j := 0; j < c.n; j++ {
		if j == c.id {
			continue
		}
		for {
			ch, err := c.readInt(ctx, register("choosing", j))
			if err != nil {
				return err
			}
			if ch == 0 {
				break
			}
		}
		mine, err := c.readInt(ctx, register("number", c.id))
		if err != nil {
			return err
		}
		for {
			theirs, err := c.readInt(ctx, register("number", j))
			if err != nil {
				return err
			}
			if theirs == 0 || theirs > mine || (theirs == mine && j > c.id) {
				break
			}
		}
	}
	return nil
}

// unlock releases the ticket.
func (c *contender) unlock(ctx context.Context) error {
	return c.writeInt(ctx, register("number", c.id), 0)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		contenders = 3
		entries    = 4 // critical-section entries per contender
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	c, err := recmem.New(contenders, recmem.PersistentAtomic,
		recmem.WithRetransmitEvery(5*time.Millisecond))
	if err != nil {
		return err
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			me := newContender(c.Process(i), i, contenders)
			for e := 0; e < entries; e++ {
				if err := me.lock(ctx); err != nil {
					errs <- fmt.Errorf("contender %d lock: %w", i, err)
					return
				}
				// Critical section: an unprotected read-modify-write on the
				// shared counter. Only mutual exclusion makes this safe.
				v, err := me.readInt(ctx, "counter")
				if err == nil {
					err = me.writeInt(ctx, "counter", v+1)
				}
				if err == nil {
					err = me.unlock(ctx)
				}
				if err != nil {
					errs <- fmt.Errorf("contender %d cs: %w", i, err)
					return
				}
				fmt.Printf("contender %d finished entry %d (counter was %d)\n", i, e, v)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	final, err := newContender(c.Process(0), 0, contenders).readInt(ctx, "counter")
	if err != nil {
		return err
	}
	want := contenders * entries
	fmt.Printf("final counter: %d (want %d)\n", final, want)
	if final != want {
		return fmt.Errorf("mutual exclusion violated: lost %d updates", want-final)
	}
	if err := c.Verify(); err != nil {
		return fmt.Errorf("atomicity verification failed: %w", err)
	}
	fmt.Println("bakery over message passing: mutual exclusion and atomicity verified")
	return nil
}
