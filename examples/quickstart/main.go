// Quickstart: a five-process persistent-atomic shared memory.
//
// The example writes and reads a register from different processes, crashes
// the writer (losing its volatile state), recovers it from stable storage,
// and finally verifies the recorded history against persistent atomicity.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"recmem"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Five emulated processes over a simulated LAN calibrated to the
	// paper's testbed (0.1 ms transit, 0.2 ms synchronous logging).
	c, err := recmem.New(5, recmem.PersistentAtomic, recmem.WithLAN())
	if err != nil {
		return err
	}
	defer c.Close()

	writer, reader := c.Process(0), c.Process(3)

	// A write is atomic: once it returns, every subsequent read anywhere
	// sees it (or something newer).
	op, err := writer.WriteOp(ctx, "greeting", []byte("hello, crash-recovery world"))
	if err != nil {
		return err
	}
	val, err := reader.Read(ctx, "greeting")
	if err != nil {
		return err
	}
	fmt.Printf("process 3 reads: %q\n", val)

	// The write used exactly 2 causal logs — the optimum of Theorem 1.
	time.Sleep(10 * time.Millisecond) // let replicas beyond the quorum finish logging
	fmt.Printf("write cost: %d causal logs (%d stores in total)\n",
		c.CostOf(op).CausalLogs, c.CostOf(op).TotalLogs)

	// Crash the writer: its volatile memory is gone...
	writer.Crash()
	fmt.Println("process 0 crashed")

	// ...but stable storage and the majority still hold the value.
	if val, err = reader.Read(ctx, "greeting"); err != nil {
		return err
	}
	fmt.Printf("while 0 is down, process 3 still reads: %q\n", val)

	// Recovery replays the recovery procedure of Fig. 4 (finish any
	// interrupted write) and rejoins.
	if err := writer.Recover(ctx); err != nil {
		return err
	}
	if val, err = writer.Read(ctx, "greeting"); err != nil {
		return err
	}
	fmt.Printf("recovered process 0 reads: %q\n", val)

	// The harness recorded every invocation, response, crash and recovery;
	// verify the run against the persistent-atomicity checker.
	if err := c.Verify(); err != nil {
		return fmt.Errorf("history verification failed: %w", err)
	}
	fmt.Println("history verified: persistent atomicity holds")

	fmt.Printf("write latency: mean %v over %d writes\n",
		c.WriteLatency().Mean.Round(time.Microsecond), c.WriteLatency().Count)
	return nil
}
