// Quickstart: a five-process persistent-atomic shared memory.
//
// The example writes and reads a register from different processes, crashes
// the writer (losing its volatile state), recovers it from stable storage,
// and finally verifies the recorded history against persistent atomicity.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"recmem"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Five emulated processes over a simulated LAN calibrated to the
	// paper's testbed (0.1 ms transit, 0.2 ms synchronous logging).
	c, err := recmem.New(5, recmem.PersistentAtomic, recmem.WithLAN())
	if err != nil {
		return err
	}
	defer c.Close()

	writer, reader := c.Process(0), c.Process(3)

	// First-class register handles: the dispatcher resolution happens here,
	// once, not on every operation.
	greeting := writer.Register("greeting")
	greetingAt3 := reader.Register("greeting")

	// A write is atomic: once it returns, every subsequent read anywhere
	// sees it (or something newer). WithCost captures the operation id for
	// log-complexity accounting.
	var op recmem.OpID
	if err := greeting.Write(ctx, []byte("hello, crash-recovery world"), recmem.WithCost(&op)); err != nil {
		return err
	}
	val, err := greetingAt3.Read(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("process 3 reads: %q\n", val)

	// The write used exactly 2 causal logs — the optimum of Theorem 1.
	time.Sleep(10 * time.Millisecond) // let replicas beyond the quorum finish logging
	fmt.Printf("write cost: %d causal logs (%d stores in total)\n",
		c.CostOf(op).CausalLogs, c.CostOf(op).TotalLogs)

	// Crash the writer: its volatile memory is gone...
	if err := writer.Crash(ctx); err != nil {
		return err
	}
	fmt.Println("process 0 crashed")

	// ...but stable storage and the majority still hold the value.
	if val, err = greetingAt3.Read(ctx); err != nil {
		return err
	}
	fmt.Printf("while 0 is down, process 3 still reads: %q\n", val)

	// Recovery replays the recovery procedure of Fig. 4 (finish any
	// interrupted write) and rejoins. The handle survives the crash —
	// handles are bound to the process, not its incarnation.
	if err := writer.Recover(ctx); err != nil {
		return err
	}
	if val, err = greeting.Read(ctx); err != nil {
		return err
	}
	fmt.Printf("recovered process 0 reads: %q\n", val)

	// The harness recorded every invocation, response, crash and recovery;
	// verify the run against the persistent-atomicity checker.
	if err := c.Verify(); err != nil {
		return fmt.Errorf("history verification failed: %w", err)
	}
	fmt.Println("history verified: persistent atomicity holds")

	fmt.Printf("write latency: mean %v over %d writes\n",
		c.WriteLatency().Mean.Round(time.Microsecond), c.WriteLatency().Count)
	return nil
}
