// telemetry: a fault-tolerant sensor feed on the single-writer regular
// register of §VI. One sensor process publishes readings; many consumers
// poll them. Regularity is exactly the contract a telemetry feed needs —
// a consumer never sees garbage, never sees a value older than the last
// completed publish, and concurrent polls may briefly disagree about an
// in-flight publish, which nobody minds.
//
// What the weaker register buys (the paper's concluding trade-off): a
// publish costs one round and one causal log (vs. two rounds and two logs
// for the persistent-atomic write), and a poll costs one round and never
// logs — "in a system where logging is very expensive ... it does not make
// sense to emulate safe or even regular memory" only holds because atomic
// reads are also log-free when quiescent; when the writer publishes
// continuously, the regular register's polls stay log-free while atomic
// reads would keep paying the write-back log.
//
//	go run ./examples/telemetry
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"recmem"
)

// reading is a sensor sample.
type reading struct {
	seq  uint32
	temp float64
}

func (r reading) encode() []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf, r.seq)
	binary.BigEndian.PutUint64(buf[4:], math.Float64bits(r.temp))
	return buf
}

func decode(b []byte) (reading, bool) {
	if len(b) != 12 {
		return reading{}, false
	}
	return reading{
		seq:  binary.BigEndian.Uint32(b),
		temp: math.Float64frombits(binary.BigEndian.Uint64(b[4:])),
	}, true
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	c, err := recmem.New(5, recmem.RegularRegister,
		recmem.WithRetransmitEvery(5*time.Millisecond))
	if err != nil {
		return err
	}
	defer c.Close()

	const publishes = 20
	sensor := c.Process(0)            // the designated single writer
	feed := sensor.Register("sensor") // the publish handle, resolved once

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Consumers on three other processes poll continuously and check that
	// the sequence numbers they observe never regress by more than the one
	// in-flight publish (regularity: last completed or concurrent).
	// Consumer 3 polls with safe reads (WithConsistency(Safety)): a §VI
	// safe read is served by the writer alone — 2 messages instead of a
	// majority fan-out — and blocks while the sensor is down instead of
	// degrading.
	for _, p := range []int{1, 2, 3} {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			poll := c.Process(p).Register("sensor")
			var opts []recmem.OpOption
			if p == 3 {
				opts = append(opts, recmem.WithConsistency(recmem.Safety))
			}
			var lastSeen uint32
			polls := 0
			for {
				select {
				case <-stop:
					fmt.Printf("consumer %d: %d polls, last seq %d\n", p, polls, lastSeen)
					return
				default:
				}
				raw, err := poll.Read(ctx, opts...)
				if err != nil {
					log.Printf("consumer %d: %v", p, err)
					return
				}
				if len(raw) == 0 {
					continue // nothing published yet
				}
				r, ok := decode(raw)
				if !ok {
					log.Printf("consumer %d: corrupt reading", p)
					return
				}
				// Regularity bound: a poll may lag the newest publish by at
				// most the one concurrent write, so the observed sequence
				// may regress by at most 1 relative to our own history.
				if r.seq+1 < lastSeen {
					log.Printf("consumer %d: regression %d -> %d", p, lastSeen, r.seq)
					return
				}
				if r.seq > lastSeen {
					lastSeen = r.seq
				}
				polls++
			}
		}(p)
	}

	// The sensor publishes, surviving a crash in the middle of the run.
	for i := uint32(1); i <= publishes; i++ {
		r := reading{seq: i, temp: 20 + 5*math.Sin(float64(i)/3)}
		if err := feed.Write(ctx, r.encode()); err != nil {
			return fmt.Errorf("publish %d: %w", i, err)
		}
		if i == publishes/2 {
			if err := sensor.Crash(ctx); err != nil {
				return err
			}
			fmt.Println("sensor crashed mid-run")
			if err := sensor.Recover(ctx); err != nil {
				return err
			}
			fmt.Println("sensor recovered, publishing resumes")
		}
	}
	close(stop)
	wg.Wait()

	// Final value is the last publish, at every consumer.
	for _, p := range []int{1, 2, 3, 4} {
		raw, err := c.Process(p).Read(ctx, "sensor")
		if err != nil {
			return err
		}
		r, _ := decode(raw)
		if r.seq != publishes {
			return fmt.Errorf("consumer %d ended at seq %d, want %d", p, r.seq, publishes)
		}
	}
	fmt.Printf("all consumers converged on seq %d\n", publishes)

	if err := c.Verify(); err != nil {
		return fmt.Errorf("regularity verification failed: %w", err)
	}
	fmt.Println("history verified: single-writer regularity holds")
	fmt.Printf("publish latency %v, poll latency %v\n",
		c.WriteLatency().Mean.Round(time.Microsecond),
		c.ReadLatency().Mean.Round(time.Microsecond))
	return nil
}
