// faultdemo reproduces Figure 1 of the paper live: the same crash schedule
// is run against the transient-atomic emulation (Fig. 5) and the
// persistent-atomic emulation (Fig. 4), showing the observable difference
// between the two consistency criteria.
//
// Schedule (writer is process 0, reader is process 1):
//
//	W(v1) completes everywhere.
//	W(v2) reaches only process 3, then the writer crashes and recovers.
//	R1 reads with a quorum that misses process 3.
//	R2 reads with a quorum that includes process 3.
//
// Under the transient algorithm, R1 returns v1 and R2 returns v2: the
// crashed write "overlaps" the writer's recovery — permitted by transient
// atomicity, rejected by the persistent checker. Under the persistent
// algorithm, recovery finishes W(v2) before anything else, so both reads
// return v2 and the run is persistent-atomic.
//
//	go run ./examples/faultdemo
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"recmem"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== transient-atomic emulation (Fig. 5) ===")
	if err := schedule(recmem.TransientAtomic); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== persistent-atomic emulation (Fig. 4) ===")
	return schedule(recmem.PersistentAtomic)
}

func schedule(algo recmem.Algorithm) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c, err := recmem.New(5, algo, recmem.WithRetransmitEvery(5*time.Millisecond))
	if err != nil {
		return err
	}
	defer c.Close()

	writer, reader := c.Process(0), c.Process(1)

	if err := writer.Write(ctx, "x", []byte("v1")); err != nil {
		return err
	}
	time.Sleep(20 * time.Millisecond) // let every replica adopt v1
	fmt.Println("W(v1) completed")

	// W(v2): propagation reaches only process 3; the writer's quorums are
	// pinned to {0,1,2} so the operation cannot finish; then the writer
	// crashes.
	c.RestrictAcks(0, 0, 1, 2)
	c.RestrictWritePropagation(0, 3)
	done := make(chan error, 1)
	go func() { done <- writer.Write(ctx, "x", []byte("v2")) }()
	waitForV2(ctx, c)
	if err := writer.Crash(ctx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, recmem.ErrCrashed) {
		return fmt.Errorf("W(v2) should be interrupted, got %v", err)
	}
	fmt.Println("W(v2) crashed mid-write (reached only process 3)")

	c.ClearNetworkScript()
	if err := writer.Recover(ctx); err != nil {
		return err
	}
	fmt.Println("writer recovered")

	// W(v3) starts but its propagation is held: Figure 1's reads run while
	// the writer's next write is in progress. (Persistent atomicity bounds
	// the crashed W(v2) at this invocation; that is what makes the
	// overlapping-write outcome a persistent violation.)
	c.RestrictAcks(0, 0, 1, 2)
	c.RestrictWritePropagation(0 /* nobody */)
	v3done := make(chan error, 1)
	go func() { v3done <- writer.Write(ctx, "x", []byte("v3")) }()
	time.Sleep(20 * time.Millisecond) // let W(v3)'s invocation be recorded
	fmt.Println("W(v3) in progress")

	// R1 with a quorum missing process 3; R2 with a quorum including it.
	c.RestrictAcks(1, 0, 1, 2)
	r1, err := reader.Read(ctx, "x")
	if err != nil {
		return err
	}
	c.RestrictAcks(1, 1, 2, 3)
	r2, err := reader.Read(ctx, "x")
	if err != nil {
		return err
	}
	c.ClearNetworkScript()
	if err := <-v3done; err != nil {
		return fmt.Errorf("W(v3): %w", err)
	}
	fmt.Printf("R1 = %q, R2 = %q (during W(v3))\n", r1, r2)

	transientOK := c.VerifyCriterion(recmem.TransientAtomicity)
	persistentOK := c.VerifyCriterion(recmem.PersistentAtomicity)
	fmt.Printf("transient-atomicity check:  %v\n", verdict(transientOK))
	fmt.Printf("persistent-atomicity check: %v\n", verdict(persistentOK))

	switch algo {
	case recmem.TransientAtomic:
		if transientOK != nil {
			return fmt.Errorf("transient run must satisfy transient atomicity: %w", transientOK)
		}
		// The overlapping write is visible exactly when the quorums split;
		// in that case the run is not persistent-atomic — which is the
		// figure's point.
		if string(r1) == "v1" && string(r2) == "v2" && persistentOK == nil {
			return errors.New("checker failed to flag the overlapping write")
		}
	case recmem.PersistentAtomic:
		if persistentOK != nil {
			return fmt.Errorf("persistent run must satisfy persistent atomicity: %w", persistentOK)
		}
		if string(r1) != "v2" || string(r2) != "v2" {
			return fmt.Errorf("persistent recovery must finish W(v2); reads = %q, %q", r1, r2)
		}
	}
	return nil
}

// waitForV2 polls process 3's volatile state until v2 reached it.
func waitForV2(ctx context.Context, c *recmem.Cluster) {
	for {
		if val, ok := c.Process(3).Peek("x"); ok && string(val) == "v2" {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func verdict(err error) string {
	if err == nil {
		return "PASS"
	}
	return "VIOLATION (" + err.Error() + ")"
}
