// kvstore: a replicated key-value store built on the emulated shared
// memory — the paper's motivation that "distributed programming with a
// shared memory is usually considered easier than with message passing"
// made concrete: the store is ~40 lines because every key is just an atomic
// register; replication, fault tolerance and recovery come from the
// emulation.
//
// The demo runs concurrent clients against different processes while a
// process crashes and recovers mid-run, then verifies the whole history.
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"recmem"
)

// KV is a multi-reader multi-writer key-value store. Each client is bound
// to one backend client; any client may access any key. The store is
// written against the backend-agnostic recmem.Client interface, so the same
// code runs on the simulated cluster (as here) or on a live TCP mesh
// through remote.Dial. Register handles are cached per key: the per-key
// dispatcher resolution happens on first touch, not on every operation.
type KV struct {
	c    recmem.Client
	mu   sync.Mutex
	keys map[string]*recmem.Register
}

// NewKV builds a store over any backend client.
func NewKV(c recmem.Client) *KV {
	return &KV{c: c, keys: make(map[string]*recmem.Register)}
}

// register returns the cached handle for key.
func (kv *KV) register(key string) *recmem.Register {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	r := kv.keys[key]
	if r == nil {
		r = kv.c.Register(key)
		kv.keys[key] = r
	}
	return r
}

// Put stores value under key, surviving any minority of crashed processes
// and any number of crash-recoveries.
func (kv *KV) Put(ctx context.Context, key, value string) error {
	return kv.register(key).Write(ctx, []byte(value))
}

// Get returns the latest value of key ("" if never set). Gets are atomic:
// two sequential Gets never observe values out of write order.
func (kv *KV) Get(ctx context.Context, key string) (string, error) {
	val, err := kv.register(key).Read(ctx)
	return string(val), err
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	c, err := recmem.New(5, recmem.PersistentAtomic,
		recmem.WithRetransmitEvery(5*time.Millisecond))
	if err != nil {
		return err
	}
	defer c.Close()

	// Three clients on three different processes share the store.
	clients := []*KV{NewKV(c.Process(0)), NewKV(c.Process(1)), NewKV(c.Process(2))}

	var wg sync.WaitGroup
	for i, kv := range clients {
		wg.Add(1)
		go func(i int, kv *KV) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				key := fmt.Sprintf("user:%d", round%3)
				val := fmt.Sprintf("client%d-round%d", i, round)
				if err := kv.Put(ctx, key, val); err != nil {
					log.Printf("client %d put: %v", i, err)
					return
				}
				if _, err := kv.Get(ctx, key); err != nil {
					log.Printf("client %d get: %v", i, err)
					return
				}
			}
		}(i, kv)
	}

	// Meanwhile, a replica that no client talks to fails and recovers —
	// the clients never notice.
	chaos := c.Process(4)
	time.Sleep(5 * time.Millisecond)
	if err := chaos.Crash(ctx); err != nil {
		return err
	}
	fmt.Println("process 4 crashed mid-run")
	time.Sleep(10 * time.Millisecond)
	if err := chaos.Recover(ctx); err != nil {
		return err
	}
	fmt.Println("process 4 recovered")

	wg.Wait()

	// Read the final state from the process that crashed: it catches up
	// through the protocol (and its reads are atomic like everyone's).
	kv4 := NewKV(chaos)
	for k := 0; k < 3; k++ {
		key := fmt.Sprintf("user:%d", k)
		val, err := kv4.Get(ctx, key)
		if err != nil {
			return err
		}
		fmt.Printf("%s = %q (read at the recovered process)\n", key, val)
	}

	if err := c.Verify(); err != nil {
		return fmt.Errorf("atomicity verification failed: %w", err)
	}
	fmt.Println("all operations verified persistent-atomic")
	fmt.Printf("latencies: put %v, get %v\n",
		c.WriteLatency().Mean.Round(time.Microsecond),
		c.ReadLatency().Mean.Round(time.Microsecond))
	return nil
}
