// kvstore: a replicated key-value store built on the emulated shared
// memory — the paper's motivation that "distributed programming with a
// shared memory is usually considered easier than with message passing"
// made concrete: the store is ~40 lines because every key is just an atomic
// register; replication, fault tolerance and recovery come from the
// emulation.
//
// The demo runs concurrent clients against different processes while a
// process crashes and recovers mid-run, then verifies the whole history.
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"recmem"
)

// KV is a multi-reader multi-writer key-value store. Each client is bound
// to one emulated process; any client may access any key.
type KV struct {
	p *recmem.Process
}

// Put stores value under key, surviving any minority of crashed processes
// and any number of crash-recoveries.
func (kv *KV) Put(ctx context.Context, key, value string) error {
	return kv.p.Write(ctx, key, []byte(value))
}

// Get returns the latest value of key ("" if never set). Gets are atomic:
// two sequential Gets never observe values out of write order.
func (kv *KV) Get(ctx context.Context, key string) (string, error) {
	val, err := kv.p.Read(ctx, key)
	return string(val), err
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	c, err := recmem.New(5, recmem.PersistentAtomic,
		recmem.WithRetransmitEvery(5*time.Millisecond))
	if err != nil {
		return err
	}
	defer c.Close()

	// Three clients on three different processes share the store.
	clients := []*KV{{c.Process(0)}, {c.Process(1)}, {c.Process(2)}}

	var wg sync.WaitGroup
	for i, kv := range clients {
		wg.Add(1)
		go func(i int, kv *KV) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				key := fmt.Sprintf("user:%d", round%3)
				val := fmt.Sprintf("client%d-round%d", i, round)
				if err := kv.Put(ctx, key, val); err != nil {
					log.Printf("client %d put: %v", i, err)
					return
				}
				if _, err := kv.Get(ctx, key); err != nil {
					log.Printf("client %d get: %v", i, err)
					return
				}
			}
		}(i, kv)
	}

	// Meanwhile, a replica that no client talks to fails and recovers —
	// the clients never notice.
	chaos := c.Process(4)
	time.Sleep(5 * time.Millisecond)
	chaos.Crash()
	fmt.Println("process 4 crashed mid-run")
	time.Sleep(10 * time.Millisecond)
	if err := chaos.Recover(ctx); err != nil {
		return err
	}
	fmt.Println("process 4 recovered")

	wg.Wait()

	// Read the final state from the process that crashed: it catches up
	// through the protocol (and its reads are atomic like everyone's).
	kv4 := &KV{chaos}
	for k := 0; k < 3; k++ {
		key := fmt.Sprintf("user:%d", k)
		val, err := kv4.Get(ctx, key)
		if err != nil {
			return err
		}
		fmt.Printf("%s = %q (read at the recovered process)\n", key, val)
	}

	if err := c.Verify(); err != nil {
		return fmt.Errorf("atomicity verification failed: %w", err)
	}
	fmt.Println("all operations verified persistent-atomic")
	fmt.Printf("latencies: put %v, get %v\n",
		c.WriteLatency().Mean.Round(time.Microsecond),
		c.ReadLatency().Mean.Round(time.Microsecond))
	return nil
}
