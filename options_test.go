package recmem_test

import (
	"strings"
	"testing"
	"time"

	"recmem"
)

// TestNewRejectsBadOptions checks that out-of-range probabilities and
// negative latencies are refused at New with a descriptive error instead of
// applying silently.
func TestNewRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  recmem.Option
		want string
	}{
		{"loss negative", recmem.WithMessageLoss(-0.1), "WithMessageLoss"},
		{"loss one", recmem.WithMessageLoss(1), "WithMessageLoss"},
		{"loss above one", recmem.WithMessageLoss(1.7), "WithMessageLoss"},
		{"dup negative", recmem.WithDuplication(-0.2), "WithDuplication"},
		{"dup one", recmem.WithDuplication(1), "WithDuplication"},
		{"negative propagation", recmem.WithNetwork(-time.Millisecond, 0, 0), "network latency"},
		{"negative jitter", recmem.WithNetwork(time.Millisecond, -time.Microsecond, 0), "network latency"},
		{"negative bandwidth", recmem.WithNetwork(0, 0, -12.5e6), "network bandwidth"},
		{"negative disk delay", recmem.WithDisk(-time.Millisecond, 0), "disk store delay"},
		{"negative disk bandwidth", recmem.WithDisk(0, -1), "disk bandwidth"},
		{"negative retransmit", recmem.WithRetransmitEvery(-time.Second), "retransmission"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := recmem.New(3, recmem.PersistentAtomic, tc.opt)
			if err == nil {
				c.Close()
				t.Fatalf("New accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNewAcceptsEdgeOptions checks the legal boundary values still work.
func TestNewAcceptsEdgeOptions(t *testing.T) {
	c, err := recmem.New(3, recmem.PersistentAtomic,
		recmem.WithMessageLoss(0),
		recmem.WithDuplication(0.5),
		recmem.WithNetwork(0, 0, 0),
		recmem.WithDisk(0, 0),
		recmem.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c, err = recmem.New(1, recmem.CrashStop, recmem.WithMessageLoss(0.999))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
