package recmem

import (
	"context"
	"fmt"

	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/tag"
)

// Tag is a write timestamp of the emulation: the paper's lexicographic
// [sn, pid] pair (plus the hardened-variant recovery tiebreak). Operations
// report the tag adopted for their value as a "tag witness" — server-side
// ordering evidence that history merging uses where client clocks cannot
// order events (see WithWitness and docs/adr/0004).
type Tag = tag.Tag

// TagWitness is implemented by operation futures that can report their
// operation's tag witness once complete — the simulated cluster's futures
// and the remote package's. ok is false before completion and for
// operations without a witness.
type TagWitness interface {
	TagWitness() (wit Tag, ok bool)
}

// EpochWitness is implemented by operation futures that can report the
// incarnation epoch their operation completed under (see WithEpoch and
// docs/adr/0006) — the simulated cluster's futures and the remote package's.
// ok is false before completion and for failed operations; unlike the tag
// witness, every successful operation carries an epoch.
type EpochWitness interface {
	Incarnation() (epoch uint64, ok bool)
}

// Register is a first-class handle on one named register, obtained from a
// Client (Process.Register or remote.Client.Register). The handle caches
// everything per-register the backend would otherwise resolve on every
// operation — for the simulated cluster that is the batching engine's
// dispatcher shard and queue and the per-register write lock, so handle
// operations skip the per-op string-map lookups of the Process-level
// convenience methods. Handles are safe for concurrent use.
type Register struct {
	name string
	b    RegisterBackend
}

// NewRegister builds a handle over a backend driver. Applications obtain
// handles from a Client; NewRegister exists for backend implementations
// (the remote package, the workload drivers).
func NewRegister(name string, b RegisterBackend) *Register {
	return &Register{name: name, b: b}
}

// Name returns the register name.
func (r *Register) Name() string { return r.name }

// Read returns the register's current value (nil if never written) under
// the algorithm's criterion. Options: WithDeadline, WithCost,
// WithConsistency (RegularRegister only).
func (r *Register) Read(ctx context.Context, opts ...OpOption) ([]byte, error) {
	o := resolveOpts(opts)
	ctx, cancel := o.opCtx(ctx)
	defer cancel()
	val, op, err := r.b.Read(ctx, o)
	if o.Cost != nil {
		*o.Cost = op
	}
	return val, err
}

// Write writes val to the register, blocking until a majority of processes
// acknowledges. Options: WithDeadline, WithCost.
func (r *Register) Write(ctx context.Context, val []byte, opts ...OpOption) error {
	o := resolveOpts(opts)
	if o.Consistency != 0 {
		return fmt.Errorf("recmem: WithConsistency applies to reads, not writes")
	}
	ctx, cancel := o.opCtx(ctx)
	defer cancel()
	op, err := r.b.Write(ctx, val, o)
	if o.Cost != nil {
		*o.Cost = op
	}
	return err
}

// SubmitWrite asynchronously writes val through the backend's batching
// engine and returns a future for the acknowledgement. Submissions to one
// register that are concurrently in flight coalesce into a single quorum
// round; submissions to different registers pipeline. See
// Process.SubmitWrite for the history-verification caveat on large bursts.
//
// Admission errors (down process, non-writer under RegularRegister) surface
// at submission when the backend knows its process state locally (the
// simulated cluster) and through the future when it must round-trip to
// learn it (remote clients); callers must check both.
func (r *Register) SubmitWrite(val []byte, opts ...OpOption) (*WriteFuture, error) {
	o := resolveOpts(opts)
	if o.Consistency != 0 {
		return nil, fmt.Errorf("recmem: WithConsistency applies to reads, not writes")
	}
	f, err := r.b.SubmitWrite(val, o)
	if err != nil {
		return nil, err
	}
	return &WriteFuture{f: f}, nil
}

// SubmitRead asynchronously reads through the backend's batching engine;
// concurrent submitted reads of one register share a single quorum round.
func (r *Register) SubmitRead(opts ...OpOption) (*ReadFuture, error) {
	f, err := r.b.SubmitRead(resolveOpts(opts))
	if err != nil {
		return nil, err
	}
	return &ReadFuture{f: f}, nil
}

// RegisterBackend is the driver interface behind a Register handle; it is
// what a backend (the simulated cluster, the remote package's TCP client)
// implements per register. Applications never call it directly.
type RegisterBackend interface {
	// Read performs a synchronous read and returns the value and the
	// operation id.
	Read(ctx context.Context, o OpOptions) ([]byte, OpID, error)
	// Write performs a synchronous write and returns the operation id.
	Write(ctx context.Context, val []byte, o OpOptions) (OpID, error)
	// SubmitRead starts an asynchronous read.
	SubmitRead(o OpOptions) (Future, error)
	// SubmitWrite starts an asynchronous write.
	SubmitWrite(val []byte, o OpOptions) (Future, error)
}

// Future is the driver-level pending operation behind WriteFuture and
// ReadFuture. The simulated cluster's futures resolve when their quorum
// rounds commit; remote futures resolve when the node's response frame
// arrives.
type Future interface {
	// Op returns the operation id for accounting: immediately for the
	// simulated cluster, once Done for remote operations (0 before).
	Op() uint64
	// Done returns a channel closed when the operation completes.
	Done() <-chan struct{}
	// Wait blocks until the operation completes or ctx is done; the value
	// is the read result (nil for writes). Cancelling ctx abandons the
	// wait, not the operation.
	Wait(ctx context.Context) ([]byte, error)
}

// WriteFuture is the pending acknowledgement of a submitted write.
type WriteFuture struct {
	f Future
}

// Op returns the operation id for cost accounting (see Future.Op).
func (w *WriteFuture) Op() OpID { return OpID(w.f.Op()) }

// Done returns a channel closed when the write completes.
func (w *WriteFuture) Done() <-chan struct{} { return w.f.Done() }

// Wait blocks until the write is acknowledged by a majority (nil), the
// process crashes mid-operation (ErrCrashed), or ctx is done. Cancelling ctx
// abandons the wait, not the write.
func (w *WriteFuture) Wait(ctx context.Context) error {
	_, err := w.f.Wait(ctx)
	return err
}

// TagWitness reports the tag adopted for the write, once complete; ok is
// false before completion and on drivers without witnesses.
func (w *WriteFuture) TagWitness() (Tag, bool) { return futureWitness(w.f) }

// Incarnation reports the epoch the write completed under (docs/adr/0006);
// ok is false before completion, on failure, and on drivers without epochs.
func (w *WriteFuture) Incarnation() (uint64, bool) { return futureEpoch(w.f) }

// ReadFuture is the pending result of a submitted read.
type ReadFuture struct {
	f Future
}

// Op returns the operation id for cost accounting (see Future.Op).
func (r *ReadFuture) Op() OpID { return OpID(r.f.Op()) }

// Done returns a channel closed when the read completes.
func (r *ReadFuture) Done() <-chan struct{} { return r.f.Done() }

// Wait blocks until the read completes and returns its value (nil is the
// register's initial value ⊥).
func (r *ReadFuture) Wait(ctx context.Context) ([]byte, error) {
	return r.f.Wait(ctx)
}

// TagWitness reports the tag of the value the read returned, once complete.
func (r *ReadFuture) TagWitness() (Tag, bool) { return futureWitness(r.f) }

// Incarnation reports the epoch the read completed under (docs/adr/0006).
func (r *ReadFuture) Incarnation() (uint64, bool) { return futureEpoch(r.f) }

func futureWitness(f Future) (Tag, bool) {
	if tw, ok := f.(TagWitness); ok {
		return tw.TagWitness()
	}
	return Tag{}, false
}

func futureEpoch(f Future) (uint64, bool) {
	if ew, ok := f.(EpochWitness); ok {
		return ew.Incarnation()
	}
	return 0, false
}

// ReadMode resolves the WithConsistency selection to the core-level read
// mode (whose numbering is also the remote protocol's consistency byte).
// It is driver plumbing for RegisterBackend implementations — the single
// source of the mapping, shared by the cluster, workload and remote
// backends; applications never call it.
func (o OpOptions) ReadMode() (core.ReadMode, error) {
	switch o.Consistency {
	case 0:
		return core.ReadDefault, nil
	case Regularity:
		return core.ReadRegular, nil
	case Safety:
		return core.ReadSafe, nil
	default:
		return 0, fmt.Errorf("recmem: consistency %v is not selectable per read (only Regularity and Safety, under RegularRegister)", o.Consistency)
	}
}

// ErrBadConsistency is returned by reads whose WithConsistency selection is
// not available under the cluster's algorithm.
var ErrBadConsistency = core.ErrBadConsistency

// processRegister is the simulated cluster's RegisterBackend: a thin layer
// over the cluster-internal handle, which caches the core-level resolution
// and records history/latency like every other operation.
type processRegister struct {
	h *cluster.Handle
}

var _ RegisterBackend = processRegister{}

func (b processRegister) Read(ctx context.Context, o OpOptions) ([]byte, OpID, error) {
	mode, err := o.ReadMode()
	if err != nil {
		return nil, 0, err
	}
	val, rep, err := b.h.Read(ctx, mode)
	if o.Witness != nil {
		*o.Witness = rep.Tag
	}
	if o.Epoch != nil {
		*o.Epoch = rep.Epoch
	}
	return val, OpID(rep.Op), err
}

func (b processRegister) Write(ctx context.Context, val []byte, o OpOptions) (OpID, error) {
	rep, err := b.h.Write(ctx, val)
	if o.Witness != nil {
		*o.Witness = rep.Tag
	}
	if o.Epoch != nil {
		*o.Epoch = rep.Epoch
	}
	return OpID(rep.Op), err
}

func (b processRegister) SubmitRead(o OpOptions) (Future, error) {
	mode, err := o.ReadMode()
	if err != nil {
		return nil, err
	}
	return b.h.SubmitRead(mode)
}

func (b processRegister) SubmitWrite(val []byte, o OpOptions) (Future, error) {
	return b.h.SubmitWrite(val)
}

// The cluster backend's futures satisfy the driver interface directly, and
// report tag and epoch witnesses.
var (
	_ Future       = (*core.Future)(nil)
	_ TagWitness   = (*core.Future)(nil)
	_ EpochWitness = (*core.Future)(nil)
	_ TagWitness   = (*WriteFuture)(nil)
	_ EpochWitness = (*WriteFuture)(nil)
	_ TagWitness   = (*ReadFuture)(nil)
	_ EpochWitness = (*ReadFuture)(nil)
)
