// Command recmem-bench regenerates the paper's Figure 6 on the calibrated
// simulated testbed (δ ≈ 0.1 ms LAN transit, λ ≈ 0.2 ms synchronous disk
// logging — §V of the paper).
//
// Usage:
//
//	recmem-bench -experiment fig6a          # write latency vs. cluster size
//	recmem-bench -experiment fig6b          # write latency vs. payload size
//	recmem-bench -experiment batch          # batched vs. unbatched throughput
//	recmem-bench -experiment disks          # fsync amortization per storage engine
//	recmem-bench -experiment all -writes 50
//	recmem-bench -experiment batch -batch 64 -pipeline 8 -disk wal
//
// The output is one table per experiment with a column per algorithm
// (crash-stop / transient / persistent), directly comparable to the paper's
// two graphs: expect the 4δ / 4δ+λ / 4δ+2λ ladder (≈ 500/700/900 µs at
// n = 5) in fig6a and linear growth with payload size in fig6b.
//
// The batch experiment goes beyond the paper: it drives the same workload
// through the synchronous one-at-a-time API and through the batching +
// pipelining engine (-batch sets the per-client submission window, -pipeline
// the number of independent registers) and reports the throughput each
// achieves for every algorithm kind. -disk selects the stable-storage engine
// (mem: the calibrated simulated disk; file: one fsynced file per record;
// wal: the log-structured group-commit engine; sharded: the sharded
// compacting engine). The disks experiment runs the batched workload on
// every engine and reports each one's sync bill — how many causal-log
// records one disk flush amortizes.
//
// The namespace experiment (-experiment namespace) is the register-scale
// sweep: for each register count it populates wal and sharded stores
// through the batched durability path and reports load throughput, cold
// recovery (reopen) time and post-recovery probe latency, appending the
// rows to BENCH_namespace.json with -json (see namespace.go).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"recmem/internal/experiments"
	"recmem/internal/stable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "fig6a, fig6b, batch, disks, remote, namespace, or all")
		nodes      = fs.String("nodes", "", "comma-separated recmem-node control addresses for -experiment remote (empty: boot an in-process loopback mesh)")
		jsonPath   = fs.String("json", "", "append -experiment remote/namespace results to this trajectory file (BENCH_remote.json / BENCH_namespace.json)")
		commit     = fs.String("commit", "", "commit hash recorded in the -json entry")
		note       = fs.String("note", "", "free-form note recorded in the -json entry")
		writes     = fs.Int("writes", 50, "timed writes per data point (the paper uses 50)")
		warmup     = fs.Int("warmup", 5, "untimed warmup writes per data point")
		passes     = fs.Int("passes", 3, "time-spread passes per point; the best median is kept")
		ns         = fs.String("ns", "", "comma-separated cluster sizes for fig6a (default 2..9)")
		sizes      = fs.String("sizes", "", "comma-separated payload sizes in bytes for fig6b")
		batch      = fs.Int("batch", 32, "submission window per client for the batch experiment")
		pipeline   = fs.Int("pipeline", 4, "independent registers for the batch experiment")
		disk       = fs.String("disk", "mem", "stable-storage engine for batch/disks: mem, file, wal, or sharded")
		nsRegs     = fs.String("namespace-registers", "", "comma-separated register counts for -experiment namespace (default 1000,10000,100000,1000000)")
		nsVal      = fs.Int("namespace-value", 128, "register value size in bytes for -experiment namespace")
		timeout    = fs.Duration("timeout", 10*time.Minute, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *batch < 2 {
		return fmt.Errorf("-batch: window must be at least 2, got %d", *batch)
	}
	if *pipeline < 1 {
		return fmt.Errorf("-pipeline: need at least one register, got %d", *pipeline)
	}
	if !stable.ValidBackend(*disk) {
		return fmt.Errorf("-disk: unknown engine %q (want one of %s)", *disk, strings.Join(stable.Backends(), ", "))
	}
	opts := experiments.Options{
		Writes: *writes, Warmup: *warmup, Passes: *passes,
		Batch: *batch, Pipeline: *pipeline, DiskBackend: *disk,
	}
	var err error
	if opts.Ns, err = parseInts(*ns); err != nil {
		return fmt.Errorf("-ns: %w", err)
	}
	if opts.Sizes, err = parseInts(*sizes); err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}

	if *experiment == "fig6a" || *experiment == "all" {
		fmt.Println("Figure 6 (top): average write time vs. number of workstations, 4-byte values")
		fmt.Println("(paper: ~500/700/900 µs at n=5 for crash-stop/transient/persistent)")
		points, err := experiments.Fig6a(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintFig6a(os.Stdout, points)
		fmt.Println()
	}
	if *experiment == "fig6b" || *experiment == "all" {
		fmt.Println("Figure 6 (bottom): average write time vs. payload size, n = 5")
		fmt.Println("(paper: linear growth up to the 64 KB UDP limit)")
		points, err := experiments.Fig6b(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintFig6b(os.Stdout, points)
	}
	if *experiment == "batch" || *experiment == "all" {
		if *experiment == "all" {
			fmt.Println()
		}
		fmt.Printf("Batched vs. unbatched throughput, n = 5, %d registers, window %d, %s disks\n", *pipeline, *batch, *disk)
		fmt.Println("(coalesced quorum rounds + pipelined registers vs. one operation at a time)")
		points, err := experiments.Batch(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintBatch(os.Stdout, points)
	}
	if *experiment == "disks" || *experiment == "all" {
		if *experiment == "all" {
			fmt.Println()
		}
		fmt.Printf("Fsync amortization per storage engine, n = 5, persistent, %d registers, window %d\n", *pipeline, *batch)
		fmt.Println("(same coalesced batched workload; records/sync is the group-commit amortization)")
		points, err := experiments.Disks(ctx, opts)
		if err != nil {
			return err
		}
		experiments.PrintDisks(os.Stdout, points)
	}
	if *experiment == "remote" {
		var addrs []string
		if *nodes != "" {
			addrs = strings.Split(*nodes, ",")
		}
		return remoteBench(ctx, remoteBenchConfig{
			Addrs: addrs, Writes: *writes, Window: *batch, Registers: *pipeline,
			JSONPath: *jsonPath, Commit: *commit, Note: *note,
		})
	}
	if *experiment == "namespace" {
		registers, err := parseInts(*nsRegs)
		if err != nil {
			return fmt.Errorf("-namespace-registers: %w", err)
		}
		return namespaceBench(ctx, namespaceConfig{
			Registers: registers, ValueBytes: *nsVal, Batch: *batch,
			JSONPath: *jsonPath, Commit: *commit, Note: *note,
		})
	}
	switch *experiment {
	case "fig6a", "fig6b", "batch", "disks", "all":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

// parseInts parses a comma-separated integer list ("" -> nil, meaning
// defaults).
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d out of range", v)
		}
		out = append(out, v)
	}
	return out, nil
}
