package main

import "testing"

func TestParseInts(t *testing.T) {
	tests := []struct {
		give    string
		want    []int
		wantErr bool
	}{
		{give: "", want: nil},
		{give: "3", want: []int{3}},
		{give: "2, 5,9", want: []int{2, 5, 9}},
		{give: "x", wantErr: true},
		{give: "0", wantErr: true},
		{give: "-3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseInts(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("parseInts(%q) accepted", tt.give)
			}
			continue
		}
		if err != nil {
			t.Fatalf("parseInts(%q): %v", tt.give, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("parseInts(%q) = %v", tt.give, got)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("parseInts(%q) = %v", tt.give, got)
			}
		}
	}
}

func TestRunTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	err := run([]string{
		"-experiment", "fig6a",
		"-writes", "3", "-warmup", "1", "-passes", "1",
		"-ns", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-experiment", "fig6b",
		"-writes", "2", "-warmup", "1", "-passes", "1",
		"-sizes", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
	if err := run([]string{"-ns", "zebra"}); err == nil {
		t.Fatal("accepted bad -ns")
	}
	if err := run([]string{"-sizes", "-1"}); err == nil {
		t.Fatal("accepted bad -sizes")
	}
}
