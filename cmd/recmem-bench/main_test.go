package main

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/core"
	"recmem/internal/nettcp"
	"recmem/internal/stable"
	"recmem/remote"
)

func TestParseInts(t *testing.T) {
	tests := []struct {
		give    string
		want    []int
		wantErr bool
	}{
		{give: "", want: nil},
		{give: "3", want: []int{3}},
		{give: "2, 5,9", want: []int{2, 5, 9}},
		{give: "x", wantErr: true},
		{give: "0", wantErr: true},
		{give: "-3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseInts(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("parseInts(%q) accepted", tt.give)
			}
			continue
		}
		if err != nil {
			t.Fatalf("parseInts(%q): %v", tt.give, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("parseInts(%q) = %v", tt.give, got)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("parseInts(%q) = %v", tt.give, got)
			}
		}
	}
}

func TestRunTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	err := run([]string{
		"-experiment", "fig6a",
		"-writes", "3", "-warmup", "1", "-passes", "1",
		"-ns", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-experiment", "fig6b",
		"-writes", "2", "-warmup", "1", "-passes", "1",
		"-sizes", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
	if err := run([]string{"-ns", "zebra"}); err == nil {
		t.Fatal("accepted bad -ns")
	}
	if err := run([]string{"-sizes", "-1"}); err == nil {
		t.Fatal("accepted bad -sizes")
	}
}

// TestRemoteBench drives the remote experiment against an in-process
// 3-node TCP mesh.
func TestRemoteBench(t *testing.T) {
	meshes := make([]*nettcp.Mesh, 3)
	peers := make([]string, 3)
	for i := range meshes {
		m, err := nettcp.Listen(int32(i), "127.0.0.1:0", nettcp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		meshes[i] = m
		peers[i] = m.Addr()
	}
	ids := &atomic.Uint64{}
	addrs := make([]string, 3)
	for i := range meshes {
		meshes[i].SetPeers(peers)
		nd, err := core.NewNode(int32(i), 3, core.Persistent,
			core.Options{RetransmitEvery: 10 * time.Millisecond},
			core.Deps{Endpoint: meshes[i], Storage: stable.NewMemDisk(stable.Profile{}), IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := remote.Serve(ln, nd, remote.ServerOptions{})
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	var out strings.Builder
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := remoteBench(ctx, &out, addrs, 10, 4, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pipelined") {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

func TestRemoteExperimentNeedsNodes(t *testing.T) {
	if err := run([]string{"-experiment", "remote"}); err == nil {
		t.Fatal("accepted remote experiment without -nodes")
	}
}
