package main

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/core"
	"recmem/internal/nettcp"
	"recmem/internal/stable"
	"recmem/remote"
)

func TestParseInts(t *testing.T) {
	tests := []struct {
		give    string
		want    []int
		wantErr bool
	}{
		{give: "", want: nil},
		{give: "3", want: []int{3}},
		{give: "2, 5,9", want: []int{2, 5, 9}},
		{give: "x", wantErr: true},
		{give: "0", wantErr: true},
		{give: "-3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseInts(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Fatalf("parseInts(%q) accepted", tt.give)
			}
			continue
		}
		if err != nil {
			t.Fatalf("parseInts(%q): %v", tt.give, err)
		}
		if len(got) != len(tt.want) {
			t.Fatalf("parseInts(%q) = %v", tt.give, got)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("parseInts(%q) = %v", tt.give, got)
			}
		}
	}
}

func TestRunTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	err := run([]string{
		"-experiment", "fig6a",
		"-writes", "3", "-warmup", "1", "-passes", "1",
		"-ns", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = run([]string{
		"-experiment", "fig6b",
		"-writes", "2", "-warmup", "1", "-passes", "1",
		"-sizes", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
	if err := run([]string{"-ns", "zebra"}); err == nil {
		t.Fatal("accepted bad -ns")
	}
	if err := run([]string{"-sizes", "-1"}); err == nil {
		t.Fatal("accepted bad -sizes")
	}
}

// TestRemoteBench drives the remote experiment against an in-process
// 3-node TCP mesh.
func TestRemoteBench(t *testing.T) {
	meshes := make([]*nettcp.Mesh, 3)
	peers := make([]string, 3)
	for i := range meshes {
		m, err := nettcp.Listen(int32(i), "127.0.0.1:0", nettcp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		meshes[i] = m
		peers[i] = m.Addr()
	}
	ids := &atomic.Uint64{}
	addrs := make([]string, 3)
	for i := range meshes {
		meshes[i].SetPeers(peers)
		nd, err := core.NewNode(int32(i), 3, core.Persistent,
			core.Options{RetransmitEvery: 10 * time.Millisecond},
			core.Deps{Endpoint: meshes[i], Storage: stable.NewMemDisk(stable.Profile{}), IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := remote.Serve(ln, nd, remote.ServerOptions{})
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	var out strings.Builder
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	jsonPath := filepath.Join(t.TempDir(), "BENCH_remote.json")
	cfg := remoteBenchConfig{Addrs: addrs, Writes: 10, Window: 4, Registers: 2,
		JSONPath: jsonPath, Commit: "test", Out: &out}
	if err := remoteBench(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pipelined") {
		t.Fatalf("unexpected output: %q", out.String())
	}

	// The trajectory file appends entries under a pinned schema.
	if err := remoteBench(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trajectory file: %v", err)
	}
	if f.Schema != benchSchema || len(f.Entries) != 2 {
		t.Fatalf("trajectory = schema %q, %d entries", f.Schema, len(f.Entries))
	}
	for _, e := range f.Entries {
		if e.Mode != "mesh" || e.Write.Ops != 10 || e.Pipelined.OpsPerSec <= 0 {
			t.Fatalf("entry = %+v", e)
		}
	}
}

// TestRemoteBenchLoopback exercises the self-contained mode: no -nodes
// boots an in-process loopback mesh.
func TestRemoteBenchLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var out strings.Builder
	err := remoteBench(ctx, remoteBenchConfig{Writes: 8, Window: 4, Registers: 2, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loopback") {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

// TestAppendBenchEntryRejectsForeignSchema pins the trajectory-file
// contract: an unknown schema is an error, never silently rewritten.
func TestAppendBenchEntryRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_remote.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendBenchEntry(path, benchEntry{}); err == nil {
		t.Fatal("foreign schema accepted")
	}
	// The namespace trajectory enforces its own schema the same way.
	if err := appendTrajectory(path, nsSchema, nsEntry{}); err == nil {
		t.Fatal("namespace append accepted a foreign schema")
	}
}

// TestNamespaceBench runs a miniature register-count sweep over both
// engines and checks the trajectory file it appends: verified probes, both
// backends per count, pinned schema.
func TestNamespaceBench(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var out strings.Builder
	jsonPath := filepath.Join(t.TempDir(), "BENCH_namespace.json")
	cfg := namespaceConfig{
		Registers: []int{400}, ValueBytes: 64, Batch: 16,
		JSONPath: jsonPath, Commit: "test", Out: &out,
	}
	if err := namespaceBench(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	for _, backend := range nsBackends {
		if !strings.Contains(out.String(), backend) {
			t.Fatalf("output missing backend %s: %q", backend, out.String())
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var f trajectoryFile[nsEntry]
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trajectory file: %v", err)
	}
	if f.Schema != nsSchema || len(f.Entries) != 1 {
		t.Fatalf("trajectory = schema %q, %d entries", f.Schema, len(f.Entries))
	}
	entry := f.Entries[0]
	if len(entry.Rows) != 2*len(cfg.Registers) {
		t.Fatalf("entry has %d rows, want one per backend per count: %+v", len(entry.Rows), entry)
	}
	for _, row := range entry.Rows {
		if row.LoadOpsPerSec <= 0 || row.RecoveryMS <= 0 || row.ProbeUS <= 0 || row.DiskBytes <= 0 {
			t.Fatalf("row not measured: %+v", row)
		}
		if row.LoadOps != 400+400/4 {
			t.Fatalf("row loaded %d ops, want population + churn: %+v", row.LoadOps, row)
		}
	}
}
