package main

// The namespace experiment: the measured trajectory of ROADMAP item 1
// (million-register namespaces). For each register count it populates a
// fresh store through the batched durability path — records written in the
// core's written/ encoding, so they are a real register namespace, not just
// opaque blobs — then closes it and measures two cold restarts:
//
//   - storage-level: reopen the engine alone, the recovery a store performs
//     before serving Retrieves (wal replays its wholesale snapshot; sharded
//     reads per-shard footer indexes and a bounded segment tail);
//   - node-level: boot a real core.Node over the populated store and run
//     Crash+Recover — the bootRecover sequence of cmd/recmem-node — which is
//     the honest restart-before-serving metric at scale. With lazy core
//     recovery (docs/adr/0009) this is O(pending + index), not O(namespace).
//
// Columns per (backend, registers) row:
//
//	load ops/s  — batched population + 25% overwrite churn throughput
//	recovery    — Close-to-serving reopen time of the populated store
//	node reopen — storage open + NewNode + Recover over the same directory
//	probe       — mean cold Retrieve after reopen (sharded pays a pread
//	              here; wal serves from the map its recovery prebuilt)
//	disk        — bytes on disk after close
//
// A sample of registers is re-read and verified after each recovery — at the
// storage level against the encoded payload, at the node level through
// RegisterState — so a row can't look fast by dropping data.

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/tag"
)

// nsSchema names the BENCH_namespace.json layout; bump it when the entry
// shape changes incompatibly. v2 added node_reopen_ms (rows persisted under
// v1 predate the column and simply lack it) and switched the populated
// payloads to the core's written/ record encoding.
const nsSchema = "recmem/bench-namespace/v2"

// nsRow is one measured (backend, register-count) point.
type nsRow struct {
	Backend       string  `json:"backend"`
	Registers     int     `json:"registers"`
	LoadOps       int     `json:"load_ops"`
	LoadOpsPerSec float64 `json:"load_ops_per_sec"`
	RecoveryMS    float64 `json:"recovery_ms"`
	NodeReopenMS  float64 `json:"node_reopen_ms,omitempty"`
	ProbeUS       float64 `json:"probe_us"`
	DiskBytes     int64   `json:"disk_bytes"`
}

// nsEntry is one dated sweep.
type nsEntry struct {
	Date       string  `json:"date"`
	Commit     string  `json:"commit,omitempty"`
	Note       string  `json:"note,omitempty"`
	ValueBytes int     `json:"value_bytes"`
	Batch      int     `json:"batch"`
	Rows       []nsRow `json:"rows"`
}

// namespaceConfig carries the namespace experiment's knobs.
type namespaceConfig struct {
	// Registers are the namespace sizes to sweep (default 1k/10k/100k/1M).
	Registers []int
	// ValueBytes is the register payload size; Batch the StoreBatch size.
	ValueBytes, Batch int
	// JSONPath, when set, appends the entry to that trajectory file;
	// Commit and Note annotate it.
	JSONPath, Commit, Note string
	// Out receives the table (default os.Stdout).
	Out io.Writer
}

// nsBackends are the engines under comparison: the single-log baseline and
// the sharded store, in that order so each table reads before → after.
var nsBackends = []string{"wal", "sharded"}

// namespaceBench runs the namespace experiment.
func namespaceBench(ctx context.Context, cfg namespaceConfig) error {
	out := cfg.Out
	if out == nil {
		out = os.Stdout
	}
	if len(cfg.Registers) == 0 {
		cfg.Registers = []int{1000, 10000, 100000, 1000000}
	}
	if cfg.ValueBytes <= 4 {
		return fmt.Errorf("namespace: value size must exceed the 4-byte verification stamp, got %d", cfg.ValueBytes)
	}

	entry := nsEntry{
		Date: time.Now().UTC().Format(time.RFC3339), Commit: cfg.Commit, Note: cfg.Note,
		ValueBytes: cfg.ValueBytes, Batch: cfg.Batch,
	}
	fmt.Fprintf(out, "namespace sweep (%d-byte values, batch %d)\n", cfg.ValueBytes, cfg.Batch)
	fmt.Fprintf(out, "  %-8s %10s %12s %12s %15s %10s %10s\n",
		"backend", "registers", "load ops/s", "recovery ms", "node reopen ms", "probe µs", "disk MB")
	for _, count := range cfg.Registers {
		for _, backend := range nsBackends {
			row, err := measureNamespace(ctx, backend, count, cfg)
			if err != nil {
				return fmt.Errorf("namespace %s/%d: %w", backend, count, err)
			}
			entry.Rows = append(entry.Rows, row)
			fmt.Fprintf(out, "  %-8s %10d %12.0f %12.2f %15.2f %10.2f %10.1f\n",
				row.Backend, row.Registers, row.LoadOpsPerSec, row.RecoveryMS,
				row.NodeReopenMS, row.ProbeUS, float64(row.DiskBytes)/(1<<20))
		}
	}

	if cfg.JSONPath != "" {
		if err := appendTrajectory(cfg.JSONPath, nsSchema, entry); err != nil {
			return err
		}
		fmt.Fprintf(out, "  appended entry to %s\n", cfg.JSONPath)
	}
	return nil
}

// nsValue fills val with the deterministic content of register i at the
// given version: index stamp, version byte, then a repeating pattern. The
// post-recovery probes recompute it, so a backend cannot win by losing
// writes.
func nsValue(val []byte, i int, version byte) {
	binary.BigEndian.PutUint32(val[0:], uint32(i))
	val[4] = version
	for j := 5; j < len(val); j++ {
		val[j] = byte(i+j) | 1
	}
}

// nsTag is the deterministic adoption tag of register i at the given
// version — what a replica would have logged alongside the value.
func nsTag(i int, version byte) tag.Tag {
	return tag.Tag{Seq: int64(version) + 1, Writer: int32(i % 3)}
}

// nsRegName is the register name; nsName the written/ record it is logged
// under — the same record core recovery and lazy materialization read.
func nsRegName(i int) string { return fmt.Sprintf("r%07d", i) }

func nsName(i int) string { return core.WrittenRecordName(nsRegName(i)) }

// measureNamespace populates one fresh store and measures load throughput,
// cold-reopen (recovery) time, and post-recovery probe latency.
func measureNamespace(ctx context.Context, backend string, count int, cfg namespaceConfig) (nsRow, error) {
	row := nsRow{Backend: backend, Registers: count}
	dir, err := os.MkdirTemp("", "recmem-ns-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	d, err := stable.OpenBackend(backend, dir, stable.Profile{})
	if err != nil {
		return row, err
	}
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	// Initial population, then 25% overwrite churn: log-structured engines
	// must absorb dead versions, not just a pristine sorted load. Each phase
	// issues batches from a few concurrent workers — the engine's real
	// caller is the node's async dispatcher, whose in-flight rounds are what
	// group commit coalesces — with a barrier between the phases so every
	// churned register's second version lands after its first.
	churn := count / 4
	start := time.Now()
	if err := nsLoad(ctx, d, cfg.ValueBytes, batch, count, 0); err != nil {
		return row, err
	}
	if err := nsLoad(ctx, d, cfg.ValueBytes, batch, churn, 1); err != nil {
		return row, err
	}
	loadElapsed := time.Since(start)
	row.LoadOps = count + churn
	row.LoadOpsPerSec = float64(row.LoadOps) / loadElapsed.Seconds()
	if err := d.Close(); err != nil {
		return row, err
	}
	row.DiskBytes = dirBytes(dir)

	// Recovery: the cold reopen a restarted store performs before serving.
	start = time.Now()
	d2, err := stable.OpenBackend(backend, dir, stable.Profile{})
	if err != nil {
		return row, err
	}
	row.RecoveryMS = float64(time.Since(start).Nanoseconds()) / 1e6

	// Probe: sampled post-recovery reads, verified against the generator.
	probes := count
	if probes > 512 {
		probes = 512
	}
	stride := count / probes
	want := make([]byte, cfg.ValueBytes)
	start = time.Now()
	for p := 0; p < probes; p++ {
		i := p * stride
		data, ok, err := d2.Retrieve(nsName(i))
		if err != nil || !ok {
			d2.Close()
			return row, fmt.Errorf("probe %s: ok=%v err=%w", nsName(i), ok, err)
		}
		version := byte(0)
		if i < churn {
			version = 1
		}
		nsValue(want, i, version)
		if !bytesEqual(data, core.EncodeWrittenPayload(nsTag(i, version), want)) {
			d2.Close()
			return row, fmt.Errorf("probe %s: recovered %d-byte record does not match what was stored", nsName(i), len(data))
		}
	}
	row.ProbeUS = float64(time.Since(start).Microseconds()) / float64(probes)
	if err := d2.Close(); err != nil {
		return row, err
	}

	// Node-level reopen: the restart-before-serving cost of a real process —
	// open the engine, boot a core.Node over it, and run the Crash+Recover
	// sequence cmd/recmem-node performs before its control port opens. A
	// single-process emulation keeps the measurement about recovery, not
	// quorum traffic (the persistent recovery procedure only runs rounds for
	// pending writes, of which a cleanly closed store has none).
	nodeMS, err := measureNodeReopen(ctx, backend, dir, count, churn, cfg)
	if err != nil {
		return row, err
	}
	row.NodeReopenMS = nodeMS
	return row, nil
}

// measureNodeReopen boots a core.Node on the populated directory, times
// storage open + NewNode + Recover, then verifies sampled registers through
// the node's own view so a fast restart can't come from serving nothing.
func measureNodeReopen(ctx context.Context, backend, dir string, count, churn int, cfg namespaceConfig) (float64, error) {
	nw, err := netsim.New(1, netsim.Options{})
	if err != nil {
		return 0, err
	}
	defer nw.Close()
	var ids atomic.Uint64

	start := time.Now()
	d, err := stable.OpenBackend(backend, dir, stable.Profile{})
	if err != nil {
		return 0, err
	}
	defer d.Close()
	nd, err := core.NewNode(0, 1, core.Persistent, core.Options{}, core.Deps{
		Endpoint: nw.Endpoint(0), Storage: d, IDs: &ids,
	})
	if err != nil {
		return 0, err
	}
	defer nd.Close()
	nd.Crash(nil)
	if err := nd.Recover(ctx, nil, nil); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)

	probes := count
	if probes > 64 {
		probes = 64
	}
	stride := count / probes
	want := make([]byte, cfg.ValueBytes)
	for p := 0; p < probes; p++ {
		i := p * stride
		version := byte(0)
		if i < churn {
			version = 1
		}
		tg, val, ok := nd.RegisterState(nsRegName(i))
		if !ok {
			return 0, fmt.Errorf("node probe %s: no state after recovery", nsRegName(i))
		}
		nsValue(want, i, version)
		if tg != nsTag(i, version) || !bytesEqual(val, want) {
			return 0, fmt.Errorf("node probe %s: recovered state does not match what was stored", nsRegName(i))
		}
	}
	return float64(elapsed.Nanoseconds()) / 1e6, nil
}

// nsLoad stores registers [0, count) at the given version through batched
// StoreBatch calls issued by a small worker pool. Records are written in the
// core's written/ encoding so the populated directory is a real register
// namespace a Node can recover over.
func nsLoad(ctx context.Context, d stable.Storage, valueBytes, batch, count int, version byte) error {
	const workers = 4
	next := make(chan int, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			val := make([]byte, valueBytes)
			recs := make([]stable.Record, 0, batch)
			for from := range next {
				recs = recs[:0]
				for reg := from; reg < from+batch && reg < count; reg++ {
					nsValue(val, reg, version)
					recs = append(recs, stable.Record{
						Name: nsName(reg),
						Data: core.EncodeWrittenPayload(nsTag(reg, version), val),
					})
				}
				if err := d.StoreBatch(recs); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	var firstErr error
	for from := 0; from < count; from += batch {
		select {
		case next <- from:
		case err := <-errs:
			if firstErr == nil {
				firstErr = err
			}
		}
		if err := ctx.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
		if firstErr != nil {
			break
		}
	}
	close(next)
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dirBytes sums the file sizes under dir.
func dirBytes(dir string) int64 {
	var total int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			total += fi.Size()
		}
		return nil
	})
	return total
}

// trajectoryFile is the shared BENCH_*.json shape: a schema tag and the
// append-only entry list.
type trajectoryFile[E any] struct {
	Schema  string `json:"schema"`
	Entries []E    `json:"entries"`
}

// appendTrajectory appends entry to the trajectory file at path, creating
// it with the schema tag when absent and refusing any other schema.
func appendTrajectory[E any](path, schema string, entry E) error {
	var f trajectoryFile[E]
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if f.Schema != schema {
			return fmt.Errorf("%s: schema %q, want %q", path, f.Schema, schema)
		}
	case os.IsNotExist(err):
		f.Schema = schema
	default:
		return err
	}
	f.Entries = append(f.Entries, entry)
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
