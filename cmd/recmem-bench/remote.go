package main

// The remote experiment: the measured trajectory of the remote hot path
// (ROADMAP item 2). It drives a recmem-node mesh through the remote package
// and reports, for each of three instrument rows — closed-loop write,
// closed-loop read, pipelined write — the throughput (ops/s), latency
// (ns/op) and allocation bill (allocs/op). With -json the same rows are
// appended to a BENCH_remote.json trajectory file, so every PR's claim of
// "faster" is a committed number, not a vibe.
//
// Without -nodes the experiment boots an in-process 3-node loopback mesh
// (real TCP between the nodes and between client and control port): the
// reproducible configuration CI regenerates nightly. Against -nodes the
// same rows run over the live mesh. allocs/op is process-wide
// (runtime.MemStats): client+server combined over loopback, client-only
// against external nodes.

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"recmem"
	"recmem/internal/core"
	"recmem/internal/nettcp"
	"recmem/internal/stable"
	"recmem/remote"
)

// benchSchema names the BENCH_remote.json layout; bump it when the entry
// shape changes incompatibly.
const benchSchema = "recmem/bench-remote/v1"

// remoteBenchConfig carries the remote experiment's knobs.
type remoteBenchConfig struct {
	// Addrs are the control-port addresses; empty boots a loopback mesh.
	Addrs []string
	// Writes is the operation count per instrument row.
	Writes int
	// Window is the pipelined row's submission window; Registers how many
	// registers the rows spread over.
	Window, Registers int
	// JSONPath, when set, appends the entry to that trajectory file;
	// Commit and Note annotate it.
	JSONPath, Commit, Note string
	// Out receives the table (default os.Stdout).
	Out io.Writer
}

// benchRow is one measured instrument row.
type benchRow struct {
	Ops         int     `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchEntry is one dated run of the three rows.
type benchEntry struct {
	Date      string   `json:"date"`
	Commit    string   `json:"commit,omitempty"`
	Note      string   `json:"note,omitempty"`
	Mode      string   `json:"mode"`
	Nodes     int      `json:"nodes"`
	Registers int      `json:"registers"`
	Window    int      `json:"window"`
	Write     benchRow `json:"write"`
	Read      benchRow `json:"read"`
	Pipelined benchRow `json:"pipelined"`
}

// benchFile is the BENCH_remote.json shape: a schema tag and the
// append-only entry list.
type benchFile struct {
	Schema  string       `json:"schema"`
	Entries []benchEntry `json:"entries"`
}

// remoteBench runs the remote experiment.
func remoteBench(ctx context.Context, cfg remoteBenchConfig) error {
	out := cfg.Out
	if out == nil {
		out = os.Stdout
	}
	addrs, mode := cfg.Addrs, "mesh"
	if len(addrs) == 0 {
		mode = "loopback"
		loopback, cleanup, err := startLoopbackMesh(3)
		if err != nil {
			return err
		}
		defer cleanup()
		addrs = loopback
	}

	c, err := remote.Dial(strings.TrimSpace(addrs[0]), remote.Options{})
	if err != nil {
		return fmt.Errorf("dial %s: %w", addrs[0], err)
	}
	defer c.Close()

	regs := make([]*recmem.Register, cfg.Registers)
	for i := range regs {
		regs[i] = c.Register(fmt.Sprintf("bench%d", i))
	}
	val := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	for _, reg := range regs { // warmup: registers exist, connection is hot
		if err := reg.Write(ctx, val); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}

	entry := benchEntry{
		Date: time.Now().UTC().Format(time.RFC3339), Commit: cfg.Commit, Note: cfg.Note,
		Mode: mode, Nodes: len(addrs), Registers: cfg.Registers, Window: cfg.Window,
	}
	if entry.Write, err = measureRow(cfg.Writes, func(i int) error {
		return regs[i%len(regs)].Write(ctx, val)
	}); err != nil {
		return fmt.Errorf("write row: %w", err)
	}
	if entry.Read, err = measureRow(cfg.Writes, func(i int) error {
		_, err := regs[i%len(regs)].Read(ctx)
		return err
	}); err != nil {
		return fmt.Errorf("read row: %w", err)
	}
	if entry.Pipelined, err = measurePipelined(ctx, regs, val, cfg.Writes, cfg.Window); err != nil {
		return fmt.Errorf("pipelined row: %w", err)
	}

	fmt.Fprintf(out, "remote mesh (%d nodes, %s, %d registers, window %d)\n",
		len(addrs), mode, cfg.Registers, cfg.Window)
	fmt.Fprintf(out, "  %-10s %8s %10s %12s %11s\n", "op", "ops", "ops/s", "ns/op", "allocs/op")
	for _, row := range []struct {
		name string
		r    benchRow
	}{{"write", entry.Write}, {"read", entry.Read}, {"pipelined", entry.Pipelined}} {
		fmt.Fprintf(out, "  %-10s %8d %10.0f %12.0f %11.1f\n",
			row.name, row.r.Ops, row.r.OpsPerSec, row.r.NsPerOp, row.r.AllocsPerOp)
	}
	fmt.Fprintln(out, "  (allocs/op is process-wide: client+server over loopback, client-only against -nodes)")

	if cfg.JSONPath != "" {
		if err := appendBenchEntry(cfg.JSONPath, entry); err != nil {
			return err
		}
		fmt.Fprintf(out, "  appended entry to %s\n", cfg.JSONPath)
	}
	return nil
}

// measureRow runs ops closed-loop operations and samples the process's
// allocation counter around them.
func measureRow(ops int, fn func(i int) error) (benchRow, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := fn(i); err != nil {
			return benchRow{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return newBenchRow(ops, elapsed, m1.Mallocs-m0.Mallocs), nil
}

// measurePipelined runs ops writes with up to window futures in flight.
func measurePipelined(ctx context.Context, regs []*recmem.Register, val []byte, ops, window int) (benchRow, error) {
	futs := make([]*recmem.WriteFuture, 0, window)
	flush := func() error {
		for _, f := range futs {
			if err := f.Wait(ctx); err != nil {
				return err
			}
		}
		futs = futs[:0]
		return nil
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < ops; i++ {
		f, err := regs[i%len(regs)].SubmitWrite(val)
		if err != nil {
			return benchRow{}, err
		}
		futs = append(futs, f)
		if len(futs) == window {
			if err := flush(); err != nil {
				return benchRow{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return benchRow{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return newBenchRow(ops, elapsed, m1.Mallocs-m0.Mallocs), nil
}

func newBenchRow(ops int, elapsed time.Duration, mallocs uint64) benchRow {
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return benchRow{
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(mallocs) / float64(ops),
	}
}

// appendBenchEntry appends entry to the trajectory file, creating it with
// the schema tag when absent.
func appendBenchEntry(path string, entry benchEntry) error {
	return appendTrajectory(path, benchSchema, entry)
}

// startLoopbackMesh boots an in-process n-node mesh: real TCP between the
// nodes (nettcp) and a control-port server per node — the same shape as a
// deployed mesh, minus process isolation.
func startLoopbackMesh(n int) (addrs []string, cleanup func(), err error) {
	var closers []func()
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	defer func() {
		if err != nil {
			cleanup()
		}
	}()

	meshes := make([]*nettcp.Mesh, n)
	peers := make([]string, n)
	for i := range meshes {
		m, err := nettcp.Listen(int32(i), "127.0.0.1:0", nettcp.Options{})
		if err != nil {
			return nil, cleanup, err
		}
		closers = append(closers, func() { m.Close() })
		meshes[i] = m
		peers[i] = m.Addr()
	}
	ids := &atomic.Uint64{}
	addrs = make([]string, n)
	for i := range meshes {
		meshes[i].SetPeers(peers)
		nd, err := core.NewNode(int32(i), n, core.Persistent,
			core.Options{RetransmitEvery: 10 * time.Millisecond},
			core.Deps{Endpoint: meshes[i], Storage: stable.NewMemDisk(stable.Profile{}), IDs: ids})
		if err != nil {
			return nil, cleanup, err
		}
		closers = append(closers, nd.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, cleanup, err
		}
		srv := remote.Serve(ln, nd, remote.ServerOptions{OpTimeout: 30 * time.Second})
		closers = append(closers, func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs, cleanup, nil
}
