// Command recmem-torture stress-tests an emulation: it drives a concurrent
// read/write workload while randomly crashing and recovering processes (and
// optionally dropping/duplicating messages), then model-checks the recorded
// history against the algorithm's consistency criterion. A non-zero exit
// means a real atomicity violation was found.
//
// Usage:
//
//	recmem-torture -algorithm persistent -n 5 -ops 200 -rounds 10
//	recmem-torture -algorithm transient -loss 0.2 -dup 0.1 -seed 7
//	recmem-torture -algorithm persistent -disk wal -diskfail 0.2
//
// -disk selects the stable-storage engine (mem, file, or wal — the
// log-structured group-commit engine). -diskfail wraps every disk in a
// stable.Flaky that fails Store/StoreBatch with the given probability: a
// replica whose group commit fails acknowledges nothing, so the checkers
// prove that injected mid-group-commit failures never let an acknowledged
// log be lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-torture:", err)
		os.Exit(1)
	}
}

func algorithmByName(name string) (core.AlgorithmKind, error) {
	switch name {
	case "crash-stop":
		return core.CrashStop, nil
	case "transient":
		return core.Transient, nil
	case "persistent":
		return core.Persistent, nil
	case "naive":
		return core.Naive, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (crash-stop, transient, persistent, naive)", name)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-torture", flag.ContinueOnError)
	var (
		algorithm = fs.String("algorithm", "persistent", "crash-stop, transient, persistent, or naive")
		n         = fs.Int("n", 5, "number of processes")
		ops       = fs.Int("ops", 100, "operations per process per round")
		rounds    = fs.Int("rounds", 5, "independent torture rounds")
		seed      = fs.Int64("seed", time.Now().UnixNano(), "base random seed")
		loss      = fs.Float64("loss", 0, "message loss rate [0,1)")
		dup       = fs.Float64("dup", 0, "message duplication rate [0,1)")
		reads     = fs.Float64("reads", 0.4, "fraction of operations that are reads")
		regs      = fs.Int("registers", 2, "number of registers")
		hardened  = fs.Bool("hardened", false, "use hardened tags for the transient algorithm")
		faultFor  = fs.Duration("faults", time.Second, "fault-injection duration per round")
		traceCap  = fs.Int("trace", 0, "protocol trace capacity; dumped when a violation is found (0 = off)")
		disk      = fs.String("disk", "mem", "stable-storage engine: mem, file, or wal")
		diskFail  = fs.Float64("diskfail", 0, "injected Store/StoreBatch failure rate [0,1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := algorithmByName(*algorithm)
	if err != nil {
		return err
	}
	if !stable.ValidBackend(*disk) {
		return fmt.Errorf("-disk: unknown engine %q (want one of %s)", *disk, strings.Join(stable.Backends(), ", "))
	}

	for round := 0; round < *rounds; round++ {
		roundSeed := *seed + int64(round)*1_000_003
		if err := tortureRound(kind, *n, *ops, roundSeed, *loss, *dup, *reads, *regs, *hardened, *faultFor, *traceCap, *disk, *diskFail); err != nil {
			return fmt.Errorf("round %d (seed %d): %w", round, roundSeed, err)
		}
		fmt.Printf("round %d ok (seed %d)\n", round, roundSeed)
	}
	fmt.Printf("all %d rounds passed: %s emulation upheld %s\n",
		*rounds, kind, modeFor(kind))
	return nil
}

func modeFor(kind core.AlgorithmKind) atomicity.Mode {
	switch kind {
	case core.CrashStop:
		return atomicity.Linearizable
	case core.Transient:
		return atomicity.Transient
	default:
		return atomicity.Persistent
	}
}

func tortureRound(kind core.AlgorithmKind, n, ops int, seed int64, loss, dup, reads float64, regs int, hardened bool, faultFor time.Duration, traceCap int, disk string, diskFail float64) error {
	cfg := cluster.Config{
		N:         n,
		Algorithm: kind,
		Node: core.Options{
			RetransmitEvery: 5 * time.Millisecond,
			HardenedTags:    hardened,
		},
		Net:           netsim.Options{LossRate: loss, DupRate: dup, Seed: seed},
		TraceCapacity: traceCap,
	}
	var diskDir string
	if disk != "mem" {
		var err error
		diskDir, err = os.MkdirTemp("", "recmem-torture-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(diskDir)
	}
	if disk != "mem" || diskFail > 0 {
		cfg.DiskFactory = func(id int32) (stable.Storage, error) {
			s, err := stable.OpenBackend(disk, fmt.Sprintf("%s/node%d", diskDir, id), stable.Profile{})
			if err != nil {
				return nil, err
			}
			if diskFail > 0 {
				s = stable.NewFlaky(s, diskFail, seed+int64(id)*104_729)
			}
			return s, nil
		}
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	faultsDone := make(chan int, 1)
	if kind.Recovers() {
		faultCtx, stopFaults := context.WithTimeout(ctx, faultFor)
		defer stopFaults()
		go func() {
			faultsDone <- c.RandomFaults(faultCtx, cluster.FaultOptions{
				Seed: seed, MeanInterval: 10 * time.Millisecond,
			})
		}()
	} else {
		faultsDone <- 0
	}

	names := make([]string, regs)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	mix := workload.Mix{ReadFraction: reads, Registers: names}
	if diskFail > 0 {
		// A writer whose own log fails aborts its operation: expected under
		// storage fault injection, equivalent to a crash for the checkers.
		mix.Forgive = func(err error) bool { return errors.Is(err, stable.ErrInjected) }
	}
	res := workload.Run(ctx, c, workload.AllProcs(n), ops, mix, seed)
	crashes := <-faultsDone
	// With storage faults injected, a recovery's own log can fail too;
	// retry until the store lets it through (faults are probabilistic).
	for {
		err := c.RecoverAll(ctx)
		if err == nil {
			break
		}
		if !(diskFail > 0 && errors.Is(err, stable.ErrInjected)) || ctx.Err() != nil {
			return fmt.Errorf("recover all: %w", err)
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("workload saw %d unexpected errors", res.Errors)
	}
	fmt.Printf("  %d writes, %d reads, %d interrupted, %d crashes injected\n",
		res.Writes, res.Reads, res.Interrupted, crashes)
	if err := c.Check(modeFor(kind)); err != nil {
		// A real violation: dump the protocol trace if one was kept.
		if c.DumpTrace(os.Stderr) {
			fmt.Fprintln(os.Stderr, "--- protocol trace above ---")
		}
		return err
	}
	return nil
}
