// Command recmem-torture stress-tests an emulation: it drives a concurrent
// read/write workload while randomly crashing and recovering processes (and
// optionally dropping/duplicating messages), then model-checks the recorded
// history against the algorithm's consistency criterion. A non-zero exit
// means a real atomicity violation was found.
//
// The scenario itself — workload.RunClients plus workload.ClientFaults — is
// written against the backend-agnostic recmem.Client interface and runs
// unmodified against two backends:
//
//   - the default in-process simulated cluster, where the recorded history
//     is verified after the run, and
//   - a live TCP mesh (-remote addr,addr,...), where each address is a
//     recmem-node control port dialed through the remote package; the same
//     crash/recover sweeps and pipelined async windows are driven over the
//     wire. With -verify, every client is wrapped in a recording client
//     (recmem.RecordingGroup): the per-client histories — wall-clock
//     stamped, carrying the protocol's tag witnesses — are merged onto one
//     timeline (history.Merge, docs/adr/0004) and model-checked against the
//     criterion of the algorithm the mesh reports, exactly like a simulated
//     round. Without -verify the round only asserts operational health.
//
// With -kill (docs/adr/0005) the run additionally injects REAL process
// death: it spawns the mesh's recmem-node processes itself (one command
// line per -remote address, ';;'-separated) and, mid-round, SIGKILLs one
// and re-execs it — the process loses its volatile state and every client
// connection; the restarted incarnation recovers from stable storage before
// reopening its control port, and the reconnect layer in the remote client
// brings the same handles back without the scenario re-dialing. Combined
// with -verify, the merged recorded history of a round spanning real
// process death is model-checked like any other.
//
// Usage:
//
//	recmem-torture -algorithm persistent -n 5 -ops 200 -rounds 10
//	recmem-torture -algorithm transient -loss 0.2 -dup 0.1 -seed 7
//	recmem-torture -algorithm persistent -disk wal -diskfail 0.2
//	recmem-torture -remote :7200,:7201,:7202 -ops 200 -async 16 -verify
//	recmem-torture -remote :7200,:7201,:7202 -verify \
//	    -kill 'recmem-node -id 0 ...;;recmem-node -id 1 ...;;recmem-node -id 2 ...'
//
// -disk selects the stable-storage engine (mem, file, wal, or sharded — the
// log-structured group-commit engine). -diskfail wraps every disk in a
// stable.Flaky that fails Store/StoreBatch with the given probability: a
// replica whose group commit fails acknowledges nothing, so the checkers
// prove that injected mid-group-commit failures never let an acknowledged
// log be lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recmem"
	"recmem/internal/atomicity"
	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/procfault"
	"recmem/internal/stable"
	"recmem/internal/workload"
	"recmem/remote"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-torture:", err)
		os.Exit(1)
	}
}

func algorithmByName(name string) (core.AlgorithmKind, error) {
	switch name {
	case "crash-stop":
		return core.CrashStop, nil
	case "transient":
		return core.Transient, nil
	case "persistent":
		return core.Persistent, nil
	case "naive":
		return core.Naive, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (crash-stop, transient, persistent, naive)", name)
	}
}

// options is the parsed command line shared by both backends.
type options struct {
	kind     core.AlgorithmKind
	n        int
	ops      int
	seed     int64
	loss     float64
	dup      float64
	reads    float64
	regs     int
	async    int
	hardened bool
	faultFor time.Duration
	traceCap int
	disk     string
	diskFail float64
	remote   []string
	verify   bool
	populate int

	// killCmds, when non-empty, makes the torture run OWN the mesh's node
	// processes: it spawns one command per -remote address and the kill
	// schedule SIGKILLs + re-execs them mid-round (internal/procfault) — a
	// real process death, not a simulated one.
	killCmds   [][]string
	killCycles int
	killDelay  time.Duration
	killDown   time.Duration
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-torture", flag.ContinueOnError)
	var (
		algorithm  = fs.String("algorithm", "persistent", "crash-stop, transient, persistent, or naive")
		n          = fs.Int("n", 5, "number of processes")
		ops        = fs.Int("ops", 100, "operations per process per round")
		rounds     = fs.Int("rounds", 5, "independent torture rounds")
		seed       = fs.Int64("seed", time.Now().UnixNano(), "base random seed")
		loss       = fs.Float64("loss", 0, "message loss rate [0,1)")
		dup        = fs.Float64("dup", 0, "message duplication rate [0,1)")
		reads      = fs.Float64("reads", 0.4, "fraction of operations that are reads")
		regs       = fs.Int("registers", 2, "number of registers")
		async      = fs.Int("async", 0, "submission window per client (>= 2 engages the batching engine)")
		hardened   = fs.Bool("hardened", false, "use hardened tags for the transient algorithm")
		faultFor   = fs.Duration("faults", time.Second, "fault-injection duration per round")
		traceCap   = fs.Int("trace", 0, "protocol trace capacity; dumped when a violation is found (0 = off)")
		disk       = fs.String("disk", "mem", "stable-storage engine: mem, file, wal, or sharded")
		diskFail   = fs.Float64("diskfail", 0, "injected Store/StoreBatch failure rate [0,1)")
		remoteFlag = fs.String("remote", "", "comma-separated recmem-node control addresses: drive a live mesh instead of the simulator")
		verify     = fs.Bool("verify", false, "with -remote: record per-client histories, merge them by wall clock + tag witness, and model-check the round (docs/adr/0004)")
		populate   = fs.Int("populate", 0, "with -remote: bulk-write this many distinct registers across the mesh before round 1, so kill-restart rounds recover over a populated namespace (docs/adr/0009)")
		killFlag   = fs.String("kill", "", "with -remote: ';;'-separated recmem-node command lines, one per control address; the torture run spawns them and SIGKILLs + restarts real node processes mid-round (docs/adr/0005)")
		killCycles = fs.Int("kill-cycles", 2, "SIGKILL+restart cycles per round under -kill")
		killDelay  = fs.Duration("kill-delay", 300*time.Millisecond, "pause before the first kill and between cycles")
		killDown   = fs.Duration("kill-down", 200*time.Millisecond, "how long a killed process stays dead before re-exec")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := algorithmByName(*algorithm)
	if err != nil {
		return err
	}
	if !stable.ValidBackend(*disk) {
		return fmt.Errorf("-disk: unknown engine %q (want one of %s)", *disk, strings.Join(stable.Backends(), ", "))
	}
	o := options{
		kind: kind, n: *n, ops: *ops, seed: *seed, loss: *loss, dup: *dup,
		reads: *reads, regs: *regs, async: *async, hardened: *hardened,
		faultFor: *faultFor, traceCap: *traceCap, disk: *disk, diskFail: *diskFail,
		verify: *verify, populate: *populate,
	}
	if *remoteFlag != "" {
		// Trimmed once here: every consumer (round dials, readiness
		// probes, the kill schedule) sees the same canonical addresses.
		for _, addr := range strings.Split(*remoteFlag, ",") {
			o.remote = append(o.remote, strings.TrimSpace(addr))
		}
	}
	if o.verify && len(o.remote) == 0 {
		return fmt.Errorf("-verify applies to -remote runs (simulated rounds always verify)")
	}
	if o.populate > 0 && len(o.remote) == 0 {
		return fmt.Errorf("-populate applies to -remote runs")
	}
	o.killCycles, o.killDelay, o.killDown = *killCycles, *killDelay, *killDown
	if *killFlag != "" {
		if len(o.remote) == 0 {
			return fmt.Errorf("-kill applies to -remote runs")
		}
		for _, cmd := range strings.Split(*killFlag, ";;") {
			argv := strings.Fields(strings.TrimSpace(cmd))
			if len(argv) == 0 {
				return fmt.Errorf("-kill: empty command")
			}
			o.killCmds = append(o.killCmds, argv)
		}
		if len(o.killCmds) != len(o.remote) {
			return fmt.Errorf("-kill: %d commands for %d -remote addresses", len(o.killCmds), len(o.remote))
		}
	}

	// Under -kill the torture run owns the node processes for its whole
	// lifetime (they persist across rounds, like an externally managed
	// mesh); the kill schedule inside each round SIGKILLs and re-execs
	// them.
	procs, err := spawnMesh(o)
	if err != nil {
		return err
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()

	// Remote clients persist across rounds — one dial per node for the whole
	// run, like a deployment's long-lived clients, with the reconnect layer
	// riding out any mid-run process death. With -verify the recording group
	// is chained too: each round verifies against the previous round's
	// committed state (RecordingGroup.Continuation), so a read in round 3
	// answered by a round-2 writer is checked against that writer instead of
	// an amnesiac blank slate.
	var (
		raw   []*remote.Client
		group *recmem.RecordingGroup
	)
	if len(o.remote) > 0 {
		for _, addr := range o.remote {
			c, err := remote.Dial(addr, remote.Options{})
			if err != nil {
				return fmt.Errorf("dial %s: %w", addr, err)
			}
			defer c.Close()
			raw = append(raw, c)
		}
		if o.verify {
			group = recmem.NewRecordingGroup()
		}
		if o.populate > 0 {
			if err := populateMesh(raw, o.populate); err != nil {
				return fmt.Errorf("populate: %w", err)
			}
		}
	}

	for round := 0; round < *rounds; round++ {
		roundSeed := *seed + int64(round)*1_000_003
		o.seed = roundSeed
		var err error
		if len(o.remote) > 0 {
			err = remoteRound(o, procs, raw, group)
		} else {
			err = tortureRound(o)
		}
		if err != nil {
			return fmt.Errorf("round %d (seed %d): %w", round, roundSeed, err)
		}
		fmt.Printf("round %d ok (seed %d)\n", round, roundSeed)
		if group != nil && round+1 < *rounds {
			group = group.Continuation()
		}
	}
	if len(o.remote) > 0 {
		fmt.Printf("all %d rounds passed against the live mesh %v\n", *rounds, o.remote)
		return nil
	}
	fmt.Printf("all %d rounds passed: %s emulation upheld %s\n",
		*rounds, kind, modeFor(kind))
	return nil
}

func modeFor(kind core.AlgorithmKind) atomicity.Mode {
	switch kind {
	case core.CrashStop:
		return atomicity.Linearizable
	case core.Transient:
		return atomicity.Transient
	default:
		return atomicity.Persistent
	}
}

// mixFor builds the operation mix both backends drive.
func mixFor(o options) workload.Mix {
	names := make([]string, o.regs)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	mix := workload.Mix{ReadFraction: o.reads, Registers: names, Async: o.async}
	if o.diskFail > 0 {
		// A writer whose own log fails aborts its operation: expected under
		// storage fault injection, equivalent to a crash for the checkers.
		mix.Forgive = func(err error) bool { return errors.Is(err, stable.ErrInjected) }
	}
	return mix
}

// scenario is the backend-agnostic torture round: fault sweeps through the
// Client interface while RunClients drives the mix. The identical function
// runs against the simulator's clients and against remote.Dial'ed ones.
func scenario(ctx context.Context, clients []recmem.Client, o options, faults bool) (workload.Result, int, error) {
	faultsDone := make(chan int, 1)
	if faults {
		// Exercise every client once BEFORE the fault sweep starts: each
		// recorder observes its node's incarnation epoch while the node is
		// provably up, so a later crash floors that epoch and any node whose
		// post-crash replies fail to mint past it is caught — regardless of
		// whether the (op-count-bound) workload is still running when the
		// faults land. Without this, a fast engine can drain the whole
		// workload before the first crash and the epoch inference never gets
		// a post-crash reply to check.
		for i, c := range clients {
			reg := c.Register("r0")
			val := fmt.Appendf(nil, "warmup-%d", i)
			// A concurrent kill schedule (remote rounds) can take the node
			// down mid-warm-up; ride the outage like the final probes do.
			if err := retryOutage(ctx, func() error { return reg.Write(ctx, val) }); err != nil {
				return workload.Result{}, 0, fmt.Errorf("pre-fault warm-up through client %d: %w", i, err)
			}
		}
		faultCtx, stopFaults := context.WithTimeout(ctx, o.faultFor)
		defer stopFaults()
		go func() {
			faultsDone <- workload.ClientFaults(faultCtx, clients, workload.ClientFaultOptions{
				Seed: o.seed, MeanInterval: 10 * time.Millisecond,
			})
		}()
	} else {
		faultsDone <- 0
	}
	res := workload.RunClients(ctx, clients, o.ops, mixFor(o), o.seed)
	crashes := <-faultsDone
	return res, crashes, nil
}

// tortureRound runs the scenario against a fresh simulated cluster and
// model-checks the recorded history.
func tortureRound(o options) error {
	cfg := cluster.Config{
		N:         o.n,
		Algorithm: o.kind,
		Node: core.Options{
			RetransmitEvery: 5 * time.Millisecond,
			HardenedTags:    o.hardened,
		},
		Net:           netsim.Options{LossRate: o.loss, DupRate: o.dup, Seed: o.seed},
		TraceCapacity: o.traceCap,
	}
	var diskDir string
	if o.disk != "mem" {
		var err error
		diskDir, err = os.MkdirTemp("", "recmem-torture-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(diskDir)
	}
	if o.disk != "mem" || o.diskFail > 0 {
		seed := o.seed
		cfg.DiskFactory = func(id int32) (stable.Storage, error) {
			s, err := stable.OpenBackend(o.disk, fmt.Sprintf("%s/node%d", diskDir, id), stable.Profile{})
			if err != nil {
				return nil, err
			}
			if o.diskFail > 0 {
				s = stable.NewFlaky(s, o.diskFail, seed+int64(id)*104_729)
			}
			return s, nil
		}
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	clients := workload.Clients(c, workload.AllProcs(o.n))
	res, crashes, err := scenario(ctx, clients, o, o.kind.Recovers())
	if err != nil {
		return err
	}
	// With storage faults injected, a recovery's own log can fail too;
	// retry until the store lets it through (faults are probabilistic).
	for {
		err := c.RecoverAll(ctx)
		if err == nil {
			break
		}
		if !(o.diskFail > 0 && errors.Is(err, stable.ErrInjected)) || ctx.Err() != nil {
			return fmt.Errorf("recover all: %w", err)
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("workload saw %d unexpected errors", res.Errors)
	}
	fmt.Printf("  %d writes, %d reads, %d interrupted, %d crashes injected\n",
		res.Writes, res.Reads, res.Interrupted, crashes)
	if err := c.Check(modeFor(o.kind)); err != nil {
		// A real violation: dump the protocol trace if one was kept.
		if c.DumpTrace(os.Stderr) {
			fmt.Fprintln(os.Stderr, "--- protocol trace above ---")
		}
		return err
	}
	return nil
}

// spawnMesh starts the node processes of a -kill run and waits until every
// control port answers. A run without -kill returns nil and dials whatever
// mesh the caller points it at.
func spawnMesh(o options) ([]*procfault.Proc, error) {
	if len(o.killCmds) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	procs := make([]*procfault.Proc, 0, len(o.killCmds))
	stop := func() {
		for _, p := range procs {
			p.Stop()
		}
	}
	for i, argv := range o.killCmds {
		p, err := procfault.Start(argv, os.Stderr, os.Stderr)
		if err != nil {
			stop()
			return nil, fmt.Errorf("spawn node %d: %w", i, err)
		}
		procs = append(procs, p)
	}
	for i, p := range procs {
		if err := p.WaitReady(ctx, pingProbe(o.remote[i]), 50*time.Millisecond); err != nil {
			stop()
			return nil, fmt.Errorf("node %d never became ready: %w", i, err)
		}
	}
	fmt.Printf("spawned %d node processes (pids", len(procs))
	for _, p := range procs {
		fmt.Printf(" %d", p.Pid())
	}
	fmt.Println(") for kill-restart injection")
	return procs, nil
}

// populateMesh bulk-writes count distinct registers through the run-lifetime
// clients before the first round, so every node carries a populated adopted
// namespace when the kill schedule later SIGKILLs it: a restart that rebuilt
// the register map eagerly would pay for all of these before reopening its
// control port, while the lazy recovery (docs/adr/0009) pays only for pending
// writes. The registers live under a bulk- prefix disjoint from the
// workload's r<i> names, and the writes go through the raw, unrecorded
// clients, so round verification is unaffected. Writes are issued from a
// concurrent worker pool per client — the remote protocol pipelines them on
// each connection and the nodes' batching engines coalesce the rounds.
func populateMesh(clients []*remote.Client, count int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	start := time.Now()
	const perClient = 32
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		werr    error
	)
	for w := 0; w < perClient*len(clients); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count || ctx.Err() != nil {
					return
				}
				reg := clients[i%len(clients)].Register(fmt.Sprintf("bulk-%07d", i))
				if err := reg.Write(ctx, []byte(fmt.Sprintf("v%07d", i))); err != nil {
					errOnce.Do(func() { werr = fmt.Errorf("register bulk-%07d: %w", i, err) })
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if werr != nil {
		return werr
	}
	fmt.Printf("populated %d registers across %d nodes in %v\n",
		count, len(clients), time.Since(start).Round(time.Millisecond))
	return nil
}

// pingProbe is the readiness probe for one control address: a fresh dial —
// which runs the version/Info handshake — plus a ping. recmem-node only
// opens the control port after its startup recovery, so a passing probe
// means the node is recovered and serving.
func pingProbe(addr string) func(context.Context) error {
	return func(ctx context.Context) error {
		c, err := remote.Dial(addr, remote.Options{DialTimeout: time.Second, RedialAttempts: -1})
		if err != nil {
			return err
		}
		defer c.Close()
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		return c.Ping(pctx)
	}
}

// killSchedule is the process-death fault schedule: every cycle SIGKILLs
// one node process mid-run — volatile state and every TCP connection die
// with it — waits out the outage, re-execs the same command (the node runs
// its recovery procedure from stable storage before reopening the control
// port), and blocks until the control port answers again. Returns the
// number of kills delivered.
func killSchedule(ctx context.Context, o options, procs []*procfault.Proc) (int, error) {
	kills := 0
	for cycle := 0; cycle < o.killCycles && ctx.Err() == nil; cycle++ {
		if !sleepCtx(ctx, o.killDelay) {
			break
		}
		i := cycle % len(procs)
		if err := procs[i].Kill(); err != nil {
			return kills, err
		}
		kills++
		sleepCtx(ctx, o.killDown)
		if err := procs[i].Restart(); err != nil {
			return kills, err
		}
		if err := procs[i].WaitReady(ctx, pingProbe(o.remote[i]), 50*time.Millisecond); err != nil {
			return kills, err
		}
	}
	return kills, nil
}

// sleepCtx pauses for d, reporting false when ctx expired instead.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// remoteRound runs the identical scenario against a live mesh of
// recmem-nodes, through the run-lifetime clients in raw. The round always
// asserts operational health (no unexpected errors, every process healthy
// at the end, a read observing the run's effects); with a recording group
// it additionally records every client's history, merges them by wall
// clock and tag witness, and model-checks the result against the criterion
// of the algorithm the mesh reports — a non-atomic live run fails the
// process exactly like a non-atomic simulated one. With -kill, the
// killSchedule SIGKILLs and restarts real node processes while the
// workload and the protocol-level fault sweeps run.
func remoteRound(o options, procs []*procfault.Proc, raw []*remote.Client, group *recmem.RecordingGroup) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	clients := make([]recmem.Client, len(raw))
	for i, c := range raw {
		clients[i] = c
		if group != nil {
			// All traffic — workload, faults, final probes — goes through
			// the recording wrapper, so the merged history is complete.
			// On a Continuation group this returns the pre-seeded wrapper.
			clients[i] = group.Wrap(c)
		}
	}

	type killResult struct {
		kills int
		err   error
	}
	killDone := make(chan killResult, 1)
	if len(procs) > 0 {
		go func() {
			kills, err := killSchedule(ctx, o, procs)
			killDone <- killResult{kills, err}
		}()
	} else {
		killDone <- killResult{}
	}
	var (
		kr       killResult
		joinedKr bool
	)
	joinKill := func() killResult {
		if !joinedKr {
			kr = <-killDone
			joinedKr = true
		}
		return kr
	}
	// The schedule must be joined on EVERY exit path: a Restart racing the
	// deferred proc Stop in run() would re-exec a node after cleanup and
	// leak it (the Linux parent-death signal is only a best-effort net).
	// Cancelling first bounds the wait.
	defer func() {
		cancel()
		joinKill()
	}()

	res, crashes, err := scenario(ctx, clients, o, true)
	if err != nil {
		return err
	}
	// The round proceeds only once every killed process is back: the
	// schedule's last restart must have completed.
	if kr := joinKill(); kr.err != nil {
		return fmt.Errorf("kill schedule: %w", kr.err)
	}
	// Everything must be recoverable at the end of the round. Clients whose
	// connection died with a killed process may still be redialing — ride
	// that out instead of failing the round on a transient ErrDown.
	for i, c := range clients {
		if err := recoverWhenReachable(ctx, c); err != nil {
			return fmt.Errorf("final recover of node %d: %w", i, err)
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("workload saw %d unexpected errors", res.Errors)
	}
	// The mesh still serves: a write through one client is read through
	// EVERY client. Probing all of them both asserts each node answers
	// after the fault schedule and forces one post-crash reply per node
	// into the recorded history — the reply whose incarnation epoch the
	// recorder holds against the floors set by that node's crashes.
	probe := fmt.Sprintf("probe-%d", o.seed)
	if err := retryOutage(ctx, func() error {
		return clients[0].Register("r0").Write(ctx, []byte(probe))
	}); err != nil {
		return fmt.Errorf("final probe write: %w", err)
	}
	for i, c := range clients {
		var got []byte
		err = retryOutage(ctx, func() error {
			var rerr error
			got, rerr = c.Register("r0").Read(ctx)
			return rerr
		})
		if err != nil {
			return fmt.Errorf("final probe read through client %d: %v", i, err)
		}
		// Only the last client's value is asserted here: a wrong value from
		// a dishonest node is recorded evidence for the verifier (which must
		// flag it as an atomicity violation), not an operational failure.
		if i == len(clients)-1 && string(got) != probe {
			return fmt.Errorf("final probe read = %q (want %q)", got, probe)
		}
	}
	fmt.Printf("  %d writes, %d reads, %d interrupted, %d crashes injected, %d processes SIGKILLed (live mesh)\n",
		res.Writes, res.Reads, res.Interrupted, crashes, kr.kills)
	if group == nil {
		return nil
	}
	return verifyRemote(ctx, group, raw[0])
}

// recoverWhenReachable drives Recover until the process is confirmed up:
// nil and ErrNotDown both mean "up"; ErrDown and ErrCrashed mean the
// transport (or the process behind it) is still coming back — retry until
// the redialer lands.
func recoverWhenReachable(ctx context.Context, c recmem.Client) error {
	for {
		err := c.Recover(ctx)
		switch {
		case err == nil, errors.Is(err, recmem.ErrNotDown):
			return nil
		case errors.Is(err, recmem.ErrDown), errors.Is(err, recmem.ErrCrashed),
			errors.Is(err, context.DeadlineExceeded):
		default:
			return err
		}
		if !sleepCtx(ctx, 20*time.Millisecond) {
			return ctx.Err()
		}
	}
}

// retryOutage runs op, riding out the reconnect-layer outage errors the
// same way the workload driver does.
func retryOutage(ctx context.Context, op func() error) error {
	for {
		err := op()
		switch {
		case err == nil:
			return nil
		case errors.Is(err, recmem.ErrDown), errors.Is(err, recmem.ErrCrashed):
		default:
			return err
		}
		if !sleepCtx(ctx, 20*time.Millisecond) {
			return ctx.Err()
		}
	}
}

// verifyRemote merges the recorded per-client histories and checks them
// against the criterion of the algorithm the mesh reports.
func verifyRemote(ctx context.Context, group *recmem.RecordingGroup, node *remote.Client) error {
	info, err := node.Info(ctx)
	if err != nil {
		return fmt.Errorf("verify: info: %w", err)
	}
	cr, err := criterionFor(info.Algorithm)
	if err != nil {
		return err
	}
	merged, err := group.Merged()
	if err != nil {
		return fmt.Errorf("verify: merge: %w", err)
	}
	if err := recmem.VerifyHistory(merged, cr); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	fmt.Printf("  verified %d merged events against %v\n", len(merged), cr)
	return nil
}

// criterionFor maps the algorithm a node reports to the criterion it
// promises.
func criterionFor(algorithm string) (recmem.Criterion, error) {
	switch algorithm {
	case "crash-stop":
		return recmem.Linearizability, nil
	case "transient":
		return recmem.TransientAtomicity, nil
	case "persistent", "naive":
		return recmem.PersistentAtomicity, nil
	case "regular-sw":
		return recmem.Regularity, nil
	default:
		return 0, fmt.Errorf("verify: mesh reports unknown algorithm %q", algorithm)
	}
}
