// Command recmem-torture stress-tests an emulation: it drives a concurrent
// read/write workload while randomly crashing and recovering processes (and
// optionally dropping/duplicating messages), then model-checks the recorded
// history against the algorithm's consistency criterion. A non-zero exit
// means a real atomicity violation was found.
//
// The scenario itself — workload.RunClients plus workload.ClientFaults — is
// written against the backend-agnostic recmem.Client interface and runs
// unmodified against two backends:
//
//   - the default in-process simulated cluster, where the recorded history
//     is verified after the run, and
//   - a live TCP mesh (-remote addr,addr,...), where each address is a
//     recmem-node control port dialed through the remote package; the same
//     crash/recover sweeps and pipelined async windows are driven over the
//     wire. With -verify, every client is wrapped in a recording client
//     (recmem.RecordingGroup): the per-client histories — wall-clock
//     stamped, carrying the protocol's tag witnesses — are merged onto one
//     timeline (history.Merge, docs/adr/0004) and model-checked against the
//     criterion of the algorithm the mesh reports, exactly like a simulated
//     round. Without -verify the round only asserts operational health.
//
// Usage:
//
//	recmem-torture -algorithm persistent -n 5 -ops 200 -rounds 10
//	recmem-torture -algorithm transient -loss 0.2 -dup 0.1 -seed 7
//	recmem-torture -algorithm persistent -disk wal -diskfail 0.2
//	recmem-torture -remote :7200,:7201,:7202 -ops 200 -async 16 -verify
//
// -disk selects the stable-storage engine (mem, file, or wal — the
// log-structured group-commit engine). -diskfail wraps every disk in a
// stable.Flaky that fails Store/StoreBatch with the given probability: a
// replica whose group commit fails acknowledges nothing, so the checkers
// prove that injected mid-group-commit failures never let an acknowledged
// log be lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"recmem"
	"recmem/internal/atomicity"
	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/workload"
	"recmem/remote"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-torture:", err)
		os.Exit(1)
	}
}

func algorithmByName(name string) (core.AlgorithmKind, error) {
	switch name {
	case "crash-stop":
		return core.CrashStop, nil
	case "transient":
		return core.Transient, nil
	case "persistent":
		return core.Persistent, nil
	case "naive":
		return core.Naive, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (crash-stop, transient, persistent, naive)", name)
	}
}

// options is the parsed command line shared by both backends.
type options struct {
	kind     core.AlgorithmKind
	n        int
	ops      int
	seed     int64
	loss     float64
	dup      float64
	reads    float64
	regs     int
	async    int
	hardened bool
	faultFor time.Duration
	traceCap int
	disk     string
	diskFail float64
	remote   []string
	verify   bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-torture", flag.ContinueOnError)
	var (
		algorithm  = fs.String("algorithm", "persistent", "crash-stop, transient, persistent, or naive")
		n          = fs.Int("n", 5, "number of processes")
		ops        = fs.Int("ops", 100, "operations per process per round")
		rounds     = fs.Int("rounds", 5, "independent torture rounds")
		seed       = fs.Int64("seed", time.Now().UnixNano(), "base random seed")
		loss       = fs.Float64("loss", 0, "message loss rate [0,1)")
		dup        = fs.Float64("dup", 0, "message duplication rate [0,1)")
		reads      = fs.Float64("reads", 0.4, "fraction of operations that are reads")
		regs       = fs.Int("registers", 2, "number of registers")
		async      = fs.Int("async", 0, "submission window per client (>= 2 engages the batching engine)")
		hardened   = fs.Bool("hardened", false, "use hardened tags for the transient algorithm")
		faultFor   = fs.Duration("faults", time.Second, "fault-injection duration per round")
		traceCap   = fs.Int("trace", 0, "protocol trace capacity; dumped when a violation is found (0 = off)")
		disk       = fs.String("disk", "mem", "stable-storage engine: mem, file, or wal")
		diskFail   = fs.Float64("diskfail", 0, "injected Store/StoreBatch failure rate [0,1)")
		remoteFlag = fs.String("remote", "", "comma-separated recmem-node control addresses: drive a live mesh instead of the simulator")
		verify     = fs.Bool("verify", false, "with -remote: record per-client histories, merge them by wall clock + tag witness, and model-check the round (docs/adr/0004)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, err := algorithmByName(*algorithm)
	if err != nil {
		return err
	}
	if !stable.ValidBackend(*disk) {
		return fmt.Errorf("-disk: unknown engine %q (want one of %s)", *disk, strings.Join(stable.Backends(), ", "))
	}
	o := options{
		kind: kind, n: *n, ops: *ops, seed: *seed, loss: *loss, dup: *dup,
		reads: *reads, regs: *regs, async: *async, hardened: *hardened,
		faultFor: *faultFor, traceCap: *traceCap, disk: *disk, diskFail: *diskFail,
		verify: *verify,
	}
	if *remoteFlag != "" {
		o.remote = strings.Split(*remoteFlag, ",")
	}
	if o.verify && len(o.remote) == 0 {
		return fmt.Errorf("-verify applies to -remote runs (simulated rounds always verify)")
	}

	for round := 0; round < *rounds; round++ {
		roundSeed := *seed + int64(round)*1_000_003
		o.seed = roundSeed
		var err error
		if len(o.remote) > 0 {
			err = remoteRound(o)
		} else {
			err = tortureRound(o)
		}
		if err != nil {
			return fmt.Errorf("round %d (seed %d): %w", round, roundSeed, err)
		}
		fmt.Printf("round %d ok (seed %d)\n", round, roundSeed)
	}
	if len(o.remote) > 0 {
		fmt.Printf("all %d rounds passed against the live mesh %v\n", *rounds, o.remote)
		return nil
	}
	fmt.Printf("all %d rounds passed: %s emulation upheld %s\n",
		*rounds, kind, modeFor(kind))
	return nil
}

func modeFor(kind core.AlgorithmKind) atomicity.Mode {
	switch kind {
	case core.CrashStop:
		return atomicity.Linearizable
	case core.Transient:
		return atomicity.Transient
	default:
		return atomicity.Persistent
	}
}

// mixFor builds the operation mix both backends drive.
func mixFor(o options) workload.Mix {
	names := make([]string, o.regs)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	mix := workload.Mix{ReadFraction: o.reads, Registers: names, Async: o.async}
	if o.diskFail > 0 {
		// A writer whose own log fails aborts its operation: expected under
		// storage fault injection, equivalent to a crash for the checkers.
		mix.Forgive = func(err error) bool { return errors.Is(err, stable.ErrInjected) }
	}
	return mix
}

// scenario is the backend-agnostic torture round: fault sweeps through the
// Client interface while RunClients drives the mix. The identical function
// runs against the simulator's clients and against remote.Dial'ed ones.
func scenario(ctx context.Context, clients []recmem.Client, o options, faults bool) (workload.Result, int, error) {
	faultsDone := make(chan int, 1)
	if faults {
		faultCtx, stopFaults := context.WithTimeout(ctx, o.faultFor)
		defer stopFaults()
		go func() {
			faultsDone <- workload.ClientFaults(faultCtx, clients, workload.ClientFaultOptions{
				Seed: o.seed, MeanInterval: 10 * time.Millisecond,
			})
		}()
	} else {
		faultsDone <- 0
	}
	res := workload.RunClients(ctx, clients, o.ops, mixFor(o), o.seed)
	crashes := <-faultsDone
	return res, crashes, nil
}

// tortureRound runs the scenario against a fresh simulated cluster and
// model-checks the recorded history.
func tortureRound(o options) error {
	cfg := cluster.Config{
		N:         o.n,
		Algorithm: o.kind,
		Node: core.Options{
			RetransmitEvery: 5 * time.Millisecond,
			HardenedTags:    o.hardened,
		},
		Net:           netsim.Options{LossRate: o.loss, DupRate: o.dup, Seed: o.seed},
		TraceCapacity: o.traceCap,
	}
	var diskDir string
	if o.disk != "mem" {
		var err error
		diskDir, err = os.MkdirTemp("", "recmem-torture-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(diskDir)
	}
	if o.disk != "mem" || o.diskFail > 0 {
		seed := o.seed
		cfg.DiskFactory = func(id int32) (stable.Storage, error) {
			s, err := stable.OpenBackend(o.disk, fmt.Sprintf("%s/node%d", diskDir, id), stable.Profile{})
			if err != nil {
				return nil, err
			}
			if o.diskFail > 0 {
				s = stable.NewFlaky(s, o.diskFail, seed+int64(id)*104_729)
			}
			return s, nil
		}
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	clients := workload.Clients(c, workload.AllProcs(o.n))
	res, crashes, err := scenario(ctx, clients, o, o.kind.Recovers())
	if err != nil {
		return err
	}
	// With storage faults injected, a recovery's own log can fail too;
	// retry until the store lets it through (faults are probabilistic).
	for {
		err := c.RecoverAll(ctx)
		if err == nil {
			break
		}
		if !(o.diskFail > 0 && errors.Is(err, stable.ErrInjected)) || ctx.Err() != nil {
			return fmt.Errorf("recover all: %w", err)
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("workload saw %d unexpected errors", res.Errors)
	}
	fmt.Printf("  %d writes, %d reads, %d interrupted, %d crashes injected\n",
		res.Writes, res.Reads, res.Interrupted, crashes)
	if err := c.Check(modeFor(o.kind)); err != nil {
		// A real violation: dump the protocol trace if one was kept.
		if c.DumpTrace(os.Stderr) {
			fmt.Fprintln(os.Stderr, "--- protocol trace above ---")
		}
		return err
	}
	return nil
}

// remoteRound runs the identical scenario against a live mesh of
// recmem-nodes. The round always asserts operational health (no unexpected
// errors, every process healthy at the end, a read observing the run's
// effects); with -verify it additionally records every client's history,
// merges them by wall clock and tag witness, and model-checks the result
// against the criterion of the algorithm the mesh reports — a non-atomic
// live run fails the process exactly like a non-atomic simulated one.
func remoteRound(o options) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	raw := make([]*remote.Client, len(o.remote))
	clients := make([]recmem.Client, len(o.remote))
	var group *recmem.RecordingGroup
	if o.verify {
		group = recmem.NewRecordingGroup()
	}
	for i, addr := range o.remote {
		c, err := remote.Dial(strings.TrimSpace(addr), remote.Options{})
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		defer c.Close()
		raw[i] = c
		clients[i] = c
		if group != nil {
			// All traffic — workload, faults, final probes — goes through
			// the recording wrapper, so the merged history is complete.
			clients[i] = group.Wrap(c)
		}
	}

	res, crashes, err := scenario(ctx, clients, o, true)
	if err != nil {
		return err
	}
	// Everything must be recoverable at the end of the round.
	for i, c := range clients {
		if err := c.Recover(ctx); err != nil && !errors.Is(err, recmem.ErrNotDown) {
			return fmt.Errorf("final recover of node %d: %w", i, err)
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("workload saw %d unexpected errors", res.Errors)
	}
	// The mesh still serves: a write through one client is read through
	// another.
	probe := fmt.Sprintf("probe-%d", o.seed)
	if err := clients[0].Register("r0").Write(ctx, []byte(probe)); err != nil {
		return fmt.Errorf("final probe write: %w", err)
	}
	got, err := clients[len(clients)-1].Register("r0").Read(ctx)
	if err != nil || string(got) != probe {
		return fmt.Errorf("final probe read = %q, %v (want %q)", got, err, probe)
	}
	fmt.Printf("  %d writes, %d reads, %d interrupted, %d crashes injected (live mesh)\n",
		res.Writes, res.Reads, res.Interrupted, crashes)
	if group == nil {
		return nil
	}
	return verifyRemote(ctx, group, raw[0])
}

// verifyRemote merges the recorded per-client histories and checks them
// against the criterion of the algorithm the mesh reports.
func verifyRemote(ctx context.Context, group *recmem.RecordingGroup, node *remote.Client) error {
	info, err := node.Info(ctx)
	if err != nil {
		return fmt.Errorf("verify: info: %w", err)
	}
	cr, err := criterionFor(info.Algorithm)
	if err != nil {
		return err
	}
	merged, err := group.Merged()
	if err != nil {
		return fmt.Errorf("verify: merge: %w", err)
	}
	if err := recmem.VerifyHistory(merged, cr); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	fmt.Printf("  verified %d merged events against %v\n", len(merged), cr)
	return nil
}

// criterionFor maps the algorithm a node reports to the criterion it
// promises.
func criterionFor(algorithm string) (recmem.Criterion, error) {
	switch algorithm {
	case "crash-stop":
		return recmem.Linearizability, nil
	case "transient":
		return recmem.TransientAtomicity, nil
	case "persistent", "naive":
		return recmem.PersistentAtomicity, nil
	case "regular-sw":
		return recmem.Regularity, nil
	default:
		return 0, fmt.Errorf("verify: mesh reports unknown algorithm %q", algorithm)
	}
}
