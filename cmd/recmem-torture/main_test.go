package main

import (
	"testing"

	"recmem/internal/core"
)

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"crash-stop", "transient", "persistent", "naive"} {
		kind, err := algorithmByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if kind.String() != name {
			t.Fatalf("%s mapped to %v", name, kind)
		}
	}
	if _, err := algorithmByName("paxos"); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestTortureRoundPersistent(t *testing.T) {
	err := tortureRound(mustKind(t, "persistent"), 3, 10, 42, 0, 0, 0.5, 1, false, 100_000_000 /* 100ms */, 256, "mem", 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTortureRoundTransientWithLoss(t *testing.T) {
	err := tortureRound(mustKind(t, "transient"), 3, 8, 7, 0.1, 0.05, 0.5, 2, true, 100_000_000, 0, "mem", 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTortureRoundCrashStop(t *testing.T) {
	err := tortureRound(mustKind(t, "crash-stop"), 3, 10, 3, 0, 0, 0.5, 1, false, 0, 0, "mem", 0)
	if err != nil {
		t.Fatal(err)
	}
}

// TestTortureRoundWALFlaky is the WALDisk torture scenario: crash/recovery
// injection over the log-structured engine with injected Store/StoreBatch
// failures mid-group-commit. The atomicity check proves that a failed group
// commit never acknowledged a lost log — a violation would surface as a
// read missing an acknowledged write after a crash.
func TestTortureRoundWALFlaky(t *testing.T) {
	err := tortureRound(mustKind(t, "persistent"), 3, 12, 99, 0, 0, 0.5, 2, false, 100_000_000, 256, "wal", 0.2)
	if err != nil {
		t.Fatal(err)
	}
}

// TestTortureRoundWALTransient exercises the recovery-counter path (Fig. 5)
// over the wal engine, where the recovery log itself can be refused by an
// injected fault and must be retried.
func TestTortureRoundWALTransient(t *testing.T) {
	err := tortureRound(mustKind(t, "transient"), 3, 10, 5, 0, 0, 0.4, 1, true, 100_000_000, 0, "wal", 0.15)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFullFlow(t *testing.T) {
	err := run([]string{
		"-algorithm", "persistent", "-n", "3", "-ops", "5",
		"-rounds", "2", "-seed", "11", "-faults", "50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	if err := run([]string{"-algorithm", "nope"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func mustKind(t *testing.T, name string) core.AlgorithmKind {
	t.Helper()
	kind, err := algorithmByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return kind
}
