package main

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"recmem"
	"recmem/internal/core"
	"recmem/internal/nettcp"
	"recmem/internal/stable"
	"recmem/remote"
)

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"crash-stop", "transient", "persistent", "naive"} {
		kind, err := algorithmByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if kind.String() != name {
			t.Fatalf("%s mapped to %v", name, kind)
		}
	}
	if _, err := algorithmByName("paxos"); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

// opts builds a small, fast round configuration.
func opts(kind string, t *testing.T) options {
	return options{
		kind: mustKind(t, kind), n: 3, ops: 10, seed: 42,
		reads: 0.5, regs: 1, faultFor: 100 * time.Millisecond, disk: "mem",
	}
}

func TestTortureRoundPersistent(t *testing.T) {
	o := opts("persistent", t)
	o.traceCap = 256
	if err := tortureRound(o); err != nil {
		t.Fatal(err)
	}
}

func TestTortureRoundAsync(t *testing.T) {
	o := opts("persistent", t)
	o.async = 8
	o.ops = 24
	if err := tortureRound(o); err != nil {
		t.Fatal(err)
	}
}

func TestTortureRoundTransientWithLoss(t *testing.T) {
	o := opts("transient", t)
	o.ops, o.seed, o.loss, o.dup, o.regs, o.hardened = 8, 7, 0.1, 0.05, 2, true
	if err := tortureRound(o); err != nil {
		t.Fatal(err)
	}
}

func TestTortureRoundCrashStop(t *testing.T) {
	o := opts("crash-stop", t)
	o.seed, o.faultFor = 3, 0
	if err := tortureRound(o); err != nil {
		t.Fatal(err)
	}
}

// TestTortureRoundWALFlaky is the WALDisk torture scenario: crash/recovery
// injection over the log-structured engine with injected Store/StoreBatch
// failures mid-group-commit. The atomicity check proves that a failed group
// commit never acknowledged a lost log — a violation would surface as a
// read missing an acknowledged write after a crash.
func TestTortureRoundWALFlaky(t *testing.T) {
	o := opts("persistent", t)
	o.ops, o.seed, o.regs, o.traceCap, o.disk, o.diskFail = 12, 99, 2, 256, "wal", 0.2
	if err := tortureRound(o); err != nil {
		t.Fatal(err)
	}
}

// TestTortureRoundWALTransient exercises the recovery-counter path (Fig. 5)
// over the wal engine, where the recovery log itself can be refused by an
// injected fault and must be retried.
func TestTortureRoundWALTransient(t *testing.T) {
	o := opts("transient", t)
	o.seed, o.reads, o.hardened, o.disk, o.diskFail = 5, 0.4, true, "wal", 0.15
	if err := tortureRound(o); err != nil {
		t.Fatal(err)
	}
}

// bootMesh starts a live n-node TCP mesh; staleNode (if >= 0) gets a
// dishonest control server that freezes read replies (ServerOptions.
// StaleReads). It returns the control addresses.
func bootMesh(t *testing.T, n int, staleNode int) []string {
	t.Helper()
	meshes := make([]*nettcp.Mesh, n)
	peers := make([]string, n)
	for i := range meshes {
		m, err := nettcp.Listen(int32(i), "127.0.0.1:0", nettcp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		meshes[i] = m
		peers[i] = m.Addr()
	}
	ids := &atomic.Uint64{}
	addrs := make([]string, n)
	for i := range meshes {
		meshes[i].SetPeers(peers)
		nd, err := core.NewNode(int32(i), n, core.Persistent,
			core.Options{RetransmitEvery: 10 * time.Millisecond},
			core.Deps{Endpoint: meshes[i], Storage: stable.NewMemDisk(stable.Profile{}), IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := remote.Serve(ln, nd, remote.ServerOptions{
			OpTimeout: 30 * time.Second, StaleReads: i == staleNode,
		})
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

// dialMesh dials run-lifetime clients for every control address, like run()
// does before its round loop.
func dialMesh(t *testing.T, addrs []string) []*remote.Client {
	t.Helper()
	raw := make([]*remote.Client, len(addrs))
	for i, addr := range addrs {
		c, err := remote.Dial(addr, remote.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		raw[i] = c
	}
	return raw
}

// TestRemoteRound is the acceptance scenario: the identical torture round —
// same workload.RunClients, same workload.ClientFaults — driven against a
// real 3-node TCP mesh through the remote package, selected only by which
// clients are passed in; with a recording group, the recorded per-client
// histories are merged and model-checked.
func TestRemoteRound(t *testing.T) {
	o := opts("persistent", t)
	o.remote = bootMesh(t, 3, -1)
	o.ops = 20
	o.async = 6
	o.verify = true
	if err := remoteRound(o, nil, dialMesh(t, o.remote), recmem.NewRecordingGroup()); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteRoundVerifyCatchesStaleMesh is the negative control of the
// acceptance criterion: the same verified round against a mesh whose node 1
// serves stale reads must fail with an atomicity violation.
func TestRemoteRoundVerifyCatchesStaleMesh(t *testing.T) {
	o := opts("persistent", t)
	o.remote = bootMesh(t, 3, 1)
	o.ops = 20
	o.faultFor = 0 // keep the stale reads completed, not crash-interrupted
	o.verify = true
	raw := dialMesh(t, o.remote)
	err := remoteRound(o, nil, raw, recmem.NewRecordingGroup())
	if err == nil {
		t.Fatal("verified round passed against a stale-serving mesh")
	}
	if !strings.Contains(err.Error(), "violation") {
		t.Fatalf("err = %v, want an atomicity violation", err)
	}
	// The identical dishonest mesh passes when verification is off — the
	// old operational-health round cannot see the lie (the PR-3 gap).
	o.verify = false
	o.seed++
	if err := remoteRound(o, nil, raw, nil); err != nil {
		t.Fatalf("unverified round should not detect staleness: %v", err)
	}
}

func TestRunFullFlow(t *testing.T) {
	err := run([]string{
		"-algorithm", "persistent", "-n", "3", "-ops", "5",
		"-rounds", "2", "-seed", "11", "-faults", "50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	if err := run([]string{"-algorithm", "nope"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func mustKind(t *testing.T, name string) core.AlgorithmKind {
	t.Helper()
	kind, err := algorithmByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return kind
}

// TestKillFlagValidation pins the -kill command-line contract: it requires
// -remote, exactly one command per control address, and no empty commands.
func TestKillFlagValidation(t *testing.T) {
	if err := run([]string{"-kill", "a b"}); err == nil {
		t.Fatal("accepted -kill without -remote")
	}
	if err := run([]string{"-remote", ":1,:2", "-kill", "only-one-cmd"}); err == nil {
		t.Fatal("accepted a command-count mismatch")
	}
	if err := run([]string{"-remote", ":1,:2", "-kill", "a;; ;;c"}); err == nil {
		t.Fatal("accepted an empty command")
	}
}
