// Command recmem-client drives operations on a running recmem-node through
// its control port.
//
// Usage:
//
//	recmem-client -node 127.0.0.1:7200 write x hello
//	recmem-client -node 127.0.0.1:7201 read x
//	recmem-client -node 127.0.0.1:7202 crash
//	recmem-client -node 127.0.0.1:7202 recover
//	recmem-client -node 127.0.0.1:7200 bench 50      # 50 timed writes
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-client", flag.ContinueOnError)
	node := fs.String("node", "127.0.0.1:7200", "control address of a recmem-node")
	timeout := fs.Duration("timeout", time.Minute, "per-command deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Args()
	if len(cmd) == 0 {
		return fmt.Errorf("need a command: write, read, crash, recover, ping, bench")
	}

	conn, err := net.DialTimeout("tcp", *node, *timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(*timeout))
	rd := bufio.NewReader(conn)

	send := func(line string) (string, error) {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			return "", err
		}
		resp, err := rd.ReadString('\n')
		return strings.TrimSpace(resp), err
	}

	switch strings.ToLower(cmd[0]) {
	case "write":
		if len(cmd) != 3 {
			return fmt.Errorf("usage: write <register> <value>")
		}
		resp, err := send(fmt.Sprintf("WRITE %s %s", cmd[1], cmd[2]))
		if err != nil {
			return err
		}
		fmt.Println(resp)
	case "read":
		if len(cmd) != 2 {
			return fmt.Errorf("usage: read <register>")
		}
		resp, err := send("READ " + cmd[1])
		if err != nil {
			return err
		}
		fmt.Println(resp)
	case "crash", "recover", "ping":
		resp, err := send(strings.ToUpper(cmd[0]))
		if err != nil {
			return err
		}
		fmt.Println(resp)
	case "bench":
		// The paper's measurement: repeated 4-byte writes, averaged.
		writes := 50
		if len(cmd) > 1 {
			writes, err = strconv.Atoi(cmd[1])
			if err != nil {
				return fmt.Errorf("bench count: %w", err)
			}
		}
		var totalUS int64
		for i := 0; i < writes; i++ {
			resp, err := send(fmt.Sprintf("WRITE bench v%04d", i))
			if err != nil {
				return err
			}
			parts := strings.Fields(resp)
			if len(parts) != 2 || parts[0] != "OK" {
				return fmt.Errorf("unexpected response %q", resp)
			}
			us, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return err
			}
			totalUS += us
		}
		fmt.Printf("%d writes, average %d us\n", writes, totalUS/int64(writes))
	default:
		return fmt.Errorf("unknown command %q", cmd[0])
	}
	return nil
}
