// Command recmem-client drives operations on a running recmem-node through
// its binary control port, using the remote package — the same
// recmem.Client API an application would use. It exits non-zero on any
// error: refused operations (ERR responses of the old text protocol),
// malformed or short server replies, and connection failures all fail the
// command, so the client is safe to script against.
//
// Usage:
//
//	recmem-client -node 127.0.0.1:7200 write x hello
//	recmem-client -node 127.0.0.1:7201 read x
//	recmem-client -node 127.0.0.1:7201 read -safe x     # §VI safe read (regular algorithm)
//	recmem-client -node 127.0.0.1:7202 crash
//	recmem-client -node 127.0.0.1:7202 recover
//	recmem-client -node 127.0.0.1:7200 info
//	recmem-client -node 127.0.0.1:7200 bench 50         # 50 timed writes
//	recmem-client -node 127.0.0.1:7200 bench 500 64     # 500 writes, 64 in flight
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"recmem"
	"recmem/remote"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-client", flag.ContinueOnError)
	node := fs.String("node", "127.0.0.1:7200", "control address of a recmem-node")
	timeout := fs.Duration("timeout", time.Minute, "per-command deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmd := fs.Args()
	if len(cmd) == 0 {
		return fmt.Errorf("need a command: write, read, crash, recover, ping, info, bench")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c, err := remote.Dial(*node, remote.Options{DialTimeout: *timeout})
	if err != nil {
		return err
	}
	defer c.Close()

	switch strings.ToLower(cmd[0]) {
	case "write":
		if len(cmd) != 3 {
			return fmt.Errorf("usage: write <register> <value>")
		}
		var op recmem.OpID
		start := time.Now()
		if err := c.Register(cmd[1]).Write(ctx, []byte(cmd[2]), recmem.WithCost(&op)); err != nil {
			return err
		}
		fmt.Printf("OK op=%d %dus\n", op, time.Since(start).Microseconds())

	case "read":
		rest := cmd[1:]
		var opts []recmem.OpOption
		if len(rest) > 0 && rest[0] == "-safe" {
			opts = append(opts, recmem.WithConsistency(recmem.Safety))
			rest = rest[1:]
		}
		if len(rest) != 1 {
			return fmt.Errorf("usage: read [-safe] <register>")
		}
		val, err := c.Register(rest[0]).Read(ctx, opts...)
		if err != nil {
			return err
		}
		fmt.Println(string(val))

	case "crash":
		if len(cmd) != 1 {
			return fmt.Errorf("usage: crash")
		}
		if err := c.Crash(ctx); err != nil {
			return err
		}
		fmt.Println("OK")

	case "recover":
		if len(cmd) != 1 {
			return fmt.Errorf("usage: recover")
		}
		start := time.Now()
		if err := c.Recover(ctx); err != nil {
			return err
		}
		fmt.Printf("OK %dus\n", time.Since(start).Microseconds())

	case "ping":
		if err := c.Ping(ctx); err != nil {
			return err
		}
		fmt.Println("PONG")

	case "info":
		info, err := c.Info(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("node %d of %d, quorum %d, algorithm %s\n",
			info.NodeID, info.N, info.Quorum, info.Algorithm)

	case "bench":
		// The paper's measurement: repeated 4-byte writes. With a window
		// argument > 1 the writes are pipelined through the submission API,
		// engaging the node's batching engine.
		writes, window := 50, 1
		if len(cmd) > 1 {
			if writes, err = strconv.Atoi(cmd[1]); err != nil || writes <= 0 {
				return fmt.Errorf("bench count: %q", cmd[1])
			}
		}
		if len(cmd) > 2 {
			if window, err = strconv.Atoi(cmd[2]); err != nil || window <= 0 {
				return fmt.Errorf("bench window: %q", cmd[2])
			}
		}
		if err := bench(ctx, c, writes, window); err != nil {
			return err
		}

	default:
		return fmt.Errorf("unknown command %q", cmd[0])
	}
	return nil
}

// bench times writes: sequentially for window 1 (the paper's fifty
// consecutive writes), pipelined through the submission API otherwise.
func bench(ctx context.Context, c *remote.Client, writes, window int) error {
	reg := c.Register("bench")
	start := time.Now()
	if window <= 1 {
		for i := 0; i < writes; i++ {
			if err := reg.Write(ctx, []byte(fmt.Sprintf("v%04d", i))); err != nil {
				return fmt.Errorf("write %d: %w", i, err)
			}
		}
	} else {
		pending := make([]*recmem.WriteFuture, 0, window)
		for i := 0; i < writes; i++ {
			f, err := reg.SubmitWrite([]byte(fmt.Sprintf("v%04d", i)))
			if err != nil {
				return fmt.Errorf("submit %d: %w", i, err)
			}
			pending = append(pending, f)
			if len(pending) >= window {
				if err := pending[0].Wait(ctx); err != nil {
					return err
				}
				pending = pending[1:]
			}
		}
		for _, f := range pending {
			if err := f.Wait(ctx); err != nil {
				return err
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d writes in %v: average %dus, %.0f op/s\n",
		writes, elapsed.Round(time.Millisecond),
		elapsed.Microseconds()/int64(writes),
		float64(writes)/elapsed.Seconds())
	return nil
}
