package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
)

// fakeNode runs a minimal control-protocol server and returns its address.
func fakeNode(t *testing.T, handle func(cmd []string) string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					fmt.Fprintln(conn, handle(strings.Fields(sc.Text())))
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestClientCommands(t *testing.T) {
	store := make(map[string]string)
	addr := fakeNode(t, func(cmd []string) string {
		switch strings.ToUpper(cmd[0]) {
		case "PING":
			return "PONG"
		case "WRITE":
			store[cmd[1]] = cmd[2]
			return "OK 123"
		case "READ":
			return "VAL " + store[cmd[1]]
		case "CRASH", "RECOVER":
			return "OK 1"
		default:
			return "ERR unknown"
		}
	})
	for _, cmd := range [][]string{
		{"-node", addr, "write", "x", "hello"},
		{"-node", addr, "read", "x"},
		{"-node", addr, "ping"},
		{"-node", addr, "crash"},
		{"-node", addr, "recover"},
		{"-node", addr, "bench", "5"},
	} {
		if err := run(cmd); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
	if store["x"] != "hello" {
		t.Fatalf("write did not reach the node: %v", store)
	}
}

func TestClientValidation(t *testing.T) {
	addr := fakeNode(t, func([]string) string { return "ERR nothing" })
	if err := run([]string{"-node", addr}); err == nil {
		t.Fatal("accepted missing command")
	}
	if err := run([]string{"-node", addr, "frobnicate"}); err == nil {
		t.Fatal("accepted unknown command")
	}
	if err := run([]string{"-node", addr, "write", "x"}); err == nil {
		t.Fatal("accepted incomplete write")
	}
	if err := run([]string{"-node", addr, "read"}); err == nil {
		t.Fatal("accepted incomplete read")
	}
	if err := run([]string{"-node", addr, "bench", "zebra"}); err == nil {
		t.Fatal("accepted bad bench count")
	}
	// bench against an ERR-only server fails cleanly.
	if err := run([]string{"-node", addr, "bench", "1"}); err == nil {
		t.Fatal("bench accepted ERR responses")
	}
	if err := run([]string{"-node", "127.0.0.1:1", "-timeout", "100ms", "ping"}); err == nil {
		t.Fatal("accepted unreachable node")
	}
}
