package main

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/remote"
)

// fakeNode runs a real single-process node behind a remote.Server and
// returns its control address.
func fakeNode(t *testing.T, kind core.AlgorithmKind) string {
	t.Helper()
	nw, err := netsim.New(1, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	var disk stable.Storage
	if kind.Recovers() {
		disk = stable.NewMemDisk(stable.Profile{})
	}
	nd, err := core.NewNode(0, 1, kind,
		core.Options{RetransmitEvery: 10 * time.Millisecond},
		core.Deps{Endpoint: nw.Endpoint(0), Storage: disk, IDs: &atomic.Uint64{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nd.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.Serve(ln, nd, remote.ServerOptions{})
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func TestClientCommands(t *testing.T) {
	addr := fakeNode(t, core.Persistent)
	for _, cmd := range [][]string{
		{"-node", addr, "ping"},
		{"-node", addr, "info"},
		{"-node", addr, "write", "x", "hello"},
		{"-node", addr, "read", "x"},
		{"-node", addr, "crash"},
		{"-node", addr, "recover"},
		{"-node", addr, "read", "x"},
		{"-node", addr, "bench", "5"},
		{"-node", addr, "bench", "20", "8"},
	} {
		if err := run(cmd); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
}

func TestSafeReadFlag(t *testing.T) {
	addr := fakeNode(t, core.RegularSW)
	if err := run([]string{"-node", addr, "write", "x", "v"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-node", addr, "read", "-safe", "x"}); err != nil {
		t.Fatalf("safe read under regular: %v", err)
	}
	// Under an atomic algorithm the selection is refused — and the refusal
	// is a non-zero exit, not a printed ERR line.
	atomicAddr := fakeNode(t, core.Persistent)
	if err := run([]string{"-node", atomicAddr, "read", "-safe", "x"}); err == nil {
		t.Fatal("safe read under persistent must fail")
	}
}

// TestErrorsExitNonZero is the scripting contract: every refused operation
// surfaces as an error from run (→ non-zero exit), never as a printed
// ERR with a zero exit.
func TestErrorsExitNonZero(t *testing.T) {
	addr := fakeNode(t, core.Persistent)
	// recover of an up node → ErrNotDown
	if err := run([]string{"-node", addr, "recover"}); err == nil {
		t.Fatal("recover of an up node exited zero")
	}
	// crash, then write → ErrDown
	if err := run([]string{"-node", addr, "crash"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-node", addr, "write", "x", "v"}); err == nil {
		t.Fatal("write on a crashed node exited zero")
	}
	if err := run([]string{"-node", addr, "bench", "1"}); err == nil {
		t.Fatal("bench on a crashed node exited zero")
	}
}

func TestClientValidation(t *testing.T) {
	addr := fakeNode(t, core.Persistent)
	if err := run([]string{"-node", addr}); err == nil {
		t.Fatal("accepted missing command")
	}
	if err := run([]string{"-node", addr, "frobnicate"}); err == nil {
		t.Fatal("accepted unknown command")
	}
	if err := run([]string{"-node", addr, "write", "x"}); err == nil {
		t.Fatal("accepted incomplete write")
	}
	if err := run([]string{"-node", addr, "read"}); err == nil {
		t.Fatal("accepted incomplete read")
	}
	if err := run([]string{"-node", addr, "bench", "zebra"}); err == nil {
		t.Fatal("accepted bad bench count")
	}
	if err := run([]string{"-node", addr, "bench", "5", "-3"}); err == nil {
		t.Fatal("accepted bad bench window")
	}
	if err := run([]string{"-node", "127.0.0.1:1", "-timeout", "100ms", "ping"}); err == nil {
		t.Fatal("accepted unreachable node")
	}
}

// TestShortReplyFails cuts the connection mid-reply: the client must
// surface an error, not print a partial result and exit zero.
func TestShortReplyFails(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the request frame, answer with a truncated frame, hang up.
		buf := make([]byte, 1024)
		_, _ = conn.Read(buf)
		_, _ = conn.Write([]byte{0, 0, 0, 50, 1}) // promises 50 bytes, sends 1
		conn.Close()
	}()
	if err := run([]string{"-node", ln.Addr().String(), "-timeout", "2s", "ping"}); err == nil {
		t.Fatal("short reply exited zero")
	}
}
