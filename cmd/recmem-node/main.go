// Command recmem-node runs one process of the shared-memory emulation over
// real TCP, the deployment shape of the paper's measurements (one process
// per workstation). Processes find each other through a static peer list;
// clients drive operations through a binary control port speaking the
// remote package's length-prefixed RPC protocol (docs/adr/0003): pipelined
// request/response frames correlated by request id, so one connection
// sustains arbitrarily many in-flight operations and the node feeds them
// through its batching engine. Drive it with cmd/recmem-client, or from Go
// with remote.Dial — the returned client is a recmem.Client, interchangeable
// with the in-process simulation.
//
// A three-process register on one machine:
//
//	recmem-node -id 0 -peers :7100,:7101,:7102 -control :7200 -dir /tmp/n0 &
//	recmem-node -id 1 -peers :7100,:7101,:7102 -control :7201 -dir /tmp/n1 &
//	recmem-node -id 2 -peers :7100,:7101,:7102 -control :7202 -dir /tmp/n2 &
//	recmem-client -node :7200 write x hello
//	recmem-client -node :7201 read x
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"recmem/internal/core"
	"recmem/internal/nettcp"
	"recmem/internal/stable"
	"recmem/remote"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-node:", err)
		os.Exit(1)
	}
}

// nodeConfig is the parsed command line.
type nodeConfig struct {
	id             int
	peers          []string
	control        string
	dir            string
	algorithm      string
	disk           string
	hardened       bool
	retransmit     time.Duration
	opTimeout      time.Duration
	recoverTimeout time.Duration
	staleReads     bool
	freezeEpoch    bool
}

// nodeServer is one running node plus its control server.
type nodeServer struct {
	mesh *nettcp.Mesh
	node *core.Node
	disk stable.Storage
	srv  *remote.Server

	// bootRecovery is how long the startup recovery procedure took; zero
	// when the node started on a volatile (mem) backend.
	bootRecovery time.Duration
}

// ControlAddr returns the control port's actual address.
func (ns *nodeServer) ControlAddr() string { return ns.srv.Addr() }

// Done returns a channel closed when the control server stops.
func (ns *nodeServer) Done() <-chan struct{} { return ns.srv.Done() }

// Close shuts everything down.
func (ns *nodeServer) Close() {
	ns.srv.Close()
	ns.node.Close()
	ns.mesh.Close()
	if ns.disk != nil {
		_ = ns.disk.Close()
	}
}

func algorithmByName(name string) (core.AlgorithmKind, error) {
	switch name {
	case "crash-stop":
		return core.CrashStop, nil
	case "transient":
		return core.Transient, nil
	case "persistent":
		return core.Persistent, nil
	case "naive":
		return core.Naive, nil
	case "regular":
		return core.RegularSW, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (crash-stop, transient, persistent, naive, regular)", name)
	}
}

// startNode validates the configuration and brings the node up; it returns
// as soon as the mesh and the control port are listening.
func startNode(cfg nodeConfig) (*nodeServer, error) {
	if len(cfg.peers) < 1 || cfg.peers[0] == "" && len(cfg.peers) == 1 {
		return nil, fmt.Errorf("need -peers")
	}
	if cfg.id < 0 || cfg.id >= len(cfg.peers) {
		return nil, fmt.Errorf("-id %d out of range for %d peers", cfg.id, len(cfg.peers))
	}
	if cfg.control == "" {
		return nil, fmt.Errorf("need -control")
	}
	kind, err := algorithmByName(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	if !stable.ValidBackend(cfg.disk) {
		return nil, fmt.Errorf("-disk: unknown engine %q (want one of %s)", cfg.disk, strings.Join(stable.Backends(), ", "))
	}
	if cfg.retransmit <= 0 {
		cfg.retransmit = 100 * time.Millisecond
	}

	mesh, err := nettcp.Listen(int32(cfg.id), cfg.peers[cfg.id], nettcp.Options{})
	if err != nil {
		return nil, err
	}
	mesh.SetPeers(cfg.peers)

	var disk stable.Storage
	if kind.Recovers() {
		if cfg.disk == "mem" {
			// Volatile stand-in for tests and demos: survives Crash/Recover
			// but not a process restart.
			disk = stable.NewMemDisk(stable.Profile{})
		} else {
			if cfg.dir == "" {
				mesh.Close()
				return nil, fmt.Errorf("algorithm %v needs -dir for stable storage", kind)
			}
			disk, err = stable.OpenBackend(cfg.disk, cfg.dir, stable.Profile{})
			if err != nil {
				mesh.Close()
				return nil, err
			}
		}
	}

	node, err := core.NewNode(int32(cfg.id), len(cfg.peers), kind,
		core.Options{RetransmitEvery: cfg.retransmit, HardenedTags: cfg.hardened},
		core.Deps{Endpoint: mesh, Storage: disk, IDs: &atomic.Uint64{}},
	)
	if err != nil {
		mesh.Close()
		if disk != nil {
			_ = disk.Close()
		}
		return nil, err
	}

	// Restart safety: a process that starts on a persistent backend treats
	// its startup as the paper's crash+recover — rebuild the volatile state
	// from the persisted logs and run the algorithm's recovery procedure
	// (finish the pending write / bump the recovery counter) BEFORE the
	// control port opens, so a SIGKILL + re-exec is a faithful paper-model
	// crash and no client operation can observe a half-recovered node. A
	// cold start with an empty directory recovers trivially; a restart with
	// a pending write blocks here until a majority of peers is reachable,
	// exactly as Recover would.
	var bootRecovery time.Duration
	if kind.Recovers() && cfg.disk != "mem" {
		start := time.Now()
		if err := bootRecover(node, cfg.recoverTimeout); err != nil {
			node.Close()
			mesh.Close()
			if disk != nil {
				_ = disk.Close()
			}
			return nil, fmt.Errorf("startup recovery: %w", err)
		}
		bootRecovery = time.Since(start)
	}

	ln, err := net.Listen("tcp", cfg.control)
	if err != nil {
		node.Close()
		mesh.Close()
		if disk != nil {
			_ = disk.Close()
		}
		return nil, err
	}
	srv := remote.Serve(ln, node, remote.ServerOptions{
		OpTimeout: cfg.opTimeout, StaleReads: cfg.staleReads, FreezeEpoch: cfg.freezeEpoch})
	return &nodeServer{mesh: mesh, node: node, disk: disk, srv: srv, bootRecovery: bootRecovery}, nil
}

// bootRecover runs the crash+recover transition of a freshly exec'd process:
// the node is flipped to the crashed state (its volatile state is empty — the
// real loss happened when the previous incarnation died) and recovered from
// stable storage. timeout 0 means wait indefinitely for a reachable majority.
func bootRecover(node *core.Node, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if !node.Crash(nil) {
		return fmt.Errorf("node refused the boot crash transition")
	}
	return node.Recover(ctx, nil, nil)
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-node", flag.ContinueOnError)
	var (
		id          = fs.Int("id", 0, "this process's id (index into -peers)")
		peersFlag   = fs.String("peers", "", "comma-separated listen addresses of all processes")
		control     = fs.String("control", "", "address of the client control port")
		dir         = fs.String("dir", "", "stable-storage directory (required for crash-recovery algorithms with a real -disk)")
		algorithm   = fs.String("algorithm", "persistent", "crash-stop, transient, persistent, naive, or regular")
		disk        = fs.String("disk", "file", "stable-storage engine: mem, file, wal, or sharded")
		hardened    = fs.Bool("hardened", false, "hardened tags for the transient algorithm")
		retransmit  = fs.Duration("retransmit", 100*time.Millisecond, "protocol retransmission period")
		opTimeout   = fs.Duration("op-timeout", time.Minute, "server-side bound on one operation")
		recTimeout  = fs.Duration("recover-timeout", 2*time.Minute, "bound on the startup recovery procedure with a persistent -disk (0 = wait for a majority forever)")
		staleReads  = fs.Bool("stale-reads", false, "FAULT INJECTION: serve every read from the first reply ever produced for its register (frozen value + stale tag witness) — a deliberately dishonest node for exercising recmem-torture -verify")
		freezeEpoch = fs.Bool("freeze-epoch", false, "FAULT INJECTION: report the startup incarnation epoch in every reply forever, hiding later crashes from the epoch-based crash inference — a deliberately dishonest node for exercising recmem-torture -verify")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := startNode(nodeConfig{
		id: *id, peers: strings.Split(*peersFlag, ","), control: *control,
		dir: *dir, algorithm: *algorithm, disk: *disk, hardened: *hardened,
		retransmit: *retransmit, opTimeout: *opTimeout, recoverTimeout: *recTimeout,
		staleReads: *staleReads, freezeEpoch: *freezeEpoch,
	})
	if err != nil {
		return err
	}
	defer ns.Close()
	dishonest := ""
	if *staleReads {
		dishonest = " [DISHONEST: -stale-reads]"
	}
	if *freezeEpoch {
		dishonest += " [DISHONEST: -freeze-epoch]"
	}
	recovered := ""
	if ns.bootRecovery > 0 {
		// The record counts prove the restart was lazy: pending writing/
		// records finished plus the recovery-counter bump are ALL the
		// register state this boot read — the rest of the namespace
		// materializes on first touch (docs/adr/0009).
		stats := ns.node.LastRecovery()
		recovered = fmt.Sprintf(", recovered from stable storage in %v (pending writes finished=%d, rec=%d, register map lazy)",
			ns.bootRecovery.Round(time.Microsecond), stats.PendingWrites, ns.node.RecoveryCount())
	}
	fmt.Printf("recmem-node %d (%v, %s disk, epoch %d) serving protocol on %s, control on %s%s%s\n",
		*id, ns.node.Algorithm(), *disk, ns.node.IncarnationEpoch(), ns.mesh.Addr(), ns.ControlAddr(), dishonest, recovered)

	// A signal is the deployment's shutdown path: drain through Close and
	// leave the dispatch accounting on stdout, so an operator (or the smoke
	// harness) can see whether the node died with work in flight.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("recmem-node %d: %v, shutting down\n", *id, sig)
	case <-ns.Done():
	}
	fmt.Println(shutdownBanner(*id, ns.srv))
	return nil
}

// shutdownBanner summarizes the control server's dispatch accounting for the
// shutdown line: the in-flight gauge (non-zero means operations were
// abandoned mid-protocol), the callback-completion and deadline-drop
// counters (docs/adr/0010), and the reply group-commit ratio.
func shutdownBanner(id int, srv *remote.Server) string {
	inflight, completions, deadlines := srv.DispatchStats()
	bursts, frames := srv.WriterStats()
	ratio := 0.0
	if bursts > 0 {
		ratio = float64(frames) / float64(bursts)
	}
	return fmt.Sprintf("recmem-node %d: dispatch in-flight=%d callback-completions=%d deadline-drops=%d reply-frames=%d reply-bursts=%d (%.1f frames/burst)",
		id, inflight, completions, deadlines, frames, bursts, ratio)
}
