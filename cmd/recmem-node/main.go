// Command recmem-node runs one process of the shared-memory emulation over
// real TCP, the deployment shape of the paper's measurements (one process
// per workstation). Processes find each other through a static peer list;
// clients drive operations through a line-based control port (see
// cmd/recmem-client).
//
// A three-process register on one machine:
//
//	recmem-node -id 0 -peers :7100,:7101,:7102 -control :7200 -dir /tmp/n0 &
//	recmem-node -id 1 -peers :7100,:7101,:7102 -control :7201 -dir /tmp/n1 &
//	recmem-node -id 2 -peers :7100,:7101,:7102 -control :7202 -dir /tmp/n2 &
//	recmem-client -node :7200 write x hello
//	recmem-client -node :7201 read x
//
// Control protocol (one command per line):
//
//	WRITE <register> <value>   -> OK <latency-us> | ERR <reason>
//	READ <register>            -> VAL <value>     | ERR <reason>
//	CRASH                      -> OK              | ERR <reason>
//	RECOVER                    -> OK <latency-us> | ERR <reason>
//	PING                       -> PONG
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"recmem/internal/core"
	"recmem/internal/nettcp"
	"recmem/internal/stable"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recmem-node:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("recmem-node", flag.ContinueOnError)
	var (
		id        = fs.Int("id", 0, "this process's id (index into -peers)")
		peersFlag = fs.String("peers", "", "comma-separated listen addresses of all processes")
		control   = fs.String("control", "", "address of the client control port")
		dir       = fs.String("dir", "", "stable-storage directory (required for crash-recovery algorithms)")
		algorithm = fs.String("algorithm", "persistent", "crash-stop, transient, persistent, or naive")
		hardened  = fs.Bool("hardened", false, "hardened tags for the transient algorithm")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	peers := strings.Split(*peersFlag, ",")
	if len(peers) < 1 || *peersFlag == "" {
		return fmt.Errorf("need -peers")
	}
	if *id < 0 || *id >= len(peers) {
		return fmt.Errorf("-id %d out of range for %d peers", *id, len(peers))
	}
	if *control == "" {
		return fmt.Errorf("need -control")
	}
	var kind core.AlgorithmKind
	switch *algorithm {
	case "crash-stop":
		kind = core.CrashStop
	case "transient":
		kind = core.Transient
	case "persistent":
		kind = core.Persistent
	case "naive":
		kind = core.Naive
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}

	mesh, err := nettcp.Listen(int32(*id), peers[*id], nettcp.Options{})
	if err != nil {
		return err
	}
	defer mesh.Close()
	mesh.SetPeers(peers)

	var disk stable.Storage
	if kind.Recovers() {
		if *dir == "" {
			return fmt.Errorf("algorithm %v needs -dir for stable storage", kind)
		}
		disk, err = stable.NewFileDisk(*dir)
		if err != nil {
			return err
		}
		defer disk.Close()
	}

	node, err := core.NewNode(int32(*id), len(peers), kind,
		core.Options{RetransmitEvery: 100 * time.Millisecond, HardenedTags: *hardened},
		core.Deps{Endpoint: mesh, Storage: disk, IDs: &atomic.Uint64{}},
	)
	if err != nil {
		return err
	}
	defer node.Close()

	ln, err := net.Listen("tcp", *control)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("recmem-node %d (%v) serving protocol on %s, control on %s\n",
		*id, kind, mesh.Addr(), ln.Addr())

	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil // listener closed
		}
		go serveControl(conn, node)
	}
}

func serveControl(conn net.Conn, node *core.Node) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 128<<10), 128<<10)
	out := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		switch strings.ToUpper(fields[0]) {
		case "PING":
			reply("PONG")
		case "WRITE":
			if len(fields) != 3 {
				reply("ERR usage: WRITE <register> <value>")
				break
			}
			start := time.Now()
			if _, err := node.Write(ctx, fields[1], []byte(fields[2]), core.OpObserver{}); err != nil {
				reply("ERR %v", err)
				break
			}
			reply("OK %d", time.Since(start).Microseconds())
		case "READ":
			if len(fields) != 2 {
				reply("ERR usage: READ <register>")
				break
			}
			val, _, err := node.Read(ctx, fields[1], core.OpObserver{})
			if err != nil {
				reply("ERR %v", err)
				break
			}
			reply("VAL %s", string(val))
		case "CRASH":
			if node.Crash(nil) {
				reply("OK")
			} else {
				reply("ERR already down")
			}
		case "RECOVER":
			start := time.Now()
			if err := node.Recover(ctx, nil, nil); err != nil {
				reply("ERR %v", err)
				break
			}
			reply("OK %d", time.Since(start).Microseconds())
		default:
			reply("ERR unknown command %q", fields[0])
		}
		cancel()
	}
}
