package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/stable"
)

// newControlledNode builds a 3-process in-memory emulation and serves node
// 0's control protocol over a pipe; returns a client-side scanner pair.
func newControlledNode(t *testing.T) (send func(string) string) {
	t.Helper()
	nw, err := netsim.New(3, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	ids := &atomic.Uint64{}
	var node0 *core.Node
	for i := 0; i < 3; i++ {
		nd, err := core.NewNode(int32(i), 3, core.Persistent,
			core.Options{RetransmitEvery: 10 * time.Millisecond},
			core.Deps{Endpoint: nw.Endpoint(int32(i)), Storage: stable.NewMemDisk(stable.Profile{}), IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		if i == 0 {
			node0 = nd
		}
	}
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close() })
	go serveControl(server, node0)
	rd := bufio.NewReader(client)
	return func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintln(client, line); err != nil {
			t.Fatal(err)
		}
		resp, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}
}

func TestControlProtocol(t *testing.T) {
	send := newControlledNode(t)
	if got := send("PING"); got != "PONG" {
		t.Fatalf("PING -> %q", got)
	}
	if got := send("WRITE x hello"); !strings.HasPrefix(got, "OK ") {
		t.Fatalf("WRITE -> %q", got)
	}
	if got := send("READ x"); got != "VAL hello" {
		t.Fatalf("READ -> %q", got)
	}
	if got := send("READ nothing"); got != "VAL" {
		t.Fatalf("READ empty -> %q", got)
	}
	if got := send("CRASH"); got != "OK" {
		t.Fatalf("CRASH -> %q", got)
	}
	if got := send("CRASH"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("double CRASH -> %q", got)
	}
	if got := send("WRITE x nope"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("WRITE while down -> %q", got)
	}
	if got := send("RECOVER"); !strings.HasPrefix(got, "OK ") {
		t.Fatalf("RECOVER -> %q", got)
	}
	if got := send("READ x"); got != "VAL hello" {
		t.Fatalf("READ after recover -> %q", got)
	}
	// Malformed input.
	if got := send("WRITE"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("bad WRITE -> %q", got)
	}
	if got := send("FROB x"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("unknown -> %q", got)
	}
	if got := send("read x"); got != "VAL hello" {
		t.Fatalf("lowercase READ -> %q", got)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("accepted empty args")
	}
	if err := run([]string{"-peers", "a,b", "-id", "7", "-control", ":0"}); err == nil {
		t.Fatal("accepted out-of-range id")
	}
	if err := run([]string{"-peers", "a,b", "-id", "0"}); err == nil {
		t.Fatal("accepted missing control address")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-algorithm", "zzz"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-algorithm", "persistent"}); err == nil {
		t.Fatal("accepted missing -dir for a recovery algorithm")
	}
}
