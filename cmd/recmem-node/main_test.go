package main

import (
	"context"
	"errors"
	"testing"
	"time"

	"recmem"
	"recmem/remote"
)

// startTestNode brings up a single-process node (n = 1, quorum 1 — the
// mesh loopback short-circuits, so no real peer dialing happens) with the
// control port on an ephemeral port, and dials it.
func startTestNode(t *testing.T, algorithm string) *remote.Client {
	t.Helper()
	ns, err := startNode(nodeConfig{
		id:        0,
		peers:     []string{"127.0.0.1:0"},
		control:   "127.0.0.1:0",
		algorithm: algorithm,
		disk:      "mem",
		opTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ns.Close)
	c, err := remote.Dial(ns.ControlAddr(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestControlProtocol drives a node end to end through the binary control
// port: info, write/read, crash/recover, error surfacing.
func TestControlProtocol(t *testing.T) {
	c := startTestNode(t, "persistent")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	info, err := c.Info(ctx)
	if err != nil || info.N != 1 || info.Algorithm != "persistent" {
		t.Fatalf("info = %+v, %v", info, err)
	}
	x := c.Register("x")
	if err := x.Write(ctx, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := x.Read(ctx)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if got, err := c.Register("nothing").Read(ctx); err != nil || got != nil {
		t.Fatalf("read of untouched register = %q, %v", got, err)
	}
	if err := c.Crash(ctx); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := c.Crash(ctx); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("double crash: %v", err)
	}
	if err := x.Write(ctx, []byte("nope")); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("write while down: %v", err)
	}
	if err := c.Recover(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err = x.Read(ctx)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read after recover = %q, %v", got, err)
	}
}

// TestWALBackedNode runs a node on the WAL storage engine.
func TestWALBackedNode(t *testing.T) {
	ns, err := startNode(nodeConfig{
		id:        0,
		peers:     []string{"127.0.0.1:0"},
		control:   "127.0.0.1:0",
		algorithm: "persistent",
		disk:      "wal",
		dir:       t.TempDir(),
		opTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	c, err := remote.Dial(ns.ControlAddr(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Register("x").Write(ctx, []byte("walled")); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := c.Register("x").Read(ctx)
	if err != nil || string(got) != "walled" {
		t.Fatalf("read after WAL recovery = %q, %v", got, err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("accepted empty args")
	}
	if err := run([]string{"-peers", "a,b", "-id", "7", "-control", ":0"}); err == nil {
		t.Fatal("accepted out-of-range id")
	}
	if err := run([]string{"-peers", "a,b", "-id", "0"}); err == nil {
		t.Fatal("accepted missing control address")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-algorithm", "zzz"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-algorithm", "persistent"}); err == nil {
		t.Fatal("accepted missing -dir for a recovery algorithm with a real disk")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-disk", "floppy"}); err == nil {
		t.Fatal("accepted unknown disk engine")
	}
}
