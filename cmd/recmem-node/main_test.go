package main

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"recmem"
	"recmem/remote"
)

// startTestNode brings up a single-process node (n = 1, quorum 1 — the
// mesh loopback short-circuits, so no real peer dialing happens) with the
// control port on an ephemeral port, and dials it.
func startTestNode(t *testing.T, algorithm string) *remote.Client {
	t.Helper()
	ns, err := startNode(nodeConfig{
		id:        0,
		peers:     []string{"127.0.0.1:0"},
		control:   "127.0.0.1:0",
		algorithm: algorithm,
		disk:      "mem",
		opTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ns.Close)
	c, err := remote.Dial(ns.ControlAddr(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestControlProtocol drives a node end to end through the binary control
// port: info, write/read, crash/recover, error surfacing.
func TestControlProtocol(t *testing.T) {
	c := startTestNode(t, "persistent")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	info, err := c.Info(ctx)
	if err != nil || info.N != 1 || info.Algorithm != "persistent" {
		t.Fatalf("info = %+v, %v", info, err)
	}
	x := c.Register("x")
	if err := x.Write(ctx, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := x.Read(ctx)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if got, err := c.Register("nothing").Read(ctx); err != nil || got != nil {
		t.Fatalf("read of untouched register = %q, %v", got, err)
	}
	if err := c.Crash(ctx); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := c.Crash(ctx); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("double crash: %v", err)
	}
	if err := x.Write(ctx, []byte("nope")); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("write while down: %v", err)
	}
	if err := c.Recover(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err = x.Read(ctx)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read after recover = %q, %v", got, err)
	}
}

// TestWALBackedNode runs a node on the WAL storage engine.
func TestWALBackedNode(t *testing.T) {
	ns, err := startNode(nodeConfig{
		id:        0,
		peers:     []string{"127.0.0.1:0"},
		control:   "127.0.0.1:0",
		algorithm: "persistent",
		disk:      "wal",
		dir:       t.TempDir(),
		opTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	c, err := remote.Dial(ns.ControlAddr(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Register("x").Write(ctx, []byte("walled")); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := c.Register("x").Read(ctx)
	if err != nil || string(got) != "walled" {
		t.Fatalf("read after WAL recovery = %q, %v", got, err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("accepted empty args")
	}
	if err := run([]string{"-peers", "a,b", "-id", "7", "-control", ":0"}); err == nil {
		t.Fatal("accepted out-of-range id")
	}
	if err := run([]string{"-peers", "a,b", "-id", "0"}); err == nil {
		t.Fatal("accepted missing control address")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-algorithm", "zzz"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-algorithm", "persistent"}); err == nil {
		t.Fatal("accepted missing -dir for a recovery algorithm with a real disk")
	}
	if err := run([]string{"-peers", "127.0.0.1:0,x", "-id", "0", "-control", ":0", "-disk", "floppy"}); err == nil {
		t.Fatal("accepted unknown disk engine")
	}
}

// TestRestartRecovery proves a recmem-node restart is the paper's
// crash+recover: the process's volatile state dies with it (here: the first
// nodeServer is torn down without any protocol-level Crash/Recover), and a
// fresh process over the same -dir rebuilds its registers from the
// persisted logs and runs the recovery procedure before the control port
// opens.
func TestRestartRecovery(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, disk := range []string{"wal", "file"} {
		t.Run(disk, func(t *testing.T) {
			dir := t.TempDir()
			cfg := nodeConfig{
				id:        0,
				peers:     []string{"127.0.0.1:0"},
				control:   "127.0.0.1:0",
				algorithm: "persistent",
				disk:      disk,
				dir:       dir,
				opTimeout: 30 * time.Second,
			}
			ns, err := startNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := remote.Dial(ns.ControlAddr(), remote.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Register("x").Write(ctx, []byte("survives-restart")); err != nil {
				t.Fatal(err)
			}
			c.Close()
			ns.Close() // SIGKILL stand-in: no Crash/Recover ran, volatile state is gone

			ns2, err := startNode(cfg)
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			defer ns2.Close()
			c2, err := remote.Dial(ns2.ControlAddr(), remote.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			got, err := c2.Register("x").Read(ctx)
			if err != nil || string(got) != "survives-restart" {
				t.Fatalf("read after restart = %q, %v", got, err)
			}
		})
	}
}

// TestRestartBumpsRecoveryCounter: under the transient-family algorithms the
// startup recovery procedure is Fig. 5's counter bump — every real process
// restart must advance the persisted recovery count, or a writer that died
// mid-write could re-mint the interrupted write's timestamp.
func TestRestartBumpsRecoveryCounter(t *testing.T) {
	dir := t.TempDir()
	cfg := nodeConfig{
		id:        0,
		peers:     []string{"127.0.0.1:0"},
		control:   "127.0.0.1:0",
		algorithm: "transient",
		disk:      "wal",
		dir:       dir,
		opTimeout: 30 * time.Second,
	}
	var recs []int32
	for i := 0; i < 3; i++ {
		ns, err := startNode(cfg)
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		recs = append(recs, ns.node.RecoveryCount())
		if ns.bootRecovery <= 0 {
			t.Fatalf("start %d: no boot recovery ran", i)
		}
		ns.Close()
	}
	for i, rec := range recs {
		if want := int32(i + 1); rec != want {
			t.Fatalf("recovery counts across restarts = %v, want [1 2 3]", recs)
		}
	}
}

// TestShutdownBanner checks the dispatch-accounting line the node prints on
// shutdown: after a burst of completed operations the banner must report
// zero in-flight, every completion, and no deadline drops.
func TestShutdownBanner(t *testing.T) {
	ns, err := startNode(nodeConfig{
		id:        0,
		peers:     []string{"127.0.0.1:0"},
		control:   "127.0.0.1:0",
		algorithm: "persistent",
		disk:      "mem",
		opTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ns.Close)
	c, err := remote.Dial(ns.ControlAddr(), remote.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	reg := c.Register("banner")
	const ops = 32
	for i := 0; i < ops; i++ {
		if err := reg.Write(ctx, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Entry recycling decrements the in-flight gauge just after the reply is
	// queued; give it a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inflight, completions, deadlines := ns.srv.DispatchStats()
		if inflight == 0 && completions >= ops {
			if deadlines != 0 {
				t.Fatalf("deadline drops on the happy path: %d", deadlines)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatch stats never settled: inflight=%d completions=%d", inflight, completions)
		}
		time.Sleep(time.Millisecond)
	}

	banner := shutdownBanner(0, ns.srv)
	if !strings.Contains(banner, "in-flight=0") {
		t.Fatalf("banner missing drained in-flight gauge: %q", banner)
	}
	if !strings.Contains(banner, "deadline-drops=0") {
		t.Fatalf("banner missing deadline counter: %q", banner)
	}
	var completions uint64
	if _, err := fmt.Sscanf(banner[strings.Index(banner, "callback-completions="):], "callback-completions=%d", &completions); err != nil || completions < ops {
		t.Fatalf("banner completions = %d (err %v), want ≥%d: %q", completions, err, ops, banner)
	}
}
