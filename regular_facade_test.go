package recmem_test

import (
	"errors"
	"testing"
	"time"

	"recmem"
)

func TestRegularRegisterFlow(t *testing.T) {
	c := newTestCluster(t, 5, recmem.RegularRegister)
	ctx := testCtx(t)

	// Only process 0 may write.
	if err := c.Process(1).Write(ctx, "x", []byte("v")); !errors.Is(err, recmem.ErrNotWriter) {
		t.Fatalf("write at non-writer: %v", err)
	}
	if err := c.Process(0).Write(ctx, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Process(4).Read(ctx, "x")
	if err != nil || string(got) != "v1" {
		t.Fatalf("read = %q, %v", got, err)
	}

	// Cost profile (§VI): one causal log per write, none per read.
	var op recmem.OpID
	if err := c.Process(0).Register("x").Write(ctx, []byte("v2"), recmem.WithCost(&op)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if cost := c.CostOf(op); cost.CausalLogs != 1 {
		t.Fatalf("regular write cost = %+v, want 1 causal log", cost)
	}
	var rop recmem.OpID
	if _, err := c.Process(2).Register("x").Read(ctx, recmem.WithCost(&rop)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if cost := c.CostOf(rop); cost.TotalLogs != 0 {
		t.Fatalf("regular read cost = %+v, want no logs", cost)
	}

	if got := c.DefaultCriterion(); got != recmem.Regularity {
		t.Fatalf("default criterion = %v", got)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, cr := range []recmem.Criterion{recmem.Regularity, recmem.Safety} {
		if err := c.VerifyCriterion(cr); err != nil {
			t.Fatalf("%v: %v", cr, err)
		}
	}
}

func TestRegularRegisterCrashRecovery(t *testing.T) {
	c := newTestCluster(t, 3, recmem.RegularRegister)
	ctx := testCtx(t)
	w := c.Process(0)
	if err := w.Write(ctx, "x", []byte("before")); err != nil {
		t.Fatal(err)
	}
	_ = w.Crash(ctx)
	// Readers keep working while the writer is down.
	got, err := c.Process(1).Read(ctx, "x")
	if err != nil || string(got) != "before" {
		t.Fatalf("read while writer down = %q, %v", got, err)
	}
	if err := w.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, "x", []byte("after")); err != nil {
		t.Fatal(err)
	}
	got, err = c.Process(2).Read(ctx, "x")
	if err != nil || string(got) != "after" {
		t.Fatalf("read after recovery = %q, %v", got, err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCriterionNames(t *testing.T) {
	names := map[recmem.Criterion]string{
		recmem.Linearizability:     "linearizable",
		recmem.PersistentAtomicity: "persistent-atomic",
		recmem.TransientAtomicity:  "transient-atomic",
		recmem.Regularity:          "regular",
		recmem.Safety:              "safe",
	}
	for cr, want := range names {
		if got := cr.String(); got != want {
			t.Fatalf("criterion %d name = %q, want %q", int(cr), got, want)
		}
	}
	algos := map[recmem.Algorithm]string{
		recmem.CrashStop:        "crash-stop",
		recmem.TransientAtomic:  "transient",
		recmem.PersistentAtomic: "persistent",
		recmem.NaiveLogging:     "naive",
		recmem.RegularRegister:  "regular-sw",
	}
	for a, want := range algos {
		if got := a.String(); got != want {
			t.Fatalf("algorithm %d name = %q, want %q", int(a), got, want)
		}
	}
}
