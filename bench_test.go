// Benchmarks regenerating the paper's evaluation (§V, Figure 6) as
// testing.B benchmarks over the public API. The simulated testbed is
// calibrated to the paper's: δ ≈ 0.1 ms LAN transit (100 Mb/s) and
// λ ≈ 0.2 ms synchronous disk logging.
//
// Expected shape (paper §V-B):
//
//   - BenchmarkFig6aWrite: crash-stop ≈ 4δ ≈ 500 µs; transient adds one
//     causal log (≈ +λ); persistent adds two (≈ +2λ) — the 500/700/900 µs
//     ladder at n = 5, roughly flat in n.
//   - BenchmarkFig6bPayload: linear growth with payload size for all three
//     algorithms, bounded by the 64 KB datagram limit.
//   - BenchmarkReadQuiescent: reads log nowhere in the absence of
//     concurrency, so all algorithms read at ≈ 4δ.
//   - BenchmarkNaiveWriteAblation: the log-every-step adaptation pays ≈ 4λ.
//
// cmd/recmem-bench prints the same sweeps as tables with paper-style
// averaging.
package recmem_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"recmem"
)

// benchCluster builds a LAN-calibrated cluster for benchmarking.
func benchCluster(b *testing.B, n int, algo recmem.Algorithm, opts ...recmem.Option) *recmem.Cluster {
	b.Helper()
	opts = append([]recmem.Option{
		recmem.WithLAN(),
		recmem.WithRetransmitEvery(250 * time.Millisecond),
	}, opts...)
	c, err := recmem.New(n, algo, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func benchWrites(b *testing.B, c *recmem.Cluster, payload []byte) {
	b.Helper()
	ctx := context.Background()
	p := c.Process(0)
	// Warm the protocol paths before timing.
	for i := 0; i < 3; i++ {
		if err := p.Write(ctx, "x", payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Write(ctx, "x", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6aWrite is Figure 6 (top): 4-byte writes vs. cluster size for
// the three algorithms.
func BenchmarkFig6aWrite(b *testing.B) {
	algos := map[string]recmem.Algorithm{
		"crash-stop": recmem.CrashStop,
		"transient":  recmem.TransientAtomic,
		"persistent": recmem.PersistentAtomic,
	}
	for name, algo := range algos {
		for _, n := range []int{2, 3, 5, 7, 9} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				c := benchCluster(b, n, algo)
				benchWrites(b, c, []byte{1, 2, 3, 4})
			})
		}
	}
}

// BenchmarkFig6bPayload is Figure 6 (bottom): write latency vs. payload
// size at n = 5.
func BenchmarkFig6bPayload(b *testing.B) {
	algos := map[string]recmem.Algorithm{
		"crash-stop": recmem.CrashStop,
		"transient":  recmem.TransientAtomic,
		"persistent": recmem.PersistentAtomic,
	}
	for name, algo := range algos {
		for _, size := range []int{4, 4 << 10, 16 << 10, 32 << 10, 60 << 10} {
			b.Run(fmt.Sprintf("%s/size=%d", name, size), func(b *testing.B) {
				c := benchCluster(b, 5, algo)
				benchWrites(b, c, make([]byte, size))
			})
		}
	}
}

// BenchmarkReadQuiescent: reads in the absence of concurrent writes do not
// log anywhere ("the execution times would be the same for each algorithm"
// — the paper's reason Figure 6 only shows writes).
func BenchmarkReadQuiescent(b *testing.B) {
	algos := map[string]recmem.Algorithm{
		"crash-stop": recmem.CrashStop,
		"transient":  recmem.TransientAtomic,
		"persistent": recmem.PersistentAtomic,
	}
	for name, algo := range algos {
		b.Run(name, func(b *testing.B) {
			c := benchCluster(b, 5, algo)
			ctx := context.Background()
			if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
				b.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond) // full adoption
			p := c.Process(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Read(ctx, "x"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNaiveWriteAblation: the §I-C log-every-step adaptation pays four
// causal logs per write — the cost the log-optimal algorithms avoid.
func BenchmarkNaiveWriteAblation(b *testing.B) {
	c := benchCluster(b, 5, recmem.NaiveLogging)
	benchWrites(b, c, []byte{1, 2, 3, 4})
}

// BenchmarkHardenedTagsAblation: the hardened-tag variant of the transient
// algorithm (DESIGN.md §7) costs nothing on the fast path.
func BenchmarkHardenedTagsAblation(b *testing.B) {
	c := benchCluster(b, 5, recmem.TransientAtomic, recmem.WithHardenedTags())
	benchWrites(b, c, []byte{1, 2, 3, 4})
}

// BenchmarkWriteUnderLoss: fair-lossy channels with 5% loss; the rounds
// retransmit (every 2 ms here), so the tail pays but operations terminate.
func BenchmarkWriteUnderLoss(b *testing.B) {
	c := benchCluster(b, 5, recmem.PersistentAtomic,
		recmem.WithMessageLoss(0.05),
		recmem.WithSeed(42),
		recmem.WithRetransmitEvery(2*time.Millisecond),
	)
	benchWrites(b, c, []byte{1, 2, 3, 4})
}

// BenchmarkRegularRegister: the §VI single-writer regular register — writes
// are one round with one causal log (≈ 2δ + λ), reads one round with no
// logging (≈ 2δ): cheaper than every atomic emulation, which is the trade
// the paper's concluding remarks weigh.
func BenchmarkRegularRegister(b *testing.B) {
	b.Run("write", func(b *testing.B) {
		c := benchCluster(b, 5, recmem.RegularRegister)
		benchWrites(b, c, []byte{1, 2, 3, 4})
	})
	b.Run("read", func(b *testing.B) {
		c := benchCluster(b, 5, recmem.RegularRegister)
		ctx := context.Background()
		if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
			b.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		p := c.Process(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Read(ctx, "x"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// batchedAlgos are the algorithm kinds compared by the batching benchmarks.
var batchedAlgos = []struct {
	name string
	algo recmem.Algorithm
}{
	{"crash-stop", recmem.CrashStop},
	{"transient", recmem.TransientAtomic},
	{"persistent", recmem.PersistentAtomic},
	{"naive", recmem.NaiveLogging},
}

// benchBurst is the number of operations per timed iteration of the
// batching benchmarks: large enough for coalescing and pipelining to engage,
// small enough that -benchtime=1x stays fast.
const benchBurst = 64

// batchBenchRegs spreads a burst over a few registers so pipelining (not
// just same-register coalescing) contributes.
var batchBenchRegs = []string{"r0", "r1", "r2", "r3"}

// BenchmarkBatchedWrite drives bursts of writes through the asynchronous
// submission API: writes to one register coalesce into shared quorum rounds
// and the four registers' rounds pipeline. Compare with
// BenchmarkUnbatchedWrite — the per-operation time here divides the full
// two-round protocol cost by the effective batch size.
func BenchmarkBatchedWrite(b *testing.B) {
	for _, bc := range batchedAlgos {
		b.Run(bc.name, func(b *testing.B) {
			c := benchCluster(b, 5, bc.algo)
			ctx := context.Background()
			p := c.Process(0)
			payload := []byte{1, 2, 3, 4}
			if err := p.Write(ctx, batchBenchRegs[0], payload); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				futs := make([]*recmem.WriteFuture, benchBurst)
				for j := range futs {
					f, err := p.SubmitWrite(batchBenchRegs[j%len(batchBenchRegs)], payload)
					if err != nil {
						b.Fatal(err)
					}
					futs[j] = f
				}
				for _, f := range futs {
					if err := f.Wait(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportOpsPerSec(b, benchBurst)
		})
	}
}

// BenchmarkUnbatchedWrite is the baseline for BenchmarkBatchedWrite: the
// same burst of writes through the synchronous one-at-a-time API.
func BenchmarkUnbatchedWrite(b *testing.B) {
	for _, bc := range batchedAlgos {
		b.Run(bc.name, func(b *testing.B) {
			c := benchCluster(b, 5, bc.algo)
			ctx := context.Background()
			p := c.Process(0)
			payload := []byte{1, 2, 3, 4}
			if err := p.Write(ctx, batchBenchRegs[0], payload); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < benchBurst; j++ {
					if err := p.Write(ctx, batchBenchRegs[j%len(batchBenchRegs)], payload); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportOpsPerSec(b, benchBurst)
		})
	}
}

// BenchmarkBatchedRead: bursts of submitted reads share quorum rounds.
func BenchmarkBatchedRead(b *testing.B) {
	for _, bc := range batchedAlgos {
		b.Run(bc.name, func(b *testing.B) {
			c := benchCluster(b, 5, bc.algo)
			ctx := context.Background()
			if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
				b.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond) // full adoption
			p := c.Process(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				futs := make([]*recmem.ReadFuture, benchBurst)
				for j := range futs {
					f, err := p.SubmitRead("x")
					if err != nil {
						b.Fatal(err)
					}
					futs[j] = f
				}
				for _, f := range futs {
					if _, err := f.Wait(ctx); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportOpsPerSec(b, benchBurst)
		})
	}
}

// reportOpsPerSec normalizes a burst benchmark to operations per second.
func reportOpsPerSec(b *testing.B, perIter int) {
	b.Helper()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(perIter*b.N)/b.Elapsed().Seconds(), "ops/s")
	}
}

// BenchmarkRecovery measures the recovery procedure (crash + recover cycle)
// of the two crash-recovery algorithms: transient pays one local log;
// persistent pays a write-back round per register.
func BenchmarkRecovery(b *testing.B) {
	algos := map[string]recmem.Algorithm{
		"transient":  recmem.TransientAtomic,
		"persistent": recmem.PersistentAtomic,
	}
	for name, algo := range algos {
		b.Run(name, func(b *testing.B) {
			c := benchCluster(b, 5, algo)
			ctx := context.Background()
			if err := c.Process(0).Write(ctx, "x", []byte("v")); err != nil {
				b.Fatal(err)
			}
			p := c.Process(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = p.Crash(ctx)
				if err := p.Recover(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
