package recmem_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"recmem"
)

// TestRegisterHandleFlow drives the first-class handle API on the
// simulator: reads/writes through cached handles, cost capture, handle
// reuse across crash/recovery, and history verification.
func TestRegisterHandleFlow(t *testing.T) {
	c := newTestCluster(t, 5, recmem.PersistentAtomic)
	ctx := testCtx(t)

	w := c.Process(0).Register("x")
	r := c.Process(3).Register("x")

	var op recmem.OpID
	if err := w.Write(ctx, []byte("h1"), recmem.WithCost(&op)); err != nil {
		t.Fatal(err)
	}
	if op == 0 {
		t.Fatal("WithCost captured no operation id")
	}
	time.Sleep(20 * time.Millisecond)
	if cost := c.CostOf(op); cost.CausalLogs != 2 {
		t.Fatalf("handle write cost = %+v, want 2 causal logs", cost)
	}
	got, err := r.Read(ctx)
	if err != nil || string(got) != "h1" {
		t.Fatalf("handle read = %q, %v", got, err)
	}

	// Handles survive the process's crash: they are bound to the process,
	// not its incarnation.
	if err := c.Process(0).Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, []byte("nope")); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("handle write while down: %v", err)
	}
	if err := c.Process(0).Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(ctx, []byte("h2")); err != nil {
		t.Fatal(err)
	}
	got, err = r.Read(ctx)
	if err != nil || string(got) != "h2" {
		t.Fatalf("handle read after recovery = %q, %v", got, err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterHandleSubmit checks the asynchronous handle path coalesces
// and verifies like the Process-level submission API.
func TestRegisterHandleSubmit(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic)
	ctx := testCtx(t)

	reg := c.Process(0).Register("x")
	var futs []*recmem.WriteFuture
	for i := 0; i < 16; i++ {
		f, err := reg.SubmitWrite([]byte(fmt.Sprintf("v%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if f.Op() == 0 {
			t.Fatalf("write %d has no op id", i)
		}
	}
	rf, err := reg.SubmitRead()
	if err != nil {
		t.Fatal(err)
	}
	val, err := rf.Wait(ctx)
	if err != nil || string(val) != "v15" {
		t.Fatalf("submitted read = %q, %v", val, err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWithDeadline bounds an operation that cannot complete: with the
// majority down, a write under WithDeadline returns DeadlineExceeded
// instead of blocking until the cluster heals.
func TestWithDeadline(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic)
	ctx := testCtx(t)
	_ = c.Process(1).Crash(ctx)
	_ = c.Process(2).Crash(ctx)
	start := time.Now()
	err := c.Process(0).Register("x").Write(ctx, []byte("v"), recmem.WithDeadline(30*time.Millisecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline write: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not bound the wait")
	}
}

// TestSafeReadConsistency exercises WithConsistency end to end on the
// RegularRegister algorithm, including the §VI cost profile (a safe read
// sends 2 messages and logs nothing) and availability semantics.
func TestSafeReadConsistency(t *testing.T) {
	c := newTestCluster(t, 5, recmem.RegularRegister)
	ctx := testCtx(t)

	w := c.Process(0).Register("x")
	if err := w.Write(ctx, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	reader := c.Process(4).Register("x")

	got, err := reader.Read(ctx, recmem.WithConsistency(recmem.Safety))
	if err != nil || string(got) != "v1" {
		t.Fatalf("safe read = %q, %v", got, err)
	}
	got, err = reader.Read(ctx, recmem.WithConsistency(recmem.Regularity))
	if err != nil || string(got) != "v1" {
		t.Fatalf("regular read = %q, %v", got, err)
	}

	// The safe read is served by the writer alone and logs nothing.
	var op recmem.OpID
	if _, err := reader.Read(ctx, recmem.WithConsistency(recmem.Safety), recmem.WithCost(&op)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if cost := c.CostOf(op); cost.TotalLogs != 0 {
		t.Fatalf("safe read cost = %+v, want no logs", cost)
	}

	// Availability trade-off: while the writer is down, safe reads block
	// (here: run into their deadline) but regular reads keep working. The
	// abandoned read is invoked at its own process — a sequential process
	// that abandons a wait must not invoke again (its operation is still
	// pending in the history).
	_ = c.Process(0).Crash(ctx)
	abandoned := c.Process(3).Register("x")
	if _, err := abandoned.Read(ctx, recmem.WithConsistency(recmem.Safety), recmem.WithDeadline(30*time.Millisecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("safe read with writer down: %v", err)
	}
	got, err = reader.Read(ctx)
	if err != nil || string(got) != "v1" {
		t.Fatalf("regular read with writer down = %q, %v", got, err)
	}
	if err := c.Process(0).Recover(ctx); err != nil {
		t.Fatal(err)
	}

	// Safe submitted reads complete too.
	rf, err := reader.SubmitRead(recmem.WithConsistency(recmem.Safety))
	if err != nil {
		t.Fatal(err)
	}
	if val, err := rf.Wait(ctx); err != nil || string(val) != "v1" {
		t.Fatalf("submitted safe read = %q, %v", val, err)
	}

	// The whole run — regular and safe reads — verifies under regularity
	// (the safe read's writer-served result is regular here) and safety.
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyCriterion(recmem.Safety); err != nil {
		t.Fatal(err)
	}
}

// TestConsistencySelectionErrors checks the rejection paths.
func TestConsistencySelectionErrors(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic)
	ctx := testCtx(t)
	reg := c.Process(0).Register("x")
	if _, err := reg.Read(ctx, recmem.WithConsistency(recmem.Safety)); !errors.Is(err, recmem.ErrBadConsistency) {
		t.Fatalf("safe read under persistent: %v", err)
	}
	if _, err := reg.Read(ctx, recmem.WithConsistency(recmem.Linearizability)); err == nil {
		t.Fatal("accepted a non-selectable criterion")
	}
	if err := reg.Write(ctx, []byte("v"), recmem.WithConsistency(recmem.Safety)); err == nil {
		t.Fatal("accepted consistency selection on a write")
	}
	if _, err := reg.SubmitWrite([]byte("v"), recmem.WithConsistency(recmem.Safety)); err == nil {
		t.Fatal("accepted consistency selection on a submitted write")
	}
}

// TestClientInterface pins that both handle types satisfy recmem.Client at
// compile time and behave through the interface.
func TestClientInterface(t *testing.T) {
	c := newTestCluster(t, 3, recmem.PersistentAtomic)
	ctx := testCtx(t)
	var client recmem.Client = c.Process(0)
	if err := client.Register("x").Write(ctx, []byte("via-interface")); err != nil {
		t.Fatal(err)
	}
	if err := client.Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := client.Register("x").Read(ctx)
	if err != nil || string(got) != "via-interface" {
		t.Fatalf("interface read = %q, %v", got, err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}
