// Package transport defines how processes exchange protocol messages. The
// paper's model assumes fair-lossy channels: messages may be dropped,
// duplicated and reordered, but a message retransmitted forever between two
// correct processes is eventually delivered. Both the simulated network
// (internal/netsim) and the real TCP mesh (internal/nettcp) implement this
// contract; the emulation algorithms are written against it and cope with
// loss by retransmitting until a majority acknowledges.
package transport

import "recmem/internal/wire"

// Endpoint is one process's attachment to the network.
type Endpoint interface {
	// ID returns the process id of this endpoint.
	ID() int32
	// Send transmits the envelope to env.To. It never blocks and provides no
	// delivery guarantee (fair-lossy semantics); env.From must equal ID().
	Send(env wire.Envelope)
	// Recv returns the channel on which incoming envelopes are delivered.
	// The channel is closed when the endpoint's network is closed.
	Recv() <-chan wire.Envelope
}

// BatchSender is implemented by endpoints that can transmit several
// envelopes to one destination as a single batch frame (one datagram, one
// TCP frame — see wire.EncodeBatch). Batch frames keep fair-lossy
// semantics: the whole frame may be dropped, duplicated or reordered, but a
// frame retransmitted forever between two correct processes is eventually
// delivered.
type BatchSender interface {
	// SendBatch transmits all envelopes as one frame. Every envelope must
	// address the same destination; env.From must equal the endpoint's ID.
	SendBatch(envs []wire.Envelope)
}

// SendAll transmits envs (all to one destination) through ep, as a single
// batch frame when the endpoint supports it and individually otherwise.
// Single-envelope slices always take the plain path.
func SendAll(ep Endpoint, envs []wire.Envelope) {
	if len(envs) > 1 {
		if bs, ok := ep.(BatchSender); ok {
			bs.SendBatch(envs)
			return
		}
	}
	for _, e := range envs {
		ep.Send(e)
	}
}

// Stats aggregates network-level message accounting.
type Stats struct {
	// Sent counts Send calls that were accepted.
	Sent int64
	// Delivered counts envelopes handed to a receiver channel.
	Delivered int64
	// DroppedLoss counts envelopes dropped by random loss injection.
	DroppedLoss int64
	// DroppedDown counts envelopes dropped because the receiver (or sender)
	// was crashed.
	DroppedDown int64
	// DroppedHeld counts envelopes dropped by scripted link holds.
	DroppedHeld int64
	// DroppedQueue counts envelopes dropped because a receiver queue was
	// full (fair-lossy channels permit this).
	DroppedQueue int64
	// Duplicated counts extra copies injected by duplication.
	Duplicated int64
	// BatchFrames counts multi-envelope batch frames accepted for
	// transmission; Sent still counts the individual envelopes they carry.
	BatchFrames int64
}
