package stable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestWALDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := NewWALDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("written/reg with spaces/☃", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := d.StoreBatch([]Record{
		{Name: "written/x", Data: []byte("v1")},
		{Name: "recovered", Data: []byte{0, 0, 0, 7}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Store("written/x", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := NewWALDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if data, ok, err := d2.Retrieve("written/x"); err != nil || !ok || !bytes.Equal(data, []byte("v2")) {
		t.Fatalf("after reopen: %q ok=%v err=%v", data, ok, err)
	}
	if data, ok, err := d2.Retrieve("written/reg with spaces/☃"); err != nil || !ok || !bytes.Equal(data, []byte("v")) {
		t.Fatalf("after reopen: %q ok=%v err=%v", data, ok, err)
	}
	recs, err := d2.Records("written/")
	if err != nil || len(recs) != 2 {
		t.Fatalf("Records = %v err=%v", recs, err)
	}
}

// TestWALGroupCommitCoalesces: concurrent stores pending while a sync is in
// flight join the next group, so the sync count stays well below the record
// count — the whole point of the engine.
func TestWALGroupCommitCoalesces(t *testing.T) {
	d, err := NewWALDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const writers, stores = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < stores; i++ {
				if err := d.Store(fmt.Sprintf("written/r%d", w), []byte{byte(i)}); err != nil {
					t.Errorf("store: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	appended, syncs := d.AppendedRecords(), d.Syncs()
	if appended != writers*stores {
		t.Fatalf("appended %d records, want %d", appended, writers*stores)
	}
	if syncs >= appended/2 {
		t.Fatalf("group commit did not amortize: %d syncs for %d records", syncs, appended)
	}
	t.Logf("%d records in %d syncs (%.1f records/sync)", appended, syncs, float64(appended)/float64(syncs))
}

func TestWALSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenWALDisk(dir, WALOptions{SnapshotBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for i := 0; i < 100; i++ {
		payload[0] = byte(i)
		if err := d.Store(fmt.Sprintf("written/r%d", i%4), payload); err != nil {
			t.Fatal(err)
		}
	}
	if d.Snapshots() == 0 {
		t.Fatal("no snapshot was taken despite the log passing the threshold")
	}
	if fi, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || fi.Size() > 4*512 {
		t.Fatalf("log not truncated: size=%v err=%v", fi.Size(), err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery = snapshot + tail replay: the latest values survive.
	d2, err := NewWALDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for r := 0; r < 4; r++ {
		want := byte(96 + r) // last store to register r
		data, ok, err := d2.Retrieve(fmt.Sprintf("written/r%d", r))
		if err != nil || !ok || data[0] != want {
			t.Fatalf("r%d after recovery = %v ok=%v err=%v, want first byte %d", r, data[:1], ok, err, want)
		}
	}
}

// TestWALTornTailTruncated: garbage after the last acknowledged frame — the
// classic torn write of a crash mid-group-commit — is cut off at open;
// everything acknowledged before it survives, and the log accepts appends
// again.
func TestWALTornTailTruncated(t *testing.T) {
	for name, torn := range map[string][]byte{
		"short-header":  {0x00, 0x00},
		"short-payload": {0x00, 0x00, 0x40, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02},
		"bad-crc": func() []byte {
			var buf bytes.Buffer
			appendFrame(&buf, "written/evil", []byte("zz"))
			b := buf.Bytes()
			b[len(b)-1] ^= 0xff // flip a payload bit: CRC mismatch
			return b
		}(),
		"absurd-length": {0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := NewWALDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Store("written/x", []byte("acked")); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			logPath := filepath.Join(dir, walFileName)
			f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(torn); err != nil {
				t.Fatal(err)
			}
			f.Close()

			d2, err := NewWALDisk(dir)
			if err != nil {
				t.Fatalf("open over torn tail: %v", err)
			}
			defer d2.Close()
			if data, ok, err := d2.Retrieve("written/x"); err != nil || !ok || !bytes.Equal(data, []byte("acked")) {
				t.Fatalf("acknowledged record lost: %q ok=%v err=%v", data, ok, err)
			}
			if _, ok, _ := d2.Retrieve("written/evil"); ok {
				t.Fatal("torn frame was replayed")
			}
			if err := d2.Store("written/y", []byte("post")); err != nil {
				t.Fatalf("store after torn-tail recovery: %v", err)
			}
			if err := d2.Close(); err != nil {
				t.Fatal(err)
			}
			d3, err := NewWALDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer d3.Close()
			if data, ok, _ := d3.Retrieve("written/y"); !ok || !bytes.Equal(data, []byte("post")) {
				t.Fatalf("append after truncated tail lost: %q ok=%v", data, ok)
			}
		})
	}
}

// TestWALSyncFailureNotAcknowledged: a group whose fdatasync fails is not
// acknowledged, is invisible to Retrieve, and does not survive reopen — the
// store never lies about durability. The log rolls back to its last good
// offset so later groups commit cleanly.
func TestWALSyncFailureNotAcknowledged(t *testing.T) {
	dir := t.TempDir()
	d, err := NewWALDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("written/a", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated sync failure")
	d.syncHook = func() error { return boom }
	if err := d.Store("written/lost", []byte("gone")); !errors.Is(err, boom) {
		t.Fatalf("Store with failing sync: %v", err)
	}
	if _, ok, err := d.Retrieve("written/lost"); ok || err != nil {
		t.Fatalf("unacknowledged record visible: ok=%v err=%v", ok, err)
	}
	d.syncHook = nil
	if err := d.Store("written/b", []byte("ok2")); err != nil {
		t.Fatalf("store after rollback: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := NewWALDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for rec, want := range map[string]string{"written/a": "ok", "written/b": "ok2"} {
		if data, ok, err := d2.Retrieve(rec); err != nil || !ok || string(data) != want {
			t.Fatalf("%s after reopen = %q ok=%v err=%v", rec, data, ok, err)
		}
	}
	if _, ok, _ := d2.Retrieve("written/lost"); ok {
		t.Fatal("failed group resurfaced after reopen")
	}
}

// TestWALFlakyCrashReplay is the torture coverage of the group-commit path:
// a Flaky-wrapped WALDisk sees random Store/StoreBatch failures (the model
// of a group commit whose fsync fails: nothing in the group may be
// acknowledged), and after a simulated crash + reopen the store must hold,
// for every record, exactly the value of the last ACKNOWLEDGED store —
// an acknowledged log is never lost and a failed one is never trusted.
func TestWALFlakyCrashReplay(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenWALDisk(dir, WALOptions{SnapshotBytes: 2048})
			if err != nil {
				t.Fatal(err)
			}
			fl := NewFlaky(d, 0.3, seed)
			rng := rand.New(rand.NewSource(seed * 77))
			acked := make(map[string][]byte)
			for i := 0; i < 300; i++ {
				if rng.Intn(2) == 0 {
					name := fmt.Sprintf("written/r%d", rng.Intn(8))
					val := []byte(fmt.Sprintf("v%d", i))
					if err := fl.Store(name, val); err == nil {
						acked[name] = val
					} else if !errors.Is(err, ErrInjected) {
						t.Fatalf("store: %v", err)
					}
				} else {
					recs := make([]Record, 1+rng.Intn(3))
					for j := range recs {
						recs[j] = Record{
							Name: fmt.Sprintf("written/r%d", rng.Intn(8)),
							Data: []byte(fmt.Sprintf("b%d.%d", i, j)),
						}
					}
					if err := fl.StoreBatch(recs); err == nil {
						for _, r := range recs {
							acked[r.Name] = r.Data
						}
					} else if !errors.Is(err, ErrInjected) {
						t.Fatalf("batch: %v", err)
					}
				}
			}
			if fl.Failures() == 0 {
				t.Fatal("no faults injected; test is vacuous")
			}
			if err := fl.Close(); err != nil {
				t.Fatal(err)
			}

			d2, err := NewWALDisk(dir)
			if err != nil {
				t.Fatalf("reopen after flaky run: %v", err)
			}
			defer d2.Close()
			for name, want := range acked {
				data, ok, err := d2.Retrieve(name)
				if err != nil || !ok {
					t.Fatalf("acknowledged %s lost: ok=%v err=%v", name, ok, err)
				}
				if !bytes.Equal(data, want) {
					t.Fatalf("%s = %q, want last acknowledged %q", name, data, want)
				}
			}
			names, err := d2.Records("")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != len(acked) {
				t.Fatalf("store holds %d records, want the %d acknowledged ones: %v", len(names), len(acked), names)
			}
		})
	}
}

// TestWALRejectsCorruptSnapshot: snapshots are atomically replaced, so any
// malformed content is real corruption and must fail the open instead of
// silently dropping state.
func TestWALRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapFileName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWALDisk(dir); err == nil {
		t.Fatal("opened over a corrupt snapshot")
	}
}
