// Package stable models the paper's stable storage: every process owns a
// store that survives its crashes, accessed through the primitives store and
// retrieve (§II). Two implementations are provided:
//
//   - MemDisk: an in-memory crash-survivable store with a configurable
//     synchronous write latency — the paper's λ (logging a few bytes on their
//     IDE disks costs ≈ 0.2 ms, about twice a message transit) plus a
//     bandwidth term for the payload-size experiment (Fig. 6 bottom).
//   - FileDisk: real files written synchronously (the paper: "files written
//     to disk synchronously so that the operating system writes the data to
//     disk immediately instead of buffering" — buffering would violate even
//     transient atomicity).
//
// Records are named; register emulations use one record per role per
// register ("written/x", "writing/x", "recovered").
//
// A third implementation, WALDisk (wal.go), is the second-generation engine:
// a single append-only log with CRC-framed records, a group-commit daemon
// that coalesces concurrent stores into one fdatasync, and periodic
// snapshot + truncation. All implementations additionally expose the batched
// durability path StoreBatch, which WALDisk turns into one log append + one
// sync per batch.
//
// The fourth, ShardedDisk (sharded.go), is the scale engine: records hash
// onto per-shard segment chains with background compaction, an indexed
// snapshot so recovery reads offsets instead of values, tombstoned deletes
// (Deleter), and LRU value eviction so the resident set is bounded
// independently of the namespace.
package stable

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"recmem/internal/spin"
)

// Record is one named entry of the batched durability path.
type Record struct {
	// Name is the record name, as in Store.
	Name string
	// Data is the content stored under Name.
	Data []byte
}

// Storage is the paper's stable storage abstraction.
type Storage interface {
	// Store durably saves data under the record name, replacing any previous
	// content. It returns only after the data is stable (synchronous write).
	Store(record string, data []byte) error
	// StoreBatch durably saves all records as one group: it returns nil only
	// after every record is stable. Implementations with a native group
	// commit (WALDisk, MemDisk's simulated disk) pay the synchronous-write
	// cost once for the whole batch; others fall back to sequential Store
	// calls via BatchOf. When a batch contains several records with the same
	// name, the last one wins. On error none of the batch is acknowledged —
	// individual records may or may not have become durable.
	StoreBatch(recs []Record) error
	// Retrieve returns the last stored content of the record. ok is false if
	// the record was never stored.
	Retrieve(record string) (data []byte, ok bool, err error)
	// Records returns the names of all stored records with the given prefix,
	// sorted. Recovery uses it to enumerate the registers it must restore.
	Records(prefix string) ([]string, error)
	// Close releases resources. The stored content remains retrievable by a
	// new Storage opened over the same substrate (MemDisk: same object;
	// FileDisk: same directory; WALDisk: same directory).
	Close() error
}

// BatchOf implements StoreBatch as sequential Store calls — the adapter for
// backends without a native group commit (FileDisk's file-per-record layout
// has nothing to amortize; wrappers delegate per record so their per-store
// semantics apply uniformly).
func BatchOf(s Storage, recs []Record) error {
	for _, r := range recs {
		if err := s.Store(r.Name, r.Data); err != nil {
			return err
		}
	}
	return nil
}

// Scanner is the optional streaming-enumeration extension of Storage: Scan
// invokes fn once for every stored record whose name has the given prefix,
// without ever materializing the full name list — at a million registers the
// difference between O(pending) and O(namespace) restarts (docs/adr/0009).
// Enumeration order is unspecified. Implementations stream while holding
// internal locks, so fn must not call back into the same store (accumulate
// names and Retrieve after the scan instead). If fn returns an error the
// scan stops and Scan returns that error.
type Scanner interface {
	Scan(prefix string, fn func(name string) error) error
}

// ScanRecords streams the names of every record with the given prefix to fn:
// natively when the engine implements Scanner, else via a one-shot Records
// enumeration — the adapter that lets callers (core recovery) depend only on
// the streaming shape while every engine keeps working. The Scanner
// constraint on fn applies either way.
func ScanRecords(s Storage, prefix string, fn func(name string) error) error {
	if sc, ok := s.(Scanner); ok {
		return sc.Scan(prefix, fn)
	}
	names, err := s.Records(prefix)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := fn(name); err != nil {
			return err
		}
	}
	return nil
}

// ErrClosed is returned by operations on a closed storage.
var ErrClosed = errors.New("stable: storage closed")

// ErrNoDelete is returned by Delete wrappers over a backend that has no
// register lifecycle (no tombstones).
var ErrNoDelete = errors.New("stable: backend does not support delete")

// Deleter is the optional register-lifecycle extension of Storage: Delete
// durably removes a record, so Retrieve reports it absent and Records stops
// enumerating it. On log-structured engines deletion appends a tombstone
// whose dead bytes compaction later reclaims.
type Deleter interface {
	Delete(record string) error
}

// CompactionStats is the optional observability extension of log-structured
// engines: how many compaction passes rewrote the store, and how many
// tombstones were durably appended. WALDisk counts its wholesale
// snapshot+truncate passes as compactions (it has no tombstones);
// ShardedDisk counts per-shard merges.
type CompactionStats interface {
	Compactions() int64
	Tombstones() int64
}

// Backends lists the selectable storage engines, in presentation order.
func Backends() []string { return []string{"mem", "file", "wal", "sharded"} }

// ValidBackend reports whether name selects a storage engine — the shared
// flag validation of the CLIs.
func ValidBackend(name string) bool {
	for _, b := range Backends() {
		if name == b {
			return true
		}
	}
	return false
}

// OpenBackend opens the named storage engine: "mem" (or "") is a MemDisk
// with the given latency profile; "file" is a FileDisk, "wal" a WALDisk and
// "sharded" a ShardedDisk, all rooted at dir. This is the single switch the
// cluster, the benchmarks and the torture driver share, so every layer
// accepts the same -disk names.
func OpenBackend(backend, dir string, prof Profile) (Storage, error) {
	switch backend {
	case "", "mem":
		return NewMemDisk(prof), nil
	case "file":
		return NewFileDisk(dir)
	case "wal":
		return NewWALDisk(dir)
	case "sharded":
		return NewShardedDisk(dir)
	default:
		return nil, fmt.Errorf("stable: unknown backend %q (want mem, file, wal, or sharded)", backend)
	}
}

// Profile describes the latency of a simulated disk.
type Profile struct {
	// StoreDelay is charged per Store call (the paper's λ ≈ 200 µs for a
	// small synchronous write).
	StoreDelay time.Duration
	// BytesPerSec is the streaming bandwidth for the payload; 0 = infinite.
	BytesPerSec float64
}

// DiskProfile returns the profile calibrated to the paper's testbed: a
// synchronous small write costs about twice a 0.1 ms message transit, and
// large writes stream at IDE-era disk bandwidth.
func DiskProfile() Profile {
	return Profile{StoreDelay: 200 * time.Microsecond, BytesPerSec: 30e6}
}

func (p Profile) delay(size int) time.Duration {
	d := p.StoreDelay
	if p.BytesPerSec > 0 {
		d += time.Duration(float64(size) / p.BytesPerSec * float64(time.Second))
	}
	return d
}

// MemDisk is an in-memory Storage with simulated synchronous-write latency.
// It survives process crashes by construction: the harness keeps the MemDisk
// while wiping the process's volatile state, exactly the paper's model where
// stable storage outlives the process.
type MemDisk struct {
	prof Profile

	mu      sync.Mutex
	records map[string][]byte
	closed  bool
}

var _ Storage = (*MemDisk)(nil)

// NewMemDisk returns an empty in-memory store with the given latency
// profile.
func NewMemDisk(prof Profile) *MemDisk {
	return &MemDisk{prof: prof, records: make(map[string][]byte)}
}

// Store implements Storage; it waits for the profile's synchronous-write
// latency before acknowledging, off the lock so concurrent readers proceed.
// The wait uses spin.Sleep: λ ≈ 200 µs is far below time.Sleep granularity
// on many kernels, and the Figure 6 reproduction depends on its fidelity.
func (d *MemDisk) Store(record string, data []byte) error {
	if delay := d.prof.delay(len(data)); delay > 0 {
		spin.Sleep(delay)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.records[record] = cp
	return nil
}

// StoreBatch implements Storage with a simulated group commit: the batch
// pays one StoreDelay (one "fsync") plus the bandwidth term for the combined
// payload, instead of one StoreDelay per record — the simulated-disk
// counterpart of WALDisk's group-commit daemon, which is what lets the
// fsync-amortization experiments run on the calibrated in-memory testbed.
func (d *MemDisk) StoreBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	total := 0
	for _, r := range recs {
		total += len(r.Data)
	}
	if delay := d.prof.delay(total); delay > 0 {
		spin.Sleep(delay)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for _, r := range recs {
		cp := make([]byte, len(r.Data))
		copy(cp, r.Data)
		d.records[r.Name] = cp
	}
	return nil
}

// Retrieve implements Storage.
func (d *MemDisk) Retrieve(record string) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	data, ok := d.records[record]
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true, nil
}

// Records implements Storage.
func (d *MemDisk) Records(prefix string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	var out []string
	for name := range d.records {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Scan implements Scanner: the record map streams under the store lock in
// map order, so fn must not call back into the store.
func (d *MemDisk) Scan(prefix string, fn func(string) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for name := range d.records {
		if strings.HasPrefix(name, prefix) {
			if err := fn(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements Storage. A closed MemDisk can be reopened with Reopen,
// preserving content (modelling a machine reboot).
func (d *MemDisk) Close() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return nil
}

// Reopen makes a closed MemDisk usable again with its content intact.
func (d *MemDisk) Reopen() {
	d.mu.Lock()
	d.closed = false
	d.mu.Unlock()
}

// FileDisk is a Storage backed by one file per record in a directory,
// written synchronously (write to temp file, fsync, rename, fsync dir) so
// that acknowledged stores survive process and OS crashes.
type FileDisk struct {
	dir string

	mu     sync.Mutex
	closed bool
}

var _ Storage = (*FileDisk)(nil)

// NewFileDisk opens (creating if necessary) a file-backed store rooted at
// dir.
func NewFileDisk(dir string) (*FileDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create dir: %w", err)
	}
	return &FileDisk{dir: dir}, nil
}

// encodeName maps an arbitrary record name to a safe file name.
func encodeName(record string) string {
	return hex.EncodeToString([]byte(record)) + ".rec"
}

func decodeName(file string) (string, bool) {
	base, ok := strings.CutSuffix(file, ".rec")
	if !ok {
		return "", false
	}
	raw, err := hex.DecodeString(base)
	if err != nil {
		return "", false
	}
	return string(raw), true
}

// Store implements Storage with an atomic, durable file replacement.
func (d *FileDisk) Store(record string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	final := filepath.Join(d.dir, encodeName(record))
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("stable: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("stable: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("stable: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("stable: close: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("stable: rename: %w", err)
	}
	if dirF, err := os.Open(d.dir); err == nil {
		_ = dirF.Sync()
		dirF.Close()
	}
	return nil
}

// StoreBatch implements Storage; the file-per-record layout has no shared
// sync to amortize, so each record pays its own synchronous replacement.
func (d *FileDisk) StoreBatch(recs []Record) error {
	return BatchOf(d, recs)
}

// Retrieve implements Storage.
func (d *FileDisk) Retrieve(record string) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	data, err := os.ReadFile(filepath.Join(d.dir, encodeName(record)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("stable: read: %w", err)
	}
	return data, true, nil
}

// Records implements Storage.
func (d *FileDisk) Records(prefix string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("stable: list: %w", err)
	}
	var out []string
	for _, e := range entries {
		name, ok := decodeName(e.Name())
		if ok && strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Scan implements Scanner: directory entries are read and decoded in bounded
// chunks, so even a namespace-sized directory never materializes as one name
// list. fn runs under the store lock and must not call back into the store.
func (d *FileDisk) Scan(prefix string, fn func(string) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	dirF, err := os.Open(d.dir)
	if err != nil {
		return fmt.Errorf("stable: scan: %w", err)
	}
	defer dirF.Close()
	for {
		entries, err := dirF.ReadDir(256)
		for _, e := range entries {
			name, ok := decodeName(e.Name())
			if ok && strings.HasPrefix(name, prefix) {
				if err := fn(name); err != nil {
					return err
				}
			}
		}
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("stable: scan: %w", err)
		}
	}
}

// Close implements Storage.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return nil
}

// Counting wraps a Storage and counts operations; tests use it to assert
// log-complexity invariants independently of the protocol-level causal
// meter.
type Counting struct {
	inner Storage

	mu          sync.Mutex
	stores      int
	batches     int
	commits     int
	retrieves   int
	deletes     int
	scans       int
	lists       int
	bytes       int64
	perRecord   map[string]int
	perRetrieve map[string]int
}

var _ Storage = (*Counting)(nil)
var _ Scanner = (*Counting)(nil)

// NewCounting wraps inner with counters.
func NewCounting(inner Storage) *Counting {
	return &Counting{
		inner:       inner,
		perRecord:   make(map[string]int),
		perRetrieve: make(map[string]int),
	}
}

// Store implements Storage.
func (c *Counting) Store(record string, data []byte) error {
	c.mu.Lock()
	c.stores++
	c.commits++
	c.bytes += int64(len(data))
	c.perRecord[record]++
	c.mu.Unlock()
	return c.inner.Store(record, data)
}

// StoreBatch implements Storage: every record counts as one store (so store
// counts stay comparable across batched and unbatched paths) and the batch
// itself is counted once.
func (c *Counting) StoreBatch(recs []Record) error {
	c.mu.Lock()
	c.batches++
	c.commits++
	for _, r := range recs {
		c.stores++
		c.bytes += int64(len(r.Data))
		c.perRecord[r.Name]++
	}
	c.mu.Unlock()
	return c.inner.StoreBatch(recs)
}

// Retrieve implements Storage.
func (c *Counting) Retrieve(record string) ([]byte, bool, error) {
	c.mu.Lock()
	c.retrieves++
	c.perRetrieve[record]++
	c.mu.Unlock()
	return c.inner.Retrieve(record)
}

// Records implements Storage, counting the full-materialization enumeration
// (see Lists) — the call lazy recovery must never make.
func (c *Counting) Records(prefix string) ([]string, error) {
	c.mu.Lock()
	c.lists++
	c.mu.Unlock()
	return c.inner.Records(prefix)
}

// Scan implements Scanner: the call is counted, then streamed from the inner
// store via ScanRecords (so engines without a native Scan still enumerate
// through the adapter).
func (c *Counting) Scan(prefix string, fn func(string) error) error {
	c.mu.Lock()
	c.scans++
	c.mu.Unlock()
	return ScanRecords(c.inner, prefix, fn)
}

// Delete implements Deleter by delegating to the inner storage, counting the
// call; ErrNoDelete if the inner storage has no lifecycle support.
func (c *Counting) Delete(record string) error {
	d, ok := c.inner.(Deleter)
	if !ok {
		return ErrNoDelete
	}
	c.mu.Lock()
	c.deletes++
	c.mu.Unlock()
	return d.Delete(record)
}

// Close implements Storage.
func (c *Counting) Close() error { return c.inner.Close() }

// Stores returns the number of Store calls observed.
func (c *Counting) Stores() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stores
}

// Batches returns the number of StoreBatch calls observed.
func (c *Counting) Batches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches
}

// Commits returns the number of durability points observed: one per Store
// call plus one per StoreBatch call. On an engine without cross-call group
// commit this is its flush bill (FileDisk pays two fsyncs per point);
// WALDisk may merge many commits into one fdatasync — compare with its
// Syncs counter to read off the amortization.
func (c *Counting) Commits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits
}

// Retrieves returns the number of Retrieve calls observed.
func (c *Counting) Retrieves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retrieves
}

// Bytes returns the total bytes passed to Store.
func (c *Counting) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// RecordStores returns the number of Store calls for one record name.
func (c *Counting) RecordStores(record string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perRecord[record]
}

// Scans returns the number of streaming Scan calls observed.
func (c *Counting) Scans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.scans
}

// Lists returns the number of Records calls observed — the
// full-materialization enumerations that the streaming path exists to avoid.
func (c *Counting) Lists() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lists
}

// PrefixRetrieves returns the number of Retrieve calls whose record name has
// the given prefix. The lazy-recovery guarantee is checked with it: a restart
// may Retrieve its pending writing/ records and its counters, but zero
// written/ register records (docs/adr/0009).
func (c *Counting) PrefixRetrieves(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for name, count := range c.perRetrieve {
		if strings.HasPrefix(name, prefix) {
			n += count
		}
	}
	return n
}

// Deletes returns the number of Delete calls observed.
func (c *Counting) Deletes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deletes
}

// Compactions surfaces the inner engine's CompactionStats (0 when the
// backend has none), so tests can assert a compaction actually ran through
// the wrapper. Implements CompactionStats.
func (c *Counting) Compactions() int64 {
	if s, ok := c.inner.(CompactionStats); ok {
		return s.Compactions()
	}
	return 0
}

// Tombstones surfaces the inner engine's tombstone count (0 when the
// backend has none). Implements CompactionStats.
func (c *Counting) Tombstones() int64 {
	if s, ok := c.inner.(CompactionStats); ok {
		return s.Tombstones()
	}
	return 0
}
