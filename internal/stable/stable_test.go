package stable

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// storageFactories returns a constructor per implementation so every test
// runs against both.
func storageFactories(t *testing.T) map[string]func() Storage {
	t.Helper()
	return map[string]func() Storage{
		"memdisk": func() Storage { return NewMemDisk(Profile{}) },
		"filedisk": func() Storage {
			d, err := NewFileDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

func TestStoreRetrieve(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if _, ok, err := s.Retrieve("missing"); err != nil || ok {
				t.Fatalf("missing record: ok=%v err=%v", ok, err)
			}
			if err := s.Store("written/x", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			data, ok, err := s.Retrieve("written/x")
			if err != nil || !ok || !bytes.Equal(data, []byte("v1")) {
				t.Fatalf("got %q ok=%v err=%v", data, ok, err)
			}
			// Overwrite.
			if err := s.Store("written/x", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			data, _, _ = s.Retrieve("written/x")
			if !bytes.Equal(data, []byte("v2")) {
				t.Fatalf("after overwrite got %q", data)
			}
			// Empty data is a valid record.
			if err := s.Store("empty", nil); err != nil {
				t.Fatal(err)
			}
			data, ok, err = s.Retrieve("empty")
			if err != nil || !ok || len(data) != 0 {
				t.Fatalf("empty record: %q ok=%v err=%v", data, ok, err)
			}
		})
	}
}

func TestRecordsPrefix(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			for _, rec := range []string{"written/b", "written/a", "writing/a", "recovered"} {
				if err := s.Store(rec, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Records("written/")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[0] != "written/a" || got[1] != "written/b" {
				t.Fatalf("Records = %v", got)
			}
			all, err := s.Records("")
			if err != nil || len(all) != 4 {
				t.Fatalf("Records(\"\") = %v err=%v", all, err)
			}
		})
	}
}

func TestRetrieveReturnsCopy(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			orig := []byte("abc")
			if err := s.Store("r", orig); err != nil {
				t.Fatal(err)
			}
			orig[0] = 'X' // caller mutates its buffer after Store
			got, _, _ := s.Retrieve("r")
			if !bytes.Equal(got, []byte("abc")) {
				t.Fatalf("Store aliased caller buffer: %q", got)
			}
			got[0] = 'Y' // caller mutates the retrieved buffer
			got2, _, _ := s.Retrieve("r")
			if !bytes.Equal(got2, []byte("abc")) {
				t.Fatalf("Retrieve aliased stored buffer: %q", got2)
			}
		})
	}
}

func TestClosedErrors(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Store("r", nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("Store after close: %v", err)
			}
			if _, _, err := s.Retrieve("r"); !errors.Is(err, ErrClosed) {
				t.Fatalf("Retrieve after close: %v", err)
			}
			if _, err := s.Records(""); !errors.Is(err, ErrClosed) {
				t.Fatalf("Records after close: %v", err)
			}
		})
	}
}

func TestMemDiskLatency(t *testing.T) {
	d := NewMemDisk(Profile{StoreDelay: 20 * time.Millisecond})
	defer d.Close()
	start := time.Now()
	if err := d.Store("r", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("Store returned after %v, want >= ~20ms", el)
	}
}

func TestMemDiskBandwidth(t *testing.T) {
	d := NewMemDisk(Profile{BytesPerSec: 1e6}) // 1 MB/s
	defer d.Close()
	start := time.Now()
	if err := d.Store("r", make([]byte, 20<<10)); err != nil { // 20 KB => ~20ms
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("Store returned after %v, want >= ~20ms", el)
	}
}

func TestMemDiskSurvivesReopen(t *testing.T) {
	d := NewMemDisk(Profile{})
	if err := d.Store("written/x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Reopen()
	data, ok, err := d.Retrieve("written/x")
	if err != nil || !ok || !bytes.Equal(data, []byte("v")) {
		t.Fatalf("after reopen: %q ok=%v err=%v", data, ok, err)
	}
}

func TestFileDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("written/reg with spaces/☃", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// A new FileDisk over the same directory sees the record: this is the
	// crash-recovery property (stable storage outlives the process).
	d2, err := NewFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	data, ok, err := d2.Retrieve("written/reg with spaces/☃")
	if err != nil || !ok || !bytes.Equal(data, []byte("v")) {
		t.Fatalf("after reopen: %q ok=%v err=%v", data, ok, err)
	}
	recs, err := d2.Records("written/")
	if err != nil || len(recs) != 1 {
		t.Fatalf("Records = %v err=%v", recs, err)
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewMemDisk(Profile{}))
	defer c.Close()
	if err := c.Store("a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("a", []byte("123")); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Retrieve("a"); err != nil {
		t.Fatal(err)
	}
	if c.Stores() != 3 || c.Retrieves() != 1 || c.Bytes() != 8 {
		t.Fatalf("counts: stores=%d retrieves=%d bytes=%d", c.Stores(), c.Retrieves(), c.Bytes())
	}
	if c.RecordStores("a") != 2 || c.RecordStores("b") != 1 || c.RecordStores("zzz") != 0 {
		t.Fatal("per-record counts wrong")
	}
	recs, err := c.Records("")
	if err != nil || len(recs) != 2 {
		t.Fatalf("Records = %v err=%v", recs, err)
	}
}

func TestConcurrentStores(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						rec := fmt.Sprintf("r%d", w)
						if err := s.Store(rec, []byte{byte(i)}); err != nil {
							t.Errorf("store: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < 4; w++ {
				data, ok, err := s.Retrieve(fmt.Sprintf("r%d", w))
				if err != nil || !ok || !bytes.Equal(data, []byte{24}) {
					t.Fatalf("r%d = %v ok=%v err=%v", w, data, ok, err)
				}
			}
		})
	}
}

func TestEncodeDecodeName(t *testing.T) {
	for _, name := range []string{"", "a", "written/x", "weird/☃ name"} {
		enc := encodeName(name)
		dec, ok := decodeName(enc)
		if !ok || dec != name {
			t.Fatalf("round trip %q -> %q -> %q ok=%v", name, enc, dec, ok)
		}
	}
	if _, ok := decodeName("notarecord.txt"); ok {
		t.Fatal("decoded a non-record file name")
	}
	if _, ok := decodeName("zz!!.rec"); ok {
		t.Fatal("decoded invalid hex")
	}
}

func TestDiskProfile(t *testing.T) {
	p := DiskProfile()
	if p.StoreDelay != 200*time.Microsecond {
		t.Fatalf("DiskProfile = %+v", p)
	}
	// λ for a small record should be about twice the paper's δ (0.1 ms).
	if d := p.delay(4); d < 200*time.Microsecond || d > 210*time.Microsecond {
		t.Fatalf("small-record delay = %v", d)
	}
}
