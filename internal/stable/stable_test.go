package stable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// storageFactories is the conformance harness: a constructor per
// implementation so every Storage-contract test runs against all of them.
func storageFactories(t *testing.T) map[string]func() Storage {
	t.Helper()
	return map[string]func() Storage{
		"memdisk": func() Storage { return NewMemDisk(Profile{}) },
		"filedisk": func() Storage {
			d, err := NewFileDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"waldisk": func() Storage {
			d, err := NewWALDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"sharded": func() Storage {
			d, err := NewShardedDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

func TestStoreRetrieve(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if _, ok, err := s.Retrieve("missing"); err != nil || ok {
				t.Fatalf("missing record: ok=%v err=%v", ok, err)
			}
			if err := s.Store("written/x", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			data, ok, err := s.Retrieve("written/x")
			if err != nil || !ok || !bytes.Equal(data, []byte("v1")) {
				t.Fatalf("got %q ok=%v err=%v", data, ok, err)
			}
			// Overwrite.
			if err := s.Store("written/x", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			data, _, _ = s.Retrieve("written/x")
			if !bytes.Equal(data, []byte("v2")) {
				t.Fatalf("after overwrite got %q", data)
			}
			// Empty data is a valid record.
			if err := s.Store("empty", nil); err != nil {
				t.Fatal(err)
			}
			data, ok, err = s.Retrieve("empty")
			if err != nil || !ok || len(data) != 0 {
				t.Fatalf("empty record: %q ok=%v err=%v", data, ok, err)
			}
		})
	}
}

func TestRecordsPrefix(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			for _, rec := range []string{"written/b", "written/a", "writing/a", "recovered"} {
				if err := s.Store(rec, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Records("written/")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[0] != "written/a" || got[1] != "written/b" {
				t.Fatalf("Records = %v", got)
			}
			all, err := s.Records("")
			if err != nil || len(all) != 4 {
				t.Fatalf("Records(\"\") = %v err=%v", all, err)
			}
		})
	}
}

// TestScanMatchesRecords is the Scanner conformance case: for every engine
// and a spread of prefixes, the streamed enumeration must agree exactly with
// the materialized one (as a set — Scan's order is unspecified), every
// engine must implement the native Scanner so recovery never falls back to
// the O(namespace) adapter, a callback error must stop the scan, and a
// closed store must refuse to scan.
func TestScanMatchesRecords(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if _, ok := s.(Scanner); !ok {
				t.Fatalf("%s does not implement Scanner", name)
			}
			for i := 0; i < 40; i++ {
				if err := s.Store(fmt.Sprintf("written/r%03d", i), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			for _, rec := range []string{"writing/a", "writing/b", "recovered", "incarnation"} {
				if err := s.Store(rec, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			for _, prefix := range []string{"", "written/", "writing/", "recovered", "nope/"} {
				want, err := s.Records(prefix)
				if err != nil {
					t.Fatal(err)
				}
				seen := make(map[string]int)
				if err := ScanRecords(s, prefix, func(name string) error {
					seen[name]++
					return nil
				}); err != nil {
					t.Fatalf("Scan(%q): %v", prefix, err)
				}
				if len(seen) != len(want) {
					t.Fatalf("Scan(%q) streamed %d names, Records has %d", prefix, len(seen), len(want))
				}
				for _, name := range want {
					if seen[name] != 1 {
						t.Fatalf("Scan(%q) streamed %q %d times", prefix, name, seen[name])
					}
				}
			}
			// A callback error stops the scan and propagates.
			sentinel := errors.New("stop")
			calls := 0
			err := ScanRecords(s, "written/", func(string) error {
				calls++
				return sentinel
			})
			if !errors.Is(err, sentinel) || calls != 1 {
				t.Fatalf("callback error: err=%v calls=%d", err, calls)
			}
			s.Close()
			if err := ScanRecords(s, "", func(string) error { return nil }); !errors.Is(err, ErrClosed) {
				t.Fatalf("scan after close: %v", err)
			}
		})
	}
}

func TestRetrieveReturnsCopy(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			orig := []byte("abc")
			if err := s.Store("r", orig); err != nil {
				t.Fatal(err)
			}
			orig[0] = 'X' // caller mutates its buffer after Store
			got, _, _ := s.Retrieve("r")
			if !bytes.Equal(got, []byte("abc")) {
				t.Fatalf("Store aliased caller buffer: %q", got)
			}
			got[0] = 'Y' // caller mutates the retrieved buffer
			got2, _, _ := s.Retrieve("r")
			if !bytes.Equal(got2, []byte("abc")) {
				t.Fatalf("Retrieve aliased stored buffer: %q", got2)
			}
		})
	}
}

func TestClosedErrors(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Store("r", nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("Store after close: %v", err)
			}
			if _, _, err := s.Retrieve("r"); !errors.Is(err, ErrClosed) {
				t.Fatalf("Retrieve after close: %v", err)
			}
			if _, err := s.Records(""); !errors.Is(err, ErrClosed) {
				t.Fatalf("Records after close: %v", err)
			}
		})
	}
}

func TestStoreBatch(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if err := s.StoreBatch(nil); err != nil {
				t.Fatalf("empty batch: %v", err)
			}
			if err := s.StoreBatch([]Record{
				{Name: "written/a", Data: []byte("v1")},
				{Name: "written/b", Data: []byte("v2")},
				{Name: "written/a", Data: []byte("v3")}, // same name: last wins
			}); err != nil {
				t.Fatal(err)
			}
			if data, ok, err := s.Retrieve("written/a"); err != nil || !ok || !bytes.Equal(data, []byte("v3")) {
				t.Fatalf("written/a = %q ok=%v err=%v", data, ok, err)
			}
			if data, ok, err := s.Retrieve("written/b"); err != nil || !ok || !bytes.Equal(data, []byte("v2")) {
				t.Fatalf("written/b = %q ok=%v err=%v", data, ok, err)
			}
			// The batch must not alias caller buffers.
			orig := []byte("mut")
			if err := s.StoreBatch([]Record{{Name: "c", Data: orig}}); err != nil {
				t.Fatal(err)
			}
			orig[0] = 'X'
			if data, _, _ := s.Retrieve("c"); !bytes.Equal(data, []byte("mut")) {
				t.Fatalf("StoreBatch aliased caller buffer: %q", data)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.StoreBatch([]Record{{Name: "d"}}); !errors.Is(err, ErrClosed) {
				t.Fatalf("StoreBatch after close: %v", err)
			}
		})
	}
}

func TestConcurrentStoreBatches(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						recs := []Record{
							{Name: fmt.Sprintf("a%d", w), Data: []byte{byte(i)}},
							{Name: fmt.Sprintf("b%d", w), Data: []byte{byte(i)}},
						}
						if err := s.StoreBatch(recs); err != nil {
							t.Errorf("batch: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < 4; w++ {
				for _, pre := range []string{"a", "b"} {
					data, ok, err := s.Retrieve(fmt.Sprintf("%s%d", pre, w))
					if err != nil || !ok || !bytes.Equal(data, []byte{19}) {
						t.Fatalf("%s%d = %v ok=%v err=%v", pre, w, data, ok, err)
					}
				}
			}
		})
	}
}

func TestMemDiskLatency(t *testing.T) {
	d := NewMemDisk(Profile{StoreDelay: 20 * time.Millisecond})
	defer d.Close()
	start := time.Now()
	if err := d.Store("r", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("Store returned after %v, want >= ~20ms", el)
	}
}

func TestMemDiskBandwidth(t *testing.T) {
	d := NewMemDisk(Profile{BytesPerSec: 1e6}) // 1 MB/s
	defer d.Close()
	start := time.Now()
	if err := d.Store("r", make([]byte, 20<<10)); err != nil { // 20 KB => ~20ms
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("Store returned after %v, want >= ~20ms", el)
	}
}

func TestMemDiskSurvivesReopen(t *testing.T) {
	d := NewMemDisk(Profile{})
	if err := d.Store("written/x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Reopen()
	data, ok, err := d.Retrieve("written/x")
	if err != nil || !ok || !bytes.Equal(data, []byte("v")) {
		t.Fatalf("after reopen: %q ok=%v err=%v", data, ok, err)
	}
}

func TestFileDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("written/reg with spaces/☃", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// A new FileDisk over the same directory sees the record: this is the
	// crash-recovery property (stable storage outlives the process).
	d2, err := NewFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	data, ok, err := d2.Retrieve("written/reg with spaces/☃")
	if err != nil || !ok || !bytes.Equal(data, []byte("v")) {
		t.Fatalf("after reopen: %q ok=%v err=%v", data, ok, err)
	}
	recs, err := d2.Records("written/")
	if err != nil || len(recs) != 1 {
		t.Fatalf("Records = %v err=%v", recs, err)
	}
}

// TestIncarnationRecordSurvivesReopen pins the stable-storage leg of the
// incarnation-epoch contract (docs/adr/0006): the "incarnation" record a
// node mints during recovery must survive a process restart on every
// persistent backend, or the next boot would reuse a burned epoch.
func TestIncarnationRecordSurvivesReopen(t *testing.T) {
	for _, engine := range []string{"file", "wal", "sharded"} {
		t.Run(engine, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenBackend(engine, dir, Profile{})
			if err != nil {
				t.Fatal(err)
			}
			epoch := []byte{0, 0, 0, 0, 0, 0, 0, 7}
			if err := d.Store("incarnation", epoch); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d2, err := OpenBackend(engine, dir, Profile{})
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			data, ok, err := d2.Retrieve("incarnation")
			if err != nil || !ok || !bytes.Equal(data, epoch) {
				t.Fatalf("after reopen: %q ok=%v err=%v", data, ok, err)
			}
		})
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewMemDisk(Profile{}))
	defer c.Close()
	if err := c.Store("a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("a", []byte("123")); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Retrieve("a"); err != nil {
		t.Fatal(err)
	}
	if c.Stores() != 3 || c.Retrieves() != 1 || c.Bytes() != 8 {
		t.Fatalf("counts: stores=%d retrieves=%d bytes=%d", c.Stores(), c.Retrieves(), c.Bytes())
	}
	if c.RecordStores("a") != 2 || c.RecordStores("b") != 1 || c.RecordStores("zzz") != 0 {
		t.Fatal("per-record counts wrong")
	}
	// A batch counts once as a batch and per record as stores.
	if err := c.StoreBatch([]Record{{Name: "a", Data: []byte("xy")}, {Name: "c", Data: []byte("z")}}); err != nil {
		t.Fatal(err)
	}
	if c.Batches() != 1 || c.Stores() != 5 || c.Bytes() != 11 || c.RecordStores("c") != 1 {
		t.Fatalf("after batch: batches=%d stores=%d bytes=%d", c.Batches(), c.Stores(), c.Bytes())
	}
	recs, err := c.Records("")
	if err != nil || len(recs) != 3 {
		t.Fatalf("Records = %v err=%v", recs, err)
	}
	// The enumeration counters split the streaming path from the
	// materializing one, and retrieves count per prefix — the counters the
	// lazy-recovery guarantee test reads.
	if c.Lists() != 1 || c.Scans() != 0 {
		t.Fatalf("after Records: lists=%d scans=%d", c.Lists(), c.Scans())
	}
	if err := c.Scan("a", func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if c.Scans() != 1 || c.Lists() != 1 {
		t.Fatalf("after Scan: scans=%d lists=%d", c.Scans(), c.Lists())
	}
	if _, _, err := c.Retrieve("b"); err != nil {
		t.Fatal(err)
	}
	if got := c.PrefixRetrieves("a"); got != 1 {
		t.Fatalf("PrefixRetrieves(a) = %d", got)
	}
	if got := c.PrefixRetrieves(""); got != 2 {
		t.Fatalf("PrefixRetrieves(\"\") = %d", got)
	}
}

// TestFileDiskRecordsIgnoresForeignFiles: the record enumeration must skip
// files the disk did not write — leftover temp files from an interrupted
// Store, and anything a human dropped into the directory.
func TestFileDiskRecordsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, rec := range []string{"written/a", "writing/a"} {
		if err := d.Store(rec, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for _, stray := range []string{"tmp-123456", "README.txt", "zz!!.rec"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.Records("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "writing/a" || got[1] != "written/a" {
		t.Fatalf("Records = %v, want the two stored records only", got)
	}
	if got, err := d.Records("written/zzz"); err != nil || len(got) != 0 {
		t.Fatalf("Records(no match) = %v err=%v", got, err)
	}
}

// TestFileDiskPrefixEnumeration: prefixes select on the decoded record name,
// including names that extend each other and prefixes that are not a whole
// path segment.
func TestFileDiskPrefixEnumeration(t *testing.T) {
	d, err := NewFileDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, rec := range []string{"written/a", "written/ab", "written/b", "writing/a", "recovered"} {
		if err := d.Store(rec, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		prefix string
		want   []string
	}{
		{"written/", []string{"written/a", "written/ab", "written/b"}},
		{"written/a", []string{"written/a", "written/ab"}},
		{"writ", []string{"writing/a", "written/a", "written/ab", "written/b"}},
		{"recovered", []string{"recovered"}},
	}
	for _, tc := range cases {
		got, err := d.Records(tc.prefix)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("Records(%q) = %v, want %v", tc.prefix, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Records(%q) = %v, want %v", tc.prefix, got, tc.want)
			}
		}
	}
}

// TestFileDiskReopenAfterClose: a closed FileDisk keeps rejecting
// operations, while a new FileDisk over the same directory recovers the
// full state — enumeration, content, and the ability to store again.
func TestFileDiskReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("written/x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The closed handle stays closed even after the substrate is reopened.
	d2, err := NewFileDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d.Store("written/x", []byte("v2")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Store on closed handle: %v", err)
	}
	if _, err := d.Records(""); !errors.Is(err, ErrClosed) {
		t.Fatalf("Records on closed handle: %v", err)
	}
	recs, err := d2.Records("written/")
	if err != nil || len(recs) != 1 || recs[0] != "written/x" {
		t.Fatalf("reopened Records = %v err=%v", recs, err)
	}
	if data, ok, err := d2.Retrieve("written/x"); err != nil || !ok || !bytes.Equal(data, []byte("v1")) {
		t.Fatalf("reopened Retrieve = %q ok=%v err=%v", data, ok, err)
	}
	if err := d2.Store("written/x", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if data, _, _ := d2.Retrieve("written/x"); !bytes.Equal(data, []byte("v3")) {
		t.Fatalf("store after reopen = %q", data)
	}
}

func TestConcurrentStores(t *testing.T) {
	for name, mk := range storageFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						rec := fmt.Sprintf("r%d", w)
						if err := s.Store(rec, []byte{byte(i)}); err != nil {
							t.Errorf("store: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < 4; w++ {
				data, ok, err := s.Retrieve(fmt.Sprintf("r%d", w))
				if err != nil || !ok || !bytes.Equal(data, []byte{24}) {
					t.Fatalf("r%d = %v ok=%v err=%v", w, data, ok, err)
				}
			}
		})
	}
}

func TestEncodeDecodeName(t *testing.T) {
	for _, name := range []string{"", "a", "written/x", "weird/☃ name"} {
		enc := encodeName(name)
		dec, ok := decodeName(enc)
		if !ok || dec != name {
			t.Fatalf("round trip %q -> %q -> %q ok=%v", name, enc, dec, ok)
		}
	}
	if _, ok := decodeName("notarecord.txt"); ok {
		t.Fatal("decoded a non-record file name")
	}
	if _, ok := decodeName("zz!!.rec"); ok {
		t.Fatal("decoded invalid hex")
	}
}

func TestDiskProfile(t *testing.T) {
	p := DiskProfile()
	if p.StoreDelay != 200*time.Microsecond {
		t.Fatalf("DiskProfile = %+v", p)
	}
	// λ for a small record should be about twice the paper's δ (0.1 ms).
	if d := p.delay(4); d < 200*time.Microsecond || d > 210*time.Microsecond {
		t.Fatalf("small-record delay = %v", d)
	}
}
