package stable

import (
	"errors"
	"testing"
)

func TestFlakyInjectsFailures(t *testing.T) {
	f := NewFlaky(NewMemDisk(Profile{}), 0.5, 1)
	defer f.Close()
	var failed, ok int
	for i := 0; i < 200; i++ {
		if err := f.Store("r", []byte{byte(i)}); errors.Is(err, ErrInjected) {
			failed++
		} else if err == nil {
			ok++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("failed=%d ok=%d, want both nonzero at 50%%", failed, ok)
	}
	if f.Failures() != failed {
		t.Fatalf("Failures() = %d, want %d", f.Failures(), failed)
	}
	// The last successful store's content is retrievable.
	data, found, err := f.Retrieve("r")
	if err != nil || !found || len(data) != 1 {
		t.Fatalf("retrieve: %v %v %v", data, found, err)
	}
}

func TestFlakyZeroRateTransparent(t *testing.T) {
	f := NewFlaky(NewMemDisk(Profile{}), 0, 1)
	defer f.Close()
	for i := 0; i < 50; i++ {
		if err := f.Store("r", nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Failures() != 0 {
		t.Fatal("zero-rate flaky failed")
	}
	recs, err := f.Records("")
	if err != nil || len(recs) != 1 {
		t.Fatalf("records: %v %v", recs, err)
	}
}
