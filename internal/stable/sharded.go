package stable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recmem/internal/spin"
)

// ShardedDisk is the third-generation storage engine: a sharded, compacting
// store built for register namespaces far larger than what fits — or should
// sit — in one process's memory. WALDisk already amortizes fsyncs, but both
// its recovery time and its resident set grow linearly with the total
// namespace: opening a WALDisk replays every record of a wholesale snapshot
// into one map before the first Retrieve can be served, which is exactly
// where crash-recovery systems die at scale ("replaying a 10 GB WAL before
// opening the control port"). ShardedDisk bounds both:
//
//   - Records hash onto a fixed number of shards (the count is persisted in
//     a MANIFEST so reopens agree). Each shard owns its own WAL segment
//     chain and snapshot, and recovery opens all shards in parallel.
//   - A shard snapshot ends in a sorted footer index (name → frame offset),
//     so opening a shard reads the index and the small segment tail — not
//     the values. What must be replayed before the store is serving again
//     is bounded by the compaction policy, independent of namespace size.
//   - Values are resident only while hot: an LRU per shard keeps at most
//     ResidentRecords values in memory; everything else is cold-loaded from
//     the snapshot or segment file on demand. The index (names + offsets)
//     is the only per-record memory that scales with the namespace.
//   - Registers can be deleted: Delete appends a tombstone frame, and
//     compaction drops tombstoned records from the next snapshot, so a
//     churning namespace does not grow without bound.
//   - Compaction merges a shard's snapshot and sealed segments into a new
//     snapshot concurrently with serving (only the active segment takes new
//     appends), triggered by sealed-segment size, segment age, and a final
//     pass on clean Close. The rename of the new snapshot is the atomic
//     commit point: its watermark records the highest segment it covers, so
//     a crash anywhere between temp-write, rename, and segment deletion
//     recovers to a consistent state.
//
// Layout under dir:
//
//	MANIFEST            — shard count, written once at creation
//	shard-0000/
//	  snapshot.rec      — data frames + sorted index + footer (watermark)
//	  seg-00000001.wal  — CRC-framed append-only segments; highest id active
//	shard-0001/ ...
//
// Store/StoreBatch group-commit per shard exactly like WALDisk: every group
// pending at sync time shares one fdatasync of that shard's active segment.
// A batch spanning shards commits per shard independently; on error none of
// it is acknowledged (the Storage contract), and a shard whose sync fails
// rolls back to its last good offset without touching its siblings.
type ShardedDisk struct {
	dir    string
	opts   ShardedOptions
	shards []*shard

	mu     sync.Mutex
	closed bool

	syncs       atomic.Int64
	batches     atomic.Int64
	appended    atomic.Int64
	compactions atomic.Int64
	tombstones  atomic.Int64
	evictions   atomic.Int64

	// syncHook, when set by tests before any Store, replaces the per-shard
	// segment fdatasync to inject group-commit failures on selected shards.
	syncHook func(shard int) error
	// compactHook, when set by tests, is called at each stage of a shard
	// compaction ("written", "renamed", "deleted"); returning false abandons
	// the compaction at that point without cleaning up — the file-level
	// state a SIGKILL at that instant would leave behind.
	compactHook func(shard int, stage string) bool
}

var (
	_ Storage = (*ShardedDisk)(nil)
	_ Deleter = (*ShardedDisk)(nil)
)

// ShardedOptions tunes a ShardedDisk. The zero value selects the defaults;
// negative values disable the corresponding trigger.
type ShardedOptions struct {
	// Shards is the number of shards (default 8). The count chosen when the
	// directory is first created is persisted in its MANIFEST and wins over
	// this option on reopen — records must keep hashing to the same shard.
	Shards int
	// SegmentBytes seals the active segment once it grows past this size
	// (default 256 KiB; negative lets the active segment grow unbounded,
	// which also disables compaction since only sealed segments compact).
	SegmentBytes int64
	// CompactBytes triggers a shard compaction when its sealed segments
	// exceed this many bytes (default 1 MiB; negative disables the size
	// trigger).
	CompactBytes int64
	// CompactAge triggers a compaction when the oldest sealed segment is
	// older than this (default 1 minute; negative disables the age trigger).
	CompactAge time.Duration
	// CloseCompactBytes runs a final compaction on a clean Close when a
	// shard holds at least this many uncompacted bytes (default 64 KiB;
	// negative disables), so a cleanly restarted process reopens from the
	// index alone. A crash skips it, and replay stays bounded by the
	// size/age triggers above.
	CloseCompactBytes int64
	// ResidentRecords caps the number of record values each shard keeps in
	// memory (default 4096 per shard; negative is unbounded). Evicted values
	// cold-load from the shard's snapshot or segment files on Retrieve.
	ResidentRecords int
	// GatherWindow is the per-shard group-commit gather window, as in
	// WALOptions (default 20 µs; negative disables the wait).
	GatherWindow time.Duration
}

const (
	manifestName = "MANIFEST"
	shardSnap    = "snapshot.rec"

	defaultShards            = 8
	defaultSegmentBytes      = 256 << 10
	defaultCompactBytes      = 1 << 20
	defaultCompactAge        = time.Minute
	defaultCloseCompactBytes = 64 << 10
	defaultResidentRecords   = 4096

	// Frame kinds: a stored value or a tombstone.
	kindSet  = 0
	kindTomb = 1

	// shardFrameMeta is the payload overhead before the data: kind byte +
	// name length.
	shardFrameMeta = 5

	// snapFooterLen is the fixed trailer of a shard snapshot:
	// u64 index offset | u64 watermark | u32 CRC32(index) | u32 magic.
	snapFooterLen = 24
	snapMagic     = 0x52534e50 // "RSNP"
)

func (o ShardedOptions) withDefaults() ShardedOptions {
	if o.Shards <= 0 {
		o.Shards = defaultShards
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = defaultCompactBytes
	}
	if o.CompactAge == 0 {
		o.CompactAge = defaultCompactAge
	}
	if o.CloseCompactBytes == 0 {
		o.CloseCompactBytes = defaultCloseCompactBytes
	}
	if o.ResidentRecords == 0 {
		o.ResidentRecords = defaultResidentRecords
	}
	if o.GatherWindow == 0 {
		o.GatherWindow = defaultGatherWindow
	}
	return o
}

// shardKey returns the hash key of a record name: the part after the first
// '/'. Register emulations name their records role/register ("written/x",
// "writing/x"), so every record of one register lands in one shard; names
// without a role prefix ("recovered", "incarnation") hash whole.
func shardKey(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func (d *ShardedDisk) shardFor(name string) *shard {
	h := fnv.New32a()
	io.WriteString(h, shardKey(name))
	return d.shards[h.Sum32()%uint32(len(d.shards))]
}

// recLoc locates one record's latest frame: segment id (0 = the shard
// snapshot), frame start offset, and full frame length.
type recLoc struct {
	seg  uint64
	off  int64
	flen int32
	tomb bool
}

// segInfo is one sealed, immutable segment awaiting compaction. The file
// handle stays open so cold loads survive the unlink that a concurrent
// compaction performs on the path.
type segInfo struct {
	id       uint64
	f        *os.File
	size     int64
	sealedAt time.Time
}

// shardReq is one submitted group waiting for a shard's committer.
type shardReq struct {
	recs []Record
	tomb []bool
	done chan error
}

// resVal is one resident value in a shard's LRU.
type resVal struct {
	name string
	data []byte
	prev *resVal
	next *resVal
}

// shard is one of the store's independent slices: its own segment chain,
// snapshot, index, resident-value cache, and group-commit daemon.
type shard struct {
	d   *ShardedDisk
	id  int
	dir string

	// mu guards everything below plus all reads of the file handles; the
	// committer appends and syncs the active segment off the lock (readers
	// only ever pread below the durable good offset).
	mu sync.Mutex

	// The base index: the snapshot's sorted raw index block and the start
	// offset of each entry within it. Nothing per-record is allocated at
	// open; names materialize only when enumerated or promoted.
	baseRaw   []byte
	baseOffs  []int32
	snapF     *os.File
	watermark uint64

	// over shadows the base: every record stored or deleted since the
	// snapshot, pointing into a segment. A tomb entry hides a base record.
	over map[string]recLoc

	// Resident values: name → node of an intrusive LRU list (head = most
	// recently used).
	res     map[string]*resVal
	lruHead *resVal
	lruTail *resVal

	queue  []*shardReq
	closed bool
	broken error

	active     *os.File
	activeID   uint64
	good       int64
	sealed     []*segInfo
	sealedSize int64
	compacting bool

	notify chan struct{}
	quit   chan struct{}
	done   chan struct{}
	compWG sync.WaitGroup
}

// NewShardedDisk opens (creating if necessary) a sharded store rooted at dir
// with default options.
func NewShardedDisk(dir string) (*ShardedDisk, error) {
	return OpenShardedDisk(dir, ShardedOptions{})
}

// OpenShardedDisk is NewShardedDisk with explicit options. All shards open
// in parallel: each reads its snapshot's footer index and replays only its
// segment tail, so open time is bounded by the compaction policy rather
// than the namespace size.
func OpenShardedDisk(dir string, opts ShardedOptions) (*ShardedDisk, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create dir: %w", err)
	}
	n, err := loadManifest(dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	d := &ShardedDisk{dir: dir, opts: opts, shards: make([]*shard, n)}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			sh := &shard{
				d: d, id: i, dir: filepath.Join(dir, fmt.Sprintf("shard-%04d", i)),
				over:   make(map[string]recLoc),
				res:    make(map[string]*resVal),
				notify: make(chan struct{}, 1),
				quit:   make(chan struct{}),
				done:   make(chan struct{}),
			}
			d.shards[i] = sh
			errs <- sh.open()
		}(i)
	}
	var firstErr error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		for _, sh := range d.shards {
			if sh != nil {
				sh.closeFiles()
			}
		}
		return nil, firstErr
	}
	for _, sh := range d.shards {
		go sh.run()
	}
	return d, nil
}

// loadManifest reads the persisted shard count, creating the manifest with
// want shards on first open. The persisted count always wins: records must
// keep hashing onto the shard that holds them.
func loadManifest(dir string, want int) (int, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err == nil {
		n, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr != nil || n < 1 {
			return 0, fmt.Errorf("stable: corrupt manifest %q", string(data))
		}
		return n, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("stable: read manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "manifest-*")
	if err != nil {
		return 0, fmt.Errorf("stable: write manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := fmt.Fprintf(tmp, "%d\n", want); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("stable: write manifest: %w", err)
	}
	syncDir(dir)
	return want, nil
}

func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// open loads one shard: stray compaction temp files are removed, the
// snapshot's footer index is mapped (no values), segments covered by the
// snapshot watermark are garbage from an interrupted compaction and are
// deleted, and the remaining segment tail replays into the overlay with a
// per-segment torn-frame cutoff. The highest surviving segment becomes the
// active one.
func (sh *shard) open() error {
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return fmt.Errorf("stable: create shard dir: %w", err)
	}
	if strays, err := filepath.Glob(filepath.Join(sh.dir, "snap-tmp-*")); err == nil {
		for _, s := range strays {
			os.Remove(s)
		}
	}
	if err := sh.openSnapshot(); err != nil {
		return err
	}

	entries, err := os.ReadDir(sh.dir)
	if err != nil {
		return fmt.Errorf("stable: list shard: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.wal", &id); err == nil {
			if id <= sh.watermark {
				// Covered by the snapshot: leftover input of a compaction
				// that crashed between rename and deletion.
				os.Remove(filepath.Join(sh.dir, e.Name()))
				continue
			}
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for i, id := range ids {
		path := filepath.Join(sh.dir, fmt.Sprintf("seg-%08d.wal", id))
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("stable: open segment: %w", err)
		}
		good, err := sh.replaySegment(f, id)
		if err != nil {
			f.Close()
			return fmt.Errorf("stable: replay segment %d: %w", id, err)
		}
		if fi, err := f.Stat(); err == nil && fi.Size() > good {
			if err := f.Truncate(good); err != nil {
				f.Close()
				return fmt.Errorf("stable: truncate torn tail: %w", err)
			}
		}
		if i == len(ids)-1 {
			if _, err := f.Seek(good, io.SeekStart); err != nil {
				f.Close()
				return fmt.Errorf("stable: seek segment end: %w", err)
			}
			sh.active, sh.activeID, sh.good = f, id, good
		} else {
			fi, _ := f.Stat()
			sealedAt := time.Now()
			if fi != nil {
				sealedAt = fi.ModTime()
			}
			sh.sealed = append(sh.sealed, &segInfo{id: id, f: f, size: good, sealedAt: sealedAt})
			sh.sealedSize += good
		}
	}
	if sh.active == nil {
		id := sh.watermark + 1
		if n := len(sh.sealed); n > 0 {
			id = sh.sealed[n-1].id + 1
		}
		if err := sh.newActive(id); err != nil {
			return err
		}
	}
	return nil
}

func (sh *shard) newActive(id uint64) error {
	f, err := os.OpenFile(filepath.Join(sh.dir, fmt.Sprintf("seg-%08d.wal", id)),
		os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("stable: create segment: %w", err)
	}
	sh.active, sh.activeID, sh.good = f, id, 0
	return nil
}

// openSnapshot maps the snapshot's footer index without touching the data
// region. A malformed snapshot is real corruption — it was written in full
// and renamed atomically — and fails the open, like WALDisk.
func (sh *shard) openSnapshot() error {
	f, err := os.Open(filepath.Join(sh.dir, shardSnap))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("stable: open snapshot: %w", err)
	}
	raw, offs, wm, err := readSnapIndex(f)
	if err != nil {
		f.Close()
		return err
	}
	sh.snapF, sh.baseRaw, sh.baseOffs, sh.watermark = f, raw, offs, wm
	return nil
}

// readSnapIndex reads and validates a snapshot's index block and footer.
func readSnapIndex(f *os.File) (raw []byte, offs []int32, watermark uint64, err error) {
	corrupt := errors.New("stable: corrupted shard snapshot")
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, 0, err
	}
	if fi.Size() < snapFooterLen {
		return nil, nil, 0, corrupt
	}
	var foot [snapFooterLen]byte
	if _, err := f.ReadAt(foot[:], fi.Size()-snapFooterLen); err != nil {
		return nil, nil, 0, err
	}
	if binary.BigEndian.Uint32(foot[20:]) != snapMagic {
		return nil, nil, 0, corrupt
	}
	idxOff := int64(binary.BigEndian.Uint64(foot[0:]))
	watermark = binary.BigEndian.Uint64(foot[8:])
	sum := binary.BigEndian.Uint32(foot[16:])
	if idxOff < 0 || idxOff > fi.Size()-snapFooterLen {
		return nil, nil, 0, corrupt
	}
	raw = make([]byte, fi.Size()-snapFooterLen-idxOff)
	if _, err := f.ReadAt(raw, idxOff); err != nil {
		return nil, nil, 0, err
	}
	if crc32.ChecksumIEEE(raw) != sum {
		return nil, nil, 0, corrupt
	}
	// One scan for entry boundaries; no per-record allocation.
	for off := 0; off < len(raw); {
		if off+4 > len(raw) {
			return nil, nil, 0, corrupt
		}
		nameLen := int(binary.BigEndian.Uint32(raw[off:]))
		end := off + 4 + nameLen + 12
		if nameLen < 0 || end > len(raw) {
			return nil, nil, 0, corrupt
		}
		offs = append(offs, int32(off))
		off = end
	}
	return raw, offs, watermark, nil
}

// indexEntry decodes the base index entry starting at raw[off].
func indexEntry(raw []byte, off int32) (name []byte, loc recLoc) {
	nameLen := binary.BigEndian.Uint32(raw[off:])
	name = raw[off+4 : off+4+int32(nameLen)]
	rest := raw[off+4+int32(nameLen):]
	loc = recLoc{
		seg:  0,
		off:  int64(binary.BigEndian.Uint64(rest)),
		flen: int32(binary.BigEndian.Uint32(rest[8:])),
	}
	return name, loc
}

// baseLookup binary-searches the snapshot index for name without allocating.
func (sh *shard) baseLookup(name string) (recLoc, bool) {
	lo, hi := 0, len(sh.baseOffs)
	for lo < hi {
		mid := (lo + hi) / 2
		n, _ := indexEntry(sh.baseRaw, sh.baseOffs[mid])
		if string(n) < name { // comparison only; no allocation (Go optimizes string(b) in comparisons)
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sh.baseOffs) {
		n, loc := indexEntry(sh.baseRaw, sh.baseOffs[lo])
		if string(n) == name {
			return loc, true
		}
	}
	return recLoc{}, false
}

// lookup resolves a name through the overlay, then the base index.
func (sh *shard) lookup(name string) (recLoc, bool) {
	if loc, ok := sh.over[name]; ok {
		if loc.tomb {
			return recLoc{}, false
		}
		return loc, true
	}
	return sh.baseLookup(name)
}

// replaySegment scans one segment, folding every well-formed frame into the
// overlay, and returns the offset after the last good frame (the torn-frame
// cutoff of this shard).
func (sh *shard) replaySegment(f *os.File, id uint64) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	return replayShardFrames(f, func(kind byte, name string, data []byte, off int64, flen int32) {
		if kind == kindTomb {
			sh.over[name] = recLoc{seg: id, off: off, flen: flen, tomb: true}
		} else {
			sh.over[name] = recLoc{seg: id, off: off, flen: flen}
		}
	})
}

// run is the shard's group-commit daemon: same contract as WALDisk's, plus
// seal and compaction checks after each flush and a periodic age check.
func (sh *shard) run() {
	defer close(sh.done)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if sh.d.opts.CompactAge > 0 {
		period := sh.d.opts.CompactAge / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		ticker = time.NewTicker(period)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		var closing bool
		select {
		case <-sh.notify:
			if sh.d.opts.GatherWindow > 0 {
				select {
				case <-sh.quit:
					closing = true
				default:
					spin.Sleep(sh.d.opts.GatherWindow)
				}
			}
		case <-tick:
		case <-sh.quit:
			closing = true
		}
		sh.mu.Lock()
		reqs := sh.queue
		sh.queue = nil
		sh.mu.Unlock()
		if len(reqs) > 0 {
			sh.commit(reqs)
			sh.maybeSeal()
		}
		sh.maybeCompact()
		if closing {
			return
		}
	}
}

// commit appends every group's frames to the active segment with one write,
// syncs once, publishes the new locations and resident values, and
// acknowledges the waiters. On failure nothing is acknowledged and the
// segment rolls back to its last good offset — siblings shards are
// untouched by construction.
func (sh *shard) commit(reqs []*shardReq) {
	if sh.broken != nil {
		for _, r := range reqs {
			r.done <- fmt.Errorf("%w: %w", errWALBroken, sh.broken)
		}
		return
	}
	var buf bytes.Buffer
	type pending struct {
		name string
		data []byte
		loc  recLoc
	}
	var locs []pending
	count := 0
	for _, r := range reqs {
		for i, rec := range r.recs {
			kind := byte(kindSet)
			if r.tomb != nil && r.tomb[i] {
				kind = kindTomb
			}
			off := sh.good + int64(buf.Len())
			flen := appendShardFrame(&buf, kind, rec.Name, rec.Data)
			locs = append(locs, pending{name: rec.Name, data: rec.Data,
				loc: recLoc{seg: sh.activeID, off: off, flen: flen, tomb: kind == kindTomb}})
			count++
		}
	}
	_, err := sh.active.Write(buf.Bytes())
	if err == nil {
		err = sh.sync()
	}
	if err != nil {
		if terr := sh.active.Truncate(sh.good); terr != nil {
			sh.broken = terr
		} else if _, serr := sh.active.Seek(sh.good, io.SeekStart); serr != nil {
			sh.broken = serr
		}
		for _, r := range reqs {
			r.done <- err
		}
		return
	}
	sh.d.syncs.Add(1)
	sh.d.batches.Add(1)
	sh.d.appended.Add(int64(count))

	sh.mu.Lock()
	sh.good += int64(buf.Len())
	for _, p := range locs {
		sh.over[p.name] = p.loc
		if p.loc.tomb {
			sh.d.tombstones.Add(1)
			sh.dropResident(p.name)
		} else {
			sh.putResident(p.name, p.data)
		}
	}
	sh.mu.Unlock()
	for _, r := range reqs {
		r.done <- nil
	}
}

func (sh *shard) sync() error {
	if hook := sh.d.syncHook; hook != nil {
		return hook(sh.id)
	}
	return sh.active.Sync()
}

// maybeSeal retires the active segment once it passes the size threshold.
// Sealed segments keep their file handles open so cold loads survive a
// concurrent compaction unlinking the path.
func (sh *shard) maybeSeal() {
	if sh.d.opts.SegmentBytes <= 0 || sh.good < sh.d.opts.SegmentBytes {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sealed = append(sh.sealed, &segInfo{id: sh.activeID, f: sh.active, size: sh.good, sealedAt: time.Now()})
	sh.sealedSize += sh.good
	if err := sh.newActive(sh.activeID + 1); err != nil {
		sh.broken = err
		// Undo the seal so the shard still points at a valid active file for
		// the error paths; the broken flag stops further commits anyway.
		last := sh.sealed[len(sh.sealed)-1]
		sh.sealed = sh.sealed[:len(sh.sealed)-1]
		sh.sealedSize -= last.size
		sh.active, sh.activeID, sh.good = last.f, last.id, last.size
	}
}

// maybeCompact launches a background compaction when the sealed chain trips
// the size or age trigger.
func (sh *shard) maybeCompact() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.compacting || sh.broken != nil || len(sh.sealed) == 0 {
		return
	}
	opts := sh.d.opts
	due := opts.CompactBytes > 0 && sh.sealedSize >= opts.CompactBytes
	if !due && opts.CompactAge > 0 && time.Since(sh.sealed[0].sealedAt) >= opts.CompactAge {
		due = true
	}
	if !due {
		return
	}
	segs := make([]*segInfo, len(sh.sealed))
	copy(segs, sh.sealed)
	sh.compacting = true
	sh.compWG.Add(1)
	go sh.compact(segs)
}

// compact merges the current snapshot and the given sealed segments into a
// new snapshot whose watermark covers them, swaps it in, and deletes the
// consumed segments. It runs concurrently with serving: the inputs are
// immutable, and only the swap (rename + index/overlay fixup + deletion)
// takes the shard lock. On any error the compaction is abandoned — the
// segments simply survive until the next attempt.
func (sh *shard) compact(segs []*segInfo) {
	defer sh.compWG.Done()
	watermark := segs[len(segs)-1].id
	merged, err := sh.mergedState(segs)
	if err != nil {
		sh.abandonCompaction()
		return
	}
	tmpName, raw, offs, err := writeSnapshot(sh.dir, merged, watermark)
	if err != nil {
		sh.abandonCompaction()
		return
	}
	if hook := sh.d.compactHook; hook != nil && !hook(sh.id, "written") {
		sh.abandonCompaction()
		return
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	final := filepath.Join(sh.dir, shardSnap)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		sh.compacting = false
		return
	}
	syncDir(sh.dir)
	if hook := sh.d.compactHook; hook != nil && !hook(sh.id, "renamed") {
		// Simulated crash after the commit point: stop before the in-memory
		// swap. The old snapshot handle still reads the old (now unlinked)
		// file, so the in-memory state stays consistent; compacting stays
		// true so no further compaction races the simulated wreckage.
		return
	}
	newF, err := os.Open(final)
	if err != nil {
		sh.compacting = false
		return
	}
	if sh.snapF != nil {
		sh.snapF.Close()
	}
	sh.snapF, sh.baseRaw, sh.baseOffs, sh.watermark = newF, raw, offs, watermark
	// Every overlay entry the new snapshot covers is now base state (or, for
	// tombstones, gone entirely).
	for name, loc := range sh.over {
		if loc.seg <= watermark {
			delete(sh.over, name)
		}
	}
	for i, seg := range segs {
		seg.f.Close()
		os.Remove(filepath.Join(sh.dir, fmt.Sprintf("seg-%08d.wal", seg.id)))
		if hook := sh.d.compactHook; i == 0 && hook != nil && !hook(sh.id, "deleted") {
			return
		}
	}
	sh.sealed = sh.sealed[len(segs):]
	sh.sealedSize = 0
	for _, seg := range sh.sealed {
		sh.sealedSize += seg.size
	}
	sh.compacting = false
	sh.d.compactions.Add(1)
}

func (sh *shard) abandonCompaction() {
	sh.mu.Lock()
	sh.compacting = false
	sh.mu.Unlock()
}

// mergedState replays the snapshot's data region and the sealed segments in
// order, returning the surviving records. Tombstones drop records outright:
// the inputs cover every older copy, so nothing can resurrect them.
func (sh *shard) mergedState(segs []*segInfo) (map[string][]byte, error) {
	merged := make(map[string][]byte)
	sh.mu.Lock()
	snapF := sh.snapF
	var dataLen int64
	if snapF != nil && len(sh.baseOffs) > 0 {
		// The data region ends where the index begins.
		last := sh.baseOffs[len(sh.baseOffs)-1]
		_, loc := indexEntry(sh.baseRaw, last)
		dataLen = loc.off + int64(loc.flen)
	}
	sh.mu.Unlock()
	apply := func(kind byte, name string, data []byte, _ int64, _ int32) {
		if kind == kindTomb {
			delete(merged, name)
		} else {
			merged[name] = data
		}
	}
	if snapF != nil && dataLen > 0 {
		if _, err := replayShardFrames(io.NewSectionReader(snapF, 0, dataLen), apply); err != nil {
			return nil, err
		}
	}
	for _, seg := range segs {
		if _, err := replayShardFrames(io.NewSectionReader(seg.f, 0, seg.size), apply); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// writeSnapshot writes a shard snapshot to a temp file in dir: data frames
// in name order (so a sequential scan of the sorted index preads forward),
// then the index block, then the footer. Returns the temp path and the
// parsed index for the in-memory swap.
func writeSnapshot(dir string, recs map[string][]byte, watermark uint64) (tmpName string, raw []byte, offs []int32, err error) {
	names := make([]string, 0, len(recs))
	for name := range recs {
		names = append(names, name)
	}
	sort.Strings(names)

	tmp, err := os.CreateTemp(dir, "snap-tmp-*")
	if err != nil {
		return "", nil, nil, err
	}
	tmpName = tmp.Name()
	fail := func(err error) (string, []byte, []int32, error) {
		tmp.Close()
		os.Remove(tmpName)
		return "", nil, nil, err
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	var frame bytes.Buffer
	var off int64
	var idx bytes.Buffer
	for _, name := range names {
		frame.Reset()
		flen := appendShardFrame(&frame, kindSet, name, recs[name])
		if _, err := w.Write(frame.Bytes()); err != nil {
			return fail(err)
		}
		offs = append(offs, int32(idx.Len()))
		binary.Write(&idx, binary.BigEndian, uint32(len(name)))
		idx.WriteString(name)
		binary.Write(&idx, binary.BigEndian, uint64(off))
		binary.Write(&idx, binary.BigEndian, uint32(flen))
		off += int64(flen)
	}
	raw = idx.Bytes()
	if _, err := w.Write(raw); err != nil {
		return fail(err)
	}
	var foot [snapFooterLen]byte
	binary.BigEndian.PutUint64(foot[0:], uint64(off))
	binary.BigEndian.PutUint64(foot[8:], watermark)
	binary.BigEndian.PutUint32(foot[16:], crc32.ChecksumIEEE(raw))
	binary.BigEndian.PutUint32(foot[20:], snapMagic)
	if _, err := w.Write(foot[:]); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", nil, nil, err
	}
	return tmpName, raw, offs, nil
}

// Store implements Storage: a single-record group.
func (d *ShardedDisk) Store(record string, data []byte) error {
	return d.StoreBatch([]Record{{Name: record, Data: data}})
}

// StoreBatch implements Storage. Records are partitioned onto their shards
// (batch order preserved within a shard, so a repeated name keeps
// last-wins) and each shard group-commits its slice; the call returns after
// every shard has synced. On error none of the batch is acknowledged —
// per the Storage contract, individual records may or may not have become
// durable, and each failed shard rolls back independently.
func (d *ShardedDisk) StoreBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	return d.submit(recs, nil)
}

// Delete durably removes a record: a tombstone frame is appended to the
// record's shard (group-committed like any store), the record disappears
// from Retrieve and Records, and the next compaction of that shard drops
// the dead bytes from its snapshot. Deleting an absent record is a no-op
// that still logs a tombstone. Implements Deleter.
func (d *ShardedDisk) Delete(record string) error {
	return d.submit([]Record{{Name: record}}, []bool{true})
}

func (d *ShardedDisk) submit(recs []Record, tomb []bool) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.mu.Unlock()

	groups := make(map[*shard]*shardReq, 1)
	order := make([]*shard, 0, 1)
	for i, r := range recs {
		sh := d.shardFor(r.Name)
		g := groups[sh]
		if g == nil {
			g = &shardReq{done: make(chan error, 1)}
			groups[sh] = g
			order = append(order, sh)
		}
		cp := make([]byte, len(r.Data))
		copy(cp, r.Data)
		g.recs = append(g.recs, Record{Name: r.Name, Data: cp})
		g.tomb = append(g.tomb, tomb != nil && tomb[i])
	}
	for _, sh := range order {
		if err := sh.enqueue(groups[sh]); err != nil {
			groups[sh].done <- err
		}
	}
	var firstErr error
	for _, sh := range order {
		if err := <-groups[sh].done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (sh *shard) enqueue(req *shardReq) error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrClosed
	}
	sh.queue = append(sh.queue, req)
	sh.mu.Unlock()
	select {
	case sh.notify <- struct{}{}:
	default:
	}
	return nil
}

// Retrieve implements Storage. A resident value is served from memory; a
// cold one is read from its snapshot or segment frame under the shard lock
// (the lock pins the file handles against a concurrent compaction swap) and
// promoted into the resident cache.
func (d *ShardedDisk) Retrieve(record string) ([]byte, bool, error) {
	sh := d.shardFor(record)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, false, ErrClosed
	}
	if v, ok := sh.res[record]; ok {
		sh.touchResident(v)
		cp := make([]byte, len(v.data))
		copy(cp, v.data)
		return cp, true, nil
	}
	loc, ok := sh.lookup(record)
	if !ok {
		return nil, false, nil
	}
	data, err := sh.readFrame(loc, record)
	if err != nil {
		return nil, false, err
	}
	sh.putResident(record, data)
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true, nil
}

// readFrame cold-loads one frame. Caller holds sh.mu.
func (sh *shard) readFrame(loc recLoc, want string) ([]byte, error) {
	var f *os.File
	switch {
	case loc.seg == 0:
		f = sh.snapF
	case loc.seg == sh.activeID:
		f = sh.active
	default:
		for _, seg := range sh.sealed {
			if seg.id == loc.seg {
				f = seg.f
				break
			}
		}
	}
	if f == nil {
		return nil, fmt.Errorf("stable: record %q points at missing segment %d", want, loc.seg)
	}
	buf := make([]byte, loc.flen)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("stable: cold read %q: %w", want, err)
	}
	kind, name, data, err := decodeShardFrame(buf)
	if err != nil {
		return nil, fmt.Errorf("stable: cold read %q: %w", want, err)
	}
	if name != want || kind != kindSet {
		return nil, fmt.Errorf("stable: cold read %q found %q (kind %d)", want, name, kind)
	}
	return data, nil
}

// Records implements Storage: the merged, sorted enumeration of every live
// record across all shards — base index entries not shadowed by the
// overlay, plus overlay entries that are not tombstones.
func (d *ShardedDisk) Records(prefix string) ([]string, error) {
	var out []string
	for _, sh := range d.shards {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return nil, ErrClosed
		}
		for _, off := range sh.baseOffs {
			nb, _ := indexEntry(sh.baseRaw, off)
			if !strings.HasPrefix(string(nb), prefix) {
				continue
			}
			name := string(nb)
			if _, shadowed := sh.over[name]; shadowed {
				continue
			}
			out = append(out, name)
		}
		for name, loc := range sh.over {
			if !loc.tomb && strings.HasPrefix(name, prefix) {
				out = append(out, name)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out, nil
}

// Scan implements Scanner: shards stream one at a time under their own
// locks, each walking its footer-index entries (names only — record values
// are never read or paged in) plus its non-tombstone overlay entries, so no
// caller ever holds the full namespace in memory. Order is per-shard index
// order, not globally sorted; fn must not call back into the store (Retrieve
// takes the same shard lock).
func (d *ShardedDisk) Scan(prefix string, fn func(string) error) error {
	for _, sh := range d.shards {
		sh.mu.Lock()
		err := sh.scanLocked(prefix, fn)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// scanLocked streams one shard's live record names. Caller holds sh.mu.
func (sh *shard) scanLocked(prefix string, fn func(string) error) error {
	if sh.closed {
		return ErrClosed
	}
	for _, off := range sh.baseOffs {
		nb, _ := indexEntry(sh.baseRaw, off)
		if !strings.HasPrefix(string(nb), prefix) {
			continue
		}
		name := string(nb)
		if _, shadowed := sh.over[name]; shadowed {
			continue
		}
		if err := fn(name); err != nil {
			return err
		}
	}
	for name, loc := range sh.over {
		if !loc.tomb && strings.HasPrefix(name, prefix) {
			if err := fn(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements Storage: every accepted group commits, the daemons stop,
// in-flight compactions finish, and — when a shard holds enough uncompacted
// bytes — a final compaction folds its segments into the snapshot so the
// next open is an index read. Close is idempotent; content remains
// retrievable by a new ShardedDisk over the same directory.
func (d *ShardedDisk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		for _, sh := range d.shards {
			<-sh.done
		}
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	for _, sh := range d.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
		close(sh.quit)
	}
	for _, sh := range d.shards {
		<-sh.done
		sh.compWG.Wait()
		sh.closeCompact()
		sh.closeFiles()
	}
	return nil
}

// closeCompact is the clean-shutdown compaction: seal the active segment
// and merge everything into the snapshot, provided the shard holds at least
// CloseCompactBytes of uncompacted data. Runs single-threaded after the
// committer and any background compaction have exited.
func (sh *shard) closeCompact() {
	min := sh.d.opts.CloseCompactBytes
	if min < 0 || sh.broken != nil {
		return
	}
	if sh.sealedSize+sh.good < min || sh.sealedSize+sh.good == 0 {
		return
	}
	if sh.good > 0 {
		sh.sealed = append(sh.sealed, &segInfo{id: sh.activeID, f: sh.active, size: sh.good, sealedAt: time.Now()})
		sh.sealedSize += sh.good
		sh.active = nil
	}
	if len(sh.sealed) == 0 {
		return
	}
	sh.compacting = true
	sh.compWG.Add(1)
	sh.compact(sh.sealed)
}

func (sh *shard) closeFiles() {
	if sh.active != nil {
		sh.active.Close()
		sh.active = nil
	}
	for _, seg := range sh.sealed {
		seg.f.Close()
	}
	sh.sealed = nil
	if sh.snapF != nil {
		sh.snapF.Close()
		sh.snapF = nil
	}
}

// --- resident-value LRU (caller holds sh.mu) ---

func (sh *shard) putResident(name string, data []byte) {
	cap := sh.d.opts.ResidentRecords
	if cap < 0 {
		cap = int(^uint(0) >> 1)
	}
	if cap == 0 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	if v, ok := sh.res[name]; ok {
		v.data = cp
		sh.touchResident(v)
		return
	}
	v := &resVal{name: name, data: cp}
	sh.res[name] = v
	sh.lruPushFront(v)
	for len(sh.res) > cap {
		tail := sh.lruTail
		sh.dropResident(tail.name)
		sh.d.evictions.Add(1)
	}
}

func (sh *shard) dropResident(name string) {
	v, ok := sh.res[name]
	if !ok {
		return
	}
	delete(sh.res, name)
	sh.lruUnlink(v)
}

func (sh *shard) touchResident(v *resVal) {
	if sh.lruHead == v {
		return
	}
	sh.lruUnlink(v)
	sh.lruPushFront(v)
}

func (sh *shard) lruPushFront(v *resVal) {
	v.prev = nil
	v.next = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.prev = v
	}
	sh.lruHead = v
	if sh.lruTail == nil {
		sh.lruTail = v
	}
}

func (sh *shard) lruUnlink(v *resVal) {
	if v.prev != nil {
		v.prev.next = v.next
	} else {
		sh.lruHead = v.next
	}
	if v.next != nil {
		v.next.prev = v.prev
	} else {
		sh.lruTail = v.prev
	}
	v.prev, v.next = nil, nil
}

// --- counters ---

// Shards returns the persisted shard count.
func (d *ShardedDisk) Shards() int { return len(d.shards) }

// Syncs returns the number of per-shard group-commit syncs issued — the
// engine's fsync bill, comparable to WALDisk.Syncs.
func (d *ShardedDisk) Syncs() int64 { return d.syncs.Load() }

// Batches returns the number of commit groups flushed across all shards.
func (d *ShardedDisk) Batches() int64 { return d.batches.Load() }

// AppendedRecords returns the number of frames appended to segment files.
func (d *ShardedDisk) AppendedRecords() int64 { return d.appended.Load() }

// Compactions returns the number of completed shard compactions (including
// the clean-shutdown pass). Implements CompactionStats.
func (d *ShardedDisk) Compactions() int64 { return d.compactions.Load() }

// Tombstones returns the number of tombstone frames durably appended by
// Delete. Implements CompactionStats.
func (d *ShardedDisk) Tombstones() int64 { return d.tombstones.Load() }

// Evictions returns the number of resident values dropped by the LRU.
func (d *ShardedDisk) Evictions() int64 { return d.evictions.Load() }

// ResidentValues returns the number of record values currently held in
// memory across all shards — the quantity ResidentRecords bounds.
func (d *ShardedDisk) ResidentValues() int {
	total := 0
	for _, sh := range d.shards {
		sh.mu.Lock()
		total += len(sh.res)
		sh.mu.Unlock()
	}
	return total
}

// --- frame codec ---

// appendShardFrame encodes one record as a CRC-framed segment entry and
// returns the frame length:
//
//	u32 payload length | u32 CRC32(payload) | payload
//	payload = u8 kind | u32 name length | name | data
func appendShardFrame(buf *bytes.Buffer, kind byte, name string, data []byte) int32 {
	payload := make([]byte, 0, shardFrameMeta+len(name)+len(data))
	payload = append(payload, kind)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(name)))
	payload = append(payload, name...)
	payload = append(payload, data...)
	var hdr [walFrameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf.Write(hdr[:])
	buf.Write(payload)
	return int32(walFrameHeader + len(payload))
}

// decodeShardFrame decodes one complete frame as laid out by
// appendShardFrame.
var errBadFrame = errors.New("stable: malformed shard frame")

func decodeShardFrame(frame []byte) (kind byte, name string, data []byte, err error) {
	if len(frame) < walFrameHeader+shardFrameMeta {
		return 0, "", nil, errBadFrame
	}
	n := binary.BigEndian.Uint32(frame[0:])
	sum := binary.BigEndian.Uint32(frame[4:])
	if int(n) != len(frame)-walFrameHeader {
		return 0, "", nil, errBadFrame
	}
	payload := frame[walFrameHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, "", nil, errBadFrame
	}
	kind = payload[0]
	nameLen := binary.BigEndian.Uint32(payload[1:])
	if int(nameLen) > len(payload)-shardFrameMeta {
		return 0, "", nil, errBadFrame
	}
	name = string(payload[shardFrameMeta : shardFrameMeta+nameLen])
	data = payload[shardFrameMeta+nameLen:]
	return kind, name, data, nil
}

// replayShardFrames reads frames from r, calling apply with each frame's
// kind, name, data, start offset, and length. A short, oversized or
// CRC-failing frame ends the replay without error — the torn tail of an
// unacknowledged group commit; the returned offset is the cutoff.
func replayShardFrames(r io.Reader, apply func(kind byte, name string, data []byte, off int64, flen int32)) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var good int64
	for {
		var hdr [walFrameHeader]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return good, nil
			}
			return good, err
		}
		n := binary.BigEndian.Uint32(hdr[0:])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n < shardFrameMeta || n > walMaxPayload {
			return good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return good, nil
			}
			return good, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil
		}
		kind := payload[0]
		nameLen := binary.BigEndian.Uint32(payload[1:])
		if kind > kindTomb || int(nameLen) > len(payload)-shardFrameMeta {
			return good, nil
		}
		name := string(payload[shardFrameMeta : shardFrameMeta+nameLen])
		data := payload[shardFrameMeta+nameLen:]
		flen := int32(walFrameHeader + n)
		apply(kind, name, data, good, flen)
		good += int64(flen)
	}
}
