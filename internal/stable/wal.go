package stable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"recmem/internal/spin"
)

// WALDisk is the second-generation storage engine: one append-only log file
// with CRC-framed records instead of one file per record. It exists because
// the paper's whole cost model is "causal logs to stable storage are the
// bottleneck": FileDisk pays a full synchronous file replacement (two
// fsyncs) per Store, while WALDisk appends frames and lets a group-commit
// daemon coalesce every Store/StoreBatch pending at sync time into a single
// write + fdatasync — concurrent rounds of pipelined registers share one
// disk flush exactly the way the batching engine makes them share one
// network frame.
//
// Layout under dir:
//
//	wal.log      — append-only CRC-framed records (the tail)
//	snapshot.rec — latest compacted state, replaced atomically
//
// When the log grows past SnapshotBytes the committer writes a snapshot of
// the in-memory state (temp file, fsync, rename, fsync dir — the same
// atomic-replacement dance as FileDisk.Store) and truncates the log.
// Opening a WALDisk loads the snapshot, then replays the log tail over it;
// a torn final frame (the unacknowledged tail of a crashed group commit) is
// detected by its CRC or short length and cut off. Acknowledged records are
// never behind a torn frame: appends are sequential and a group is only
// acknowledged after its fdatasync.
type WALDisk struct {
	dir  string
	opts WALOptions

	// mu protects the in-memory state: the authoritative record map (updated
	// only after a group is durable, so Retrieve never returns data that
	// could still be lost), the submission queue, and the closed flag.
	mu     sync.Mutex
	recs   map[string][]byte
	queue  []*walReq
	closed bool

	notify chan struct{} // wakes the committer; capacity 1
	quit   chan struct{} // closed by Close
	done   chan struct{} // closed when the committer has exited

	// Committer-owned: the open log file, the byte offset below which the
	// log is known durable and well-formed, and the sticky error after an
	// unrecoverable write failure.
	f      *os.File
	good   int64
	broken error

	syncs     atomic.Int64
	batches   atomic.Int64
	appended  atomic.Int64
	snapshots atomic.Int64

	// syncHook, when set by tests, replaces the log fdatasync to inject
	// group-commit failures.
	syncHook func() error
}

var _ Storage = (*WALDisk)(nil)

// WALOptions tunes a WALDisk.
type WALOptions struct {
	// SnapshotBytes is the log size beyond which the committer snapshots the
	// state and truncates the log (default 1 MiB; negative disables
	// snapshotting, letting the log grow without bound).
	SnapshotBytes int64
	// GatherWindow is how long the committer waits after waking before it
	// drains the queue, so stores racing in from concurrent rounds land in
	// the same group (default 20 µs — noise against a real fdatasync, which
	// costs hundreds of µs to ms; negative disables the wait). The same idea
	// as the network outbox's flush window, at the disk layer.
	GatherWindow time.Duration
}

const (
	walFileName  = "wal.log"
	snapFileName = "snapshot.rec"

	defaultSnapshotBytes = 1 << 20
	defaultGatherWindow  = 20 * time.Microsecond

	// walFrameHeader is the per-frame overhead: payload length + CRC32.
	walFrameHeader = 8
	// walMaxPayload bounds a frame so a corrupt length field cannot make
	// replay allocate absurd buffers.
	walMaxPayload = 1 << 28
)

// errWALBroken wraps the write failure that wedged the log.
var errWALBroken = errors.New("stable: wal log broken by earlier write failure")

// walReq is one submitted group waiting for the committer.
type walReq struct {
	recs []Record
	done chan error
}

// NewWALDisk opens (creating if necessary) a log-structured store rooted at
// dir with default options, loading the snapshot and replaying the log tail.
func NewWALDisk(dir string) (*WALDisk, error) {
	return OpenWALDisk(dir, WALOptions{})
}

// OpenWALDisk is NewWALDisk with explicit options.
func OpenWALDisk(dir string, opts WALOptions) (*WALDisk, error) {
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = defaultSnapshotBytes
	}
	if opts.GatherWindow == 0 {
		opts.GatherWindow = defaultGatherWindow
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create dir: %w", err)
	}
	d := &WALDisk{
		dir:    dir,
		opts:   opts,
		recs:   make(map[string][]byte),
		notify: make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if err := d.load(); err != nil {
		return nil, err
	}
	go d.run()
	return d, nil
}

// load reads the snapshot, replays the log tail over it, and truncates any
// torn final frame so subsequent appends extend a well-formed log.
func (d *WALDisk) load() error {
	snap, err := os.ReadFile(filepath.Join(d.dir, snapFileName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("stable: read snapshot: %w", err)
	}
	if len(snap) > 0 {
		// The snapshot was written in full and atomically renamed, so any
		// decoding failure — including trailing garbage, which in a log
		// would be a legitimate torn tail — is real corruption.
		good, err := replayFrames(bytes.NewReader(snap), func(name string, data []byte) {
			d.recs[name] = data
		})
		if err != nil || good != int64(len(snap)) {
			return errors.New("stable: corrupted snapshot")
		}
	}
	f, err := os.OpenFile(filepath.Join(d.dir, walFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("stable: open log: %w", err)
	}
	good, err := replayFrames(f, func(name string, data []byte) {
		d.recs[name] = data
	})
	if err != nil {
		f.Close()
		return fmt.Errorf("stable: replay log: %w", err)
	}
	// Cut off the torn tail, if any, and position for appending.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("stable: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("stable: seek log end: %w", err)
	}
	d.f = f
	d.good = good
	return nil
}

// Store implements Storage: a single-record group.
func (d *WALDisk) Store(record string, data []byte) error {
	return d.StoreBatch([]Record{{Name: record, Data: data}})
}

// StoreBatch implements Storage. The caller blocks until the group-commit
// daemon has appended every record and synced the log; all groups pending at
// sync time share that one sync.
func (d *WALDisk) StoreBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	req := &walReq{recs: make([]Record, len(recs)), done: make(chan error, 1)}
	for i, r := range recs {
		cp := make([]byte, len(r.Data))
		copy(cp, r.Data)
		req.recs[i] = Record{Name: r.Name, Data: cp}
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.queue = append(d.queue, req)
	d.mu.Unlock()
	select {
	case d.notify <- struct{}{}:
	default: // committer already signalled
	}
	return <-req.done
}

// run is the group-commit daemon: it drains everything queued since the last
// flush and commits it as one write + one sync.
func (d *WALDisk) run() {
	defer close(d.done)
	for {
		var closing bool
		select {
		case <-d.notify:
			// Give stores racing in from concurrent rounds a beat to join
			// this group before the drain; Close flushes immediately.
			if d.opts.GatherWindow > 0 {
				select {
				case <-d.quit:
					closing = true
				default:
					spin.Sleep(d.opts.GatherWindow)
				}
			}
		case <-d.quit:
			closing = true
		}
		// Everything enqueued before Close flipped the closed flag is in the
		// queue by now (enqueue and flag share the mutex), so one final
		// drain commits all accepted groups.
		d.mu.Lock()
		reqs := d.queue
		d.queue = nil
		d.mu.Unlock()
		if len(reqs) > 0 {
			d.commit(reqs)
		}
		if closing {
			d.f.Close()
			return
		}
	}
}

// commit appends every group's frames with one write, syncs once, applies
// the records to the in-memory state, and acknowledges the waiters. On
// failure nothing is acknowledged and the log is rolled back to its last
// good offset so later groups are not hidden behind torn bytes.
func (d *WALDisk) commit(reqs []*walReq) {
	if d.broken != nil {
		for _, r := range reqs {
			r.done <- fmt.Errorf("%w: %w", errWALBroken, d.broken)
		}
		return
	}
	var buf bytes.Buffer
	count := 0
	for _, r := range reqs {
		for _, rec := range r.recs {
			appendFrame(&buf, rec.Name, rec.Data)
			count++
		}
	}
	_, err := d.f.Write(buf.Bytes())
	if err == nil {
		err = d.sync()
	}
	if err != nil {
		// The tail is now suspect: roll back to the last acknowledged
		// offset. If even that fails the log is wedged and every future
		// store reports it.
		if terr := d.f.Truncate(d.good); terr != nil {
			d.broken = terr
		} else if _, serr := d.f.Seek(d.good, io.SeekStart); serr != nil {
			d.broken = serr
		}
		for _, r := range reqs {
			r.done <- err
		}
		return
	}
	d.good += int64(buf.Len())
	d.syncs.Add(1)
	d.batches.Add(1)
	d.appended.Add(int64(count))

	d.mu.Lock()
	for _, r := range reqs {
		for _, rec := range r.recs {
			d.recs[rec.Name] = rec.Data
		}
	}
	d.mu.Unlock()
	for _, r := range reqs {
		r.done <- nil
	}
	if d.opts.SnapshotBytes > 0 && d.good >= d.opts.SnapshotBytes {
		d.snapshot()
	}
}

// sync makes the appended frames durable (fdatasync), or runs the test hook.
func (d *WALDisk) sync() error {
	if d.syncHook != nil {
		return d.syncHook()
	}
	return d.f.Sync()
}

// snapshot compacts the log, Hermes-style: write the full state to a temp
// file, fsync, atomically rename it over the previous snapshot, fsync the
// directory, then truncate the log. Runs on the committer goroutine, off
// every Store's critical path except the group that tripped the threshold.
// Failures are non-fatal: without the truncation the log simply keeps
// growing, and replaying old frames over a newer snapshot is harmless
// because appends only ever move records forward to their latest content.
func (d *WALDisk) snapshot() {
	d.mu.Lock()
	names := make([]string, 0, len(d.recs))
	for name := range d.recs {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	for _, name := range names {
		appendFrame(&buf, name, d.recs[name])
	}
	d.mu.Unlock()

	tmp, err := os.CreateTemp(d.dir, "snap-*")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return
	}
	if err := os.Rename(tmpName, filepath.Join(d.dir, snapFileName)); err != nil {
		os.Remove(tmpName)
		return
	}
	if dirF, err := os.Open(d.dir); err == nil {
		_ = dirF.Sync()
		dirF.Close()
	}
	// The snapshot is durable; the log's frames are now redundant.
	if err := d.f.Truncate(0); err != nil {
		return
	}
	if _, err := d.f.Seek(0, io.SeekStart); err != nil {
		d.broken = err
		return
	}
	d.good = 0
	d.snapshots.Add(1)
}

// Retrieve implements Storage. Only durable content is visible: the
// committer applies a group to the in-memory state after its sync.
func (d *WALDisk) Retrieve(record string) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, ErrClosed
	}
	data, ok := d.recs[record]
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true, nil
}

// Records implements Storage.
func (d *WALDisk) Records(prefix string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	var out []string
	for name := range d.recs {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Scan implements Scanner: the fully resident record map streams under the
// store lock in map order, so fn must not call back into the store.
func (d *WALDisk) Scan(prefix string, fn func(string) error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for name := range d.recs {
		if strings.HasPrefix(name, prefix) {
			if err := fn(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close implements Storage: it commits every accepted group, stops the
// daemon, and closes the log. The content remains retrievable by a new
// WALDisk over the same directory.
func (d *WALDisk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.quit)
	<-d.done
	return nil
}

// Syncs returns the number of group-commit syncs issued so far — the
// engine's fsync bill. Compare against the number of records appended
// (AppendedRecords) to read off the amortization factor; FileDisk pays two
// fsyncs per record.
func (d *WALDisk) Syncs() int64 { return d.syncs.Load() }

// Batches returns the number of commit groups flushed.
func (d *WALDisk) Batches() int64 { return d.batches.Load() }

// AppendedRecords returns the number of records appended to the log.
func (d *WALDisk) AppendedRecords() int64 { return d.appended.Load() }

// Snapshots returns the number of snapshot + truncation cycles completed.
func (d *WALDisk) Snapshots() int64 { return d.snapshots.Load() }

// Compactions implements CompactionStats: WALDisk's snapshot + truncation is
// its (wholesale) compaction — the whole namespace rewritten each pass,
// which is exactly the cost ShardedDisk's per-shard merges bound.
func (d *WALDisk) Compactions() int64 { return d.snapshots.Load() }

// Tombstones implements CompactionStats; WALDisk has no register lifecycle,
// so the count is always zero.
func (d *WALDisk) Tombstones() int64 { return 0 }

// appendFrame encodes one record as a CRC-framed log entry:
//
//	u32 payload length | u32 CRC32(payload) | payload
//	payload = u32 name length | name | data
func appendFrame(buf *bytes.Buffer, name string, data []byte) {
	payload := make([]byte, 0, 4+len(name)+len(data))
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(name)))
	payload = append(payload, name...)
	payload = append(payload, data...)
	var hdr [walFrameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf.Write(hdr[:])
	buf.Write(payload)
}

// replayFrames reads frames from r, applying each, and returns the byte
// offset of the end of the last well-formed frame. A short, oversized or
// CRC-failing frame ends the replay without error: it is the torn tail of
// an unacknowledged group commit.
func replayFrames(r io.Reader, apply func(name string, data []byte)) (int64, error) {
	br := bufio.NewReader(r)
	var good int64
	for {
		var hdr [walFrameHeader]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return good, nil
			}
			return good, err
		}
		n := binary.BigEndian.Uint32(hdr[0:])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n < 4 || n > walMaxPayload {
			return good, nil // corrupt length: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return good, nil
			}
			return good, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // torn or corrupt frame
		}
		nameLen := binary.BigEndian.Uint32(payload)
		if int(nameLen) > len(payload)-4 {
			return good, nil
		}
		name := string(payload[4 : 4+nameLen])
		data := payload[4+nameLen:]
		apply(name, data)
		good += walFrameHeader + int64(n)
	}
}
