package stable

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// Micro-benchmarks for the storage engines, run by `make bench-disk`. The
// interesting comparison is per-durable-record cost:
//
//   - BenchmarkFileStore / BenchmarkWALStore: one record per sync on both
//     engines (a sequential caller gives group commit nothing to coalesce) —
//     isolates the append-a-frame vs. replace-a-file overhead.
//   - Benchmark*StoreParallel: concurrent callers; WALDisk's group-commit
//     daemon coalesces everything pending at sync time into one fdatasync,
//     FileDisk pays a full synchronous replacement each.
//   - Benchmark*StoreBatch: the batched durability path (one coalesced
//     engine batch = one StoreBatch call); WALDisk syncs once per batch.
func benchPayload() []byte {
	p := make([]byte, 64)
	for i := range p {
		p[i] = byte(i)
	}
	return p
}

func BenchmarkFileStore(b *testing.B) {
	d, err := NewFileDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	payload := benchPayload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Store("written/x", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALStore(b *testing.B) {
	d, err := NewWALDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	payload := benchPayload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Store("written/x", payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Syncs())/float64(b.N), "syncs/op")
}

func BenchmarkFileStoreParallel(b *testing.B) {
	d, err := NewFileDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	payload := benchPayload()
	var reg atomic.Int32
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("written/r%d", reg.Add(1))
		for pb.Next() {
			if err := d.Store(name, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkWALStoreParallel(b *testing.B) {
	d, err := NewWALDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	payload := benchPayload()
	var reg atomic.Int32
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("written/r%d", reg.Add(1))
		for pb.Next() {
			if err := d.Store(name, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if b.N > 0 {
		b.ReportMetric(float64(d.Syncs())/float64(b.N), "syncs/op")
	}
}

// benchBatch is one coalesced engine batch: the adoption logs a node
// persists for one delivered batch frame.
func benchBatch() []Record {
	recs := make([]Record, 16)
	for i := range recs {
		recs[i] = Record{Name: fmt.Sprintf("written/r%d", i), Data: benchPayload()}
	}
	return recs
}

func BenchmarkFileStoreBatch(b *testing.B) {
	d, err := NewFileDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	recs := benchBatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.StoreBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALStoreBatch(b *testing.B) {
	d, err := NewWALDisk(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	recs := benchBatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.StoreBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.Syncs())/float64(b.N), "syncs/op")
}
