package stable

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrInjected is the failure returned by a Flaky store when a fault fires.
var ErrInjected = errors.New("stable: injected storage fault")

// Flaky wraps a Storage and makes Store and StoreBatch fail with a fixed
// probability, without persisting anything. A replica whose log fails does
// not acknowledge, so the protocol's retransmission retries the adoption —
// the emulations must stay live as long as stores succeed eventually, which
// is what the fault-injection tests assert. A StoreBatch fault fails the
// whole group before it reaches the inner store, modelling a group commit
// whose single fsync fails: none of the coalesced logs may be acknowledged.
type Flaky struct {
	inner Storage

	mu       sync.Mutex
	rng      *rand.Rand
	failRate float64
	failures int
}

var _ Storage = (*Flaky)(nil)

// NewFlaky wraps inner; each Store fails with probability failRate.
func NewFlaky(inner Storage, failRate float64, seed int64) *Flaky {
	return &Flaky{inner: inner, rng: rand.New(rand.NewSource(seed)), failRate: failRate}
}

// Store implements Storage.
func (f *Flaky) Store(record string, data []byte) error {
	f.mu.Lock()
	fail := f.rng.Float64() < f.failRate
	if fail {
		f.failures++
	}
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Store(record, data)
}

// StoreBatch implements Storage; a single injected fault fails the whole
// batch.
func (f *Flaky) StoreBatch(recs []Record) error {
	f.mu.Lock()
	fail := f.rng.Float64() < f.failRate
	if fail {
		f.failures++
	}
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.StoreBatch(recs)
}

// Delete implements Deleter; an injected fault fails the delete before the
// tombstone reaches the inner store (ErrNoDelete if the inner storage has no
// lifecycle support).
func (f *Flaky) Delete(record string) error {
	d, ok := f.inner.(Deleter)
	if !ok {
		return ErrNoDelete
	}
	f.mu.Lock()
	fail := f.rng.Float64() < f.failRate
	if fail {
		f.failures++
	}
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return d.Delete(record)
}

// Retrieve implements Storage.
func (f *Flaky) Retrieve(record string) ([]byte, bool, error) {
	return f.inner.Retrieve(record)
}

// Records implements Storage.
func (f *Flaky) Records(prefix string) ([]string, error) {
	return f.inner.Records(prefix)
}

// Scan implements Scanner by streaming from the inner store — faults are
// injected on the durability path only, never on enumeration.
func (f *Flaky) Scan(prefix string, fn func(string) error) error {
	return ScanRecords(f.inner, prefix, fn)
}

// Close implements Storage.
func (f *Flaky) Close() error { return f.inner.Close() }

// Failures returns the number of injected store failures so far.
func (f *Flaky) Failures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures
}
