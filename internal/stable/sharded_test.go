package stable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shardedTestOpts is the base tuning for tests that need seals and
// compactions after a handful of stores: tiny segments, no age trigger (the
// trigger under test is explicit), no close-time compaction unless a test
// opts in.
func shardedTestOpts() ShardedOptions {
	return ShardedOptions{
		Shards:            2,
		SegmentBytes:      256,
		CompactBytes:      512,
		CompactAge:        -1,
		CloseCompactBytes: -1,
	}
}

func TestShardedSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenShardedDisk(dir, shardedTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("written/r%02d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := d.Store(name, val); err != nil {
			t.Fatal(err)
		}
		want[name] = val
	}
	if err := d.Store("incarnation", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenShardedDisk(dir, shardedTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for name, val := range want {
		data, ok, err := d2.Retrieve(name)
		if err != nil || !ok || !bytes.Equal(data, val) {
			t.Fatalf("%s after reopen = %q ok=%v err=%v, want %q", name, data, ok, err, val)
		}
	}
	names, err := d2.Records("written/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(want) {
		t.Fatalf("Records found %d names, want %d", len(names), len(want))
	}
}

// TestShardedManifestPinsShardCount: the shard count chosen at creation is
// persisted, so a reopen with a different option still hashes every record
// onto the shard that holds it.
func TestShardedManifestPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenShardedDisk(dir, ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Store(fmt.Sprintf("written/r%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenShardedDisk(dir, ShardedOptions{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Shards() != 2 {
		t.Fatalf("reopen has %d shards, want the persisted 2", d2.Shards())
	}
	for i := 0; i < 10; i++ {
		data, ok, err := d2.Retrieve(fmt.Sprintf("written/r%d", i))
		if err != nil || !ok || data[0] != byte(i) {
			t.Fatalf("r%d = %v ok=%v err=%v", i, data, ok, err)
		}
	}
}

// storeUntilCompacted drives stores until at least one background compaction
// completes, returning the last value written per name.
func storeUntilCompacted(t *testing.T, d *ShardedDisk, names int) map[string][]byte {
	t.Helper()
	want := make(map[string][]byte)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; d.Compactions() == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("no compaction despite passing the sealed-size threshold")
		}
		name := fmt.Sprintf("written/r%02d", i%names)
		val := append([]byte(fmt.Sprintf("v%d-", i)), bytes.Repeat([]byte("x"), 48)...)
		if err := d.Store(name, val); err != nil {
			t.Fatal(err)
		}
		want[name] = val
	}
	return want
}

// TestShardedCompactionConcurrentWithServing: compaction merges sealed
// segments into the snapshot while stores and retrieves keep running, and no
// acknowledged value is lost or aged backwards.
func TestShardedCompactionConcurrentWithServing(t *testing.T) {
	opts := shardedTestOpts()
	opts.Shards = 1 // one shard so the sealed chain grows fast
	d, err := OpenShardedDisk(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	stop := make(chan struct{})
	var readerErr atomic.Value
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := d.Retrieve("written/r00"); err != nil {
				readerErr.Store(err)
				return
			}
		}
	}()
	want := storeUntilCompacted(t, d, 16)
	close(stop)
	if err, _ := readerErr.Load().(error); err != nil {
		t.Fatalf("concurrent retrieve failed: %v", err)
	}
	if d.Compactions() == 0 {
		t.Fatal("no compaction ran")
	}
	for name, val := range want {
		data, ok, err := d.Retrieve(name)
		if err != nil || !ok || !bytes.Equal(data, val) {
			t.Fatalf("%s after compaction = %q ok=%v err=%v, want %q", name, data, ok, err, val)
		}
	}
	names, err := d.Records("written/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(want) {
		t.Fatalf("Records found %d names, want %d", len(names), len(want))
	}
}

// TestShardedCloseCompaction: a clean Close folds segments into the
// snapshot, so the reopened store serves from the index with empty segment
// chains — recovery does not replay values.
func TestShardedCloseCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := shardedTestOpts()
	opts.CloseCompactBytes = 1
	d, err := OpenShardedDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("written/r%02d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := d.Store(name, val); err != nil {
			t.Fatal(err)
		}
		want[name] = val
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if fi, err := os.Stat(seg); err != nil || fi.Size() != 0 {
			t.Fatalf("segment %s survived close-compaction with %d bytes", seg, fi.Size())
		}
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "shard-*", shardSnap))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no shard snapshots written: %v %v", snaps, err)
	}

	d2, err := OpenShardedDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for name, val := range want {
		data, ok, err := d2.Retrieve(name)
		if err != nil || !ok || !bytes.Equal(data, val) {
			t.Fatalf("%s from snapshot = %q ok=%v err=%v, want %q", name, data, ok, err, val)
		}
	}
}

func TestShardedDeleteTombstone(t *testing.T) {
	dir := t.TempDir()
	compacting := shardedTestOpts()
	compacting.CloseCompactBytes = 1

	d, err := OpenShardedDisk(dir, compacting)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"written/a", "written/b", "written/c"} {
		if err := d.Store(name, []byte("v-"+name)); err != nil {
			t.Fatal(err)
		}
	}
	// Close compacts, so "written/b" is base (snapshot) state on reopen: the
	// delete below exercises a tombstone shadowing the base index.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d, err = OpenShardedDisk(dir, shardedTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("written/b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("written/never-stored"); err != nil {
		t.Fatalf("delete of absent record: %v", err)
	}
	if d.Tombstones() != 2 {
		t.Fatalf("Tombstones = %d, want 2", d.Tombstones())
	}
	if _, ok, err := d.Retrieve("written/b"); err != nil || ok {
		t.Fatalf("deleted record still retrievable: ok=%v err=%v", ok, err)
	}
	names, err := d.Records("written/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "written/a" || names[1] != "written/c" {
		t.Fatalf("Records after delete = %v", names)
	}
	// Close without compaction: the tombstone itself must replay.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d, err = OpenShardedDisk(dir, compacting)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := d.Retrieve("written/b"); ok {
		t.Fatal("deleted record resurrected by replay")
	}
	// Re-creating a deleted register works, and survives a compacting close.
	if err := d.Store("written/b", []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d, err = OpenShardedDisk(dir, shardedTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	data, ok, err := d.Retrieve("written/b")
	if err != nil || !ok || string(data) != "reborn" {
		t.Fatalf("re-created record = %q ok=%v err=%v", data, ok, err)
	}
}

func TestShardedEvictionColdLoad(t *testing.T) {
	dir := t.TempDir()
	opts := shardedTestOpts()
	opts.ResidentRecords = 8
	opts.CloseCompactBytes = 1
	d, err := OpenShardedDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("written/r%02d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := d.Store(name, val); err != nil {
			t.Fatal(err)
		}
		want[name] = val
	}
	if got, max := d.ResidentValues(), 8*d.Shards(); got > max {
		t.Fatalf("%d resident values, want at most %d", got, max)
	}
	if d.Evictions() == 0 {
		t.Fatal("no evictions despite exceeding ResidentRecords")
	}
	// Every evicted value cold-loads from its segment frame.
	for name, val := range want {
		data, ok, err := d.Retrieve(name)
		if err != nil || !ok || !bytes.Equal(data, val) {
			t.Fatalf("cold %s = %q ok=%v err=%v, want %q", name, data, ok, err, val)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// After a compacting close, cold loads come from the snapshot instead.
	d2, err := OpenShardedDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for name, val := range want {
		data, ok, err := d2.Retrieve(name)
		if err != nil || !ok || !bytes.Equal(data, val) {
			t.Fatalf("snapshot cold %s = %q ok=%v err=%v, want %q", name, data, ok, err, val)
		}
	}
	if got, max := d2.ResidentValues(), 8*d2.Shards(); got > max {
		t.Fatalf("%d resident values after reopen, want at most %d", got, max)
	}
}

// TestShardedCrashDuringCompaction: a crash between any two steps of a
// compaction — temp snapshot written, renamed over the old one, consumed
// segments partially deleted — must reopen to exactly the acknowledged
// state. The hook abandons the compaction mid-flight, leaving the files a
// SIGKILL at that instant would leave.
func TestShardedCrashDuringCompaction(t *testing.T) {
	for _, stage := range []string{"written", "renamed", "deleted"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenShardedDisk(dir, shardedTestOpts())
			if err != nil {
				t.Fatal(err)
			}
			fired := make(chan struct{}, 1)
			d.compactHook = func(_ int, s string) bool {
				if s == stage {
					select {
					case fired <- struct{}{}:
					default:
					}
					return false
				}
				return true
			}
			want := make(map[string][]byte)
			deadline := time.Now().Add(10 * time.Second)
			i := 0
		drive:
			for {
				name := fmt.Sprintf("written/r%02d", i%16)
				val := append([]byte(fmt.Sprintf("v%d-", i)), bytes.Repeat([]byte("x"), 48)...)
				if err := d.Store(name, val); err != nil {
					t.Fatal(err)
				}
				want[name] = val
				i++
				select {
				case <-fired:
					break drive
				default:
				}
				if time.Now().After(deadline) {
					t.Fatal("compaction never reached the crash stage")
				}
			}
			// A few more acknowledged stores land after the "crash".
			for j := 0; j < 4; j++ {
				name := fmt.Sprintf("written/after%d", j)
				val := []byte(fmt.Sprintf("post-crash-%d", j))
				if err := d.Store(name, val); err != nil {
					t.Fatal(err)
				}
				want[name] = val
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			d2, err := OpenShardedDisk(dir, shardedTestOpts())
			if err != nil {
				t.Fatalf("reopen after crash at %q: %v", stage, err)
			}
			defer d2.Close()
			for name, val := range want {
				data, ok, err := d2.Retrieve(name)
				if err != nil || !ok || !bytes.Equal(data, val) {
					t.Fatalf("%s after crash at %q = %q ok=%v err=%v, want %q", name, stage, data, ok, err, val)
				}
			}
			names, err := d2.Records("")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != len(want) {
				t.Fatalf("store holds %d records after crash at %q, want %d", len(names), stage, len(want))
			}
		})
	}
}

// TestShardedTornTailPerShard: garbage after the last acknowledged frame of
// a shard's active segment — the torn write of a crash mid-group-commit —
// is cut off at open, shard by shard, without touching siblings.
func TestShardedTornTailPerShard(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenShardedDisk(dir, shardedTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("written/r%02d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := d.Store(name, val); err != nil {
			t.Fatal(err)
		}
		want[name] = val
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	torn := 0
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			continue
		}
		f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		// A plausible-looking frame header followed by a truncated payload.
		if _, err := f.Write([]byte{0x00, 0x00, 0x40, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		torn++
	}
	if torn == 0 {
		t.Fatal("no non-empty segments to tear; test is vacuous")
	}

	d2, err := OpenShardedDisk(dir, shardedTestOpts())
	if err != nil {
		t.Fatalf("reopen with torn tails: %v", err)
	}
	defer d2.Close()
	for name, val := range want {
		data, ok, err := d2.Retrieve(name)
		if err != nil || !ok || !bytes.Equal(data, val) {
			t.Fatalf("%s after torn tail = %q ok=%v err=%v, want %q", name, data, ok, err, val)
		}
	}
	// The shard accepts appends again past the cutoff.
	if err := d2.Store("written/r00", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := d2.Retrieve("written/r00")
	if err != nil || !ok || string(data) != "fresh" {
		t.Fatalf("store after torn-tail cutoff = %q ok=%v err=%v", data, ok, err)
	}
}

// TestShardedSyncFailureRollsBackShard: a failed segment sync is not
// acknowledged and rolls its shard back to the last good offset; sibling
// shards keep committing, and the failed shard accepts stores again once
// its disk recovers.
func TestShardedSyncFailureRollsBackShard(t *testing.T) {
	dir := t.TempDir()
	opts := shardedTestOpts()
	opts.Shards = 4
	d, err := OpenShardedDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	victim := "written/victim"
	victimShard := d.shardFor(victim).id
	other := ""
	for i := 0; other == ""; i++ {
		name := fmt.Sprintf("written/other%d", i)
		if d.shardFor(name).id != victimShard {
			other = name
		}
	}
	var failing atomic.Bool
	failing.Store(true)
	boom := errors.New("injected sync failure")
	d.syncHook = func(shard int) error {
		if shard == victimShard && failing.Load() {
			return boom
		}
		return nil
	}

	if err := d.Store(victim, []byte("doomed")); !errors.Is(err, boom) {
		t.Fatalf("store on failing shard returned %v, want injected failure", err)
	}
	if _, ok, err := d.Retrieve(victim); err != nil || ok {
		t.Fatalf("unacknowledged store visible: ok=%v err=%v", ok, err)
	}
	if err := d.Store(other, []byte("fine")); err != nil {
		t.Fatalf("sibling shard affected by victim's sync failure: %v", err)
	}

	failing.Store(false)
	if err := d.Store(victim, []byte("second")); err != nil {
		t.Fatalf("shard did not recover after rollback: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenShardedDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	data, ok, err := d2.Retrieve(victim)
	if err != nil || !ok || string(data) != "second" {
		t.Fatalf("victim after reopen = %q ok=%v err=%v, want %q", data, ok, err, "second")
	}
	if data, ok, _ := d2.Retrieve(other); !ok || string(data) != "fine" {
		t.Fatalf("sibling record lost: %q ok=%v", data, ok)
	}
	if _, ok, _ := d2.Retrieve("written/doomed"); ok {
		t.Fatal("rolled-back frame replayed")
	}
}

// TestShardedGroupCommitCoalesces mirrors TestWALGroupCommitCoalesces on a
// single shard: concurrent stores share fsyncs.
func TestShardedGroupCommitCoalesces(t *testing.T) {
	opts := ShardedOptions{Shards: 1, CompactAge: -1, CloseCompactBytes: -1}
	d, err := OpenShardedDisk(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const writers, stores = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < stores; i++ {
				if err := d.Store(fmt.Sprintf("written/r%d", w), []byte{byte(i)}); err != nil {
					t.Errorf("store: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	appended, syncs := d.AppendedRecords(), d.Syncs()
	if appended != writers*stores {
		t.Fatalf("appended %d records, want %d", appended, writers*stores)
	}
	if syncs >= appended/2 {
		t.Fatalf("group commit did not amortize: %d syncs for %d records", syncs, appended)
	}
	t.Logf("%d records in %d syncs (%.1f records/sync)", appended, syncs, float64(appended)/float64(syncs))
}

// TestShardedFlakyCrashReplay is the crash-replay torture with the register
// lifecycle in the mix: stores, batches and deletes fail with probability
// 0.3; whatever was acknowledged — including deletions — must be exactly
// the state after reopen. A Flaky fault fails the whole group before it
// reaches the engine, so the acknowledged map is the exact expected state.
func TestShardedFlakyCrashReplay(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			opts := ShardedOptions{Shards: 4, SegmentBytes: 512, CompactBytes: 1024, CompactAge: -1}
			d, err := OpenShardedDisk(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			fl := NewFlaky(d, 0.3, seed)
			rng := rand.New(rand.NewSource(seed * 77))
			state := make(map[string][]byte)
			touched := make(map[string]bool)
			for i := 0; i < 300; i++ {
				switch rng.Intn(3) {
				case 0:
					name := fmt.Sprintf("written/r%d", rng.Intn(8))
					val := []byte(fmt.Sprintf("v%d", i))
					touched[name] = true
					if err := fl.Store(name, val); err == nil {
						state[name] = val
					} else if !errors.Is(err, ErrInjected) {
						t.Fatalf("store: %v", err)
					}
				case 1:
					recs := make([]Record, 1+rng.Intn(3))
					for j := range recs {
						recs[j] = Record{
							Name: fmt.Sprintf("written/r%d", rng.Intn(8)),
							Data: []byte(fmt.Sprintf("b%d.%d", i, j)),
						}
						touched[recs[j].Name] = true
					}
					if err := fl.StoreBatch(recs); err == nil {
						for _, r := range recs {
							state[r.Name] = r.Data
						}
					} else if !errors.Is(err, ErrInjected) {
						t.Fatalf("batch: %v", err)
					}
				case 2:
					name := fmt.Sprintf("written/r%d", rng.Intn(8))
					touched[name] = true
					if err := fl.Delete(name); err == nil {
						delete(state, name)
					} else if !errors.Is(err, ErrInjected) {
						t.Fatalf("delete: %v", err)
					}
				}
			}
			if fl.Failures() == 0 {
				t.Fatal("no faults injected; test is vacuous")
			}
			if err := fl.Close(); err != nil {
				t.Fatal(err)
			}

			d2, err := NewShardedDisk(dir)
			if err != nil {
				t.Fatalf("reopen after flaky run: %v", err)
			}
			defer d2.Close()
			for name := range touched {
				data, ok, err := d2.Retrieve(name)
				if err != nil {
					t.Fatal(err)
				}
				want, live := state[name]
				if ok != live {
					t.Fatalf("%s present=%v, want %v", name, ok, live)
				}
				if live && !bytes.Equal(data, want) {
					t.Fatalf("%s = %q, want last acknowledged %q", name, data, want)
				}
			}
			names, err := d2.Records("")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != len(state) {
				t.Fatalf("store holds %d records, want the %d acknowledged ones: %v", len(names), len(state), names)
			}
		})
	}
}

// TestShardedCountingSurfacesCompactionStats: the Counting wrapper exposes
// the engine's compaction and tombstone counters (and counts deletes), so
// protocol-level tests can assert compaction actually ran.
func TestShardedCountingSurfacesCompactionStats(t *testing.T) {
	opts := shardedTestOpts()
	opts.Shards = 1
	inner, err := OpenShardedDisk(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounting(inner)
	defer c.Close()
	storeUntilCompacted(t, inner, 16)
	if err := c.Delete("written/r00"); err != nil {
		t.Fatal(err)
	}
	if c.Compactions() == 0 {
		t.Fatal("Counting did not surface the compaction")
	}
	if c.Tombstones() != 1 || c.Deletes() != 1 {
		t.Fatalf("tombstones=%d deletes=%d, want 1 and 1", c.Tombstones(), c.Deletes())
	}

	// A backend without a lifecycle: Delete refuses, stats read zero.
	plain := NewCounting(NewMemDisk(Profile{}))
	defer plain.Close()
	if err := plain.Delete("x"); !errors.Is(err, ErrNoDelete) {
		t.Fatalf("Delete on memdisk = %v, want ErrNoDelete", err)
	}
	if plain.Compactions() != 0 || plain.Tombstones() != 0 {
		t.Fatal("lifecycle stats nonzero on a backend without them")
	}
}
