package netsim

import (
	"testing"
	"time"

	"recmem/internal/transport"
	"recmem/internal/wire"
)

func TestSendBatchDeliversAll(t *testing.T) {
	nw, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	envs := []wire.Envelope{
		msg(0, 2, wire.KindSNQuery),
		msg(0, 2, wire.KindRead),
		msg(0, 2, wire.KindWrite),
	}
	transport.SendAll(nw.Endpoint(0), envs)
	for i := range envs {
		got := recvWithin(t, nw.Endpoint(2).Recv(), time.Second)
		if got.Kind != envs[i].Kind {
			t.Fatalf("delivery %d: kind %v, want %v (batch must preserve order)", i, got.Kind, envs[i].Kind)
		}
		if got.From != 0 || got.To != 2 {
			t.Fatalf("delivery %d: %+v", i, got)
		}
	}
	st := nw.Stats()
	if st.Sent != 3 || st.Delivered != 3 || st.BatchFrames != 1 {
		t.Fatalf("stats = %+v, want 3 sent / 3 delivered / 1 batch frame", st)
	}
}

func TestSendBatchRespectsHoldsAndFilters(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// A filter that drops read queries must apply inside batch frames too:
	// scripted scenarios keep working when the engine batches.
	nw.SetFilter(func(e wire.Envelope) bool { return e.Kind != wire.KindRead })
	nw.Endpoint(0).(transport.BatchSender).SendBatch([]wire.Envelope{
		msg(0, 1, wire.KindSNQuery),
		msg(0, 1, wire.KindRead),
	})
	got := recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if got.Kind != wire.KindSNQuery {
		t.Fatalf("got %v, want the SN query only", got.Kind)
	}
	select {
	case e := <-nw.Endpoint(1).Recv():
		t.Fatalf("filtered envelope delivered: %+v", e)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSendBatchDownDrops(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.SetDown(1, true)
	nw.Endpoint(0).(transport.BatchSender).SendBatch([]wire.Envelope{
		msg(0, 1, wire.KindSNQuery),
		msg(0, 1, wire.KindRead),
	})
	st := nw.Stats()
	if st.Sent != 0 || st.DroppedDown != 2 {
		t.Fatalf("stats = %+v, want everything dropped-down", st)
	}
}
