package netsim

import (
	"testing"
	"time"

	"recmem/internal/wire"
)

func msg(from, to int32, kind wire.Kind) wire.Envelope {
	return wire.Envelope{Kind: kind, From: from, To: to, Reg: "x", RPC: 1}
}

func recvWithin(t *testing.T, ch <-chan wire.Envelope, d time.Duration) wire.Envelope {
	t.Helper()
	select {
	case e, ok := <-ch:
		if !ok {
			t.Fatal("channel closed")
		}
		return e
	case <-time.After(d):
		t.Fatal("timed out waiting for delivery")
	}
	panic("unreachable")
}

func TestDeliverBasic(t *testing.T) {
	nw, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Endpoint(0).Send(msg(0, 2, wire.KindSNQuery))
	got := recvWithin(t, nw.Endpoint(2).Recv(), time.Second)
	if got.From != 0 || got.To != 2 || got.Kind != wire.KindSNQuery {
		t.Fatalf("got %+v", got)
	}
	st := nw.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSelfDelivery(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Endpoint(1).Send(msg(1, 1, wire.KindRead))
	got := recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if got.From != 1 || got.To != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestSendStampsFrom(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	e := msg(9, 1, wire.KindRead) // wrong From is overwritten by the endpoint
	nw.Endpoint(0).Send(e)
	got := recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if got.From != 0 {
		t.Fatalf("From = %d, want 0", got.From)
	}
}

func TestDownDropsBothDirections(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.SetDown(1, true)
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	nw.Endpoint(1).Send(msg(1, 0, wire.KindRead))
	select {
	case e := <-nw.Endpoint(1).Recv():
		t.Fatalf("down process received %+v", e)
	case e := <-nw.Endpoint(0).Recv():
		t.Fatalf("received from down process: %+v", e)
	case <-time.After(50 * time.Millisecond):
	}
	if nw.Stats().DroppedDown != 2 {
		t.Fatalf("stats = %+v", nw.Stats())
	}
	nw.SetDown(1, false)
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
}

func TestHoldAndRelease(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.HoldLink(0, 1)
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	select {
	case <-nw.Endpoint(1).Recv():
		t.Fatal("held link delivered")
	case <-time.After(30 * time.Millisecond):
	}
	// Reverse direction unaffected.
	nw.Endpoint(1).Send(msg(1, 0, wire.KindRead))
	recvWithin(t, nw.Endpoint(0).Recv(), time.Second)

	nw.ReleaseLink(0, 1)
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
}

func TestHoldAllFromAndHeal(t *testing.T) {
	nw, err := New(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.HoldAllFrom(0, 2) // only 0 -> 2 passes
	for to := int32(1); to < 4; to++ {
		nw.Endpoint(0).Send(msg(0, to, wire.KindRead))
	}
	got := recvWithin(t, nw.Endpoint(2).Recv(), time.Second)
	if got.To != 2 {
		t.Fatalf("unexpected delivery %+v", got)
	}
	select {
	case e := <-nw.Endpoint(1).Recv():
		t.Fatalf("held delivery %+v", e)
	case e := <-nw.Endpoint(3).Recv():
		t.Fatalf("held delivery %+v", e)
	case <-time.After(30 * time.Millisecond):
	}
	nw.Heal(0)
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
}

func TestIsolate(t *testing.T) {
	nw, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Isolate(1)
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	nw.Endpoint(1).Send(msg(1, 0, wire.KindRead))
	nw.Endpoint(1).Send(msg(1, 1, wire.KindRead)) // loopback unaffected
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	select {
	case <-nw.Endpoint(0).Recv():
		t.Fatal("isolated process sent out")
	case <-time.After(30 * time.Millisecond):
	}
	nw.ReleaseAll()
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	// loopback message was already consumed; next delivery is from 0.
	got := recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if got.From != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestFilter(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.SetFilter(func(e wire.Envelope) bool { return e.Kind != wire.KindWrite })
	nw.Endpoint(0).Send(msg(0, 1, wire.KindWrite))
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	got := recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if got.Kind != wire.KindRead {
		t.Fatalf("filter passed %+v", got)
	}
	nw.SetFilter(nil)
	nw.Endpoint(0).Send(msg(0, 1, wire.KindWrite))
	got = recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if got.Kind != wire.KindWrite {
		t.Fatalf("got %+v", got)
	}
}

func TestLossIsFairLossy(t *testing.T) {
	nw, err := New(2, Options{LossRate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	// Retransmit many times: fair-lossy channels must let some through, and
	// at 50% loss some must be dropped.
	const sends = 100
	for i := 0; i < sends; i++ {
		nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	}
	delivered := 0
	for {
		select {
		case <-nw.Endpoint(1).Recv():
			delivered++
		case <-time.After(50 * time.Millisecond):
			st := nw.Stats()
			if delivered == 0 {
				t.Fatal("no delivery after 100 sends at 50% loss")
			}
			if st.DroppedLoss == 0 {
				t.Fatal("expected some loss at 50% rate")
			}
			if int64(delivered)+st.DroppedLoss != sends {
				t.Fatalf("delivered %d + dropped %d != %d", delivered, st.DroppedLoss, sends)
			}
			return
		}
	}
}

func TestDuplication(t *testing.T) {
	nw, err := New(2, Options{DupRate: 0.99, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if nw.Stats().Duplicated != 1 {
		t.Fatalf("stats = %+v", nw.Stats())
	}
}

func TestLatencyOrdering(t *testing.T) {
	nw, err := New(2, Options{Profile: Profile{Propagation: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	start := time.Now()
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~20ms", el)
	}
}

func TestBandwidthDelay(t *testing.T) {
	// 1 MB/s: a 10 KB payload should take >= ~10 ms.
	nw, err := New(2, Options{Profile: Profile{BytesPerSec: 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	env := msg(0, 1, wire.KindWrite)
	env.Value = make([]byte, 10<<10)
	start := time.Now()
	nw.Endpoint(0).Send(env)
	recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
	if el := time.Since(start); el < 8*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~10ms", el)
	}
}

func TestFIFOForEqualDelay(t *testing.T) {
	nw, err := New(2, Options{Profile: Profile{Propagation: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	for i := uint64(1); i <= 20; i++ {
		e := msg(0, 1, wire.KindRead)
		e.RPC = i
		nw.Endpoint(0).Send(e)
	}
	for i := uint64(1); i <= 20; i++ {
		got := recvWithin(t, nw.Endpoint(1).Recv(), time.Second)
		if got.RPC != i {
			t.Fatalf("delivery %d has RPC %d (reordering with equal delays)", i, got.RPC)
		}
	}
}

func TestCloseClosesRecv(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Close()
	nw.Close() // idempotent
	select {
	case _, ok := <-nw.Endpoint(0).Recv():
		if ok {
			t.Fatal("unexpected delivery")
		}
	case <-time.After(time.Second):
		t.Fatal("recv not closed")
	}
	// Sends after close are ignored.
	nw.Endpoint(0).Send(msg(0, 1, wire.KindRead))
}

func TestInvalidOptions(t *testing.T) {
	if _, err := New(0, Options{}); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := New(2, Options{LossRate: 1}); err == nil {
		t.Fatal("accepted loss=1")
	}
	if _, err := New(2, Options{DupRate: -0.1}); err == nil {
		t.Fatal("accepted dup<0")
	}
}

func TestOutOfRangeDestinationIgnored(t *testing.T) {
	nw, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	nw.Endpoint(0).Send(msg(0, 7, wire.KindRead))
	nw.Endpoint(0).Send(msg(0, -1, wire.KindRead))
	if nw.Stats().Sent != 0 {
		t.Fatalf("stats = %+v", nw.Stats())
	}
}

func TestLANProfile(t *testing.T) {
	p := LANProfile()
	if p.Propagation != 100*time.Microsecond || p.BytesPerSec != 12.5e6 {
		t.Fatalf("LANProfile = %+v", p)
	}
}
