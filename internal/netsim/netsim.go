// Package netsim simulates the paper's asynchronous message-passing system
// in memory: fair-lossy channels with configurable propagation delay,
// bandwidth, jitter, random loss, duplication and reordering, plus the
// scripted controls (link holds, process isolation) that the deterministic
// scenario tests of Figures 1–3 and the adversarial schedules need.
//
// The simulator is a single discrete-event dispatcher over real time: every
// accepted envelope is scheduled for delivery at now + delay(profile) and a
// dispatcher goroutine releases due envelopes into per-process queues. With a
// zero profile the network degenerates to immediate (but still concurrent and
// reorderable) delivery, which keeps unit tests fast; with the calibrated LAN
// profile it reproduces the paper's δ ≈ 0.1 ms transit time.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"recmem/internal/spin"
	"recmem/internal/transport"
	"recmem/internal/wire"
)

// Profile describes per-link latency.
type Profile struct {
	// Propagation is the one-way delay between two distinct processes (the
	// paper's δ, ≈ 0.1 ms on their LAN).
	Propagation time.Duration
	// SelfDelay is the loopback delay for messages a process sends to
	// itself (its own listener thread).
	SelfDelay time.Duration
	// BytesPerSec is the link bandwidth; 0 means infinite. The paper's LAN
	// is 100 Mb/s = 12.5 MB/s.
	BytesPerSec float64
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
}

// LANProfile returns the profile calibrated to the paper's testbed: 100 Mb/s
// switched Ethernet with ≈ 0.1 ms one-way transit.
func LANProfile() Profile {
	return Profile{
		Propagation: 100 * time.Microsecond,
		SelfDelay:   5 * time.Microsecond,
		BytesPerSec: 12.5e6,
		Jitter:      10 * time.Microsecond,
	}
}

// delay computes the delivery delay for a message of the given encoded size.
// rng is owned by the caller's lock.
func (p Profile) delay(rng *rand.Rand, from, to int32, size int) time.Duration {
	var d time.Duration
	if from == to {
		d = p.SelfDelay
	} else {
		d = p.Propagation
	}
	if p.BytesPerSec > 0 {
		d += time.Duration(float64(size) / p.BytesPerSec * float64(time.Second))
	}
	if p.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.Jitter)))
	}
	return d
}

// Options configures a simulated network.
type Options struct {
	// Profile is the latency model; the zero profile delivers immediately.
	Profile Profile
	// LossRate is the probability in [0,1) that an envelope is dropped.
	LossRate float64
	// DupRate is the probability in [0,1) that an envelope is delivered
	// twice (with independent delays).
	DupRate float64
	// Seed seeds the network's private random source; runs with the same
	// seed and the same send sequence draw the same loss/jitter decisions.
	Seed int64
	// QueueLen is the per-process receive queue length (default 4096);
	// overflow drops envelopes, which fair-lossy channels permit.
	QueueLen int
}

// Net is an in-memory network connecting n processes.
type Net struct {
	n   int
	eps []*endpoint

	mu     sync.Mutex
	rng    *rand.Rand
	prof   Profile
	loss   float64
	dup    float64
	queue  deliveryQueue
	seq    uint64
	down   []bool
	held   map[linkKey]bool
	filter func(wire.Envelope) bool
	closed bool

	wake chan struct{}
	done chan struct{}

	sent, delivered, droppedLoss, droppedDown, droppedHeld, droppedQueue, duplicated, batchFrames atomic.Int64
}

type linkKey struct{ from, to int32 }

// New creates a simulated network for processes 0..n-1.
func New(n int, opts Options) (*Net, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netsim: need at least one process, got %d", n)
	}
	if opts.LossRate < 0 || opts.LossRate >= 1 {
		return nil, fmt.Errorf("netsim: loss rate %v outside [0,1)", opts.LossRate)
	}
	if opts.DupRate < 0 || opts.DupRate >= 1 {
		return nil, fmt.Errorf("netsim: dup rate %v outside [0,1)", opts.DupRate)
	}
	qlen := opts.QueueLen
	if qlen <= 0 {
		qlen = 4096
	}
	nw := &Net{
		n:    n,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		prof: opts.Profile,
		loss: opts.LossRate,
		dup:  opts.DupRate,
		down: make([]bool, n),
		held: make(map[linkKey]bool),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	nw.eps = make([]*endpoint, n)
	for i := range nw.eps {
		nw.eps[i] = &endpoint{id: int32(i), net: nw, ch: make(chan wire.Envelope, qlen)}
	}
	go nw.dispatch()
	return nw, nil
}

// Endpoint returns the endpoint of process id.
func (nw *Net) Endpoint(id int32) transport.Endpoint {
	return nw.eps[id]
}

// N returns the number of processes.
func (nw *Net) N() int { return nw.n }

// SetDown marks a process crashed (true) or alive (false). Envelopes to or
// from a down process are dropped, matching a crashed process that neither
// sends nor receives.
func (nw *Net) SetDown(id int32, down bool) {
	nw.mu.Lock()
	nw.down[id] = down
	nw.mu.Unlock()
}

// HoldLink blackholes the directed link from -> to: envelopes sent on it
// (including retransmissions) are dropped until ReleaseLink.
func (nw *Net) HoldLink(from, to int32) {
	nw.mu.Lock()
	nw.held[linkKey{from, to}] = true
	nw.mu.Unlock()
}

// ReleaseLink removes a hold installed by HoldLink.
func (nw *Net) ReleaseLink(from, to int32) {
	nw.mu.Lock()
	delete(nw.held, linkKey{from, to})
	nw.mu.Unlock()
}

// HoldAllFrom blackholes every link out of process from, except the listed
// destinations. Used by scenario tests to force "the writer's W message
// reaches only p5"-style schedules.
func (nw *Net) HoldAllFrom(from int32, except ...int32) {
	keep := make(map[int32]bool, len(except))
	for _, e := range except {
		keep[e] = true
	}
	nw.mu.Lock()
	for to := int32(0); to < int32(nw.n); to++ {
		if !keep[to] {
			nw.held[linkKey{from, to}] = true
		}
	}
	nw.mu.Unlock()
}

// Isolate blackholes all links to and from process id (except its loopback),
// simulating a partitioned process.
func (nw *Net) Isolate(id int32) {
	nw.mu.Lock()
	for other := int32(0); other < int32(nw.n); other++ {
		if other != id {
			nw.held[linkKey{id, other}] = true
			nw.held[linkKey{other, id}] = true
		}
	}
	nw.mu.Unlock()
}

// Heal removes every hold involving process id.
func (nw *Net) Heal(id int32) {
	nw.mu.Lock()
	for k := range nw.held {
		if k.from == id || k.to == id {
			delete(nw.held, k)
		}
	}
	nw.mu.Unlock()
}

// ReleaseAll removes every hold.
func (nw *Net) ReleaseAll() {
	nw.mu.Lock()
	nw.held = make(map[linkKey]bool)
	nw.mu.Unlock()
}

// SetFilter installs a predicate consulted for every send; returning false
// drops the envelope. Pass nil to remove. Intended for scenario tests.
func (nw *Net) SetFilter(f func(wire.Envelope) bool) {
	nw.mu.Lock()
	nw.filter = f
	nw.mu.Unlock()
}

// Stats returns a snapshot of message accounting.
func (nw *Net) Stats() transport.Stats {
	return transport.Stats{
		Sent:         nw.sent.Load(),
		Delivered:    nw.delivered.Load(),
		DroppedLoss:  nw.droppedLoss.Load(),
		DroppedDown:  nw.droppedDown.Load(),
		DroppedHeld:  nw.droppedHeld.Load(),
		DroppedQueue: nw.droppedQueue.Load(),
		Duplicated:   nw.duplicated.Load(),
		BatchFrames:  nw.batchFrames.Load(),
	}
}

// Close shuts the network down and closes all receive channels.
func (nw *Net) Close() {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return
	}
	nw.closed = true
	nw.mu.Unlock()
	close(nw.done)
}

func (nw *Net) send(env wire.Envelope) {
	nw.sendBatch([]wire.Envelope{env})
}

// sendBatch transmits one frame — a single envelope, or several envelopes
// to one destination coalesced by a batch-aware sender. The per-envelope
// drop controls (down processes, held links, filters) apply individually,
// but the surviving envelopes share one loss/duplication decision and one
// delay computed from the frame's total encoded size — the amortization
// batch frames exist for.
func (nw *Net) sendBatch(envs []wire.Envelope) {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return
	}
	var live []wire.Envelope
	for _, env := range envs {
		if env.To < 0 || int(env.To) >= nw.n {
			continue
		}
		if nw.down[env.From] || nw.down[env.To] {
			nw.droppedDown.Add(1)
			continue
		}
		if nw.held[linkKey{env.From, env.To}] {
			nw.droppedHeld.Add(1)
			continue
		}
		if nw.filter != nil && !nw.filter(env) {
			nw.droppedHeld.Add(1)
			continue
		}
		live = append(live, env)
	}
	if len(live) == 0 {
		nw.mu.Unlock()
		return
	}
	if nw.loss > 0 && nw.rng.Float64() < nw.loss {
		nw.mu.Unlock()
		nw.droppedLoss.Add(int64(len(live)))
		return
	}
	nw.sent.Add(int64(len(live)))
	if len(live) > 1 {
		nw.batchFrames.Add(1)
	}
	copies := 1
	if nw.dup > 0 && nw.rng.Float64() < nw.dup {
		copies = 2
		nw.duplicated.Add(1)
	}
	// A lone envelope travels as a plain envelope, not a batch frame.
	size := wire.Size(live[0])
	if len(live) > 1 {
		size = wire.BatchSize(live)
	}
	now := time.Now()
	for c := 0; c < copies; c++ {
		at := now.Add(nw.prof.delay(nw.rng, live[0].From, live[0].To, size))
		nw.seq++
		heap.Push(&nw.queue, delivery{at: at, seq: nw.seq, envs: live})
	}
	nw.mu.Unlock()
	select {
	case nw.wake <- struct{}{}:
	default:
	}
}

// dispatch releases due deliveries in timestamp order.
func (nw *Net) dispatch() {
	for {
		nw.mu.Lock()
		if nw.closed {
			nw.mu.Unlock()
			for _, ep := range nw.eps {
				close(ep.ch)
			}
			return
		}
		if nw.queue.Len() == 0 {
			nw.mu.Unlock()
			select {
			case <-nw.wake:
			case <-nw.done:
				continue // loop to observe closed under lock
			}
			continue
		}
		now := time.Now()
		top := nw.queue[0]
		if top.at.After(now) {
			// Simulated latencies are routinely far below the platform's
			// sleep granularity; spin.Wait preserves them faithfully.
			at := top.at
			nw.mu.Unlock()
			spin.Wait(at, nw.wake, nw.done)
			continue
		}
		heap.Pop(&nw.queue)
		dst := nw.eps[top.envs[0].To]
		if nw.down[top.envs[0].To] {
			nw.mu.Unlock()
			nw.droppedDown.Add(int64(len(top.envs)))
			continue
		}
		nw.mu.Unlock()
		for _, env := range top.envs {
			select {
			case dst.ch <- env:
				nw.delivered.Add(1)
			default:
				nw.droppedQueue.Add(1)
			}
		}
	}
}

// delivery is a scheduled frame: one or more envelopes to one destination
// released at the same instant.
type delivery struct {
	at   time.Time
	seq  uint64
	envs []wire.Envelope
}

// deliveryQueue is a min-heap on (at, seq).
type deliveryQueue []delivery

func (q deliveryQueue) Len() int { return len(q) }
func (q deliveryQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}
func (q deliveryQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *deliveryQueue) Push(x interface{}) { *q = append(*q, x.(delivery)) }
func (q *deliveryQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// endpoint implements transport.Endpoint.
type endpoint struct {
	id  int32
	net *Net
	ch  chan wire.Envelope
}

var _ transport.Endpoint = (*endpoint)(nil)

func (e *endpoint) ID() int32 { return e.id }

func (e *endpoint) Send(env wire.Envelope) {
	env.From = e.id
	e.net.send(env)
}

var _ transport.BatchSender = (*endpoint)(nil)

// SendBatch implements transport.BatchSender: the envelopes travel as one
// simulated frame (one loss decision, one delay for the combined size).
func (e *endpoint) SendBatch(envs []wire.Envelope) {
	if len(envs) == 0 {
		return
	}
	stamped := make([]wire.Envelope, len(envs))
	for i, env := range envs {
		env.From = e.id
		stamped[i] = env
	}
	e.net.sendBatch(stamped)
}

func (e *endpoint) Recv() <-chan wire.Envelope { return e.ch }
