package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingRetainsInOrder(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 10; i++ {
		r.Add(int32(i%3), "send", fmt.Sprintf("msg%d", i))
	}
	got := r.Snapshot()
	if len(got) != 10 {
		t.Fatalf("retained %d events", len(got))
	}
	for i, e := range got {
		if e.Detail != fmt.Sprintf("msg%d", i) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		r.Add(0, "send", fmt.Sprintf("msg%d", i))
	}
	got := r.Snapshot()
	if len(got) != 16 {
		t.Fatalf("retained %d events, want 16", len(got))
	}
	if got[0].Detail != "msg24" || got[15].Detail != "msg39" {
		t.Fatalf("window = %s .. %s", got[0].Detail, got[15].Detail)
	}
	if r.Dropped() != 40-16 {
		t.Fatalf("dropped = %d, want %d", r.Dropped(), 40-16)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(1)
	for i := 0; i < 20; i++ {
		r.Add(0, "x", "y")
	}
	if len(r.Snapshot()) != 16 {
		t.Fatalf("capacity floor not applied: %d", len(r.Snapshot()))
	}
}

func TestDump(t *testing.T) {
	r := NewRing(16)
	r.Add(2, "store", "written/x")
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "p2") || !strings.Contains(out, "store") || !strings.Contains(out, "written/x") {
		t.Fatalf("dump = %q", out)
	}
	// Eviction notice.
	for i := 0; i < 30; i++ {
		r.Add(0, "send", "m")
	}
	b.Reset()
	r.Dump(&b)
	if !strings.Contains(b.String(), "evicted") {
		t.Fatalf("dump missing eviction notice: %q", b.String())
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(int32(w), "send", "m")
			}
		}(w)
	}
	wg.Wait()
	if len(r.Snapshot()) != 128 {
		t.Fatalf("retained %d", len(r.Snapshot()))
	}
	if r.Dropped() != 8*500-128 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}
