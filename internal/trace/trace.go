// Package trace provides a lightweight bounded event trace for post-mortem
// analysis of emulation runs: protocol sends and deliveries, stable-storage
// stores, crashes and recoveries. The harness attaches one ring to all
// processes of a cluster; torture runs dump it when a checker reports a
// violation, turning "the history is not atomic" into "here is the message
// schedule that got there".
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one traced occurrence.
type Event struct {
	// At is the wall-clock time of the event.
	At time.Time
	// Node is the process the event occurred at.
	Node int32
	// Kind classifies the event ("send", "recv", "store", "crash",
	// "recover", ...).
	Kind string
	// Detail is a human-readable description (message or record).
	Detail string
}

// String renders the event as one line.
func (e Event) String() string {
	return fmt.Sprintf("%s p%d %-8s %s", e.At.Format("15:04:05.000000"), e.Node, e.Kind, e.Detail)
}

// Ring is a fixed-capacity circular event buffer. Safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	drop int
}

// NewRing returns a ring holding up to capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Add records an event, evicting the oldest when full.
func (r *Ring) Add(node int32, kind, detail string) {
	now := time.Now()
	r.mu.Lock()
	if r.full {
		r.drop++
	}
	r.buf[r.next] = Event{At: now, Node: node, Kind: kind, Detail: detail}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events, oldest first.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events were evicted so far.
func (r *Ring) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drop
}

// Dump writes the retained events to w, oldest first.
func (r *Ring) Dump(w io.Writer) {
	for _, e := range r.Snapshot() {
		fmt.Fprintln(w, e)
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d earlier events evicted)\n", d)
	}
}
