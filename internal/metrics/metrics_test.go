package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	if s.String() != "no samples" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P95 < 94*time.Millisecond || s.P95 > 96*time.Millisecond {
		t.Fatalf("P95 = %v", s.P95)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Add(time.Second)
	h.Reset()
	if h.Snapshot().Count != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var (
		h  Histogram
		wg sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Add(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("Count = %d", got)
	}
}

func TestOpMeter(t *testing.T) {
	m := NewOpMeter()
	m.RecordRound(1, 5, 0)
	m.RecordRound(1, 5, 2)
	tr := m.Trace(1)
	if tr.Rounds != 2 || tr.Sends != 10 || tr.Retransmissions != 2 {
		t.Fatalf("Trace = %+v", tr)
	}
	if tr.Steps() != 4 {
		t.Fatalf("Steps = %d, want 4 (the paper's 4 communication steps)", tr.Steps())
	}
	if m.Trace(99) != (OpTrace{}) {
		t.Fatal("unknown op should be zero")
	}
	m.Reset()
	if m.Trace(1) != (OpTrace{}) {
		t.Fatal("Reset did not clear")
	}
}
