// Package metrics provides the measurement primitives used to reproduce the
// paper's performance analysis (§V): latency histograms for operation
// timings and per-operation message/round accounting for the
// message-complexity claims (4 communication steps per operation, as in the
// crash-stop algorithm of [2]).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Histogram collects duration samples. The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Stats summarizes a histogram.
type Stats struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P95, P99  time.Duration
}

// Snapshot computes summary statistics over the samples recorded so far.
func (h *Histogram) Snapshot() Stats {
	h.mu.Lock()
	samples := make([]time.Duration, len(h.samples))
	copy(samples, h.samples)
	h.mu.Unlock()
	if len(samples) == 0 {
		return Stats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	return Stats{
		Count: len(samples),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		Mean:  sum / time.Duration(len(samples)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
	}
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = nil
	h.mu.Unlock()
}

// String renders the summary compactly.
func (s Stats) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v min=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// OpTrace accounts the communication of one operation.
type OpTrace struct {
	// Rounds is the number of request/acknowledgement round trips (each
	// round is 2 communication steps).
	Rounds int
	// Sends is the number of envelopes transmitted, including
	// retransmissions.
	Sends int
	// Retransmissions counts resend sweeps beyond the first of each round.
	Retransmissions int
}

// Steps returns the number of communication steps (2 per round).
func (t OpTrace) Steps() int { return 2 * t.Rounds }

// OpMeter aggregates OpTraces per operation id. Safe for concurrent use.
type OpMeter struct {
	mu  sync.Mutex
	ops map[uint64]OpTrace
}

// NewOpMeter returns an empty meter.
func NewOpMeter() *OpMeter {
	return &OpMeter{ops: make(map[uint64]OpTrace)}
}

// RecordRound adds one round with the given number of sends (first sweep) to
// operation op; extra counts retransmission sweeps.
func (m *OpMeter) RecordRound(op uint64, sends, retransmissions int) {
	m.mu.Lock()
	t := m.ops[op]
	t.Rounds++
	t.Sends += sends
	t.Retransmissions += retransmissions
	m.ops[op] = t
	m.mu.Unlock()
}

// Trace returns the accumulated trace of op.
func (m *OpMeter) Trace(op uint64) OpTrace {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops[op]
}

// Reset discards all traces.
func (m *OpMeter) Reset() {
	m.mu.Lock()
	m.ops = make(map[uint64]OpTrace)
	m.mu.Unlock()
}
