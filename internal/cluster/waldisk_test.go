package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"recmem/internal/core"
	"recmem/internal/stable"
)

// driveCoalescedBatches pushes the same coalesced write workload through the
// batching engine: bursts of submitted writes spread over several registers,
// so engine batches coalesce per register, the outbox group-commits their
// rounds into shared frames, and every node's listener persists each frame's
// adoptions as one StoreBatch.
func driveCoalescedBatches(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	const bursts, perBurst, regs = 3, 96, 8
	for burst := 0; burst < bursts; burst++ {
		futs := make([]*core.Future, perBurst)
		for j := range futs {
			f, err := c.SubmitWrite(0, fmt.Sprintf("r%d", j%regs), []byte(fmt.Sprintf("v%d.%d", burst, j)))
			if err != nil {
				t.Fatal(err)
			}
			futs[j] = f
		}
		for _, f := range futs {
			if _, err := f.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestWALGroupCommitAmortizesFsyncs is the acceptance gate of the storage
// engine: under the same coalesced write batches, the wal backend must issue
// at least 4x fewer fsyncs than FileDisk pays for the records it persists.
// stable.Counting supplies the record counts on both sides; FileDisk costs
// two fsyncs per record (temp-file fsync + directory fsync), counted here
// conservatively as one, while WALDisk reports its group-commit daemon's
// actual fdatasync count.
func TestWALGroupCommitAmortizesFsyncs(t *testing.T) {
	const n = 5

	run := func(backend string) (records int, walSyncs int64) {
		t.Helper()
		dir := t.TempDir()
		counts := make([]*stable.Counting, n)
		wals := make([]*stable.WALDisk, n)
		c, err := New(Config{
			N:         n,
			Algorithm: core.Persistent,
			Node:      core.Options{RetransmitEvery: 250 * time.Millisecond},
			DiskFactory: func(id int32) (stable.Storage, error) {
				inner, err := stable.OpenBackend(backend, fmt.Sprintf("%s/node%d", dir, id), stable.Profile{})
				if err != nil {
					return nil, err
				}
				if w, ok := inner.(*stable.WALDisk); ok {
					wals[id] = w
				}
				counts[id] = stable.NewCounting(inner)
				return counts[id], nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		driveCoalescedBatches(t, c)
		for i := range counts {
			records += counts[i].Stores()
			if wals[i] != nil {
				walSyncs += wals[i].Syncs()
			}
		}
		return records, walSyncs
	}

	fileRecords, _ := run("file")
	walRecords, walSyncs := run("wal")
	if fileRecords == 0 || walRecords == 0 || walSyncs == 0 {
		t.Fatalf("vacuous run: fileRecords=%d walRecords=%d walSyncs=%d", fileRecords, walRecords, walSyncs)
	}
	// Same workload, same protocol: the record bills must be comparable
	// (coalescing is timing-dependent, so allow slack).
	if walRecords > 3*fileRecords || fileRecords > 3*walRecords {
		t.Fatalf("record bills diverge: file=%d wal=%d", fileRecords, walRecords)
	}
	// FileDisk pays at least one fsync per record (two in reality); the
	// group-commit daemon must amortize by at least 4x.
	fileFsyncsFloor := int64(fileRecords)
	if 4*walSyncs > fileFsyncsFloor {
		t.Fatalf("group commit amortized only %.1fx: wal %d syncs vs file >= %d fsyncs",
			float64(fileFsyncsFloor)/float64(walSyncs), walSyncs, fileFsyncsFloor)
	}
	t.Logf("file: %d records (>= %d fsyncs); wal: %d records in %d syncs (%.1fx fewer fsyncs)",
		fileRecords, fileFsyncsFloor, walRecords, walSyncs, float64(fileFsyncsFloor)/float64(walSyncs))
}

// TestClusterWALBackendVerifies: a cluster on the wal backend over a mix of
// sync and async operations with crash/recovery still satisfies its
// atomicity criterion — the engine is a drop-in storage substrate.
func TestClusterWALBackendVerifies(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c, err := New(Config{
		N:           3,
		Algorithm:   core.Persistent,
		Node:        core.Options{RetransmitEvery: 5 * time.Millisecond},
		DiskBackend: "wal",
		DiskDir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 5; i++ {
		if _, err := c.Write(ctx, 0, "x", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	futs := make([]*core.Future, 12)
	for j := range futs {
		f, err := c.SubmitWrite(1, fmt.Sprintf("r%d", j%3), []byte(fmt.Sprintf("a%d", j)))
		if err != nil {
			t.Fatal(err)
		}
		futs[j] = f
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Crash(0) {
		t.Fatal("crash refused")
	}
	if err := c.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	// The recovered process reads its stable state back through the wal.
	if val, _, err := c.Read(ctx, 0, "x"); err != nil || string(val) != "v4" {
		t.Fatalf("read after wal recovery = %q err=%v", val, err)
	}
	if err := c.VerifyDefault(); err != nil {
		t.Fatal(err)
	}
}
