// Package cluster assembles a complete emulation: n processes (internal/core
// nodes) over a simulated fair-lossy network (internal/netsim) with per-
// process stable storage (internal/stable), plus the harness-side observers
// the paper's model assumes but the processes never see — a global clock, a
// history recorder feeding the atomicity checkers, causal-log and message
// meters, and latency histograms for the performance analysis of §V.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/causal"
	"recmem/internal/clock"
	"recmem/internal/core"
	"recmem/internal/history"
	"recmem/internal/metrics"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/tag"
	"recmem/internal/trace"
	"recmem/internal/transport"
)

// Config describes a cluster.
type Config struct {
	// N is the number of processes (must be >= 1).
	N int
	// Algorithm selects the emulation all processes run.
	Algorithm core.AlgorithmKind
	// Node tunes the per-node options (retransmission, hardened tags,
	// ablations).
	Node core.Options
	// Net configures the simulated network (latency profile, loss,
	// duplication, seed).
	Net netsim.Options
	// Disk is the simulated stable-storage latency profile. Ignored when
	// DiskFactory is set or DiskBackend selects a real engine.
	Disk stable.Profile
	// DiskBackend selects each process's stable-storage engine when
	// DiskFactory is not set: "mem" (default — the simulated disk with the
	// Disk profile), "file" (one file per record), "wal" (the log-structured
	// group-commit engine), or "sharded" (the sharded compacting engine for
	// large namespaces). The real engines live under DiskDir/node<i>.
	DiskBackend string
	// DiskDir roots the file, wal and sharded backends; required for them.
	DiskDir string
	// DiskFactory, if set, overrides DiskBackend and supplies each process's
	// stable storage. The storage must survive Crash/Recover cycles.
	DiskFactory func(id int32) (stable.Storage, error)
	// TraceCapacity, when positive, attaches a protocol trace ring holding
	// that many events (sends, deliveries, stores, crashes) for post-mortem
	// dumps.
	TraceCapacity int
}

// Cluster is a running emulation.
type Cluster struct {
	cfg   Config
	net   *netsim.Net
	nodes []*core.Node
	disks []stable.Storage
	clk   *clock.Clock
	rec   *history.Recorder
	logs  *causal.Meter
	msgs  *metrics.OpMeter
	tr    *trace.Ring
	ids   atomic.Uint64

	writeLat metrics.Histogram
	readLat  metrics.Histogram

	// vproc allocates history process ids for asynchronous submissions,
	// starting past the real process ids.
	vproc atomic.Int32
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 process, got %d", cfg.N)
	}
	nw, err := netsim.New(cfg.N, cfg.Net)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:  cfg,
		net:  nw,
		clk:  &clock.Clock{},
		logs: causal.NewMeter(),
		msgs: metrics.NewOpMeter(),
	}
	c.rec = history.NewRecorder(c.clk)
	c.vproc.Store(int32(cfg.N))
	if cfg.TraceCapacity > 0 {
		c.tr = trace.NewRing(cfg.TraceCapacity)
	}
	for i := 0; i < cfg.N; i++ {
		var disk stable.Storage
		if cfg.Algorithm.Recovers() {
			switch {
			case cfg.DiskFactory != nil:
				disk, err = cfg.DiskFactory(int32(i))
			case cfg.DiskBackend != "" && cfg.DiskBackend != "mem":
				if cfg.DiskDir == "" {
					err = fmt.Errorf("backend %q needs DiskDir", cfg.DiskBackend)
				} else {
					disk, err = stable.OpenBackend(cfg.DiskBackend,
						filepath.Join(cfg.DiskDir, fmt.Sprintf("node%d", i)), cfg.Disk)
				}
			default:
				disk = stable.NewMemDisk(cfg.Disk)
			}
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: disk %d: %w", i, err)
			}
			c.disks = append(c.disks, disk)
		} else {
			c.disks = append(c.disks, nil)
		}
		nd, err := core.NewNode(int32(i), cfg.N, cfg.Algorithm, cfg.Node, core.Deps{
			Endpoint: nw.Endpoint(int32(i)),
			Storage:  disk,
			IDs:      &c.ids,
			LogMeter: c.logs,
			MsgMeter: c.msgs,
			Trace:    c.tr,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
	}
	return c, nil
}

// Report summarizes one completed operation.
type Report struct {
	// Op is the operation id, usable with LogCost and MsgTrace.
	Op uint64
	// Latency is the wall-clock duration of the operation.
	Latency time.Duration
	// Tag is the operation's tag witness: the tag the protocol adopted for
	// the written or returned value (zero on failure, for the initial value
	// ⊥, and for coalesced writes superseded within their batch).
	Tag tag.Tag
	// Epoch is the incarnation epoch of the node the operation completed at
	// (docs/adr/0006); zero on failure. Every successful operation carries
	// one, including superseded coalesced writes.
	Epoch uint64
}

// Write invokes the write operation at process proc. The written value is
// recorded in the history as a string.
func (c *Cluster) Write(ctx context.Context, proc int32, reg string, val []byte) (Report, error) {
	return c.Handle(proc, reg).Write(ctx, val)
}

// Read invokes the read operation at process proc. A nil result is the
// register's initial value ⊥.
func (c *Cluster) Read(ctx context.Context, proc int32, reg string) ([]byte, Report, error) {
	return c.Handle(proc, reg).Read(ctx, core.ReadDefault)
}

// SubmitWrite asynchronously writes through process proc's batching engine
// (core.Node.SubmitWrite): concurrent submissions to one register coalesce
// into one quorum round, submissions to different registers pipeline.
//
// In the recorded history the operation is attributed to a fresh one-shot
// logical client co-located with the node (process ids from N upwards): the
// paper's processes are sequential, so a node multiplexing many concurrent
// operations models a population of independent clients, each invoking once.
// The atomicity checkers are interval-based, so this is sound — with one
// deliberate relaxation: an operation left pending by a crash has no
// "next invocation of the same process" to bound its completion, so it may
// linearize at any later point, exactly like a client that never returned.
// CheckRegular and CheckSafe attribute writes from these virtual clients to
// the single writer (atomicity.CheckRegularSWFrom), so RegularSW histories
// built with the async API verify directly.
func (c *Cluster) SubmitWrite(proc int32, reg string, val []byte) (*core.Future, error) {
	vp := c.vproc.Add(1) - 1
	return c.nodes[proc].SubmitWrite(reg, val, c.writeObs(vp, reg, val))
}

// SubmitRead asynchronously reads through process proc's batching engine;
// concurrent submitted reads of one register share a single quorum round.
// History attribution follows SubmitWrite.
func (c *Cluster) SubmitRead(proc int32, reg string) (*core.Future, error) {
	vp := c.vproc.Add(1) - 1
	return c.nodes[proc].SubmitRead(reg, c.readObs(vp, reg))
}

// Crash fails process proc: its volatile state is lost, in-flight operations
// are interrupted and stay pending in the history, and the network drops its
// messages. Returns false if it was already down.
func (c *Cluster) Crash(proc int32) bool {
	ok := c.nodes[proc].Crash(func() { c.rec.Crash(proc) })
	if ok {
		c.net.SetDown(proc, true)
	}
	return ok
}

// Recover restarts a crashed process: stable state is reloaded and the
// algorithm's recovery procedure runs (blocking until a majority is
// reachable for the persistent algorithm's write-back).
func (c *Cluster) Recover(ctx context.Context, proc int32) error {
	c.net.SetDown(proc, false)
	err := c.nodes[proc].Recover(ctx,
		func() { c.rec.Recover(proc) },
		func() { c.rec.Crash(proc) })
	if err != nil && !errors.Is(err, core.ErrNotDown) && !errors.Is(err, core.ErrClosed) {
		// Recovery failed (crashed again or cancelled); the process stays
		// down from the network's point of view unless it is recovering.
		if !c.nodes[proc].Up() {
			c.net.SetDown(proc, true)
		}
	}
	return err
}

// LastRecovery returns the stable-storage footprint of a process's most
// recent recovery procedure — with the lazy register map this is the
// complete register state a restart read (docs/adr/0009), which scenario
// tests assert stays O(pending) regardless of namespace size.
func (c *Cluster) LastRecovery(proc int32) core.RecoveryStats {
	return c.nodes[proc].LastRecovery()
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.cfg.N }

// Algorithm returns the algorithm the cluster runs.
func (c *Cluster) Algorithm() core.AlgorithmKind { return c.cfg.Algorithm }

// Node exposes a process for state inspection in tests and demos.
func (c *Cluster) Node(proc int32) *core.Node { return c.nodes[proc] }

// Net exposes the simulated network for fault scripting.
func (c *Cluster) Net() *netsim.Net { return c.net }

// Disk exposes a process's stable storage.
func (c *Cluster) Disk(proc int32) stable.Storage { return c.disks[proc] }

// History returns a snapshot of the recorded history.
func (c *Cluster) History() history.History { return c.rec.History() }

// LogCost returns the causal-log accounting of an operation.
func (c *Cluster) LogCost(op uint64) causal.OpCost { return c.logs.Cost(op) }

// LogMeter returns the cluster-wide causal-log meter.
func (c *Cluster) LogMeter() *causal.Meter { return c.logs }

// MsgTrace returns the message accounting of an operation.
func (c *Cluster) MsgTrace(op uint64) metrics.OpTrace { return c.msgs.Trace(op) }

// WriteStats and ReadStats summarize operation latencies.
func (c *Cluster) WriteStats() metrics.Stats { return c.writeLat.Snapshot() }

// ReadStats summarizes read latencies.
func (c *Cluster) ReadStats() metrics.Stats { return c.readLat.Snapshot() }

// NetStats returns network-level message accounting.
func (c *Cluster) NetStats() transport.Stats { return c.net.Stats() }

// DumpTrace writes the protocol trace (if enabled) to w and reports whether
// tracing was on.
func (c *Cluster) DumpTrace(w io.Writer) bool {
	if c.tr == nil {
		return false
	}
	c.tr.Dump(w)
	return true
}

// DefaultMode returns the consistency criterion the cluster's algorithm
// promises: linearizability for the crash-stop baseline (under crash-stop
// faults), transient atomicity for Fig. 5, persistent atomicity for Fig. 4
// and the naive adaptation.
func (c *Cluster) DefaultMode() atomicity.Mode {
	switch c.cfg.Algorithm {
	case core.CrashStop:
		return atomicity.Linearizable
	case core.Transient, core.RegularSW:
		// RegularSW's atomicity-family envelope is transient (it shares
		// Fig. 5's recovery-counter mechanism); its real criterion is
		// regularity — see VerifyDefault.
		return atomicity.Transient
	default:
		return atomicity.Persistent
	}
}

// Check verifies the recorded history against the given criterion.
func (c *Cluster) Check(mode atomicity.Mode) error {
	return atomicity.Check(c.History(), mode)
}

// CheckRegular verifies the recorded history against single-writer
// regularity (§VI). Writes submitted through the asynchronous API are
// recorded under one-shot virtual clients (process ids from N upwards); the
// checker attributes them to the single writer and lets them overlap.
func (c *Cluster) CheckRegular() error {
	return atomicity.CheckRegularSWFrom(c.History(), int32(c.cfg.N))
}

// CheckSafe verifies the recorded history against single-writer safety
// (§VI), with the same virtual-client attribution as CheckRegular.
func (c *Cluster) CheckSafe() error {
	return atomicity.CheckSafeSWFrom(c.History(), int32(c.cfg.N))
}

// VerifyDefault checks the history against the criterion the cluster's
// algorithm promises: its atomicity mode, or single-writer regularity for
// the RegularSW extension.
func (c *Cluster) VerifyDefault() error {
	if c.cfg.Algorithm == core.RegularSW {
		return c.CheckRegular()
	}
	return c.Check(c.DefaultMode())
}

// Close shuts down all nodes, the network, and the disks.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Close()
		}
	}
	if c.net != nil {
		c.net.Close()
	}
	for _, d := range c.disks {
		if d != nil {
			_ = d.Close()
		}
	}
}
