package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/history"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/wire"
	"recmem/internal/workload"
)

func testConfig(n int, kind core.AlgorithmKind) cluster.Config {
	return cluster.Config{
		N:         n,
		Algorithm: kind,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	}
}

func newCluster(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func allKinds() []core.AlgorithmKind {
	return []core.AlgorithmKind{core.CrashStop, core.Transient, core.Persistent, core.Naive}
}

func TestWriteReadAndHistory(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			c := newCluster(t, testConfig(3, kind))
			ctx := testCtx(t)
			rep, err := c.Write(ctx, 0, "x", []byte("v1"))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Op == 0 || rep.Latency <= 0 {
				t.Fatalf("report = %+v", rep)
			}
			val, _, err := c.Read(ctx, 1, "x")
			if err != nil {
				t.Fatal(err)
			}
			if string(val) != "v1" {
				t.Fatalf("read = %q", val)
			}
			h := c.History()
			if err := h.Validate(); err != nil {
				t.Fatalf("history: %v", err)
			}
			ops := h.Operations()
			if len(ops) != 2 || ops[0].Type != history.Write || ops[1].Type != history.Read {
				t.Fatalf("ops = %v", ops)
			}
			if ops[1].Value != "v1" {
				t.Fatalf("read op value = %q", ops[1].Value)
			}
			if err := c.Check(c.DefaultMode()); err != nil {
				t.Fatalf("check: %v", err)
			}
		})
	}
}

func TestHistoryRecordsCrashAndPending(t *testing.T) {
	c := newCluster(t, testConfig(3, core.Persistent))
	ctx := testCtx(t)
	if _, err := c.Write(ctx, 0, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Block all SN queries so the next write hangs, then crash the writer.
	c.Net().SetFilter(func(e wire.Envelope) bool { return e.Kind != wire.KindSNQuery })
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(ctx, 0, "x", []byte("v2"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if !c.Crash(0) {
		t.Fatal("crash failed")
	}
	if err := <-done; !errors.Is(err, core.ErrCrashed) {
		t.Fatalf("interrupted write: %v", err)
	}
	c.Net().SetFilter(nil)
	if err := c.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	h := c.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	var sawCrash, sawRecover, sawPending bool
	for _, e := range h {
		switch e.Kind {
		case history.Crash:
			sawCrash = true
		case history.Recover:
			sawRecover = true
		}
	}
	for _, op := range h.Operations() {
		if op.Pending() && op.Value == "v2" {
			sawPending = true
		}
	}
	if !sawCrash || !sawRecover || !sawPending {
		t.Fatalf("history missing events: crash=%v recover=%v pending=%v", sawCrash, sawRecover, sawPending)
	}
	if err := c.Check(atomicity.Persistent); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCrashIdempotentAndRecoverErrors(t *testing.T) {
	c := newCluster(t, testConfig(3, core.Persistent))
	ctx := testCtx(t)
	if !c.Crash(1) {
		t.Fatal("crash returned false")
	}
	if c.Crash(1) {
		t.Fatal("second crash returned true")
	}
	if err := c.Recover(ctx, 0); !errors.Is(err, core.ErrNotDown) {
		t.Fatalf("recover healthy: %v", err)
	}
	if err := c.Recover(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// History has exactly one crash and one recovery.
	var crashes, recoveries int
	for _, e := range c.History() {
		switch e.Kind {
		case history.Crash:
			crashes++
		case history.Recover:
			recoveries++
		}
	}
	if crashes != 1 || recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d", crashes, recoveries)
	}
}

func TestPerOpAccounting(t *testing.T) {
	c := newCluster(t, testConfig(5, core.Persistent))
	ctx := testCtx(t)
	rep, err := c.Write(ctx, 0, "x", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if cost := c.LogCost(rep.Op); cost.CausalDepth != 2 {
		t.Fatalf("write causal depth = %+v", cost)
	}
	if tr := c.MsgTrace(rep.Op); tr.Rounds != 2 {
		t.Fatalf("write rounds = %+v", tr)
	}
	if c.WriteStats().Count != 1 {
		t.Fatalf("write stats = %+v", c.WriteStats())
	}
	if _, _, err := c.Read(ctx, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if c.ReadStats().Count != 1 {
		t.Fatalf("read stats = %+v", c.ReadStats())
	}
	if c.NetStats().Sent == 0 {
		t.Fatal("no network accounting")
	}
	if c.N() != 5 || c.Algorithm() != core.Persistent {
		t.Fatal("accessors wrong")
	}
}

func TestDefaultModes(t *testing.T) {
	want := map[core.AlgorithmKind]atomicity.Mode{
		core.CrashStop:  atomicity.Linearizable,
		core.Transient:  atomicity.Transient,
		core.Persistent: atomicity.Persistent,
		core.Naive:      atomicity.Persistent,
	}
	for kind, mode := range want {
		c := newCluster(t, testConfig(1, kind))
		if got := c.DefaultMode(); got != mode {
			t.Fatalf("%v: mode = %v, want %v", kind, got, mode)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := cluster.New(cluster.Config{N: 0, Algorithm: core.Persistent}); err == nil {
		t.Fatal("accepted N=0")
	}
	if _, err := cluster.New(cluster.Config{N: 3, Algorithm: core.AlgorithmKind(42)}); err == nil {
		t.Fatal("accepted bad algorithm")
	}
	_, err := cluster.New(cluster.Config{
		N: 2, Algorithm: core.Persistent,
		DiskFactory: func(id int32) (stable.Storage, error) {
			return nil, errors.New("boom")
		},
	})
	if err == nil {
		t.Fatal("accepted failing disk factory")
	}
}

func TestFileDiskCluster(t *testing.T) {
	dir := t.TempDir()
	c := newCluster(t, cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
		DiskFactory: func(id int32) (stable.Storage, error) {
			return stable.NewFileDisk(fmt.Sprintf("%s/node%d", dir, id))
		},
	})
	ctx := testCtx(t)
	if _, err := c.Write(ctx, 0, "x", []byte("on-disk")); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 3; p++ {
		c.Crash(p)
	}
	for p := int32(0); p < 3; p++ {
		p := p
		go func() { _ = c.Recover(ctx, p) }()
	}
	waitUntil(t, 5*time.Second, "all recovered", func() bool {
		for p := int32(0); p < 3; p++ {
			if !c.Node(p).Up() {
				return false
			}
		}
		return true
	})
	val, _, err := c.Read(ctx, 1, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "on-disk" {
		t.Fatalf("read = %q", val)
	}
	if err := c.Check(atomicity.Persistent); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadNoFaults checks every algorithm against its criterion on a
// concurrent fault-free workload.
func TestWorkloadNoFaults(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			c := newCluster(t, testConfig(5, kind))
			ctx := testCtx(t)
			res := workload.Run(ctx, c, workload.AllProcs(5), 20,
				workload.Mix{ReadFraction: 0.5, Registers: []string{"x", "y"}}, 42)
			if res.Errors != 0 || res.Interrupted != 0 {
				t.Fatalf("workload result = %+v", res)
			}
			if res.Writes+res.Reads != 100 {
				t.Fatalf("completed %d ops, want 100", res.Writes+res.Reads)
			}
			if err := c.Check(c.DefaultMode()); err != nil {
				t.Fatalf("check: %v", err)
			}
			// Every algorithm is linearizable when nothing crashes.
			if err := c.Check(atomicity.Linearizable); err != nil {
				t.Fatalf("linearizable check: %v", err)
			}
		})
	}
}

// TestWorkloadUnderCrashRecovery is the main integration test: a mixed
// workload runs while random crashes and recoveries are injected, and the
// resulting history must satisfy the algorithm's criterion.
func TestWorkloadUnderCrashRecovery(t *testing.T) {
	kinds := []core.AlgorithmKind{core.Persistent, core.Naive}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			runFaultyWorkload(t, testConfig(5, kind), atomicity.Persistent, 17)
		})
	}
	t.Run("transient-hardened", func(t *testing.T) {
		cfg := testConfig(5, core.Transient)
		cfg.Node.HardenedTags = true
		runFaultyWorkload(t, cfg, atomicity.Transient, 23)
	})
	t.Run("transient-literal", func(t *testing.T) {
		// The literal Fig. 5 algorithm; the adversarial schedule that breaks
		// it (see scenario tests) is vanishingly unlikely here.
		runFaultyWorkload(t, testConfig(5, core.Transient), atomicity.Transient, 29)
	})
}

func runFaultyWorkload(t *testing.T, cfg cluster.Config, mode atomicity.Mode, seed int64) {
	t.Helper()
	c := newCluster(t, cfg)
	ctx := testCtx(t)

	faultCtx, stopFaults := context.WithTimeout(ctx, 800*time.Millisecond)
	defer stopFaults()
	faultsDone := make(chan int, 1)
	go func() {
		faultsDone <- c.RandomFaults(faultCtx, cluster.FaultOptions{Seed: seed, MeanInterval: 15 * time.Millisecond})
	}()

	res := workload.Run(ctx, c, workload.AllProcs(cfg.N), 30,
		workload.Mix{ReadFraction: 0.4, Registers: []string{"x", "y"}}, seed)
	crashes := <-faultsDone
	if err := c.RecoverAll(ctx); err != nil {
		t.Fatalf("recover all: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("workload errors: %+v", res)
	}
	t.Logf("workload: %+v, crashes injected: %d", res, crashes)
	if err := c.Check(mode); err != nil {
		t.Fatalf("%v check failed: %v", mode, err)
	}
}

// TestCrashStopMinorityFailures: the baseline under its own fault model.
func TestCrashStopMinorityFailures(t *testing.T) {
	c := newCluster(t, testConfig(5, core.CrashStop))
	ctx := testCtx(t)
	if _, err := c.Write(ctx, 0, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	c.Crash(4)
	res := workload.Run(ctx, c, []int32{0, 1, 2}, 20, workload.Mix{ReadFraction: 0.5}, 5)
	if res.Errors != 0 || res.Interrupted != 0 {
		t.Fatalf("workload = %+v", res)
	}
	if err := c.Check(atomicity.Linearizable); err != nil {
		t.Fatal(err)
	}
}

// TestLossyClusterWithFaults stacks message loss, duplication and crash
// recovery.
func TestLossyClusterWithFaults(t *testing.T) {
	cfg := testConfig(5, core.Persistent)
	cfg.Node.RetransmitEvery = 2 * time.Millisecond
	cfg.Net = netsim.Options{LossRate: 0.2, DupRate: 0.1, Seed: 3}
	runFaultyWorkload(t, cfg, atomicity.Persistent, 31)
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTraceCaptureAndDump(t *testing.T) {
	cfg := testConfig(3, core.Persistent)
	cfg.TraceCapacity = 512
	c := newCluster(t, cfg)
	ctx := testCtx(t)
	if _, err := c.Write(ctx, 0, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	if err := c.Recover(ctx, 1); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if !c.DumpTrace(&b) {
		t.Fatal("tracing was enabled but DumpTrace reported off")
	}
	out := b.String()
	for _, want := range []string{"send", "recv", "store", "crash", "recover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q events:\n%s", want, out)
		}
	}
	// Tracing off by default.
	c2 := newCluster(t, testConfig(1, core.CrashStop))
	if c2.DumpTrace(&b) {
		t.Fatal("DumpTrace reported on without TraceCapacity")
	}
}
