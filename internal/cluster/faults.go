package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"recmem/internal/core"
)

// FaultOptions configures random crash/recovery injection.
type FaultOptions struct {
	// Seed seeds the injector's private random source.
	Seed int64
	// MaxDown bounds how many processes may be simultaneously unavailable
	// (crashed or still recovering). Defaults to n - ⌈(n+1)/2⌉, which keeps
	// a majority permanently up — the paper's liveness assumption.
	MaxDown int
	// MeanInterval is the average pause between fault actions (default 5 ms).
	MeanInterval time.Duration
	// CrashBias is the probability of choosing a crash over a recovery when
	// both are possible (default 0.5).
	CrashBias float64
}

// RandomFaults injects random crashes and recoveries until ctx is done, then
// waits for in-flight recoveries and returns the number of crashes injected.
// It never exceeds opts.MaxDown simultaneously unavailable processes, so
// operations keep terminating throughout.
func (c *Cluster) RandomFaults(ctx context.Context, opts FaultOptions) int {
	if opts.MaxDown <= 0 {
		opts.MaxDown = c.cfg.N - (c.cfg.N+2)/2
	}
	if opts.MaxDown <= 0 {
		return 0 // nothing can safely crash
	}
	if opts.MeanInterval <= 0 {
		opts.MeanInterval = 5 * time.Millisecond
	}
	if opts.CrashBias <= 0 || opts.CrashBias >= 1 {
		opts.CrashBias = 0.5
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var (
		mu          sync.Mutex
		unavailable = make(map[int32]bool) // crashed or recovering
		recovering  = make(map[int32]bool)
		wg          sync.WaitGroup
		crashes     int
	)
	for ctx.Err() == nil {
		d := time.Duration(rng.Int63n(int64(2*opts.MeanInterval) + 1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		mu.Lock()
		var crashable, recoverable []int32
		for p := int32(0); p < int32(c.cfg.N); p++ {
			switch {
			case !unavailable[p]:
				crashable = append(crashable, p)
			case !recovering[p]:
				recoverable = append(recoverable, p)
			}
		}
		canCrash := len(unavailable) < opts.MaxDown && len(crashable) > 0
		canRecover := len(recoverable) > 0
		switch {
		case canCrash && (!canRecover || rng.Float64() < opts.CrashBias):
			p := crashable[rng.Intn(len(crashable))]
			unavailable[p] = true
			mu.Unlock()
			if c.Crash(p) {
				crashes++
			} else {
				mu.Lock()
				delete(unavailable, p)
				mu.Unlock()
			}
		case canRecover:
			p := recoverable[rng.Intn(len(recoverable))]
			recovering[p] = true
			mu.Unlock()
			wg.Add(1)
			go func(p int32) {
				defer wg.Done()
				err := c.Recover(ctx, p)
				mu.Lock()
				delete(recovering, p)
				if err == nil {
					delete(unavailable, p)
				}
				mu.Unlock()
			}(p)
		default:
			mu.Unlock()
		}
	}
	wg.Wait()
	return crashes
}

// RecoverAll recovers every crashed process, blocking until done. Used to
// end a faulty run in a healthy state.
func (c *Cluster) RecoverAll(ctx context.Context) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for p := int32(0); p < int32(c.cfg.N); p++ {
		if c.nodes[p].Up() {
			continue
		}
		wg.Add(1)
		go func(p int32) {
			defer wg.Done()
			err := c.Recover(ctx, p)
			if err != nil && !errors.Is(err, core.ErrNotDown) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	return firstErr
}
