package cluster_test

// The paper's liveness assumption "does not exclude scenarios where all the
// processes crash, possibly at the same time, as long as a majority
// eventually recovers". These tests exercise exactly that: a simultaneous
// total crash with operations in flight, after which only a majority
// returns.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/core"
)

func TestTotalSimultaneousCrashMajorityRecovers(t *testing.T) {
	for _, kind := range []core.AlgorithmKind{core.Transient, core.Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newCluster(t, testConfig(5, kind))
			ctx := testCtx(t)
			if _, err := c.Write(ctx, 0, "x", []byte("pre-crash")); err != nil {
				t.Fatal(err)
			}

			// Launch operations at every process, then crash everyone while
			// they are (possibly) in flight.
			var wg sync.WaitGroup
			for p := int32(0); p < 5; p++ {
				wg.Add(1)
				go func(p int32) {
					defer wg.Done()
					_, err := c.Write(ctx, p, "x", []byte("in-flight"))
					if err != nil && !errors.Is(err, core.ErrCrashed) && !errors.Is(err, core.ErrDown) {
						t.Errorf("write at %d: %v", p, err)
					}
				}(p)
			}
			time.Sleep(2 * time.Millisecond)
			for p := int32(0); p < 5; p++ {
				c.Crash(p)
			}
			wg.Wait()

			// Only a majority comes back: {0, 1, 2}. The recoveries must be
			// concurrent — the persistent recovery's write-back round cannot
			// complete until a majority participates.
			var rg sync.WaitGroup
			for p := int32(0); p < 3; p++ {
				rg.Add(1)
				go func(p int32) {
					defer rg.Done()
					if err := c.Recover(ctx, p); err != nil {
						t.Errorf("recover %d: %v", p, err)
					}
				}(p)
			}
			rg.Wait()

			// The system is operational on the recovered majority.
			if _, err := c.Write(ctx, 1, "x", []byte("post-crash")); err != nil {
				t.Fatal(err)
			}
			val, _, err := c.Read(ctx, 2, "x")
			if err != nil {
				t.Fatal(err)
			}
			if string(val) != "post-crash" {
				t.Fatalf("read = %q", val)
			}
			mode := atomicity.Persistent
			if kind == core.Transient {
				mode = atomicity.Transient
			}
			if err := c.Check(mode); err != nil {
				t.Fatalf("check after total crash: %v", err)
			}
		})
	}
}

// TestRecoveryBlocksWithoutMajority: a single recovering process of the
// persistent algorithm cannot finish its recovery write-back until enough
// peers are up — recovery is a protocol participant, not a local reboot.
func TestRecoveryBlocksWithoutMajority(t *testing.T) {
	c := newCluster(t, testConfig(3, core.Persistent))
	ctx := testCtx(t)
	// Give process 0 a writing record so its recovery needs a round.
	if _, err := c.Write(ctx, 0, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < 3; p++ {
		c.Crash(p)
	}
	short, cancel := context.WithTimeout(ctx, 80*time.Millisecond)
	defer cancel()
	err := c.Recover(short, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("lone recovery returned %v, want deadline exceeded", err)
	}
	// With a second process back, recovery completes (2 of 3 is a majority).
	var wg sync.WaitGroup
	for _, p := range []int32{0, 1} {
		wg.Add(1)
		go func(p int32) {
			defer wg.Done()
			if err := c.Recover(ctx, p); err != nil {
				t.Errorf("recover %d: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	if _, err := c.Write(ctx, 0, "x", []byte("w")); err != nil {
		t.Fatal(err)
	}
}
