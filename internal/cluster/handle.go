package cluster

import (
	"context"
	"time"

	"recmem/internal/core"
	"recmem/internal/history"
	"recmem/internal/tag"
)

// Handle is a cached (process, register) operation handle: the core-level
// RegisterRef resolution (engine shard, submission queue, write lock)
// happens once at creation, and every operation through the handle records
// history and latency exactly like the Cluster-level methods. The public
// recmem.Register and the workload drivers are built on it.
type Handle struct {
	c    *Cluster
	proc int32
	reg  string
	ref  *core.RegisterRef
}

// Handle resolves a cached operation handle for (proc, reg).
func (c *Cluster) Handle(proc int32, reg string) *Handle {
	return &Handle{c: c, proc: proc, reg: reg, ref: c.nodes[proc].RegisterRef(reg)}
}

// Register returns the register name.
func (h *Handle) Register() string { return h.reg }

// Proc returns the process id the handle operates at.
func (h *Handle) Proc() int32 { return h.proc }

// writeObs builds the history observer of a synchronous write at proc. The
// recorded reply carries the operation's tag witness, so simulated
// histories are witness-complete exactly like merged live-mesh ones.
func (c *Cluster) writeObs(proc int32, reg string, val []byte) core.OpObserver {
	return core.OpObserver{
		OnInvoke: func(op uint64) { c.rec.InvokeWithID(proc, history.Write, op, reg, string(val)) },
		OnReturn: func(op uint64, _ []byte, wit tag.Tag) {
			c.rec.ReturnTagged(proc, history.Write, op, reg, "", wit)
		},
	}
}

// readObs builds the history observer of a synchronous read at proc.
func (c *Cluster) readObs(proc int32, reg string) core.OpObserver {
	return core.OpObserver{
		OnInvoke: func(op uint64) { c.rec.InvokeWithID(proc, history.Read, op, reg, "") },
		OnReturn: func(op uint64, v []byte, wit tag.Tag) {
			c.rec.ReturnTagged(proc, history.Read, op, reg, string(v), wit)
		},
	}
}

// Write invokes the write operation through the handle; semantics and
// recording match Cluster.Write.
func (h *Handle) Write(ctx context.Context, val []byte) (Report, error) {
	start := time.Now()
	op, wit, inc, err := h.ref.Write(ctx, val, h.c.writeObs(h.proc, h.reg, val))
	if err != nil {
		return Report{Op: op}, err
	}
	lat := time.Since(start)
	h.c.writeLat.Add(lat)
	return Report{Op: op, Latency: lat, Tag: wit, Epoch: inc}, nil
}

// Read invokes the read operation through the handle with the given
// read-consistency mode (core.ReadDefault for the algorithm's native read);
// semantics and recording match Cluster.Read.
func (h *Handle) Read(ctx context.Context, mode core.ReadMode) ([]byte, Report, error) {
	start := time.Now()
	val, op, wit, inc, err := h.ref.Read(ctx, mode, h.c.readObs(h.proc, h.reg))
	if err != nil {
		return nil, Report{Op: op}, err
	}
	lat := time.Since(start)
	h.c.readLat.Add(lat)
	return val, Report{Op: op, Latency: lat, Tag: wit, Epoch: inc}, nil
}

// SubmitWrite asynchronously writes through the handle's cached queue;
// history attribution matches Cluster.SubmitWrite (one-shot virtual client).
func (h *Handle) SubmitWrite(val []byte) (*core.Future, error) {
	vp := h.c.vproc.Add(1) - 1
	return h.ref.SubmitWrite(val, h.c.writeObs(vp, h.reg, val))
}

// SubmitRead asynchronously reads through the handle's cached queue;
// history attribution matches Cluster.SubmitRead.
func (h *Handle) SubmitRead(mode core.ReadMode) (*core.Future, error) {
	vp := h.c.vproc.Add(1) - 1
	return h.ref.SubmitRead(mode, h.c.readObs(vp, h.reg))
}
