package cluster_test

// Further recovery scenarios: concurrent recoveries racing their write-back
// rounds, crashes of readers mid-operation, and repeated crash-recovery of
// the same process under load.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/core"
	"recmem/internal/history"
	"recmem/internal/wire"
)

// TestDuelingRecoveries: two writers crash mid-write on the same register;
// both recover concurrently, racing their Fig. 4 recovery write-backs. The
// register must converge and the history must stay persistent-atomic.
func TestDuelingRecoveries(t *testing.T) {
	c := newCluster(t, testConfig(5, core.Persistent))
	ctx := testCtx(t)
	if _, err := c.Write(ctx, 4, "x", []byte("base")); err != nil {
		t.Fatal(err)
	}

	// Writers 0 and 1 start writes whose propagation is fully held.
	c.Net().SetFilter(func(e wire.Envelope) bool {
		return !(e.Kind == wire.KindWrite && (e.From == 0 || e.From == 1))
	})
	var done [2]chan error
	for w := 0; w < 2; w++ {
		done[w] = make(chan error, 1)
		go func(w int) {
			_, err := c.Write(ctx, int32(w), "x", []byte(fmt.Sprintf("duel-%d", w)))
			done[w] <- err
		}(w)
	}
	// Wait until both pre-logs exist, then crash both writers.
	waitUntil(t, 5*time.Second, "pre-logs", func() bool {
		for w := int32(0); w < 2; w++ {
			if _, ok, _ := c.Disk(w).Retrieve("writing/x"); !ok {
				return false
			}
		}
		return true
	})
	c.Crash(0)
	c.Crash(1)
	for w := 0; w < 2; w++ {
		if err := <-done[w]; !errors.Is(err, core.ErrCrashed) {
			t.Fatalf("writer %d returned %v", w, err)
		}
	}
	c.Net().SetFilter(nil)

	// Concurrent recoveries: both write-backs race.
	var wg sync.WaitGroup
	for w := int32(0); w < 2; w++ {
		wg.Add(1)
		go func(w int32) {
			defer wg.Done()
			if err := c.Recover(ctx, w); err != nil {
				t.Errorf("recover %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	// All readers agree on one final value, and it is one of the three
	// candidates.
	first, _, err := c.Read(ctx, 2, "x")
	if err != nil {
		t.Fatal(err)
	}
	switch string(first) {
	case "base", "duel-0", "duel-1":
	default:
		t.Fatalf("unexpected final value %q", first)
	}
	for p := int32(3); p < 5; p++ {
		got, _, err := c.Read(ctx, p, "x")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(first) {
			t.Fatalf("reader %d sees %q, reader 2 sees %q", p, got, first)
		}
	}
	if err := c.Check(atomicity.Persistent); err != nil {
		t.Fatalf("persistent check: %v", err)
	}
}

// TestReaderCrashMidRead: a reader crashing between its query round and its
// write-back leaves a pending read, which every criterion tolerates.
func TestReaderCrashMidRead(t *testing.T) {
	c := newCluster(t, testConfig(5, core.Persistent))
	ctx := testCtx(t)
	if _, err := c.Write(ctx, 0, "x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Let the read's query round pass but hold its write-back.
	c.Net().SetFilter(func(e wire.Envelope) bool {
		return !(e.Kind == wire.KindWriteBack && e.From == 2)
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Read(ctx, 2, "x")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Crash(2)
	if err := <-done; !errors.Is(err, core.ErrCrashed) {
		t.Fatalf("interrupted read returned %v", err)
	}
	c.Net().SetFilter(nil)
	if err := c.Recover(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// The pending read must appear in the history and not break anything.
	pendingReads := 0
	for _, op := range c.History().Operations() {
		if op.Type == history.Read && op.Pending() {
			pendingReads++
		}
	}
	if pendingReads != 1 {
		t.Fatalf("pending reads = %d, want 1", pendingReads)
	}
	if err := c.Check(atomicity.Persistent); err != nil {
		t.Fatal(err)
	}
}

// TestCrashLoopUnderLoad: one process crash-loops while the rest keep
// operating; after it finally stays up, it serves correct reads and the
// history checks out.
func TestCrashLoopUnderLoad(t *testing.T) {
	c := newCluster(t, testConfig(5, core.Persistent))
	ctx := testCtx(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writers on processes 0 and 1
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := c.Write(ctx, int32(i%2), "x", []byte(fmt.Sprintf("v%d", i)))
			if err != nil && !errors.Is(err, core.ErrCrashed) && !errors.Is(err, core.ErrDown) {
				t.Errorf("write: %v", err)
				return
			}
			i++
		}
	}()

	// Process 4 crash-loops.
	for cycle := 0; cycle < 8; cycle++ {
		c.Crash(4)
		time.Sleep(2 * time.Millisecond)
		if err := c.Recover(ctx, 4); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	close(stop)
	wg.Wait()

	if _, _, err := c.Read(ctx, 4, "x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Check(atomicity.Persistent); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioLazyRestartColdNamespace is the cluster-level conformance case
// for lazy core recovery (docs/adr/0009), on the real sharded engine: a
// process adopts a populated namespace, crash-loops — including a crash
// immediately after its restart, before anything is touched — and the fresh
// incarnation must serve a never-touched register as the zero state (⊥), a
// populated one correctly, report an O(pending) recovery footprint, and
// keep the whole history persistent-atomic.
func TestScenarioLazyRestartColdNamespace(t *testing.T) {
	cfg := testConfig(3, core.Persistent)
	cfg.DiskBackend = "sharded"
	cfg.DiskDir = t.TempDir()
	c := newCluster(t, cfg)
	ctx := testCtx(t)

	// Populate from processes 0 and 1 only: process 2 adopts the whole
	// namespace as a replica but never pre-logs a write, so its restart is a
	// pure-replica recovery with a genuinely empty writing/ set. (The
	// persistent algorithm keeps completed pre-logs forever — a writer's
	// recovery harmlessly re-finishes them, which would show up here as a
	// nonzero PendingWrites.)
	const regs = 120
	for i := 0; i < regs; i++ {
		if _, err := c.Write(ctx, int32(i%2), fmt.Sprintf("cold-%03d", i), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Crash, restart, and crash again straight away: the second incarnation
	// starts from an untouched lazy map, twice over.
	for cycle := 0; cycle < 2; cycle++ {
		if !c.Crash(2) {
			t.Fatalf("cycle %d: crash refused", cycle)
		}
		if err := c.Recover(ctx, 2); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if stats := c.LastRecovery(2); stats.PendingWrites != 0 {
		t.Fatalf("recovery finished %d pending writes on a quiescent crash", stats.PendingWrites)
	}

	// A register nothing ever wrote reads as ⊥ through the full protocol.
	if v, _, err := c.Read(ctx, 2, "never-touched"); err != nil || len(v) != 0 {
		t.Fatalf("read(never-touched) = %q, %v", v, err)
	}
	// Populated registers materialize on demand with their adopted values.
	for _, i := range []int{0, regs / 2, regs - 1} {
		v, _, err := c.Read(ctx, 2, fmt.Sprintf("cold-%03d", i))
		if err != nil || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("read(cold-%03d) = %q, %v", i, v, err)
		}
	}
	if err := c.Check(atomicity.Persistent); err != nil {
		t.Fatal(err)
	}
}
