package cluster_test

// Scenario tests: deterministic message schedules reproducing the paper's
// Figures 1-3 and the adversarial schedule of DESIGN.md §7. A gate installed
// as the network filter controls (a) which processes' acknowledgements each
// destination hears — pinning every round's quorum — and (b) which processes
// a writer's W messages reach — creating partially propagated ("floating")
// writes.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/tag"
	"recmem/internal/wire"
)

// gate is a scriptable message filter.
type gate struct {
	mu         sync.Mutex
	ackAllow   map[int32]map[int32]bool // dest -> allowed ack senders (nil = all)
	writeAllow map[int32]map[int32]bool // writer -> allowed W destinations (nil = all)
}

func newGate() *gate {
	return &gate{
		ackAllow:   make(map[int32]map[int32]bool),
		writeAllow: make(map[int32]map[int32]bool),
	}
}

func (g *gate) filter(e wire.Envelope) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e.Kind.IsAck() {
		if allowed := g.ackAllow[e.To]; allowed != nil && !allowed[e.From] {
			return false
		}
		return true
	}
	if e.Kind == wire.KindWrite {
		if allowed := g.writeAllow[e.From]; allowed != nil && !allowed[e.To] {
			return false
		}
	}
	return true
}

func set(ids ...int32) map[int32]bool {
	m := make(map[int32]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// hearAcksFrom pins the quorum of rounds run at dest: only acks from the
// given senders get through.
func (g *gate) hearAcksFrom(dest int32, senders ...int32) {
	g.mu.Lock()
	g.ackAllow[dest] = set(senders...)
	g.mu.Unlock()
}

// deliverWritesTo restricts W messages sent by writer to the given
// destinations (W only — read write-backs are unaffected).
func (g *gate) deliverWritesTo(writer int32, dests ...int32) {
	g.mu.Lock()
	g.writeAllow[writer] = set(dests...)
	g.mu.Unlock()
}

// clear lifts all restrictions (e.g. for a recovery procedure).
func (g *gate) clear() {
	g.mu.Lock()
	g.ackAllow = make(map[int32]map[int32]bool)
	g.writeAllow = make(map[int32]map[int32]bool)
	g.mu.Unlock()
}

// scenario wraps a cluster with gating and scripted crash helpers.
type scenario struct {
	t *testing.T
	c *cluster.Cluster
	g *gate
}

func newScenario(t *testing.T, cfg cluster.Config) *scenario {
	t.Helper()
	s := &scenario{t: t, c: newCluster(t, cfg), g: newGate()}
	s.c.Net().SetFilter(s.g.filter)
	return s
}

func (s *scenario) write(proc int32, reg, val string) {
	s.t.Helper()
	if _, err := s.c.Write(testCtx(s.t), proc, reg, []byte(val)); err != nil {
		s.t.Fatalf("write %s=%s at %d: %v", reg, val, proc, err)
	}
}

func (s *scenario) read(proc int32, reg string) string {
	s.t.Helper()
	val, _, err := s.c.Read(testCtx(s.t), proc, reg)
	if err != nil {
		s.t.Fatalf("read %s at %d: %v", reg, proc, err)
	}
	return string(val)
}

// waitValue polls until proc's volatile state for reg holds val.
func (s *scenario) waitValue(proc int32, reg, val string) {
	s.t.Helper()
	waitUntil(s.t, 5*time.Second, "adoption of "+val+" at node", func() bool {
		_, v, ok := s.c.Node(proc).RegisterState(reg)
		return ok && string(v) == val
	})
}

// crashDuringWrite starts a write of val at writer whose W messages reach
// only floatTarget and whose rounds hear acks only from queryQuorum; once
// floatTarget adopts the value, the writer crashes. The interrupted write
// stays pending. Restrictions are lifted afterwards, and the writer is
// recovered (its recovery procedure — if any — runs ungated).
func (s *scenario) crashDuringWrite(writer int32, reg, val string, floatTarget int32, queryQuorum ...int32) {
	s.t.Helper()
	s.g.hearAcksFrom(writer, queryQuorum...)
	s.g.deliverWritesTo(writer, floatTarget)
	done := make(chan error, 1)
	go func() {
		_, err := s.c.Write(testCtx(s.t), writer, reg, []byte(val))
		done <- err
	}()
	s.waitValue(floatTarget, reg, val)
	s.c.Crash(writer)
	if err := <-done; !errors.Is(err, core.ErrCrashed) {
		s.t.Fatalf("interrupted write returned %v", err)
	}
	s.g.clear()
	if err := s.c.Recover(testCtx(s.t), writer); err != nil {
		s.t.Fatalf("recover writer: %v", err)
	}
}

// TestFigure1TransientRun reproduces the left run of Figure 1 with the
// transient algorithm (Fig. 5): W(v1) completes; W(v2) crashes after
// reaching only p3; the writer recovers and starts W(v3); while W(v3) is in
// progress, two sequential reads return v1 and then v2 — the "overlapping
// write" behaviour. The history satisfies transient atomicity but violates
// persistent atomicity (property P1 of Theorem 1's proof).
func TestFigure1TransientRun(t *testing.T) {
	s := newScenario(t, testConfig(5, core.Transient))

	s.write(0, "x", "v1")
	for p := int32(0); p < 5; p++ {
		s.waitValue(p, "x", "v1") // full adoption so any quorum sees v1
	}
	// W(v2) reaches only p3, then the writer crashes and recovers.
	s.crashDuringWrite(0, "x", "v2", 3, 0, 1, 2)

	// W(v3) starts but its propagation is held: it stays in flight while
	// the reads run (the reads' invocations follow W(v3)'s in the history).
	s.g.hearAcksFrom(0, 0, 1, 2)
	s.g.deliverWritesTo(0 /* nobody */)
	v3done := make(chan error, 1)
	go func() {
		_, err := s.c.Write(testCtx(t), 0, "x", []byte("v3"))
		v3done <- err
	}()
	// Give W(v3)'s invocation time to be recorded before the reads start.
	waitUntil(t, 5*time.Second, "W(v3) invoked", func() bool {
		for _, op := range s.c.History().Operations() {
			if op.Value == "v3" {
				return true
			}
		}
		return false
	})

	// R1 at p1 hears {0,1,2}: none of them saw v2, so it returns v1.
	s.g.hearAcksFrom(1, 0, 1, 2)
	if got := s.read(1, "x"); got != "v1" {
		t.Fatalf("R1 = %q, want v1", got)
	}
	// R2 at p1 hears {1,2,3}: p3 holds v2 with the higher timestamp.
	s.g.hearAcksFrom(1, 1, 2, 3)
	if got := s.read(1, "x"); got != "v2" {
		t.Fatalf("R2 = %q, want v2", got)
	}

	// Release W(v3) and let it complete.
	s.g.clear()
	if err := <-v3done; err != nil {
		t.Fatalf("W(v3): %v", err)
	}
	if got := s.read(2, "x"); got != "v3" {
		t.Fatalf("final read = %q, want v3", got)
	}

	// The run is transient-atomic (the paper's witness: W(v1), R(v1),
	// W(v2), R(v2), W(v3)) but not persistent-atomic: a read invoked after
	// inv(W(v3)) returned v1, yet a subsequent read returned v2.
	if err := s.c.Check(atomicity.Transient); err != nil {
		t.Fatalf("transient check: %v", err)
	}
	if err := s.c.Check(atomicity.Persistent); err == nil {
		t.Fatal("persistent check accepted the overlapping-write run")
	}
}

// TestFigure2RunRho1Persistent replays the same schedule as Figure 1 against
// the persistent algorithm (Fig. 4). Its recovery finishes the interrupted
// W(v2) ("complete v2" — the only resolution of run ρ1 compatible with
// property P1), so the first read already returns v2 and the history is
// persistent-atomic.
func TestFigure2RunRho1Persistent(t *testing.T) {
	s := newScenario(t, testConfig(5, core.Persistent))

	s.write(0, "x", "v1")
	for p := int32(0); p < 5; p++ {
		s.waitValue(p, "x", "v1")
	}
	// W(v2) floats to p3; the writer crashes; recovery (ungated) completes
	// the write at a majority.
	s.crashDuringWrite(0, "x", "v2", 3, 0, 1, 2)

	// Same read pattern as the transient run.
	s.g.hearAcksFrom(1, 0, 1, 2)
	r1 := s.read(1, "x")
	s.g.hearAcksFrom(1, 1, 2, 3)
	r2 := s.read(1, "x")
	s.g.clear()
	s.write(0, "x", "v3")

	// P1: with the persistent algorithm, v2 was completed by recovery, so
	// no read after recovery can return v1.
	if r1 != "v2" || r2 != "v2" {
		t.Fatalf("reads = %q, %q; want v2, v2 (recovery must finish the write)", r1, r2)
	}
	if err := s.c.Check(atomicity.Persistent); err != nil {
		t.Fatalf("persistent check: %v", err)
	}
}

// TestFigure3ReaderMustLog demonstrates Theorem 2 ("no emulation can read
// without logging") by re-running run ρ4 against the UnsafeNoReadLog
// ablation: the reader observes the partially propagated v2, the write-back
// is adopted only in volatile memory, the adopters crash and recover, and a
// second read returns v1 — a transient-atomicity violation. The control run
// with read logging enabled returns v2 and passes.
func TestFigure3ReaderMustLog(t *testing.T) {
	run := func(t *testing.T, unsafe bool) (second string, err error) {
		cfg := testConfig(5, core.Persistent)
		cfg.Node.UnsafeNoReadLog = unsafe
		s := newScenario(t, cfg)

		s.write(0, "x", "v1")
		for p := int32(0); p < 5; p++ {
			s.waitValue(p, "x", "v1")
		}

		// W(v2) reaches only p3 and stays in flight (the writer never hears
		// the float's ack, so the operation keeps retransmitting).
		s.g.hearAcksFrom(0, 0, 1, 2)
		s.g.deliverWritesTo(0, 3)
		v2done := make(chan error, 1)
		go func() {
			_, err := s.c.Write(testCtx(t), 0, "x", []byte("v2"))
			v2done <- err
		}()
		s.waitValue(3, "x", "v2")

		// R1 at the reader p2 hears {2,3,4}: it sees p3's v2 and writes it
		// back to everyone (logged or not, depending on the ablation).
		s.g.hearAcksFrom(2, 2, 3, 4)
		if got := s.read(2, "x"); got != "v2" {
			t.Fatalf("R1 = %q, want v2", got)
		}
		// Wait for the write-back to reach p1 and p4's volatile state.
		s.waitValue(1, "x", "v2")
		s.waitValue(4, "x", "v2")

		// The reader and the other write-back adopters crash and recover;
		// only what was logged survives.
		for _, p := range []int32{1, 2, 4} {
			s.c.Crash(p)
		}
		for _, p := range []int32{1, 2, 4} {
			if err := s.c.Recover(testCtx(t), p); err != nil {
				t.Fatalf("recover %d: %v", p, err)
			}
		}

		// R2 at the recovered reader hears {1,2,4}.
		s.g.hearAcksFrom(2, 1, 2, 4)
		second = s.read(2, "x")

		// Unstick and finish the pending W(v2) so the cluster winds down.
		s.c.Crash(0)
		if err := <-v2done; !errors.Is(err, core.ErrCrashed) {
			t.Fatalf("W(v2) returned %v", err)
		}
		return second, s.c.Check(atomicity.Transient)
	}

	t.Run("ablation", func(t *testing.T) {
		second, err := run(t, true)
		if second != "v1" {
			t.Fatalf("R2 = %q, want v1 (unlogged write-back must be lost)", second)
		}
		var v *atomicity.Violation
		if !errors.As(err, &v) {
			t.Fatalf("expected transient violation, got %v", err)
		}
	})
	t.Run("control", func(t *testing.T) {
		second, err := run(t, false)
		if second != "v2" {
			t.Fatalf("R2 = %q, want v2 (read logging preserves the observed value)", second)
		}
		if err != nil {
			t.Fatalf("control run violated transient atomicity: %v", err)
		}
	})
}

// orphanSchedule drives the adversarial schedule of DESIGN.md §7: five
// crash-interrupted writes whose round-1 quorums alternately include the
// previous float holder (ratcheting a high "floating" timestamp onto p3/p4
// while {0,1,2} stay at zero), followed by two completed writes quorumed on
// {0,1,2} and a read that hears the float holder.
func orphanSchedule(t *testing.T, s *scenario) (readValue string) {
	t.Helper()
	s.crashDuringWrite(0, "x", "f1", 3, 0, 1, 2) // tag seq 1 -> p3
	s.crashDuringWrite(0, "x", "f2", 4, 0, 1, 3) // hears p3's 1
	s.crashDuringWrite(0, "x", "f3", 3, 0, 1, 4) // hears p4's
	s.crashDuringWrite(0, "x", "f4", 4, 0, 1, 3)
	s.crashDuringWrite(0, "x", "f5", 3, 0, 1, 4)

	// Two writes that complete on the low quorum {0,1,2}.
	s.g.hearAcksFrom(0, 0, 1, 2)
	s.g.deliverWritesTo(0, 0, 1, 2)
	s.write(0, "x", "v6")
	s.write(0, "x", "v7")

	// A read that hears the float holder p3.
	s.g.hearAcksFrom(1, 1, 2, 3)
	got := s.read(1, "x")
	s.g.clear()
	return got
}

// TestTransientOrphanDominance runs the adversarial schedule against the
// literal Fig. 5 algorithm: the orphaned timestamp outlives two completed
// writes, a read returns the orphan value, and the checker reports a
// transient-atomicity violation. The same schedule against the persistent
// algorithm is clean — its writer pre-log plus recovery write-back (the
// second causal log of Theorem 1) is exactly what prevents the orphan.
func TestTransientOrphanDominance(t *testing.T) {
	t.Run("transient-literal", func(t *testing.T) {
		s := newScenario(t, testConfig(5, core.Transient))
		got := orphanSchedule(t, s)
		if got != "f5" {
			t.Fatalf("read = %q, want the orphan f5", got)
		}
		var v *atomicity.Violation
		if err := s.c.Check(atomicity.Transient); !errors.As(err, &v) {
			t.Fatalf("expected transient violation, got %v", err)
		}
	})
	t.Run("persistent", func(t *testing.T) {
		s := newScenario(t, testConfig(5, core.Persistent))
		got := orphanSchedule(t, s)
		if got != "v7" {
			t.Fatalf("read = %q, want v7 (recovery flushes every float)", got)
		}
		if err := s.c.Check(atomicity.Persistent); err != nil {
			t.Fatalf("persistent check: %v", err)
		}
	})
}

// TestTransientTagCollision exposes the timestamp collision of the literal
// Fig. 5 transcription (DESIGN.md §7): after the schedule, a floating write
// and a later completed write carry the *same* [sn, pid] tag with different
// values. WithHardenedTags the recovery counter tiebreak keeps all tags
// distinct.
func TestTransientTagCollision(t *testing.T) {
	collect := func(t *testing.T, hardened bool) (float tag.Tag, floatVal string, low tag.Tag, lowVal string) {
		cfg := testConfig(5, core.Transient)
		cfg.Node.HardenedTags = hardened
		s := newScenario(t, cfg)
		// f3 floats onto p3 with sn = 6 (query max 3 at p4, rec 2):
		s.crashDuringWrite(0, "x", "f1", 3, 0, 1, 2) // sn 1 -> p3
		s.crashDuringWrite(0, "x", "f2", 4, 0, 1, 3) // sn 1+1+1 = 3 -> p4
		s.crashDuringWrite(0, "x", "f3", 3, 0, 1, 4) // sn 3+2+1 = 6 -> p3
		// ... and a completed write quorumed on the zeros mints sn = 0+5+1?
		// No: rec is 3 here, so sn = 0+3+1 = 4; write twice to reach 6 is
		// wrong — instead crash twice more without floats to pump rec to 5.
		s.c.Crash(0)
		if err := s.c.Recover(testCtx(t), 0); err != nil {
			t.Fatal(err)
		}
		s.c.Crash(0)
		if err := s.c.Recover(testCtx(t), 0); err != nil {
			t.Fatal(err)
		}
		// rec = 5: the completed write mints sn = 0 + 5 + 1 = 6 — colliding
		// with f3's floating tag at p3.
		s.g.hearAcksFrom(0, 0, 1, 2)
		s.g.deliverWritesTo(0, 0, 1, 2)
		s.write(0, "x", "v6")
		s.g.clear()

		ft, fv, _ := s.c.Node(3).RegisterState("x")
		lt, lv, _ := s.c.Node(1).RegisterState("x")
		return ft, string(fv), lt, string(lv)
	}

	t.Run("literal-collides", func(t *testing.T) {
		float, floatVal, low, lowVal := collect(t, false)
		if float != low {
			t.Fatalf("expected tag collision, got %v vs %v", float, low)
		}
		if floatVal == lowVal {
			t.Fatalf("expected different values under one tag, got %q", floatVal)
		}
		t.Logf("confused values: tag %v carries both %q and %q", float, floatVal, lowVal)
	})
	t.Run("hardened-distinct", func(t *testing.T) {
		float, floatVal, low, lowVal := collect(t, true)
		if floatVal == lowVal {
			t.Fatalf("values should differ, got %q", floatVal)
		}
		if float == low {
			t.Fatalf("hardened tags still collide: %v", float)
		}
		if float.Seq != low.Seq || float.Writer != low.Writer || float.Rec == low.Rec {
			t.Fatalf("expected same [sn,pid] disambiguated by rec, got %v vs %v", float, low)
		}
	})
}
