package cluster_test

import (
	"context"
	"testing"
	"time"

	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/workload"
)

func TestRegularClusterBasics(t *testing.T) {
	c := newCluster(t, testConfig(5, core.RegularSW))
	ctx := testCtx(t)
	if _, err := c.Write(ctx, core.RegularWriter, "x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	val, _, err := c.Read(ctx, 3, "x")
	if err != nil || string(val) != "v1" {
		t.Fatalf("read = %q, %v", val, err)
	}
	if err := c.VerifyDefault(); err != nil {
		t.Fatalf("regular verification: %v", err)
	}
	if err := c.CheckSafe(); err != nil {
		t.Fatalf("safe verification: %v", err)
	}
}

// TestRegularAsyncSubmittedWrites closes the PR-1 gap: RegularSW writes
// submitted through the batching engine are recorded as one-shot virtual
// clients, and CheckRegular now attributes them to the single writer —
// async histories verify directly against regularity.
func TestRegularAsyncSubmittedWrites(t *testing.T) {
	c := newCluster(t, testConfig(5, core.RegularSW))
	ctx := testCtx(t)
	// Interleave synchronous and submitted writes from the designated
	// writer with reads everywhere.
	if _, err := c.Write(ctx, core.RegularWriter, "x", []byte("s0")); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		futs := make([]*core.Future, 8)
		for j := range futs {
			f, err := c.SubmitWrite(core.RegularWriter, "x", []byte(workload.UniqueValue(0, round*100+j, 0)))
			if err != nil {
				t.Fatal(err)
			}
			futs[j] = f
		}
		for p := int32(1); p < 5; p++ {
			if _, _, err := c.Read(ctx, p, "x"); err != nil {
				t.Fatal(err)
			}
		}
		for _, f := range futs {
			if _, err := f.Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := c.Read(ctx, 2, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CheckRegular(); err != nil {
		t.Fatalf("async regular verification: %v", err)
	}
	if err := c.CheckSafe(); err != nil {
		t.Fatalf("async safe verification: %v", err)
	}
	// A non-writer still cannot submit.
	if _, err := c.SubmitWrite(1, "x", []byte("nope")); err == nil {
		t.Fatal("non-writer submission accepted")
	}
}

// TestRegularWorkloadUnderCrashRecovery: a single writer streams values
// while readers read everywhere and random crash/recovery runs; the history
// must be regular.
func TestRegularWorkloadUnderCrashRecovery(t *testing.T) {
	c := newCluster(t, testConfig(5, core.RegularSW))
	ctx := testCtx(t)

	faultCtx, stopFaults := context.WithTimeout(ctx, 600*time.Millisecond)
	defer stopFaults()
	faultsDone := make(chan int, 1)
	go func() {
		faultsDone <- c.RandomFaults(faultCtx, cluster.FaultOptions{Seed: 77, MeanInterval: 15 * time.Millisecond})
	}()

	writerDone := make(chan workload.Result, 1)
	go func() {
		writerDone <- workload.Run(ctx, c, []int32{core.RegularWriter}, 60,
			workload.Mix{ReadFraction: 0, Registers: []string{"x"}}, 7)
	}()
	readers := workload.Run(ctx, c, []int32{1, 2, 3, 4}, 40,
		workload.Mix{ReadFraction: 1, Registers: []string{"x"}}, 8)
	writes := <-writerDone
	crashes := <-faultsDone
	if err := c.RecoverAll(ctx); err != nil {
		t.Fatal(err)
	}
	if writes.Errors != 0 || readers.Errors != 0 {
		t.Fatalf("workload errors: writer %+v readers %+v", writes, readers)
	}
	t.Logf("writer %+v, readers %+v, %d crashes", writes, readers, crashes)
	if err := c.CheckRegular(); err != nil {
		t.Fatalf("regularity violated: %v", err)
	}
	if err := c.CheckSafe(); err != nil {
		t.Fatalf("safety violated: %v", err)
	}
}

// TestRegularReadsCheaperThanAtomic: with message gating producing a
// partially propagated write, the regular register's read costs no logs
// while the atomic read pays one.
func TestRegularVsAtomicReadCost(t *testing.T) {
	for _, kind := range []core.AlgorithmKind{core.RegularSW, core.Transient} {
		t.Run(kind.String(), func(t *testing.T) {
			c := newCluster(t, testConfig(5, kind))
			ctx := testCtx(t)
			if _, err := c.Write(ctx, 0, "x", []byte("v")); err != nil {
				t.Fatal(err)
			}
			waitUntil(t, 2*time.Second, "full adoption", func() bool {
				for p := int32(0); p < 5; p++ {
					tg, _, _ := c.Node(p).RegisterState("x")
					if tg.IsZero() {
						return false
					}
				}
				return true
			})
			_, rep, err := c.Read(ctx, 1, "x")
			if err != nil {
				t.Fatal(err)
			}
			wantRounds := 2
			if kind == core.RegularSW {
				wantRounds = 1
			}
			if tr := c.MsgTrace(rep.Op); tr.Rounds != wantRounds {
				t.Fatalf("rounds = %d, want %d", tr.Rounds, wantRounds)
			}
			if cost := c.LogCost(rep.Op); cost.Logs != 0 {
				t.Fatalf("quiescent read logged: %+v", cost)
			}
		})
	}
}
