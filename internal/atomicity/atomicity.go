// Package atomicity decides whether a history satisfies the consistency
// criteria of the paper: linearizability of complete crash-free histories
// (Herlihy & Wing, the crash-stop baseline), persistent atomicity (§III-B)
// and transient atomicity (§III-C).
//
// All three criteria share the same core question — does a legal sequential
// history exist that is equivalent to some completion of H and preserves H's
// operation precedence? — and differ only in how pending invocations may be
// completed:
//
//   - Linearizability: a pending invocation is absent, or its reply is
//     appended anywhere after the end of the history.
//   - Persistent atomicity: a pending invocation is absent, or its reply
//     appears before the subsequent invocation of the same process.
//   - Transient atomicity: a pending invocation is absent, or its reply
//     appears before the subsequent *write reply* of the same process
//     (allowing the paper's "overlapping writes" after a crash).
//
// Two observations make the search tractable without losing completeness:
//
//  1. Pending reads can always be dropped: keeping a completed read only adds
//     constraints, so if any completion linearizes, the one without the read
//     linearizes too.
//  2. For a kept pending write, placing the synthesized reply at the *latest*
//     position the criterion allows is optimal: moving a reply later only
//     removes precedence edges, so if any placement linearizes, the latest
//     placement does.
//
// The remaining choice — keep or drop each pending write — is folded into the
// sequential-witness search itself: a pending write may be "dropped" at any
// point of the search at no constraint, which explores all 2^k keep/drop
// combinations while sharing memoized states.
package atomicity

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"recmem/internal/history"
)

// Mode selects the consistency criterion to check.
type Mode int

// Supported criteria.
const (
	// Linearizable is the crash-stop criterion: atomicity of complete
	// histories, pending operations unconstrained (Herlihy & Wing).
	Linearizable Mode = iota + 1
	// Persistent is the paper's persistent atomicity: atomicity persists
	// through crashes.
	Persistent
	// Transient is the paper's transient atomicity: an unfinished write may
	// overlap the same writer's operations up to its next completed write.
	Transient
)

// String returns the criterion name.
func (m Mode) String() string {
	switch m {
	case Linearizable:
		return "linearizable"
	case Persistent:
		return "persistent-atomic"
	case Transient:
		return "transient-atomic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Violation describes why a history fails a criterion. It implements error.
type Violation struct {
	Mode   Mode
	Reg    string
	Reason string
	// Ops holds the operations of the offending register sub-history, in
	// invocation order, for diagnosis.
	Ops []history.Operation
}

// Error renders the violation with the offending operations.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s violation on register %q: %s", v.Mode, v.Reg, v.Reason)
	if len(v.Ops) > 0 && len(v.Ops) <= 40 {
		b.WriteString(" [")
		for i, op := range v.Ops {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(op.String())
		}
		b.WriteString("]")
	}
	return b.String()
}

// Check reports whether h satisfies the criterion, after validating
// well-formedness. Multi-register histories are checked per register
// (atomicity is a local property). A nil return means the history satisfies
// the criterion; otherwise the error is a *Violation (or a well-formedness
// error).
func Check(h history.History, mode Mode) error {
	if err := h.Validate(); err != nil {
		return err
	}
	for _, reg := range h.Registers() {
		if err := checkRegister(h.Restrict(reg), reg, mode); err != nil {
			return err
		}
	}
	return nil
}

// unbounded marks a synthesized reply that may be placed at the end of any
// extension of the history.
const unbounded = int64(math.MaxInt64)

// searchOp is an operation prepared for the sequential-witness search.
type searchOp struct {
	isWrite  bool
	value    string
	inv      int64
	ret      int64 // unbounded if the reply may float to the end
	optional bool  // pending write: may be dropped instead of linearized
}

func checkRegister(h history.History, reg string, mode Mode) error {
	all := h.Operations()
	ops := make([]searchOp, 0, len(all))
	for _, op := range all {
		s := searchOp{isWrite: op.Type == history.Write, value: op.Value, inv: op.Inv, ret: op.Ret}
		if op.Pending() {
			if op.Type == history.Read {
				// Observation 1: pending reads are always absent in the
				// chosen completion.
				continue
			}
			s.optional = true
			s.ret = pendingWriteBound(h, op, mode)
		}
		ops = append(ops, s)
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].inv < ops[j].inv })
	if ok := sequentialWitnessExists(ops, history.Bottom); !ok {
		return &Violation{
			Mode:   mode,
			Reg:    reg,
			Reason: "no legal sequential history is equivalent to any allowed completion",
			Ops:    all,
		}
	}
	return nil
}

// pendingWriteBound returns the latest global-clock position at which the
// criterion allows the synthesized reply of a pending write (observation 2:
// the latest allowed position is optimal). The reply must appear strictly
// before the bounding event, so the returned position is the bounding event's
// sequence number minus one.
func pendingWriteBound(h history.History, op history.Operation, mode Mode) int64 {
	switch mode {
	case Persistent:
		if next := h.NextInvocationAfter(op.Proc, op.Inv); next != 0 {
			return next - 1
		}
	case Transient:
		if next := h.NextWriteReturnAfter(op.Proc, op.Inv); next != 0 {
			return next - 1
		}
	}
	// Linearizable mode, or no bounding event exists: the reply floats to
	// the end of the (extended) history.
	return unbounded
}

// sequentialWitnessExists performs the memoized search for a legal sequential
// history: a permutation of the kept operations that respects precedence
// (op1 precedes op2 iff ret(op1) < inv(op2)) and the register's sequential
// specification (every read returns the latest previously written value, or
// the initial value). Operations marked optional may instead be dropped at
// any point.
func sequentialWitnessExists(ops []searchOp, initial string) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	words := (n + 63) / 64
	mask := make([]uint64, words)
	seen := make(map[string]struct{})

	key := func(mask []uint64, value string) string {
		var b strings.Builder
		b.Grow(words*8 + len(value))
		for _, w := range mask {
			for s := 0; s < 64; s += 8 {
				b.WriteByte(byte(w >> s))
			}
		}
		b.WriteString(value)
		return b.String()
	}
	isDealt := func(i int) bool { return mask[i/64]&(1<<(i%64)) != 0 }
	set := func(i int) { mask[i/64] |= 1 << (i % 64) }
	clear := func(i int) { mask[i/64] &^= 1 << (i % 64) }

	// blocked reports whether some un-dealt op other than i completed before
	// op i was invoked, i.e. precedes i and must be dealt with first.
	blocked := func(i int) bool {
		for j := 0; j < n; j++ {
			if j == i || isDealt(j) {
				continue
			}
			if ops[j].ret < ops[i].inv {
				return true
			}
		}
		return false
	}

	var rec func(value string, remaining int) bool
	rec = func(value string, remaining int) bool {
		if remaining == 0 {
			return true
		}
		k := key(mask, value)
		if _, ok := seen[k]; ok {
			return false
		}
		seen[k] = struct{}{}

		for i := 0; i < n; i++ {
			if isDealt(i) {
				continue
			}
			o := ops[i]
			if !blocked(i) {
				if o.isWrite {
					set(i)
					if rec(o.value, remaining-1) {
						return true
					}
					clear(i)
				} else if o.value == value {
					set(i)
					if rec(value, remaining-1) {
						return true
					}
					clear(i)
				}
			}
			if o.optional {
				// Declaring the pending write absent is always allowed and
				// imposes no constraints (even when linearizing is blocked:
				// whatever blocks it may itself be dropped later, and the
				// memoized search covers every interleaving of drops).
				set(i)
				if rec(value, remaining-1) {
					return true
				}
				clear(i)
			}
		}
		return false
	}
	return rec(initial, n)
}
