package atomicity

import (
	"errors"
	"math/rand"
	"testing"

	"recmem/internal/history"
)

// hb (history builder) assigns sequence numbers 1..n to the given events.
func hb(events ...history.Event) history.History {
	h := make(history.History, len(events))
	for i, e := range events {
		e.Seq = int64(i + 1)
		h[i] = e
	}
	return h
}

func inv(p int32, op history.OpType, id uint64, v string) history.Event {
	return history.Event{Proc: p, Kind: history.Invoke, Op: op, OpID: id, Reg: "x", Value: v}
}

func ret(p int32, op history.OpType, id uint64, v string) history.Event {
	return history.Event{Proc: p, Kind: history.Return, Op: op, OpID: id, Reg: "x", Value: v}
}

func crash(p int32) history.Event    { return history.Event{Proc: p, Kind: history.Crash} }
func recover1(p int32) history.Event { return history.Event{Proc: p, Kind: history.Recover} }

func allModes() []Mode { return []Mode{Linearizable, Persistent, Transient} }

func TestSequentialHistoryLegal(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(2, history.Read, 2, ""), ret(2, history.Read, 2, "a"),
		inv(1, history.Write, 3, "b"), ret(1, history.Write, 3, ""),
		inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "b"),
	)
	for _, m := range allModes() {
		if err := Check(h, m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestReadInitialValue(t *testing.T) {
	h := hb(
		inv(2, history.Read, 1, ""), ret(2, history.Read, 1, history.Bottom),
		inv(1, history.Write, 2, "a"), ret(1, history.Write, 2, ""),
	)
	for _, m := range allModes() {
		if err := Check(h, m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestStaleReadViolation(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(2, history.Read, 2, ""), ret(2, history.Read, 2, history.Bottom),
	)
	for _, m := range allModes() {
		err := Check(h, m)
		var v *Violation
		if !errors.As(err, &v) {
			t.Fatalf("%v: expected violation, got %v", m, err)
		}
		if v.Mode != m || v.Reg != "x" {
			t.Fatalf("%v: violation metadata wrong: %+v", m, v)
		}
	}
}

func TestReadOfNeverWrittenValue(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(2, history.Read, 2, ""), ret(2, history.Read, 2, "ghost"),
	)
	for _, m := range allModes() {
		if err := Check(h, m); err == nil {
			t.Fatalf("%v: accepted read of never-written value", m)
		}
	}
}

func TestNewOldInversionViolation(t *testing.T) {
	// Complete writes a then b; then two sequential reads observe b then a.
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "b"), ret(1, history.Write, 2, ""),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "b"),
		inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "a"),
	)
	for _, m := range allModes() {
		if err := Check(h, m); err == nil {
			t.Fatalf("%v: accepted new-old inversion", m)
		}
	}
}

func TestConcurrentReadsMayDisagreeWithPendingWrite(t *testing.T) {
	// W(b) is pending (writer crashed); one read sees it, a concurrent read
	// does not. Legal in every mode: the pending write linearizes between
	// the reads... but since the reads overlap each other, either order.
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "b"),
		crash(1),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "b"),
		inv(3, history.Read, 4, ""), ret(3, history.Read, 4, "a"),
	)
	// Reads are sequential (p2's completes before p3's starts): read b then
	// a. The pending write must linearize before p2's read, after which a is
	// stale: violation in every mode.
	for _, m := range allModes() {
		if err := Check(h, m); err == nil {
			t.Fatalf("%v: accepted stale read after observed pending write", m)
		}
	}
}

func TestPendingWriteMayBeAbsent(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "b"),
		crash(1),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "a"),
	)
	for _, m := range allModes() {
		if err := Check(h, m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestPendingWriteMayTakeEffect(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "b"),
		crash(1),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "b"),
	)
	for _, m := range allModes() {
		if err := Check(h, m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

// TestFigure1Distinguisher is the paper's Figure 1 scenario: W(v1) completes,
// W(v2) crashes mid-write, the writer recovers and runs W(v3); two sequential
// reads concurrent with W(v3) return v1 then v2. Transient atomicity allows
// it (the unfinished W(v2) overlaps W(v3) and linearizes between the reads —
// the paper's sequential witness W(v1), R(v1), W(v2), R(v2), W(v3));
// persistent atomicity forbids it (W(v2) must take effect before W(v3) is
// invoked, or never).
func TestFigure1Distinguisher(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "v1"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "v2"),
		crash(1),
		recover1(1),
		inv(1, history.Write, 3, "v3"),
		inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "v1"),
		inv(2, history.Read, 5, ""), ret(2, history.Read, 5, "v2"),
		ret(1, history.Write, 3, ""),
	)
	if err := Check(h, Transient); err != nil {
		t.Fatalf("transient should allow the overlapping-write run: %v", err)
	}
	if err := Check(h, Persistent); err == nil {
		t.Fatal("persistent should reject the overlapping-write run")
	}
	// Linearizability (which ignores crashes and lets pending replies float)
	// also allows it; the persistent criterion is strictly stronger exactly
	// because it bounds the completion at the next invocation.
	if err := Check(h, Linearizable); err != nil {
		t.Fatalf("linearizable baseline: %v", err)
	}
}

// TestTheorem1PropertyP1 checks the paper's property P1: under persistent
// atomicity, if a read invoked after the invocation of W(v3) returns v1,
// then no subsequent read returns v2.
func TestTheorem1PropertyP1(t *testing.T) {
	mk := func(r1, r2 string) history.History {
		return hb(
			inv(1, history.Write, 1, "v1"), ret(1, history.Write, 1, ""),
			inv(1, history.Write, 2, "v2"),
			crash(1),
			recover1(1),
			inv(1, history.Write, 3, "v3"),
			inv(2, history.Read, 4, ""), ret(2, history.Read, 4, r1),
			inv(2, history.Read, 5, ""), ret(2, history.Read, 5, r2),
			ret(1, history.Write, 3, ""),
		)
	}
	tests := []struct {
		r1, r2 string
		wantOK bool
	}{
		{"v1", "v1", true}, // v2 cancelled
		{"v1", "v3", true}, // v2 cancelled, v3 took effect
		{"v2", "v2", true}, // v2 completed before W(v3)
		{"v2", "v3", true},
		{"v3", "v3", true},
		{"v1", "v2", false}, // P1 violated: v1 then v2
		{"v2", "v1", false}, // plain new-old inversion
		{"v3", "v1", false},
		{"v3", "v2", false},
	}
	for _, tt := range tests {
		err := Check(mk(tt.r1, tt.r2), Persistent)
		if tt.wantOK && err != nil {
			t.Errorf("reads (%s,%s): unexpected violation: %v", tt.r1, tt.r2, err)
		}
		if !tt.wantOK && err == nil {
			t.Errorf("reads (%s,%s): persistent check accepted P1 violation", tt.r1, tt.r2)
		}
	}
}

// TestTheorem2RunRho4 encodes Figure 3: the reader reads v2, crashes,
// recovers, and reads v1 while W(v2) is still pending. No mode accepts it —
// which is why a reader that does not log cannot emulate even transient
// atomicity (the run is indistinguishable from the legal ρ2 and ρ3).
func TestTheorem2RunRho4(t *testing.T) {
	rho4 := hb(
		inv(1, history.Write, 1, "v1"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "v2"),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "v2"),
		crash(2),
		recover1(2),
		inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "v1"),
	)
	for _, m := range allModes() {
		if err := Check(rho4, m); err == nil {
			t.Fatalf("%v: accepted run rho4", m)
		}
	}
	// The two bordering runs are individually fine.
	rho2 := hb(
		inv(1, history.Write, 1, "v1"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "v2"),
		crash(2),
		recover1(2),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "v1"),
	)
	rho3 := hb(
		inv(1, history.Write, 1, "v1"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "v2"),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "v2"),
		crash(2),
		recover1(2),
	)
	for _, m := range allModes() {
		if err := Check(rho2, m); err != nil {
			t.Fatalf("%v rho2: %v", m, err)
		}
		if err := Check(rho3, m); err != nil {
			t.Fatalf("%v rho3: %v", m, err)
		}
	}
}

// TestTransientBoundIsNextWriteReply: after the writer's next write
// *completes*, the orphaned write may no longer take effect; a read that
// still observes it violates transient atomicity.
func TestTransientBoundIsNextWriteReply(t *testing.T) {
	// W(v2) pending; recovery; W(v3) completes; W(v4) completes; read
	// returns v2 afterwards. The completion bound for W(v2) is W(v3)'s
	// reply, so W(v2) precedes W(v4); reading v2 after W(v4) is illegal.
	h := hb(
		inv(1, history.Write, 1, "v1"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "v2"),
		crash(1),
		recover1(1),
		inv(1, history.Write, 3, "v3"), ret(1, history.Write, 3, ""),
		inv(1, history.Write, 4, "v4"), ret(1, history.Write, 4, ""),
		inv(2, history.Read, 5, ""), ret(2, history.Read, 5, "v2"),
	)
	if err := Check(h, Transient); err == nil {
		t.Fatal("transient accepted orphan value past the next completed write")
	}
	// But reading v2 while only W(v3) has completed and the read overlaps
	// nothing else is still a violation? No: the read starts after W(v3)'s
	// reply, and W(v2)'s completion bound is exactly that reply, so W(v2)
	// precedes the read's invocation — order W(v1) W(v2) W(v3) R(v2) is
	// illegal, but order W(v1) W(v3) W(v2) R(v2) requires W(v2) after
	// W(v3)... W(v2)'s reply (before reply(v3)) is before inv(R), and
	// W(v3) does not precede W(v2) (its reply is not before W(v2)'s
	// invocation? W(v2) was invoked before W(v3)) — they overlap, so the
	// witness W(v1) W(v3) W(v2) R(v2) is valid.
	h2 := hb(
		inv(1, history.Write, 1, "v1"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "v2"),
		crash(1),
		recover1(1),
		inv(1, history.Write, 3, "v3"), ret(1, history.Write, 3, ""),
		inv(2, history.Read, 5, ""), ret(2, history.Read, 5, "v2"),
	)
	if err := Check(h2, Transient); err != nil {
		t.Fatalf("transient should allow orphan observed before a second completed write: %v", err)
	}
	if err := Check(h2, Persistent); err == nil {
		t.Fatal("persistent should reject the orphan observed after W(v3) completed")
	}
}

func TestMultiRegisterIndependence(t *testing.T) {
	h := hb(
		history.Event{Proc: 1, Kind: history.Invoke, Op: history.Write, OpID: 1, Reg: "x", Value: "a"},
		history.Event{Proc: 1, Kind: history.Return, Op: history.Write, OpID: 1, Reg: "x"},
		history.Event{Proc: 2, Kind: history.Invoke, Op: history.Write, OpID: 2, Reg: "y", Value: "b"},
		history.Event{Proc: 2, Kind: history.Return, Op: history.Write, OpID: 2, Reg: "y"},
		history.Event{Proc: 3, Kind: history.Invoke, Op: history.Read, OpID: 3, Reg: "x"},
		history.Event{Proc: 3, Kind: history.Return, Op: history.Read, OpID: 3, Reg: "x", Value: "a"},
		history.Event{Proc: 3, Kind: history.Invoke, Op: history.Read, OpID: 4, Reg: "y"},
		history.Event{Proc: 3, Kind: history.Return, Op: history.Read, OpID: 4, Reg: "y", Value: history.Bottom},
	)
	err := Check(h, Persistent)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected violation on y, got %v", err)
	}
	if v.Reg != "y" {
		t.Fatalf("violation register = %q, want y", v.Reg)
	}
}

func TestIllFormedHistoryRejected(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"),
		inv(1, history.Write, 2, "b"),
	)
	if err := Check(h, Persistent); err == nil {
		t.Fatal("ill-formed history accepted")
	}
}

func TestLongSequentialHistoryFast(t *testing.T) {
	var events []history.Event
	id := uint64(1)
	for i := 0; i < 500; i++ {
		v := string(rune('a' + i%26))
		events = append(events,
			inv(1, history.Write, id, v), ret(1, history.Write, id, ""),
		)
		id++
		events = append(events,
			inv(2, history.Read, id, ""), ret(2, history.Read, id, v),
		)
		id++
	}
	h := hb(events...)
	for _, m := range allModes() {
		if err := Check(h, m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestViolationErrorString(t *testing.T) {
	v := &Violation{
		Mode:   Persistent,
		Reg:    "x",
		Reason: "why",
		Ops:    []history.Operation{{Proc: 1, Type: history.Write, Value: "v", Ret: history.PendingRet}},
	}
	got := v.Error()
	for _, want := range []string{"persistent-atomic", `"x"`, "why", "p1:W(v)?"} {
		if !contains(got, want) {
			t.Fatalf("Error() = %q missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// bruteWitness enumerates all permutations with keep/drop choices for
// optional operations — the ground truth for small inputs.
func bruteWitness(ops []searchOp, initial string) bool {
	n := len(ops)
	used := make([]bool, n)
	var perm func(value string, placed int) bool
	perm = func(value string, placed int) bool {
		if placed == n {
			return true
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Precedence: every un-placed op that returned before ops[i]'s
			// invocation must already be placed.
			ok := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && ops[j].ret < ops[i].inv {
					ok = false
					break
				}
			}
			if ok {
				if ops[i].isWrite {
					used[i] = true
					if perm(ops[i].value, placed+1) {
						return true
					}
					used[i] = false
				} else if ops[i].value == value {
					used[i] = true
					if perm(value, placed+1) {
						return true
					}
					used[i] = false
				}
			}
			if ops[i].optional {
				used[i] = true
				if perm(value, placed+1) {
					return true
				}
				used[i] = false
			}
		}
		return false
	}
	return perm(initial, 0)
}

// TestSearchAgreesWithBruteForce cross-checks the memoized search against
// exhaustive enumeration on thousands of random small operation sets.
func TestSearchAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := []string{"", "a", "b", "c"}
	for trial := 0; trial < 4000; trial++ {
		n := 1 + rng.Intn(6)
		ops := make([]searchOp, n)
		for i := range ops {
			invAt := int64(rng.Intn(10))
			retAt := invAt + int64(rng.Intn(6))
			op := searchOp{
				isWrite: rng.Intn(2) == 0,
				value:   values[rng.Intn(len(values))],
				inv:     invAt,
				ret:     retAt,
			}
			if op.isWrite && rng.Intn(4) == 0 {
				op.optional = true
				if rng.Intn(2) == 0 {
					op.ret = unbounded
				}
			}
			ops[i] = op
		}
		got := sequentialWitnessExists(ops, "")
		want := bruteWitness(ops, "")
		if got != want {
			t.Fatalf("trial %d: search=%v brute=%v for %+v", trial, got, want, ops)
		}
	}
}
