package atomicity

import (
	"math/rand"
	"testing"

	"recmem/internal/history"
)

// randomHistory generates a random well-formed history: at every step a
// random process takes a random legal action (invoke, return, crash,
// recover). Read replies return random values, so most histories violate
// most criteria — which is what exercises the implication directions.
func randomHistory(rng *rand.Rand, procs, steps int, singleWriter bool) history.History {
	type pstate int
	const (
		idle pstate = iota
		pendingRead
		pendingWrite
		down
	)
	var (
		h      history.History
		states = make([]pstate, procs)
		pend   = make([]uint64, procs)
		nextID = uint64(1)
		seq    = int64(1)
		values = []string{history.Bottom, "a", "b", "c"}
	)
	emit := func(e history.Event) {
		e.Seq = seq
		seq++
		h = append(h, e)
	}
	for s := 0; s < steps; s++ {
		p := int32(rng.Intn(procs))
		switch states[p] {
		case idle:
			switch rng.Intn(4) {
			case 0: // crash
				emit(history.Event{Proc: p, Kind: history.Crash})
				states[p] = down
			case 1: // read
				pend[p] = nextID
				nextID++
				emit(history.Event{Proc: p, Kind: history.Invoke, Op: history.Read, OpID: pend[p], Reg: "x"})
				states[p] = pendingRead
			default: // write
				if singleWriter && p != 0 {
					continue
				}
				pend[p] = nextID
				nextID++
				emit(history.Event{Proc: p, Kind: history.Invoke, Op: history.Write, OpID: pend[p], Reg: "x",
					Value: values[1+rng.Intn(3)]})
				states[p] = pendingWrite
			}
		case pendingRead:
			if rng.Intn(5) == 0 {
				emit(history.Event{Proc: p, Kind: history.Crash})
				states[p] = down
				continue
			}
			emit(history.Event{Proc: p, Kind: history.Return, Op: history.Read, OpID: pend[p], Reg: "x",
				Value: values[rng.Intn(len(values))]})
			states[p] = idle
		case pendingWrite:
			if rng.Intn(5) == 0 {
				emit(history.Event{Proc: p, Kind: history.Crash})
				states[p] = down
				continue
			}
			emit(history.Event{Proc: p, Kind: history.Return, Op: history.Write, OpID: pend[p], Reg: "x"})
			states[p] = idle
		case down:
			emit(history.Event{Proc: p, Kind: history.Recover})
			states[p] = idle
		}
	}
	return h
}

// TestCriterionHierarchy checks the paper's strength ordering on thousands
// of random histories: persistent atomicity implies transient atomicity
// implies linearizability (the three differ only in how much freedom the
// completion rule grants, in increasing order).
func TestCriterionHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var persistentOK, transientOK int
	for trial := 0; trial < 3000; trial++ {
		h := randomHistory(rng, 2+rng.Intn(2), 4+rng.Intn(10), false)
		if err := h.Validate(); err != nil {
			t.Fatalf("generator produced ill-formed history: %v", err)
		}
		p := Check(h, Persistent) == nil
		tr := Check(h, Transient) == nil
		l := Check(h, Linearizable) == nil
		if p {
			persistentOK++
		}
		if tr {
			transientOK++
		}
		if p && !tr {
			t.Fatalf("trial %d: persistent-atomic but not transient-atomic:\n%v", trial, h.Operations())
		}
		if tr && !l {
			t.Fatalf("trial %d: transient-atomic but not linearizable:\n%v", trial, h.Operations())
		}
	}
	if persistentOK == 0 || transientOK == persistentOK {
		t.Fatalf("generator not discriminating: persistent=%d transient=%d", persistentOK, transientOK)
	}
}

// TestSWHierarchy checks atomic ⊆ regular ⊆ safe on random single-writer
// histories.
func TestSWHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var linOK, regOK int
	for trial := 0; trial < 3000; trial++ {
		h := randomHistory(rng, 2+rng.Intn(2), 4+rng.Intn(10), true)
		l := Check(h, Linearizable) == nil
		r := CheckRegularSW(h) == nil
		s := CheckSafeSW(h) == nil
		if l {
			linOK++
		}
		if r {
			regOK++
		}
		if l && !r {
			t.Fatalf("trial %d: linearizable but not regular:\n%v", trial, h.Operations())
		}
		if r && !s {
			t.Fatalf("trial %d: regular but not safe:\n%v", trial, h.Operations())
		}
	}
	if linOK == 0 || regOK == linOK {
		t.Fatalf("generator not discriminating: lin=%d reg=%d", linOK, regOK)
	}
}
