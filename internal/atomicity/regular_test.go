package atomicity

import (
	"errors"
	"testing"

	"recmem/internal/history"
)

func TestRegularSequentialLegal(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(2, history.Read, 2, ""), ret(2, history.Read, 2, "a"),
		inv(1, history.Write, 3, "b"), ret(1, history.Write, 3, ""),
		inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "b"),
	)
	if err := CheckRegularSW(h); err != nil {
		t.Fatal(err)
	}
	if err := CheckSafeSW(h); err != nil {
		t.Fatal(err)
	}
}

func TestRegularInitialValue(t *testing.T) {
	h := hb(
		inv(2, history.Read, 1, ""), ret(2, history.Read, 1, history.Bottom),
	)
	if err := CheckRegularSW(h); err != nil {
		t.Fatal(err)
	}
}

func TestRegularStaleQuiescentReadViolation(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "b"), ret(1, history.Write, 2, ""),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "a"),
	)
	var v *Violation
	if err := CheckRegularSW(h); !errors.As(err, &v) {
		t.Fatalf("regular accepted stale quiescent read: %v", err)
	}
	if err := CheckSafeSW(h); !errors.As(err, &v) {
		t.Fatalf("safe accepted stale quiescent read: %v", err)
	}
}

func TestRegularConcurrentReadMayReturnEither(t *testing.T) {
	mk := func(val string) history.History {
		return hb(
			inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
			inv(1, history.Write, 2, "b"),
			inv(2, history.Read, 3, ""), ret(2, history.Read, 3, val),
			ret(1, history.Write, 2, ""),
		)
	}
	for _, val := range []string{"a", "b"} {
		if err := CheckRegularSW(mk(val)); err != nil {
			t.Fatalf("read of %q during write rejected: %v", val, err)
		}
	}
	if err := CheckRegularSW(mk("ghost")); err == nil {
		t.Fatal("regular accepted a never-written value")
	}
	// Safe allows anything while concurrent.
	if err := CheckSafeSW(mk("ghost")); err != nil {
		t.Fatalf("safe rejected concurrent garbage: %v", err)
	}
}

// TestRegularAllowsNewOldInversion is the defining difference from
// atomicity: two sequential reads may see the new value then the old one
// while the write is in progress.
func TestRegularAllowsNewOldInversion(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "b"),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "b"),
		inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "a"),
		ret(1, history.Write, 2, ""),
	)
	if err := CheckRegularSW(h); err != nil {
		t.Fatalf("regular must allow new-old inversion: %v", err)
	}
	// Atomicity forbids exactly this.
	if err := Check(h, Linearizable); err == nil {
		t.Fatal("linearizability accepted new-old inversion")
	}
}

// TestRegularPendingWriteStaysCandidate: a crashed write remains readable
// (the transient reading of regularity in the crash-recovery model).
func TestRegularPendingWriteStaysCandidate(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(1, history.Write, 2, "b"),
		crash(1),
		recover1(1),
		inv(2, history.Read, 3, ""), ret(2, history.Read, 3, "b"),
		inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "a"),
	)
	if err := CheckRegularSW(h); err != nil {
		t.Fatalf("pending write should stay a candidate: %v", err)
	}
}

func TestRegularRejectsMultiWriter(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(2, history.Write, 2, "b"), ret(2, history.Write, 2, ""),
	)
	var v *Violation
	if err := CheckRegularSW(h); !errors.As(err, &v) {
		t.Fatalf("expected multi-writer rejection, got %v", err)
	}
}

func TestRegularPendingReadIgnored(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
		inv(2, history.Read, 2, ""),
		crash(2),
	)
	if err := CheckRegularSW(h); err != nil {
		t.Fatal(err)
	}
}

func TestRegularIllFormedRejected(t *testing.T) {
	h := hb(
		inv(1, history.Write, 1, "a"),
		inv(1, history.Write, 2, "b"),
	)
	if err := CheckRegularSW(h); err == nil {
		t.Fatal("accepted ill-formed history")
	}
}

// TestRegularVirtualWritersOverlap: writes submitted through the batching
// engine are recorded under one-shot virtual clients (procs >= virtualFrom)
// and may overlap. A read after two overlapping completed writes may return
// either (both are maximal), but a value strictly superseded by a later
// non-overlapping write is a violation.
func TestRegularVirtualWritersOverlap(t *testing.T) {
	const virtualFrom = 3
	// Two overlapping virtual writes, then a read: either value is legal.
	mk := func(val string) history.History {
		return hb(
			inv(3, history.Write, 1, "a"),
			inv(4, history.Write, 2, "b"),
			ret(3, history.Write, 1, ""),
			ret(4, history.Write, 2, ""),
			inv(1, history.Read, 3, ""), ret(1, history.Read, 3, val),
		)
	}
	for _, val := range []string{"a", "b"} {
		if err := CheckRegularSWFrom(mk(val), virtualFrom); err != nil {
			t.Fatalf("overlapping virtual write %q rejected: %v", val, err)
		}
	}
	if err := CheckRegularSWFrom(mk("ghost"), virtualFrom); err == nil {
		t.Fatal("accepted a never-written value")
	}
	// The strict checker must still reject this as multi-writer.
	var v *Violation
	if err := CheckRegularSW(mk("a")); !errors.As(err, &v) {
		t.Fatalf("strict checker accepted multi-proc writes: %v", err)
	}

	// A write that completed strictly before a later completed write is no
	// longer a candidate for a read after both.
	stale := hb(
		inv(3, history.Write, 1, "a"), ret(3, history.Write, 1, ""),
		inv(4, history.Write, 2, "b"), ret(4, history.Write, 2, ""),
		inv(1, history.Read, 3, ""), ret(1, history.Read, 3, "a"),
	)
	if err := CheckRegularSWFrom(stale, virtualFrom); !errors.As(err, &v) {
		t.Fatalf("accepted a superseded virtual write: %v", err)
	}
}

// TestRegularVirtualAndSyncWriterMix: the synchronous single writer and its
// own submitted (virtual) writes coexist; a second real process writing is
// still rejected.
func TestRegularVirtualAndSyncWriterMix(t *testing.T) {
	const virtualFrom = 3
	h := hb(
		inv(0, history.Write, 1, "s"), ret(0, history.Write, 1, ""),
		inv(3, history.Write, 2, "v"),
		inv(1, history.Read, 3, ""), ret(1, history.Read, 3, "v"), // concurrent with the virtual write
		ret(3, history.Write, 2, ""),
		inv(1, history.Read, 4, ""), ret(1, history.Read, 4, "v"),
	)
	if err := CheckRegularSWFrom(h, virtualFrom); err != nil {
		t.Fatal(err)
	}
	if err := CheckSafeSWFrom(h, virtualFrom); err != nil {
		t.Fatal(err)
	}
	// Writes from two distinct real processes stay illegal.
	bad := hb(
		inv(0, history.Write, 1, "s"), ret(0, history.Write, 1, ""),
		inv(1, history.Write, 2, "t"), ret(1, history.Write, 2, ""),
	)
	var v *Violation
	if err := CheckRegularSWFrom(bad, virtualFrom); !errors.As(err, &v) {
		t.Fatalf("accepted two real writers: %v", err)
	}
}

// TestRegularVirtualPendingWrite: a virtual write left pending by a crash
// stays a candidate for later reads, like its synchronous counterpart.
func TestRegularVirtualPendingWrite(t *testing.T) {
	h := hb(
		inv(0, history.Write, 1, "a"), ret(0, history.Write, 1, ""),
		inv(3, history.Write, 2, "b"),
		crash(0),
		recover1(0),
		inv(1, history.Read, 3, ""), ret(1, history.Read, 3, "b"),
		inv(1, history.Read, 4, ""), ret(1, history.Read, 4, "a"),
	)
	if err := CheckRegularSWFrom(h, 3); err != nil {
		t.Fatalf("pending virtual write should stay a candidate: %v", err)
	}
}

// TestAtomicImpliesRegular: every linearizable single-writer history is
// regular (the paper's hierarchy: safe ⊂ regular ⊂ atomic).
func TestAtomicImpliesRegular(t *testing.T) {
	histories := []history.History{
		hb(
			inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
			inv(2, history.Read, 2, ""), ret(2, history.Read, 2, "a"),
		),
		hb(
			inv(1, history.Write, 1, "a"), ret(1, history.Write, 1, ""),
			inv(1, history.Write, 2, "b"),
			inv(3, history.Read, 3, ""), ret(3, history.Read, 3, "b"),
			ret(1, history.Write, 2, ""),
			inv(2, history.Read, 4, ""), ret(2, history.Read, 4, "b"),
		),
	}
	for i, h := range histories {
		if err := Check(h, Linearizable); err != nil {
			t.Fatalf("history %d not linearizable: %v", i, err)
		}
		if err := CheckRegularSW(h); err != nil {
			t.Fatalf("history %d linearizable but not regular: %v", i, err)
		}
		if err := CheckSafeSW(h); err != nil {
			t.Fatalf("history %d regular but not safe: %v", i, err)
		}
	}
}
