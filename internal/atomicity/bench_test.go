package atomicity

import (
	"fmt"
	"math/rand"
	"testing"

	"recmem/internal/history"
)

// legalHistory builds a linearizable history with the given number of
// operations: rotating writers write unique values, a reader reads the
// latest after each write, with a bounded amount of overlap injected by
// leaving some writes pending until later.
func legalHistory(ops int) history.History {
	var (
		h   history.History
		seq = int64(1)
		id  = uint64(1)
	)
	emit := func(e history.Event) {
		e.Seq = seq
		seq++
		h = append(h, e)
	}
	last := history.Bottom
	for i := 0; i < ops/2; i++ {
		w := int32(i % 3)
		val := fmt.Sprintf("v%d", i)
		wid := id
		id++
		emit(history.Event{Proc: w, Kind: history.Invoke, Op: history.Write, OpID: wid, Reg: "x", Value: val})
		emit(history.Event{Proc: w, Kind: history.Return, Op: history.Write, OpID: wid, Reg: "x"})
		last = val
		rid := id
		id++
		emit(history.Event{Proc: 3, Kind: history.Invoke, Op: history.Read, OpID: rid, Reg: "x"})
		emit(history.Event{Proc: 3, Kind: history.Return, Op: history.Read, OpID: rid, Reg: "x", Value: last})
	}
	return h
}

// concurrentHistory builds a history with heavy overlap: k writers invoke
// concurrently, then all return, then readers read any of the written
// values — a worst-ish case for the witness search.
func concurrentHistory(rounds, writers int) history.History {
	var (
		h   history.History
		seq = int64(1)
		id  = uint64(1)
	)
	emit := func(e history.Event) {
		e.Seq = seq
		seq++
		h = append(h, e)
	}
	rng := rand.New(rand.NewSource(5))
	for r := 0; r < rounds; r++ {
		ids := make([]uint64, writers)
		vals := make([]string, writers)
		for w := 0; w < writers; w++ {
			ids[w] = id
			id++
			vals[w] = fmt.Sprintf("r%dw%d", r, w)
			emit(history.Event{Proc: int32(w), Kind: history.Invoke, Op: history.Write, OpID: ids[w], Reg: "x", Value: vals[w]})
		}
		for w := 0; w < writers; w++ {
			emit(history.Event{Proc: int32(w), Kind: history.Return, Op: history.Write, OpID: ids[w], Reg: "x"})
		}
		rid := id
		id++
		emit(history.Event{Proc: int32(writers), Kind: history.Invoke, Op: history.Read, OpID: rid, Reg: "x"})
		emit(history.Event{Proc: int32(writers), Kind: history.Return, Op: history.Read, OpID: rid, Reg: "x",
			Value: vals[rng.Intn(writers)]})
	}
	return h
}

func BenchmarkCheckSequential(b *testing.B) {
	for _, ops := range []int{100, 1000} {
		h := legalHistory(ops)
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Check(h, Persistent); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCheckConcurrent(b *testing.B) {
	for _, writers := range []int{3, 5} {
		h := concurrentHistory(40, writers)
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := Check(h, Transient); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCheckerScalesToLongHistories guards against accidental exponential
// blowup on realistic (mostly sequential) histories.
func TestCheckerScalesToLongHistories(t *testing.T) {
	h := legalHistory(4000)
	for _, m := range []Mode{Linearizable, Persistent, Transient} {
		if err := Check(h, m); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
	hc := concurrentHistory(100, 4)
	if err := Check(hc, Transient); err != nil {
		t.Fatalf("concurrent: %v", err)
	}
}
