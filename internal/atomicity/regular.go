package atomicity

import (
	"fmt"

	"recmem/internal/history"
)

// Regular and safe registers (§VI of the paper, after Lamport's original
// single-writer definitions):
//
//   - A safe read that is not concurrent with any write returns the last
//     written value; a read concurrent with a write may return anything.
//   - A regular read returns the last value written before the read's
//     invocation, or the value of any write concurrent with the read.
//     Unlike atomicity, new-old inversion between two sequential reads is
//     allowed.
//
// In the crash-recovery model, a write interrupted by a crash has no reply;
// following the transient reading of the paper, such a pending write remains
// a "concurrent" candidate for later reads (its effect may surface until the
// writer's next write propagates past it). The checkers below implement
// these per-read candidate semantics directly — no search is needed because
// the single writer totally orders the writes.
//
// The single writer may additionally issue writes through the batching
// engine's asynchronous submission API, which the harness records as
// one-shot virtual clients (process ids from the cluster size upwards).
// Those writes can overlap each other and the writer's synchronous writes,
// so "the last write before the read" generalizes to the maximal completed
// writes: a completed write is a valid last-write candidate unless another
// write began after it completed and itself completed before the read —
// only such a strictly later write is guaranteed to supersede it. With a
// purely sequential writer the maximal set is exactly the classic unique
// last write, so the strict checkers are unchanged by the generalization.

// CheckRegularSW verifies a well-formed single-writer history against
// regularity (with the pending-write reading above). Multi-register
// histories are checked per register. It returns a *Violation (with Mode
// left zero and a textual reason) on failure.
func CheckRegularSW(h history.History) error {
	return checkSW(h, true, -1)
}

// CheckRegularSWFrom is CheckRegularSW for histories whose writes may also
// come from the one-shot virtual clients of asynchronous submissions:
// processes with ids >= virtualFrom are virtual, their writes are attributed
// to the single writer and may overlap; all writes from real processes
// (below virtualFrom) must still come from one process.
func CheckRegularSWFrom(h history.History, virtualFrom int32) error {
	return checkSW(h, true, virtualFrom)
}

// CheckSafeSW verifies a well-formed single-writer history against safety:
// only reads not concurrent with any write are constrained.
func CheckSafeSW(h history.History) error {
	return checkSW(h, false, -1)
}

// CheckSafeSWFrom is CheckSafeSW with the virtual-client attribution of
// CheckRegularSWFrom.
func CheckSafeSWFrom(h history.History, virtualFrom int32) error {
	return checkSW(h, false, virtualFrom)
}

func checkSW(h history.History, regular bool, virtualFrom int32) error {
	if err := h.Validate(); err != nil {
		return err
	}
	for _, reg := range h.Registers() {
		if err := checkSWRegister(h.Restrict(reg), reg, regular, virtualFrom); err != nil {
			return err
		}
	}
	return nil
}

func checkSWRegister(h history.History, reg string, regular bool, virtualFrom int32) error {
	criterion := "safe"
	if regular {
		criterion = "regular"
	}
	all := h.Operations()
	var (
		writes []history.Operation
		reads  []history.Operation
		writer = int32(-1)
	)
	for _, op := range all {
		switch op.Type {
		case history.Write:
			if virtualFrom < 0 || op.Proc < virtualFrom {
				if writer == -1 {
					writer = op.Proc
				} else if writer != op.Proc {
					return &Violation{
						Reg:    reg,
						Reason: fmt.Sprintf("%s register checker requires a single writer; saw writes from p%d and p%d", criterion, writer, op.Proc),
						Ops:    all,
					}
				}
			}
			writes = append(writes, op)
		case history.Read:
			if !op.Pending() {
				reads = append(reads, op)
			}
		}
	}

	for _, r := range reads {
		// Partition the writes relative to this read, tracking the latest
		// invocation among those completed before it: a completed write is
		// maximal — still a readable candidate — iff no completed write
		// began after it returned, i.e. its return is at or past that
		// latest invocation.
		concurrent := false
		candidates := make(map[string]bool)
		var completed []history.Operation
		maxInv := int64(-1)
		for i := range writes {
			w := &writes[i]
			if !w.Pending() && w.Ret < r.Inv {
				completed = append(completed, *w)
				if w.Inv > maxInv {
					maxInv = w.Inv
				}
				continue
			}
			// Pending, or overlapping the read.
			if w.Inv < r.Ret {
				concurrent = true
				candidates[w.Value] = true
			}
		}
		if len(completed) == 0 {
			candidates[history.Bottom] = true
		}
		for _, w := range completed {
			if w.Ret >= maxInv {
				candidates[w.Value] = true
			}
		}
		if !regular && concurrent {
			continue // a safe read concurrent with a write may return anything
		}
		if !candidates[r.Value] {
			return &Violation{
				Reg:    reg,
				Reason: fmt.Sprintf("%s register read returned %q, not a latest completed or a concurrent write", criterion, r.Value),
				Ops:    all,
			}
		}
	}
	return nil
}
