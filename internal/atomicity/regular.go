package atomicity

import (
	"fmt"

	"recmem/internal/history"
)

// Regular and safe registers (§VI of the paper, after Lamport's original
// single-writer definitions):
//
//   - A safe read that is not concurrent with any write returns the last
//     written value; a read concurrent with a write may return anything.
//   - A regular read returns the last value written before the read's
//     invocation, or the value of any write concurrent with the read.
//     Unlike atomicity, new-old inversion between two sequential reads is
//     allowed.
//
// In the crash-recovery model, a write interrupted by a crash has no reply;
// following the transient reading of the paper, such a pending write remains
// a "concurrent" candidate for later reads (its effect may surface until the
// writer's next write propagates past it). The checkers below implement
// these per-read candidate semantics directly — no search is needed because
// the single writer totally orders the writes.

// CheckRegularSW verifies a well-formed single-writer history against
// regularity (with the pending-write reading above). Multi-register
// histories are checked per register. It returns a *Violation (with Mode
// left zero and a textual reason) on failure.
func CheckRegularSW(h history.History) error {
	return checkSW(h, true)
}

// CheckSafeSW verifies a well-formed single-writer history against safety:
// only reads not concurrent with any write are constrained.
func CheckSafeSW(h history.History) error {
	return checkSW(h, false)
}

func checkSW(h history.History, regular bool) error {
	if err := h.Validate(); err != nil {
		return err
	}
	for _, reg := range h.Registers() {
		if err := checkSWRegister(h.Restrict(reg), reg, regular); err != nil {
			return err
		}
	}
	return nil
}

func checkSWRegister(h history.History, reg string, regular bool) error {
	criterion := "safe"
	if regular {
		criterion = "regular"
	}
	all := h.Operations()
	var (
		writes []history.Operation
		reads  []history.Operation
		writer = int32(-1)
	)
	for _, op := range all {
		switch op.Type {
		case history.Write:
			if writer == -1 {
				writer = op.Proc
			} else if writer != op.Proc {
				return &Violation{
					Reg:    reg,
					Reason: fmt.Sprintf("%s register checker requires a single writer; saw writes from p%d and p%d", criterion, writer, op.Proc),
					Ops:    all,
				}
			}
			writes = append(writes, op)
		case history.Read:
			if !op.Pending() {
				reads = append(reads, op)
			}
		}
	}

	for _, r := range reads {
		// The last write completed before the read's invocation. The single
		// writer is sequential, so completed writes are ordered by Inv.
		var last *history.Operation
		concurrent := false
		candidates := make(map[string]bool)
		for i := range writes {
			w := &writes[i]
			if !w.Pending() && w.Ret < r.Inv {
				if last == nil || w.Inv > last.Inv {
					last = w
				}
				continue
			}
			// Pending, or overlapping the read.
			if w.Inv < r.Ret {
				concurrent = true
				candidates[w.Value] = true
			}
		}
		if last != nil {
			candidates[last.Value] = true
		} else {
			candidates[history.Bottom] = true
		}
		if !regular && concurrent {
			continue // a safe read concurrent with a write may return anything
		}
		if !candidates[r.Value] {
			return &Violation{
				Reg:    reg,
				Reason: fmt.Sprintf("%s register read returned %q, not the latest completed or a concurrent write", criterion, r.Value),
				Ops:    all,
			}
		}
	}
	return nil
}
