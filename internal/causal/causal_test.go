package causal

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAfter(t *testing.T) {
	if After(0) != 1 || After(1) != 2 {
		t.Fatal("After must extend the chain by one")
	}
}

func TestMaxDepth(t *testing.T) {
	tests := []struct {
		give []int
		want int
	}{
		{nil, 0},
		{[]int{0}, 0},
		{[]int{1, 3, 2}, 3},
		{[]int{2, 2}, 2},
	}
	for _, tt := range tests {
		if got := MaxDepth(tt.give...); got != tt.want {
			t.Fatalf("MaxDepth(%v) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

// TestAlgorithmAvsAPrime reproduces the paper's §I-B calibration: algorithm A
// (writer logs before broadcasting; replicas log on receipt) costs 2 causal
// logs; algorithm A′ (all logs in parallel on receipt) costs 1.
func TestAlgorithmAvsAPrime(t *testing.T) {
	const replicas = 4

	// Algorithm A.
	m := NewMeter()
	depth := 0
	depth = After(depth) // writer logs first
	m.RecordLog(1, depth, 8)
	for i := 0; i < replicas; i++ {
		m.RecordLog(1, After(depth), 8) // each replica extends the writer's chain
	}
	if got := m.Cost(1); got.CausalDepth != 2 || got.Logs != 1+replicas {
		t.Fatalf("algorithm A cost = %+v, want depth 2, logs %d", got, 1+replicas)
	}

	// Algorithm A′.
	m = NewMeter()
	for i := 0; i < replicas+1; i++ { // writer included, all parallel
		m.RecordLog(2, After(0), 8)
	}
	if got := m.Cost(2); got.CausalDepth != 1 || got.Logs != replicas+1 {
		t.Fatalf("algorithm A' cost = %+v, want depth 1, logs %d", got, replicas+1)
	}
}

func TestMeterAggregation(t *testing.T) {
	m := NewMeter()
	m.RecordLog(7, 1, 10)
	m.RecordLog(7, 2, 20)
	m.RecordLog(7, 1, 5)
	c := m.Cost(7)
	if c.Logs != 3 || c.CausalDepth != 2 || c.Bytes != 35 {
		t.Fatalf("Cost = %+v", c)
	}
	if m.Cost(8) != (OpCost{}) {
		t.Fatal("unknown op should have zero cost")
	}
	if m.TotalLogs() != 3 {
		t.Fatalf("TotalLogs = %d", m.TotalLogs())
	}
	m.Reset()
	if m.TotalLogs() != 0 || m.Cost(7) != (OpCost{}) {
		t.Fatal("Reset did not clear")
	}
}

func TestMeterConcurrent(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.RecordLog(uint64(w), i%5, 1)
			}
		}(w)
	}
	wg.Wait()
	if m.TotalLogs() != 8000 {
		t.Fatalf("TotalLogs = %d, want 8000", m.TotalLogs())
	}
	for w := uint64(0); w < 8; w++ {
		c := m.Cost(w)
		if c.Logs != 1000 || c.CausalDepth != 4 || c.Bytes != 1000 {
			t.Fatalf("op %d cost = %+v", w, c)
		}
	}
}

func TestMaxDepthNeverBelowInputs(t *testing.T) {
	f := func(a, b, c uint8) bool {
		m := MaxDepth(int(a), int(b), int(c))
		return m >= int(a) && m >= int(b) && m >= int(c) &&
			(m == int(a) || m == int(b) || m == int(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
