// Package causal implements the paper's log-complexity metric (§I-B): the
// number of *causal logs* of an operation is the length of the longest chain
// of causally ordered (Lamport happened-before) store operations performed on
// behalf of the operation between its invocation and its reply.
//
// The metric is made executable by threading a depth counter through the
// protocol: an operation starts with depth 0; every message sent on behalf of
// the operation carries the depth of the log chain that causally precedes it;
// a process that logs while handling such a message extends the chain
// (depth+1) and propagates the new depth in its acknowledgement. The
// operation's cost is the maximum depth reached.
//
// The paper's two illustrative write algorithms calibrate the metric:
// algorithm A (writer logs, then everyone else logs) costs 2 causal logs and
// 2δ+2λ wall time; algorithm A′ (everyone logs in parallel) costs 1 causal
// log and 2δ+λ.
package causal

import "sync"

// After returns the depth of a log chain extended by one store that causally
// follows a chain of the given depth.
func After(depth int) int { return depth + 1 }

// MaxDepth returns the largest of the given chain depths (0 if none), i.e.
// the depth of the join of several causal chains.
func MaxDepth(depths ...int) int {
	max := 0
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	return max
}

// OpCost aggregates the stable-storage activity of one operation (or one
// recovery procedure).
type OpCost struct {
	// Logs is the total number of store operations performed on behalf of
	// the operation, across all processes (parallel logs all count).
	Logs int
	// CausalDepth is the paper's metric: the length of the longest causal
	// chain of those logs.
	CausalDepth int
	// Bytes is the total number of bytes written to stable storage.
	Bytes int
}

// Meter aggregates per-operation log costs for a run. Safe for concurrent
// use. The zero value is not ready; use NewMeter.
type Meter struct {
	mu  sync.Mutex
	ops map[uint64]OpCost
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{ops: make(map[uint64]OpCost)}
}

// RecordLog records one store of the given size performed at causal chain
// depth on behalf of operation op.
func (m *Meter) RecordLog(op uint64, depth, bytes int) {
	m.mu.Lock()
	c := m.ops[op]
	c.Logs++
	if depth > c.CausalDepth {
		c.CausalDepth = depth
	}
	c.Bytes += bytes
	m.ops[op] = c
	m.mu.Unlock()
}

// Cost returns the accumulated cost of operation op. The zero OpCost is
// returned for operations that never logged — which is itself meaningful
// (e.g. quiescent reads of the optimal emulations log nowhere).
func (m *Meter) Cost(op uint64) OpCost {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops[op]
}

// TotalLogs returns the total number of stores recorded across all
// operations.
func (m *Meter) TotalLogs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, c := range m.ops {
		total += c.Logs
	}
	return total
}

// Reset forgets all recorded costs.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.ops = make(map[uint64]OpCost)
	m.mu.Unlock()
}
