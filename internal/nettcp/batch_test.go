package nettcp

import (
	"testing"
	"time"

	"recmem/internal/transport"
	"recmem/internal/wire"
)

func TestSendBatchOverTCP(t *testing.T) {
	meshes := newMeshes(t, 2)
	envs := []wire.Envelope{
		{Kind: wire.KindSNQuery, To: 1, Reg: "a", RPC: 1, Op: 10},
		{Kind: wire.KindWrite, To: 1, Reg: "b", RPC: 2, Op: 11, Value: []byte("batched")},
		{Kind: wire.KindRead, To: 1, Reg: "c", RPC: 3, Op: 12},
	}
	transport.SendAll(meshes[0], envs)
	for i := range envs {
		select {
		case got := <-meshes[1].Recv():
			if got.From != 0 || got.Kind != envs[i].Kind || got.Reg != envs[i].Reg {
				t.Fatalf("delivery %d: got %+v want %+v", i, got, envs[i])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no delivery for envelope %d", i)
		}
	}
}

func TestSendBatchLoopback(t *testing.T) {
	meshes := newMeshes(t, 2)
	meshes[1].SendBatch([]wire.Envelope{
		{Kind: wire.KindSNQuery, To: 1, Reg: "x", RPC: 1},
		{Kind: wire.KindRead, To: 1, Reg: "y", RPC: 2},
	})
	for i := 0; i < 2; i++ {
		select {
		case got := <-meshes[1].Recv():
			if got.From != 1 {
				t.Fatalf("got %+v", got)
			}
		case <-time.After(time.Second):
			t.Fatal("no loopback delivery")
		}
	}
}

// TestSendBatchSplitsOversizedBursts: a burst whose single-frame encoding
// would exceed the receiver's frame limit must be split, not dropped (a
// rejected frame would be rebuilt identically by every retransmission and
// never get through).
func TestSendBatchSplitsOversizedBursts(t *testing.T) {
	meshes := newMeshes(t, 2)
	val := make([]byte, wire.MaxValueSize)
	const burst = 300 // ~19 MB encoded, beyond the 16 MB frame limit
	envs := make([]wire.Envelope, burst)
	for i := range envs {
		envs[i] = wire.Envelope{
			Kind: wire.KindWrite, To: 1, Reg: "r", RPC: uint64(i + 1), Value: val,
		}
	}
	meshes[0].SendBatch(envs)
	deadline := time.After(30 * time.Second)
	for got := 0; got < burst; got++ {
		select {
		case <-meshes[1].Recv():
		case <-deadline:
			t.Fatalf("received %d of %d envelopes — oversized batch not split", got, burst)
		}
	}
}
