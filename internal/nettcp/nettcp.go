// Package nettcp is the real-network counterpart of internal/netsim: a TCP
// mesh connecting the processes of an emulation across machines, as in the
// paper's measurements on a LAN of workstations. Each process listens on one
// address; envelopes are length-prefixed frames of the internal/wire codec.
//
// The transport deliberately keeps fair-lossy semantics even though TCP is
// reliable per connection: a send with no live connection drops the envelope
// (the protocol rounds retransmit), connection failures lose buffered
// frames, and receive-queue overflow drops too. The emulation algorithms
// assume nothing stronger.
package nettcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"recmem/internal/transport"
	"recmem/internal/wire"
)

// maxFrame bounds a frame: large enough for a batch frame carrying maximal
// values for many registers, small enough to reject garbage length prefixes.
const maxFrame = 16 << 20

// maxPooledFrame caps the capacity a recycled send buffer may retain: a
// rare giant batch frame reverts to the allocator instead of pinning its
// memory in the pool forever.
const maxPooledFrame = 1 << 20

// frameBuf is a reusable send-path frame buffer.
type frameBuf struct{ b []byte }

// framePool recycles send-path frame buffers, so the steady-state encode
// path allocates nothing: the frame (length prefix included) is appended
// into a recycled buffer and handed straight to the socket.
var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} }}

func getFrameBuf() *frameBuf { return framePool.Get().(*frameBuf) }

func putFrameBuf(f *frameBuf) {
	if cap(f.b) > maxPooledFrame {
		return
	}
	f.b = f.b[:0]
	framePool.Put(f)
}

// Options tunes a mesh.
type Options struct {
	// DialTimeout bounds connection establishment (default 2 s).
	DialTimeout time.Duration
	// WriteTimeout bounds a single frame write (default 2 s); a timed-out
	// connection is dropped and redialed lazily.
	WriteTimeout time.Duration
	// QueueLen is the receive queue length (default 4096).
	QueueLen int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 4096
	}
	return o
}

// Mesh is one process's attachment to the TCP mesh.
type Mesh struct {
	id   int32
	opts Options
	ln   net.Listener
	recv chan wire.Envelope

	mu       sync.Mutex
	peers    []string
	conns    map[int32]*peerConn
	accepted map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ transport.Endpoint = (*Mesh)(nil)

// Listen starts a mesh endpoint for process id on the given address (e.g.
// "127.0.0.1:0"). Peers must be provided with SetPeers before the first
// Send.
func Listen(id int32, addr string, opts Options) (*Mesh, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nettcp: listen: %w", err)
	}
	opts = opts.withDefaults()
	m := &Mesh{
		id:       id,
		opts:     opts,
		ln:       ln,
		recv:     make(chan wire.Envelope, opts.QueueLen),
		conns:    make(map[int32]*peerConn),
		accepted: make(map[net.Conn]struct{}),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the actual listen address (useful with port 0).
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// SetPeers installs the address of every process; peers[i] is process i's
// listen address. The local entry is ignored (loopback short-circuits).
func (m *Mesh) SetPeers(peers []string) {
	m.mu.Lock()
	m.peers = make([]string, len(peers))
	copy(m.peers, peers)
	m.mu.Unlock()
}

// ID implements transport.Endpoint.
func (m *Mesh) ID() int32 { return m.id }

// Recv implements transport.Endpoint.
func (m *Mesh) Recv() <-chan wire.Envelope { return m.recv }

// Send implements transport.Endpoint: best-effort, never blocks beyond the
// write timeout, drops on any failure.
func (m *Mesh) Send(env wire.Envelope) {
	env.From = m.id
	if env.To == m.id {
		m.deliver(env)
		return
	}
	f := getFrameBuf()
	defer putFrameBuf(f)
	frame, err := appendEnvelopeFrame(f.b[:0], env)
	if err != nil {
		return
	}
	f.b = frame
	m.writeFrame(env.To, frame)
}

var _ transport.BatchSender = (*Mesh)(nil)

// maxBatchBody bounds one batch frame's encoded body so that it always fits
// under the receiver's maxFrame limit (with room for the length prefix): a
// frame the receiver rejects would be rebuilt identically by every
// retransmission sweep and never get through.
const maxBatchBody = maxFrame - 4

// SendBatch implements transport.BatchSender: all envelopes (one
// destination) travel in length-prefixed batch frames — one write system
// call per frame instead of one per envelope. Bursts whose encoding would
// exceed the receiver's frame limit are split across several frames.
func (m *Mesh) SendBatch(envs []wire.Envelope) {
	if len(envs) == 0 {
		return
	}
	stamped := make([]wire.Envelope, len(envs))
	for i, env := range envs {
		env.From = m.id
		stamped[i] = env
	}
	if stamped[0].To == m.id {
		for _, env := range stamped {
			m.deliver(env)
		}
		return
	}
	for len(stamped) > 0 {
		chunk := len(stamped)
		if chunk > wire.MaxBatchLen {
			chunk = wire.MaxBatchLen
		}
		if wire.BatchSize(stamped[:chunk]) > maxBatchBody {
			for chunk = 1; chunk < len(stamped); chunk++ {
				if wire.BatchSize(stamped[:chunk+1]) > maxBatchBody {
					break
				}
			}
		}
		m.sendBatchFrame(stamped[:chunk])
		stamped = stamped[chunk:]
	}
}

// sendBatchFrame transmits one batch (or single-envelope) frame, built in a
// recycled buffer with the length prefix reserved up front — no
// encode-then-copy step.
func (m *Mesh) sendBatchFrame(envs []wire.Envelope) {
	f := getFrameBuf()
	defer putFrameBuf(f)
	var frame []byte
	var err error
	if len(envs) == 1 {
		frame, err = appendEnvelopeFrame(f.b[:0], envs[0])
	} else {
		frame = append(f.b[:0], 0, 0, 0, 0)
		frame, err = wire.AppendEncodeBatch(frame, envs)
		if err == nil {
			binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
		}
	}
	if err != nil {
		return
	}
	f.b = frame
	m.writeFrame(envs[0].To, frame)
}

// writeFrame transmits one length-prefixed frame to peer id, dialing lazily
// and dropping the connection (and the frame) on any failure.
func (m *Mesh) writeFrame(id int32, frame []byte) {
	pc, addr, ok := m.peer(id)
	if !ok {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, m.opts.DialTimeout)
		if err != nil {
			return // fair-lossy: the round will retransmit
		}
		pc.conn = conn
	}
	_ = pc.conn.SetWriteDeadline(time.Now().Add(m.opts.WriteTimeout))
	if _, err := pc.conn.Write(frame); err != nil {
		pc.conn.Close()
		pc.conn = nil
	}
}

// peer returns the connection slot and address for process id.
func (m *Mesh) peer(id int32) (*peerConn, string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || id < 0 || int(id) >= len(m.peers) {
		return nil, "", false
	}
	pc := m.conns[id]
	if pc == nil {
		pc = &peerConn{}
		m.conns[id] = pc
	}
	return pc, m.peers[id], true
}

func (m *Mesh) deliver(env wire.Envelope) {
	select {
	case m.recv <- env:
	default: // queue overflow: fair-lossy drop
	}
}

func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.accepted[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(conn)
	}
}

func (m *Mesh) readLoop(conn net.Conn) {
	defer m.wg.Done()
	defer func() {
		conn.Close()
		m.mu.Lock()
		delete(m.accepted, conn)
		m.mu.Unlock()
	}()
	var lenBuf [4]byte
	// The payload buffer is reused across frames: wire.Decode copies the
	// register name and value out of it, so nothing decoded aliases it once
	// deliver returns.
	var payload []byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return // protocol violation; drop the connection
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		if wire.IsBatch(payload) {
			envs, err := wire.DecodeBatch(payload)
			if err != nil {
				return
			}
			for _, env := range envs {
				m.deliver(env)
			}
			continue
		}
		env, err := wire.Decode(payload)
		if err != nil {
			return
		}
		m.deliver(env)
	}
}

// Close shuts the mesh down and closes the receive channel.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := m.conns
	m.conns = make(map[int32]*peerConn)
	accepted := make([]net.Conn, 0, len(m.accepted))
	for conn := range m.accepted {
		accepted = append(accepted, conn)
	}
	m.mu.Unlock()

	err := m.ln.Close()
	for _, pc := range conns {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
		}
		pc.mu.Unlock()
	}
	for _, conn := range accepted {
		conn.Close()
	}
	m.wg.Wait()
	close(m.recv)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// appendEnvelopeFrame appends env as a length-prefixed frame: the 4-byte
// slot is reserved first and patched after the in-place encode, so the body
// is written exactly once.
func appendEnvelopeFrame(buf []byte, env wire.Envelope) ([]byte, error) {
	mark := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf, err := wire.AppendEncode(buf, env)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[mark:], uint32(len(buf)-mark-4))
	return buf, nil
}
