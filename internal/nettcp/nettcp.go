// Package nettcp is the real-network counterpart of internal/netsim: a TCP
// mesh connecting the processes of an emulation across machines, as in the
// paper's measurements on a LAN of workstations. Each process listens on one
// address; envelopes are length-prefixed frames of the internal/wire codec.
//
// The transport deliberately keeps fair-lossy semantics even though TCP is
// reliable per connection: a send with no live connection drops the envelope
// (the protocol rounds retransmit), connection failures lose buffered
// frames, and receive-queue overflow drops too. The emulation algorithms
// assume nothing stronger.
package nettcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"recmem/internal/transport"
	"recmem/internal/wire"
)

// maxFrame bounds a frame: the wire header plus a maximal value plus slack
// for the register name.
const maxFrame = wire.MaxValueSize + 64<<10

// Options tunes a mesh.
type Options struct {
	// DialTimeout bounds connection establishment (default 2 s).
	DialTimeout time.Duration
	// WriteTimeout bounds a single frame write (default 2 s); a timed-out
	// connection is dropped and redialed lazily.
	WriteTimeout time.Duration
	// QueueLen is the receive queue length (default 4096).
	QueueLen int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 4096
	}
	return o
}

// Mesh is one process's attachment to the TCP mesh.
type Mesh struct {
	id   int32
	opts Options
	ln   net.Listener
	recv chan wire.Envelope

	mu       sync.Mutex
	peers    []string
	conns    map[int32]*peerConn
	accepted map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ transport.Endpoint = (*Mesh)(nil)

// Listen starts a mesh endpoint for process id on the given address (e.g.
// "127.0.0.1:0"). Peers must be provided with SetPeers before the first
// Send.
func Listen(id int32, addr string, opts Options) (*Mesh, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nettcp: listen: %w", err)
	}
	opts = opts.withDefaults()
	m := &Mesh{
		id:       id,
		opts:     opts,
		ln:       ln,
		recv:     make(chan wire.Envelope, opts.QueueLen),
		conns:    make(map[int32]*peerConn),
		accepted: make(map[net.Conn]struct{}),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the actual listen address (useful with port 0).
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// SetPeers installs the address of every process; peers[i] is process i's
// listen address. The local entry is ignored (loopback short-circuits).
func (m *Mesh) SetPeers(peers []string) {
	m.mu.Lock()
	m.peers = make([]string, len(peers))
	copy(m.peers, peers)
	m.mu.Unlock()
}

// ID implements transport.Endpoint.
func (m *Mesh) ID() int32 { return m.id }

// Recv implements transport.Endpoint.
func (m *Mesh) Recv() <-chan wire.Envelope { return m.recv }

// Send implements transport.Endpoint: best-effort, never blocks beyond the
// write timeout, drops on any failure.
func (m *Mesh) Send(env wire.Envelope) {
	env.From = m.id
	if env.To == m.id {
		m.deliver(env)
		return
	}
	pc, addr, ok := m.peer(env.To)
	if !ok {
		return
	}
	frame, err := encodeFrame(env)
	if err != nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, m.opts.DialTimeout)
		if err != nil {
			return // fair-lossy: the round will retransmit
		}
		pc.conn = conn
	}
	_ = pc.conn.SetWriteDeadline(time.Now().Add(m.opts.WriteTimeout))
	if _, err := pc.conn.Write(frame); err != nil {
		pc.conn.Close()
		pc.conn = nil
	}
}

// peer returns the connection slot and address for process id.
func (m *Mesh) peer(id int32) (*peerConn, string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || id < 0 || int(id) >= len(m.peers) {
		return nil, "", false
	}
	pc := m.conns[id]
	if pc == nil {
		pc = &peerConn{}
		m.conns[id] = pc
	}
	return pc, m.peers[id], true
}

func (m *Mesh) deliver(env wire.Envelope) {
	select {
	case m.recv <- env:
	default: // queue overflow: fair-lossy drop
	}
}

func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			conn.Close()
			return
		}
		m.accepted[conn] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(conn)
	}
}

func (m *Mesh) readLoop(conn net.Conn) {
	defer m.wg.Done()
	defer func() {
		conn.Close()
		m.mu.Lock()
		delete(m.accepted, conn)
		m.mu.Unlock()
	}()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return // protocol violation; drop the connection
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		env, err := wire.Decode(payload)
		if err != nil {
			return
		}
		m.deliver(env)
	}
}

// Close shuts the mesh down and closes the receive channel.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	conns := m.conns
	m.conns = make(map[int32]*peerConn)
	accepted := make([]net.Conn, 0, len(m.accepted))
	for conn := range m.accepted {
		accepted = append(accepted, conn)
	}
	m.mu.Unlock()

	err := m.ln.Close()
	for _, pc := range conns {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
		}
		pc.mu.Unlock()
	}
	for _, conn := range accepted {
		conn.Close()
	}
	m.wg.Wait()
	close(m.recv)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// encodeFrame serializes an envelope as a length-prefixed frame.
func encodeFrame(env wire.Envelope) ([]byte, error) {
	body, err := wire.Encode(env)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}
