package nettcp

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/core"
	"recmem/internal/stable"
	"recmem/internal/wire"
)

// newMeshes starts n meshes on loopback and wires their peer tables.
func newMeshes(t *testing.T, n int) []*Mesh {
	t.Helper()
	meshes := make([]*Mesh, n)
	addrs := make([]string, n)
	for i := range meshes {
		m, err := Listen(int32(i), "127.0.0.1:0", Options{})
		if err != nil {
			t.Fatal(err)
		}
		meshes[i] = m
		addrs[i] = m.Addr()
		t.Cleanup(func() { _ = m.Close() })
	}
	for _, m := range meshes {
		m.SetPeers(addrs)
	}
	return meshes
}

func TestSendReceive(t *testing.T) {
	meshes := newMeshes(t, 3)
	env := wire.Envelope{Kind: wire.KindWrite, To: 2, Reg: "x", RPC: 7, Value: []byte("hello")}
	meshes[0].Send(env)
	select {
	case got := <-meshes[2].Recv():
		if got.From != 0 || got.Reg != "x" || string(got.Value) != "hello" || got.RPC != 7 {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestLoopback(t *testing.T) {
	meshes := newMeshes(t, 2)
	meshes[1].Send(wire.Envelope{Kind: wire.KindRead, To: 1, Reg: "x"})
	select {
	case got := <-meshes[1].Recv():
		if got.From != 1 {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("no loopback delivery")
	}
}

func TestSendToUnknownPeerDrops(t *testing.T) {
	meshes := newMeshes(t, 2)
	meshes[0].Send(wire.Envelope{Kind: wire.KindRead, To: 9})
	meshes[0].Send(wire.Envelope{Kind: wire.KindRead, To: -1})
	// Nothing to assert beyond "no panic, no block".
}

func TestSendToDeadPeerDropsThenRecovers(t *testing.T) {
	meshes := newMeshes(t, 3)
	addrs := []string{meshes[0].Addr(), meshes[1].Addr(), meshes[2].Addr()}
	// Kill peer 1 and send: drop without blocking.
	if err := meshes[1].Close(); err != nil {
		t.Fatal(err)
	}
	meshes[0].Send(wire.Envelope{Kind: wire.KindRead, To: 1})

	// Restart peer 1 on a fresh port and retransmit: delivery resumes.
	m1b, err := Listen(1, "127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m1b.Close() })
	addrs[1] = m1b.Addr()
	for _, m := range []*Mesh{meshes[0], meshes[2], m1b} {
		m.SetPeers(addrs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		meshes[0].Send(wire.Envelope{Kind: wire.KindRead, To: 1, Reg: "x"})
		select {
		case <-m1b.Recv():
			return
		case <-time.After(20 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no delivery after peer restart")
		}
	}
}

func TestCloseIdempotentAndClosesRecv(t *testing.T) {
	meshes := newMeshes(t, 2)
	if err := meshes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := meshes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-meshes[0].Recv(); ok {
		t.Fatal("recv channel not closed")
	}
}

// TestEmulationOverTCP runs the full persistent-atomic emulation over real
// sockets: the paper's deployment shape (one process per workstation), here
// on loopback.
func TestEmulationOverTCP(t *testing.T) {
	const n = 3
	meshes := newMeshes(t, n)
	ids := &atomic.Uint64{}
	nodes := make([]*core.Node, n)
	for i := 0; i < n; i++ {
		nd, err := core.NewNode(int32(i), n, core.Persistent,
			core.Options{RetransmitEvery: 50 * time.Millisecond},
			core.Deps{
				Endpoint: meshes[i],
				Storage:  stable.NewMemDisk(stable.Profile{}),
				IDs:      ids,
			})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		t.Cleanup(nd.Close)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := nodes[0].Write(ctx, "x", []byte("over-tcp"), core.OpObserver{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	val, _, err := nodes[1].Read(ctx, "x", core.OpObserver{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(val) != "over-tcp" {
		t.Fatalf("read = %q", val)
	}
	// Crash and recover node 2, then read from it.
	nodes[2].Crash(nil)
	if err := nodes[2].Recover(ctx, nil, nil); err != nil {
		t.Fatalf("recover: %v", err)
	}
	val, _, err = nodes[2].Read(ctx, "x", core.OpObserver{})
	if err != nil || string(val) != "over-tcp" {
		t.Fatalf("read after recover = %q, %v", val, err)
	}
}
