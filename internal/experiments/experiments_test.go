package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/stable"
)

// fastOptions shrinks the experiment so tests stay quick while preserving
// the latency ladder (δ = 100 µs, λ = 200 µs).
func fastOptions() Options {
	return Options{
		Writes: 10,
		Warmup: 2,
		Net:    netsim.LANProfile(),
		Disk:   stable.DiskProfile(),
		Ns:     []int{3, 5},
		Sizes:  []int{4, 16 << 10},
	}
}

func TestMeasureWritesLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	opts := fastOptions()
	opts.Writes = 25
	means := make(map[core.AlgorithmKind]time.Duration)
	for _, kind := range Algorithms {
		p, err := MeasureWrites(ctx, kind, 5, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		means[kind] = p.Median
		t.Logf("%v: median %v (mean %v)", kind, p.Median, p.Mean)
	}
	// The paper's §V-B ladder: transient ≈ crash-stop + λ, persistent ≈
	// crash-stop + 2λ. With λ = 200 µs we accept generous tolerances to
	// stay robust on loaded machines; the *ordering* is the result.
	if !(means[core.CrashStop] < means[core.Transient] && means[core.Transient] < means[core.Persistent]) {
		t.Fatalf("latency ladder violated: %v", means)
	}
	// The crash-stop write is two round trips: at least 4δ = 400 µs.
	if means[core.CrashStop] < 400*time.Microsecond {
		t.Fatalf("crash-stop mean %v below the 4δ floor", means[core.CrashStop])
	}
	// Each extra causal log adds roughly λ; require at least half of it.
	lambda := stable.DiskProfile().StoreDelay
	if means[core.Transient]-means[core.CrashStop] < lambda/2 {
		t.Fatalf("transient gap %v too small for one causal log",
			means[core.Transient]-means[core.CrashStop])
	}
	if means[core.Persistent]-means[core.Transient] < lambda/2 {
		t.Fatalf("persistent gap %v too small for the second causal log",
			means[core.Persistent]-means[core.Transient])
	}
}

func TestPayloadScalesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	opts := fastOptions()
	small, err := MeasureWrites(ctx, core.Persistent, 5, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasureWrites(ctx, core.Persistent, 5, 32<<10, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 32 KB over 12.5 MB/s is ≈ 2.6 ms of wire time alone per hop.
	if big.Mean < small.Mean+2*time.Millisecond {
		t.Fatalf("payload did not scale latency: %v vs %v", small.Mean, big.Mean)
	}
}

func TestFig6aAndPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	opts := fastOptions()
	opts.Writes = 5
	opts.Warmup = 1
	points, err := Fig6a(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Algorithms)*len(opts.Ns) {
		t.Fatalf("got %d points", len(points))
	}
	var b strings.Builder
	PrintFig6a(&b, points)
	out := b.String()
	if !strings.Contains(out, "crash-stop") || !strings.Contains(out, "persistent") {
		t.Fatalf("table missing columns:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 1+len(opts.Ns) {
		t.Fatalf("table has wrong row count:\n%s", out)
	}
}

func TestFig6bAndPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	opts := fastOptions()
	opts.Writes = 5
	opts.Warmup = 1
	points, err := Fig6b(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Algorithms)*len(opts.Sizes) {
		t.Fatalf("got %d points", len(points))
	}
	var b strings.Builder
	PrintFig6b(&b, points)
	if !strings.Contains(b.String(), "size(B)") {
		t.Fatalf("table malformed:\n%s", b.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Writes != 50 || o.Warmup != 5 {
		t.Fatalf("defaults = %+v", o)
	}
	if len(o.Ns) != 8 || o.Ns[0] != 2 || o.Ns[7] != 9 {
		t.Fatalf("Ns = %v (paper: up to nine workstations)", o.Ns)
	}
	if o.Sizes[len(o.Sizes)-1] > 64<<10 {
		t.Fatalf("sizes exceed the 64 KB UDP limit: %v", o.Sizes)
	}
}
