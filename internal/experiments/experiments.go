// Package experiments regenerates the paper's evaluation (§V, Figure 6) on
// the calibrated simulated testbed: a 100 Mb/s LAN with δ ≈ 0.1 ms message
// transit and synchronous disk logging at λ ≈ 0.2 ms — the same quantities
// the paper reports for its Pentium IV workstations.
//
// Two experiments are provided, each a parameter sweep producing the rows of
// one Figure 6 graph:
//
//   - Fig6a: average write latency of a 4-byte value vs. the number of
//     workstations, for the crash-stop, transient and persistent algorithms.
//   - Fig6b: average write latency vs. payload size at n = 5, bounded by the
//     64 KB UDP datagram limit.
//
// Expected shape (the paper's §V-B): the three algorithms separate by the
// number of causal logs on the write's critical path — crash-stop ≈ 4δ,
// transient ≈ 4δ + λ, persistent ≈ 4δ + 2λ, i.e. the 500/700/900 µs ladder
// at n = 5 — and payload latency grows linearly in size for all three.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/workload"
)

// Algorithms compared in Figure 6, in the paper's order.
var Algorithms = []core.AlgorithmKind{core.CrashStop, core.Transient, core.Persistent}

// BatchAlgorithms compared in the batching experiment: every multi-writer
// kind, including the log-every-step ablation (batching amortizes its extra
// logs the hardest).
var BatchAlgorithms = []core.AlgorithmKind{core.CrashStop, core.Transient, core.Persistent, core.Naive}

// Options configures an experiment run.
type Options struct {
	// Writes is the number of timed writes per data point (the paper uses
	// fifty).
	Writes int
	// Warmup writes are executed but not timed.
	Warmup int
	// Passes repeats each data point and keeps the pass with the lowest
	// median (default 3). Passes are spread out in time, which makes the
	// sweep robust against CPU-steal windows on shared machines — the
	// simulated latencies are real-time waits and inherit host noise.
	Passes int
	// Net is the network latency profile (default: the paper's LAN).
	Net netsim.Profile
	// Disk is the stable-storage latency profile (default: the paper's
	// synchronous IDE logging).
	Disk stable.Profile
	// Sizes are the payload sizes for Fig6b (default: 4 B … 60 KB).
	Sizes []int
	// Ns are the cluster sizes for Fig6a (default 2…9, the paper's "up to
	// nine workstations").
	Ns []int
	// Batch is the per-client submission window of the batching experiment
	// (default 32): how many operations each client keeps in flight through
	// the asynchronous API.
	Batch int
	// Pipeline is the number of independent registers of the batching
	// experiment (default 4): registers whose quorum rounds the engine
	// overlaps.
	Pipeline int
	// DiskBackend selects the stable-storage engine of the batch and disk
	// experiments: "mem" (default — the simulated disk with the calibrated
	// Disk profile), "file", or "wal". The real engines live in fresh
	// temporary directories per run.
	DiskBackend string
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Writes == 0 {
		o.Writes = 50
	}
	if o.Warmup == 0 {
		o.Warmup = 5
	}
	if o.Passes == 0 {
		o.Passes = 3
	}
	if o.Net == (netsim.Profile{}) {
		o.Net = netsim.LANProfile()
	}
	if o.Disk == (stable.Profile{}) {
		o.Disk = stable.DiskProfile()
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{4, 1 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 48 << 10, 60 << 10}
	}
	if len(o.Ns) == 0 {
		o.Ns = []int{2, 3, 4, 5, 6, 7, 8, 9}
	}
	if o.Batch < 2 {
		// A window below 2 never engages the asynchronous path and would
		// silently compare the synchronous API against itself.
		o.Batch = 32
	}
	if o.Pipeline < 1 {
		o.Pipeline = 4
	}
	return o
}

// Point is one measured configuration.
type Point struct {
	Algorithm core.AlgorithmKind
	N         int
	Size      int
	Mean      time.Duration
	// Median is robust to the cold-start outliers of the first measured
	// writes of a process.
	Median time.Duration
	P95    time.Duration
}

// MeasureWrites builds a cluster of n processes running the given algorithm
// over the calibrated profiles and measures the average latency of writes of
// the given payload size issued by process 0 — the paper's experiment:
// "writing a 4 byte integer value and measuring the time that the operation
// took to complete, repeating the write fifty times and finally averaging".
func MeasureWrites(ctx context.Context, kind core.AlgorithmKind, n, size int, opts Options) (Point, error) {
	opts = opts.withDefaults()
	c, err := cluster.New(cluster.Config{
		N:         n,
		Algorithm: kind,
		Node:      core.Options{RetransmitEvery: 250 * time.Millisecond},
		Net:       netsim.Options{Profile: opts.Net},
		Disk:      opts.Disk,
	})
	if err != nil {
		return Point{}, err
	}
	defer c.Close()

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < opts.Warmup; i++ {
		if _, err := c.Write(ctx, 0, "x", payload); err != nil {
			return Point{}, fmt.Errorf("warmup write: %w", err)
		}
	}
	best := Point{Algorithm: kind, N: n, Size: size}
	for pass := 0; pass < opts.Passes; pass++ {
		if pass > 0 {
			// Let a host noise window (CPU steal, co-tenant bursts) pass.
			time.Sleep(50 * time.Millisecond)
		}
		var total time.Duration
		samples := make([]time.Duration, 0, opts.Writes)
		for i := 0; i < opts.Writes; i++ {
			rep, err := c.Write(ctx, 0, "x", payload)
			if err != nil {
				return Point{}, fmt.Errorf("timed write %d: %w", i, err)
			}
			total += rep.Latency
			samples = append(samples, rep.Latency)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		median := samples[len(samples)/2]
		if pass == 0 || median < best.Median {
			best.Median = median
			best.Mean = total / time.Duration(opts.Writes)
			best.P95 = samples[(len(samples)-1)*95/100]
		}
	}
	return best, nil
}

// Fig6a sweeps cluster sizes for the three algorithms: the top graph of
// Figure 6 (average write time vs. number of workstations, 4-byte values).
func Fig6a(ctx context.Context, opts Options) ([]Point, error) {
	opts = opts.withDefaults()
	var out []Point
	for _, kind := range Algorithms {
		for _, n := range opts.Ns {
			p, err := MeasureWrites(ctx, kind, n, 4, opts)
			if err != nil {
				return out, fmt.Errorf("fig6a %v n=%d: %w", kind, n, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Fig6b sweeps payload sizes at n = 5: the bottom graph of Figure 6
// (average write time vs. size of data written).
func Fig6b(ctx context.Context, opts Options) ([]Point, error) {
	opts = opts.withDefaults()
	var out []Point
	for _, kind := range Algorithms {
		for _, size := range opts.Sizes {
			p, err := MeasureWrites(ctx, kind, 5, size, opts)
			if err != nil {
				return out, fmt.Errorf("fig6b %v size=%d: %w", kind, size, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// BatchPoint compares one algorithm's throughput with and without the
// batching + pipelining engine.
type BatchPoint struct {
	Algorithm core.AlgorithmKind
	// UnbatchedOps and BatchedOps are completed operations per second for
	// the sequential closed-loop clients and for the windowed asynchronous
	// clients respectively.
	UnbatchedOps, BatchedOps float64
	// Speedup is BatchedOps / UnbatchedOps.
	Speedup float64
}

// MeasureBatch drives the same write workload (opts.Writes operations at
// each of n processes over opts.Pipeline registers, on the calibrated LAN
// testbed) twice: once through the synchronous one-at-a-time API and once
// through the asynchronous submission API with a window of opts.Batch
// operations per client — measuring how far coalesced quorum rounds and
// pipelined registers move the throughput ceiling.
func MeasureBatch(ctx context.Context, kind core.AlgorithmKind, n int, opts Options) (BatchPoint, error) {
	opts = opts.withDefaults()
	run := func(async int) (float64, error) {
		cfg := cluster.Config{
			N:         n,
			Algorithm: kind,
			Node:      core.Options{RetransmitEvery: 250 * time.Millisecond},
			Net:       netsim.Options{Profile: opts.Net},
			Disk:      opts.Disk,
		}
		if opts.DiskBackend != "" && opts.DiskBackend != "mem" {
			dir, err := os.MkdirTemp("", "recmem-disk-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			cfg.DiskBackend, cfg.DiskDir = opts.DiskBackend, dir
		}
		c, err := cluster.New(cfg)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		regs := make([]string, opts.Pipeline)
		for i := range regs {
			regs[i] = fmt.Sprintf("r%d", i)
		}
		mix := workload.Mix{Registers: regs, Async: async}
		procs := workload.AllProcs(n)
		// Warm every protocol path once.
		workload.Run(ctx, c, procs, opts.Warmup, mix, 1)
		start := time.Now()
		res := workload.Run(ctx, c, procs, opts.Writes, mix, 2)
		elapsed := time.Since(start)
		if res.Errors > 0 {
			return 0, fmt.Errorf("%d workload errors", res.Errors)
		}
		done := res.Writes + res.Reads
		if done == 0 || elapsed <= 0 {
			return 0, fmt.Errorf("no completed operations")
		}
		return float64(done) / elapsed.Seconds(), nil
	}
	p := BatchPoint{Algorithm: kind}
	for pass := 0; pass < opts.Passes; pass++ {
		if pass > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		unb, err := run(0)
		if err != nil {
			return p, fmt.Errorf("unbatched: %w", err)
		}
		bat, err := run(opts.Batch)
		if err != nil {
			return p, fmt.Errorf("batched: %w", err)
		}
		if unb > p.UnbatchedOps {
			p.UnbatchedOps = unb
		}
		if bat > p.BatchedOps {
			p.BatchedOps = bat
		}
	}
	p.Speedup = p.BatchedOps / p.UnbatchedOps
	return p, nil
}

// Batch sweeps the batched-vs-unbatched comparison over every multi-writer
// algorithm kind at n = 5.
func Batch(ctx context.Context, opts Options) ([]BatchPoint, error) {
	opts = opts.withDefaults()
	var out []BatchPoint
	for _, kind := range BatchAlgorithms {
		p, err := MeasureBatch(ctx, kind, 5, opts)
		if err != nil {
			return out, fmt.Errorf("batch %v: %w", kind, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// DiskPoint compares one stable-storage engine under the same coalesced
// batched workload: the fsync-amortization experiment. Records is the
// number of causal-log records the protocol persisted (summed over all
// nodes), Commits the durability points it issued (Store calls plus
// StoreBatch groups — what a group-commit-free engine flushes), and Syncs
// the flushes the engine actually performed: Commits for mem (each commit
// pays one simulated λ), 2 × Records for file (every record is a temp-file
// fsync plus a directory fsync), and the group-commit daemons' counts for
// wal and sharded.
type DiskPoint struct {
	Backend string
	Ops     float64
	Records int
	Commits int
	Syncs   int64
}

// RecordsPerSync is the amortization factor: causal-log records made
// durable per disk flush.
func (p DiskPoint) RecordsPerSync() float64 {
	if p.Syncs == 0 {
		return 0
	}
	return float64(p.Records) / float64(p.Syncs)
}

// MeasureDisk drives the batched write workload of MeasureBatch over the
// named storage engine and reports throughput plus the engine's sync bill.
func MeasureDisk(ctx context.Context, kind core.AlgorithmKind, n int, backend string, opts Options) (DiskPoint, error) {
	opts = opts.withDefaults()
	p := DiskPoint{Backend: backend}

	var dir string
	if backend != "mem" {
		var err error
		dir, err = os.MkdirTemp("", "recmem-disk-*")
		if err != nil {
			return p, err
		}
		defer os.RemoveAll(dir)
	}
	counts := make([]*stable.Counting, n)
	// Log-structured engines report their own fsync bill.
	syncers := make([]interface{ Syncs() int64 }, n)
	c, err := cluster.New(cluster.Config{
		N:         n,
		Algorithm: kind,
		Node:      core.Options{RetransmitEvery: 250 * time.Millisecond},
		Net:       netsim.Options{Profile: opts.Net},
		DiskFactory: func(id int32) (stable.Storage, error) {
			inner, err := stable.OpenBackend(backend, fmt.Sprintf("%s/node%d", dir, id), opts.Disk)
			if err != nil {
				return nil, err
			}
			if s, ok := inner.(interface{ Syncs() int64 }); ok {
				syncers[id] = s
			}
			counts[id] = stable.NewCounting(inner)
			return counts[id], nil
		},
	})
	if err != nil {
		return p, err
	}
	defer c.Close()

	regs := make([]string, opts.Pipeline)
	for i := range regs {
		regs[i] = fmt.Sprintf("r%d", i)
	}
	mix := workload.Mix{Registers: regs, Async: opts.Batch}
	procs := workload.AllProcs(n)
	workload.Run(ctx, c, procs, opts.Warmup, mix, 1)
	warmRecords, warmCommits := 0, 0
	var warmSyncs int64
	for i, ct := range counts {
		warmRecords += ct.Stores()
		warmCommits += ct.Commits()
		if syncers[i] != nil {
			warmSyncs += syncers[i].Syncs()
		}
	}
	start := time.Now()
	res := workload.Run(ctx, c, procs, opts.Writes, mix, 2)
	elapsed := time.Since(start)
	if res.Errors > 0 {
		return p, fmt.Errorf("%d workload errors", res.Errors)
	}
	done := res.Writes + res.Reads
	if done == 0 || elapsed <= 0 {
		return p, fmt.Errorf("no completed operations")
	}
	p.Ops = float64(done) / elapsed.Seconds()
	for i, ct := range counts {
		p.Records += ct.Stores()
		p.Commits += ct.Commits()
		if syncers[i] != nil {
			p.Syncs += syncers[i].Syncs()
		}
	}
	p.Records -= warmRecords
	p.Commits -= warmCommits
	switch backend {
	case "mem":
		p.Syncs = int64(p.Commits)
	case "file":
		p.Syncs = 2 * int64(p.Records)
	default:
		p.Syncs -= warmSyncs
	}
	return p, nil
}

// Disks sweeps the fsync-amortization comparison over every storage engine
// at n = 5 with the persistent algorithm — the kind with the heaviest log
// bill, where the engine choice moves the needle most.
func Disks(ctx context.Context, opts Options) ([]DiskPoint, error) {
	opts = opts.withDefaults()
	var out []DiskPoint
	for _, backend := range stable.Backends() {
		p, err := MeasureDisk(ctx, core.Persistent, 5, backend, opts)
		if err != nil {
			return out, fmt.Errorf("disks %s: %w", backend, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// PrintDisks renders the engine comparison: one line per backend.
func PrintDisks(w io.Writer, points []DiskPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "backend\tbatched(op/s)\trecords\tcommits\tsyncs\trecords/sync")
	for _, p := range points {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%d\t%.1f\n",
			p.Backend, p.Ops, p.Records, p.Commits, p.Syncs, p.RecordsPerSync())
	}
	tw.Flush()
}

// PrintBatch renders the throughput comparison: one line per algorithm.
func PrintBatch(w io.Writer, points []BatchPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tunbatched(op/s)\tbatched(op/s)\tspeedup")
	for _, p := range points {
		fmt.Fprintf(tw, "%v\t%.0f\t%.0f\t%.1fx\n",
			p.Algorithm, p.UnbatchedOps, p.BatchedOps, p.Speedup)
	}
	tw.Flush()
}

// PrintFig6a renders the sweep as the rows of Figure 6 (top): one line per
// cluster size, one column per algorithm.
func PrintFig6a(w io.Writer, points []Point) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tcrash-stop\ttransient\tpersistent")
	byN := make(map[int]map[core.AlgorithmKind]Point)
	var ns []int
	for _, p := range points {
		if byN[p.N] == nil {
			byN[p.N] = make(map[core.AlgorithmKind]Point)
			ns = append(ns, p.N)
		}
		byN[p.N][p.Algorithm] = p
	}
	for _, n := range ns {
		row := byN[n]
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\n", n,
			row[core.CrashStop].Median.Round(time.Microsecond),
			row[core.Transient].Median.Round(time.Microsecond),
			row[core.Persistent].Median.Round(time.Microsecond))
	}
	tw.Flush()
}

// PrintFig6b renders the payload sweep: one line per size, one column per
// algorithm.
func PrintFig6b(w io.Writer, points []Point) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size(B)\tcrash-stop\ttransient\tpersistent")
	bySize := make(map[int]map[core.AlgorithmKind]Point)
	var sizes []int
	for _, p := range points {
		if bySize[p.Size] == nil {
			bySize[p.Size] = make(map[core.AlgorithmKind]Point)
			sizes = append(sizes, p.Size)
		}
		bySize[p.Size][p.Algorithm] = p
	}
	for _, size := range sizes {
		row := bySize[size]
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\n", size,
			row[core.CrashStop].Median.Round(time.Microsecond),
			row[core.Transient].Median.Round(time.Microsecond),
			row[core.Persistent].Median.Round(time.Microsecond))
	}
	tw.Flush()
}
