package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"recmem/internal/tag"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Envelope{
		{Kind: KindSNQuery, From: 0, To: 4, Reg: "x", RPC: 1, Op: 9},
		{Kind: KindSNAck, From: 4, To: 0, Reg: "x", RPC: 1, Op: 9, Tag: tag.Tag{Seq: 7, Writer: 2}},
		{Kind: KindWrite, From: 1, To: 2, Reg: "register-with-long-name", RPC: 3, Op: 10, Depth: 1,
			Tag: tag.Tag{Seq: 8, Writer: 1, Rec: 3}, Value: []byte("hello world")},
		{Kind: KindWriteAck, From: 2, To: 1, RPC: 3, Op: 10, Depth: 2},
		{Kind: KindRead, From: 3, To: 0, Reg: "k", RPC: 4, Op: 11},
		{Kind: KindReadAck, From: 0, To: 3, Reg: "k", RPC: 4, Op: 11, Tag: tag.Tag{Seq: 1}, Value: []byte{0, 1, 2}},
		{Kind: KindWriteBack, From: 3, To: 0, Reg: "k", RPC: 5, Op: 11, Tag: tag.Tag{Seq: 1}, Value: []byte{0xFF}},
		{Kind: KindWrite, From: -1, To: -2, Reg: "", RPC: 0, Op: 0, Tag: tag.Tag{Seq: -5, Writer: -6, Rec: -7}},
	}
	for _, e := range tests {
		buf, err := Encode(e)
		if err != nil {
			t.Fatalf("Encode(%v): %v", e, err)
		}
		if len(buf) != Size(e) {
			t.Fatalf("Size(%v) = %d, encoded %d", e, Size(e), len(buf))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%v): %v", e, err)
		}
		if got.Kind != e.Kind || got.From != e.From || got.To != e.To || got.Reg != e.Reg ||
			got.RPC != e.RPC || got.Op != e.Op || got.Depth != e.Depth || got.Tag != e.Tag ||
			!bytes.Equal(got.Value, e.Value) {
			t.Fatalf("round trip: got %+v, want %+v", got, e)
		}
	}
}

func TestEncodeRejectsOversizeValue(t *testing.T) {
	_, err := Encode(Envelope{Kind: KindWrite, Value: make([]byte, MaxValueSize+1)})
	if !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("err = %v, want ErrValueTooLarge", err)
	}
	// Exactly the limit is fine (the paper's 64 KB UDP bound).
	if _, err := Encode(Envelope{Kind: KindWrite, Value: make([]byte, MaxValueSize)}); err != nil {
		t.Fatalf("value at limit rejected: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("nil: %v", err)
	}
	if _, err := Decode(make([]byte, 10)); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short: %v", err)
	}
	good, err := Encode(Envelope{Kind: KindWrite, Reg: "x", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[1] = 0
	if _, err := Decode(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("kind: %v", err)
	}
	// Truncated payload.
	if _, err := Decode(good[:len(good)-1]); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("truncated: %v", err)
	}
	// Trailing junk.
	if _, err := Decode(append(append([]byte(nil), good...), 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing: %v", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindSNQuery: "SN", KindSNAck: "SN_ack",
		KindWrite: "W", KindWriteAck: "W_ack",
		KindRead: "R", KindReadAck: "R_ack",
		KindWriteBack: "WB",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsAck(t *testing.T) {
	acks := map[Kind]bool{
		KindSNQuery: false, KindSNAck: true,
		KindWrite: false, KindWriteAck: true,
		KindRead: false, KindReadAck: true,
		KindWriteBack: false,
	}
	for k, want := range acks {
		if got := k.IsAck(); got != want {
			t.Fatalf("Kind %s IsAck = %v, want %v", k, got, want)
		}
	}
}

// TestRoundTripQuick fuzzes the codec with random envelopes.
func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(kind uint8, from, to int32, rpc, op uint64, depth uint8, seq int64, w, r int32, regLen uint8, valLen uint16) bool {
		e := Envelope{
			Kind: Kind(kind%7) + KindSNQuery,
			From: from, To: to, RPC: rpc, Op: op, Depth: depth,
			Tag: tag.Tag{Seq: seq, Writer: w, Rec: r},
		}
		reg := make([]byte, regLen)
		rng.Read(reg)
		e.Reg = string(reg)
		if valLen > 0 {
			e.Value = make([]byte, valLen)
			rng.Read(e.Value)
		}
		buf, err := Encode(e)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Kind == e.Kind && got.From == e.From && got.To == e.To &&
			got.Reg == e.Reg && got.RPC == e.RPC && got.Op == e.Op &&
			got.Depth == e.Depth && got.Tag == e.Tag && bytes.Equal(got.Value, e.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeString(t *testing.T) {
	e := Envelope{Kind: KindWrite, From: 1, To: 2, Reg: "x", RPC: 3, Op: 4, Depth: 1, Tag: tag.Tag{Seq: 5, Writer: 1}, Value: []byte("ab")}
	s := e.String()
	for _, want := range []string{"W{", "1->2", "reg=x", "tag=[5,1]", "|v|=2"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
