// Package wire defines the protocol messages of the register emulations
// (Figures 4 and 5 of the paper) and a compact binary codec for them. The
// same envelopes flow over the in-memory simulated network and over real
// sockets, so the codec is part of the protocol's contract.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"recmem/internal/tag"
)

// Kind identifies the message type.
type Kind uint8

// Protocol message kinds. The names follow Figure 4: SN/SN_ack query the
// highest sequence number, W/W_ack propagate a tagged value, R/R_ack query
// tagged values. WriteBack is the W message of a read's second round — the
// algorithm treats it identically to W; it is distinguished only so that the
// harness can account read-induced logs separately and so that the
// no-read-log ablation (Theorem 2 demonstration) can target it.
const (
	KindSNQuery Kind = iota + 1
	KindSNAck
	KindWrite
	KindWriteAck
	KindRead
	KindReadAck
	KindWriteBack
)

// String returns the message kind mnemonic.
func (k Kind) String() string {
	switch k {
	case KindSNQuery:
		return "SN"
	case KindSNAck:
		return "SN_ack"
	case KindWrite:
		return "W"
	case KindWriteAck:
		return "W_ack"
	case KindRead:
		return "R"
	case KindReadAck:
		return "R_ack"
	case KindWriteBack:
		return "WB"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsAck reports whether k is an acknowledgement kind.
func (k Kind) IsAck() bool {
	return k == KindSNAck || k == KindWriteAck || k == KindReadAck
}

// MaxValueSize bounds a written value, mirroring the paper's UDP datagram
// limit ("a UDP packet cannot contain more than 64KB of data"; larger values
// would require chunking and change the algorithm's message complexity).
const MaxValueSize = 64 << 10

// Envelope is one protocol message.
type Envelope struct {
	// Kind is the message type.
	Kind Kind
	// From and To are process ids.
	From, To int32
	// Reg names the register the message belongs to; every register runs an
	// independent instance of the protocol over the shared channels.
	Reg string
	// RPC correlates one request round with its acknowledgements.
	RPC uint64
	// Op is the client operation (or recovery) on whose behalf the message
	// is sent; used for causal-log accounting.
	Op uint64
	// Depth is the causal log-chain depth carried by the message (§I-B).
	Depth uint8
	// Tag is the value timestamp: the payload tag for W/WB, the replica's
	// current tag for SN_ack/R_ack. Zero otherwise.
	Tag tag.Tag
	// Value is the written value for W/WB and the replica's current value
	// for R_ack. Nil otherwise.
	Value []byte
}

// codec framing constants.
const (
	codecVersion = 1
	headerSize   = 1 + 1 + 4 + 4 + 8 + 8 + 1 + (8 + 4 + 4) + 2 + 4 // version..value length
)

// Codec errors.
var (
	ErrValueTooLarge = errors.New("wire: value exceeds MaxValueSize")
	ErrShortBuffer   = errors.New("wire: short buffer")
	ErrBadVersion    = errors.New("wire: unknown codec version")
	ErrBadMessage    = errors.New("wire: malformed message")
)

// Encode serializes the envelope. The layout is fixed-width header fields in
// big-endian order, followed by the register name and the value.
func Encode(e Envelope) ([]byte, error) {
	return AppendEncode(make([]byte, 0, headerSize+len(e.Reg)+len(e.Value)), e)
}

// AppendEncode appends the encoded envelope to buf and returns the extended
// slice — the allocation-free form of Encode for callers that recycle their
// frame buffers (sync.Pool'd transports). On error buf may have grown; the
// caller re-slices from its own mark.
func AppendEncode(buf []byte, e Envelope) ([]byte, error) {
	if len(e.Value) > MaxValueSize {
		return nil, ErrValueTooLarge
	}
	if len(e.Reg) > 0xFFFF {
		return nil, fmt.Errorf("wire: register name too long (%d bytes)", len(e.Reg))
	}
	buf = append(buf, codecVersion, byte(e.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.From))
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.To))
	buf = binary.BigEndian.AppendUint64(buf, e.RPC)
	buf = binary.BigEndian.AppendUint64(buf, e.Op)
	buf = append(buf, e.Depth)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Tag.Seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Tag.Writer))
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Tag.Rec))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Reg)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Value)))
	buf = append(buf, e.Reg...)
	buf = append(buf, e.Value...)
	return buf, nil
}

// Decode parses an envelope previously produced by Encode.
func Decode(buf []byte) (Envelope, error) {
	var e Envelope
	if len(buf) < headerSize {
		return e, ErrShortBuffer
	}
	if buf[0] != codecVersion {
		return e, ErrBadVersion
	}
	e.Kind = Kind(buf[1])
	if e.Kind < KindSNQuery || e.Kind > KindWriteBack {
		return e, ErrBadMessage
	}
	e.From = int32(binary.BigEndian.Uint32(buf[2:]))
	e.To = int32(binary.BigEndian.Uint32(buf[6:]))
	e.RPC = binary.BigEndian.Uint64(buf[10:])
	e.Op = binary.BigEndian.Uint64(buf[18:])
	e.Depth = buf[26]
	e.Tag.Seq = int64(binary.BigEndian.Uint64(buf[27:]))
	e.Tag.Writer = int32(binary.BigEndian.Uint32(buf[35:]))
	e.Tag.Rec = int32(binary.BigEndian.Uint32(buf[39:]))
	regLen := int(binary.BigEndian.Uint16(buf[43:]))
	valLen := int(binary.BigEndian.Uint32(buf[45:]))
	if valLen > MaxValueSize {
		return e, ErrValueTooLarge
	}
	rest := buf[headerSize:]
	if len(rest) != regLen+valLen {
		return e, ErrBadMessage
	}
	e.Reg = string(rest[:regLen])
	if valLen > 0 {
		e.Value = make([]byte, valLen)
		copy(e.Value, rest[regLen:])
	}
	return e, nil
}

// Size returns the encoded size of the envelope without encoding it, used by
// latency models that charge for bytes on the wire.
func Size(e Envelope) int {
	return headerSize + len(e.Reg) + len(e.Value)
}

// Batch frames: one wire frame carrying several envelopes, all addressed to
// the same destination. Batch-aware transports use them so that one network
// round-trip (one datagram, one TCP frame) carries the coalesced protocol
// rounds of many concurrent operations — the message-level half of the
// batching architecture (docs/adr/0001). The first byte distinguishes a
// batch frame from a v1 envelope, so a receiver can accept both on the same
// connection.
const (
	batchVersion = 0xB1
	batchHeader  = 1 + 2 // version, count
	// MaxBatchLen bounds the number of envelopes in one batch frame.
	MaxBatchLen = 0xFFFF
)

// Batch framing errors.
var (
	ErrBatchTooLarge = errors.New("wire: batch exceeds MaxBatchLen envelopes")
	ErrNotBatch      = errors.New("wire: not a batch frame")
	ErrMixedBatch    = errors.New("wire: batch envelopes address different destinations")
)

// IsBatch reports whether buf starts a batch frame (as opposed to a single
// v1 envelope).
func IsBatch(buf []byte) bool {
	return len(buf) > 0 && buf[0] == batchVersion
}

// EncodeBatch serializes several envelopes as one frame. All envelopes must
// share the same destination: a batch frame models one physical message on
// one link.
func EncodeBatch(envs []Envelope) ([]byte, error) {
	return AppendEncodeBatch(make([]byte, 0, BatchSize(envs)), envs)
}

// AppendEncodeBatch appends the encoded batch frame to buf and returns the
// extended slice — the allocation-free form of EncodeBatch. Each envelope is
// encoded in place behind a reserved 4-byte length slot, so the batch is
// built in one pass with no per-envelope intermediate buffer.
func AppendEncodeBatch(buf []byte, envs []Envelope) ([]byte, error) {
	if len(envs) == 0 || len(envs) > MaxBatchLen {
		return nil, ErrBatchTooLarge
	}
	for _, e := range envs {
		if e.To != envs[0].To {
			return nil, ErrMixedBatch
		}
	}
	buf = append(buf, batchVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(envs)))
	for _, e := range envs {
		mark := len(buf)
		buf = append(buf, 0, 0, 0, 0) // length slot, patched below
		body, err := AppendEncode(buf, e)
		if err != nil {
			return nil, err
		}
		buf = body
		binary.BigEndian.PutUint32(buf[mark:], uint32(len(buf)-mark-4))
	}
	return buf, nil
}

// DecodeBatch parses a frame produced by EncodeBatch.
func DecodeBatch(buf []byte) ([]Envelope, error) {
	if !IsBatch(buf) {
		return nil, ErrNotBatch
	}
	if len(buf) < batchHeader {
		return nil, ErrShortBuffer
	}
	count := int(binary.BigEndian.Uint16(buf[1:]))
	rest := buf[batchHeader:]
	envs := make([]Envelope, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return nil, ErrShortBuffer
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return nil, ErrShortBuffer
		}
		e, err := Decode(rest[:n])
		if err != nil {
			return nil, err
		}
		envs = append(envs, e)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, ErrBadMessage
	}
	return envs, nil
}

// BatchSize returns the encoded size of a batch frame carrying envs, without
// encoding it.
func BatchSize(envs []Envelope) int {
	total := batchHeader
	for _, e := range envs {
		total += 4 + Size(e)
	}
	return total
}

// String renders the envelope for traces.
func (e Envelope) String() string {
	return fmt.Sprintf("%s{%d->%d reg=%s rpc=%d op=%d d=%d tag=%s |v|=%d}",
		e.Kind, e.From, e.To, e.Reg, e.RPC, e.Op, e.Depth, e.Tag, len(e.Value))
}
