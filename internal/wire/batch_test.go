package wire

import (
	"bytes"
	"testing"

	"recmem/internal/tag"
)

func sampleEnvs(to int32) []Envelope {
	return []Envelope{
		{Kind: KindSNQuery, From: 1, To: to, Reg: "x", RPC: 10, Op: 100},
		{Kind: KindWrite, From: 1, To: to, Reg: "y", RPC: 11, Op: 101,
			Tag: tag.Tag{Seq: 7, Writer: 1}, Value: []byte("hello")},
		{Kind: KindRead, From: 1, To: to, Reg: "z", RPC: 12, Op: 102, Depth: 2},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	envs := sampleEnvs(3)
	buf, err := EncodeBatch(envs)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBatch(buf) {
		t.Fatal("IsBatch = false for a batch frame")
	}
	if got, want := len(buf), BatchSize(envs); got != want {
		t.Fatalf("encoded size = %d, BatchSize = %d", got, want)
	}
	got, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(envs) {
		t.Fatalf("decoded %d envelopes, want %d", len(got), len(envs))
	}
	for i := range envs {
		if got[i].Kind != envs[i].Kind || got[i].Reg != envs[i].Reg ||
			got[i].RPC != envs[i].RPC || got[i].Op != envs[i].Op ||
			got[i].Tag != envs[i].Tag || !bytes.Equal(got[i].Value, envs[i].Value) {
			t.Fatalf("envelope %d: got %+v want %+v", i, got[i], envs[i])
		}
	}
}

func TestBatchSingleEnvelopeDistinct(t *testing.T) {
	// A v1 envelope must never be mistaken for a batch frame.
	buf, err := Encode(Envelope{Kind: KindSNQuery, From: 0, To: 1, Reg: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if IsBatch(buf) {
		t.Fatal("single envelope classified as batch")
	}
	if _, err := DecodeBatch(buf); err == nil {
		t.Fatal("DecodeBatch accepted a single envelope")
	}
}

func TestBatchRejectsMixedDestinations(t *testing.T) {
	envs := sampleEnvs(3)
	envs[1].To = 4
	if _, err := EncodeBatch(envs); err != ErrMixedBatch {
		t.Fatalf("err = %v, want ErrMixedBatch", err)
	}
}

func TestBatchRejectsEmpty(t *testing.T) {
	if _, err := EncodeBatch(nil); err == nil {
		t.Fatal("EncodeBatch(nil) succeeded")
	}
}

func TestBatchDecodeTruncated(t *testing.T) {
	buf, err := EncodeBatch(sampleEnvs(2))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut += 7 {
		if _, err := DecodeBatch(buf[:cut]); err == nil {
			t.Fatalf("DecodeBatch accepted truncation at %d", cut)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := DecodeBatch(append(append([]byte(nil), buf...), 0xFF)); err == nil {
		t.Fatal("DecodeBatch accepted trailing bytes")
	}
}
