package spin

import (
	"testing"
	"time"
)

func TestSleepPrecision(t *testing.T) {
	// Precision is asserted as best-of-5: a single attempt can be blown up
	// by host noise (CPU steal on shared machines), which is not a Sleep
	// defect. Under-sleeping is never tolerated.
	for _, d := range []time.Duration{50 * time.Microsecond, 200 * time.Microsecond, 3 * time.Millisecond} {
		best := time.Duration(1 << 62)
		for attempt := 0; attempt < 5; attempt++ {
			start := time.Now()
			Sleep(d)
			got := time.Since(start)
			if got < d {
				t.Fatalf("Sleep(%v) returned after %v (too early)", d, got)
			}
			if got < best {
				best = got
			}
		}
		if best > d+time.Millisecond {
			t.Fatalf("Sleep(%v) best of 5 = %v (too imprecise)", d, best)
		}
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	start := time.Now()
	Sleep(0)
	Sleep(-time.Second)
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("zero/negative sleep took %v", el)
	}
}

func TestWaitDeadline(t *testing.T) {
	wake := make(chan struct{}, 1)
	done := make(chan struct{})
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		start := time.Now()
		woken := Wait(start.Add(300*time.Microsecond), wake, done)
		el := time.Since(start)
		if woken {
			t.Fatal("Wait reported wake without signal")
		}
		if el < 300*time.Microsecond {
			t.Fatalf("Wait returned after %v (too early)", el)
		}
		if el < best {
			best = el
		}
	}
	if best > 2*time.Millisecond {
		t.Fatalf("Wait best of 5 = %v (too imprecise)", best)
	}
}

func TestWaitWake(t *testing.T) {
	wake := make(chan struct{}, 1)
	done := make(chan struct{})
	wake <- struct{}{}
	if !Wait(time.Now().Add(time.Second), wake, done) {
		t.Fatal("Wait missed wake signal")
	}
}

func TestWaitDone(t *testing.T) {
	wake := make(chan struct{}, 1)
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if !Wait(start.Add(10*time.Second), wake, done) {
		t.Fatal("Wait missed done")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Wait did not return promptly on done")
	}
}

func TestWaitWakeDuringCoarseSleep(t *testing.T) {
	wake := make(chan struct{}, 1)
	done := make(chan struct{})
	start := time.Now()
	go func() {
		time.Sleep(5 * time.Millisecond)
		wake <- struct{}{}
	}()
	if !Wait(start.Add(10*time.Second), wake, done) {
		t.Fatal("Wait missed wake")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait ignored wake during coarse phase")
	}
}
