// Package spin provides sub-millisecond-precision waiting. The calibrated
// experiments simulate δ ≈ 100 µs message transits and λ ≈ 200 µs disk
// logging, but time.Sleep and runtime timers on many kernels (including this
// project's CI substrate) have a floor above a millisecond — an order of
// magnitude of distortion. Sleep and Wait therefore sleep coarsely up to a
// safety margin below the deadline and spin (yielding) across the remainder,
// trading CPU for the timing fidelity the Figure 6 reproduction needs.
//
// Zero and negative durations return immediately, so simulation profiles
// with no latency (the fast paths used by unit tests) never spin.
package spin

import (
	"runtime"
	"time"
)

// margin is how far before the deadline the coarse sleep aims: it must
// exceed the platform's worst-case oversleep (≈ 1.3 ms observed here).
const margin = 2 * time.Millisecond

// Sleep blocks for at least d, with microsecond-scale precision.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	SleepUntil(time.Now().Add(d))
}

// SleepUntil blocks until the deadline, with microsecond-scale precision.
func SleepUntil(deadline time.Time) {
	if coarse := time.Until(deadline) - margin; coarse > 0 {
		time.Sleep(coarse)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Wait blocks until the deadline passes or one of the channels becomes
// ready (a closed channel is always ready). It returns true if it was woken
// by a channel before the deadline. Receiving consumes at most one value
// from wake; done is expected to be close-only.
func Wait(deadline time.Time, wake, done <-chan struct{}) bool {
	if coarse := time.Until(deadline) - margin; coarse > 0 {
		timer := time.NewTimer(coarse)
		select {
		case <-timer.C:
		case <-wake:
			timer.Stop()
			return true
		case <-done:
			timer.Stop()
			return true
		}
	}
	for time.Now().Before(deadline) {
		select {
		case <-wake:
			return true
		case <-done:
			return true
		default:
			runtime.Gosched()
		}
	}
	return false
}
