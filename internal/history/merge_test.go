package history_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"recmem/internal/atomicity"
	"recmem/internal/history"
	"recmem/internal/tag"
)

// seqd assigns 1..n local sequence numbers, as a ClientRecorder snapshot
// would.
func seqd(events ...history.Event) history.History {
	h := make(history.History, len(events))
	for i, e := range events {
		e.Seq = int64(i + 1)
		h[i] = e
	}
	return h
}

const us = int64(time.Microsecond)

func tg(seq int64, writer int32) tag.Tag { return tag.Tag{Seq: seq, Writer: writer} }

// TestMergeRenumbers: per-client timelines (overlapping Seq and OpID) merge
// onto one strictly increasing timeline with unique operation ids, and the
// result feeds the checker unchanged.
func TestMergeRenumbers(t *testing.T) {
	h1 := seqd(
		history.Event{Proc: 0, Kind: history.Invoke, Op: history.Write, OpID: 1, Reg: "x", Value: "a", At: 100 * us},
		history.Event{Proc: 0, Kind: history.Return, Op: history.Write, OpID: 1, Reg: "x", Tag: tg(1, 0), At: 200 * us},
	)
	h2 := seqd(
		history.Event{Proc: 1, Kind: history.Invoke, Op: history.Read, OpID: 1, Reg: "x", At: 1000 * us},
		history.Event{Proc: 1, Kind: history.Return, Op: history.Read, OpID: 1, Reg: "x", Value: "a", Tag: tg(1, 0), At: 1100 * us},
	)
	merged, err := history.Merge([]history.History{h1, h2})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4", len(merged))
	}
	for i, e := range merged {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
	}
	ops := merged.Operations()
	if len(ops) != 2 || ops[0].OpID == ops[1].OpID {
		t.Fatalf("ops = %+v (want 2 with distinct ids)", ops)
	}
	if err := atomicity.Check(merged, atomicity.Linearizable); err != nil {
		t.Fatalf("checker rejected a clean merged history: %v", err)
	}
}

// TestMergePermutationInvariant: merging the same per-client histories in
// any order yields the identical merged history, hence one verdict.
func TestMergePermutationInvariant(t *testing.T) {
	h1 := seqd(
		history.Event{Proc: 0, Kind: history.Invoke, Op: history.Write, OpID: 1, Reg: "x", Value: "a", At: 100 * us},
		history.Event{Proc: 0, Kind: history.Return, Op: history.Write, OpID: 1, Reg: "x", Tag: tg(1, 0), At: 300 * us},
		history.Event{Proc: 0, Kind: history.Crash, At: 400 * us},
		history.Event{Proc: 0, Kind: history.Recover, At: 500 * us},
	)
	h2 := seqd(
		history.Event{Proc: 1, Kind: history.Invoke, Op: history.Read, OpID: 1, Reg: "x", At: 150 * us},
		history.Event{Proc: 1, Kind: history.Return, Op: history.Read, OpID: 1, Reg: "x", Value: "a", Tag: tg(1, 0), At: 320 * us},
	)
	h3 := seqd(
		history.Event{Proc: 2, Kind: history.Invoke, Op: history.Write, OpID: 1, Reg: "x", Value: "b", At: 600 * us},
		history.Event{Proc: 2, Kind: history.Return, Op: history.Write, OpID: 1, Reg: "x", Tag: tg(2, 2), At: 800 * us},
	)
	base, err := history.Merge([]history.History{h1, h2, h3})
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]history.History{
		{h1, h3, h2}, {h2, h1, h3}, {h2, h3, h1}, {h3, h1, h2}, {h3, h2, h1},
	}
	for i, p := range perms {
		got, err := history.Merge(p)
		if err != nil {
			t.Fatalf("perm %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("perm %d merged differently:\n got %+v\nwant %+v", i, got, base)
		}
	}
}

// TestMergeTagWitnessTieBreak: two replies whose wall-clock stamps are
// inside the skew bound are ordered by their tag witnesses, the server-side
// commit order, not by the (ambiguous) stamps.
func TestMergeTagWitnessTieBreak(t *testing.T) {
	// Client 0 read "a" (tag [1,0]); its reply stamp lands 20µs AFTER
	// client 1's reply of "b" (tag [2,0]) — within any realistic skew.
	h1 := seqd(
		history.Event{Proc: 0, Kind: history.Invoke, Op: history.Read, OpID: 1, Reg: "x", At: 100 * us},
		history.Event{Proc: 0, Kind: history.Return, Op: history.Read, OpID: 1, Reg: "x", Value: "a", Tag: tg(1, 0), At: 520 * us},
	)
	h2 := seqd(
		history.Event{Proc: 1, Kind: history.Invoke, Op: history.Read, OpID: 1, Reg: "x", At: 110 * us},
		history.Event{Proc: 1, Kind: history.Return, Op: history.Read, OpID: 1, Reg: "x", Value: "b", Tag: tg(2, 0), At: 500 * us},
	)
	merged, err := history.MergeWithin([]history.History{h1, h2}, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var rets []string
	for _, e := range merged {
		if e.Kind == history.Return {
			rets = append(rets, e.Value)
		}
	}
	if len(rets) != 2 || rets[0] != "a" || rets[1] != "b" {
		t.Fatalf("witnessed replies ordered %v, want [a b]", rets)
	}

	// Outside the skew bound the stamps win: the same histories with a
	// tighter bound keep stamp order.
	merged, err = history.MergeWithin([]history.History{h1, h2}, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	rets = rets[:0]
	for _, e := range merged {
		if e.Kind == history.Return {
			rets = append(rets, e.Value)
		}
	}
	if rets[0] != "b" || rets[1] != "a" {
		t.Fatalf("beyond-skew replies ordered %v, want [b a]", rets)
	}
}

// TestMergeTieBreakCannotChainBeyondSkew is the regression for the
// non-transitive-comparator bug: with three witnessed replies each within
// skew of its neighbor but the ends beyond skew (0µs/tag-10, 190µs/tag-5,
// 380µs/tag-1 at 200µs skew), chained pairwise tag preferences used to pop
// the 380µs reply first — moving it past events ~2× the skew bound older,
// exactly the rescue a stale tag must never get. The anchored pick keeps
// every reply within skew of the earliest remaining event, and the result
// must not depend on which process holds which timeline.
func TestMergeTieBreakCannotChainBeyondSkew(t *testing.T) {
	mk := func(proc int32, at int64, val string, tg tag.Tag) history.History {
		return seqd(
			history.Event{Proc: proc, Kind: history.Invoke, Op: history.Read, OpID: 1, Reg: "x", At: at - 50*us},
			history.Event{Proc: proc, Kind: history.Return, Op: history.Read, OpID: 1, Reg: "x", Value: val, Tag: tg, At: at},
		)
	}
	order := func(hs []history.History) []string {
		t.Helper()
		merged, err := history.MergeWithin(hs, 200*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		var rets []string
		for _, e := range merged {
			if e.Kind == history.Return {
				rets = append(rets, e.Value)
			}
		}
		return rets
	}
	got := order([]history.History{
		mk(0, 0*us, "a", tg(10, 0)),
		mk(1, 190*us, "b", tg(5, 0)),
		mk(2, 380*us, "c", tg(1, 0)),
	})
	// "b" may tie-break ahead of "a" (within skew of it); "c" must not be
	// popped first — it is 380µs past the earliest event.
	if got[0] == "c" {
		t.Fatalf("reply 380µs late jumped to the front: %v", got)
	}
	// Renumbering the processes (same timelines) must not change the order.
	swapped := order([]history.History{
		mk(2, 0*us, "a", tg(10, 0)),
		mk(1, 190*us, "b", tg(5, 0)),
		mk(0, 380*us, "c", tg(1, 0)),
	})
	if !reflect.DeepEqual(got, swapped) {
		t.Fatalf("merge order depends on process numbering: %v vs %v", got, swapped)
	}
}

// TestMergeRejectsNonAtomic: a crafted merged history with a stale read —
// the injected-violation shape of a lying node — must fail the checker.
func TestMergeRejectsNonAtomic(t *testing.T) {
	h1 := seqd(
		history.Event{Proc: 0, Kind: history.Invoke, Op: history.Write, OpID: 1, Reg: "x", Value: "v1", At: 1000 * us},
		history.Event{Proc: 0, Kind: history.Return, Op: history.Write, OpID: 1, Reg: "x", Tag: tg(1, 0), At: 2000 * us},
		history.Event{Proc: 0, Kind: history.Invoke, Op: history.Write, OpID: 2, Reg: "x", Value: "v2", At: 3000 * us},
		history.Event{Proc: 0, Kind: history.Return, Op: history.Write, OpID: 2, Reg: "x", Tag: tg(2, 0), At: 4000 * us},
	)
	// The stale read begins long after W(v2) completed and still returns
	// v1, with v1's (honest, but stale) witness.
	h2 := seqd(
		history.Event{Proc: 1, Kind: history.Invoke, Op: history.Read, OpID: 1, Reg: "x", At: 5000 * us},
		history.Event{Proc: 1, Kind: history.Return, Op: history.Read, OpID: 1, Reg: "x", Value: "v1", Tag: tg(1, 0), At: 6000 * us},
	)
	merged, err := history.Merge([]history.History{h1, h2})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []atomicity.Mode{atomicity.Linearizable, atomicity.Persistent, atomicity.Transient} {
		if err := atomicity.Check(merged, mode); err == nil {
			t.Fatalf("%v accepted a stale-read merged history", mode)
		}
	}
}

// TestMergeWitnessConflict: one tag bound to two values is corrupt metadata
// and fails the merge itself.
func TestMergeWitnessConflict(t *testing.T) {
	h1 := seqd(
		history.Event{Proc: 0, Kind: history.Invoke, Op: history.Write, OpID: 1, Reg: "x", Value: "a", At: 100 * us},
		history.Event{Proc: 0, Kind: history.Return, Op: history.Write, OpID: 1, Reg: "x", Tag: tg(1, 0), At: 200 * us},
	)
	h2 := seqd(
		history.Event{Proc: 1, Kind: history.Invoke, Op: history.Read, OpID: 1, Reg: "x", At: 300 * us},
		history.Event{Proc: 1, Kind: history.Return, Op: history.Read, OpID: 1, Reg: "x", Value: "OTHER", Tag: tg(1, 0), At: 400 * us},
	)
	_, err := history.Merge([]history.History{h1, h2})
	if err == nil || !strings.Contains(err.Error(), "witness") {
		t.Fatalf("err = %v, want tag witness conflict", err)
	}
}

// TestMergeRejectsSharedProcs: two recorders claiming one process id is a
// harness bug, not something to paper over.
func TestMergeRejectsSharedProcs(t *testing.T) {
	h1 := seqd(history.Event{Proc: 0, Kind: history.Crash, At: 100 * us})
	h2 := seqd(history.Event{Proc: 0, Kind: history.Crash, At: 200 * us})
	if _, err := history.Merge([]history.History{h1, h2}); err == nil {
		t.Fatal("merged histories sharing a process id")
	}
}

// TestMergeEmptyInputs: empty and nil histories are dropped, not errors.
func TestMergeEmptyInputs(t *testing.T) {
	merged, err := history.Merge([]history.History{nil, {}})
	if err != nil || len(merged) != 0 {
		t.Fatalf("merged = %v, %v", merged, err)
	}
}
