package history

import (
	"strings"
	"sync"
	"testing"
)

// build constructs a history from a compact spec; each entry becomes the next
// event with Seq assigned sequentially starting at 1.
func build(t *testing.T, events []Event) History {
	t.Helper()
	h := make(History, len(events))
	for i, e := range events {
		e.Seq = int64(i + 1)
		h[i] = e
	}
	return h
}

func TestValidateWellFormed(t *testing.T) {
	h := build(t, []Event{
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 1, Reg: "x", Value: "a"},
		{Proc: 2, Kind: Invoke, Op: Read, OpID: 2, Reg: "x"},
		{Proc: 1, Kind: Return, Op: Write, OpID: 1, Reg: "x"},
		{Proc: 2, Kind: Return, Op: Read, OpID: 2, Reg: "x", Value: "a"},
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 3, Reg: "x", Value: "b"},
		{Proc: 1, Kind: Crash},
		{Proc: 1, Kind: Recover},
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 4, Reg: "x", Value: "c"},
		{Proc: 1, Kind: Return, Op: Write, OpID: 4, Reg: "x"},
	})
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		events  []Event
		wantSub string
	}{
		{
			name: "double invoke",
			events: []Event{
				{Proc: 1, Kind: Invoke, Op: Write, OpID: 1, Reg: "x"},
				{Proc: 1, Kind: Invoke, Op: Write, OpID: 2, Reg: "x"},
			},
			wantSub: "pending operation",
		},
		{
			name: "return without invoke",
			events: []Event{
				{Proc: 1, Kind: Return, Op: Write, OpID: 1, Reg: "x"},
			},
			wantSub: "does not match",
		},
		{
			name: "mismatched return",
			events: []Event{
				{Proc: 1, Kind: Invoke, Op: Write, OpID: 1, Reg: "x"},
				{Proc: 1, Kind: Return, Op: Write, OpID: 9, Reg: "x"},
			},
			wantSub: "does not match",
		},
		{
			name: "double crash",
			events: []Event{
				{Proc: 1, Kind: Crash},
				{Proc: 1, Kind: Crash},
			},
			wantSub: "crashes twice",
		},
		{
			name: "recover without crash",
			events: []Event{
				{Proc: 1, Kind: Recover},
			},
			wantSub: "recovers without crash",
		},
		{
			name: "invoke while crashed",
			events: []Event{
				{Proc: 1, Kind: Crash},
				{Proc: 1, Kind: Invoke, Op: Read, OpID: 1, Reg: "x"},
			},
			wantSub: "invokes while crashed",
		},
		{
			name: "return while crashed",
			events: []Event{
				{Proc: 1, Kind: Invoke, Op: Read, OpID: 1, Reg: "x"},
				{Proc: 1, Kind: Crash},
				{Proc: 1, Kind: Return, Op: Read, OpID: 1, Reg: "x"},
			},
			wantSub: "returns while crashed",
		},
		{
			name: "missing opid",
			events: []Event{
				{Proc: 1, Kind: Invoke, Op: Read, Reg: "x"},
			},
			wantSub: "without OpID",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := build(t, tt.events)
			err := h.Validate()
			if err == nil {
				t.Fatal("Validate accepted ill-formed history")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("Validate error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateOutOfOrder(t *testing.T) {
	h := History{
		{Seq: 2, Proc: 1, Kind: Invoke, Op: Read, OpID: 1, Reg: "x"},
		{Seq: 1, Proc: 1, Kind: Return, Op: Read, OpID: 1, Reg: "x"},
	}
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-order history")
	}
}

func TestOperations(t *testing.T) {
	h := build(t, []Event{
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 1, Reg: "x", Value: "a"},
		{Proc: 1, Kind: Return, Op: Write, OpID: 1, Reg: "x"},
		{Proc: 2, Kind: Invoke, Op: Read, OpID: 2, Reg: "x"},
		{Proc: 2, Kind: Return, Op: Read, OpID: 2, Reg: "x", Value: "a"},
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 3, Reg: "x", Value: "b"},
		{Proc: 1, Kind: Crash},
	})
	ops := h.Operations()
	if len(ops) != 3 {
		t.Fatalf("got %d operations, want 3", len(ops))
	}
	if ops[0].Type != Write || ops[0].Value != "a" || ops[0].Pending() {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].Type != Read || ops[1].Value != "a" || ops[1].Pending() {
		t.Fatalf("op1 = %+v (read should adopt returned value)", ops[1])
	}
	if !ops[2].Pending() || ops[2].Value != "b" {
		t.Fatalf("op2 = %+v (crashed write should stay pending)", ops[2])
	}
}

func TestNextQueries(t *testing.T) {
	h := build(t, []Event{
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 1, Reg: "x", Value: "a"}, // seq 1
		{Proc: 1, Kind: Crash},   // seq 2
		{Proc: 1, Kind: Recover}, // seq 3
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 2, Reg: "x", Value: "b"}, // seq 4
		{Proc: 1, Kind: Return, Op: Write, OpID: 2, Reg: "x"},             // seq 5
		{Proc: 2, Kind: Invoke, Op: Read, OpID: 3, Reg: "x"},              // seq 6
		{Proc: 2, Kind: Return, Op: Read, OpID: 3, Reg: "x", Value: "b"},  // seq 7
	})
	if got := h.NextInvocationAfter(1, 1); got != 4 {
		t.Fatalf("NextInvocationAfter(1,1) = %d, want 4", got)
	}
	if got := h.NextInvocationAfter(1, 4); got != 0 {
		t.Fatalf("NextInvocationAfter(1,4) = %d, want 0", got)
	}
	if got := h.NextWriteReturnAfter(1, 1); got != 5 {
		t.Fatalf("NextWriteReturnAfter(1,1) = %d, want 5", got)
	}
	if got := h.NextWriteReturnAfter(2, 0); got != 0 {
		t.Fatalf("NextWriteReturnAfter(2,0) = %d, want 0 (reads don't count)", got)
	}
	if got := h.MaxSeq(); got != 7 {
		t.Fatalf("MaxSeq = %d, want 7", got)
	}
}

func TestRestrictAndRegisters(t *testing.T) {
	h := build(t, []Event{
		{Proc: 1, Kind: Invoke, Op: Write, OpID: 1, Reg: "x", Value: "a"},
		{Proc: 1, Kind: Return, Op: Write, OpID: 1, Reg: "x"},
		{Proc: 2, Kind: Invoke, Op: Write, OpID: 2, Reg: "y", Value: "b"},
		{Proc: 2, Kind: Crash},
		{Proc: 2, Kind: Recover},
	})
	regs := h.Registers()
	if len(regs) != 2 || regs[0] != "x" || regs[1] != "y" {
		t.Fatalf("Registers = %v", regs)
	}
	hx := h.Restrict("x")
	// x events plus process-wide crash/recover.
	if len(hx) != 4 {
		t.Fatalf("Restrict(x) kept %d events, want 4", len(hx))
	}
	if err := hx.Validate(); err != nil {
		t.Fatalf("restricted history ill-formed: %v", err)
	}
}

func TestOperationString(t *testing.T) {
	w := Operation{Proc: 1, Type: Write, Value: "v1", Inv: 1, Ret: 2}
	if got := w.String(); got != "p1:W(v1)" {
		t.Fatalf("String = %q", got)
	}
	r := Operation{Proc: 2, Type: Read, Value: "v1", Ret: PendingRet}
	if got := r.String(); got != "p2:R(v1)?" {
		t.Fatalf("String = %q", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(nil)
	var wg sync.WaitGroup
	for p := int32(1); p <= 4; p++ {
		wg.Add(1)
		go func(p int32) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := r.Invoke(p, Write, "x", "v")
				r.Return(p, Write, id, "x", "")
			}
		}(p)
	}
	wg.Wait()
	h := r.History()
	if len(h) != 800 {
		t.Fatalf("recorded %d events, want 800", len(h))
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("recorded history ill-formed: %v", err)
	}
	if r.Len() != 800 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRecorderCrashRecover(t *testing.T) {
	r := NewRecorder(nil)
	id := r.Invoke(1, Write, "x", "a")
	r.Crash(1)
	r.Recover(1)
	_ = id
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	ops := h.Operations()
	if len(ops) != 1 || !ops[0].Pending() {
		t.Fatalf("ops = %v", ops)
	}
}

func TestCloneIndependent(t *testing.T) {
	h := build(t, []Event{{Proc: 1, Kind: Crash}})
	c := h.Clone()
	c[0].Proc = 9
	if h[0].Proc != 1 {
		t.Fatal("Clone shares backing array")
	}
}
