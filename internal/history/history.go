// Package history models runs of a shared-memory emulation as the paper's
// histories (§III-A): sequences of invocation, reply, crash and recovery
// events, totally ordered by the global clock. It provides well-formedness
// validation, extraction of operation executions (invocation/reply pairs and
// pending invocations), and the per-process queries that the persistent and
// transient completion rules need (next invocation / next write reply of a
// process after a given point).
package history

import (
	"fmt"
	"sort"

	"recmem/internal/tag"
)

// Kind classifies history events.
type Kind int

// Event kinds, matching §III-A: invocations, replies, crashes, recoveries.
const (
	Invoke Kind = iota + 1
	Return
	Crash
	Recover
)

// String returns the event kind name.
func (k Kind) String() string {
	switch k {
	case Invoke:
		return "invoke"
	case Return:
		return "return"
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// OpType distinguishes the two operations of a read/write register.
type OpType int

// Register operation types.
const (
	Read OpType = iota + 1
	Write
)

// String returns the operation type name.
func (o OpType) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Bottom is the initial value of every register (the paper's ⊥). Test
// workloads must not write Bottom.
const Bottom = ""

// Event is one entry of a history.
type Event struct {
	// Seq is the global-clock sequence number; it totally orders the
	// history. Strictly increasing across the events of a run.
	Seq int64
	// Proc is the process the event is associated with.
	Proc int32
	// Kind is the event kind.
	Kind Kind
	// Op is the operation type for Invoke/Return events.
	Op OpType
	// OpID pairs an invocation with its matching reply.
	OpID uint64
	// Reg names the object (register) of Invoke/Return events.
	Reg string
	// Value is the written value on a write invocation and the returned
	// value on a read reply; empty otherwise.
	Value string
	// At is the wall-clock capture time of the event in nanoseconds since
	// the Unix epoch, or 0 when unknown. The global observer of a simulated
	// cluster does not need it (Seq is already a total order); per-client
	// recorders on a live mesh stamp it so Merge can interleave histories.
	// Invocations are stamped before the request leaves the client and
	// replies after the response arrived, so cross-client precedence derived
	// from At is genuine whenever the recorders share a clock.
	At int64
	// Tag is the operation's tag witness on Return events: the tag the
	// emulation adopted for the written or returned value, as reported by
	// the serving process. The zero tag means "no witness" (the backend
	// could not report one, or the read returned the initial value ⊥).
	// Merge uses witnesses to order events real time cannot and to
	// cross-check that one tag never binds two values.
	Tag tag.Tag
	// Epoch is the serving node's incarnation epoch on Return events, as
	// reported by the backend (docs/adr/0006); zero when unknown. Client
	// recorders compare epochs across the replies of one node to infer
	// crash/recover events nobody injected — real process deaths.
	Epoch uint64
}

// History is a sequence of events ordered by Seq.
type History []Event

// Sort orders the history by global sequence number.
func (h History) Sort() {
	sort.Slice(h, func(i, j int) bool { return h[i].Seq < h[j].Seq })
}

// Clone returns a copy of the history.
func (h History) Clone() History {
	out := make(History, len(h))
	copy(out, h)
	return out
}

// Restrict returns the sub-history of events on register reg (crash and
// recovery events, which are process-wide, are retained). Atomicity is a
// local property, so multi-register histories are checked per register.
func (h History) Restrict(reg string) History {
	var out History
	for _, e := range h {
		if e.Kind == Crash || e.Kind == Recover || e.Reg == reg {
			out = append(out, e)
		}
	}
	return out
}

// Registers returns the sorted set of register names appearing in h.
func (h History) Registers() []string {
	set := make(map[string]struct{})
	for _, e := range h {
		if e.Kind == Invoke || e.Kind == Return {
			set[e.Reg] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Validate checks that h is a well-formed history (§III-A): events are
// strictly ordered by Seq, and every local history is well-formed, i.e.
// (a) its first event is an invocation or a crash, (b) a crash can only be
// followed by a matching recovery event, and (c) an invocation can only be
// followed by a crash or a matching reply.
func (h History) Validate() error {
	type procState struct {
		started bool
		crashed bool
		pending uint64 // OpID of pending invocation, 0 if none
	}
	states := make(map[int32]*procState)
	var lastSeq int64
	for i, e := range h {
		if i > 0 && e.Seq <= lastSeq {
			return fmt.Errorf("history: event %d out of order (seq %d after %d)", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		st := states[e.Proc]
		if st == nil {
			st = &procState{}
			states[e.Proc] = st
		}
		switch e.Kind {
		case Invoke:
			if st.crashed {
				return fmt.Errorf("history: process %d invokes while crashed (seq %d)", e.Proc, e.Seq)
			}
			if st.pending != 0 {
				return fmt.Errorf("history: process %d invokes with pending operation (seq %d)", e.Proc, e.Seq)
			}
			if e.OpID == 0 {
				return fmt.Errorf("history: invocation without OpID (seq %d)", e.Seq)
			}
			st.pending = e.OpID
			st.started = true
		case Return:
			if st.crashed {
				return fmt.Errorf("history: process %d returns while crashed (seq %d)", e.Proc, e.Seq)
			}
			if st.pending != e.OpID {
				return fmt.Errorf("history: process %d reply does not match pending invocation (seq %d)", e.Proc, e.Seq)
			}
			st.pending = 0
		case Crash:
			if !st.started {
				st.started = true
			}
			if st.crashed {
				return fmt.Errorf("history: process %d crashes twice (seq %d)", e.Proc, e.Seq)
			}
			st.crashed = true
			// A crash discards the pending invocation: it stays pending in
			// the history, but the process may invoke again after recovery.
			st.pending = 0
		case Recover:
			if !st.crashed {
				return fmt.Errorf("history: process %d recovers without crash (seq %d)", e.Proc, e.Seq)
			}
			st.crashed = false
		default:
			return fmt.Errorf("history: unknown event kind %d (seq %d)", e.Kind, e.Seq)
		}
	}
	return nil
}

// PendingRet is the Ret sentinel of an operation with no matching reply.
// It is negative — never a legal event position — so it cannot collide with
// any real reply Seq, unlike the old 0 sentinel, which a renumbered history
// (Merge starts timelines at 0-adjacent positions) could have produced.
const PendingRet = int64(-1)

// Operation is an operation execution extracted from a history: a matched
// invocation/reply pair, or a pending invocation (Ret == PendingRet).
type Operation struct {
	OpID  uint64
	Proc  int32
	Type  OpType
	Reg   string
	Value string // write: value written; read: value returned (if complete)
	Inv   int64  // Seq of the invocation event
	Ret   int64  // Seq of the reply event; PendingRet if pending
	// Tag is the reply's tag witness (zero if pending or unwitnessed).
	Tag tag.Tag
}

// Pending reports whether the operation has no matching reply.
func (o Operation) Pending() bool { return o.Ret < 0 }

// String renders the operation in the paper's W(v)/R(v) notation.
func (o Operation) String() string {
	state := ""
	if o.Pending() {
		state = "?"
	}
	if o.Type == Write {
		return fmt.Sprintf("p%d:W(%s)%s", o.Proc, o.Value, state)
	}
	return fmt.Sprintf("p%d:R(%s)%s", o.Proc, o.Value, state)
}

// Operations extracts all operation executions from h, in invocation order.
// Read invocations record the value from the matching reply.
func (h History) Operations() []Operation {
	var (
		ops     []Operation
		indexOf = make(map[uint64]int)
	)
	for _, e := range h {
		switch e.Kind {
		case Invoke:
			indexOf[e.OpID] = len(ops)
			ops = append(ops, Operation{
				OpID:  e.OpID,
				Proc:  e.Proc,
				Type:  e.Op,
				Reg:   e.Reg,
				Value: e.Value,
				Inv:   e.Seq,
				Ret:   PendingRet,
			})
		case Return:
			i, ok := indexOf[e.OpID]
			if !ok {
				continue
			}
			ops[i].Ret = e.Seq
			ops[i].Tag = e.Tag
			if ops[i].Type == Read {
				ops[i].Value = e.Value
			}
		}
	}
	return ops
}

// NextInvocationAfter returns the Seq of the first invocation by proc with
// Seq > after, or 0 if there is none. Used by the persistent completion rule:
// a pending invocation's synthesized reply must appear before the subsequent
// invocation of the same process.
func (h History) NextInvocationAfter(proc int32, after int64) int64 {
	for _, e := range h {
		if e.Seq > after && e.Proc == proc && e.Kind == Invoke {
			return e.Seq
		}
	}
	return 0
}

// NextWriteReturnAfter returns the Seq of the first write reply by proc with
// Seq > after, or 0 if there is none. Used by the transient weak-completion
// rule: a pending invocation's synthesized reply must appear before the
// subsequent write reply of the same process.
func (h History) NextWriteReturnAfter(proc int32, after int64) int64 {
	for _, e := range h {
		if e.Seq > after && e.Proc == proc && e.Kind == Return && e.Op == Write {
			return e.Seq
		}
	}
	return 0
}

// MaxSeq returns the largest event Seq in h (0 for an empty history).
func (h History) MaxSeq() int64 {
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1].Seq
}
