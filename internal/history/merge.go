package history

import (
	"fmt"
	"sort"
	"time"

	"recmem/internal/tag"
)

// This file merges the per-client histories of a live mesh onto one global
// timeline so the atomicity checkers — which assume the simulated cluster's
// single observer — can verify a real deployment.
//
// What Merge can and cannot order (docs/adr/0004):
//
//   - Per-client order is exact: each recorder observed its own events.
//   - Cross-client order comes from the wall-clock stamps (Event.At).
//     Because invocations are stamped before the request leaves the client
//     and replies after the response arrived, any precedence derived from
//     the stamps (reply before invocation) is genuine whenever the
//     recorders share a clock; across machines it is genuine up to the
//     clock skew bound.
//   - Within the skew bound, real-time order is ambiguous. There the tag
//     witness — the server-reported tag under which a value was adopted —
//     breaks the tie: two witnessed replies on one register are ordered by
//     their tags, which is the order the emulation itself committed them
//     in. Events the witness cannot reach (invocations, unwitnessed
//     replies) keep stamp order.
//
// Merge never reorders beyond the skew bound: a read that genuinely
// completed after a newer write completed cannot be rescued by its stale
// tag, so a lying or buggy node still fails the checkers.

// DefaultMergeSkew is the cross-client clock ambiguity bound Merge assumes:
// stamps closer than this are treated as concurrent and may be tag-witness
// ordered. Generous for one machine (scheduling jitter between a server
// commit and the client-side stamp), far below real operation latencies.
const DefaultMergeSkew = 200 * time.Microsecond

// Merge renumbers the per-client histories of one run onto a single global
// timeline and returns the merged history, ready for the atomicity
// checkers. See MergeWithin for the ordering rules; the skew bound is
// DefaultMergeSkew.
func Merge(hs []History) (History, error) { return MergeWithin(hs, DefaultMergeSkew) }

// MergeWithin is Merge with an explicit clock ambiguity bound. The input
// histories must be individually well-formed and operate disjoint process
// id sets (one recorder per process); the merge result is independent of
// the order the histories are passed in. Beyond interleaving, MergeWithin
// audits the tag witnesses: one tag binding two different values on one
// register is reported as an error — no checker search needed for that
// class of corruption.
func MergeWithin(hs []History, skew time.Duration) (History, error) {
	type src struct {
		h   History
		pos int
		min int32 // lowest process id, for canonical source order
	}
	var srcs []*src
	procOwner := make(map[int32]int)
	total := 0
	for _, h := range hs {
		if len(h) == 0 {
			continue
		}
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("history: merge input: %w", err)
		}
		s := &src{h: h, min: h[0].Proc}
		for _, e := range h {
			if e.Proc < s.min {
				s.min = e.Proc
			}
		}
		srcs = append(srcs, s)
		total += len(h)
	}
	// Disjointness and canonical order: the verdict must not depend on the
	// order the per-client histories were collected in.
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].min < srcs[j].min })
	for i, s := range srcs {
		for _, e := range s.h {
			if prev, ok := procOwner[e.Proc]; ok && prev != i {
				return nil, fmt.Errorf("history: merge inputs share process %d", e.Proc)
			}
			procOwner[e.Proc] = i
		}
	}

	// K-way merge preserving each source's internal order. Each pick is
	// anchored at the earliest head E: by default E wins, but if E is a
	// witnessed reply, any witnessed reply on the same register within the
	// skew bound OF E may be picked instead when its tag is smaller. The
	// anchor is what keeps the bound global: an event is only ever popped
	// within skew of the earliest remaining event, so chained pairwise
	// preferences cannot drift a reply past anything more than skew older
	// (a pairwise comparator would be non-transitive and could), and the
	// pick is independent of which source holds which history.
	skewNS := skew.Nanoseconds()
	type opKey struct {
		src int
		id  uint64
	}
	var (
		out    = make(History, 0, total)
		ids    = make(map[opKey]uint64, total/2)
		nextID uint64
	)
	for len(out) < total {
		// The anchor: earliest head by stamp (ties to the canonically
		// first source).
		best := -1
		for i, s := range srcs {
			if s.pos >= len(s.h) {
				continue
			}
			if best < 0 || s.h[s.pos].At < srcs[best].h[srcs[best].pos].At {
				best = i
			}
		}
		if e := srcs[best].h[srcs[best].pos]; e.Kind == Return && !e.Tag.IsZero() {
			// Tag tie-break inside the anchor's ambiguity window.
			for i, s := range srcs {
				if s.pos >= len(s.h) {
					continue
				}
				h := s.h[s.pos]
				if h.Kind == Return && !h.Tag.IsZero() && h.Reg == e.Reg &&
					h.At-e.At <= skewNS && h.Tag.Less(srcs[best].h[srcs[best].pos].Tag) {
					best = i
				}
			}
		}
		e := srcs[best].h[srcs[best].pos]
		srcs[best].pos++
		e.Seq = int64(len(out) + 1)
		if e.Kind == Invoke || e.Kind == Return {
			k := opKey{src: best, id: e.OpID}
			id, ok := ids[k]
			if !ok {
				nextID++
				id = nextID
				ids[k] = id
			}
			e.OpID = id
		}
		out = append(out, e)
	}

	if err := auditWitnesses(out); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("history: merge result: %w", err)
	}
	return out, nil
}

// auditWitnesses cross-checks the tag witnesses of a merged history: a tag
// names exactly one committed value per register, so one tag bound to two
// values means a node reported corrupt metadata — an error in its own
// right, caught without any checker search.
func auditWitnesses(h History) error {
	type bind struct {
		reg string
		t   tag.Tag
	}
	writeVal := make(map[uint64]string)
	vals := make(map[bind]string)
	for _, e := range h {
		switch e.Kind {
		case Invoke:
			if e.Op == Write {
				writeVal[e.OpID] = e.Value
			}
		case Return:
			if e.Tag.IsZero() {
				continue
			}
			v := e.Value
			if e.Op == Write {
				v = writeVal[e.OpID]
			}
			k := bind{reg: e.Reg, t: e.Tag}
			if prev, ok := vals[k]; ok && prev != v {
				return fmt.Errorf("history: tag witness %v on register %q bound to both %q and %q",
					e.Tag, e.Reg, prev, v)
			}
			vals[k] = v
		}
	}
	return nil
}
