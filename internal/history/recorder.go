package history

import (
	"sync"
	"sync/atomic"

	"recmem/internal/clock"
	"recmem/internal/tag"
)

// Recorder accumulates the events of a run, stamping them on a global clock.
// It is the harness-side observer the paper's model assumes: the processes
// never read it. Safe for concurrent use.
type Recorder struct {
	clk    *clock.Clock
	nextOp atomic.Uint64

	mu     sync.Mutex
	events History
}

// NewRecorder returns a Recorder stamping events on clk. If clk is nil a
// private clock is used.
func NewRecorder(clk *clock.Clock) *Recorder {
	if clk == nil {
		clk = &clock.Clock{}
	}
	return &Recorder{clk: clk}
}

// Invoke records an operation invocation and returns the OpID that must be
// passed to Return. For writes, value is the value being written.
func (r *Recorder) Invoke(proc int32, op OpType, reg, value string) uint64 {
	id := r.nextOp.Add(1)
	r.append(Event{Proc: proc, Kind: Invoke, Op: op, OpID: id, Reg: reg, Value: value})
	return id
}

// InvokeWithID records an invocation under a caller-chosen OpID (e.g. the
// protocol's own operation identifier). The id must be unique and non-zero.
func (r *Recorder) InvokeWithID(proc int32, op OpType, id uint64, reg, value string) {
	r.append(Event{Proc: proc, Kind: Invoke, Op: op, OpID: id, Reg: reg, Value: value})
}

// Return records the matching reply for a previous invocation. For reads,
// value is the value returned.
func (r *Recorder) Return(proc int32, op OpType, opID uint64, reg, value string) {
	r.append(Event{Proc: proc, Kind: Return, Op: op, OpID: opID, Reg: reg, Value: value})
}

// ReturnTagged is Return carrying the operation's tag witness (the tag the
// emulation adopted for the written or returned value); the zero tag means
// no witness was available.
func (r *Recorder) ReturnTagged(proc int32, op OpType, opID uint64, reg, value string, wit tag.Tag) {
	r.append(Event{Proc: proc, Kind: Return, Op: op, OpID: opID, Reg: reg, Value: value, Tag: wit})
}

// Crash records a crash event of proc.
func (r *Recorder) Crash(proc int32) {
	r.append(Event{Proc: proc, Kind: Crash})
}

// Recover records a recovery event of proc.
func (r *Recorder) Recover(proc int32) {
	r.append(Event{Proc: proc, Kind: Recover})
}

func (r *Recorder) append(e Event) {
	// The clock stamp and the append happen under one lock so that the
	// recorded order equals the stamp order even under concurrency.
	r.mu.Lock()
	e.Seq = r.clk.Now().Seq
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// History returns a snapshot of the events recorded so far, in order.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events.Clone()
}

// Len returns the number of events recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
