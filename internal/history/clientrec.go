package history

import (
	"fmt"
	"sync"
	"time"

	"recmem/internal/tag"
)

// ClientRecorder records the history one live-mesh client observes: its own
// invocations, replies, crashes and recoveries, stamped on the local wall
// clock for Merge. Unlike the simulated cluster's global Recorder, a client
// recorder learns about outcomes only through replies, so the recorded
// history must stay well-formed under every arrival order. The rules:
//
//   - A synchronous operation of an up process is attributed to the real
//     process id and recorded invoke→reply like the simulator's.
//   - Concurrent (asynchronous) submissions are attributed to fresh
//     one-shot virtual clients, exactly like the simulated cluster's
//     batching engine: the paper's processes are sequential, so a client
//     multiplexing in-flight operations models a population of independent
//     clients each invoking once.
//   - An operation whose failure proves it never executed (admission
//     rejection; any failed read — reads do not change the register) is
//     erased: the invocation never happened.
//   - An operation whose fate is unknown (crash, timeout, transport
//     failure) stays pending forever — reattributed to a one-shot virtual
//     client if it held the real process id, so the next real invocation is
//     not blocked by it. This only removes precedence edges, which is
//     always sound: the checkers may drop or float an unbounded pending
//     write, never demand one.
//   - A success reply that arrives after the client recorded its process's
//     crash (the server completed the operation before the crash point, the
//     replies raced) is likewise reattributed to a virtual client rather
//     than forged into the pre-crash past.
//
// Replies additionally carry the serving node's incarnation epoch
// (docs/adr/0006), and the recorder compares it across replies to observe
// deaths nobody injected:
//
//   - An epoch that advances between two same-cycle replies, without an
//     injected crash explaining it, proves the node crashed and recovered in
//     between: the recorder places a Crash and a Recover event at the
//     observation point and bumps its crash cycle, so the triggering reply
//     (which straddles the inferred crash) is reattributed to a virtual
//     client like any reply racing a recorded crash.
//   - An epoch that fails to advance past the pre-crash epoch after a
//     recorded crash, or regresses outright, is a protocol violation — the
//     node (or an impostor serving its old storage) is replaying a stale
//     incarnation — reported through EpochViolation and failing Merged.
//
// Safe for concurrent use.
type ClientRecorder struct {
	proc  int32
	vproc func() int32
	now   func() time.Time

	mu          sync.Mutex
	events      []*Event
	nextOp      uint64
	down        bool
	crashes     int // crash events recorded so far (the crash epoch)
	realPending bool
	ops         map[uint64]*openOp // open invocations by op id

	// Incarnation-epoch tracking (docs/adr/0006).
	lastEpoch     uint64 // highest epoch observed in replies so far
	epochFloor    uint64 // epoch at the last recorded crash; post-crash replies must exceed it
	expectAdvance bool   // a recorded crash/recover cycle will explain the next advance
	epochErr      error  // sticky epoch violation
}

// openOp is an invocation awaiting its outcome: the invocation event and
// the crash epoch it was recorded in, so a reply that raced past a whole
// crash/recover cycle is still detected (down alone misses it).
type openOp struct {
	ev      *Event
	crashes int
}

// NewClientRecorder returns a recorder for one client attributed to process
// proc. virtualProc allocates process ids for one-shot virtual clients; it
// must never return an id any recorder of the run uses as a real id (share
// one allocator across the run's recorders).
func NewClientRecorder(proc int32, virtualProc func() int32) *ClientRecorder {
	return &ClientRecorder{
		proc:  proc,
		vproc: virtualProc,
		now:   time.Now,
		ops:   make(map[uint64]*openOp),
	}
}

// Proc returns the real process id the recorder attributes sequential
// operations to.
func (r *ClientRecorder) Proc() int32 { return r.proc }

// Invoke records an operation invocation and returns its id. For writes,
// value is the value being written. concurrent marks an asynchronous
// submission, attributed to a fresh one-shot virtual client; sequential
// invocations use the real process id unless the process is believed down
// (or an earlier real invocation is still unresolved), in which case they
// go virtual too — the program-order edge cannot be proven from here.
func (r *ClientRecorder) Invoke(typ OpType, reg, value string, concurrent bool) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextOp++
	id := r.nextOp
	proc := r.proc
	virtual := concurrent || r.down || r.realPending
	if virtual {
		proc = r.vproc()
	} else {
		r.realPending = true
	}
	ev := &Event{Proc: proc, Kind: Invoke, Op: typ, OpID: id, Reg: reg, Value: value,
		At: r.now().UnixNano()}
	r.events = append(r.events, ev)
	r.ops[id] = &openOp{ev: ev, crashes: r.crashes}
	return id
}

// Return records the successful reply of invocation id: value is the read
// result ("" for writes), wit the tag witness the server reported (zero if
// none), epoch the serving node's incarnation epoch (zero if the backend
// cannot report one, which disables epoch inference for this reply). A reply
// arriving after the process's recorded crash — whether the process is still
// down or has already recovered — is reattributed to a one-shot virtual
// client (see the type comment); so is a reply whose epoch itself reveals an
// unrecorded crash.
func (r *ClientRecorder) Return(id uint64, value string, wit tag.Tag, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.ops[id]
	if op == nil {
		return
	}
	delete(r.ops, id)
	inv := op.ev
	// Epoch inference runs before reattribution: an inferred crash bumps
	// r.crashes, which makes the reattribution below virtualize this very
	// reply — it completed in the incarnation after the inferred crash.
	r.observeEpoch(epoch, op)
	if inv.Proc == r.proc {
		r.realPending = false
		if r.down || r.crashes != op.crashes {
			inv.Proc = r.vproc()
		}
	}
	r.events = append(r.events, &Event{Proc: inv.Proc, Kind: Return, Op: inv.Op,
		OpID: id, Reg: inv.Reg, Value: value, Tag: wit, Epoch: epoch,
		At: r.now().UnixNano()})
}

// observeEpoch folds one reply's incarnation epoch into the recorder's
// tracking: inference of unrecorded crashes and detection of stale-epoch
// violations. Called with r.mu held, before the reply's reattribution check.
func (r *ClientRecorder) observeEpoch(epoch uint64, op *openOp) {
	if epoch == 0 {
		return
	}
	if op.crashes != r.crashes || r.down {
		// A straggler from before a recorded crash (or a reply racing the
		// recorded down state): its epoch proves nothing about the current
		// incarnation, so no checks and no inference — only keep the
		// high-water mark honest.
		if epoch > r.lastEpoch {
			r.lastEpoch = epoch
		}
		return
	}
	switch {
	case r.lastEpoch == 0:
		// First epoch ever observed. A seeded floor (a crash recorded before
		// any epoch was seen) still applies.
		r.expectAdvance = false
		r.lastEpoch = epoch
		if r.epochFloor > 0 && epoch <= r.epochFloor {
			r.setEpochErr(epoch)
		}
	case epoch < r.lastEpoch:
		r.setEpochErr(epoch)
	case epoch == r.lastEpoch:
		// Same incarnation — unless a crash was recorded since the epoch was
		// observed, in which case the node was required to mint past it.
		if r.epochFloor > 0 && epoch <= r.epochFloor {
			r.setEpochErr(epoch)
		}
	default: // epoch > r.lastEpoch
		if r.expectAdvance {
			// The advance is explained by the crash/recover cycle already
			// recorded (every recovery mints a fresh epoch).
			r.expectAdvance = false
		} else {
			// Unrecorded death: the node crashed and recovered between two
			// replies without anybody injecting it. Place the cycle at the
			// observation point — the reply that revealed it completed after
			// the recovery, and is virtualized by the crash-cycle bump.
			now := r.now().UnixNano()
			r.epochFloor = r.lastEpoch
			r.crashes++
			r.events = append(r.events,
				&Event{Proc: r.proc, Kind: Crash, At: now},
				&Event{Proc: r.proc, Kind: Recover, At: now})
		}
		r.lastEpoch = epoch
	}
}

// setEpochErr records the sticky epoch violation.
func (r *ClientRecorder) setEpochErr(epoch uint64) {
	if r.epochErr == nil {
		r.epochErr = fmt.Errorf("history: epoch violation at process %d: reply carries incarnation epoch %d, not past %d (floor %d) — the node regressed or failed to bump its incarnation on restart",
			r.proc, epoch, r.lastEpoch, r.epochFloor)
	}
}

// EpochViolation returns the sticky incarnation-epoch violation, if any: a
// reply whose epoch regressed or failed to advance past a recorded crash.
// RecordingGroup.Merged surfaces it before verification.
func (r *ClientRecorder) EpochViolation() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epochErr
}

// AbortFate classifies a failed operation for Abort.
type AbortFate int

const (
	// AbortRejected: the failure proves the operation never executed
	// (admission rejection such as ErrDown or ErrNotWriter — or any failed
	// read, which has no effect to verify). The invocation is erased.
	AbortRejected AbortFate = iota + 1
	// AbortUnknown: the operation may or may not have taken effect (crash,
	// timeout, transport failure). The invocation stays pending forever, on
	// a one-shot virtual client if it held the real process id.
	AbortUnknown
)

// Abort resolves invocation id without a reply.
func (r *ClientRecorder) Abort(id uint64, fate AbortFate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := r.ops[id]
	if op == nil {
		return
	}
	delete(r.ops, id)
	inv := op.ev
	if inv.Proc == r.proc {
		r.realPending = false
	}
	switch fate {
	case AbortRejected:
		inv.Kind = 0 // tombstone; dropped from snapshots
	default:
		if inv.Proc == r.proc {
			inv.Proc = r.vproc()
		}
	}
}

// Crash records a confirmed crash of the real process. Call it only when
// the crash is acknowledged (the injection succeeded); a duplicate is
// ignored.
func (r *ClientRecorder) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		return
	}
	r.down = true
	r.crashes++
	// The crash obligates the node's next incarnation to mint past every
	// epoch observed so far; the matching advance is already explained.
	r.epochFloor = r.lastEpoch
	r.expectAdvance = true
	r.events = append(r.events, &Event{Proc: r.proc, Kind: Crash, At: r.now().UnixNano()})
}

// Recover records a confirmed recovery of the real process; ignored if no
// crash is recorded.
func (r *ClientRecorder) Recover() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.down {
		return
	}
	r.down = false
	r.events = append(r.events, &Event{Proc: r.proc, Kind: Recover, At: r.now().UnixNano()})
}

// SeedFrom carries a predecessor recorder's incarnation-epoch knowledge (and
// down state) into this one, so a fresh recorder wrapping the same client in
// a later verification round keeps holding the node to the epochs it already
// exposed — a restart between rounds is still inferred, and a stale replay
// across the round boundary is still a violation. Call before recording.
func (r *ClientRecorder) SeedFrom(prev *ClientRecorder) {
	prev.mu.Lock()
	lastEpoch, floor, expect, err, down := prev.lastEpoch, prev.epochFloor,
		prev.expectAdvance, prev.epochErr, prev.down
	prev.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastEpoch = lastEpoch
	r.epochFloor = floor
	r.expectAdvance = expect
	r.epochErr = err
	if down {
		// The process was down at the hand-off: open this history with the
		// crash so the recovery that follows has its matching event.
		r.down = true
		r.crashes = 1
		r.events = append(r.events, &Event{Proc: r.proc, Kind: Crash, At: r.now().UnixNano()})
	}
}

// History snapshots the recorded events on a local 1..n timeline, ready for
// Merge.
func (r *ClientRecorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(History, 0, len(r.events))
	for _, ev := range r.events {
		if ev.Kind == 0 {
			continue
		}
		e := *ev
		e.Seq = int64(len(out) + 1)
		out = append(out, e)
	}
	return out
}
