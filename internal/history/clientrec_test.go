package history

import (
	"strings"
	"sync/atomic"
	"testing"

	"recmem/internal/tag"
)

// valloc returns a shared virtual-process allocator starting at base.
func valloc(base int32) func() int32 {
	var n atomic.Int32
	n.Store(base)
	return func() int32 { return n.Add(1) - 1 }
}

func TestClientRecorderSequentialFlow(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	w := r.Invoke(Write, "x", "v1", false)
	r.Return(w, "", tag.Tag{Seq: 1}, 0)
	rd := r.Invoke(Read, "x", "", false)
	r.Return(rd, "v1", tag.Tag{Seq: 1}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h) != 4 {
		t.Fatalf("recorded %d events, want 4", len(h))
	}
	for _, e := range h {
		if e.Proc != 0 {
			t.Fatalf("sequential op attributed to virtual process %d", e.Proc)
		}
		if e.At == 0 {
			t.Fatal("event missing wall-clock stamp")
		}
	}
	ops := h.Operations()
	if len(ops) != 2 || ops[0].Pending() || ops[1].Pending() {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[1].Tag != (tag.Tag{Seq: 1}) {
		t.Fatalf("read witness = %v", ops[1].Tag)
	}
}

func TestClientRecorderAsyncGoesVirtual(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", true)
	b := r.Invoke(Write, "x", "b", true)
	r.Return(a, "", tag.Tag{Seq: 1}, 0)
	r.Return(b, "", tag.Tag{Seq: 2}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	procs := map[int32]bool{}
	for _, e := range h {
		procs[e.Proc] = true
		if e.Proc < 100 {
			t.Fatalf("async op attributed to real process %d", e.Proc)
		}
	}
	if len(procs) != 2 {
		t.Fatalf("async ops share a virtual process: %v", procs)
	}
}

func TestClientRecorderRejectedErased(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Abort(id, AbortRejected)
	if h := r.History(); len(h) != 0 {
		t.Fatalf("rejected invocation survived: %+v", h)
	}
	// The real process id is free again.
	id = r.Invoke(Write, "x", "v2", false)
	r.Return(id, "", tag.Tag{Seq: 1}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0].Proc != 0 {
		t.Fatalf("h = %+v", h)
	}
}

func TestClientRecorderUnknownFateStaysPendingVirtual(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Abort(id, AbortUnknown)
	next := r.Invoke(Write, "x", "v2", false)
	r.Return(next, "", tag.Tag{Seq: 1}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 2 {
		t.Fatalf("ops = %+v", ops)
	}
	if !ops[0].Pending() || ops[0].Proc < 100 {
		t.Fatalf("unknown-fate op = %+v (want pending on a virtual process)", ops[0])
	}
	if ops[1].Proc != 0 {
		t.Fatalf("next op = %+v (want the real process)", ops[1])
	}
}

func TestClientRecorderCrashRecover(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Crash()
	r.Crash() // duplicate confirmation: ignored
	r.Abort(id, AbortUnknown)
	r.Recover()
	next := r.Invoke(Read, "x", "", false)
	r.Return(next, "v", tag.Tag{Seq: 1}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	var crashes, recovers int
	for _, e := range h {
		switch e.Kind {
		case Crash:
			crashes++
		case Recover:
			recovers++
		}
	}
	if crashes != 1 || recovers != 1 {
		t.Fatalf("%d crashes, %d recovers", crashes, recovers)
	}
}

// A success reply racing past the recorded crash is reattributed, never
// forged into the pre-crash past.
func TestClientRecorderLateSuccessAfterCrash(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Crash()
	r.Return(id, "", tag.Tag{Seq: 1}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 1 || ops[0].Pending() || ops[0].Proc < 100 {
		t.Fatalf("ops = %+v (want completed on a virtual process)", ops)
	}
}

// Regression: the reply may race past an entire crash/recover cycle — the
// process is up again when it lands, but a crash still intervened since the
// invocation, so it must be reattributed (the `down` check alone produced
// Invoke, Crash, Recover, Return on one process: ill-formed).
func TestClientRecorderLateSuccessAfterCrashAndRecover(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Crash()
	r.Recover()
	r.Return(id, "", tag.Tag{Seq: 1}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 1 || ops[0].Pending() || ops[0].Proc < 100 {
		t.Fatalf("ops = %+v (want completed on a virtual process)", ops)
	}
	// The real process is free for the next sequential op.
	next := r.Invoke(Read, "x", "", false)
	r.Return(next, "v", tag.Tag{Seq: 1}, 0)
	h = r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if last := h[len(h)-1]; last.Proc != 0 {
		t.Fatalf("next op attributed to %d, want the real process", last.Proc)
	}
}

// counts tallies the crash/recover events of a history.
func counts(h History) (crashes, recovers int) {
	for _, e := range h {
		switch e.Kind {
		case Crash:
			crashes++
		case Recover:
			recovers++
		}
	}
	return
}

// An epoch advance with no injected crash on record is a death nobody
// injected — the real process restart of a kill-torture run. The recorder
// must infer the crash/recover pair and reattribute the triggering reply
// (it completed in an incarnation the recorder never saw start).
func TestClientRecorderInfersCrashFromEpochAdvance(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", false)
	r.Return(a, "", tag.Tag{Seq: 1}, 5)
	b := r.Invoke(Write, "x", "b", false)
	r.Return(b, "", tag.Tag{Seq: 2}, 6) // node restarted mid-op
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	crashes, recovers := counts(h)
	if crashes != 1 || recovers != 1 {
		t.Fatalf("%d crashes, %d recovers (want 1 inferred pair)", crashes, recovers)
	}
	ops := h.Operations()
	if len(ops) != 2 || ops[1].Proc < 100 {
		t.Fatalf("ops = %+v (want the epoch-crossing op on a virtual process)", ops)
	}
	if err := r.EpochViolation(); err != nil {
		t.Fatal(err)
	}
}

// An epoch advance right after an INJECTED crash is the expected recovery,
// not a second death: no extra events may appear.
func TestClientRecorderEpochAdvanceAfterInjectedCrash(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", false)
	r.Return(a, "", tag.Tag{Seq: 1}, 5)
	r.Crash()
	r.Recover()
	b := r.Invoke(Write, "x", "b", false)
	r.Return(b, "", tag.Tag{Seq: 2}, 6)
	c := r.Invoke(Read, "x", "", false)
	r.Return(c, "b", tag.Tag{Seq: 2}, 6)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	crashes, recovers := counts(h)
	if crashes != 1 || recovers != 1 {
		t.Fatalf("%d crashes, %d recovers (want only the injected pair)", crashes, recovers)
	}
	if err := r.EpochViolation(); err != nil {
		t.Fatal(err)
	}
}

// An epoch going backwards is not a crash but a broken node (stale
// incarnation replay): the recorder reports a sticky violation.
func TestClientRecorderEpochRegressionIsViolation(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", false)
	r.Return(a, "", tag.Tag{Seq: 1}, 6)
	b := r.Invoke(Write, "x", "b", false)
	r.Return(b, "", tag.Tag{Seq: 2}, 5)
	err := r.EpochViolation()
	if err == nil {
		t.Fatal("epoch regression went unreported")
	}
	if got := err.Error(); !strings.Contains(got, "violation") {
		t.Fatalf("err = %q, want it to name a violation", got)
	}
	// Well-formedness is preserved regardless.
	if err := r.History().Validate(); err != nil {
		t.Fatal(err)
	}
}

// A node that fails to mint past a recorded crash — the -freeze-epoch
// negative control — violates the floor set at the injected crash.
func TestClientRecorderFrozenEpochAfterCrashIsViolation(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", false)
	r.Return(a, "", tag.Tag{Seq: 1}, 5)
	r.Crash()
	r.Recover()
	b := r.Invoke(Write, "x", "b", false)
	r.Return(b, "", tag.Tag{Seq: 2}, 5) // same epoch past a crash: frozen
	if r.EpochViolation() == nil {
		t.Fatal("frozen epoch past an injected crash went unreported")
	}
}

// Zero epochs (a backend without epoch support) disable the inference
// entirely — no events, no violations.
func TestClientRecorderZeroEpochIgnored(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", false)
	r.Return(a, "", tag.Tag{Seq: 1}, 0)
	b := r.Invoke(Write, "x", "b", false)
	r.Return(b, "", tag.Tag{Seq: 2}, 0)
	if c, rec := counts(r.History()); c != 0 || rec != 0 {
		t.Fatalf("%d crashes, %d recovers from zero epochs", c, rec)
	}
	if err := r.EpochViolation(); err != nil {
		t.Fatal(err)
	}
}

// SeedFrom carries the epoch knowledge into a continuation recorder: a
// regression across the round boundary is still a violation.
func TestClientRecorderSeedFromCarriesEpochFloor(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", false)
	r.Return(a, "", tag.Tag{Seq: 1}, 7)

	next := NewClientRecorder(0, valloc(200))
	next.SeedFrom(r)
	b := next.Invoke(Write, "x", "b", false)
	next.Return(b, "", tag.Tag{Seq: 2}, 6)
	if next.EpochViolation() == nil {
		t.Fatal("cross-round epoch regression went unreported")
	}
}

// An invocation while the process is believed down (or while an earlier
// real invocation is unresolved) goes virtual so the local history stays
// well-formed whatever the reply order.
func TestClientRecorderInvokeWhileDownOrPending(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	r.Crash()
	id := r.Invoke(Read, "x", "", false)
	r.Return(id, "", tag.Tag{}, 0)
	r.Recover()

	first := r.Invoke(Write, "x", "a", false)
	second := r.Invoke(Write, "x", "b", false) // first still unresolved
	r.Return(second, "", tag.Tag{Seq: 2}, 0)
	r.Return(first, "", tag.Tag{Seq: 1}, 0)
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 3 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Proc < 100 || ops[2].Proc < 100 {
		t.Fatalf("down-time and overlapping invocations must go virtual: %+v", ops)
	}
	if ops[1].Proc != 0 {
		t.Fatalf("first write should hold the real process: %+v", ops)
	}
}
