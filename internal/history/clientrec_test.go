package history

import (
	"sync/atomic"
	"testing"

	"recmem/internal/tag"
)

// valloc returns a shared virtual-process allocator starting at base.
func valloc(base int32) func() int32 {
	var n atomic.Int32
	n.Store(base)
	return func() int32 { return n.Add(1) - 1 }
}

func TestClientRecorderSequentialFlow(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	w := r.Invoke(Write, "x", "v1", false)
	r.Return(w, "", tag.Tag{Seq: 1})
	rd := r.Invoke(Read, "x", "", false)
	r.Return(rd, "v1", tag.Tag{Seq: 1})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h) != 4 {
		t.Fatalf("recorded %d events, want 4", len(h))
	}
	for _, e := range h {
		if e.Proc != 0 {
			t.Fatalf("sequential op attributed to virtual process %d", e.Proc)
		}
		if e.At == 0 {
			t.Fatal("event missing wall-clock stamp")
		}
	}
	ops := h.Operations()
	if len(ops) != 2 || ops[0].Pending() || ops[1].Pending() {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[1].Tag != (tag.Tag{Seq: 1}) {
		t.Fatalf("read witness = %v", ops[1].Tag)
	}
}

func TestClientRecorderAsyncGoesVirtual(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	a := r.Invoke(Write, "x", "a", true)
	b := r.Invoke(Write, "x", "b", true)
	r.Return(a, "", tag.Tag{Seq: 1})
	r.Return(b, "", tag.Tag{Seq: 2})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	procs := map[int32]bool{}
	for _, e := range h {
		procs[e.Proc] = true
		if e.Proc < 100 {
			t.Fatalf("async op attributed to real process %d", e.Proc)
		}
	}
	if len(procs) != 2 {
		t.Fatalf("async ops share a virtual process: %v", procs)
	}
}

func TestClientRecorderRejectedErased(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Abort(id, AbortRejected)
	if h := r.History(); len(h) != 0 {
		t.Fatalf("rejected invocation survived: %+v", h)
	}
	// The real process id is free again.
	id = r.Invoke(Write, "x", "v2", false)
	r.Return(id, "", tag.Tag{Seq: 1})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h) != 2 || h[0].Proc != 0 {
		t.Fatalf("h = %+v", h)
	}
}

func TestClientRecorderUnknownFateStaysPendingVirtual(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Abort(id, AbortUnknown)
	next := r.Invoke(Write, "x", "v2", false)
	r.Return(next, "", tag.Tag{Seq: 1})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 2 {
		t.Fatalf("ops = %+v", ops)
	}
	if !ops[0].Pending() || ops[0].Proc < 100 {
		t.Fatalf("unknown-fate op = %+v (want pending on a virtual process)", ops[0])
	}
	if ops[1].Proc != 0 {
		t.Fatalf("next op = %+v (want the real process)", ops[1])
	}
}

func TestClientRecorderCrashRecover(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Crash()
	r.Crash() // duplicate confirmation: ignored
	r.Abort(id, AbortUnknown)
	r.Recover()
	next := r.Invoke(Read, "x", "", false)
	r.Return(next, "v", tag.Tag{Seq: 1})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	var crashes, recovers int
	for _, e := range h {
		switch e.Kind {
		case Crash:
			crashes++
		case Recover:
			recovers++
		}
	}
	if crashes != 1 || recovers != 1 {
		t.Fatalf("%d crashes, %d recovers", crashes, recovers)
	}
}

// A success reply racing past the recorded crash is reattributed, never
// forged into the pre-crash past.
func TestClientRecorderLateSuccessAfterCrash(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Crash()
	r.Return(id, "", tag.Tag{Seq: 1})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 1 || ops[0].Pending() || ops[0].Proc < 100 {
		t.Fatalf("ops = %+v (want completed on a virtual process)", ops)
	}
}

// Regression: the reply may race past an entire crash/recover cycle — the
// process is up again when it lands, but a crash still intervened since the
// invocation, so it must be reattributed (the `down` check alone produced
// Invoke, Crash, Recover, Return on one process: ill-formed).
func TestClientRecorderLateSuccessAfterCrashAndRecover(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	id := r.Invoke(Write, "x", "v", false)
	r.Crash()
	r.Recover()
	r.Return(id, "", tag.Tag{Seq: 1})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 1 || ops[0].Pending() || ops[0].Proc < 100 {
		t.Fatalf("ops = %+v (want completed on a virtual process)", ops)
	}
	// The real process is free for the next sequential op.
	next := r.Invoke(Read, "x", "", false)
	r.Return(next, "v", tag.Tag{Seq: 1})
	h = r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if last := h[len(h)-1]; last.Proc != 0 {
		t.Fatalf("next op attributed to %d, want the real process", last.Proc)
	}
}

// An invocation while the process is believed down (or while an earlier
// real invocation is unresolved) goes virtual so the local history stays
// well-formed whatever the reply order.
func TestClientRecorderInvokeWhileDownOrPending(t *testing.T) {
	r := NewClientRecorder(0, valloc(100))
	r.Crash()
	id := r.Invoke(Read, "x", "", false)
	r.Return(id, "", tag.Tag{})
	r.Recover()

	first := r.Invoke(Write, "x", "a", false)
	second := r.Invoke(Write, "x", "b", false) // first still unresolved
	r.Return(second, "", tag.Tag{Seq: 2})
	r.Return(first, "", tag.Tag{Seq: 1})
	h := r.History()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := h.Operations()
	if len(ops) != 3 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Proc < 100 || ops[2].Proc < 100 {
		t.Fatalf("down-time and overlapping invocations must go virtual: %+v", ops)
	}
	if ops[1].Proc != 0 {
		t.Fatalf("first write should hold the real process: %+v", ops)
	}
}
