// Package workload generates and drives client workloads against a cluster:
// closed-loop clients (one per process, operations back to back, as in the
// paper's measurements of fifty consecutive writes), configurable read/write
// mixes over one or more registers, and payload sizing for the Fig. 6
// experiments. Written values are globally unique, which gives the atomicity
// checkers maximal discriminating power.
package workload

import (
	"context"
	"fmt"
	"strings"

	"recmem"
	"recmem/internal/cluster"
)

// Mix describes the operation mix of a workload.
type Mix struct {
	// ReadFraction is the probability in [0,1] that an operation is a read.
	ReadFraction float64
	// Registers is the set of register names operated on (default ["x"]).
	Registers []string
	// ValueSize pads written values to this many bytes (0 = unpadded short
	// strings, like the paper's 4-byte integers).
	ValueSize int
	// Async, when at least 2, drives each client through the asynchronous
	// submission API (Cluster.SubmitWrite/SubmitRead) with up to Async
	// operations in flight, engaging the batching + pipelining engine:
	// concurrent operations on one register coalesce into shared quorum
	// rounds and different registers' rounds overlap. 0 or 1 keeps the
	// paper's closed-loop sequential clients.
	Async int
	// Forgive, if non-nil, classifies matching operation errors as
	// Interrupted instead of Errors. Torture runs with storage fault
	// injection use it for stable.ErrInjected: a writer whose own log fails
	// aborts its operation — an expected casualty, not a protocol failure.
	// The model has no aborted operations, so the sequential client then
	// crashes and recovers the process: a process that cannot log abandons
	// its operation only by crashing, which keeps the recorded history
	// well-formed (the pending invocation is followed by a crash event).
	Forgive func(error) bool
	// Record, when non-nil, drives every client through a recording wrapper
	// of the group (RecordClients), so the run yields per-client histories
	// that merge into a verifiable global one (docs/adr/0004) — the way
	// live-mesh runs, which have no global observer, get checked. Pass the
	// same group to ClientFaultOptions.Record so injected crash/recovery
	// events are recorded too; after the run, Record.Histories() returns
	// the per-client histories and Record.Verify(criterion) the merged
	// verdict.
	Record *recmem.RecordingGroup
}

// Result summarizes a driven workload.
type Result struct {
	// Writes and Reads count completed operations.
	Writes, Reads int
	// Interrupted counts operations that failed with ErrCrashed or ErrDown
	// (their invocations may stay pending in the history).
	Interrupted int
	// Errors counts unexpected failures.
	Errors int
}

// Run drives opsPerProc operations at each listed process, one sequential
// client per process (the paper's processes are sequential). It tolerates
// crash interruptions — the natural situation under fault injection — and
// returns aggregate counts. Run stops early when ctx is done.
//
// Run is the cluster-specific entry point; it adapts the processes to
// recmem.Client (see Clients) and delegates to the backend-agnostic
// RunClients, so the driven scenario is byte-for-byte the one a live TCP
// mesh gets.
func Run(ctx context.Context, c *cluster.Cluster, procs []int32, opsPerProc int, mix Mix, seed int64) Result {
	return RunClients(ctx, Clients(c, procs), opsPerProc, mix, seed)
}

// UniqueValue builds a globally unique value for process proc's i-th write,
// padded to size bytes when size exceeds the identifying prefix.
func UniqueValue(proc int32, i, size int) string {
	v := fmt.Sprintf("p%d-%d", proc, i)
	if size > len(v) {
		v += strings.Repeat(".", size-len(v))
	}
	return v
}

// AllProcs returns [0, 1, ..., n-1], a convenience for driving every
// process.
func AllProcs(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
