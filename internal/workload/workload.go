// Package workload generates and drives client workloads against a cluster:
// closed-loop clients (one per process, operations back to back, as in the
// paper's measurements of fifty consecutive writes), configurable read/write
// mixes over one or more registers, and payload sizing for the Fig. 6
// experiments. Written values are globally unique, which gives the atomicity
// checkers maximal discriminating power.
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"recmem/internal/cluster"
	"recmem/internal/core"
)

// Mix describes the operation mix of a workload.
type Mix struct {
	// ReadFraction is the probability in [0,1] that an operation is a read.
	ReadFraction float64
	// Registers is the set of register names operated on (default ["x"]).
	Registers []string
	// ValueSize pads written values to this many bytes (0 = unpadded short
	// strings, like the paper's 4-byte integers).
	ValueSize int
	// Async, when at least 2, drives each client through the asynchronous
	// submission API (Cluster.SubmitWrite/SubmitRead) with up to Async
	// operations in flight, engaging the batching + pipelining engine:
	// concurrent operations on one register coalesce into shared quorum
	// rounds and different registers' rounds overlap. 0 or 1 keeps the
	// paper's closed-loop sequential clients.
	Async int
	// Forgive, if non-nil, classifies matching operation errors as
	// Interrupted instead of Errors. Torture runs with storage fault
	// injection use it for stable.ErrInjected: a writer whose own log fails
	// aborts its operation — an expected casualty, not a protocol failure.
	// The model has no aborted operations, so the sequential client then
	// crashes and recovers the process: a process that cannot log abandons
	// its operation only by crashing, which keeps the recorded history
	// well-formed (the pending invocation is followed by a crash event).
	Forgive func(error) bool
}

// Result summarizes a driven workload.
type Result struct {
	// Writes and Reads count completed operations.
	Writes, Reads int
	// Interrupted counts operations that failed with ErrCrashed or ErrDown
	// (their invocations may stay pending in the history).
	Interrupted int
	// Errors counts unexpected failures.
	Errors int
}

// Run drives opsPerProc operations at each listed process, one sequential
// client per process (the paper's processes are sequential). It tolerates
// crash interruptions — the natural situation under fault injection — and
// returns aggregate counts. Run stops early when ctx is done.
func Run(ctx context.Context, c *cluster.Cluster, procs []int32, opsPerProc int, mix Mix, seed int64) Result {
	regs := mix.Registers
	if len(regs) == 0 {
		regs = []string{"x"}
	}
	var (
		mu    sync.Mutex
		total Result
		wg    sync.WaitGroup
	)
	for _, proc := range procs {
		wg.Add(1)
		go func(proc int32) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(proc)*7919))
			var local Result
			if mix.Async >= 2 {
				local = runAsync(ctx, c, proc, opsPerProc, mix, regs, rng)
				mu.Lock()
				total.Writes += local.Writes
				total.Reads += local.Reads
				total.Interrupted += local.Interrupted
				total.Errors += local.Errors
				mu.Unlock()
				return
			}
			for i := 0; i < opsPerProc && ctx.Err() == nil; i++ {
				reg := regs[rng.Intn(len(regs))]
				var err error
				if rng.Float64() < mix.ReadFraction {
					_, _, err = c.Read(ctx, proc, reg)
					if err == nil {
						local.Reads++
					}
				} else {
					val := UniqueValue(proc, i, mix.ValueSize)
					_, err = c.Write(ctx, proc, reg, []byte(val))
					if err == nil {
						local.Writes++
					}
				}
				if err != nil {
					switch {
					case errors.Is(err, core.ErrCrashed), errors.Is(err, core.ErrDown):
						local.Interrupted++
						// Wait out the crash; the process may recover.
						select {
						case <-time.After(2 * time.Millisecond):
						case <-ctx.Done():
						}
					case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
						// Run is ending.
					case mix.Forgive != nil && mix.Forgive(err):
						local.Interrupted++
						crashAfterAbort(ctx, c, proc)
					default:
						local.Errors++
					}
				}
			}
			mu.Lock()
			total.Writes += local.Writes
			total.Reads += local.Reads
			total.Interrupted += local.Interrupted
			total.Errors += local.Errors
			mu.Unlock()
		}(proc)
	}
	wg.Wait()
	return total
}

// crashAfterAbort turns a forgiven operation abort into the model's only
// legal way out of an operation: a crash, followed by recovery attempts
// (which may themselves be refused by injected storage faults) until the
// process is back or the run ends.
func crashAfterAbort(ctx context.Context, c *cluster.Cluster, proc int32) {
	if !c.Crash(proc) {
		return // already down; someone else records the crash
	}
	for ctx.Err() == nil {
		err := c.Recover(ctx, proc)
		if err == nil || errors.Is(err, core.ErrNotDown) {
			return
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

// pendingOp is one submitted-but-unwaited operation of an async client.
type pendingOp struct {
	fut  *core.Future
	read bool
}

// runAsync is the windowed-submission client: it keeps up to mix.Async
// operations in flight through the batching engine, waiting the oldest out
// when the window fills — a closed loop over the window rather than over a
// single operation.
func runAsync(ctx context.Context, c *cluster.Cluster, proc int32, opsPerProc int, mix Mix, regs []string, rng *rand.Rand) Result {
	var local Result
	window := make([]pendingOp, 0, mix.Async)
	settle := func(p pendingOp) {
		_, err := p.fut.Wait(ctx)
		switch {
		case err == nil:
			if p.read {
				local.Reads++
			} else {
				local.Writes++
			}
		case errors.Is(err, core.ErrCrashed), errors.Is(err, core.ErrDown):
			local.Interrupted++
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		case mix.Forgive != nil && mix.Forgive(err):
			local.Interrupted++
		default:
			local.Errors++
		}
	}
	for i := 0; i < opsPerProc && ctx.Err() == nil; i++ {
		reg := regs[rng.Intn(len(regs))]
		var (
			fut  *core.Future
			read bool
			err  error
		)
		if rng.Float64() < mix.ReadFraction {
			read = true
			fut, err = c.SubmitRead(proc, reg)
		} else {
			fut, err = c.SubmitWrite(proc, reg, []byte(UniqueValue(proc, i, mix.ValueSize)))
		}
		if err != nil {
			if errors.Is(err, core.ErrCrashed) || errors.Is(err, core.ErrDown) {
				local.Interrupted++
				select {
				case <-time.After(2 * time.Millisecond):
				case <-ctx.Done():
				}
			} else {
				local.Errors++
			}
			continue
		}
		window = append(window, pendingOp{fut: fut, read: read})
		if len(window) >= mix.Async {
			settle(window[0])
			window = window[1:]
		}
	}
	for _, p := range window {
		settle(p)
	}
	return local
}

// UniqueValue builds a globally unique value for process proc's i-th write,
// padded to size bytes when size exceeds the identifying prefix.
func UniqueValue(proc int32, i, size int) string {
	v := fmt.Sprintf("p%d-%d", proc, i)
	if size > len(v) {
		v += strings.Repeat(".", size-len(v))
	}
	return v
}

// AllProcs returns [0, 1, ..., n-1], a convenience for driving every
// process.
func AllProcs(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
