package workload_test

import (
	"context"
	"testing"
	"time"

	"recmem"
	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/workload"
)

// TestRunClientsOverClusterAdapter drives RunClients through the Clients
// adapter and checks the histories verify exactly like the proc-based Run:
// the adapter is the sim's recmem.Client face.
func TestRunClientsOverClusterAdapter(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	clients := workload.Clients(c, workload.AllProcs(3))
	res := workload.RunClients(ctx, clients, 12,
		workload.Mix{ReadFraction: 0.5, Registers: []string{"a", "b"}}, 1)
	if res.Writes+res.Reads != 36 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if got := len(c.History().Operations()); got != 36 {
		t.Fatalf("history has %d operations, want 36", got)
	}
	if err := c.VerifyDefault(); err != nil {
		t.Fatalf("client-driven history does not verify: %v", err)
	}
}

// TestClientFaultsKeepsMajority injects faults through the Client interface
// while a workload runs and checks the invariants: never more than a
// minority down, everything recovered at the end, history verifiable.
func TestClientFaultsKeepsMajority(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	clients := workload.Clients(c, workload.AllProcs(3))
	faultCtx, stopFaults := context.WithTimeout(ctx, 200*time.Millisecond)
	defer stopFaults()
	faultsDone := make(chan int, 1)
	go func() {
		faultsDone <- workload.ClientFaults(faultCtx, clients, workload.ClientFaultOptions{
			Seed: 7, MeanInterval: 5 * time.Millisecond,
		})
	}()
	res := workload.RunClients(ctx, clients, 40,
		workload.Mix{ReadFraction: 0.4, Registers: []string{"a"}}, 3)
	crashes := <-faultsDone
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", res)
	}
	if crashes == 0 {
		t.Fatal("fault injector never crashed anything")
	}
	// Everything is up again (ClientFaults recovers what it downed).
	for p := int32(0); p < 3; p++ {
		if !c.Node(p).Up() {
			t.Fatalf("process %d still down after ClientFaults returned", p)
		}
	}
	if err := c.Check(c.DefaultMode()); err != nil {
		t.Fatal(err)
	}
}

// TestClientFaultsRefusesTotalCrash: with one client there is no safe
// minority to crash.
func TestClientFaultsRefusesTotalCrash(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         1,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	clients := workload.Clients(c, workload.AllProcs(1))
	if n := workload.ClientFaults(ctx, clients, workload.ClientFaultOptions{Seed: 1}); n != 0 {
		t.Fatalf("injected %d crashes into a majority-less system", n)
	}
}

// TestAdapterRegisterCaching pins that the adapter hands out one handle per
// register name (the cached-resolution contract).
func TestAdapterRegisterCaching(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         1,
		Algorithm: core.CrashStop,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	client := workload.Clients(c, []int32{0})[0]
	if client.Register("x") != client.Register("x") {
		t.Fatal("adapter did not cache the register handle")
	}
	var _ recmem.Client = client
}

// TestRunClientsRecorded drives the identical scenario with Mix.Record and
// ClientFaultOptions.Record set: both observers — the cluster's global
// recorder and the merged per-client recordings — must verify the run.
func TestRunClientsRecorded(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	group := recmem.NewRecordingGroup()
	clients := workload.Clients(c, workload.AllProcs(3))

	faultCtx, stopFaults := context.WithTimeout(ctx, 300*time.Millisecond)
	defer stopFaults()
	faultsDone := make(chan int, 1)
	go func() {
		faultsDone <- workload.ClientFaults(faultCtx, clients, workload.ClientFaultOptions{
			Seed: 9, MeanInterval: 10 * time.Millisecond, Record: group,
		})
	}()
	res := workload.RunClients(ctx, clients, 15,
		workload.Mix{ReadFraction: 0.5, Registers: []string{"a", "b"}, Record: group}, 2)
	<-faultsDone
	if err := c.RecoverAll(ctx); err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	hs := group.Histories()
	if len(hs) != 3 {
		t.Fatalf("recorded %d per-client histories, want 3", len(hs))
	}
	var events int
	for _, h := range hs {
		events += len(h)
	}
	if events == 0 {
		t.Fatal("recorded no events")
	}
	if err := group.Verify(recmem.PersistentAtomicity); err != nil {
		t.Fatalf("merged recording: %v", err)
	}
	if err := c.VerifyDefault(); err != nil {
		t.Fatalf("global observer: %v", err)
	}
}

// TestRunClientsRecordedAsync engages the batching engine under recording:
// async submissions ride one-shot virtual clients in the merged history.
func TestRunClientsRecordedAsync(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	group := recmem.NewRecordingGroup()
	res := workload.RunClients(ctx, workload.Clients(c, workload.AllProcs(3)), 12,
		workload.Mix{ReadFraction: 0.4, Async: 4, Record: group}, 3)
	if res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	merged, err := group.Merged()
	if err != nil {
		t.Fatal(err)
	}
	virtual := false
	for _, e := range merged {
		if e.Proc >= recmem.RecordingVirtualBase {
			virtual = true
			break
		}
	}
	if !virtual {
		t.Fatal("async recording attributed no virtual clients")
	}
	if err := group.Verify(recmem.PersistentAtomicity); err != nil {
		t.Fatalf("merged async recording: %v", err)
	}
}
