package workload_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"recmem/internal/cluster"
	"recmem/internal/core"
	"recmem/internal/workload"
)

func TestUniqueValue(t *testing.T) {
	seen := make(map[string]bool)
	for proc := int32(0); proc < 4; proc++ {
		for i := 0; i < 50; i++ {
			v := workload.UniqueValue(proc, i, 0)
			if seen[v] {
				t.Fatalf("duplicate value %q", v)
			}
			seen[v] = true
		}
	}
	if v := workload.UniqueValue(1, 2, 32); len(v) != 32 {
		t.Fatalf("padded value has length %d, want 32", len(v))
	}
	if !strings.HasPrefix(workload.UniqueValue(1, 2, 32), "p1-2") {
		t.Fatal("padding destroyed the identifying prefix")
	}
	// Short size requests keep the full identifier.
	if v := workload.UniqueValue(1, 2, 2); v != "p1-2" {
		t.Fatalf("short size truncated the value: %q", v)
	}
}

func TestAllProcs(t *testing.T) {
	got := workload.AllProcs(3)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("AllProcs = %v", got)
	}
	if workload.AllProcs(0) != nil && len(workload.AllProcs(0)) != 0 {
		t.Fatal("AllProcs(0) not empty")
	}
}

func TestRunCompletesAllOps(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res := workload.Run(ctx, c, workload.AllProcs(3), 15,
		workload.Mix{ReadFraction: 0.5, Registers: []string{"a", "b"}}, 1)
	if res.Writes+res.Reads != 45 || res.Errors != 0 || res.Interrupted != 0 {
		t.Fatalf("result = %+v", res)
	}
	h := c.History()
	if len(h.Operations()) != 45 {
		t.Fatalf("history has %d operations", len(h.Operations()))
	}
}

func TestRunDefaultsRegister(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         1,
		Algorithm: core.CrashStop,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res := workload.Run(ctx, c, []int32{0}, 5, workload.Mix{}, 1)
	if res.Writes != 5 {
		t.Fatalf("result = %+v", res)
	}
	regs := c.History().Registers()
	if len(regs) != 1 || regs[0] != "x" {
		t.Fatalf("registers = %v, want default [x]", regs)
	}
}

func TestRunToleratesCrashes(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	done := make(chan workload.Result, 1)
	go func() {
		done <- workload.Run(ctx, c, []int32{0}, 50, workload.Mix{}, 1)
	}()
	time.Sleep(10 * time.Millisecond)
	c.Crash(0)
	time.Sleep(10 * time.Millisecond)
	if err := c.Recover(ctx, 0); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", res)
	}
	if res.Interrupted == 0 {
		t.Log("no operation was interrupted (timing); still fine")
	}
	if err := c.Check(c.DefaultMode()); err != nil {
		t.Fatal(err)
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	workload.Run(ctx, c, workload.AllProcs(3), 1_000_000, workload.Mix{}, 1)
	if time.Since(start) > 10*time.Second {
		t.Fatal("Run did not stop on cancellation")
	}
}

func TestRunAsyncCompletesAndVerifies(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Persistent,
		Node:      core.Options{RetransmitEvery: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res := workload.Run(ctx, c, workload.AllProcs(3), 8,
		workload.Mix{ReadFraction: 0.5, Registers: []string{"a", "b", "c", "d"}, Async: 4}, 1)
	if res.Writes+res.Reads != 24 || res.Errors != 0 || res.Interrupted != 0 {
		t.Fatalf("result = %+v", res)
	}
	if got := len(c.History().Operations()); got != 24 {
		t.Fatalf("history has %d operations, want 24", got)
	}
	if err := c.VerifyDefault(); err != nil {
		t.Fatalf("async workload history does not verify: %v", err)
	}
}

func TestRunAsyncToleratesCrashes(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		N:         3,
		Algorithm: core.Transient,
		Node:      core.Options{RetransmitEvery: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			c.Crash(1)
			time.Sleep(2 * time.Millisecond)
			for c.Recover(ctx, 1) != nil && ctx.Err() == nil {
			}
		}
	}()
	res := workload.Run(ctx, c, workload.AllProcs(3), 30,
		workload.Mix{ReadFraction: 0.3, Registers: []string{"a", "b"}, Async: 8}, 7)
	<-done
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", res)
	}
	if res.Writes+res.Reads == 0 {
		t.Fatal("no operations completed under crashes")
	}
}
