package workload

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"recmem"
	"recmem/internal/cluster"
)

// This file retargets the workload driver at the backend-agnostic
// recmem.Client interface: RunClients drives any client set — the
// simulated cluster's processes (through the Clients adapter) or a live
// TCP mesh (remote.Dial) — with identical scenario code, and ClientFaults
// injects crash/recovery faults through the same interface. The cluster-
// specific Run in workload.go is a thin wrapper over these.

// Clients adapts the listed processes of a simulated cluster to
// recmem.Client, attributing operations and faults to the processes
// exactly like the Cluster-level API (histories stay verifiable).
func Clients(c *cluster.Cluster, procs []int32) []recmem.Client {
	out := make([]recmem.Client, len(procs))
	for i, p := range procs {
		out[i] = &clusterClient{c: c, proc: p}
	}
	return out
}

// clusterClient is one process of a simulated cluster as a recmem.Client.
type clusterClient struct {
	c    *cluster.Cluster
	proc int32

	mu   sync.Mutex
	regs map[string]*recmem.Register
}

var _ recmem.Client = (*clusterClient)(nil)

func (cc *clusterClient) Register(name string) *recmem.Register {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.regs == nil {
		cc.regs = make(map[string]*recmem.Register)
	}
	r := cc.regs[name]
	if r == nil {
		r = recmem.NewRegister(name, &clusterRegister{h: cc.c.Handle(cc.proc, name)})
		cc.regs[name] = r
	}
	return r
}

func (cc *clusterClient) Crash(_ context.Context) error {
	if !cc.c.Crash(cc.proc) {
		return recmem.ErrDown
	}
	return nil
}

func (cc *clusterClient) Recover(ctx context.Context) error {
	return cc.c.Recover(ctx, cc.proc)
}

func (cc *clusterClient) Close() error { return nil }

// clusterRegister is the cluster-handle RegisterBackend: the driver twin of
// the root package's Process backend (which internal code cannot
// construct), sharing the OpOptions.ReadMode mapping with it.
type clusterRegister struct {
	h *cluster.Handle
}

var _ recmem.RegisterBackend = (*clusterRegister)(nil)

func (b *clusterRegister) Read(ctx context.Context, o recmem.OpOptions) ([]byte, recmem.OpID, error) {
	m, err := o.ReadMode()
	if err != nil {
		return nil, 0, err
	}
	val, rep, err := b.h.Read(ctx, m)
	if o.Witness != nil {
		*o.Witness = rep.Tag
	}
	return val, recmem.OpID(rep.Op), err
}

func (b *clusterRegister) Write(ctx context.Context, val []byte, o recmem.OpOptions) (recmem.OpID, error) {
	rep, err := b.h.Write(ctx, val)
	if o.Witness != nil {
		*o.Witness = rep.Tag
	}
	return recmem.OpID(rep.Op), err
}

func (b *clusterRegister) SubmitRead(o recmem.OpOptions) (recmem.Future, error) {
	m, err := o.ReadMode()
	if err != nil {
		return nil, err
	}
	return b.h.SubmitRead(m)
}

func (b *clusterRegister) SubmitWrite(val []byte, o recmem.OpOptions) (recmem.Future, error) {
	return b.h.SubmitWrite(val)
}

// RunClients drives opsPerClient operations at each client — one
// sequential logical client per Client (the paper's processes are
// sequential), or a windowed asynchronous client when mix.Async >= 2. It
// tolerates crash interruptions and returns aggregate counts; it stops
// early when ctx is done. The scenario is backend-agnostic: pass the
// simulated cluster's clients (Clients) or remote.Dial'ed connections.
func RunClients(ctx context.Context, clients []recmem.Client, opsPerClient int, mix Mix, seed int64) Result {
	if mix.Record != nil {
		clients = RecordClients(mix.Record, clients)
	}
	regs := mix.Registers
	if len(regs) == 0 {
		regs = []string{"x"}
	}
	var (
		mu    sync.Mutex
		total Result
		wg    sync.WaitGroup
	)
	for i, client := range clients {
		wg.Add(1)
		go func(i int, client recmem.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			// Registers are resolved once per client: the handles carry the
			// cached dispatcher resolution through the whole run.
			handles := make([]*recmem.Register, len(regs))
			for j, r := range regs {
				handles[j] = client.Register(r)
			}
			var local Result
			if mix.Async >= 2 {
				local = runClientAsync(ctx, client, i, opsPerClient, mix, handles, rng)
			} else {
				local = runClientSeq(ctx, client, i, opsPerClient, mix, handles, rng)
			}
			mu.Lock()
			total.Writes += local.Writes
			total.Reads += local.Reads
			total.Interrupted += local.Interrupted
			total.Errors += local.Errors
			mu.Unlock()
		}(i, client)
	}
	wg.Wait()
	return total
}

// runClientSeq is the closed-loop sequential client.
func runClientSeq(ctx context.Context, client recmem.Client, id, ops int, mix Mix, handles []*recmem.Register, rng *rand.Rand) Result {
	var local Result
	for i := 0; i < ops && ctx.Err() == nil; i++ {
		h := handles[rng.Intn(len(handles))]
		var err error
		if rng.Float64() < mix.ReadFraction {
			_, err = h.Read(ctx)
			if err == nil {
				local.Reads++
			}
		} else {
			err = h.Write(ctx, []byte(UniqueValue(int32(id), i, mix.ValueSize)))
			if err == nil {
				local.Writes++
			}
		}
		if err != nil {
			classify(ctx, client, mix, err, &local)
		}
	}
	return local
}

// clientPending is one submitted-but-unwaited operation.
type clientPending struct {
	wait func(context.Context) error
	read bool
}

// runClientAsync is the windowed-submission client over the handle API: up
// to mix.Async operations stay in flight, the oldest settled when the
// window fills — a closed loop over the window rather than a single
// operation.
func runClientAsync(ctx context.Context, client recmem.Client, id, ops int, mix Mix, handles []*recmem.Register, rng *rand.Rand) Result {
	var local Result
	window := make([]clientPending, 0, mix.Async)
	settle := func(p clientPending) {
		err := p.wait(ctx)
		switch {
		case err == nil:
			if p.read {
				local.Reads++
			} else {
				local.Writes++
			}
		case errors.Is(err, recmem.ErrCrashed), errors.Is(err, recmem.ErrDown):
			local.Interrupted++
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		case mix.Forgive != nil && mix.Forgive(err):
			local.Interrupted++
		default:
			local.Errors++
		}
	}
	for i := 0; i < ops && ctx.Err() == nil; i++ {
		h := handles[rng.Intn(len(handles))]
		var (
			p   clientPending
			err error
		)
		if rng.Float64() < mix.ReadFraction {
			p.read = true
			var f *recmem.ReadFuture
			f, err = h.SubmitRead()
			if err == nil {
				p.wait = func(ctx context.Context) error { _, err := f.Wait(ctx); return err }
			}
		} else {
			var f *recmem.WriteFuture
			f, err = h.SubmitWrite([]byte(UniqueValue(int32(id), i, mix.ValueSize)))
			if err == nil {
				p.wait = f.Wait
			}
		}
		if err != nil {
			if errors.Is(err, recmem.ErrCrashed) || errors.Is(err, recmem.ErrDown) {
				local.Interrupted++
				select {
				case <-time.After(2 * time.Millisecond):
				case <-ctx.Done():
				}
			} else {
				local.Errors++
			}
			continue
		}
		window = append(window, p)
		if len(window) >= mix.Async {
			settle(window[0])
			window = window[1:]
		}
	}
	for _, p := range window {
		settle(p)
	}
	return local
}

// classify routes a failed synchronous operation into the result counters,
// waiting out crashes and (under Forgive) turning forgiven aborts into a
// crash + recovery so histories stay well-formed.
func classify(ctx context.Context, client recmem.Client, mix Mix, err error, local *Result) {
	switch {
	case errors.Is(err, recmem.ErrCrashed), errors.Is(err, recmem.ErrDown):
		local.Interrupted++
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The run is ending.
	case mix.Forgive != nil && mix.Forgive(err):
		local.Interrupted++
		crashClientAfterAbort(ctx, client)
	default:
		local.Errors++
	}
}

// crashClientAfterAbort turns a forgiven operation abort into the model's
// only legal way out of an operation — a crash — followed by recovery
// attempts until the process is back or the run ends.
func crashClientAfterAbort(ctx context.Context, client recmem.Client) {
	if err := client.Crash(ctx); err != nil {
		return // already down; someone else records the crash
	}
	for ctx.Err() == nil {
		err := client.Recover(ctx)
		if err == nil || errors.Is(err, recmem.ErrNotDown) {
			return
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

// RecordClients wraps every client through the group for history recording
// (recmem.RecordingGroup.Wrap is idempotent, so a workload driver and a
// fault injector recording the same clients share one wrapper per client).
// The returned slice preserves order: client i records as process i when
// the group is fresh.
func RecordClients(g *recmem.RecordingGroup, clients []recmem.Client) []recmem.Client {
	out := make([]recmem.Client, len(clients))
	for i, c := range clients {
		out[i] = g.Wrap(c)
	}
	return out
}

// ClientFaultOptions configures client-driven crash/recovery injection.
type ClientFaultOptions struct {
	// Seed seeds the injector's private random source.
	Seed int64
	// MaxDown bounds how many clients' processes may be simultaneously
	// down (default: n - ⌈(n+1)/2⌉, keeping a majority up — the paper's
	// liveness assumption; the bound assumes one client per process).
	MaxDown int
	// MeanInterval is the average pause between fault actions (default
	// 5 ms).
	MeanInterval time.Duration
	// Record, when non-nil, wraps the injected clients through the group so
	// crash and recovery events land in the recorded histories — required
	// whenever the workload itself records (see Mix.Record), or the merged
	// history would miss the faults.
	Record *recmem.RecordingGroup
}

// ClientFaults injects random crashes and recoveries through the Client
// interface until ctx is done, then recovers everything it downed and
// returns the number of crashes injected. It works identically against the
// simulated cluster and a live mesh.
func ClientFaults(ctx context.Context, clients []recmem.Client, opts ClientFaultOptions) int {
	if opts.Record != nil {
		clients = RecordClients(opts.Record, clients)
	}
	n := len(clients)
	if opts.MaxDown <= 0 {
		opts.MaxDown = n - (n+2)/2
	}
	if opts.MaxDown <= 0 {
		return 0 // nothing can safely crash
	}
	if opts.MeanInterval <= 0 {
		opts.MeanInterval = 5 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	down := make(map[int]bool)
	crashes := 0
	for ctx.Err() == nil {
		d := time.Duration(rng.Int63n(int64(2*opts.MeanInterval) + 1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		if len(down) < opts.MaxDown && (len(down) == 0 || rng.Float64() < 0.5) {
			i := rng.Intn(n)
			if down[i] {
				continue
			}
			if err := clients[i].Crash(ctx); err == nil {
				down[i] = true
				crashes++
			}
		} else {
			for i := range down {
				if err := clients[i].Recover(ctx); err == nil || errors.Is(err, recmem.ErrNotDown) {
					delete(down, i)
				}
				break
			}
		}
	}
	// Leave the system healthy: recover everything still down. The
	// injection context has typically expired by now (that is what ended
	// the loop), so cleanup runs under its own bounded context.
	cleanup, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := range down {
		for cleanup.Err() == nil {
			err := clients[i].Recover(cleanup)
			if err == nil || errors.Is(err, recmem.ErrNotDown) {
				break
			}
			select {
			case <-time.After(2 * time.Millisecond):
			case <-cleanup.Done():
			}
		}
	}
	return crashes
}
