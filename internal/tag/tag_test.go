package tag

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	tests := []struct {
		name string
		a, b Tag
		want int
	}{
		{name: "equal zero", a: Tag{}, b: Tag{}, want: 0},
		{name: "seq dominates", a: Tag{Seq: 1, Writer: 9}, b: Tag{Seq: 2, Writer: 0}, want: -1},
		{name: "writer breaks seq tie", a: Tag{Seq: 3, Writer: 1}, b: Tag{Seq: 3, Writer: 2}, want: -1},
		{name: "rec breaks full tie", a: Tag{Seq: 3, Writer: 1, Rec: 1}, b: Tag{Seq: 3, Writer: 1, Rec: 2}, want: -1},
		{name: "greater", a: Tag{Seq: 5}, b: Tag{Seq: 4, Writer: 100}, want: 1},
		{name: "identical", a: Tag{Seq: 7, Writer: 2, Rec: 3}, b: Tag{Seq: 7, Writer: 2, Rec: 3}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Fatalf("Compare(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Compare(tt.a); got != -tt.want {
				t.Fatalf("Compare(%v,%v) = %d, want %d", tt.b, tt.a, got, -tt.want)
			}
		})
	}
}

func TestLessMatchesCompare(t *testing.T) {
	a := Tag{Seq: 1, Writer: 2}
	b := Tag{Seq: 1, Writer: 3}
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("Less inconsistent with Compare for %v, %v", a, b)
	}
}

func TestIsZero(t *testing.T) {
	if !(Tag{}).IsZero() {
		t.Fatal("zero tag should be zero")
	}
	if (Tag{Seq: 1}).IsZero() || (Tag{Writer: 1}).IsZero() || (Tag{Rec: 1}).IsZero() {
		t.Fatal("non-zero tags reported as zero")
	}
}

func TestNext(t *testing.T) {
	base := Tag{Seq: 10, Writer: 3, Rec: 7}
	got := base.Next(5, 0, 0)
	want := Tag{Seq: 11, Writer: 5}
	if got != want {
		t.Fatalf("Next = %v, want %v", got, want)
	}
	// Fig. 5: sn := sn + rec + 1 with rec propagated into the tiebreak in
	// hardened mode.
	got = base.Next(5, 4, 4)
	want = Tag{Seq: 15, Writer: 5, Rec: 4}
	if got != want {
		t.Fatalf("Next with extra = %v, want %v", got, want)
	}
}

func TestNextIsStrictlyGreater(t *testing.T) {
	f := func(seq int64, writer, rec int32, extra uint8) bool {
		if seq > 1<<60 || seq < -(1<<60) {
			return true // avoid overflow; tags never approach this in practice
		}
		base := Tag{Seq: seq, Writer: writer, Rec: rec}
		next := base.Next(writer, int64(extra), rec)
		return base.Less(next)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	a := Tag{Seq: 1}
	b := Tag{Seq: 2}
	if Max(a, b) != b || Max(b, a) != b {
		t.Fatalf("Max(%v,%v) wrong", a, b)
	}
	if Max(a, a) != a {
		t.Fatal("Max of equal tags changed value")
	}
}

func TestString(t *testing.T) {
	if got, want := (Tag{Seq: 3, Writer: 1}).String(), "[3,1]"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got, want := (Tag{Seq: 3, Writer: 1, Rec: 2}).String(), "[3,1,r2]"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// TestCompareIsTotalOrder checks the strict-total-order axioms on random
// tags: antisymmetry, transitivity, and totality.
func TestCompareIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randTag := func() Tag {
		return Tag{
			Seq:    int64(rng.Intn(4)),
			Writer: int32(rng.Intn(3)),
			Rec:    int32(rng.Intn(2)),
		}
	}
	for i := 0; i < 5000; i++ {
		a, b, c := randTag(), randTag(), randTag()
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated for %v,%v", a, b)
		}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated for %v,%v,%v", a, b, c)
		}
		if a.Compare(b) == 0 && a != b {
			t.Fatalf("distinct tags compared equal: %v,%v", a, b)
		}
	}
}

func TestSortByCompare(t *testing.T) {
	tags := []Tag{
		{Seq: 2, Writer: 1},
		{Seq: 1, Writer: 9},
		{Seq: 2, Writer: 0},
		{Seq: 1, Writer: 9, Rec: 1},
		{},
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].Less(tags[j]) })
	want := []Tag{
		{},
		{Seq: 1, Writer: 9},
		{Seq: 1, Writer: 9, Rec: 1},
		{Seq: 2, Writer: 0},
		{Seq: 2, Writer: 1},
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, tags[i], want[i])
		}
	}
}
