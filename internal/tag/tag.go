// Package tag implements the lexicographic timestamps ("tags") that order
// written values in all register emulations of the paper.
//
// A tag is the pair [sn, pid] of Figure 4: a monotonically increasing
// sequence number together with the id of the writer that produced it, so
// that two writers that pick the same sequence number concurrently are still
// totally ordered. Tags are compared lexicographically, sequence number
// first.
//
// The optional Rec component supports the hardened variant of the transient
// algorithm (see DESIGN.md §7): it records the writer's persisted recovery
// count and acts as a final tiebreak so that a writer that crashed in the
// middle of a write can never re-issue the exact tag of the interrupted write
// for a different value. With the paper's literal algorithm Rec is always
// zero and comparison degenerates to the paper's [sn, pid] order.
package tag

import (
	"fmt"
	"strconv"
)

// Tag is a lexicographic write timestamp.
//
// The zero value is the initial tag of every register: it is smaller than
// (or equal to) every tag a write can produce, so the initial value ⊥ is
// never re-adopted over a written value.
type Tag struct {
	// Seq is the sequence number chosen by the writer (paper: sn).
	Seq int64
	// Writer is the id of the writer process (paper: the process id i
	// appended to the sequence number).
	Writer int32
	// Rec is the writer's recovery count at the time the tag was minted.
	// Always zero under the paper's literal algorithms; used only by the
	// hardened transient variant as a last-resort tiebreak.
	Rec int32
}

// Compare returns -1, 0 or +1 as t is smaller than, equal to, or greater
// than u in the lexicographic order [Seq, Writer, Rec].
func (t Tag) Compare(u Tag) int {
	switch {
	case t.Seq < u.Seq:
		return -1
	case t.Seq > u.Seq:
		return 1
	case t.Writer < u.Writer:
		return -1
	case t.Writer > u.Writer:
		return 1
	case t.Rec < u.Rec:
		return -1
	case t.Rec > u.Rec:
		return 1
	}
	return 0
}

// Less reports whether t orders strictly before u.
func (t Tag) Less(u Tag) bool { return t.Compare(u) < 0 }

// IsZero reports whether t is the initial tag.
func (t Tag) IsZero() bool { return t == Tag{} }

// Next returns the tag a writer mints after observing t as the highest
// timestamp — the majority maximum of a query round (Fig. 4), or the
// writer's own stable-backed view (§VI single-writer): the sequence number
// is incremented by 1 + extra (Fig. 5 uses extra = rec, Fig. 4 uses
// extra = 0) and the writer id replaces the old one. rec is the Rec
// tiebreak the minted tag carries: zero under the paper's literal
// algorithms, the persisted recovery count under hardened tags. This is the
// minting rule — core's write paths all advance timestamps through it.
func (t Tag) Next(writer int32, extra int64, rec int32) Tag {
	return Tag{Seq: t.Seq + extra + 1, Writer: writer, Rec: rec}
}

// Max returns the larger of t and u.
func Max(t, u Tag) Tag {
	if t.Less(u) {
		return u
	}
	return t
}

// String renders the tag as "[seq,writer]" or "[seq,writer,rec]" when a
// recovery tiebreak is present, matching the paper's notation.
func (t Tag) String() string {
	if t.Rec == 0 {
		return "[" + strconv.FormatInt(t.Seq, 10) + "," + strconv.FormatInt(int64(t.Writer), 10) + "]"
	}
	return fmt.Sprintf("[%d,%d,r%d]", t.Seq, t.Writer, t.Rec)
}
