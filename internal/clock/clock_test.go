package clock

import (
	"sort"
	"sync"
	"testing"
)

func TestNowStrictlyIncreases(t *testing.T) {
	var c Clock
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		cur := c.Now()
		if !prev.Before(cur) {
			t.Fatalf("stamp %d not after previous (%d vs %d)", i, cur.Seq, prev.Seq)
		}
		prev = cur
	}
}

func TestNowConcurrentUnique(t *testing.T) {
	var (
		c  Clock
		mu sync.Mutex
		wg sync.WaitGroup
	)
	const (
		workers = 8
		perW    = 500
	)
	seen := make([]int64, 0, workers*perW)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 0, perW)
			for i := 0; i < perW; i++ {
				local = append(local, c.Now().Seq)
			}
			mu.Lock()
			seen = append(seen, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
	for i := 1; i < len(seen); i++ {
		if seen[i] == seen[i-1] {
			t.Fatalf("duplicate sequence number %d", seen[i])
		}
	}
	if got := c.Seq(); got != int64(workers*perW) {
		t.Fatalf("Seq() = %d, want %d", got, workers*perW)
	}
}

func TestBefore(t *testing.T) {
	a := Stamp{Seq: 1}
	b := Stamp{Seq: 2}
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Fatal("Before ordering wrong")
	}
}
