// Package clock provides the paper's "fictional global clock": a device
// outside the control of the processes that totally orders the events of a
// run. The emulation algorithms never consult it; it exists so that the
// harness can record histories whose event order is meaningful to the
// atomicity checkers, and so that experiments can timestamp measurements.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock issues strictly increasing event sequence numbers, paired with wall
// time for reporting. The zero value is ready to use.
type Clock struct {
	seq atomic.Int64
}

// Stamp is a point on the global clock.
type Stamp struct {
	// Seq totally orders events: no two events of a run share a Seq.
	Seq int64
	// Wall is the wall-clock reading when the stamp was taken. It is
	// informational only (wall time may repeat or jump); checkers use Seq.
	Wall time.Time
}

// Now returns a fresh stamp, strictly greater (in Seq) than every stamp
// previously returned by this clock. Safe for concurrent use.
func (c *Clock) Now() Stamp {
	return Stamp{Seq: c.seq.Add(1), Wall: time.Now()}
}

// Seq returns the last sequence number issued (0 if none).
func (c *Clock) Seq() int64 { return c.seq.Load() }

// Before reports whether s happened before u on the global clock.
func (s Stamp) Before(u Stamp) bool { return s.Seq < u.Seq }
