//go:build linux

package procfault

import (
	"os/exec"
	"syscall"
)

// setSysProcAttr asks the kernel to SIGKILL the supervised process if the
// supervisor itself dies, so an aborted torture run cannot leak node
// processes.
func setSysProcAttr(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
