//go:build !linux

package procfault

import "os/exec"

// setSysProcAttr is a no-op where parent-death signals are unavailable;
// cleanup relies on Stop.
func setSysProcAttr(cmd *exec.Cmd) {}
