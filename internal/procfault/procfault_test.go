package procfault

import (
	"context"
	"os"
	"testing"
	"time"
)

// sleepBin is a long-running command available on the CI platforms.
func sleepBin(t *testing.T) []string {
	t.Helper()
	for _, p := range []string{"/bin/sleep", "/usr/bin/sleep"} {
		if _, err := os.Stat(p); err == nil {
			return []string{p, "300"}
		}
	}
	t.Skip("no sleep binary on this platform")
	return nil
}

func TestKillRestartCycle(t *testing.T) {
	p, err := Start(sleepBin(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	pid1 := p.Pid()
	if pid1 == 0 || !p.Alive() {
		t.Fatalf("started process: pid=%d alive=%v", pid1, p.Alive())
	}
	if err := p.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if p.Alive() || p.Pid() != 0 {
		t.Fatal("process still reported alive after SIGKILL")
	}
	// Killing a dead process is a schedule bug, not a cleanup.
	if err := p.Kill(); err == nil {
		t.Fatal("double kill succeeded")
	}
	if err := p.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	pid2 := p.Pid()
	if pid2 == 0 || pid2 == pid1 {
		t.Fatalf("restart pid = %d (previous %d)", pid2, pid1)
	}
	// A second restart while running must refuse: exactly one incarnation.
	if err := p.Restart(); err == nil {
		t.Fatal("restart of a running process succeeded")
	}
	p.Stop()
	p.Stop() // idempotent
	if p.Alive() {
		t.Fatal("alive after stop")
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(nil, nil, nil); err == nil {
		t.Fatal("accepted empty argv")
	}
	if _, err := Start([]string{"/nonexistent-binary-recmem"}, nil, nil); err == nil {
		t.Fatal("accepted unlaunchable binary")
	}
}

func TestWaitReady(t *testing.T) {
	p, err := Start(sleepBin(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	calls := 0
	err = p.WaitReady(ctx, func(context.Context) error {
		calls++
		if calls < 3 {
			return context.DeadlineExceeded
		}
		return nil
	}, time.Millisecond)
	if err != nil || calls != 3 {
		t.Fatalf("WaitReady = %v after %d probes", err, calls)
	}

	// A probe that can never succeed fails fast once the process dies.
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
	err = p.WaitReady(ctx, func(context.Context) error { return context.DeadlineExceeded }, time.Millisecond)
	if err == nil {
		t.Fatal("WaitReady succeeded against a dead process")
	}
}

// TestSelfExitIsObserved: a process that dies on its own initiative (crash
// loop, bad flags) must flip Alive without anyone calling Kill, so
// WaitReady fails fast instead of polling a corpse for its whole timeout.
func TestSelfExitIsObserved(t *testing.T) {
	argv := sleepBin(t)
	argv[len(argv)-1] = "0.05"
	p, err := Start(argv, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for p.Alive() {
		if time.Now().After(deadline) {
			t.Fatal("self-exited process still reported alive")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	err = p.WaitReady(ctx, func(context.Context) error { return context.DeadlineExceeded }, time.Millisecond)
	if err == nil || time.Since(start) > 10*time.Second {
		t.Fatalf("WaitReady against a self-exited process = %v after %v", err, time.Since(start))
	}
	// The corpse is restartable.
	if err := p.Restart(); err != nil {
		t.Fatalf("restart after self-exit: %v", err)
	}
	if !p.Alive() {
		t.Fatal("restarted process not alive")
	}
}
