// Package procfault supervises real operating-system processes for fault
// injection: it starts them, SIGKILLs them mid-run, and re-execs them with
// the same argv. It is the process-death counterpart of the protocol-level
// Crash/Recover injection in internal/workload — where workload.ClientFaults
// exercises the paper's crash model inside a live process, procfault
// exercises it on the process itself: a SIGKILL loses exactly the volatile
// state, and the restarted process must rebuild itself from stable storage
// (recmem-node runs its recovery procedure before reopening the control
// port).
package procfault

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Proc is one supervised process. All methods are safe for concurrent use,
// but Kill/Restart are meant to be driven by one fault schedule at a time.
type Proc struct {
	argv   []string
	stdout io.Writer
	stderr io.Writer

	mu    sync.Mutex
	cmd   *exec.Cmd
	done  chan struct{} // closed when the current incarnation is reaped
	alive bool
}

// Start launches argv[0] with argv[1:] as a supervised process. stdout and
// stderr, when non-nil, receive the process's output (they are reused
// across restarts, so one log stream spans all incarnations).
func Start(argv []string, stdout, stderr io.Writer) (*Proc, error) {
	if len(argv) == 0 || argv[0] == "" {
		return nil, fmt.Errorf("procfault: empty command")
	}
	p := &Proc{argv: argv, stdout: stdout, stderr: stderr}
	if err := p.spawn(); err != nil {
		return nil, err
	}
	return p, nil
}

// spawn execs the argv. Callers other than Start hold no lock; spawn takes
// it.
func (p *Proc) spawn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.alive {
		return fmt.Errorf("procfault: %s already running (pid %d)", p.argv[0], p.cmd.Process.Pid)
	}
	cmd := exec.Command(p.argv[0], p.argv[1:]...)
	cmd.Stdout = p.stdout
	cmd.Stderr = p.stderr
	setSysProcAttr(cmd) // die with the supervisor (best effort, platform-specific)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("procfault: start %s: %w", p.argv[0], err)
	}
	done := make(chan struct{})
	p.cmd, p.done, p.alive = cmd, done, true
	// The monitor reaps every exit — killed or on the process's own
	// initiative (a crash-looping node, a bad flag) — so Alive reflects
	// reality, WaitReady can fail fast on a self-exit, and no incarnation
	// lingers as a zombie until Stop.
	go func() {
		_ = cmd.Wait()
		p.mu.Lock()
		if p.cmd == cmd {
			p.alive = false
		}
		p.mu.Unlock()
		close(done)
	}()
	return nil
}

// Pid returns the current incarnation's process id, or 0 if not running.
func (p *Proc) Pid() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.alive {
		return 0
	}
	return p.cmd.Process.Pid
}

// Alive reports whether the current incarnation is running.
func (p *Proc) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// Kill SIGKILLs the current incarnation and reaps it — the paper's crash:
// the process gets no chance to flush, shut down, or say goodbye; whatever
// was not on stable storage is lost. It is an error to Kill a process that
// is not running.
func (p *Proc) Kill() error {
	p.mu.Lock()
	if !p.alive {
		p.mu.Unlock()
		return fmt.Errorf("procfault: %s is not running", p.argv[0])
	}
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	// A process that beat us to death's door (self-exit racing the kill)
	// is dead either way; only a genuinely failed signal is an error.
	if err := cmd.Process.Kill(); err != nil && !errors.Is(err, os.ErrProcessDone) {
		return fmt.Errorf("procfault: kill %s (pid %d): %w", p.argv[0], cmd.Process.Pid, err)
	}
	<-done // reaped by the monitor
	return nil
}

// Restart re-execs the same argv after a Kill — the paper's recover: a new
// incarnation over the same stable storage.
func (p *Proc) Restart() error {
	return p.spawn()
}

// Stop tears the process down for good (SIGKILL + reap). Unlike Kill it is
// idempotent and never errors on an already-dead process: it is the cleanup
// path, not a fault.
func (p *Proc) Stop() {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil {
		return
	}
	_ = cmd.Process.Kill()
	<-done // closed by the monitor even when the process already exited
}

// WaitReady polls probe until it returns nil, the context expires, or the
// supervised process dies: the barrier between Restart and resuming the
// workload. probe is typically a control-port ping.
func (p *Proc) WaitReady(ctx context.Context, probe func(context.Context) error, every time.Duration) error {
	if every <= 0 {
		every = 50 * time.Millisecond
	}
	var lastErr error
	for {
		if err := probe(ctx); err == nil {
			return nil
		} else {
			lastErr = err
		}
		if !p.Alive() {
			return fmt.Errorf("procfault: %s died while waiting for readiness (last probe: %v)", p.argv[0], lastErr)
		}
		select {
		case <-time.After(every):
		case <-ctx.Done():
			return fmt.Errorf("procfault: %s not ready: %w (last probe: %v)", p.argv[0], ctx.Err(), lastErr)
		}
	}
}
