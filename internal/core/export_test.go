package core

import "recmem/internal/tag"

// tagOf is a test helper constructing tags concisely.
func tagOf(seq int64, writer, rec int32) tag.Tag {
	return tag.Tag{Seq: seq, Writer: writer, Rec: rec}
}
