package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/causal"
	"recmem/internal/netsim"
	"recmem/internal/stable"
)

// TestOpsCompleteUnderFlakyReplicaStorage: replicas whose stores fail do not
// acknowledge, and the round's retransmission retries the adoption until a
// majority has durably logged — liveness holds as long as stores succeed
// eventually.
func TestOpsCompleteUnderFlakyReplicaStorage(t *testing.T) {
	for _, kind := range []AlgorithmKind{Transient, Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			const n = 5
			nw, err := netsim.New(n, netsim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			ids := &atomic.Uint64{}
			meter := causal.NewMeter()
			var flakies []*stable.Flaky
			nodes := make([]*Node, n)
			for i := 0; i < n; i++ {
				var disk stable.Storage = stable.NewMemDisk(stable.Profile{})
				if i != 0 {
					// Replica stores fail 40% of the time; the writer's own
					// storage is reliable (its pre-log is not retried by
					// the protocol — storage failure there surfaces as an
					// operation error, which the model does not include).
					fl := stable.NewFlaky(disk, 0.4, int64(i))
					flakies = append(flakies, fl)
					disk = fl
				}
				nd, err := NewNode(int32(i), n, kind,
					Options{RetransmitEvery: 2 * time.Millisecond},
					Deps{Endpoint: nw.Endpoint(int32(i)), Storage: disk, IDs: ids, LogMeter: meter})
				if err != nil {
					t.Fatal(err)
				}
				nodes[i] = nd
				defer nd.Close()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 0; i < 10; i++ {
				val := fmt.Sprintf("v%d", i)
				if _, err := nodes[0].Write(ctx, "x", []byte(val), OpObserver{}); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				got, _, err := nodes[1+i%4].Read(ctx, "x", OpObserver{})
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if string(got) != val {
					t.Fatalf("read %d = %q, want %q", i, got, val)
				}
			}
			var injected int
			for _, fl := range flakies {
				injected += fl.Failures()
			}
			if injected == 0 {
				t.Fatal("no storage faults were injected; test is vacuous")
			}
			t.Logf("%d injected storage faults survived", injected)
		})
	}
}
