package core

import (
	"context"
	"sync"
	"sync/atomic"

	"recmem/internal/tag"
)

// This file implements the engine's completion primitive (docs/adr/0010).
//
// A Future used to be a one-shot channel pair: eagerly allocated, completed
// by closing the channel, awaited by a goroutine parked on it. That shape
// forced every remote operation to cost one server goroutine (parked on
// Done) before a single protocol message went out. The refactored Future is
// callback-driven and pool-friendly:
//
//   - OnDone registers a completion callback, fired exactly once from
//     complete on the engine goroutine — or immediately, on the caller's
//     goroutine, if the operation already finished. The callback takes a
//     static function plus an opaque argument so registering one allocates
//     nothing (a pointer boxed into an interface stays on its owner).
//   - Completion is a handful of plain field writes followed by one atomic
//     store and one channel close. The engine goroutine never takes a lock
//     to complete an operation, and waiters never take one to read the
//     outcome: the done flag's release/acquire pair orders the result
//     fields. The mutex guards only the cold edges — callback registration
//     racing completion, and the recycle bookkeeping.
//   - Futures come from a sync.Pool. Release returns one after its operation
//     completed; releasing bumps the future's generation counter, so a
//     handle held across a recycle is detectably stale: the gen-checked
//     accessor (Result) refuses to expose the next operation's outcome to a
//     holder of a previous generation. The done channel is per-generation,
//     allocated on the submitter's goroutine in newFuture — off the engine's
//     critical path.
//
// Ownership rule: Release may only be called by the future's sole owner,
// after completion. The engine itself never releases — the submitter owns
// the future; consumers that fully control an operation's lifetime (the
// remote server awaits every dispatch through OnDone) release in the
// callback, everyone else lets the garbage collector take the future and
// the pool simply hands out a fresh one next time.

// futurePool recycles completed futures across submissions; see Release.
var futurePool = sync.Pool{New: func() any { return &Future{} }}

// closedCh is the pre-closed channel Done returns for already-completed
// futures, so a waiter that arrives after completion never touches the
// per-generation channel (which a Release may have already dropped).
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Future is the pending result of a submitted operation. It completes when
// the operation's quorum rounds commit (or fail); an operation interrupted
// by a crash completes with ErrCrashed and its invocation stays pending in
// the history, exactly like its synchronous counterpart.
type Future struct {
	op   uint64
	done atomic.Bool
	ch   chan struct{} // per-generation; allocated in newFuture, dropped on Release

	mu   sync.Mutex // guards cb/cbID, gen, and the recycle zeroing
	gen  uint64     // bumped on every Release; stale-handle detector
	cb   func(*Future, any)
	cbID any

	// Result fields: written by complete before the done store, read only
	// after observing done (via the flag, the channel, or the callback).
	val []byte
	wit tag.Tag
	inc uint64
	err error
}

// newFuture takes a future from the pool and binds it to the operation. The
// generation survives from the previous use — that is the point: a stale
// handle from the last operation observes a generation mismatch, never this
// operation's result. The done channel is allocated here, on the
// submitter's goroutine, so neither waiters nor the completing engine
// goroutine ever pay for it.
func newFuture(op uint64) *Future {
	f := futurePool.Get().(*Future)
	f.op = op
	if f.ch == nil {
		f.ch = make(chan struct{})
	}
	return f
}

// Op returns the operation id, usable for accounting as soon as the future
// is created.
func (f *Future) Op() uint64 { return f.op }

// Generation returns the future's pool generation. Capture it at submission
// time to use the gen-checked accessor (Result) from code that may outlive
// the future's release — a stale generation can never observe a recycled
// operation's outcome.
func (f *Future) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

// Done returns a channel closed when the operation completes. A future that
// already completed answers with a shared pre-closed channel; a pending one
// hands out its per-generation channel, closed by complete.
func (f *Future) Done() <-chan struct{} {
	if f.done.Load() {
		return closedCh
	}
	return f.ch
}

// Wait blocks until the operation completes or ctx is done. For reads the
// returned value is the register's value (nil is the initial value ⊥); for
// writes it is nil. Cancelling ctx abandons the wait, not the operation.
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	if f.done.Load() {
		return f.val, f.err
	}
	select {
	case <-f.ch:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TagWitness returns the operation's tag witness once the future is done:
// the tag the protocol adopted for the written or returned value. ok is
// false before completion and for operations without a witness (a failed
// operation, or a coalesced write whose value was superseded within its
// batch — only the batch's surviving value carries the minted tag, because
// a tag names exactly one committed value).
func (f *Future) TagWitness() (wit tag.Tag, ok bool) {
	if !f.done.Load() {
		return tag.Tag{}, false
	}
	return f.wit, !f.wit.IsZero()
}

// Incarnation returns the node incarnation epoch the operation completed
// under (docs/adr/0006), once the future is done. ok is false before
// completion and for failed operations, which never witness an epoch. Unlike
// the tag witness, every successful operation carries one — including a
// coalesced write whose value was superseded within its batch: its
// acknowledgement still happened in a specific incarnation.
func (f *Future) Incarnation() (epoch uint64, ok bool) {
	if !f.done.Load() {
		return 0, false
	}
	return f.inc, f.err == nil && f.inc != 0
}

// Result is the generation-checked read of a completed operation's outcome:
// it exposes the future's state only to a holder of the current generation,
// and only once the operation completed. A handle that captured gen before
// a Release observes ok=false forever after — it can never read the
// recycled future's next operation.
func (f *Future) Result(gen uint64) (val []byte, wit tag.Tag, inc uint64, err error, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.gen != gen || !f.done.Load() {
		return nil, tag.Tag{}, 0, nil, false
	}
	return f.val, f.wit, f.inc, f.err, true
}

// OnDone registers cb to run exactly once when the operation completes,
// with the future and arg — fired from complete on the engine goroutine, or
// immediately on this goroutine if the operation already finished. The
// static-function-plus-argument shape exists so the hot path registers a
// completion without allocating a closure. At most one callback may be
// registered per operation; the callback must not block (it runs inline in
// the engine's dispatch loop) and is the natural place for a sole owner to
// Release the future.
//
// Exactly-once is the mutex's job: the done check and the registration are
// one critical section, and complete collects the callback under the same
// mutex after publishing done — every interleaving fires the callback from
// exactly one side.
func (f *Future) OnDone(cb func(*Future, any), arg any) {
	f.mu.Lock()
	if f.done.Load() {
		f.mu.Unlock()
		cb(f, arg)
		return
	}
	if f.cb != nil {
		f.mu.Unlock()
		panic("core: Future.OnDone registered twice")
	}
	f.cb, f.cbID = cb, arg
	f.mu.Unlock()
}

// complete resolves the future: record the outcome, release blocked
// waiters, fire the registered callback. Called exactly once per
// generation, on the engine goroutine that executed the operation. The
// result fields are published by the done store (release) and the channel
// close; the mutex is taken only to hand off the callback.
func (f *Future) complete(val []byte, wit tag.Tag, inc uint64, err error) {
	if f.done.Load() {
		panic("core: Future completed twice")
	}
	f.val, f.wit, f.inc, f.err = val, wit, inc, err
	f.done.Store(true)
	close(f.ch)
	f.mu.Lock()
	cb, arg := f.cb, f.cbID
	f.cb, f.cbID = nil, nil
	f.mu.Unlock()
	if cb != nil {
		cb(f, arg)
	}
}

// Release returns a completed future to the pool. Only the future's sole
// owner may call it, and only after completion; the generation bump is what
// turns any leftover alias into a detectably stale handle instead of a
// silent reader of the next operation. Releasing a pending future is a
// programming error.
func (f *Future) Release() {
	if !f.done.Load() {
		panic("core: Release of a pending Future")
	}
	f.mu.Lock()
	f.gen++
	f.op, f.val, f.wit, f.inc, f.err = 0, nil, tag.Tag{}, 0, nil
	f.ch = nil
	f.mu.Unlock()
	f.done.Store(false)
	futurePool.Put(f)
}
