package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"recmem/internal/netsim"
)

// TestRecoveryIsLazy is the lazy-recovery guarantee (docs/adr/0009),
// checked through the Counting storage wrapper: a restart over a populated
// namespace must perform ZERO written/ Retrieves and ZERO full-namespace
// Records enumerations — the register map materializes on first touch, so
// recovery's stable reads are the streaming writing/ scan plus the
// counters, independent of how many registers the node has adopted.
func TestRecoveryIsLazy(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	const regs = 50
	for i := 0; i < regs; i++ {
		if _, err := tc.write(0, fmt.Sprintf("r%02d", i), fmt.Sprintf("v%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	disk := tc.disks[1]
	waitFor(t, time.Second, "replica adoption", func() bool {
		return disk.RecordStores("written/r07") >= 1
	})

	tc.crash(1)
	lists, scans := disk.Lists(), disk.Scans()
	writtenReads := disk.PrefixRetrieves("written/")
	if err := tc.recover(1); err != nil {
		t.Fatal(err)
	}

	if got := disk.Lists(); got != lists {
		t.Fatalf("recovery called Records %d times — the restart enumerated the namespace", got-lists)
	}
	if got := disk.PrefixRetrieves("written/"); got != writtenReads {
		t.Fatalf("recovery retrieved %d written/ records — the register map was rebuilt eagerly", got-writtenReads)
	}
	if got := disk.Scans(); got <= scans {
		t.Fatal("recovery never used the streaming writing/ scan")
	}
	if stats := tc.nodes[1].LastRecovery(); stats.PendingWrites != 0 {
		t.Fatalf("PendingWrites = %d on a cleanly crashed node", stats.PendingWrites)
	}

	// First touch materializes from storage: exactly one written/ Retrieve,
	// returning the state the replica adopted before the crash.
	tg, val, ok := tc.nodes[1].RegisterState("r07")
	if !ok || tg.IsZero() || !bytes.Equal(val, []byte("v07")) {
		t.Fatalf("materialized state = %v %q ok=%v", tg, val, ok)
	}
	if got := disk.PrefixRetrieves("written/"); got != writtenReads+1 {
		t.Fatalf("first touch cost %d written/ retrieves, want 1", got-writtenReads)
	}
	// Second touch serves from the materialized map: no further reads.
	if _, _, ok := tc.nodes[1].RegisterState("r07"); !ok {
		t.Fatal("materialized state vanished")
	}
	if got := disk.PrefixRetrieves("written/"); got != writtenReads+1 {
		t.Fatal("second touch re-read stable storage")
	}
}

// TestRecoveryRetrievesOnlyPending: with a pending writing/ record on disk,
// the restart's register reads are exactly O(pending) — it retrieves the
// pending record, finishes the write with a majority round, and still never
// enumerates or reloads the adopted namespace.
func TestRecoveryRetrievesOnlyPending(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	for i := 0; i < 20; i++ {
		if _, err := tc.write(0, fmt.Sprintf("r%02d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Plant an interrupted write: the pre-log Fig. 4's recovery must finish.
	pendingTag := tagOf(1000, 1, 0)
	if err := tc.disks[1].Store("writing/pend", encodeTagged(pendingTag, []byte("resumed"))); err != nil {
		t.Fatal(err)
	}
	tc.crash(1)
	writtenReads := tc.disks[1].PrefixRetrieves("written/")
	writingReads := tc.disks[1].PrefixRetrieves("writing/")
	if err := tc.recover(1); err != nil {
		t.Fatal(err)
	}
	if stats := tc.nodes[1].LastRecovery(); stats.PendingWrites != 1 {
		t.Fatalf("PendingWrites = %d, want 1", stats.PendingWrites)
	}
	if got := tc.disks[1].PrefixRetrieves("writing/"); got != writingReads+1 {
		t.Fatalf("recovery cost %d writing/ retrieves, want 1", got-writingReads)
	}
	// The recovery round's own adoption may materialize the pending register
	// at this node's listener — that is part of the O(pending) bill. No
	// OTHER written/ record may be read.
	delta := tc.disks[1].PrefixRetrieves("written/") - writtenReads
	if pendDelta := tc.disks[1].PrefixRetrieves("written/pend"); delta != pendDelta {
		t.Fatalf("recovery retrieved %d written/ records beyond the pending register", delta-pendDelta)
	}
	// The interrupted write reached a majority during recovery.
	for _, proc := range []int{0, 2} {
		waitFor(t, time.Second, "pending write propagation", func() bool {
			tg, v, ok := tc.nodes[proc].RegisterState("pend")
			return ok && tg == pendingTag && bytes.Equal(v, []byte("resumed"))
		})
	}
}

// TestLazyMaterializationAcrossCrashCycles: materialized entries die with
// the incarnation that loaded them. Crash immediately after a restart, then
// again, and the node must still serve the adopted namespace correctly —
// and report the zero state (the paper's ⊥) for a register nothing ever
// touched, without inventing state from a dead incarnation's loads.
func TestLazyMaterializationAcrossCrashCycles(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	if _, err := tc.write(1, "x", "v1"); err != nil {
		t.Fatal(err)
	}
	disk := tc.disks[1]
	waitFor(t, time.Second, "self adoption", func() bool {
		return disk.RecordStores("written/x") >= 1
	})
	for cycle := 0; cycle < 3; cycle++ {
		tc.crash(1)
		if err := tc.recover(1); err != nil {
			t.Fatal(err)
		}
	}
	// Crash-then-read on the fresh incarnation: the touched register
	// materializes, the never-touched one is ⊥ with no state invented.
	if tg, val, ok := tc.nodes[1].RegisterState("x"); !ok || tg.IsZero() || !bytes.Equal(val, []byte("v1")) {
		t.Fatalf("adopted register after crash cycles: %v %q ok=%v", tg, val, ok)
	}
	if tg, val, ok := tc.nodes[1].RegisterState("never-touched"); ok || !tg.IsZero() || val != nil {
		t.Fatalf("never-touched register: %v %q ok=%v, want zero state", tg, val, ok)
	}
	// A full protocol read of the never-touched register agrees: ⊥.
	if v, _, err := tc.read(1, "never-touched"); err != nil || v != "" {
		t.Fatalf("read(never-touched) = %q, %v", v, err)
	}
	// And writes keep working on the restarted incarnation.
	if _, err := tc.write(1, "x", "v2"); err != nil {
		t.Fatal(err)
	}
	if v, _, err := tc.read(1, "x"); err != nil || v != "v2" {
		t.Fatalf("read after write = %q, %v", v, err)
	}
}
