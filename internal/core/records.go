package core

import (
	"encoding/binary"
	"errors"

	"recmem/internal/stable"
	"recmem/internal/tag"
)

// Stable-storage record names. One record per role per register, plus the
// process-wide recovery counter of the transient algorithm. The naive
// algorithm adds records for its extra per-step logs.
const (
	// recWrittenPrefix holds a replica's adopted (tag, value) — Fig. 4
	// line 24's store(written, sn, pid, v).
	recWrittenPrefix = "written/"
	// recWritingPrefix holds the tag and value a writer is about to
	// broadcast — Fig. 4 line 12's store(writing, sn, v).
	recWritingPrefix = "writing/"
	// recRecovered holds the recovery counter — Fig. 5's store(recovered).
	recRecovered = "recovered"
	// recWStartPrefix and recSNLogPrefix are the naive algorithm's extra
	// logs (§I-C: "log each of its steps").
	recWStartPrefix = "wstart/"
	recSNLogPrefix  = "snlog/"
	// recIncarnation holds the node's incarnation epoch: a monotonic
	// per-boot counter minted on every recovery (docs/adr/0006). It is
	// harness bookkeeping, not one of the paper's causal logs — the
	// emulation algorithms never read it — so storing it is deliberately
	// NOT reported to the causal meter.
	recIncarnation = "incarnation"
)

// errBadRecord reports a corrupted stable record.
var errBadRecord = errors.New("core: corrupted stable record")

// WrittenRecordName returns the stable record name under which a replica
// logs its adopted state for one register. Exported for harness tooling
// only: the namespace bench pre-populates stores that a real Node then
// recovers over, so it must write the records where recovery will look.
func WrittenRecordName(reg string) string { return recWrittenPrefix + reg }

// EncodeWrittenPayload returns the stable payload encoding of an adopted
// (tag, value) pair — the content of a WrittenRecordName record. Exported
// for the same harness tooling as WrittenRecordName.
func EncodeWrittenPayload(t tag.Tag, val []byte) []byte { return encodeTagged(t, val) }

// storeLog persists one causal-log record. Operations running under the
// batching engine go through the batched durability path, so the pre-logs of
// concurrently pipelined registers coalesce into shared group commits on
// engines that support them (stable.WALDisk, MemDisk's simulated disk); the
// synchronous path keeps the paper's literal one-store call.
func (nd *Node) storeLog(batched bool, record string, payload []byte) error {
	if batched {
		return nd.st.StoreBatch([]stable.Record{{Name: record, Data: payload}})
	}
	return nd.st.Store(record, payload)
}

// encodeTagged serializes a (tag, value) pair for stable storage.
func encodeTagged(t tag.Tag, val []byte) []byte {
	buf := make([]byte, 0, 20+len(val))
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Writer))
	buf = binary.BigEndian.AppendUint32(buf, uint32(t.Rec))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(val)))
	buf = append(buf, val...)
	return buf
}

// decodeTagged parses a record produced by encodeTagged.
func decodeTagged(data []byte) (tag.Tag, []byte, error) {
	if len(data) < 20 {
		return tag.Tag{}, nil, errBadRecord
	}
	t := tag.Tag{
		Seq:    int64(binary.BigEndian.Uint64(data)),
		Writer: int32(binary.BigEndian.Uint32(data[8:])),
		Rec:    int32(binary.BigEndian.Uint32(data[12:])),
	}
	n := int(binary.BigEndian.Uint32(data[16:]))
	if len(data) != 20+n {
		return tag.Tag{}, nil, errBadRecord
	}
	var val []byte
	if n > 0 {
		val = make([]byte, n)
		copy(val, data[20:])
	}
	return t, val, nil
}

// encodeCounter serializes the recovery counter.
func encodeCounter(c int32) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, uint32(c))
	return buf
}

// decodeCounter parses a record produced by encodeCounter.
func decodeCounter(data []byte) (int32, error) {
	if len(data) != 4 {
		return 0, errBadRecord
	}
	return int32(binary.BigEndian.Uint32(data)), nil
}

// encodeEpoch serializes the incarnation epoch.
func encodeEpoch(e uint64) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, e)
	return buf
}

// decodeEpoch parses a record produced by encodeEpoch.
func decodeEpoch(data []byte) (uint64, error) {
	if len(data) != 8 {
		return 0, errBadRecord
	}
	return binary.BigEndian.Uint64(data), nil
}

// loadIncarnation retrieves the persisted incarnation epoch (0 when none was
// ever stored — a cold start on an empty directory).
func loadIncarnation(st stable.Storage) (uint64, error) {
	data, ok, err := st.Retrieve(recIncarnation)
	if err != nil || !ok {
		return 0, err
	}
	return decodeEpoch(data)
}

// restoreCounter loads the only volatile state recovery materializes
// eagerly: the persisted recovery counter (transient/regular-sw). The
// register map is deliberately NOT rebuilt here — entries materialize
// lazily, on first touch, from their written/ records (see regView), so a
// restart's stable-storage footprint is O(pending + index) instead of
// O(namespace) (docs/adr/0009). Registers never stored stay at their zero
// state, which is equivalent to the paper's explicitly initialized
// store(written, 0, i, ⊥).
func (nd *Node) restoreCounter() (int32, error) {
	if nd.kind != Transient && nd.kind != RegularSW {
		return 0, nil
	}
	data, ok, err := nd.st.Retrieve(recRecovered)
	if err != nil || !ok {
		return 0, err
	}
	return decodeCounter(data)
}
