package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/causal"
	"recmem/internal/metrics"
	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/tag"
	"recmem/internal/wire"
)

// testCluster wires n nodes over a simulated network with per-node memdisks.
type testCluster struct {
	t     *testing.T
	n     int
	kind  AlgorithmKind
	net   *netsim.Net
	nodes []*Node
	disks []*stable.Counting
	logs  *causal.Meter
	msgs  *metrics.OpMeter
}

func newTestCluster(t *testing.T, n int, kind AlgorithmKind, opts Options, netOpts netsim.Options) *testCluster {
	t.Helper()
	if opts.RetransmitEvery == 0 {
		opts.RetransmitEvery = 10 * time.Millisecond
	}
	nw, err := netsim.New(n, netOpts)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{
		t: t, n: n, kind: kind, net: nw,
		logs: causal.NewMeter(), msgs: metrics.NewOpMeter(),
	}
	ids := &atomic.Uint64{}
	for i := 0; i < n; i++ {
		disk := stable.NewCounting(stable.NewMemDisk(stable.Profile{}))
		tc.disks = append(tc.disks, disk)
		nd, err := NewNode(int32(i), n, kind, opts, Deps{
			Endpoint: nw.Endpoint(int32(i)),
			Storage:  disk,
			IDs:      ids,
			LogMeter: tc.logs,
			MsgMeter: tc.msgs,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range tc.nodes {
			nd.Close()
		}
		nw.Close()
	})
	return tc
}

func (tc *testCluster) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	tc.t.Cleanup(cancel)
	return ctx
}

func (tc *testCluster) write(proc int, reg, val string) (uint64, error) {
	return tc.nodes[proc].Write(tc.ctx(), reg, []byte(val), OpObserver{})
}

func (tc *testCluster) read(proc int, reg string) (string, uint64, error) {
	v, op, err := tc.nodes[proc].Read(tc.ctx(), reg, OpObserver{})
	return string(v), op, err
}

func (tc *testCluster) crash(proc int) {
	tc.net.SetDown(int32(proc), true)
	tc.nodes[proc].Crash(nil)
}

func (tc *testCluster) recover(proc int) error {
	tc.net.SetDown(int32(proc), false)
	return tc.nodes[proc].Recover(tc.ctx(), nil, nil)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func allKinds() []AlgorithmKind {
	return []AlgorithmKind{CrashStop, Transient, Persistent, Naive}
}

func TestWriteThenReadEverywhere(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 5, kind, Options{}, netsim.Options{})
			if _, err := tc.write(0, "x", "v1"); err != nil {
				t.Fatalf("write: %v", err)
			}
			for p := 0; p < 5; p++ {
				got, _, err := tc.read(p, "x")
				if err != nil {
					t.Fatalf("read@%d: %v", p, err)
				}
				if got != "v1" {
					t.Fatalf("read@%d = %q, want v1", p, got)
				}
			}
		})
	}
}

func TestReadInitialValueIsBottom(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 3, kind, Options{}, netsim.Options{})
			got, _, err := tc.read(1, "fresh")
			if err != nil {
				t.Fatal(err)
			}
			if got != "" {
				t.Fatalf("read = %q, want bottom", got)
			}
		})
	}
}

func TestSuccessiveWritesMonotone(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 3, kind, Options{}, netsim.Options{})
			for i := 0; i < 10; i++ {
				val := fmt.Sprintf("v%d", i)
				writer := i % 3
				if _, err := tc.write(writer, "x", val); err != nil {
					t.Fatal(err)
				}
				got, _, err := tc.read((i+1)%3, "x")
				if err != nil {
					t.Fatal(err)
				}
				if got != val {
					t.Fatalf("after write %q read %q", val, got)
				}
			}
		})
	}
}

func TestMultiRegisterIndependence(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "xv"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.write(1, "y", "yv"); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := tc.read(2, "x"); got != "xv" {
		t.Fatalf("x = %q", got)
	}
	if got, _, _ := tc.read(2, "y"); got != "yv" {
		t.Fatalf("y = %q", got)
	}
}

// TestCausalLogCostWrite asserts the paper's headline log-complexity
// numbers: 0 causal logs for a crash-stop write, 1 for transient (Fig. 5),
// 2 for persistent (Fig. 4), 4 for the naive straw man.
func TestCausalLogCostWrite(t *testing.T) {
	want := map[AlgorithmKind]int{CrashStop: 0, Transient: 1, Persistent: 2, Naive: 4}
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 5, kind, Options{}, netsim.Options{})
			op, err := tc.write(0, "x", "v")
			if err != nil {
				t.Fatal(err)
			}
			// Let stragglers beyond the quorum finish logging.
			time.Sleep(20 * time.Millisecond)
			cost := tc.logs.Cost(op)
			if cost.CausalDepth != want[kind] {
				t.Fatalf("write causal depth = %d, want %d (cost %+v)", cost.CausalDepth, want[kind], cost)
			}
			if kind == CrashStop && cost.Logs != 0 {
				t.Fatalf("crash-stop write logged %d times", cost.Logs)
			}
		})
	}
}

// TestCausalLogCostQuiescentRead asserts that in the absence of concurrency
// a read of the optimal emulations logs nowhere ("in the absence of
// concurrency, a read will not log, since all processes will have already
// logged the latest value during the previous write").
func TestCausalLogCostQuiescentRead(t *testing.T) {
	for _, kind := range []AlgorithmKind{CrashStop, Transient, Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 5, kind, Options{}, netsim.Options{})
			if _, err := tc.write(0, "x", "v"); err != nil {
				t.Fatal(err)
			}
			// Wait until every replica adopted the write (the write only
			// waits for a majority; stragglers may still be adopting).
			waitFor(t, 2*time.Second, "full adoption", func() bool {
				for p := 0; p < 5; p++ {
					tg, _, _ := tc.nodes[p].RegisterState("x")
					if tg.IsZero() {
						return false
					}
				}
				return true
			})
			before := tc.logs.TotalLogs()
			op, err := func() (uint64, error) { _, op, err := tc.read(1, "x"); return op, err }()
			if err != nil {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
			if cost := tc.logs.Cost(op); cost.CausalDepth != 0 || cost.Logs != 0 {
				t.Fatalf("quiescent read cost = %+v, want zero", cost)
			}
			if after := tc.logs.TotalLogs(); after != before {
				t.Fatalf("quiescent read caused %d logs", after-before)
			}
		})
	}
}

// TestCausalLogCostReadWithPartialWrite: when the read observes a value not
// yet adopted by a majority, its write-back logs at the replicas — exactly
// one causal log.
func TestCausalLogCostReadWithPartialWrite(t *testing.T) {
	for _, kind := range []AlgorithmKind{Transient, Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 5, kind, Options{}, netsim.Options{})
			if _, err := tc.write(0, "x", "v1"); err != nil {
				t.Fatal(err)
			}
			// Block the second write's propagation to everyone but node 1,
			// then crash the writer: node 1 alone holds v2.
			tc.net.SetFilter(func(e wire.Envelope) bool {
				return !(e.Kind == wire.KindWrite && e.From == 0 && e.To != 1)
			})
			done := make(chan error, 1)
			go func() {
				_, err := tc.write(0, "x", "v2")
				done <- err
			}()
			waitFor(t, 2*time.Second, "node 1 adopts v2", func() bool {
				_, v, _ := tc.nodes[1].RegisterState("x")
				return string(v) == "v2"
			})
			tc.crash(0)
			if err := <-done; !errors.Is(err, ErrCrashed) {
				t.Fatalf("interrupted write returned %v", err)
			}
			tc.net.SetFilter(nil)

			// A read at node 1 picks up v2 and must write it back, logging
			// at replicas that had not adopted it. Hold 2->1 so the read's
			// majority {1,3,4} deterministically includes node 1 (the only
			// process holding v2).
			tc.net.HoldLink(2, 1)
			val, op, err := tc.read(1, "x")
			if err != nil {
				t.Fatal(err)
			}
			if val != "v2" {
				t.Fatalf("read = %q, want v2", val)
			}
			time.Sleep(20 * time.Millisecond)
			cost := tc.logs.Cost(op)
			if cost.CausalDepth != 1 {
				t.Fatalf("concurrent-ish read causal depth = %d, want 1 (%+v)", cost.CausalDepth, cost)
			}
		})
	}
}

// TestMessageComplexity asserts the paper's claim that minimizing logs does
// not increase messages: every operation is 2 rounds (4 communication
// steps) and, without loss, one send sweep of n messages per round.
func TestMessageComplexity(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 5, kind, Options{RetransmitEvery: time.Second}, netsim.Options{})
			wop, err := tc.write(0, "x", "v")
			if err != nil {
				t.Fatal(err)
			}
			_, rop, err := tc.read(1, "x")
			if err != nil {
				t.Fatal(err)
			}
			for name, op := range map[string]uint64{"write": wop, "read": rop} {
				tr := tc.msgs.Trace(op)
				if tr.Rounds != 2 || tr.Steps() != 4 {
					t.Fatalf("%s: %d rounds (%d steps), want 2 rounds / 4 steps", name, tr.Rounds, tr.Steps())
				}
				if tr.Retransmissions != 0 {
					t.Fatalf("%s: %d retransmissions on a lossless network", name, tr.Retransmissions)
				}
				if tr.Sends != 2*tc.n {
					t.Fatalf("%s: %d sends, want %d", name, tr.Sends, 2*tc.n)
				}
			}
		})
	}
}

func TestWriteSurvivesCrashRecover(t *testing.T) {
	for _, kind := range []AlgorithmKind{Transient, Persistent, Naive} {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 3, kind, Options{}, netsim.Options{})
			if _, err := tc.write(0, "x", "durable"); err != nil {
				t.Fatal(err)
			}
			// Crash everyone, then recover everyone: only stable storage
			// survives.
			for p := 0; p < 3; p++ {
				tc.crash(p)
			}
			var wg sync.WaitGroup
			for p := 0; p < 3; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					if err := tc.recover(p); err != nil {
						t.Errorf("recover %d: %v", p, err)
					}
				}(p)
			}
			wg.Wait()
			got, _, err := tc.read(1, "x")
			if err != nil {
				t.Fatal(err)
			}
			if got != "durable" {
				t.Fatalf("after total crash, read = %q", got)
			}
		})
	}
}

// TestPersistentRecoveryFinishesPendingWrite: the writer logs (writing,sn,v)
// and crashes before the propagation round reaches anyone; recovery must
// finish the write (Fig. 4's Recover), making it visible.
func TestPersistentRecoveryFinishesPendingWrite(t *testing.T) {
	tc := newTestCluster(t, 5, Persistent, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "v1"); err != nil {
		t.Fatal(err)
	}
	// Drop all W propagation from node 0 (but not recovery's, which we
	// re-enable later).
	tc.net.SetFilter(func(e wire.Envelope) bool {
		return !(e.Kind == wire.KindWrite && e.From == 0)
	})
	done := make(chan error, 1)
	go func() {
		_, err := tc.write(0, "x", "v2")
		done <- err
	}()
	// Wait for the pre-log of v2 to hit the writer's disk.
	waitFor(t, 2*time.Second, "writing record", func() bool {
		data, ok, _ := tc.disks[0].Retrieve("writing/x")
		if !ok {
			return false
		}
		_, v, err := decodeTagged(data)
		return err == nil && string(v) == "v2"
	})
	tc.crash(0)
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("interrupted write returned %v", err)
	}
	// Nobody saw v2.
	if got, _, _ := tc.read(1, "x"); got != "v1" {
		t.Fatalf("before recovery read = %q, want v1", got)
	}
	tc.net.SetFilter(nil)
	if err := tc.recover(0); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// Recovery finished the write: v2 is now the register's value.
	if got, _, _ := tc.read(1, "x"); got != "v2" {
		t.Fatalf("after recovery read = %q, want v2", got)
	}
}

// TestTransientRecoveryDoesNotFinishWrites: Fig. 5 has no write-back at
// recovery; an unpropagated value stays invisible (which transient
// atomicity allows) and the recovery counter grows instead.
func TestTransientRecoveryDoesNotFinishWrites(t *testing.T) {
	tc := newTestCluster(t, 5, Transient, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "v1"); err != nil {
		t.Fatal(err)
	}
	tc.net.SetFilter(func(e wire.Envelope) bool {
		return !(e.Kind == wire.KindWrite && e.From == 0)
	})
	done := make(chan error, 1)
	go func() {
		_, err := tc.write(0, "x", "v2")
		done <- err
	}()
	// The write is stuck in its propagation round; give it time to send.
	time.Sleep(30 * time.Millisecond)
	tc.crash(0)
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("interrupted write returned %v", err)
	}
	tc.net.SetFilter(nil)
	if err := tc.recover(0); err != nil {
		t.Fatal(err)
	}
	if got := tc.nodes[0].RecoveryCount(); got != 1 {
		t.Fatalf("recovery count = %d, want 1", got)
	}
	if got, _, _ := tc.read(1, "x"); got != "v1" {
		t.Fatalf("read = %q, want v1 (transient recovery must not finish writes)", got)
	}
	// The next write must still be ordered after v1 — and after recovery the
	// counter makes its sequence number skip the lost one.
	if _, err := tc.write(0, "x", "v3"); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := tc.read(2, "x"); got != "v3" {
		t.Fatalf("read = %q, want v3", got)
	}
}

func TestRecoveryCounterAccumulates(t *testing.T) {
	tc := newTestCluster(t, 3, Transient, Options{}, netsim.Options{})
	for i := 1; i <= 3; i++ {
		tc.crash(0)
		if err := tc.recover(0); err != nil {
			t.Fatal(err)
		}
		if got := tc.nodes[0].RecoveryCount(); got != int32(i) {
			t.Fatalf("after %d cycles count = %d", i, got)
		}
	}
}

func TestOpsRejectedWhileDown(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	tc.crash(0)
	if _, err := tc.write(0, "x", "v"); !errors.Is(err, ErrDown) {
		t.Fatalf("write on crashed node: %v", err)
	}
	if _, _, err := tc.read(0, "x"); !errors.Is(err, ErrDown) {
		t.Fatalf("read on crashed node: %v", err)
	}
	// The other nodes still form a majority.
	if _, err := tc.write(1, "x", "v"); err != nil {
		t.Fatal(err)
	}
}

func TestCrashStopCannotRecover(t *testing.T) {
	tc := newTestCluster(t, 3, CrashStop, Options{}, netsim.Options{})
	tc.crash(0)
	err := tc.nodes[0].Recover(tc.ctx(), nil, nil)
	if !errors.Is(err, ErrCannotRecover) {
		t.Fatalf("recover on crash-stop: %v", err)
	}
}

func TestRecoverRequiresCrash(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	if err := tc.nodes[0].Recover(tc.ctx(), nil, nil); !errors.Is(err, ErrNotDown) {
		t.Fatalf("recover on healthy node: %v", err)
	}
}

func TestOpsBlockWithoutMajority(t *testing.T) {
	tc := newTestCluster(t, 5, Persistent, Options{}, netsim.Options{})
	for p := 1; p <= 3; p++ { // 3 of 5 down: no majority
		tc.crash(p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := tc.nodes[0].Write(ctx, "x", []byte("v"), OpObserver{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("write without majority: %v", err)
	}
	// Recover one: majority restored, operations proceed.
	if err := tc.recover(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.write(0, "x", "v"); err != nil {
		t.Fatalf("write with majority restored: %v", err)
	}
}

func TestOpsCompleteUnderLossAndDuplication(t *testing.T) {
	for _, kind := range []AlgorithmKind{CrashStop, Transient, Persistent} {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 5, kind, Options{RetransmitEvery: 2 * time.Millisecond},
				netsim.Options{LossRate: 0.3, DupRate: 0.2, Seed: 11})
			for i := 0; i < 10; i++ {
				val := fmt.Sprintf("v%d", i)
				if _, err := tc.write(i%5, "x", val); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				got, _, err := tc.read((i+1)%5, "x")
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if got != val {
					t.Fatalf("read %d = %q, want %q", i, got, val)
				}
			}
		})
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	tc := newTestCluster(t, 5, Persistent, Options{}, netsim.Options{})
	var wg sync.WaitGroup
	for p := 0; p < 5; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := tc.write(p, "x", fmt.Sprintf("p%d-%d", p, i)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	// All readers agree on a single final value.
	first, _, err := tc.read(0, "x")
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p < 5; p++ {
		got, _, err := tc.read(p, "x")
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("reader %d sees %q, reader 0 sees %q", p, got, first)
		}
	}
}

func TestSingleNodeCluster(t *testing.T) {
	tc := newTestCluster(t, 1, Persistent, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "solo"); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := tc.read(0, "x"); got != "solo" {
		t.Fatalf("read = %q", got)
	}
}

func TestQuorumSize(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 9: 5} {
		tc := newTestCluster(t, n, CrashStop, Options{}, netsim.Options{})
		if got := tc.nodes[0].Quorum(); got != want {
			t.Fatalf("n=%d quorum=%d want %d", n, got, want)
		}
	}
}

func TestWriteTooLarge(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	_, err := tc.nodes[0].Write(tc.ctx(), "x", make([]byte, wire.MaxValueSize+1), OpObserver{})
	if !errors.Is(err, wire.ErrValueTooLarge) {
		t.Fatalf("oversize write: %v", err)
	}
}

func TestNewNodeValidation(t *testing.T) {
	nw, err := netsim.New(1, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ids := &atomic.Uint64{}
	disk := stable.NewMemDisk(stable.Profile{})
	ok := Deps{Endpoint: nw.Endpoint(0), Storage: disk, IDs: ids}

	if _, err := NewNode(0, 0, Persistent, Options{}, ok); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := NewNode(5, 3, Persistent, Options{}, ok); err == nil {
		t.Fatal("accepted id out of range")
	}
	if _, err := NewNode(0, 1, AlgorithmKind(99), Options{}, ok); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
	if _, err := NewNode(0, 1, Persistent, Options{}, Deps{Endpoint: nw.Endpoint(0), IDs: ids}); err == nil {
		t.Fatal("accepted recovery algorithm without storage")
	}
	if _, err := NewNode(0, 1, Persistent, Options{}, Deps{Storage: disk, IDs: ids}); err == nil {
		t.Fatal("accepted missing endpoint")
	}
	// Crash-stop needs no storage.
	nd, err := NewNode(0, 1, CrashStop, Options{}, Deps{Endpoint: nw.Endpoint(0), IDs: ids})
	if err != nil {
		t.Fatalf("crash-stop without storage: %v", err)
	}
	nd.Close()
}

func TestObserverCallbacks(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	var invoked, returned atomic.Uint64
	obs := OpObserver{
		OnInvoke: func(op uint64) { invoked.Store(op) },
		OnReturn: func(op uint64, _ []byte, _ tag.Tag) { returned.Store(op) },
	}
	op, err := tc.nodes[0].Write(tc.ctx(), "x", []byte("v"), obs)
	if err != nil {
		t.Fatal(err)
	}
	if invoked.Load() != op || returned.Load() != op {
		t.Fatalf("callbacks saw %d/%d, op %d", invoked.Load(), returned.Load(), op)
	}
}

// TestObserverNoReturnOnCrash: an operation interrupted by a crash must not
// fire OnReturn — its invocation stays pending.
func TestObserverNoReturnOnCrash(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	tc.net.SetFilter(func(e wire.Envelope) bool { return e.Kind != wire.KindSNQuery })
	var returned atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := tc.nodes[0].Write(tc.ctx(), "x", []byte("v"),
			OpObserver{OnReturn: func(uint64, []byte, tag.Tag) { returned.Store(true) }})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	tc.crash(0)
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	if returned.Load() {
		t.Fatal("OnReturn fired for a crashed operation")
	}
}

func TestStateAccessors(t *testing.T) {
	tc := newTestCluster(t, 3, Transient, Options{}, netsim.Options{})
	nd := tc.nodes[0]
	if nd.ID() != 0 || nd.Algorithm() != Transient || !nd.Up() {
		t.Fatal("accessors wrong")
	}
	if _, err := tc.write(0, "x", "v"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, "self adoption", func() bool {
		tg, v, ok := nd.RegisterState("x")
		return ok && !tg.IsZero() && bytes.Equal(v, []byte("v"))
	})
	tc.crash(0)
	if nd.Up() {
		t.Fatal("Up after crash")
	}
	if _, _, ok := nd.RegisterState("x"); ok {
		t.Fatal("volatile state survived crash")
	}
}

func TestCloseRejectsOps(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	tc.nodes[0].Close()
	if _, err := tc.write(0, "x", "v"); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := tc.nodes[0].Recover(tc.ctx(), nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("recover after close: %v", err)
	}
	tc.nodes[0].Close() // idempotent
}

func TestCrashIsIdempotent(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	if !tc.nodes[0].Crash(nil) {
		t.Fatal("first crash returned false")
	}
	if tc.nodes[0].Crash(nil) {
		t.Fatal("second crash returned true")
	}
}

// TestRecordCodecs round-trips the stable record encodings.
func TestRecordCodecs(t *testing.T) {
	tags := []struct {
		seq    int64
		writer int32
		rec    int32
		val    string
	}{
		{0, 0, 0, ""},
		{1, 2, 0, "v"},
		{1 << 40, 7, 3, "payload"},
	}
	for _, tt := range tags {
		enc := encodeTagged(tagOf(tt.seq, tt.writer, tt.rec), []byte(tt.val))
		gotTag, gotVal, err := decodeTagged(enc)
		if err != nil {
			t.Fatal(err)
		}
		if gotTag != tagOf(tt.seq, tt.writer, tt.rec) || string(gotVal) != tt.val {
			t.Fatalf("round trip: %v %q", gotTag, gotVal)
		}
	}
	if _, _, err := decodeTagged([]byte{1, 2, 3}); err == nil {
		t.Fatal("decoded short record")
	}
	if _, _, err := decodeTagged(make([]byte, 21)); err == nil {
		t.Fatal("decoded record with bad length")
	}
	for _, c := range []int32{0, 1, 1 << 30} {
		got, err := decodeCounter(encodeCounter(c))
		if err != nil || got != c {
			t.Fatalf("counter round trip: %d %v", got, err)
		}
	}
	if _, err := decodeCounter([]byte{1}); err == nil {
		t.Fatal("decoded short counter")
	}
}
