package core

import (
	"context"
	"errors"
	"sync"

	"recmem/internal/tag"
	"recmem/internal/wire"
)

// This file implements first-class register handles: a RegisterRef resolves
// everything per-register the node would otherwise look up on every
// operation — the batching engine's shard and queue (maphash + map lookup)
// and the per-register write-execution lock (sync.Map lookup) — exactly
// once, so handle-based operations touch only pointer-stable state on the
// hot path. It also implements the §VI read-consistency selection: the
// regular register's read can be downgraded to a safe read served by the
// writer alone.

// ReadMode selects the consistency of a single read operation.
type ReadMode int

const (
	// ReadDefault is the algorithm's native read: the two-round atomic read
	// for the atomic emulations, the one-round majority read for RegularSW.
	ReadDefault ReadMode = iota
	// ReadRegular explicitly requests the regular read (RegularSW only);
	// identical to ReadDefault under that algorithm.
	ReadRegular
	// ReadSafe requests the §VI safe read (RegularSW only): a round
	// addressed to the designated writer alone — 2 communication steps and 2
	// messages in total instead of a majority fan-out, and still no logging.
	// The writer's adopted value never lags a completed write (its listener
	// logs before the write's required self-acknowledgement), so a safe read
	// that is not concurrent with a write returns the last completed write —
	// in fact the result is even regular. The price is availability, not
	// consistency: safe reads block while the writer is down, where the
	// majority read keeps going.
	ReadSafe
)

// ErrBadConsistency is returned when a read-consistency selection is not
// available under the node's algorithm (only RegularSW has selectable
// safe/regular reads).
var ErrBadConsistency = errors.New("core: read-consistency selection requires the regular-register algorithm")

// checkReadMode validates a read-consistency selection against the node's
// algorithm.
func (nd *Node) checkReadMode(mode ReadMode) error {
	if mode != ReadDefault && nd.kind != RegularSW {
		return ErrBadConsistency
	}
	return nil
}

// RegisterRef is a node's cached handle on one register. Obtain one with
// Node.RegisterRef and reuse it: all per-register resolution (engine shard,
// submission queue, write lock) happened at creation, so the per-operation
// string-map lookups of the Node-level API disappear from the hot path.
type RegisterRef struct {
	nd  *Node
	reg string
	sh  *engineShard
	q   *regQueue
	wmu *sync.Mutex
}

// RegisterRef resolves a cached handle for the named register.
func (nd *Node) RegisterRef(reg string) *RegisterRef {
	sh, q := nd.eng.queueFor(reg)
	return &RegisterRef{nd: nd, reg: reg, sh: sh, q: q, wmu: nd.wlock(reg)}
}

// Name returns the register name.
func (r *RegisterRef) Name() string { return r.reg }

// Node returns the node the handle operates through.
func (r *RegisterRef) Node() *Node { return r.nd }

// Write is Node.Write through the cached handle; it additionally returns
// the minted tag — the write's tag witness (zero on failure) — and the
// incarnation epoch the operation completed under (zero on failure).
func (r *RegisterRef) Write(ctx context.Context, val []byte, obs OpObserver) (uint64, tag.Tag, uint64, error) {
	nd := r.nd
	if len(val) > wire.MaxValueSize {
		return 0, tag.Tag{}, 0, wire.ErrValueTooLarge
	}
	if nd.kind == RegularSW && nd.id != RegularWriter {
		return 0, tag.Tag{}, 0, ErrNotWriter
	}
	nd.opMu.Lock()
	defer nd.opMu.Unlock()
	val = append([]byte(nil), val...)
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return 0, tag.Tag{}, 0, err
	}
	wit, err := nd.writeProtocolMu(ctx, op, r.reg, val, false, r.wmu)
	inc, err := nd.endOp(op, epoch, obs, err, nil, wit)
	if err != nil {
		return op, tag.Tag{}, 0, err
	}
	return op, wit, inc, nil
}

// Read is Node.Read through the cached handle, with a read-consistency
// selection (ReadSafe and ReadRegular require the RegularSW algorithm); it
// additionally returns the tag under which the returned value was adopted —
// the read's tag witness (zero on failure or for the initial value ⊥) — and
// the incarnation epoch the operation completed under (zero on failure).
func (r *RegisterRef) Read(ctx context.Context, mode ReadMode, obs OpObserver) ([]byte, uint64, tag.Tag, uint64, error) {
	nd := r.nd
	if err := nd.checkReadMode(mode); err != nil {
		return nil, 0, tag.Tag{}, 0, err
	}
	nd.opMu.Lock()
	defer nd.opMu.Unlock()
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, 0, tag.Tag{}, 0, err
	}
	var (
		val []byte
		wit tag.Tag
	)
	if mode == ReadSafe {
		val, wit, err = nd.safeReadSW(ctx, op, r.reg, false)
	} else {
		val, wit, err = nd.readProtocol(ctx, op, r.reg, false)
	}
	inc, err := nd.endOp(op, epoch, obs, err, val, wit)
	if err != nil {
		return nil, op, tag.Tag{}, 0, err
	}
	return val, op, wit, inc, nil
}

// SubmitWrite is Node.SubmitWrite through the cached handle: the submission
// goes straight onto the pre-resolved register queue.
func (r *RegisterRef) SubmitWrite(val []byte, obs OpObserver) (*Future, error) {
	val = append([]byte(nil), val...) // copy once at the boundary
	return r.SubmitWriteOwned(val, obs)
}

// SubmitWriteOwned is SubmitWrite minus the defensive copy: the caller
// transfers ownership of val, which must never be mutated afterwards. The
// remote server's decoded request value is already an owned copy, so this is
// its ingest path.
func (r *RegisterRef) SubmitWriteOwned(val []byte, obs OpObserver) (*Future, error) {
	nd := r.nd
	if len(val) > wire.MaxValueSize {
		return nil, wire.ErrValueTooLarge
	}
	if nd.kind == RegularSW && nd.id != RegularWriter {
		return nil, ErrNotWriter
	}
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, err
	}
	fut := newFuture(op)
	nd.eng.enqueueResolved(r.sh, r.q, r.reg, newSub(false, val, obs, op, epoch, fut))
	return fut, nil
}

// SubmitRead is Node.SubmitRead through the cached handle. Default and
// regular reads coalesce through the batching engine; safe reads bypass it —
// they are a single 2-message exchange with the writer, so there is no
// quorum round to share — and run on their own goroutine.
func (r *RegisterRef) SubmitRead(mode ReadMode, obs OpObserver) (*Future, error) {
	nd := r.nd
	if err := nd.checkReadMode(mode); err != nil {
		return nil, err
	}
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, err
	}
	fut := newFuture(op)
	if mode == ReadSafe {
		go func() {
			// Like engine rounds, the safe read aborts via crashCh on
			// crash/close rather than through a context.
			val, wit, err := nd.safeReadSW(context.Background(), op, r.reg, false)
			inc, err2 := nd.endOp(op, epoch, obs, err, val, wit)
			fut.complete(val, wit, inc, err2)
		}()
		return fut, nil
	}
	nd.eng.enqueueResolved(r.sh, r.q, r.reg, newSub(true, nil, obs, op, epoch, fut))
	return fut, nil
}

// safeReadSW is the §VI safe read: one round addressed to the designated
// writer alone, requiring only the writer's acknowledgement. See ReadSafe
// for why this is safe (and regular) yet blocks while the writer is down.
// The returned tag is the writer's adopted tag — the read's tag witness.
func (nd *Node) safeReadSW(ctx context.Context, op uint64, reg string, batched bool) ([]byte, tag.Tag, error) {
	acks, err := nd.runRoundOpts(ctx, op, wire.Envelope{Kind: wire.KindRead, Reg: reg},
		roundOpts{require: RegularWriter, to: RegularWriter, quorum: 1, batched: batched})
	if err != nil {
		return nil, tag.Tag{}, err
	}
	return acks[RegularWriter].Value, acks[RegularWriter].Tag, nil
}
