package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"recmem/internal/netsim"
)

// The benchmark pair behind the Register-handle redesign: every Node-level
// operation resolves its register by name — a maphash + map lookup in the
// batching engine's shard (queueFor) and a sync.Map lookup for the write
// lock (wlock) — while a RegisterRef resolved those pointers once at
// creation. The pair measures exactly that per-operation resolution work
// over a realistic register population, isolated from the protocol rounds
// (which are identical on both paths).

const benchRegisters = 4096

func benchNode(b *testing.B) (*Node, []string) {
	b.Helper()
	nw, err := netsim.New(1, netsim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(nw.Close)
	nd, err := NewNode(0, 1, CrashStop, Options{},
		Deps{Endpoint: nw.Endpoint(0), IDs: &atomic.Uint64{}})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(nd.Close)
	regs := make([]string, benchRegisters)
	for i := range regs {
		regs[i] = fmt.Sprintf("register-%04d", i)
		// Populate both maps, as a warmed-up node would be.
		nd.eng.queueFor(regs[i])
		nd.wlock(regs[i])
	}
	return nd, regs
}

// BenchmarkStringLookup is the per-operation dispatch resolution of the
// Node-level string API: shard hash + queue lookup + write-lock lookup on
// every operation.
func BenchmarkStringLookup(b *testing.B) {
	nd, regs := benchNode(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := regs[i%benchRegisters]
		sh, q := nd.eng.queueFor(reg)
		mu := nd.wlock(reg)
		if sh == nil || q == nil || mu == nil {
			b.Fatal("lost a register")
		}
	}
}

// BenchmarkRegisterHandle is the same dispatch with the resolution cached
// in a RegisterRef: the hot path touches only pointer-stable fields.
func BenchmarkRegisterHandle(b *testing.B) {
	nd, regs := benchNode(b)
	refs := make([]*RegisterRef, benchRegisters)
	for i, reg := range regs {
		refs[i] = nd.RegisterRef(reg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := refs[i%benchRegisters]
		if r.sh == nil || r.q == nil || r.wmu == nil {
			b.Fatal("lost a register")
		}
	}
}
