package core

import (
	"context"
	"testing"
	"time"

	"recmem/internal/netsim"
	"recmem/internal/tag"
)

// TestMintTagMatchesDocumentedRules cross-checks the node's timestamp
// minting against the paper's documented [sn, pid] advancement rules — and
// against tag.Next, which is now the single implementation of those rules
// (it had previously drifted from core.mintTag as dead code):
//
//   - Fig. 4 (persistent, naive, crash-stop): sn := max_queried_sn + 1.
//   - Fig. 5 (transient): sn := max_queried_sn + rec + 1, with the
//     persisted recovery count compensating for the missing writer pre-log.
//   - Hardened tags (DESIGN.md §7): the recovery count additionally rides
//     as the Rec lexicographic tiebreak; literal algorithms leave Rec 0.
func TestMintTagMatchesDocumentedRules(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	recoverTimes := func(tc *testCluster, times int) {
		t.Helper()
		for i := 0; i < times; i++ {
			if !tc.nodes[0].Crash(nil) {
				t.Fatal("crash refused")
			}
			if err := tc.nodes[0].Recover(ctx, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("Fig4", func(t *testing.T) {
		for _, kind := range []AlgorithmKind{Persistent, Naive, CrashStop} {
			tc := newTestCluster(t, 1, kind, Options{}, netsim.Options{})
			for _, maxSeq := range []int64{0, 1, 41} {
				got := tc.nodes[0].mintTag(maxSeq)
				want := tag.Tag{Seq: maxSeq + 1, Writer: 0}
				if got != want {
					t.Fatalf("%v mintTag(%d) = %v, want %v", kind, maxSeq, got, want)
				}
				if next := (tag.Tag{Seq: maxSeq}).Next(0, 0, 0); next != got {
					t.Fatalf("%v: tag.Next = %v, mintTag = %v", kind, next, got)
				}
			}
		}
	})

	t.Run("Fig5", func(t *testing.T) {
		tc := newTestCluster(t, 1, Transient, Options{}, netsim.Options{})
		recoverTimes(tc, 3)
		if rec := tc.nodes[0].RecoveryCount(); rec != 3 {
			t.Fatalf("recovery count = %d, want 3", rec)
		}
		got := tc.nodes[0].mintTag(10)
		want := tag.Tag{Seq: 10 + 3 + 1, Writer: 0}
		if got != want {
			t.Fatalf("transient mintTag(10) after 3 recoveries = %v, want %v", got, want)
		}
		if next := (tag.Tag{Seq: 10}).Next(0, 3, 0); next != got {
			t.Fatalf("tag.Next = %v, mintTag = %v", next, got)
		}
	})

	t.Run("Hardened", func(t *testing.T) {
		tc := newTestCluster(t, 1, Transient, Options{HardenedTags: true}, netsim.Options{})
		recoverTimes(tc, 2)
		got := tc.nodes[0].mintTag(5)
		want := tag.Tag{Seq: 5 + 2 + 1, Writer: 0, Rec: 2}
		if got != want {
			t.Fatalf("hardened mintTag(5) after 2 recoveries = %v, want %v", got, want)
		}
	})

	// §VI single-writer: the same advancement rule applied to the writer's
	// own view — one completed write then a crash+recover bumps the next
	// tag past anything the dead incarnation could have minted.
	t.Run("RegularSW", func(t *testing.T) {
		tc := newTestCluster(t, 1, RegularSW, Options{}, netsim.Options{})
		if _, err := tc.nodes[0].Write(ctx, "x", []byte("v1"), OpObserver{}); err != nil {
			t.Fatal(err)
		}
		own, _, _ := tc.nodes[0].RegisterState("x")
		if own != (tag.Tag{Seq: 1, Writer: 0}) {
			t.Fatalf("first write adopted %v, want [1,0]", own)
		}
		recoverTimes(tc, 1)
		if _, err := tc.nodes[0].Write(ctx, "x", []byte("v2"), OpObserver{}); err != nil {
			t.Fatal(err)
		}
		adopted, _, _ := tc.nodes[0].RegisterState("x")
		want := own.Next(0, 1, 0) // sn + rec + 1 with rec = 1
		if adopted != want {
			t.Fatalf("post-recovery write adopted %v, want %v", adopted, want)
		}
	})
}
