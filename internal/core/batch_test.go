package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"recmem/internal/netsim"
	"recmem/internal/wire"
)

// slowNet is a latency profile long enough that a burst of submissions
// reliably queues behind the first in-flight round, forcing coalescing.
func slowNet() netsim.Options {
	return netsim.Options{Profile: netsim.Profile{
		Propagation: 2 * time.Millisecond,
		SelfDelay:   100 * time.Microsecond,
	}}
}

func waitAll(t *testing.T, futs []*Future) []error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	errs := make([]error, len(futs))
	for i, f := range futs {
		_, errs[i] = f.Wait(ctx)
		if errors.Is(errs[i], context.DeadlineExceeded) {
			t.Fatalf("future %d never completed", i)
		}
	}
	return errs
}

func totalStores(tc *testCluster) int {
	total := 0
	for _, d := range tc.disks {
		if d != nil {
			total += d.Stores()
		}
	}
	return total
}

// TestSubmitWriteCoalesces drives a burst of writes to one register through
// the async API for every algorithm kind: all futures must complete, the
// register must end at the last submitted value, and the burst must cost far
// fewer quorum rounds (and, for the logging algorithms, far fewer stores)
// than one per operation.
func TestSubmitWriteCoalesces(t *testing.T) {
	const burst = 50
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tc := newTestCluster(t, 3, kind, Options{}, slowNet())
			futs := make([]*Future, burst)
			for i := range futs {
				f, err := tc.nodes[0].SubmitWrite("x", []byte(fmt.Sprintf("v%d", i)), OpObserver{})
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				futs[i] = f
			}
			for i, err := range waitAll(t, futs) {
				if err != nil {
					t.Fatalf("write %d failed: %v", i, err)
				}
			}
			got, _, err := tc.read(1, "x")
			if err != nil {
				t.Fatal(err)
			}
			if got != fmt.Sprintf("v%d", burst-1) {
				t.Fatalf("register = %q, want the last submitted value", got)
			}
			if kind.Recovers() {
				// Unbatched, every write stores at the writer and/or the
				// adopters; coalesced, whole batches share one log chain.
				if s := totalStores(tc); s >= burst {
					t.Fatalf("%d stores for %d coalesced writes — batching did not amortize", s, burst)
				}
			}
		})
	}
}

// TestSubmitReadCoalesces: a burst of submitted reads of one register shares
// quorum rounds and all observe the written value.
func TestSubmitReadCoalesces(t *testing.T) {
	const burst = 50
	tc := newTestCluster(t, 3, Persistent, Options{}, slowNet())
	if _, err := tc.write(0, "x", "stable"); err != nil {
		t.Fatal(err)
	}
	before := tc.net.Stats().Sent
	futs := make([]*Future, burst)
	for i := range futs {
		f, err := tc.nodes[1].SubmitRead("x", OpObserver{})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	ctx := tc.ctx()
	for i, f := range futs {
		val, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(val) != "stable" {
			t.Fatalf("read %d = %q", i, val)
		}
	}
	// Unbatched, 50 reads over 3 nodes cost >= 50*2*3 = 300 sends; coalesced
	// they collapse to a handful of rounds.
	if sent := tc.net.Stats().Sent - before; sent >= burst*2*3 {
		t.Fatalf("%d sends for %d coalesced reads — no amortization", sent, burst)
	}
}

// TestSubmitPipelinesRegisters: submissions to distinct registers run their
// rounds concurrently, and the outbox group-commits their broadcasts into
// batch frames (visible in the network's frame accounting).
func TestSubmitPipelinesRegisters(t *testing.T) {
	const regs = 20
	tc := newTestCluster(t, 3, Persistent, Options{}, slowNet())
	futs := make([]*Future, regs)
	for i := range futs {
		f, err := tc.nodes[0].SubmitWrite(fmt.Sprintf("r%d", i), []byte("v"), OpObserver{})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	for i, err := range waitAll(t, futs) {
		if err != nil {
			t.Fatalf("write to r%d failed: %v", i, err)
		}
	}
	if bf := tc.net.Stats().BatchFrames; bf == 0 {
		t.Fatal("no batch frames on the wire — pipelined rounds did not share frames")
	}
	for i := 0; i < regs; i++ {
		got, _, err := tc.read(2, fmt.Sprintf("r%d", i))
		if err != nil || got != "v" {
			t.Fatalf("r%d = %q, %v", i, got, err)
		}
	}
}

// TestSubmitCrashMidBatch crashes the submitting node while a batch is in
// flight: every future must complete (no hangs), each either acknowledged or
// ErrCrashed — and after recovery every acknowledged write must be durable:
// the register's value must be an acknowledged submission or a later one.
func TestSubmitCrashMidBatch(t *testing.T) {
	for _, kind := range []AlgorithmKind{Persistent, Transient, Naive} {
		t.Run(kind.String(), func(t *testing.T) {
			const burst = 40
			tc := newTestCluster(t, 3, kind, Options{}, slowNet())
			futs := make([]*Future, burst)
			for i := range futs {
				f, err := tc.nodes[0].SubmitWrite("x", []byte(fmt.Sprintf("v%d", i)), OpObserver{})
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				futs[i] = f
			}
			time.Sleep(3 * time.Millisecond) // let some of the batch commit
			tc.crash(0)
			errs := waitAll(t, futs)
			lastAcked := -1
			for i, err := range errs {
				switch {
				case err == nil:
					lastAcked = i
				case errors.Is(err, ErrCrashed):
				default:
					t.Fatalf("future %d: unexpected error %v", i, err)
				}
			}
			if err := tc.recover(0); err != nil {
				t.Fatalf("recover: %v", err)
			}
			got, _, err := tc.read(1, "x")
			if err != nil {
				t.Fatal(err)
			}
			if lastAcked >= 0 {
				// An acknowledged op is durable: the value cannot have
				// regressed to before the last acknowledged write.
				var gotIdx int
				if _, err := fmt.Sscanf(got, "v%d", &gotIdx); err != nil {
					t.Fatalf("register = %q after acked writes", got)
				}
				if gotIdx < lastAcked {
					t.Fatalf("register = %q but write %d was acknowledged — acked op lost", got, lastAcked)
				}
			}
		})
	}
}

// TestSubmitAdmissionErrors: the async API rejects exactly what the sync API
// rejects, at submission time.
func TestSubmitAdmissionErrors(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	if _, err := tc.nodes[0].SubmitWrite("x", make([]byte, wire.MaxValueSize+1), OpObserver{}); !errors.Is(err, wire.ErrValueTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
	tc.crash(0)
	if _, err := tc.nodes[0].SubmitWrite("x", []byte("v"), OpObserver{}); !errors.Is(err, ErrDown) {
		t.Fatalf("down submit write: %v", err)
	}
	if _, err := tc.nodes[0].SubmitRead("x", OpObserver{}); !errors.Is(err, ErrDown) {
		t.Fatalf("down submit read: %v", err)
	}
}

// TestSubmitRegularSW: the single-writer register batches too, and
// non-writers are rejected at submission.
func TestSubmitRegularSW(t *testing.T) {
	tc := newTestCluster(t, 3, RegularSW, Options{}, slowNet())
	if _, err := tc.nodes[1].SubmitWrite("x", []byte("v"), OpObserver{}); !errors.Is(err, ErrNotWriter) {
		t.Fatalf("non-writer: %v", err)
	}
	futs := make([]*Future, 20)
	for i := range futs {
		f, err := tc.nodes[0].SubmitWrite("x", []byte(fmt.Sprintf("v%d", i)), OpObserver{})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	for i, err := range waitAll(t, futs) {
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	got, _, err := tc.read(1, "x")
	if err != nil || got != "v19" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

// TestSubmitMixedReadsAndWrites: reads submitted into a write burst return
// the batch's write (or a later one), never an interleaving-violating stale
// value, and everything completes.
func TestSubmitMixedReadsAndWrites(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, slowNet())
	if _, err := tc.write(0, "x", "v-1"); err != nil {
		t.Fatal(err)
	}
	var wfuts, rfuts []*Future
	for i := 0; i < 20; i++ {
		wf, err := tc.nodes[0].SubmitWrite("x", []byte(fmt.Sprintf("v%d", i)), OpObserver{})
		if err != nil {
			t.Fatal(err)
		}
		wfuts = append(wfuts, wf)
		rf, err := tc.nodes[0].SubmitRead("x", OpObserver{})
		if err != nil {
			t.Fatal(err)
		}
		rfuts = append(rfuts, rf)
	}
	for i, err := range waitAll(t, wfuts) {
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	ctx := tc.ctx()
	for i, f := range rfuts {
		val, err := f.Wait(ctx)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		var idx int
		if _, err := fmt.Sscanf(string(val), "v%d", &idx); err != nil || idx < -1 {
			t.Fatalf("read %d = %q", i, val)
		}
	}
}

// TestMixedSyncAsyncWritesNeverShareTags races the synchronous Write path
// against the batching engine on one register: without per-register
// serialization of tag minting, both executions can observe the same
// majority maximum and mint the same timestamp for different values, after
// which replicas adopting in different orders disagree forever. The
// invariant: across all replicas, one timestamp always names one value.
func TestMixedSyncAsyncWritesNeverShareTags(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	ctx := tc.ctx()
	for i := 0; i < 50; i++ {
		done := make(chan error, 1)
		go func(i int) {
			_, err := tc.nodes[0].Write(ctx, "x", []byte(fmt.Sprintf("s%d", i)), OpObserver{})
			done <- err
		}(i)
		f, err := tc.nodes[0].SubmitWrite("x", []byte(fmt.Sprintf("a%d", i)), OpObserver{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("async write %d: %v", i, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("sync write %d: %v", i, err)
		}
		byTag := make(map[string]string)
		for _, nd := range tc.nodes {
			tg, v, ok := nd.RegisterState("x")
			if !ok {
				continue
			}
			if prev, seen := byTag[tg.String()]; seen && prev != string(v) {
				t.Fatalf("round %d: tag %v names both %q and %q — duplicate mint", i, tg, prev, v)
			}
			byTag[tg.String()] = string(v)
		}
	}
}
