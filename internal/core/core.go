// Package core implements the paper's register emulations over fair-lossy
// channels and stable storage:
//
//   - CrashStop: the multi-writer/multi-reader atomic emulation of Lynch &
//     Shvartsman [2] (itself a multi-writer extension of ABD [1]), the most
//     efficient robust crash-stop emulation the paper builds on. No logging;
//     crashed processes never recover.
//   - Persistent: Figure 4 — the log-optimal persistent-atomic emulation for
//     the crash-recovery model: 2 causal logs per write (the writer logs the
//     minted timestamp before the second round; replicas log on adoption),
//     1 causal log per read (0 when no concurrent write is observed), and a
//     recovery procedure that finishes the interrupted write.
//   - Transient: Figure 5 — the log-optimal transient-atomic emulation:
//     1 causal log per write (no writer pre-log; the sequence number is
//     advanced by the persisted recovery count), 1 causal log per read, and
//     one extra log per recovery.
//   - Naive: the §I-C straw man — the crash-stop algorithm made
//     crash-recovery-safe by logging every step; used as the ablation
//     baseline showing why minimizing causal logs matters.
//
// Every operation uses two request/acknowledgement rounds (4 communication
// steps), exactly as in [2]: minimizing logs costs no extra messages.
//
// All algorithms are multi-register: each register name runs an independent
// instance of the protocol multiplexed over the same channels and stable
// store.
//
// Beyond the paper's one-operation-at-a-time processes, every node carries a
// batching + pipelining engine (batch.go): SubmitWrite/SubmitRead return
// futures, concurrent submissions to one register coalesce into a single
// execution of the protocol (one minted timestamp and one causal log chain
// per batch), and different registers' rounds overlap, their broadcasts
// group-committed into per-destination batch frames. See docs/adr/0001.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"recmem/internal/causal"
	"recmem/internal/metrics"
	"recmem/internal/stable"
	"recmem/internal/tag"
	"recmem/internal/trace"
	"recmem/internal/transport"
	"recmem/internal/wire"
)

// AlgorithmKind selects the emulation algorithm a node runs.
type AlgorithmKind int

// Supported algorithms.
const (
	// CrashStop is the baseline crash-stop atomic emulation [2].
	CrashStop AlgorithmKind = iota + 1
	// Transient is the transient-atomic crash-recovery emulation (Fig. 5).
	Transient
	// Persistent is the persistent-atomic crash-recovery emulation (Fig. 4).
	Persistent
	// Naive is the log-everything crash-recovery adaptation (§I-C).
	Naive
	// RegularSW is the §VI extension: a single-writer/multi-reader regular
	// register in the crash-recovery model. Writes are a single round (2
	// communication steps) with 1 causal log; reads are a single round with
	// no logging at all. Only process RegularWriter may write.
	RegularSW
)

// RegularWriter is the designated writer process of the RegularSW register.
const RegularWriter int32 = 0

// String returns the algorithm name.
func (k AlgorithmKind) String() string {
	switch k {
	case CrashStop:
		return "crash-stop"
	case Transient:
		return "transient"
	case Persistent:
		return "persistent"
	case Naive:
		return "naive"
	case RegularSW:
		return "regular-sw"
	default:
		return fmt.Sprintf("AlgorithmKind(%d)", int(k))
	}
}

// Recovers reports whether the algorithm supports crash-recovery.
func (k AlgorithmKind) Recovers() bool { return k != CrashStop }

// Options tunes a node beyond the algorithm choice.
type Options struct {
	// RetransmitEvery is the resend period for unacknowledged rounds over
	// the fair-lossy channels (default 25 ms).
	RetransmitEvery time.Duration
	// HardenedTags makes the transient algorithm append the persisted
	// recovery counter to the timestamp as a final lexicographic tiebreak,
	// closing the tag-collision window of the literal Figure 5 (DESIGN.md
	// §7). Off by default: the default is the paper's algorithm.
	HardenedTags bool
	// UnsafeNoReadLog disables logging when handling a read's write-back
	// round. This deliberately re-introduces the Theorem 2 impossibility
	// (reads that leave no stable trace) and exists only to demonstrate the
	// lower bound; never enable it otherwise.
	UnsafeNoReadLog bool
}

// Deps wires a node to its substrate.
type Deps struct {
	// Endpoint attaches the node to the network.
	Endpoint transport.Endpoint
	// Storage is the node's stable store; it must survive the node's
	// crashes (the harness keeps it across Crash/Recover).
	Storage stable.Storage
	// IDs is the shared generator for operation and round identifiers; all
	// nodes of a cluster must share one so identifiers are globally unique.
	IDs *atomic.Uint64
	// LogMeter, if non-nil, receives causal-log accounting.
	LogMeter *causal.Meter
	// MsgMeter, if non-nil, receives per-operation round/message accounting.
	MsgMeter *metrics.OpMeter
	// Trace, if non-nil, receives protocol events (sends, deliveries,
	// stores, crashes, recoveries) for post-mortem analysis.
	Trace *trace.Ring
}

// Node errors.
var (
	// ErrCrashed is returned by an operation interrupted by the process's
	// crash; the invocation remains pending in the history.
	ErrCrashed = errors.New("core: process crashed during operation")
	// ErrDown is returned when an operation is invoked on a crashed or
	// recovering process.
	ErrDown = errors.New("core: process is down")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("core: node closed")
	// ErrCannotRecover is returned by Recover on a crash-stop node.
	ErrCannotRecover = errors.New("core: crash-stop process cannot recover")
	// ErrNotDown is returned by Recover on a process that is not crashed.
	ErrNotDown = errors.New("core: process is not crashed")
	// ErrNotWriter is returned by Write on a RegularSW process other than
	// the designated single writer.
	ErrNotWriter = errors.New("core: not the designated writer of the single-writer register")
)

// nodeState is the lifecycle state of a node.
type nodeState int

const (
	stateUp nodeState = iota + 1
	stateDown
	stateRecovering
	stateClosed
)

// regState is the volatile per-register state of Figure 4: the current value
// and its timestamp. Lost on crash, restored from stable storage at
// recovery.
type regState struct {
	tag tag.Tag
	val []byte
}

// Node is one process of the emulation: a message listener (the paper's
// listener thread) plus sequentially invoked client operations.
type Node struct {
	id     int32
	n      int
	quorum int
	kind   AlgorithmKind
	opts   Options

	ep  transport.Endpoint
	st  stable.Storage
	ids *atomic.Uint64
	lm  *causal.Meter
	mm  *metrics.OpMeter
	tr  *trace.Ring

	// opMu serializes client operations: the paper's processes are
	// sequential.
	opMu sync.Mutex

	mu    sync.Mutex
	state nodeState
	epoch uint64
	// inc is the incarnation epoch (docs/adr/0006): a monotonic per-boot
	// counter, persisted under recIncarnation and minted (+1) at the start
	// of every recovery procedure. Unlike epoch — the volatile crash
	// generation, which restarts at every process birth — inc survives in
	// stable storage, so two boots of one node never share a value.
	// Deliberately NOT wiped by Crash: it is harness bookkeeping that lets
	// remote observers infer crashes nobody injected, never protocol state.
	inc uint64
	// regs is the volatile register map. An entry's presence means "this
	// incarnation touched the register": entries appear on adoption and on
	// lazy materialization from the written/ record (regView), never as an
	// eager recovery-time rebuild — restarts are O(pending), not
	// O(namespace) (docs/adr/0009). Crash wipes the map.
	regs         map[string]regState
	rec          int32 // volatile copy of the persisted recovery counter
	lastRecovery RecoveryStats
	pending      map[uint64]chan wire.Envelope
	crashCh      chan struct{} // closed on crash; recreated on recovery

	// eng is the batching + pipelining engine behind SubmitWrite/SubmitRead;
	// ob group-commits its round broadcasts into batch frames.
	eng *engine
	ob  *outbox

	// wlocks serializes tag-minting write-protocol executions per register
	// (reg -> *sync.Mutex): two concurrent executions at one node would
	// both observe the same majority maximum and mint the same timestamp
	// for different values. The synchronous path (already serial under
	// opMu) and the engine's per-register dispatchers only ever contend
	// here when both APIs write the same register at once.
	wlocks sync.Map

	// roundPool recycles per-round working sets (ack channel, scratch
	// slices, retransmission timer); see roundState.
	roundPool sync.Pool

	listenerDone chan struct{}
}

// NewNode creates and starts a node. id must be in [0,n); quorum is the
// majority ⌈(n+1)/2⌉.
func NewNode(id int32, n int, kind AlgorithmKind, opts Options, deps Deps) (*Node, error) {
	if n <= 0 || id < 0 || int(id) >= n {
		return nil, fmt.Errorf("core: invalid id %d for n=%d", id, n)
	}
	if kind < CrashStop || kind > RegularSW {
		return nil, fmt.Errorf("core: unknown algorithm %d", int(kind))
	}
	if deps.Endpoint == nil || deps.IDs == nil {
		return nil, errors.New("core: endpoint and id generator are required")
	}
	if kind.Recovers() && deps.Storage == nil {
		return nil, fmt.Errorf("core: %v algorithm requires stable storage", kind)
	}
	if opts.RetransmitEvery <= 0 {
		opts.RetransmitEvery = 25 * time.Millisecond
	}
	nd := &Node{
		id:           id,
		n:            n,
		quorum:       (n + 2) / 2, // ⌈(n+1)/2⌉
		kind:         kind,
		opts:         opts,
		ep:           deps.Endpoint,
		st:           deps.Storage,
		ids:          deps.IDs,
		lm:           deps.LogMeter,
		mm:           deps.MsgMeter,
		tr:           deps.Trace,
		state:        stateUp,
		regs:         make(map[string]regState),
		pending:      make(map[uint64]chan wire.Envelope),
		crashCh:      make(chan struct{}),
		listenerDone: make(chan struct{}),
	}
	// Mint the boot's incarnation epoch: one past whatever the last boot
	// persisted (a cold start on empty storage gets 1). Recoveries mint
	// further epochs via mintIncarnation; this first one is persisted there
	// too, so an un-recovered boot may legitimately reuse 1 — it has never
	// exposed a different epoch.
	nd.inc = 1
	if deps.Storage != nil {
		prev, err := loadIncarnation(deps.Storage)
		if err != nil {
			return nil, err
		}
		nd.inc = prev + 1
	}
	nd.eng = newEngine(nd)
	nd.ob = &outbox{nd: nd}
	go nd.listen()
	return nd, nil
}

// ID returns the process id.
func (nd *Node) ID() int32 { return nd.id }

// N returns the number of processes in the emulation.
func (nd *Node) N() int { return nd.n }

// Quorum returns the majority size ⌈(n+1)/2⌉.
func (nd *Node) Quorum() int { return nd.quorum }

// Algorithm returns the algorithm the node runs.
func (nd *Node) Algorithm() AlgorithmKind { return nd.kind }

// Up reports whether the node currently accepts client operations.
func (nd *Node) Up() bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.state == stateUp
}

// RegisterState returns the node's view of a register, for tests and demos
// (the harness-side equivalent of peeking at the paper's v and sn
// variables). On a serving node the view materializes from stable storage on
// first touch, exactly like the protocol paths; ok reports whether the
// register holds any adopted state. A node that is down reports nothing —
// its volatile state is gone and it must not serve — while a closed node
// keeps reporting whatever volatile view it held at Close.
func (nd *Node) RegisterState(reg string) (tag.Tag, []byte, bool) {
	nd.mu.Lock()
	rs, ok := nd.regs[reg]
	serving := nd.servingLocked()
	nd.mu.Unlock()
	if !ok && serving {
		var err error
		if rs, _, err = nd.regView(reg); err != nil {
			return tag.Tag{}, nil, false
		}
	} else if !ok {
		return tag.Tag{}, nil, false
	}
	return rs.tag, rs.val, !rs.tag.IsZero() || rs.val != nil
}

// regView returns the node's current view of one register, materializing the
// map entry from the register's written/ record on first touch — the lazy
// counterpart of the eager recovery-time rebuild this map used to get
// (docs/adr/0009). The load happens off nd.mu (the engine's storage may
// block); a crash, recovery, or racing adoption while loading invalidates
// the loaded view, detected by the epoch re-check before insertion. The
// returned epoch is the one the view is valid under, for callers that
// persist state afterwards and must notice an intervening crash.
func (nd *Node) regView(reg string) (regState, uint64, error) {
	nd.mu.Lock()
	if !nd.servingLocked() {
		closed := nd.state == stateClosed
		nd.mu.Unlock()
		if closed {
			return regState{}, 0, ErrClosed
		}
		return regState{}, 0, ErrDown
	}
	epoch := nd.epoch
	if rs, ok := nd.regs[reg]; ok {
		nd.mu.Unlock()
		return rs, epoch, nil
	}
	if nd.st == nil || !nd.kind.Recovers() {
		// No written/ record can exist, so the zero state is definitive.
		// Not inserted: map presence stays "this incarnation adopted or
		// loaded it", and the crash-stop baseline keeps its paper shape.
		nd.mu.Unlock()
		return regState{}, epoch, nil
	}
	nd.mu.Unlock()

	var rs regState
	data, ok, err := nd.st.Retrieve(recWrittenPrefix + reg)
	if err != nil {
		return regState{}, 0, err
	}
	if ok {
		t, v, err := decodeTagged(data)
		if err != nil {
			return regState{}, 0, err
		}
		rs = regState{tag: t, val: v}
	}

	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.epoch != epoch || !nd.servingLocked() {
		// Crashed (or closed) while loading: the record read belongs to a
		// dead incarnation's serving window — discard it.
		if nd.state == stateClosed {
			return regState{}, 0, ErrClosed
		}
		return regState{}, 0, ErrCrashed
	}
	if cur, ok := nd.regs[reg]; ok {
		// A concurrent adoption (or another materializer) beat the load; its
		// view is at least as fresh — adopters insert before they store, so
		// anything this load missed is already in the map.
		return cur, epoch, nil
	}
	nd.regs[reg] = rs
	return rs, epoch, nil
}

// IncarnationEpoch returns the node's current incarnation epoch: a counter
// that is 1 on a node's first-ever boot and strictly increases across every
// recovery — including recoveries of a fresh process restarted over old
// stable storage. See docs/adr/0006.
func (nd *Node) IncarnationEpoch() uint64 {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.inc
}

// RecoveryCount returns the volatile copy of the persisted recovery counter
// (transient algorithm).
func (nd *Node) RecoveryCount() int32 {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.rec
}

// RecoveryStats summarizes the stable-storage footprint of the last
// completed recovery procedure — what a restart actually had to read now
// that the register map materializes lazily (docs/adr/0009).
type RecoveryStats struct {
	// PendingWrites is the number of writing/ pre-log records the recovery
	// scan found and finished (persistent/naive; always 0 for the others).
	PendingWrites int
	// RecoveryCount is the persisted recovery counter after its recovery
	// bump (transient/regular-sw; 0 for the others).
	RecoveryCount int32
}

// LastRecovery returns the stats of the node's most recent recovery
// procedure (the zero value before any recovery completed).
func (nd *Node) LastRecovery() RecoveryStats {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.lastRecovery
}

// Crash makes the process fail: volatile state is wiped, in-flight
// operations are interrupted, and the node stops participating until
// Recover. onEvent, if non-nil, is invoked inside the state transition so
// that the harness can record the crash event totally ordered with respect
// to the node's operation events. Returns false if the node was already
// down or closed.
func (nd *Node) Crash(onEvent func()) bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.state != stateUp && nd.state != stateRecovering {
		return false
	}
	nd.state = stateDown
	nd.epoch++
	close(nd.crashCh)
	nd.crashCh = make(chan struct{})
	nd.regs = make(map[string]regState)
	nd.rec = 0
	nd.traceEvent("crash", "volatile state wiped")
	if onEvent != nil {
		onEvent()
	}
	return true
}

// Recover brings a crashed process back: stable state is reloaded and the
// algorithm's recovery procedure runs (Fig. 4: finish the interrupted write
// with a majority; Fig. 5: increment and persist the recovery counter).
// onEvent is invoked inside the transition out of the crashed state, before
// the recovery procedure; onAbort is invoked (also inside the state lock)
// if the procedure fails and the process falls back to the crashed state —
// the harness records a crash event there so histories stay well-formed.
// Recover blocks until the procedure completes, which requires a majority
// of processes to be reachable — the model's "eventually a majority
// permanently up" assumption; it can be retried after a failure. It returns
// ErrCrashed if the process crashes again mid-recovery.
func (nd *Node) Recover(ctx context.Context, onEvent, onAbort func()) error {
	if !nd.kind.Recovers() {
		return ErrCannotRecover
	}
	nd.mu.Lock()
	if nd.state == stateClosed {
		nd.mu.Unlock()
		return ErrClosed
	}
	if nd.state != stateDown {
		nd.mu.Unlock()
		return ErrNotDown
	}
	// Restore the eager slice of volatile state — just the recovery counter
	// — while still unreachable (handlers drop messages until the state
	// flips to recovering). The register map starts empty and materializes
	// lazily per register (regView), so this step is O(1) in the namespace.
	rec, err := nd.restoreCounter()
	if err != nil {
		nd.mu.Unlock()
		return err
	}
	nd.regs = make(map[string]regState)
	nd.rec = rec
	nd.state = stateRecovering
	epoch := nd.epoch
	nd.traceEvent("recover", fmt.Sprintf("rec=%d restored, register map lazy", rec))
	if onEvent != nil {
		onEvent()
	}
	nd.mu.Unlock()

	if err := nd.runRecoveryProcedure(ctx); err != nil {
		// The procedure could not complete (no reachable majority, storage
		// fault, cancellation): fall back to the crashed state so Recover
		// can be retried.
		nd.mu.Lock()
		if nd.state == stateRecovering && nd.epoch == epoch {
			nd.state = stateDown
			nd.epoch++
			close(nd.crashCh)
			nd.crashCh = make(chan struct{})
			nd.regs = make(map[string]regState)
			nd.rec = 0
			nd.traceEvent("recover-abort", err.Error())
			if onAbort != nil {
				onAbort()
			}
		}
		nd.mu.Unlock()
		return err
	}

	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.state != stateRecovering || nd.epoch != epoch {
		return ErrCrashed
	}
	nd.state = stateUp
	return nil
}

// Close permanently shuts the node down. It does not touch stable storage.
func (nd *Node) Close() {
	nd.mu.Lock()
	if nd.state == stateClosed {
		nd.mu.Unlock()
		return
	}
	prev := nd.state
	nd.state = stateClosed
	nd.epoch++
	if prev == stateUp || prev == stateRecovering {
		close(nd.crashCh)
		nd.crashCh = make(chan struct{})
	}
	nd.mu.Unlock()
}

// newID returns a fresh cluster-unique identifier.
func (nd *Node) newID() uint64 { return nd.ids.Add(1) }

// traceEvent records an event to the trace ring, if one is attached.
func (nd *Node) traceEvent(kind, detail string) {
	if nd.tr != nil {
		nd.tr.Add(nd.id, kind, detail)
	}
}

// recordLog reports one store to the causal meter.
func (nd *Node) recordLog(op uint64, depth, bytes int) {
	if nd.lm != nil {
		nd.lm.RecordLog(op, depth, bytes)
	}
}

// recordRound reports one completed round to the message meter.
func (nd *Node) recordRound(op uint64, sends, retransmissions int) {
	if nd.mm != nil {
		nd.mm.RecordRound(op, sends, retransmissions)
	}
}
