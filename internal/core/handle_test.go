package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/netsim"
	"recmem/internal/stable"
)

// handleCluster builds n nodes over an instantaneous simulated network.
func handleCluster(t *testing.T, n int, kind AlgorithmKind) []*Node {
	t.Helper()
	nw, err := netsim.New(n, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)
	ids := &atomic.Uint64{}
	nodes := make([]*Node, n)
	for i := range nodes {
		var disk stable.Storage
		if kind.Recovers() {
			disk = stable.NewMemDisk(stable.Profile{})
		}
		nd, err := NewNode(int32(i), n, kind,
			Options{RetransmitEvery: 10 * time.Millisecond},
			Deps{Endpoint: nw.Endpoint(int32(i)), Storage: disk, IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		nodes[i] = nd
	}
	return nodes
}

// TestRegisterRefOps checks handle-based operations behave like the
// Node-level API and interoperate with it on the same register.
func TestRegisterRefOps(t *testing.T) {
	nodes := handleCluster(t, 3, Persistent)
	ctx := context.Background()

	ref := nodes[0].RegisterRef("x")
	if ref.Name() != "x" || ref.Node() != nodes[0] {
		t.Fatal("handle identity")
	}
	if _, _, _, err := ref.Write(ctx, []byte("v1"), OpObserver{}); err != nil {
		t.Fatal(err)
	}
	// Read through the plain API at another node: same register.
	got, _, err := nodes[1].Read(ctx, "x", OpObserver{})
	if err != nil || string(got) != "v1" {
		t.Fatalf("node read = %q, %v", got, err)
	}
	// Write through the plain API, read through the handle.
	if _, err := nodes[2].Write(ctx, "x", []byte("v2"), OpObserver{}); err != nil {
		t.Fatal(err)
	}
	got, _, _, _, err = ref.Read(ctx, ReadDefault, OpObserver{})
	if err != nil || string(got) != "v2" {
		t.Fatalf("handle read = %q, %v", got, err)
	}

	// Submitted operations through the handle coalesce and complete.
	futs := make([]*Future, 0, 10)
	for i := 0; i < 10; i++ {
		f, err := ref.SubmitWrite([]byte{byte('a' + i)}, OpObserver{})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	rf, err := ref.SubmitRead(ReadDefault, OpObserver{})
	if err != nil {
		t.Fatal(err)
	}
	val, err := rf.Wait(ctx)
	if err != nil || string(val) != "j" {
		t.Fatalf("submitted read = %q, %v", val, err)
	}

	// The handle stays valid across crash and recovery.
	nodes[0].Crash(nil)
	if _, _, _, err := ref.Write(ctx, []byte("nope"), OpObserver{}); !errors.Is(err, ErrDown) {
		t.Fatalf("handle write while down: %v", err)
	}
	if err := nodes[0].Recover(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ref.Write(ctx, []byte("v3"), OpObserver{}); err != nil {
		t.Fatal(err)
	}
	got, _, _, _, err = ref.Read(ctx, ReadDefault, OpObserver{})
	if err != nil || string(got) != "v3" {
		t.Fatalf("handle read after recovery = %q, %v", got, err)
	}
}

// TestSafeReadSW exercises the writer-served safe read at the protocol
// level: correct values, message economy (2 messages), and rejection under
// other algorithms.
func TestSafeReadSW(t *testing.T) {
	nodes := handleCluster(t, 5, RegularSW)
	ctx := context.Background()

	if _, err := nodes[0].Write(ctx, "x", []byte("s1"), OpObserver{}); err != nil {
		t.Fatal(err)
	}
	ref := nodes[3].RegisterRef("x")
	val, _, _, _, err := ref.Read(ctx, ReadSafe, OpObserver{})
	if err != nil || string(val) != "s1" {
		t.Fatalf("safe read = %q, %v", val, err)
	}
	// ReadRegular is the native read under RegularSW.
	val, _, _, _, err = ref.Read(ctx, ReadRegular, OpObserver{})
	if err != nil || string(val) != "s1" {
		t.Fatalf("regular read = %q, %v", val, err)
	}
	// Safe read at the writer itself: pure loopback.
	wref := nodes[0].RegisterRef("x")
	val, _, _, _, err = wref.Read(ctx, ReadSafe, OpObserver{})
	if err != nil || string(val) != "s1" {
		t.Fatalf("safe self-read = %q, %v", val, err)
	}
	// Submitted safe reads bypass the engine but complete normally.
	f, err := ref.SubmitRead(ReadSafe, OpObserver{})
	if err != nil {
		t.Fatal(err)
	}
	if val, err := f.Wait(ctx); err != nil || string(val) != "s1" {
		t.Fatalf("submitted safe read = %q, %v", val, err)
	}

	// Mode selection is rejected under every non-RegularSW algorithm.
	atomicNodes := handleCluster(t, 3, Persistent)
	aref := atomicNodes[0].RegisterRef("x")
	if _, _, _, _, err := aref.Read(ctx, ReadSafe, OpObserver{}); !errors.Is(err, ErrBadConsistency) {
		t.Fatalf("safe read under persistent: %v", err)
	}
	if _, err := aref.SubmitRead(ReadRegular, OpObserver{}); !errors.Is(err, ErrBadConsistency) {
		t.Fatalf("regular submit-read under persistent: %v", err)
	}
}

// TestSafeReadBlocksWithoutWriter pins the availability trade-off: the safe
// read waits for the writer — and completes the moment it recovers.
func TestSafeReadBlocksWithoutWriter(t *testing.T) {
	nodes := handleCluster(t, 3, RegularSW)
	ctx := context.Background()
	if _, err := nodes[0].Write(ctx, "x", []byte("v"), OpObserver{}); err != nil {
		t.Fatal(err)
	}
	nodes[0].Crash(nil)

	ref := nodes[2].RegisterRef("x")
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, _, _, _, err := ref.Read(short, ReadSafe, OpObserver{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("safe read without writer: %v", err)
	}

	// Start a safe read, then recover the writer: the read completes.
	done := make(chan error, 1)
	go func() {
		_, _, _, _, err := nodes[1].RegisterRef("x").Read(ctx, ReadSafe, OpObserver{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := nodes[0].Recover(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("safe read after writer recovery: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("safe read never completed after writer recovery")
	}
}
