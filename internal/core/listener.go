package core

import (
	"recmem/internal/causal"
	"recmem/internal/stable"
	"recmem/internal/wire"
)

// listenerGatherLimit bounds how many already-delivered envelopes the
// listener folds into one handling group. Gathering is non-blocking — it
// only picks up what the transport has buffered, typically the contents of
// one batch frame — so it adds no latency, and the bound keeps a single
// group's StoreBatch from growing without limit under sustained load.
const listenerGatherLimit = 128

// listen is the node's message listener — the paper's dedicated listener
// thread ("every workstation … one thread that listens for and executes read
// and write commands, and one that responds to broadcasted messages").
// Handlers run sequentially; the node's own client operations run on the
// callers' goroutines and rendezvous with the listener through the pending
// acknowledgement channels.
//
// The listener is group-commit aware: everything already delivered (the
// envelopes of a batch frame land back to back) is gathered and the write
// adoptions of the whole group are persisted through one StoreBatch — one
// coalesced engine batch arriving as one frame costs one disk flush instead
// of one per register (see handleWriteGroup).
func (nd *Node) listen() {
	defer close(nd.listenerDone)
	for env := range nd.ep.Recv() {
		group := nd.gather(env)
		nd.handleGroup(group)
	}
}

// gather returns first plus every envelope the transport has already
// delivered, up to the group limit. It never blocks.
func (nd *Node) gather(first wire.Envelope) []wire.Envelope {
	group := []wire.Envelope{first}
	for len(group) < listenerGatherLimit {
		select {
		case env, ok := <-nd.ep.Recv():
			if !ok {
				return group
			}
			group = append(group, env)
		default:
			return group
		}
	}
	return group
}

// handleGroup dispatches one gathered delivery group: acknowledgements are
// routed as they appear, query kinds are handled individually (they never
// log outside the naive ablation), and the write kinds are folded into one
// group-committed adoption.
func (nd *Node) handleGroup(group []wire.Envelope) {
	var writes []wire.Envelope
	for _, env := range group {
		if env.Kind.IsAck() {
			nd.routeAck(env)
			continue
		}
		if nd.tr != nil {
			nd.traceEvent("recv", env.String())
		}
		switch env.Kind {
		case wire.KindSNQuery:
			nd.handleSNQuery(env)
		case wire.KindRead:
			nd.handleRead(env)
		case wire.KindWrite, wire.KindWriteBack:
			writes = append(writes, env)
		}
	}
	if len(writes) > 0 {
		nd.handleWriteGroup(writes)
	}
}

// routeAck delivers an acknowledgement to the round waiting for it, if any.
// Stale acks (finished rounds, crashed operations) are dropped. The send
// happens under nd.mu on purpose: a round deregisters its RPC under the same
// lock before recycling its (pooled) channel, so holding the lock across the
// non-blocking send is what makes "deregistered" mean "no sender left".
func (nd *Node) routeAck(env wire.Envelope) {
	nd.mu.Lock()
	if ch := nd.pending[env.RPC]; ch != nil {
		select {
		case ch <- env:
		default: // duplicate flood; fair-lossy channels may drop
		}
	}
	nd.mu.Unlock()
}

// servingLocked reports whether the process participates in the protocol
// (alive, or running its recovery procedure). Callers hold nd.mu.
func (nd *Node) servingLocked() bool {
	return nd.state == stateUp || nd.state == stateRecovering
}

// send stamps the sender id and transmits.
func (nd *Node) send(env wire.Envelope) {
	env.From = nd.id
	if nd.tr != nil {
		nd.traceEvent("send", env.String())
	}
	nd.ep.Send(env)
}

// handleSNQuery implements Fig. 4 lines 18–20: reply with the current
// sequence number (we return the full tag; the writer uses its Seq). The
// naive algorithm additionally logs the step. The register view materializes
// lazily — the first query after a restart loads the written/ record.
func (nd *Node) handleSNQuery(env wire.Envelope) {
	cur, epoch, err := nd.regView(env.Reg)
	if err != nil {
		return // down, crashed mid-load, or the record is unreadable
	}

	depth := int(env.Depth)
	if nd.kind == Naive {
		payload := encodeTagged(cur.tag, nil)
		if err := nd.st.Store(recSNLogPrefix+env.Reg, payload); err != nil {
			return
		}
		depth = causal.After(depth)
		nd.recordLog(env.Op, depth, len(payload))
		if !nd.stillServing(epoch) {
			return
		}
	}
	nd.send(wire.Envelope{
		Kind: wire.KindSNAck, To: env.From, Reg: env.Reg,
		RPC: env.RPC, Op: env.Op, Depth: uint8(depth), Tag: cur.tag,
	})
}

// handleRead implements Fig. 4 lines 28–30: reply with the current tagged
// value, materialized from stable storage if this incarnation has not
// touched the register yet (absent record = zero state, the paper's ⊥).
func (nd *Node) handleRead(env wire.Envelope) {
	cur, _, err := nd.regView(env.Reg)
	if err != nil {
		return
	}
	nd.send(wire.Envelope{
		Kind: wire.KindReadAck, To: env.From, Reg: env.Reg,
		RPC: env.RPC, Op: env.Op, Depth: env.Depth, Tag: cur.tag, Value: cur.val,
	})
}

// handleWrite implements Fig. 4 lines 21–27 for both the write's second
// round (W) and the read's write-back round (WB): if the received timestamp
// is higher than the local one, log the new value and adopt it, then
// acknowledge. Logging happens before the volatile update and before the
// acknowledgement — a crash between them behaves like a crash just after
// the log, which the algorithm tolerates.
func (nd *Node) handleWrite(env wire.Envelope) {
	cur, epoch, err := nd.regView(env.Reg)
	if err != nil {
		return
	}

	adopt := cur.tag.Less(env.Tag)
	depth := int(env.Depth)
	if logPayload, ok := nd.adoptionLog(env, cur, adopt); ok {
		if err := nd.st.Store(recWrittenPrefix+env.Reg, logPayload); err != nil {
			return // cannot acknowledge what is not durable
		}
		depth = causal.After(int(env.Depth))
		nd.recordLog(env.Op, depth, len(logPayload))
		if nd.tr != nil {
			nd.traceEvent("store", recWrittenPrefix+env.Reg+" tag="+env.Tag.String())
		}
	}

	nd.mu.Lock()
	if nd.epoch != epoch || !nd.servingLocked() {
		nd.mu.Unlock()
		return // crashed while logging; no acknowledgement
	}
	if adopt && nd.regs[env.Reg].tag.Less(env.Tag) {
		nd.regs[env.Reg] = regState{tag: env.Tag, val: env.Value}
	}
	nd.mu.Unlock()

	nd.send(wire.Envelope{
		Kind: wire.KindWriteAck, To: env.From, Reg: env.Reg,
		RPC: env.RPC, Op: env.Op, Depth: uint8(depth),
	})
}

// handleWriteGroup handles the write/write-back envelopes of one delivery
// group with a single StoreBatch. It is semantically a reordering of
// individual deliveries — legal over fair-lossy channels, which reorder
// freely: per register, the envelope carrying the highest timestamp is
// processed first (it is the only possible adoption), after which the rest
// of the register's envelopes find the local timestamp at least as high and
// acknowledge without logging. All winning adoptions then persist as one
// batch — one coalesced engine batch delivered as one frame, one group
// commit — and nothing is acknowledged unless the whole batch is durable.
//
// The naive ablation bypasses the group path: its defining property is a
// store per step, which folding would silently optimize away.
func (nd *Node) handleWriteGroup(envs []wire.Envelope) {
	if nd.kind == Naive || len(envs) == 1 {
		for _, env := range envs {
			nd.handleWrite(env)
		}
		return
	}

	// Materialize the view of every distinct register in the group. Each
	// regView reports the epoch it is valid under; a crash between two loads
	// shows up as an epoch mismatch, and the whole group is dropped — the
	// rounds retransmit, exactly as for a crash detected later.
	var epoch uint64
	cur := make(map[string]regState, len(envs))
	for _, env := range envs {
		if _, ok := cur[env.Reg]; ok {
			continue
		}
		rs, e, err := nd.regView(env.Reg)
		if err != nil || (len(cur) > 0 && e != epoch) {
			return
		}
		epoch = e
		cur[env.Reg] = rs
	}

	// The per-register winner: the highest delivered timestamp.
	best := make(map[string]wire.Envelope, len(cur))
	for _, env := range envs {
		if b, ok := best[env.Reg]; !ok || b.Tag.Less(env.Tag) {
			best[env.Reg] = env
		}
	}
	// Split the winners into those that adopt (volatile update) and those
	// whose adoption additionally requires a log; collect the logs into one
	// batch. The two differ for the no-logging paths (crash-stop, the
	// UnsafeNoReadLog ablation), which adopt without storing.
	adopters := make(map[string]wire.Envelope)
	logged := make(map[string]wire.Envelope)
	var recs []stable.Record
	for reg, env := range best {
		adopt := cur[reg].tag.Less(env.Tag)
		if adopt {
			adopters[reg] = env
		}
		if payload, ok := nd.adoptionLog(env, cur[reg], adopt); ok {
			recs = append(recs, stable.Record{Name: recWrittenPrefix + reg, Data: payload})
			logged[reg] = env
		}
	}
	if len(recs) > 0 {
		if err := nd.st.StoreBatch(recs); err != nil {
			// Cannot acknowledge what is not durable; the rounds retransmit
			// and the whole group is retried.
			return
		}
		for _, rec := range recs {
			reg := rec.Name[len(recWrittenPrefix):]
			env := logged[reg]
			nd.recordLog(env.Op, causal.After(int(env.Depth)), len(rec.Data))
			if nd.tr != nil {
				nd.traceEvent("store", rec.Name+" tag="+env.Tag.String())
			}
		}
	}

	// Apply the volatile adoptions, then acknowledge every envelope of the
	// group: the logged winners with their deepened causal depth, the rest
	// exactly as if they had been delivered after the winner.
	nd.mu.Lock()
	if nd.epoch != epoch || !nd.servingLocked() {
		nd.mu.Unlock()
		return // crashed while logging; no acknowledgements
	}
	for reg, env := range adopters {
		if nd.regs[reg].tag.Less(env.Tag) {
			nd.regs[reg] = regState{tag: env.Tag, val: env.Value}
		}
	}
	nd.mu.Unlock()

	for _, env := range envs {
		depth := int(env.Depth)
		if win, ok := logged[env.Reg]; ok && win.RPC == env.RPC && win.From == env.From {
			depth = causal.After(depth)
		}
		nd.send(wire.Envelope{
			Kind: wire.KindWriteAck, To: env.From, Reg: env.Reg,
			RPC: env.RPC, Op: env.Op, Depth: uint8(depth),
		})
	}
}

// adoptionLog decides whether handling env requires a store, and with what
// payload. The log-optimal algorithms log exactly when they adopt a higher
// timestamp (hence quiescent reads log nowhere); the crash-stop baseline
// never logs; the naive algorithm logs the resulting state on every W; the
// UnsafeNoReadLog ablation suppresses the log for read write-backs to
// demonstrate the Theorem 2 lower bound.
func (nd *Node) adoptionLog(env wire.Envelope, cur regState, adopt bool) ([]byte, bool) {
	if nd.kind == CrashStop {
		return nil, false
	}
	if env.Kind == wire.KindWriteBack && nd.opts.UnsafeNoReadLog {
		return nil, false
	}
	if adopt {
		return encodeTagged(env.Tag, env.Value), true
	}
	if nd.kind == Naive {
		// Log-each-step straw man: persist the (unchanged) state anyway.
		return encodeTagged(cur.tag, cur.val), true
	}
	return nil, false
}

// stillServing re-checks liveness after a blocking store.
func (nd *Node) stillServing(epoch uint64) bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.epoch == epoch && nd.servingLocked()
}
