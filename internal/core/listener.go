package core

import (
	"recmem/internal/causal"
	"recmem/internal/wire"
)

// listen is the node's message listener — the paper's dedicated listener
// thread ("every workstation … one thread that listens for and executes read
// and write commands, and one that responds to broadcasted messages").
// Handlers run sequentially; the node's own client operations run on the
// callers' goroutines and rendezvous with the listener through the pending
// acknowledgement channels.
func (nd *Node) listen() {
	defer close(nd.listenerDone)
	for env := range nd.ep.Recv() {
		nd.handle(env)
	}
}

func (nd *Node) handle(env wire.Envelope) {
	if env.Kind.IsAck() {
		nd.routeAck(env)
		return
	}
	if nd.tr != nil {
		nd.traceEvent("recv", env.String())
	}
	switch env.Kind {
	case wire.KindSNQuery:
		nd.handleSNQuery(env)
	case wire.KindRead:
		nd.handleRead(env)
	case wire.KindWrite, wire.KindWriteBack:
		nd.handleWrite(env)
	}
}

// routeAck delivers an acknowledgement to the round waiting for it, if any.
// Stale acks (finished rounds, crashed operations) are dropped.
func (nd *Node) routeAck(env wire.Envelope) {
	nd.mu.Lock()
	ch := nd.pending[env.RPC]
	nd.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- env:
	default: // duplicate flood; fair-lossy channels may drop
	}
}

// servingLocked reports whether the process participates in the protocol
// (alive, or running its recovery procedure). Callers hold nd.mu.
func (nd *Node) servingLocked() bool {
	return nd.state == stateUp || nd.state == stateRecovering
}

// send stamps the sender id and transmits.
func (nd *Node) send(env wire.Envelope) {
	env.From = nd.id
	if nd.tr != nil {
		nd.traceEvent("send", env.String())
	}
	nd.ep.Send(env)
}

// handleSNQuery implements Fig. 4 lines 18–20: reply with the current
// sequence number (we return the full tag; the writer uses its Seq). The
// naive algorithm additionally logs the step.
func (nd *Node) handleSNQuery(env wire.Envelope) {
	nd.mu.Lock()
	if !nd.servingLocked() {
		nd.mu.Unlock()
		return
	}
	cur := nd.regs[env.Reg]
	epoch := nd.epoch
	nd.mu.Unlock()

	depth := int(env.Depth)
	if nd.kind == Naive {
		payload := encodeTagged(cur.tag, nil)
		if err := nd.st.Store(recSNLogPrefix+env.Reg, payload); err != nil {
			return
		}
		depth = causal.After(depth)
		nd.recordLog(env.Op, depth, len(payload))
		if !nd.stillServing(epoch) {
			return
		}
	}
	nd.send(wire.Envelope{
		Kind: wire.KindSNAck, To: env.From, Reg: env.Reg,
		RPC: env.RPC, Op: env.Op, Depth: uint8(depth), Tag: cur.tag,
	})
}

// handleRead implements Fig. 4 lines 28–30: reply with the current tagged
// value.
func (nd *Node) handleRead(env wire.Envelope) {
	nd.mu.Lock()
	if !nd.servingLocked() {
		nd.mu.Unlock()
		return
	}
	cur := nd.regs[env.Reg]
	nd.mu.Unlock()
	nd.send(wire.Envelope{
		Kind: wire.KindReadAck, To: env.From, Reg: env.Reg,
		RPC: env.RPC, Op: env.Op, Depth: env.Depth, Tag: cur.tag, Value: cur.val,
	})
}

// handleWrite implements Fig. 4 lines 21–27 for both the write's second
// round (W) and the read's write-back round (WB): if the received timestamp
// is higher than the local one, log the new value and adopt it, then
// acknowledge. Logging happens before the volatile update and before the
// acknowledgement — a crash between them behaves like a crash just after
// the log, which the algorithm tolerates.
func (nd *Node) handleWrite(env wire.Envelope) {
	nd.mu.Lock()
	if !nd.servingLocked() {
		nd.mu.Unlock()
		return
	}
	cur := nd.regs[env.Reg]
	epoch := nd.epoch
	nd.mu.Unlock()

	adopt := cur.tag.Less(env.Tag)
	depth := int(env.Depth)
	if logPayload, ok := nd.adoptionLog(env, cur, adopt); ok {
		if err := nd.st.Store(recWrittenPrefix+env.Reg, logPayload); err != nil {
			return // cannot acknowledge what is not durable
		}
		depth = causal.After(int(env.Depth))
		nd.recordLog(env.Op, depth, len(logPayload))
		if nd.tr != nil {
			nd.traceEvent("store", recWrittenPrefix+env.Reg+" tag="+env.Tag.String())
		}
	}

	nd.mu.Lock()
	if nd.epoch != epoch || !nd.servingLocked() {
		nd.mu.Unlock()
		return // crashed while logging; no acknowledgement
	}
	if adopt && nd.regs[env.Reg].tag.Less(env.Tag) {
		nd.regs[env.Reg] = regState{tag: env.Tag, val: env.Value}
	}
	nd.mu.Unlock()

	nd.send(wire.Envelope{
		Kind: wire.KindWriteAck, To: env.From, Reg: env.Reg,
		RPC: env.RPC, Op: env.Op, Depth: uint8(depth),
	})
}

// adoptionLog decides whether handling env requires a store, and with what
// payload. The log-optimal algorithms log exactly when they adopt a higher
// timestamp (hence quiescent reads log nowhere); the crash-stop baseline
// never logs; the naive algorithm logs the resulting state on every W; the
// UnsafeNoReadLog ablation suppresses the log for read write-backs to
// demonstrate the Theorem 2 lower bound.
func (nd *Node) adoptionLog(env wire.Envelope, cur regState, adopt bool) ([]byte, bool) {
	if nd.kind == CrashStop {
		return nil, false
	}
	if env.Kind == wire.KindWriteBack && nd.opts.UnsafeNoReadLog {
		return nil, false
	}
	if adopt {
		return encodeTagged(env.Tag, env.Value), true
	}
	if nd.kind == Naive {
		// Log-each-step straw man: persist the (unchanged) state anyway.
		return encodeTagged(cur.tag, cur.val), true
	}
	return nil, false
}

// stillServing re-checks liveness after a blocking store.
func (nd *Node) stillServing(epoch uint64) bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.epoch == epoch && nd.servingLocked()
}
