package core

import (
	"context"
	"hash/maphash"
	"sync"
	"time"

	"recmem/internal/tag"
	"recmem/internal/transport"
	"recmem/internal/wire"
)

// This file implements the node's batching + pipelining engine (docs/adr/
// 0001): an asynchronous submission API (SubmitWrite/SubmitRead returning
// futures) backed by a per-register sharded dispatcher.
//
// Two amortizations stack on top of the paper's algorithms, neither of which
// changes a single protocol rule:
//
//   - Operation coalescing. All writes to one register that are pending at
//     the same process when a dispatch begins are folded into ONE execution
//     of the two-round write protocol: one sequence-number query, one minted
//     tag, one propagation of the last submitted value, and therefore one
//     causal log chain for the whole batch. This is sound because the
//     coalesced writes are pairwise concurrent (all submitted before the
//     round starts, all completed after it commits), so linearizing them
//     back to back at the commit point — earlier submissions immediately
//     overwritten by later ones — is a valid ordering; the acknowledgement
//     every submitter receives is backed by the batch's value being durable
//     at a majority under a tag at least as high as any the folded writes
//     would have minted. Pending reads coalesce the same way into one
//     execution of the read protocol (query majority, write back), all
//     returning its value.
//   - Register pipelining. Each register's dispatcher runs independently, so
//     rounds for different registers overlap in flight instead of
//     serializing on the node's operation mutex; the node-level outbox
//     group-commits the broadcasts of concurrently running rounds into
//     per-destination batch frames (wire.EncodeBatch), so one network
//     round-trip carries the coalesced rounds of many registers.
//
// The synchronous Write/Read path still serializes on opMu, modeling the
// paper's sequential process. Mixing the synchronous and the asynchronous
// API on the same register of the same node is safe for atomicity — tag-
// minting write executions for one register serialize on the node's
// per-register write lock (see writeProtocol), so racing paths can never
// mint the same timestamp for different values — but it forfeits the
// per-process program order the synchronous path guarantees.

// Future is the pending result of a submitted operation. It completes when
// the operation's quorum rounds commit (or fail); an operation interrupted
// by a crash completes with ErrCrashed and its invocation stays pending in
// the history, exactly like its synchronous counterpart.
type Future struct {
	op   uint64
	done chan struct{}
	val  []byte
	wit  tag.Tag
	inc  uint64
	err  error
}

// Op returns the operation id, usable for accounting as soon as the future
// is created.
func (f *Future) Op() uint64 { return f.op }

// Done returns a channel closed when the operation completes.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the operation completes or ctx is done. For reads the
// returned value is the register's value (nil is the initial value ⊥); for
// writes it is nil. Cancelling ctx abandons the wait, not the operation.
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TagWitness returns the operation's tag witness once the future is done:
// the tag the protocol adopted for the written or returned value. ok is
// false before completion and for operations without a witness (a failed
// operation, or a coalesced write whose value was superseded within its
// batch — only the batch's surviving value carries the minted tag, because
// a tag names exactly one committed value).
func (f *Future) TagWitness() (wit tag.Tag, ok bool) {
	select {
	case <-f.done:
		return f.wit, !f.wit.IsZero()
	default:
		return tag.Tag{}, false
	}
}

// Incarnation returns the node incarnation epoch the operation completed
// under (docs/adr/0006), once the future is done. ok is false before
// completion and for failed operations, which never witness an epoch. Unlike
// the tag witness, every successful operation carries one — including a
// coalesced write whose value was superseded within its batch: its
// acknowledgement still happened in a specific incarnation.
func (f *Future) Incarnation() (epoch uint64, ok bool) {
	select {
	case <-f.done:
		return f.inc, f.err == nil && f.inc != 0
	default:
		return 0, false
	}
}

// complete resolves the future. Called exactly once.
func (f *Future) complete(val []byte, wit tag.Tag, inc uint64, err error) {
	f.val = val
	f.wit = wit
	f.inc = inc
	f.err = err
	close(f.done)
}

// batchSub is one submitted operation waiting in a register's queue.
type batchSub struct {
	read  bool
	val   []byte
	obs   OpObserver
	op    uint64
	epoch uint64
	fut   *Future
}

// engineShards is the number of locks the register-queue map is split
// across; submissions for different registers rarely contend.
const engineShards = 16

// engine is the per-node batching dispatcher.
type engine struct {
	nd     *Node
	seed   maphash.Seed
	shards [engineShards]engineShard
}

type engineShard struct {
	mu   sync.Mutex
	regs map[string]*regQueue
}

// regQueue is the pending-submission queue of one register. running is true
// while a dispatcher goroutine owns the register.
type regQueue struct {
	pending []*batchSub
	running bool
}

func newEngine(nd *Node) *engine {
	eng := &engine{nd: nd, seed: maphash.MakeSeed()}
	for i := range eng.shards {
		eng.shards[i].regs = make(map[string]*regQueue)
	}
	return eng
}

func (eng *engine) shardFor(reg string) *engineShard {
	return &eng.shards[maphash.String(eng.seed, reg)%engineShards]
}

// queueFor resolves (creating on first use) the register's queue and owning
// shard. Queues are never removed from the map, so the returned pointers
// stay valid for the node's lifetime — RegisterRef caches them to take the
// maphash + map lookup off the per-operation hot path.
func (eng *engine) queueFor(reg string) (*engineShard, *regQueue) {
	sh := eng.shardFor(reg)
	sh.mu.Lock()
	q := sh.regs[reg]
	if q == nil {
		q = &regQueue{}
		sh.regs[reg] = q
	}
	sh.mu.Unlock()
	return sh, q
}

// enqueue appends a submission to the register's queue and starts a
// dispatcher for the register if none is running.
func (eng *engine) enqueue(reg string, sub *batchSub) {
	sh, q := eng.queueFor(reg)
	eng.enqueueResolved(sh, q, reg, sub)
}

// enqueueResolved is enqueue with the shard and queue already resolved (the
// cached-handle fast path).
func (eng *engine) enqueueResolved(sh *engineShard, q *regQueue, reg string, sub *batchSub) {
	sh.mu.Lock()
	q.pending = append(q.pending, sub)
	if !q.running {
		q.running = true
		go eng.run(reg, sh, q)
	}
	sh.mu.Unlock()
}

// run dispatches batches for one register until its queue drains: each
// iteration takes everything currently pending and flushes it as one batch,
// so submissions arriving during a flush form the next batch — group commit.
func (eng *engine) run(reg string, sh *engineShard, q *regQueue) {
	for {
		sh.mu.Lock()
		batch := q.pending
		q.pending = nil
		if len(batch) == 0 {
			q.running = false
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
		eng.flush(reg, batch)
	}
}

// flush executes one batch: all writes coalesce into one write-protocol
// execution propagating the last submitted value, then all reads coalesce
// into one read-protocol execution. Reads ordered after the batch's writes
// is a valid linearization because every operation in the batch is
// concurrent with every other.
func (eng *engine) flush(reg string, batch []*batchSub) {
	nd := eng.nd
	var writes, reads []*batchSub
	for _, s := range batch {
		if s.read {
			reads = append(reads, s)
		} else {
			writes = append(writes, s)
		}
	}
	ctx := context.Background() // rounds abort via crashCh on crash/close
	if len(writes) > 0 {
		carrier := writes[0].op
		final := writes[len(writes)-1].val
		wit, err := nd.writeProtocol(ctx, carrier, reg, final, true)
		for i, s := range writes {
			// The batch mints one tag for its surviving (last) value; the
			// overwritten submissions carry no witness — a tag names exactly
			// one committed value.
			w := tag.Tag{}
			if i == len(writes)-1 {
				w = wit
			}
			inc, err2 := nd.endOp(s.op, s.epoch, s.obs, err, nil, w)
			s.fut.complete(nil, w, inc, err2)
		}
	}
	if len(reads) > 0 {
		carrier := reads[0].op
		val, wit, err := nd.readProtocol(ctx, carrier, reg, true)
		for _, s := range reads {
			inc, err2 := nd.endOp(s.op, s.epoch, s.obs, err, val, wit)
			s.fut.complete(val, wit, inc, err2)
		}
	}
}

// SubmitWrite asynchronously writes val to the named register through the
// batching engine and returns a future for the acknowledgement. Concurrent
// submissions to the same register coalesce into one quorum round;
// submissions to different registers pipeline. Admission errors (down
// process, oversized value, non-writer under RegularSW) are returned
// immediately and leave no trace in the history.
func (nd *Node) SubmitWrite(reg string, val []byte, obs OpObserver) (*Future, error) {
	if len(val) > wire.MaxValueSize {
		return nil, wire.ErrValueTooLarge
	}
	if nd.kind == RegularSW && nd.id != RegularWriter {
		return nil, ErrNotWriter
	}
	val = append([]byte(nil), val...)
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, err
	}
	fut := &Future{op: op, done: make(chan struct{})}
	nd.eng.enqueue(reg, &batchSub{val: val, obs: obs, op: op, epoch: epoch, fut: fut})
	return fut, nil
}

// SubmitRead asynchronously reads the named register through the batching
// engine. Concurrent submitted reads of one register share a single quorum
// round (and its single write-back) and all return its value.
func (nd *Node) SubmitRead(reg string, obs OpObserver) (*Future, error) {
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, err
	}
	fut := &Future{op: op, done: make(chan struct{})}
	nd.eng.enqueue(reg, &batchSub{read: true, obs: obs, op: op, epoch: epoch, fut: fut})
	return fut, nil
}

// flushWindow is the outbox's gather window: after waking, the flusher
// waits this long before draining, so the sweeps of concurrently pipelined
// rounds land in the same generation and share batch frames. Two orders of
// magnitude below the protocol's default retransmission period and well
// below a LAN round-trip, so it amortizes frames without moving the latency
// needle; the synchronous (unbatched) path never pays it.
const flushWindow = 50 * time.Microsecond

// outbox group-commits outgoing round broadcasts into per-destination batch
// frames. Senders enqueue and return; a single flusher goroutine gathers for
// flushWindow, then drains everything staged — including whatever
// accumulated while the previous flush was on the wire.
type outbox struct {
	nd      *Node
	mu      sync.Mutex
	buf     []wire.Envelope
	running bool
}

// enqueue stages a round's sweep for transmission. The sender id is stamped
// and the sends are traced here so trace order matches staging order.
func (ob *outbox) enqueue(envs ...wire.Envelope) {
	for i := range envs {
		envs[i].From = ob.nd.id
		if ob.nd.tr != nil {
			ob.nd.traceEvent("send", envs[i].String())
		}
	}
	ob.mu.Lock()
	ob.buf = append(ob.buf, envs...)
	if !ob.running {
		ob.running = true
		go ob.flushLoop()
	}
	ob.mu.Unlock()
}

// flushLoop drains the buffer until it stays empty, grouping each drained
// generation by destination and handing every group to the endpoint as one
// batch frame (transport.SendAll falls back to singles on endpoints without
// batch support).
func (ob *outbox) flushLoop() {
	for {
		time.Sleep(flushWindow)
		ob.mu.Lock()
		buf := ob.buf
		ob.buf = nil
		if len(buf) == 0 {
			ob.running = false
			ob.mu.Unlock()
			return
		}
		ob.mu.Unlock()
		perDest := make(map[int32][]wire.Envelope, ob.nd.n)
		order := make([]int32, 0, ob.nd.n)
		for _, env := range buf {
			if perDest[env.To] == nil {
				order = append(order, env.To)
			}
			perDest[env.To] = append(perDest[env.To], env)
		}
		for _, to := range order {
			transport.SendAll(ob.nd.ep, perDest[to])
		}
	}
}
