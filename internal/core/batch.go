package core

import (
	"context"
	"hash/maphash"
	"runtime"
	"sync"

	"recmem/internal/tag"
	"recmem/internal/transport"
	"recmem/internal/wire"
)

// This file implements the node's batching + pipelining engine (docs/adr/
// 0001): an asynchronous submission API (SubmitWrite/SubmitRead returning
// futures) backed by a per-register sharded dispatcher.
//
// Two amortizations stack on top of the paper's algorithms, neither of which
// changes a single protocol rule:
//
//   - Operation coalescing. All writes to one register that are pending at
//     the same process when a dispatch begins are folded into ONE execution
//     of the two-round write protocol: one sequence-number query, one minted
//     tag, one propagation of the last submitted value, and therefore one
//     causal log chain for the whole batch. This is sound because the
//     coalesced writes are pairwise concurrent (all submitted before the
//     round starts, all completed after it commits), so linearizing them
//     back to back at the commit point — earlier submissions immediately
//     overwritten by later ones — is a valid ordering; the acknowledgement
//     every submitter receives is backed by the batch's value being durable
//     at a majority under a tag at least as high as any the folded writes
//     would have minted. Pending reads coalesce the same way into one
//     execution of the read protocol (query majority, write back), all
//     returning its value.
//   - Register pipelining. Each register's dispatcher runs independently, so
//     rounds for different registers overlap in flight instead of
//     serializing on the node's operation mutex; the node-level outbox
//     group-commits the broadcasts of concurrently running rounds into
//     per-destination batch frames (wire.EncodeBatch), so one network
//     round-trip carries the coalesced rounds of many registers.
//
// The synchronous Write/Read path still serializes on opMu, modeling the
// paper's sequential process. Mixing the synchronous and the asynchronous
// API on the same register of the same node is safe for atomicity — tag-
// minting write executions for one register serialize on the node's
// per-register write lock (see writeProtocol), so racing paths can never
// mint the same timestamp for different values — but it forfeits the
// per-process program order the synchronous path guarantees.

// batchSub is one submitted operation waiting in a register's queue. Subs
// are engine-owned — created at submission, consumed by exactly one flush —
// so they recycle through a pool: the steady-state submission path allocates
// neither the sub nor (pool hits permitting) the future it carries.
type batchSub struct {
	read  bool
	val   []byte
	obs   OpObserver
	op    uint64
	epoch uint64
	fut   *Future
}

// subPool recycles batchSubs; the engine is their sole owner (the submitter
// only ever holds the future), so flush can release each one as soon as its
// future completed.
var subPool = sync.Pool{New: func() any { return &batchSub{} }}

// newSub takes a sub from the pool and fills it.
func newSub(read bool, val []byte, obs OpObserver, op, epoch uint64, fut *Future) *batchSub {
	s := subPool.Get().(*batchSub)
	s.read, s.val, s.obs, s.op, s.epoch, s.fut = read, val, obs, op, epoch, fut
	return s
}

// putSub clears a consumed sub's references and recycles it.
func putSub(s *batchSub) {
	*s = batchSub{}
	subPool.Put(s)
}

// engineShards is the number of locks the register-queue map is split
// across; submissions for different registers rarely contend.
const engineShards = 16

// engine is the per-node batching dispatcher.
type engine struct {
	nd     *Node
	seed   maphash.Seed
	shards [engineShards]engineShard
}

type engineShard struct {
	mu   sync.Mutex
	regs map[string]*regQueue
}

// regQueue is the pending-submission queue of one register. running is true
// while a dispatcher goroutine owns the register. spare is the previous
// batch's slice, recycled by the dispatcher so steady-state submission
// appends into warm capacity instead of regrowing a nil slice per batch.
type regQueue struct {
	pending []*batchSub
	spare   []*batchSub
	running bool
}

func newEngine(nd *Node) *engine {
	eng := &engine{nd: nd, seed: maphash.MakeSeed()}
	for i := range eng.shards {
		eng.shards[i].regs = make(map[string]*regQueue)
	}
	return eng
}

func (eng *engine) shardFor(reg string) *engineShard {
	return &eng.shards[maphash.String(eng.seed, reg)%engineShards]
}

// queueFor resolves (creating on first use) the register's queue and owning
// shard. Queues are never removed from the map, so the returned pointers
// stay valid for the node's lifetime — RegisterRef caches them to take the
// maphash + map lookup off the per-operation hot path.
func (eng *engine) queueFor(reg string) (*engineShard, *regQueue) {
	sh := eng.shardFor(reg)
	sh.mu.Lock()
	q := sh.regs[reg]
	if q == nil {
		q = &regQueue{}
		sh.regs[reg] = q
	}
	sh.mu.Unlock()
	return sh, q
}

// enqueue appends a submission to the register's queue and starts a
// dispatcher for the register if none is running.
func (eng *engine) enqueue(reg string, sub *batchSub) {
	sh, q := eng.queueFor(reg)
	eng.enqueueResolved(sh, q, reg, sub)
}

// enqueueResolved is enqueue with the shard and queue already resolved (the
// cached-handle fast path).
func (eng *engine) enqueueResolved(sh *engineShard, q *regQueue, reg string, sub *batchSub) {
	sh.mu.Lock()
	q.pending = append(q.pending, sub)
	if !q.running {
		q.running = true
		go eng.run(reg, sh, q)
	}
	sh.mu.Unlock()
}

// run dispatches batches for one register until its queue drains: each
// iteration takes everything currently pending and flushes it as one batch,
// so submissions arriving during a flush form the next batch — group commit.
// The flushed slice is recycled as the queue's spare once its subs are
// consumed, so a busy register's batches reuse one warm buffer.
func (eng *engine) run(reg string, sh *engineShard, q *regQueue) {
	for {
		sh.mu.Lock()
		batch := q.pending
		q.pending = q.spare
		q.spare = nil
		if len(batch) == 0 {
			q.running = false
			sh.mu.Unlock()
			return
		}
		sh.mu.Unlock()
		eng.flush(reg, batch)
		// Every sub was consumed (its future completed) by the flush; only
		// now — after the last pass over the batch — can they recycle.
		for i, s := range batch {
			putSub(s)
			batch[i] = nil
		}
		sh.mu.Lock()
		if q.spare == nil {
			q.spare = batch[:0]
		}
		sh.mu.Unlock()
	}
}

// flush executes one batch: all writes coalesce into one write-protocol
// execution propagating the last submitted value, then all reads coalesce
// into one read-protocol execution. Reads ordered after the batch's writes
// is a valid linearization because every operation in the batch is
// concurrent with every other. Completion fires each future's registered
// callback inline (docs/adr/0010); the batch is partitioned by two passes
// over the slice instead of materializing per-kind sub-slices, and the
// dispatcher recycles the consumed subs once the flush returns.
func (eng *engine) flush(reg string, batch []*batchSub) {
	nd := eng.nd
	writeCarrier, readCarrier := -1, -1
	lastWrite := -1
	var finalVal []byte
	for i, s := range batch {
		if s.read {
			if readCarrier < 0 {
				readCarrier = i
			}
		} else {
			if writeCarrier < 0 {
				writeCarrier = i
			}
			lastWrite = i
			finalVal = s.val
		}
	}
	ctx := context.Background() // rounds abort via crashCh on crash/close
	if writeCarrier >= 0 {
		wit, err := nd.writeProtocol(ctx, batch[writeCarrier].op, reg, finalVal, true)
		for i, s := range batch {
			if s.read {
				continue
			}
			// The batch mints one tag for its surviving (last) value; the
			// overwritten submissions carry no witness — a tag names exactly
			// one committed value.
			w := tag.Tag{}
			if i == lastWrite {
				w = wit
			}
			inc, err2 := nd.endOp(s.op, s.epoch, s.obs, err, nil, w)
			s.fut.complete(nil, w, inc, err2)
		}
	}
	if readCarrier >= 0 {
		val, wit, err := nd.readProtocol(ctx, batch[readCarrier].op, reg, true)
		for _, s := range batch {
			if !s.read {
				continue
			}
			inc, err2 := nd.endOp(s.op, s.epoch, s.obs, err, val, wit)
			s.fut.complete(val, wit, inc, err2)
		}
	}
}

// SubmitWrite asynchronously writes val to the named register through the
// batching engine and returns a future for the acknowledgement. Concurrent
// submissions to the same register coalesce into one quorum round;
// submissions to different registers pipeline. Admission errors (down
// process, oversized value, non-writer under RegularSW) are returned
// immediately and leave no trace in the history.
func (nd *Node) SubmitWrite(reg string, val []byte, obs OpObserver) (*Future, error) {
	val = append([]byte(nil), val...) // copy once at the boundary
	return nd.submitWriteOwned(reg, val, obs)
}

// submitWriteOwned is SubmitWrite minus the defensive copy: the caller
// transfers ownership of val, which must never be mutated afterwards. The
// remote server uses this through RegisterRef — its decoded request value is
// already an owned copy, and copying it again would be the last avoidable
// per-op allocation on the ingest path.
func (nd *Node) submitWriteOwned(reg string, val []byte, obs OpObserver) (*Future, error) {
	if len(val) > wire.MaxValueSize {
		return nil, wire.ErrValueTooLarge
	}
	if nd.kind == RegularSW && nd.id != RegularWriter {
		return nil, ErrNotWriter
	}
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, err
	}
	fut := newFuture(op)
	nd.eng.enqueue(reg, newSub(false, val, obs, op, epoch, fut))
	return fut, nil
}

// SubmitRead asynchronously reads the named register through the batching
// engine. Concurrent submitted reads of one register share a single quorum
// round (and its single write-back) and all return its value.
func (nd *Node) SubmitRead(reg string, obs OpObserver) (*Future, error) {
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, err
	}
	fut := newFuture(op)
	nd.eng.enqueue(reg, newSub(true, nil, obs, op, epoch, fut))
	return fut, nil
}

// gatherYields caps the outbox's quiescence probe: the flusher drains once
// the staged buffer stops growing between scheduler yields, or after this
// many yields if producers keep staging — a continuously hot node then ships
// large frames instead of stalling the flusher forever.
const gatherYields = 64

// outbox group-commits outgoing round broadcasts into per-destination batch
// frames. Senders enqueue and return; a single flusher goroutine gathers for
// flushWindow, then drains everything staged — including whatever
// accumulated while the previous flush was on the wire.
type outbox struct {
	nd      *Node
	mu      sync.Mutex
	buf     []wire.Envelope
	spare   []wire.Envelope // recycled drain buffer, swapped with buf by the flusher
	running bool

	// flusher-owned scratch (at most one flushLoop runs at a time): the
	// per-destination grouping map and order slice persist across drains
	// instead of reallocating per generation.
	perDest map[int32][]wire.Envelope
	order   []int32
}

// enqueue stages a round's sweep for transmission. The sender id is stamped
// and the sends are traced here so trace order matches staging order.
func (ob *outbox) enqueue(envs ...wire.Envelope) {
	for i := range envs {
		envs[i].From = ob.nd.id
		if ob.nd.tr != nil {
			ob.nd.traceEvent("send", envs[i].String())
		}
	}
	ob.mu.Lock()
	ob.buf = append(ob.buf, envs...)
	if !ob.running {
		ob.running = true
		go ob.flushLoop()
	}
	ob.mu.Unlock()
}

// flushLoop drains the buffer until it stays empty, grouping each drained
// generation by destination and handing every group to the endpoint as one
// batch frame (transport.SendAll falls back to singles on endpoints without
// batch support).
func (ob *outbox) flushLoop() {
	for {
		// Gather at quiescence instead of after a fixed wall-clock window:
		// yield the processor so every runnable producer — the register
		// dispatchers staging their sweeps, handlers answering arrived
		// envelopes — gets to stage into this generation, and drain once the
		// buffer stops growing between yields. A fixed sleep here serializes
		// into every quorum round-trip of the pipeline; yielding costs
		// nothing once the staging burst is over but still coalesces exactly
		// the rounds that were concurrently runnable.
		prev := -1
		for range gatherYields {
			runtime.Gosched()
			ob.mu.Lock()
			n := len(ob.buf)
			ob.mu.Unlock()
			if n == prev {
				break
			}
			prev = n
		}
		ob.mu.Lock()
		buf := ob.buf
		ob.buf = ob.spare
		ob.spare = nil
		if len(buf) == 0 {
			ob.running = false
			ob.mu.Unlock()
			return
		}
		ob.mu.Unlock()
		if ob.perDest == nil {
			ob.perDest = make(map[int32][]wire.Envelope, ob.nd.n)
		}
		order := ob.order[:0]
		for _, env := range buf {
			if len(ob.perDest[env.To]) == 0 {
				order = append(order, env.To)
			}
			ob.perDest[env.To] = append(ob.perDest[env.To], env)
		}
		for _, to := range order {
			transport.SendAll(ob.nd.ep, ob.perDest[to])
			ob.perDest[to] = ob.perDest[to][:0] // keep capacity, drop the group
		}
		ob.order = order[:0]
		for i := range buf {
			buf[i] = wire.Envelope{} // drop value references before recycling
		}
		ob.mu.Lock()
		if ob.spare == nil {
			ob.spare = buf[:0]
		}
		ob.mu.Unlock()
	}
}
