package core

// Unit tests for the pooled, callback-driven Future (docs/adr/0010): the
// accessor before/after contract, exactly-once callback delivery on both
// sides of the completion race, and the generation check that keeps a stale
// handle from ever reading a recycled future's next operation.

import (
	"context"
	"errors"
	"testing"
	"time"

	"recmem/internal/tag"
)

func TestFutureAccessorsBeforeAndAfterCompletion(t *testing.T) {
	f := newFuture(7)
	if f.Op() != 7 {
		t.Fatalf("Op = %d, want 7", f.Op())
	}
	if _, ok := f.TagWitness(); ok {
		t.Fatal("TagWitness ok before completion")
	}
	if _, ok := f.Incarnation(); ok {
		t.Fatal("Incarnation ok before completion")
	}
	select {
	case <-f.Done():
		t.Fatal("Done closed before completion")
	default:
	}

	wit := tag.Tag{Seq: 3, Writer: 1, Rec: 2}
	f.complete([]byte("v"), wit, 9, nil)

	<-f.Done() // must be closed now
	val, err := f.Wait(context.Background())
	if err != nil || string(val) != "v" {
		t.Fatalf("Wait = %q, %v", val, err)
	}
	if w, ok := f.TagWitness(); !ok || w != wit {
		t.Fatalf("TagWitness = %v, %v", w, ok)
	}
	if inc, ok := f.Incarnation(); !ok || inc != 9 {
		t.Fatalf("Incarnation = %d, %v", inc, ok)
	}
	f.Release()
}

func TestFutureFailedOpCarriesNoWitness(t *testing.T) {
	f := newFuture(1)
	f.complete(nil, tag.Tag{}, 0, ErrCrashed)
	if _, ok := f.TagWitness(); ok {
		t.Fatal("TagWitness ok on failed op")
	}
	if _, ok := f.Incarnation(); ok {
		t.Fatal("Incarnation ok on failed op")
	}
	if _, err := f.Wait(context.Background()); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Wait err = %v, want ErrCrashed", err)
	}
	f.Release()
}

func TestFutureOnDoneFiresOnceEachSide(t *testing.T) {
	// Callback registered before completion: fired by complete, with the
	// registered argument.
	f := newFuture(1)
	fired := 0
	var gotArg any
	f.OnDone(func(ff *Future, arg any) {
		fired++
		gotArg = arg
		if ff != f {
			t.Error("callback received a different future")
		}
	}, "arg-a")
	f.complete(nil, tag.Tag{}, 1, nil)
	if fired != 1 || gotArg != "arg-a" {
		t.Fatalf("callback fired %d times with arg %v", fired, gotArg)
	}
	f.Release()

	// Callback registered after completion: fired immediately, inline.
	g := newFuture(2)
	g.complete(nil, tag.Tag{}, 1, nil)
	fired = 0
	g.OnDone(func(*Future, any) { fired++ }, nil)
	if fired != 1 {
		t.Fatalf("post-completion OnDone fired %d times", fired)
	}
	g.Release()
}

func TestFutureGenerationGuardsRecycledResult(t *testing.T) {
	f := newFuture(1)
	gen := f.Generation()
	wit := tag.Tag{Seq: 1, Writer: 0, Rec: 1}
	f.complete([]byte("first"), wit, 5, nil)

	val, w, inc, err, ok := f.Result(gen)
	if !ok || string(val) != "first" || w != wit || inc != 5 || err != nil {
		t.Fatalf("Result(current gen) = %q %v %d %v %v", val, w, inc, err, ok)
	}

	f.Release()
	// The released future recycles; whether or not the pool hands this very
	// future out again, the stale generation must read nothing.
	if _, _, _, _, ok := f.Result(gen); ok {
		t.Fatal("stale generation read a released future")
	}

	// Drain the pool until we get f back (single pool, same P — the next
	// Get returns it immediately in practice), complete a second op, and
	// check the stale handle still reads nothing.
	g := newFuture(2)
	g.complete([]byte("second"), tag.Tag{Seq: 2, Writer: 0, Rec: 1}, 6, nil)
	if g == f {
		if _, _, _, _, ok := f.Result(gen); ok {
			t.Fatal("stale generation read the recycled future's next op")
		}
		if _, _, _, _, ok := g.Result(g.Generation()); !ok {
			t.Fatal("current generation failed to read its own result")
		}
	}
	g.Release()
}

func TestFutureWaitContextCancel(t *testing.T) {
	f := newFuture(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want DeadlineExceeded", err)
	}
	// Cancelling the wait abandons the wait, not the operation: completion
	// must still work and be observable.
	f.complete(nil, tag.Tag{}, 1, nil)
	if _, err := f.Wait(context.Background()); err != nil {
		t.Fatalf("Wait after completion: %v", err)
	}
	f.Release()
}

func TestFutureReleasePanicsOnPending(t *testing.T) {
	f := newFuture(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of a pending future did not panic")
		}
		f.complete(nil, tag.Tag{}, 1, nil)
		f.Release()
	}()
	f.Release()
}
