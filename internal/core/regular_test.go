package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"recmem/internal/netsim"
	"recmem/internal/wire"
)

func TestRegularSWWriteRead(t *testing.T) {
	tc := newTestCluster(t, 5, RegularSW, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "v1"); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 5; p++ {
		got, _, err := tc.read(p, "x")
		if err != nil {
			t.Fatalf("read@%d: %v", p, err)
		}
		if got != "v1" {
			t.Fatalf("read@%d = %q", p, got)
		}
	}
	// Sequential overwrites.
	for i := 2; i <= 5; i++ {
		val := fmt.Sprintf("v%d", i)
		if _, err := tc.write(0, "x", val); err != nil {
			t.Fatal(err)
		}
		if got, _, _ := tc.read(i%5, "x"); got != val {
			t.Fatalf("read = %q, want %q", got, val)
		}
	}
}

func TestRegularSWOnlyDesignatedWriter(t *testing.T) {
	tc := newTestCluster(t, 3, RegularSW, Options{}, netsim.Options{})
	if _, err := tc.write(1, "x", "v"); !errors.Is(err, ErrNotWriter) {
		t.Fatalf("write at non-writer: %v", err)
	}
	// The rejected write is not recorded as an operation anywhere harmful;
	// the designated writer still works.
	if _, err := tc.write(0, "x", "v"); err != nil {
		t.Fatal(err)
	}
}

// TestRegularSWCosts asserts the §VI cost profile: a write is one round
// (2 communication steps) with exactly 1 causal log; a read is one round
// with no logging at all — even under concurrency.
func TestRegularSWCosts(t *testing.T) {
	tc := newTestCluster(t, 5, RegularSW, Options{RetransmitEvery: time.Second}, netsim.Options{})
	wop, err := tc.write(0, "x", "v")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if cost := tc.logs.Cost(wop); cost.CausalDepth != 1 {
		t.Fatalf("write causal depth = %+v, want 1", cost)
	}
	if tr := tc.msgs.Trace(wop); tr.Rounds != 1 || tr.Steps() != 2 || tr.Sends != tc.n {
		t.Fatalf("write trace = %+v, want 1 round / 2 steps / %d sends", tr, tc.n)
	}
	before := tc.logs.TotalLogs()
	_, rop, err := tc.read(1, "x")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if cost := tc.logs.Cost(rop); cost.Logs != 0 {
		t.Fatalf("read cost = %+v, want no logs", cost)
	}
	if tr := tc.msgs.Trace(rop); tr.Rounds != 1 || tr.Steps() != 2 {
		t.Fatalf("read trace = %+v, want 1 round / 2 steps", tr)
	}
	if after := tc.logs.TotalLogs(); after != before {
		t.Fatalf("read caused %d logs", after-before)
	}
}

// TestRegularSWReadNeverLogsEvenUnderConcurrency: unlike the atomic reads,
// the regular read does not write back — a partially propagated value is
// returned without being promoted.
func TestRegularSWReadNeverLogsEvenUnderConcurrency(t *testing.T) {
	tc := newTestCluster(t, 5, RegularSW, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "v1"); err != nil {
		t.Fatal(err)
	}
	// Partially propagate v2: only nodes 0 (self, required) and 1 get it.
	tc.net.SetFilter(func(e wire.Envelope) bool {
		return !(e.Kind == wire.KindWrite && e.From == 0 && e.To > 1)
	})
	done := make(chan error, 1)
	go func() {
		_, err := tc.write(0, "x", "v2")
		done <- err
	}()
	waitFor(t, 2*time.Second, "node 1 adopts v2", func() bool {
		_, v, _ := tc.nodes[1].RegisterState("x")
		return string(v) == "v2"
	})
	tc.crash(0)
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("interrupted write: %v", err)
	}
	tc.net.SetFilter(nil)

	before := tc.logs.TotalLogs()
	// Quorum {1,2,3}: node 1 has v2, so the read returns it — without
	// logging or promoting it anywhere.
	tc.net.HoldLink(4, 1)
	got, _, err := tc.read(1, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got != "v2" {
		t.Fatalf("read = %q, want the concurrent v2", got)
	}
	time.Sleep(20 * time.Millisecond)
	if after := tc.logs.TotalLogs(); after != before {
		t.Fatalf("regular read caused %d logs", after-before)
	}
	// A later read on a v1-only quorum may return v1: new-old inversion,
	// which regularity allows.
	tc.net.ReleaseAll()
	tc.net.HoldLink(1, 2)
	got, _, err = tc.read(2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got != "v1" {
		t.Fatalf("read = %q, want v1 (quorum without the float)", got)
	}
}

// TestRegularSWTagsMonotoneAcrossCrashes: the required self-acknowledgement
// plus the recovery counter keep the single writer's timestamps strictly
// increasing, even when writes are repeatedly interrupted before reaching
// anyone else.
func TestRegularSWTagsMonotoneAcrossCrashes(t *testing.T) {
	tc := newTestCluster(t, 5, RegularSW, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "v1"); err != nil {
		t.Fatal(err)
	}
	tag1, _, _ := tc.nodes[0].RegisterState("x")

	// Interrupt three writes in a row: each reaches only node 1.
	for i := 0; i < 3; i++ {
		tc.net.SetFilter(func(e wire.Envelope) bool {
			return !(e.Kind == wire.KindWrite && e.From == 0 && e.To != 1)
		})
		done := make(chan error, 1)
		val := fmt.Sprintf("float%d", i)
		go func() {
			_, err := tc.write(0, "x", val)
			done <- err
		}()
		waitFor(t, 2*time.Second, "float adopted", func() bool {
			_, v, _ := tc.nodes[1].RegisterState("x")
			return string(v) == val
		})
		tc.crash(0)
		if err := <-done; !errors.Is(err, ErrCrashed) {
			t.Fatalf("float %d: %v", i, err)
		}
		tc.net.SetFilter(nil)
		if err := tc.recover(0); err != nil {
			t.Fatal(err)
		}
	}

	// A completed write must out-timestamp every float.
	if _, err := tc.write(0, "x", "final"); err != nil {
		t.Fatal(err)
	}
	finalTag, _, _ := tc.nodes[0].RegisterState("x")
	if !tag1.Less(finalTag) {
		t.Fatalf("final tag %v not above first tag %v", finalTag, tag1)
	}
	floatTag, floatVal, _ := tc.nodes[1].RegisterState("x")
	if string(floatVal) != "final" {
		// Node 1 may still hold the last float only if its tag were
		// higher — which monotonicity forbids.
		if !floatTag.Less(finalTag) {
			t.Fatalf("float tag %v (%q) not below final %v", floatTag, floatVal, finalTag)
		}
	}
	// Every reader now returns "final" regardless of quorum: all floats
	// are out-timestamped.
	for p := 1; p < 5; p++ {
		got, _, err := tc.read(p, "x")
		if err != nil {
			t.Fatal(err)
		}
		if got != "final" {
			t.Fatalf("read@%d = %q, want final", p, got)
		}
	}
}

func TestRegularSWRecoveryCounts(t *testing.T) {
	tc := newTestCluster(t, 3, RegularSW, Options{}, netsim.Options{})
	for i := 1; i <= 2; i++ {
		tc.crash(0)
		if err := tc.recover(0); err != nil {
			t.Fatal(err)
		}
		if got := tc.nodes[0].RecoveryCount(); got != int32(i) {
			t.Fatalf("recovery count = %d, want %d", got, i)
		}
	}
	// Values survive the writer's crash via the majority.
	if _, err := tc.write(0, "x", "survives"); err != nil {
		t.Fatal(err)
	}
	tc.crash(0)
	if got, _, _ := tc.read(1, "x"); got != "survives" {
		t.Fatalf("read = %q", got)
	}
	if err := tc.recover(0); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := tc.read(0, "x"); got != "survives" {
		t.Fatalf("read at recovered writer = %q", got)
	}
}
