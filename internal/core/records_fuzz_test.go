package core

import (
	"bytes"
	"errors"
	"testing"

	"recmem/internal/tag"
)

// The codec fuzzers: every stable record a node reads back — adopted state,
// the recovery counter, the incarnation epoch — must either decode to a
// value whose re-encoding is byte-identical to the input (the codecs are
// canonical: exact-length checks leave one encoding per value) or fail with
// errBadRecord. Corruption must never panic or mis-slice; with lazy
// recovery these decoders also run on the hot materialization path, not
// just at restart (docs/adr/0009).

func FuzzDecodeTagged(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 19))
	f.Add(make([]byte, 20))
	f.Add(encodeTagged(tag.Tag{Seq: 7, Writer: 2, Rec: 1}, []byte("value")))
	f.Add(encodeTagged(tag.Tag{Seq: -1, Writer: -2, Rec: -3}, nil))
	// Length field far beyond the buffer: the mis-slice bait.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		tg, val, err := decodeTagged(data)
		if err != nil {
			if !errors.Is(err, errBadRecord) {
				t.Fatalf("corrupted record returned %v, want errBadRecord", err)
			}
			return
		}
		if !bytes.Equal(encodeTagged(tg, val), data) {
			t.Fatalf("decode(%x) = (%v, %x) does not re-encode to its input", data, tg, val)
		}
	})
}

func FuzzDecodeCounter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(encodeCounter(42))
	f.Add(encodeCounter(-1))
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := decodeCounter(data)
		if err != nil {
			if !errors.Is(err, errBadRecord) {
				t.Fatalf("corrupted counter returned %v, want errBadRecord", err)
			}
			return
		}
		if !bytes.Equal(encodeCounter(c), data) {
			t.Fatalf("decode(%x) = %d does not re-encode to its input", data, c)
		}
	})
}

func FuzzDecodeEpoch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add(encodeEpoch(1))
	f.Add(encodeEpoch(1<<63 + 17))
	f.Add(make([]byte, 9))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEpoch(data)
		if err != nil {
			if !errors.Is(err, errBadRecord) {
				t.Fatalf("corrupted epoch returned %v, want errBadRecord", err)
			}
			return
		}
		if !bytes.Equal(encodeEpoch(e), data) {
			t.Fatalf("decode(%x) = %d does not re-encode to its input", data, e)
		}
	})
}
