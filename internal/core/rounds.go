package core

import (
	"context"
	"time"

	"recmem/internal/wire"
)

// round broadcasts req to all processes and blocks until acknowledgements
// from a majority of distinct processes arrive — the paper's
//
//	repeat send(...) to all until receive(... ack) from ⌈(n+1)/2⌉ processes
//
// Over fair-lossy channels the broadcast is retransmitted periodically; the
// collected acknowledgements are deduplicated by sender. The round aborts
// with ErrCrashed if the process crashes, or with the context's error on
// cancellation; it otherwise blocks for as long as a majority is
// unreachable, which is exactly the robustness contract (operations by
// processes that do not crash terminate once a majority is permanently up).
func (nd *Node) round(ctx context.Context, op uint64, req wire.Envelope) (map[int32]wire.Envelope, error) {
	return nd.runRound(ctx, op, req, -1, false)
}

// runRound generalizes round along two axes: if require is a valid process
// id, the round does not complete until that process's acknowledgement is
// among the collected majority (the RegularSW writer requires its own
// acknowledgement, which certifies that its own listener has logged the new
// timestamp — the synchronization that keeps the single writer's timestamps
// strictly monotone across crashes); with batched set, broadcasts are routed
// through the node's outbox so that sweeps of concurrently running rounds
// (different registers of the batching engine) group-commit into
// per-destination batch frames instead of going out as individual messages.
func (nd *Node) runRound(ctx context.Context, op uint64, req wire.Envelope, require int32, batched bool) (map[int32]wire.Envelope, error) {
	return nd.runRoundOpts(ctx, op, req, roundOpts{require: require, to: -1, batched: batched})
}

// roundOpts generalizes a round beyond the default broadcast-to-all,
// majority-acknowledged shape.
type roundOpts struct {
	// require, if a valid process id, must be among the collected
	// acknowledgements before the round completes (-1: any quorum).
	require int32
	// to, if a valid process id, restricts the round to that single
	// destination (-1: broadcast to all processes). The §VI safe read is a
	// round addressed to the writer alone.
	to int32
	// quorum overrides the number of distinct acknowledgements required
	// (0: the majority ⌈(n+1)/2⌉).
	quorum int
	// batched routes the broadcasts through the node's outbox.
	batched bool
}

// roundState is the per-round working set — the acknowledgement channel, the
// destination and sweep scratch slices, and the retransmission timer — pooled
// per node so a round's setup allocates only its result map (which escapes to
// the protocol layer). The channel is safe to recycle because routeAck sends
// only while holding nd.mu: once the round deregisters its RPC under the same
// lock, no sender can hold a reference, and a post-deregistration drain
// leaves the channel empty for the next round.
type roundState struct {
	ch    chan wire.Envelope
	dests []int32
	sweep []wire.Envelope
	timer *time.Timer
}

// getRound takes a round state from the node's pool, with the timer armed.
func (nd *Node) getRound() *roundState {
	rs, _ := nd.roundPool.Get().(*roundState)
	if rs == nil {
		rs = &roundState{ch: make(chan wire.Envelope, 4*nd.n)}
	}
	if rs.timer == nil {
		rs.timer = time.NewTimer(nd.opts.RetransmitEvery)
	} else {
		rs.timer.Reset(nd.opts.RetransmitEvery) // released drained and stopped
	}
	return rs
}

// putRound disarms and recycles a round state. The caller must already have
// deregistered the round's RPC from nd.pending.
func (nd *Node) putRound(rs *roundState) {
	if !rs.timer.Stop() {
		select {
		case <-rs.timer.C:
		default:
		}
	}
	for {
		select {
		case <-rs.ch: // late duplicates staged before deregistration
			continue
		default:
		}
		break
	}
	rs.dests = rs.dests[:0]
	for i := range rs.sweep {
		rs.sweep[i] = wire.Envelope{} // drop value references
	}
	rs.sweep = rs.sweep[:0]
	nd.roundPool.Put(rs)
}

// runRoundOpts is the fully general round executor; see round and roundOpts.
func (nd *Node) runRoundOpts(ctx context.Context, op uint64, req wire.Envelope, o roundOpts) (map[int32]wire.Envelope, error) {
	rpc := nd.newID()
	req.RPC = rpc
	req.Op = op
	quorum := o.quorum
	if quorum <= 0 {
		quorum = nd.quorum
	}

	rs := nd.getRound()
	nd.mu.Lock()
	if !nd.servingLocked() {
		state := nd.state
		nd.mu.Unlock()
		nd.putRound(rs)
		if state == stateClosed {
			return nil, ErrClosed
		}
		return nil, ErrCrashed
	}
	crashCh := nd.crashCh
	nd.pending[rpc] = rs.ch
	nd.mu.Unlock()
	defer func() {
		nd.mu.Lock()
		delete(nd.pending, rpc)
		nd.mu.Unlock()
		nd.putRound(rs)
	}()

	dests := rs.dests
	if o.to >= 0 {
		dests = append(dests, o.to)
	} else {
		for to := int32(0); to < int32(nd.n); to++ {
			dests = append(dests, to)
		}
	}
	rs.dests = dests

	acks := make(map[int32]wire.Envelope, nd.n)
	sweeps := 0
	for {
		sweeps++
		if o.batched {
			sweep := rs.sweep[:0]
			for _, to := range dests {
				e := req
				e.To = to
				sweep = append(sweep, e)
			}
			rs.sweep = sweep
			nd.ob.enqueue(sweep...)
		} else {
			for _, to := range dests {
				e := req
				e.To = to
				nd.send(e)
			}
		}
	collect:
		for {
			select {
			case env := <-rs.ch:
				if _, dup := acks[env.From]; dup {
					continue
				}
				acks[env.From] = env
				if len(acks) >= quorum {
					if o.require >= 0 {
						if _, ok := acks[o.require]; !ok {
							continue
						}
					}
					nd.recordRound(op, sweeps*len(dests), sweeps-1)
					return acks, nil
				}
			case <-rs.timer.C:
				rs.timer.Reset(nd.opts.RetransmitEvery)
				break collect // retransmission sweep
			case <-crashCh:
				return nil, ErrCrashed
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
}

// maxAckDepth returns the largest causal log depth reported by the
// acknowledgements, floored at the depth the request carried.
func maxAckDepth(acks map[int32]wire.Envelope, floor int) int {
	depth := floor
	for _, a := range acks {
		if int(a.Depth) > depth {
			depth = int(a.Depth)
		}
	}
	return depth
}

// maxAckSeq returns the highest sequence number among the acknowledged tags
// (Fig. 4 line 10: "select highest sn").
func maxAckSeq(acks map[int32]wire.Envelope) int64 {
	var max int64
	for _, a := range acks {
		if a.Tag.Seq > max {
			max = a.Tag.Seq
		}
	}
	return max
}

// bestAck returns the acknowledgement carrying the lexicographically highest
// tag (Fig. 4 line 35: "select v with highest [sn, pid]").
func bestAck(acks map[int32]wire.Envelope) wire.Envelope {
	var best wire.Envelope
	first := true
	for _, a := range acks {
		if first || best.Tag.Less(a.Tag) {
			best = a
			first = false
		}
	}
	return best
}
