package core

import (
	"context"
	"sync"

	"recmem/internal/causal"
	"recmem/internal/tag"
	"recmem/internal/wire"
)

// OpObserver receives callbacks at the points where an operation's history
// events become definitive. OnInvoke runs inside the node's state lock right
// after the operation is admitted; OnReturn runs inside the same lock only
// if the process did not crash during the operation — val is the value a
// read returns (nil for writes), wit the operation's tag witness: the tag
// the protocol adopted for the written or returned value (zero when none,
// e.g. a coalesced write whose value was superseded within its batch). The
// harness uses these to record invocation/reply events whose order is
// consistent with the crash/recovery events it records through Crash and
// Recover.
type OpObserver struct {
	OnInvoke func(op uint64)
	OnReturn func(op uint64, val []byte, wit tag.Tag)
}

// beginOp admits a client operation on an alive process and fires OnInvoke.
func (nd *Node) beginOp(obs OpObserver) (op uint64, epoch uint64, err error) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	switch nd.state {
	case stateUp:
	case stateClosed:
		return 0, 0, ErrClosed
	default:
		return 0, 0, ErrDown
	}
	op = nd.ids.Add(1)
	if obs.OnInvoke != nil {
		obs.OnInvoke(op)
	}
	return op, nd.epoch, nil
}

// endOp fires OnReturn if the operation ran to completion on a process that
// is still in the same incarnation; an operation that raced with a crash is
// reported as ErrCrashed and its invocation stays pending. On success it also
// returns the node's incarnation epoch, read under the same lock that proves
// the crash generation never changed — so the whole operation ran within that
// one incarnation, and the epoch is a truthful witness for remote observers.
func (nd *Node) endOp(op, epoch uint64, obs OpObserver, err error, val []byte, wit tag.Tag) (uint64, error) {
	if err != nil {
		return 0, err
	}
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.state != stateUp || nd.epoch != epoch {
		return 0, ErrCrashed
	}
	if obs.OnReturn != nil {
		obs.OnReturn(op, val, wit)
	}
	return nd.inc, nil
}

// Write emulates the register's write operation at this process. It blocks
// until a majority acknowledges (robustness: it terminates provided the
// process does not crash and a majority is eventually permanently up) and
// returns the operation id used for accounting.
func (nd *Node) Write(ctx context.Context, reg string, val []byte, obs OpObserver) (uint64, error) {
	if len(val) > wire.MaxValueSize {
		return 0, wire.ErrValueTooLarge
	}
	if nd.kind == RegularSW && nd.id != RegularWriter {
		// Rejected before the invocation exists: a non-writer never invokes
		// a write on the single-writer register.
		return 0, ErrNotWriter
	}
	nd.opMu.Lock()
	defer nd.opMu.Unlock()
	// Copy once at the boundary; the value is immutable inside the system.
	val = append([]byte(nil), val...)
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return 0, err
	}
	wit, err := nd.writeProtocol(ctx, op, reg, val, false)
	_, err = nd.endOp(op, epoch, obs, err, nil, wit)
	return op, err
}

// writeProtocol is the write common to the multi-writer algorithms: a
// sequence-number query round, the timestamp mint (algorithm-specific), an
// optional writer pre-log (persistent: Fig. 4 line 12), and the propagation
// round. The single-writer regular register branches to its one-round form.
// With batched set, round broadcasts go through the node's outbox so that
// concurrently pipelined registers share batch frames. The returned tag is
// the minted timestamp — the write's tag witness (zero if the execution
// failed before minting).
//
// The whole execution holds the node's per-register write lock: the minted
// timestamp is derived from the queried majority maximum, so two concurrent
// executions for one register (a synchronous Write racing a batch flush)
// would mint the same timestamp for different values.
func (nd *Node) writeProtocol(ctx context.Context, op uint64, reg string, val []byte, batched bool) (tag.Tag, error) {
	return nd.writeProtocolMu(ctx, op, reg, val, batched, nd.wlock(reg))
}

// wlock resolves (creating on first use) the register's write-execution
// lock. RegisterRef caches the result, skipping the sync.Map lookup per op.
func (nd *Node) wlock(reg string) *sync.Mutex {
	l, _ := nd.wlocks.LoadOrStore(reg, &sync.Mutex{})
	return l.(*sync.Mutex)
}

// writeProtocolMu is writeProtocol with the per-register write lock already
// resolved (the cached-handle fast path).
func (nd *Node) writeProtocolMu(ctx context.Context, op uint64, reg string, val []byte, batched bool, mu *sync.Mutex) (tag.Tag, error) {
	mu.Lock()
	defer mu.Unlock()
	if nd.kind == RegularSW {
		return nd.writeRegularSW(ctx, op, reg, val, batched)
	}
	depth := 0
	if nd.kind == Naive {
		// §I-C straw man: log the intent before doing anything.
		payload := encodeTagged(tag.Tag{Writer: nd.id}, val)
		if err := nd.storeLog(batched, recWStartPrefix+reg, payload); err != nil {
			return tag.Tag{}, err
		}
		depth = causal.After(depth)
		nd.recordLog(op, depth, len(payload))
	}

	// Round 1: collect sequence numbers from a majority (Fig. 4 lines 7–10).
	acks, err := nd.runRound(ctx, op, wire.Envelope{Kind: wire.KindSNQuery, Reg: reg, Depth: uint8(depth)}, -1, batched)
	if err != nil {
		return tag.Tag{}, err
	}
	depth = maxAckDepth(acks, depth)
	newTag := nd.mintTag(maxAckSeq(acks))

	// Writer pre-log (Fig. 4 line 12): the persistent algorithm's second
	// causal log; it lets recovery finish the write and pins the minted
	// timestamp so it can never be reused for a different value. One
	// coalesced batch mints one tag, so this is the batch's single pre-log,
	// issued through the batched durability path.
	if nd.kind == Persistent || nd.kind == Naive {
		payload := encodeTagged(newTag, val)
		if err := nd.storeLog(batched, recWritingPrefix+reg, payload); err != nil {
			return tag.Tag{}, err
		}
		depth = causal.After(depth)
		nd.recordLog(op, depth, len(payload))
	}

	// Round 2: propagate the tagged value to a majority (Fig. 4 lines 13–15).
	_, err = nd.runRound(ctx, op, wire.Envelope{
		Kind: wire.KindWrite, Reg: reg, Tag: newTag, Value: val, Depth: uint8(depth),
	}, -1, batched)
	if err != nil {
		return tag.Tag{}, err
	}
	return newTag, nil
}

// mintTag computes the new write timestamp from the highest sequence number
// collected in round 1. All minting goes through tag.Next, so the [sn, pid]
// advancement rule lives in exactly one place.
func (nd *Node) mintTag(maxSeq int64) tag.Tag {
	switch nd.kind {
	case Transient:
		// Fig. 5 line 11: sn := sn + rec + 1. The persisted recovery count
		// compensates for pre-logs the transient write does not perform.
		rec := nd.RecoveryCount()
		return tag.Tag{Seq: maxSeq}.Next(nd.id, int64(rec), nd.hardenedRec(rec))
	default:
		// Fig. 4 line 11: sn := sn + 1.
		return tag.Tag{Seq: maxSeq}.Next(nd.id, 0, 0)
	}
}

// hardenedRec resolves the Rec tiebreak component a minted tag carries:
// zero under the paper's literal algorithms, the persisted recovery count
// under hardened tags — DESIGN.md §7's fix for the residual tag-collision
// window.
func (nd *Node) hardenedRec(rec int32) int32 {
	if nd.opts.HardenedTags {
		return rec
	}
	return 0
}

// Read emulates the register's read operation at this process: query a
// majority for tagged values, pick the highest, and write it back to a
// majority before returning it (Fig. 4 lines 31–39). In the absence of
// concurrent writes the write-back finds the timestamp already adopted
// everywhere and nobody logs. A nil value with ok semantics maps to the
// register's initial value ⊥.
func (nd *Node) Read(ctx context.Context, reg string, obs OpObserver) ([]byte, uint64, error) {
	nd.opMu.Lock()
	defer nd.opMu.Unlock()
	op, epoch, err := nd.beginOp(obs)
	if err != nil {
		return nil, 0, err
	}
	val, wit, err := nd.readProtocol(ctx, op, reg, false)
	if _, err := nd.endOp(op, epoch, obs, err, val, wit); err != nil {
		return nil, op, err
	}
	return val, op, nil
}

// writeRegularSW is the §VI single-writer write: no query round — the
// writer owns the sequence numbers. The new timestamp is minted from the
// writer's own (stable-backed) view plus the persisted recovery count, and
// propagated in one round that must include the writer's own
// acknowledgement: by ack time the writer's listener has logged the
// timestamp, so the view it restores after a crash never falls behind a
// completed write, which keeps timestamps strictly monotone — unfinished
// writes are out-minted by the recovery count exactly as in Fig. 5. One
// causal log (all adopters log in parallel), 2 communication steps.
func (nd *Node) writeRegularSW(ctx context.Context, op uint64, reg string, val []byte, batched bool) (tag.Tag, error) {
	if nd.id != RegularWriter {
		return tag.Tag{}, ErrNotWriter
	}
	// The writer's own view materializes lazily after a restart: the first
	// write loads the written/ record its listener logged, so the restored
	// view never falls behind a completed write even though recovery no
	// longer rebuilds the map eagerly.
	rs, _, err := nd.regView(reg)
	if err != nil {
		return tag.Tag{}, err
	}
	own := rs.tag
	nd.mu.Lock()
	rec := nd.rec
	nd.mu.Unlock()
	// Fig. 5's advancement rule applied to the writer's own view: the
	// recovery count out-mints any write the last incarnation left
	// unfinished.
	newTag := own.Next(nd.id, int64(rec), nd.hardenedRec(rec))
	if _, err := nd.runRound(ctx, op, wire.Envelope{
		Kind: wire.KindWrite, Reg: reg, Tag: newTag, Value: val,
	}, nd.id, batched); err != nil {
		return tag.Tag{}, err
	}
	return newTag, nil
}

// readProtocol returns the read value together with the tag under which it
// was adopted — the read's tag witness.
func (nd *Node) readProtocol(ctx context.Context, op uint64, reg string, batched bool) ([]byte, tag.Tag, error) {
	// Round 1: collect tagged values from a majority.
	acks, err := nd.runRound(ctx, op, wire.Envelope{Kind: wire.KindRead, Reg: reg}, -1, batched)
	if err != nil {
		return nil, tag.Tag{}, err
	}
	best := bestAck(acks)

	// §VI single-writer regular register: the read returns immediately —
	// no write-back round and no logging anywhere. Regularity does not
	// require reads to "write", which is exactly why the paper concludes
	// weaker registers are not worth emulating where logging dominates:
	// the atomic read also logs nothing unless it observes concurrency.
	if nd.kind == RegularSW {
		return best.Value, best.Tag, nil
	}

	depth := 0
	if nd.kind == Naive {
		// Straw man: the reader logs what it is about to write back.
		payload := encodeTagged(best.Tag, best.Value)
		if err := nd.storeLog(batched, recWStartPrefix+reg, payload); err != nil {
			return nil, tag.Tag{}, err
		}
		depth = causal.After(depth)
		nd.recordLog(op, depth, len(payload))
	}

	// Round 2: write the value with the highest timestamp back to a
	// majority, so the read's result is never lost even if the original
	// writer's propagation had only partially completed.
	_, err = nd.runRound(ctx, op, wire.Envelope{
		Kind: wire.KindWriteBack, Reg: reg, Tag: best.Tag, Value: best.Value, Depth: uint8(depth),
	}, -1, batched)
	if err != nil {
		return nil, tag.Tag{}, err
	}
	return best.Value, best.Tag, nil
}
