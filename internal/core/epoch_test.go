package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/netsim"
	"recmem/internal/stable"
)

// TestIncarnationEpochMonotoneAcrossRecoveries pins the in-process half of
// the incarnation contract (docs/adr/0006): the epoch starts at 1 on a
// first-ever boot and strictly increases across every crash+recover cycle,
// and completed operations witness the epoch they ran under.
func TestIncarnationEpochMonotoneAcrossRecoveries(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	tc := newTestCluster(t, 1, Persistent, Options{}, netsim.Options{})
	nd := tc.nodes[0]

	if got := nd.IncarnationEpoch(); got != 1 {
		t.Fatalf("first-boot epoch = %d, want 1", got)
	}
	prev := nd.IncarnationEpoch()
	for i := 0; i < 3; i++ {
		if !nd.Crash(nil) {
			t.Fatal("crash refused")
		}
		if err := nd.Recover(ctx, nil, nil); err != nil {
			t.Fatal(err)
		}
		got := nd.IncarnationEpoch()
		if got <= prev {
			t.Fatalf("cycle %d: epoch %d did not advance past %d", i, got, prev)
		}
		prev = got
	}

	// A completed operation is a witness for the epoch it ran under.
	_, _, inc, err := nd.RegisterRef("x").Write(ctx, []byte("v"), OpObserver{})
	if err != nil {
		t.Fatal(err)
	}
	if inc != nd.IncarnationEpoch() {
		t.Fatalf("write witnessed epoch %d, node reports %d", inc, nd.IncarnationEpoch())
	}
}

// TestIncarnationEpochSurvivesRestart pins the cross-process half: a node
// rebuilt over the same stable-storage directory — the recmem-node restart
// path — must come up past every epoch its dead incarnations burned, even
// though the volatile counter died with the process.
func TestIncarnationEpochSurvivesRestart(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dir := t.TempDir()
	ids := &atomic.Uint64{}

	boot := func() uint64 {
		t.Helper()
		nw, err := netsim.New(1, netsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer nw.Close()
		disk, err := stable.NewFileDisk(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer disk.Close()
		nd, err := NewNode(0, 1, Persistent,
			Options{RetransmitEvery: 10 * time.Millisecond},
			Deps{Endpoint: nw.Endpoint(0), Storage: disk, IDs: ids})
		if err != nil {
			t.Fatal(err)
		}
		defer nd.Close()
		// The recmem-node boot transition: crash+recover before serving,
		// which is also what mints (and persists) the new epoch.
		if !nd.Crash(nil) {
			t.Fatal("boot crash refused")
		}
		if err := nd.Recover(ctx, nil, nil); err != nil {
			t.Fatal(err)
		}
		return nd.IncarnationEpoch()
	}

	prev := uint64(0)
	for i := 0; i < 3; i++ {
		got := boot()
		if got <= prev {
			t.Fatalf("boot %d: epoch %d did not advance past %d", i, got, prev)
		}
		prev = got
	}
}
