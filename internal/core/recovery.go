package core

import (
	"context"
	"strings"

	"recmem/internal/stable"
	"recmem/internal/wire"
)

// runRecoveryProcedure executes the algorithm-specific part of recovery,
// after the volatile state has been restored from stable storage. The model
// places no bound on the messages or logs a recovery procedure may use.
func (nd *Node) runRecoveryProcedure(ctx context.Context) error {
	// Every recovery — regardless of algorithm — first mints a fresh
	// incarnation epoch, so the epoch a client observes in replies strictly
	// increases across each of the node's deaths (docs/adr/0006).
	if err := nd.mintIncarnation(); err != nil {
		return err
	}
	switch nd.kind {
	case Persistent, Naive:
		return nd.finishPendingWrites(ctx)
	case Transient, RegularSW:
		return nd.bumpRecoveryCounter()
	default:
		return ErrCannotRecover
	}
}

// mintIncarnation persists and adopts the next incarnation epoch. It mints
// from the volatile counter — not the persisted record — so in-process
// crash/recover cycles (which never re-read storage) still advance it; the
// volatile counter is monotone across the node's whole lifetime (Crash never
// wipes it), so the persisted record is too. The adoption below is NOT gated
// on still being in stateRecovering: once stored, the epoch is burned, and a
// retried recovery must mint past it or a later boot could duplicate it.
// This store is harness bookkeeping, not one of the paper's causal logs, so
// it is not reported to the causal meter.
func (nd *Node) mintIncarnation() error {
	nd.mu.Lock()
	newInc := nd.inc + 1
	nd.mu.Unlock()
	if err := nd.st.Store(recIncarnation, encodeEpoch(newInc)); err != nil {
		return err
	}
	nd.mu.Lock()
	if newInc > nd.inc {
		nd.inc = newInc
	}
	nd.mu.Unlock()
	return nil
}

// finishPendingWrites is Fig. 4's Recover (lines 40–47): for every register
// with a "writing" record, re-run the write's second round so the recorded
// (tag, value) reaches a majority. If the last write had in fact completed,
// this re-writes an old value with an old timestamp, which replaces nothing;
// if it had not, it completes the write before the process can invoke a new
// operation — which is what persistent atomicity requires. The paper notes
// this log sits outside read and write operations.
//
// The writing/ records are enumerated through the streaming scan, so the
// restart reads O(pending) names — a process has at most a handful of
// interrupted writes, however many registers it has adopted. The names are
// accumulated before any Retrieve: Scanner implementations stream under
// their internal locks, so the callback must not call back into the store.
func (nd *Node) finishPendingWrites(ctx context.Context) error {
	var names []string
	if err := stable.ScanRecords(nd.st, recWritingPrefix, func(name string) error {
		names = append(names, name)
		return nil
	}); err != nil {
		return err
	}
	pending := 0
	for _, name := range names {
		data, ok, err := nd.st.Retrieve(name)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		t, v, err := decodeTagged(data)
		if err != nil {
			return err
		}
		pending++
		reg := strings.TrimPrefix(name, recWritingPrefix)
		op := nd.newID()
		if _, err := nd.round(ctx, op, wire.Envelope{
			Kind: wire.KindWrite, Reg: reg, Tag: t, Value: v,
		}); err != nil {
			return err
		}
	}
	nd.mu.Lock()
	nd.lastRecovery = RecoveryStats{PendingWrites: pending}
	nd.mu.Unlock()
	return nil
}

// bumpRecoveryCounter is Fig. 5's Recover (lines 16–22): increment the
// persisted recovery count. Subsequent writes add it to the queried sequence
// number, which keeps the writer's timestamps fresh without a pre-log on the
// write's critical path — the one extra log happens here, outside any
// operation.
func (nd *Node) bumpRecoveryCounter() error {
	op := nd.newID()
	newRec := nd.RecoveryCount() + 1
	payload := encodeCounter(newRec)
	if err := nd.st.Store(recRecovered, payload); err != nil {
		return err
	}
	nd.recordLog(op, 1, len(payload))
	nd.mu.Lock()
	if nd.state == stateRecovering {
		nd.rec = newRec
	}
	nd.lastRecovery = RecoveryStats{RecoveryCount: newRec}
	nd.mu.Unlock()
	return nil
}
