package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"recmem/internal/netsim"
	"recmem/internal/stable"
	"recmem/internal/trace"
	"recmem/internal/wire"
)

// TestRecoverAbortFallsBackToDown: a recovery whose procedure cannot
// complete (no reachable majority) returns the process to the crashed state
// — with the abort callback fired — and can be retried successfully later.
func TestRecoverAbortFallsBackToDown(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	// Give node 0 a writing record so its recovery needs a quorum round.
	if _, err := tc.write(0, "x", "v"); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		tc.crash(p)
	}
	tc.net.SetDown(0, false)
	aborted := false
	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := tc.nodes[0].Recover(short, nil, func() { aborted = true })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("lone recover: %v", err)
	}
	if !aborted {
		t.Fatal("abort callback did not fire")
	}
	if tc.nodes[0].Up() {
		t.Fatal("node up after aborted recovery")
	}
	// Bring a peer back; the retry completes.
	errCh := make(chan error, 2)
	go func() { errCh <- tc.recover(0) }()
	go func() { errCh <- tc.recover(1) }()
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("retry: %v", err)
		}
	}
	if got, _, err := tc.read(0, "x"); err != nil || got != "v" {
		t.Fatalf("read after retried recovery = %q, %v", got, err)
	}
}

// TestCrashDuringRecoveryProcedure: a crash arriving while the recovery
// write-back is in flight interrupts it; the abort callback must NOT fire
// (the crash already transitioned the state) and Recover reports ErrCrashed.
func TestCrashDuringRecoveryProcedure(t *testing.T) {
	tc := newTestCluster(t, 3, Persistent, Options{}, netsim.Options{})
	if _, err := tc.write(0, "x", "v"); err != nil {
		t.Fatal(err)
	}
	tc.crash(0)
	// Stall the recovery write-back: drop its W messages.
	tc.net.SetFilter(func(e wire.Envelope) bool { return !(e.Kind == wire.KindWrite && e.From == 0) })
	tc.net.SetDown(0, false)
	done := make(chan error, 1)
	aborted := false
	go func() {
		done <- tc.nodes[0].Recover(tc.ctx(), nil, func() { aborted = true })
	}()
	time.Sleep(20 * time.Millisecond)
	tc.nodes[0].Crash(nil)
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("recover returned %v, want ErrCrashed", err)
	}
	if aborted {
		t.Fatal("abort callback fired although crash handled the transition")
	}
	tc.net.SetFilter(nil)
	if err := tc.recover(0); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if got, _, _ := tc.read(0, "x"); got != "v" {
		t.Fatalf("read = %q", got)
	}
}

// TestTraceAtNodeLevel: a node wired with a trace ring records protocol
// events, including recovery aborts.
func TestTraceAtNodeLevel(t *testing.T) {
	ring := trace.NewRing(1024)
	nw, err := netsim.New(1, netsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	var ids atomic.Uint64
	nd, err := NewNode(0, 1, Transient, Options{RetransmitEvery: 5 * time.Millisecond}, Deps{
		Endpoint: nw.Endpoint(0),
		Storage:  stable.NewMemDisk(stable.Profile{}),
		IDs:      &ids,
		Trace:    ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := nd.Write(ctx, "x", []byte("v"), OpObserver{}); err != nil {
		t.Fatal(err)
	}
	nd.Crash(nil)
	if err := nd.Recover(ctx, nil, nil); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]bool)
	for _, e := range ring.Snapshot() {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"send", "recv", "store", "crash", "recover"} {
		if !kinds[want] {
			t.Fatalf("trace missing %q events (got %v)", want, kinds)
		}
	}
}

// TestAlgorithmKindStrings covers the enum stringers, including the unknown
// fallbacks used in diagnostics.
func TestAlgorithmKindStrings(t *testing.T) {
	want := map[AlgorithmKind]string{
		CrashStop:         "crash-stop",
		Transient:         "transient",
		Persistent:        "persistent",
		Naive:             "naive",
		RegularSW:         "regular-sw",
		AlgorithmKind(42): "AlgorithmKind(42)",
		AlgorithmKind(-1): "AlgorithmKind(-1)",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), got, s)
		}
	}
	if CrashStop.Recovers() || !RegularSW.Recovers() {
		t.Fatal("Recovers wrong")
	}
	_ = fmt.Sprintf("%v", Persistent) // Stringer integration
}
