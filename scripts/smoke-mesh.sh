#!/usr/bin/env bash
# smoke-mesh.sh: boot a real 3-node recmem-node mesh on localhost, drive it
# through the binary remote client (write / read / crash / recover / a
# pipelined bench), run a VERIFIED torture round (recording clients, merged
# per-client histories model-checked — docs/adr/0004), run multi-round
# KILL-RESTART torture — once on wal disks and once on sharded disks — in
# which recmem-torture SIGKILLs and restarts real
# node processes mid-run (docs/adr/0005), infers the restarts from the
# incarnation epochs on the replies (docs/adr/0006) and still verifies the
# merged history against TRANSIENT atomicity, prove the checker has teeth
# against a mesh with a stale-serving node AND one with a frozen incarnation
# epoch, and assert the examples keep building. This is the CI proof that the same Client API the
# simulator serves works — and is verifiably correct — against a live TCP
# deployment that really dies and really recovers.
#
# SMOKE_VERIFY_ONLY=1 skips the client-CLI exercises and the kill round and
# runs only the verification half (make verify-mesh).
# SMOKE_KILL_ONLY=1 runs only the kill-restart round (make kill-mesh).
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=${SMOKE_BASE_PORT:-7610}
P0=$((BASE)) P1=$((BASE + 1)) P2=$((BASE + 2))
C0=$((BASE + 10)) C1=$((BASE + 11)) C2=$((BASE + 12))
# Second mesh for the dishonest-node control.
S0=$((BASE + 20)) S1=$((BASE + 21)) S2=$((BASE + 22))
D0=$((BASE + 30)) D1=$((BASE + 31)) D2=$((BASE + 32))
# Third mesh — spawned and owned by recmem-torture — for the kill round.
K0=$((BASE + 40)) K1=$((BASE + 41)) K2=$((BASE + 42))
KC0=$((BASE + 50)) KC1=$((BASE + 51)) KC2=$((BASE + 52))
# Fourth mesh for the frozen-epoch dishonest-node control.
F0=$((BASE + 60)) F1=$((BASE + 61)) F2=$((BASE + 62))
E0=$((BASE + 70)) E1=$((BASE + 71)) E2=$((BASE + 72))
WORK=$(mktemp -d)
BIN="$WORK/bin"
mkdir -p "$BIN"

pids=()
cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait "${pids[@]}" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN" ./cmd/recmem-node ./cmd/recmem-client ./cmd/recmem-torture

# kill_round <disk>: the process-death acceptance scenario. recmem-torture
# spawns its own 3-node transient-algorithm mesh on the given storage engine
# (wal and sharded both take this round), drives the verified workload
# over TWO rounds through run-lifetime clients, SIGKILLs node processes
# mid-run and re-execs them (each restart runs the recovery procedure from
# its stable store before reopening the control port, minting a fresh
# incarnation epoch — docs/adr/0006), and the merged recorded history —
# spanning real process death, with the restarts inferred from the epoch
# stamps on the replies — must pass the TRANSIENT atomicity checker. Round 2
# verifies against round 1's committed state (the recording group's
# continuation), not an amnesiac blank slate. The reconnect layer in the
# remote client is what lets the same client handles ride the outage:
# ErrCrashed/ErrDown during it, plain successes after, no re-dial in the
# scenario code.
kill_round() {
    local disk=$1
    echo "== KILL-RESTART rounds: SIGKILL + re-exec real node processes mid-run, verified (transient, $disk disks, 10k-register namespace)"
    local kpeers="127.0.0.1:$K0,127.0.0.1:$K1,127.0.0.1:$K2"
    local kcmd=""
    for i in 0 1 2; do
        local ctrl_var="KC$i"
        local cmd="$BIN/recmem-node -id $i -peers $kpeers -control 127.0.0.1:${!ctrl_var} -dir $WORK/k$disk$i -disk $disk -algorithm transient -retransmit 20ms"
        if [ -z "$kcmd" ]; then kcmd="$cmd"; else kcmd="$kcmd;;$cmd"; fi
    done
    # -populate 10000: every node adopts a 10k-register namespace before the
    # first SIGKILL, so the restarts' readiness probes double as a lazy-
    # recovery check — an eager restart would reload the whole namespace
    # before reopening its control port (docs/adr/0009).
    "$BIN/recmem-torture" -remote "127.0.0.1:$KC0,127.0.0.1:$KC1,127.0.0.1:$KC2" \
        -ops 120 -rounds 2 -async 8 -faults 600ms -seed 11 -verify -populate 10000 \
        -kill "$kcmd" -kill-cycles 2 -kill-delay 150ms -kill-down 150ms
}

kill_rounds() {
    kill_round wal
    kill_round sharded
}

if [ "${SMOKE_KILL_ONLY:-0}" = "1" ]; then
    kill_rounds
    echo "mesh kill-restart: OK"
    exit 0
fi

# start_node <mesh-name> <id> <peer-list> <control-addr> [extra flags...]
start_node() {
    local name=$1 id=$2 peerlist=$3 ctrl=$4
    shift 4
    "$BIN/recmem-node" -id "$id" -peers "$peerlist" \
        -control "$ctrl" -dir "$WORK/$name$id" -disk wal \
        -retransmit 20ms "$@" >"$WORK/$name$id.log" 2>&1 &
    pids+=($!)
}

client() { "$BIN/recmem-client" -node "127.0.0.1:$1" -timeout 30s "${@:2}"; }

wait_ports() {
    for port in "$@"; do
        for attempt in $(seq 1 50); do
            if client "$port" ping >/dev/null 2>&1; then break; fi
            if [ "$attempt" -eq 50 ]; then
                echo "node on port $port never became reachable" >&2
                cat "$WORK"/*.log >&2
                exit 1
            fi
            sleep 0.2
        done
    done
}

echo "== start 3-node mesh (persistent algorithm, wal disks)"
PEERS="127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2"
for i in 0 1 2; do
    ctrl_var="C$i"
    start_node n "$i" "$PEERS" "127.0.0.1:${!ctrl_var}"
done

echo "== wait for the control ports"
wait_ports "$C0" "$C1" "$C2"

if [ "${SMOKE_VERIFY_ONLY:-0}" != "1" ]; then
    echo "== info"
    client "$C0" info

    echo "== write at node 0, read at nodes 1 and 2"
    client "$C0" write x hello-mesh
    test "$(client "$C1" read x)" = "hello-mesh"
    test "$(client "$C2" read x)" = "hello-mesh"

    echo "== crash node 1, mesh keeps serving, node 1 refuses ops"
    client "$C1" crash
    if client "$C1" read x >/dev/null 2>&1; then
        echo "read on a crashed node exited zero" >&2
        exit 1
    fi
    client "$C0" write x while-down
    test "$(client "$C2" read x)" = "while-down"

    echo "== recover node 1, it catches up"
    client "$C1" recover
    test "$(client "$C1" read x)" = "while-down"

    echo "== pipelined bench through one connection (batching engine over TCP)"
    client "$C0" bench 100 32
fi

echo "== VERIFIED torture round against the live mesh (crash/recover + model check)"
"$BIN/recmem-torture" -remote "127.0.0.1:$C0,127.0.0.1:$C1,127.0.0.1:$C2" \
    -ops 30 -rounds 1 -async 8 -faults 500ms -seed 7 -verify

if [ "${SMOKE_VERIFY_ONLY:-0}" != "1" ]; then
    kill_rounds
fi

echo "== start a second mesh whose node 1 serves stale reads (-stale-reads)"
SPEERS="127.0.0.1:$S0,127.0.0.1:$S1,127.0.0.1:$S2"
for i in 0 1 2; do
    ctrl_var="D$i"
    extra=""
    if [ "$i" -eq 1 ]; then extra="-stale-reads"; fi
    # shellcheck disable=SC2086 — $extra is intentionally word-split (and
    # an empty array would trip `set -u` on bash 3.2).
    start_node s "$i" "$SPEERS" "127.0.0.1:${!ctrl_var}" $extra
done
wait_ports "$D0" "$D1" "$D2"

echo "== the verified torture round must FAIL against the dishonest mesh"
if "$BIN/recmem-torture" -remote "127.0.0.1:$D0,127.0.0.1:$D1,127.0.0.1:$D2" \
    -ops 20 -rounds 1 -faults 0s -seed 7 -verify >"$WORK/stale.out" 2>&1; then
    echo "stale-serving mesh PASSED verification — the checker has no teeth" >&2
    cat "$WORK/stale.out" >&2
    exit 1
fi
if ! grep -q "violation" "$WORK/stale.out"; then
    echo "stale mesh failed for the wrong reason:" >&2
    cat "$WORK/stale.out" >&2
    exit 1
fi
echo "   caught: $(grep -m1 -o 'violation on register[^]]*' "$WORK/stale.out" | head -c 100)"

echo "== start a third mesh whose node 1 freezes its incarnation epoch (-freeze-epoch)"
FPEERS="127.0.0.1:$F0,127.0.0.1:$F1,127.0.0.1:$F2"
for i in 0 1 2; do
    ctrl_var="E$i"
    extra=""
    if [ "$i" -eq 1 ]; then extra="-freeze-epoch"; fi
    # shellcheck disable=SC2086
    start_node f "$i" "$FPEERS" "127.0.0.1:${!ctrl_var}" $extra
done
wait_ports "$E0" "$E1" "$E2"

echo "== a verified round with crash injection must FAIL against the frozen-epoch mesh"
if "$BIN/recmem-torture" -remote "127.0.0.1:$E0,127.0.0.1:$E1,127.0.0.1:$E2" \
    -ops 30 -rounds 1 -faults 500ms -seed 7 -verify >"$WORK/frozen.out" 2>&1; then
    echo "frozen-epoch mesh PASSED verification — the epoch inference has no teeth" >&2
    cat "$WORK/frozen.out" >&2
    exit 1
fi
if ! grep -q "violation" "$WORK/frozen.out"; then
    echo "frozen-epoch mesh failed for the wrong reason:" >&2
    cat "$WORK/frozen.out" >&2
    exit 1
fi
echo "   caught: $(grep -m1 -o 'epoch violation[^—]*' "$WORK/frozen.out" | head -c 100)"

if [ "${SMOKE_VERIFY_ONLY:-0}" != "1" ]; then
    echo "== examples still build"
    go build ./examples/...
fi

echo "mesh smoke: OK"
