#!/usr/bin/env bash
# smoke-mesh.sh: boot a real 3-node recmem-node mesh on localhost, drive it
# through the binary remote client (write / read / crash / recover / a
# pipelined bench), and assert the examples keep building. This is the CI
# proof that the same Client API the simulator serves works against a live
# TCP deployment.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=${SMOKE_BASE_PORT:-7610}
P0=$((BASE)) P1=$((BASE + 1)) P2=$((BASE + 2))
C0=$((BASE + 10)) C1=$((BASE + 11)) C2=$((BASE + 12))
WORK=$(mktemp -d)
BIN="$WORK/bin"
mkdir -p "$BIN"

cleanup() {
    kill "${pids[@]}" 2>/dev/null || true
    wait "${pids[@]}" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$BIN" ./cmd/recmem-node ./cmd/recmem-client ./cmd/recmem-torture

echo "== start 3-node mesh (persistent algorithm, wal disks)"
PEERS="127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2"
pids=()
for i in 0 1 2; do
    ctrl_var="C$i"
    "$BIN/recmem-node" -id "$i" -peers "$PEERS" \
        -control "127.0.0.1:${!ctrl_var}" -dir "$WORK/n$i" -disk wal \
        -retransmit 20ms >"$WORK/node$i.log" 2>&1 &
    pids+=($!)
done

client() { "$BIN/recmem-client" -node "127.0.0.1:$1" -timeout 30s "${@:2}"; }

echo "== wait for the control ports"
for port in $C0 $C1 $C2; do
    for attempt in $(seq 1 50); do
        if client "$port" ping >/dev/null 2>&1; then break; fi
        if [ "$attempt" -eq 50 ]; then
            echo "node on port $port never became reachable" >&2
            cat "$WORK"/node*.log >&2
            exit 1
        fi
        sleep 0.2
    done
done

echo "== info"
client "$C0" info

echo "== write at node 0, read at nodes 1 and 2"
client "$C0" write x hello-mesh
test "$(client "$C1" read x)" = "hello-mesh"
test "$(client "$C2" read x)" = "hello-mesh"

echo "== crash node 1, mesh keeps serving, node 1 refuses ops"
client "$C1" crash
if client "$C1" read x >/dev/null 2>&1; then
    echo "read on a crashed node exited zero" >&2
    exit 1
fi
client "$C0" write x while-down
test "$(client "$C2" read x)" = "while-down"

echo "== recover node 1, it catches up"
client "$C1" recover
test "$(client "$C1" read x)" = "while-down"

echo "== pipelined bench through one connection (batching engine over TCP)"
client "$C0" bench 100 32

echo "== torture scenario against the live mesh"
"$BIN/recmem-torture" -remote "127.0.0.1:$C0,127.0.0.1:$C1,127.0.0.1:$C2" \
    -ops 30 -rounds 1 -async 8 -faults 500ms -seed 7

echo "== examples still build"
go build ./examples/...

echo "mesh smoke: OK"
