#!/usr/bin/env bash
# check-escapes.sh — heap-escape regression gate for the hot-path packages.
#
# Runs the compiler's escape analysis (-gcflags=-m) over internal/core and
# remote, normalizes every "escapes to heap" / "moved to heap" diagnostic to
# "file: expression" (dropping line/column, which drift with every edit),
# and diffs the set against scripts/escape-allowlist.txt.
#
# Exit 1 when a NEW escape appears: an allocation crept onto the dispatch or
# round hot path that the allowlist does not bless. Escapes that disappear
# are reported as stale allowlist entries but do not fail the run — prune
# them when convenient. CI runs this as a non-blocking report; locally,
# `make escapes` is the pre-commit check.
set -euo pipefail

root="$(git rev-parse --show-toplevel)"
cd "$root"
allowlist="scripts/escape-allowlist.txt"
pkgs=(./internal/core/ ./remote/)

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# -m prints diagnostics for the packages being compiled; force a rebuild so
# cached packages still report.
go build -a -gcflags='-m' "${pkgs[@]}" 2>&1 |
    grep -E 'escapes to heap|moved to heap' |
    sed -E 's/^([^:]+):[0-9]+:[0-9]+: (.*) (escapes to heap|moved to heap)$/\1: \2/' |
    sort -u > "$tmp/current.txt"

grep -vE '^\s*(#|$)' "$allowlist" | sort -u > "$tmp/allowed.txt"

new="$(comm -23 "$tmp/current.txt" "$tmp/allowed.txt" || true)"
stale="$(comm -13 "$tmp/current.txt" "$tmp/allowed.txt" || true)"

if [ -n "$stale" ]; then
    echo "stale allowlist entries (escape no longer occurs — prune when convenient):"
    echo "$stale" | sed 's/^/  /'
    echo
fi

if [ -n "$new" ]; then
    echo "NEW heap escapes on the hot path (not in $allowlist):"
    echo "$new" | sed 's/^/  /'
    echo
    echo "Fix the escape (keep the value on the stack, pool it, or hoist the"
    echo "allocation off the per-op path) or — if it is deliberate — add the"
    echo "line above to $allowlist with a comment saying why."
    exit 1
fi

echo "escape check: $(wc -l < "$tmp/current.txt") known escapes, none new."
