#!/usr/bin/env bash
# bench-compare.sh — interleaved HEAD-vs-baseline comparison of the remote
# hot-path benchmarks.
#
# Usage: scripts/bench-compare.sh [baseline-ref]      (default HEAD~1)
#
# Builds the remote package's test binary twice — once from the baseline ref
# (in a throwaway git worktree) and once from the working tree — then runs
# them INTERLEAVED (base, head, base, head, …) rather than back to back, so
# slow drift of the machine (thermal state, background load) lands evenly on
# both sides instead of biasing whichever ran second. The collected samples
# go through benchstat when it is installed; otherwise a built-in awk
# summary reports per-benchmark means and deltas.
#
# Knobs (environment):
#   COUNT      samples per side               (default 5)
#   BENCH      -test.bench regexp             (default BenchmarkRemote)
#   BENCHTIME  -test.benchtime per sample     (default 1s)
#   OUT_DIR    keep base.txt/head.txt + summary.txt here (for CI artifacts)
set -euo pipefail

BASE_REF="${1:-HEAD~1}"
COUNT="${COUNT:-5}"
BENCH="${BENCH:-BenchmarkRemote}"
BENCHTIME="${BENCHTIME:-1s}"
OUT_DIR="${OUT_DIR:-}"

root="$(git rev-parse --show-toplevel)"
tmp="$(mktemp -d)"
cleanup() {
    git -C "$root" worktree remove --force "$tmp/base" >/dev/null 2>&1 || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "bench-compare: $BASE_REF vs working tree ($COUNT interleaved samples, $BENCH, $BENCHTIME each)"

git -C "$root" worktree add --detach "$tmp/base" "$BASE_REF" >/dev/null 2>&1
(cd "$tmp/base" && go test -c -o "$tmp/base.test" ./remote/)
(cd "$root" && go test -c -o "$tmp/head.test" ./remote/)

: > "$tmp/base.txt"
: > "$tmp/head.txt"
for i in $(seq "$COUNT"); do
    echo "  sample $i/$COUNT"
    "$tmp/base.test" -test.run '^$' -test.bench "$BENCH" -test.benchmem \
        -test.benchtime "$BENCHTIME" >> "$tmp/base.txt"
    "$tmp/head.test" -test.run '^$' -test.bench "$BENCH" -test.benchmem \
        -test.benchtime "$BENCHTIME" >> "$tmp/head.txt"
done

summarize() {
    if command -v benchstat >/dev/null 2>&1; then
        benchstat "$tmp/base.txt" "$tmp/head.txt"
    else
        echo "(benchstat not installed; built-in mean comparison)"
        awk '
            FNR == 1 { file++ }
            /^Benchmark/ {
                name = $1
                for (i = 2; i <= NF; i++) {
                    if ($(i) == "ns/op")     { ns[file, name] += $(i-1); n[file, name]++ }
                    if ($(i) == "allocs/op") { al[file, name] += $(i-1) }
                }
                seen[name] = 1
            }
            END {
                printf "%-30s %14s %14s %9s %14s %14s\n", "benchmark", "base ns/op", "head ns/op", "delta", "base allocs", "head allocs"
                for (name in seen) {
                    if (!n[1, name] || !n[2, name]) continue
                    b = ns[1, name] / n[1, name]; h = ns[2, name] / n[2, name]
                    ba = al[1, name] / n[1, name]; ha = al[2, name] / n[2, name]
                    printf "%-30s %14.0f %14.0f %8.1f%% %14.1f %14.1f\n", name, b, h, (h - b) * 100.0 / b, ba, ha
                }
            }' "$tmp/base.txt" "$tmp/head.txt"
    fi
}

echo
summarize | tee "$tmp/summary.txt"

if [ -n "$OUT_DIR" ]; then
    mkdir -p "$OUT_DIR"
    cp "$tmp/base.txt" "$OUT_DIR/bench-base.txt"
    cp "$tmp/head.txt" "$OUT_DIR/bench-head.txt"
    cp "$tmp/summary.txt" "$OUT_DIR/bench-compare.txt"
fi
