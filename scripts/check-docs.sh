#!/usr/bin/env bash
# check-docs.sh: keep the prose honest. The README and the ADRs name CLI
# flags and exported Go identifiers; when a refactor removes or renames one,
# the docs silently rot. This check fails CI when documentation references
# something the source no longer defines:
#
#   1. every backtick-quoted `-flag` in README.md / docs/ must be registered
#      by some command under cmd/ (flag.String/Bool/... call), and
#   2. every backtick-quoted dotted identifier (`remote.ServerOptions`,
#      `history.Merge`, ...) must have each exported segment present as a
#      word somewhere in the Go sources.
#
# Only backtick-quoted inline code is checked — prose hyphens and shell
# transcripts stay free-form. The check is intentionally one-directional:
# undocumented flags are fine, documented-but-gone flags are not.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md)
while IFS= read -r f; do docs+=("$f"); done < <(find docs -name '*.md' | sort)

fail=0

# 1. Documented flags must exist. Flag registrations look like
#    fs.Bool("freeze-epoch", ...) / fs.Duration("kill-down", ...).
defined_flags=$(grep -rhoE '\.[A-Za-z0-9]+\("[a-z][a-z0-9-]*"' cmd/*/main.go |
    grep -oE '"[a-z][a-z0-9-]*"' | tr -d '"' | sort -u)
doc_flags=$(grep -hoE '`-[a-z][a-z0-9-]*`' "${docs[@]}" |
    tr -d '\`' | sed 's/^-//' | sort -u)
for f in $doc_flags; do
    if ! grep -qx "$f" <<<"$defined_flags"; then
        echo "docs reference flag \`-$f\` but no command under cmd/ defines it" >&2
        grep -ln -- "\`-$f\`" "${docs[@]}" >&2
        fail=1
    fi
done

# 2. Documented identifiers must exist: each CamelCase segment of a
#    backticked dotted token must appear as a word in the Go sources.
doc_idents=$(grep -hoE '`[A-Za-z][A-Za-z0-9]*(\.[A-Za-z][A-Za-z0-9]*)+`' "${docs[@]}" |
    tr -d '\`' | sort -u)
for ident in $doc_idents; do
    case "$ident" in
    *.go | *.md | *.sh | *.json | *.yml) continue ;; # file names, not identifiers
    esac
    IFS='.' read -ra segs <<<"$ident"
    for seg in "${segs[@]}"; do
        case "$seg" in [a-z]*) continue ;; esac # package names / fields in prose
        if ! grep -rqw --include='*.go' "$seg" .; then
            echo "docs reference \`$ident\` but \`$seg\` appears nowhere in the Go sources" >&2
            grep -ln -- "$ident" "${docs[@]}" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "doc check failed: update the documentation (or restore the symbol)" >&2
    exit 1
fi
echo "doc check: OK (${#docs[@]} files, $(wc -w <<<"$doc_flags") flags, $(wc -w <<<"$doc_idents") identifiers)"
