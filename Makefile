GO ?= go

.PHONY: all build test race bench bench-disk bench-handle smoke fmt vet ci scenarios

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

# bench-disk compares the storage engines: per-record store cost and fsync
# amortization (BenchmarkFileStore* vs BenchmarkWALStore*), feeding the
# BENCH_*.json trajectories.
bench-disk:
	$(GO) test -bench 'Store' -benchtime=100x -run '^$$' ./internal/stable/

# bench-handle demonstrates the cached Register-handle hot path against the
# per-operation string-map resolution it replaced.
bench-handle:
	$(GO) test -bench 'BenchmarkStringLookup|BenchmarkRegisterHandle' -benchtime=1000000x -run '^$$' ./internal/core/

# smoke boots a real 3-node recmem-node mesh and drives it through the
# remote client: the CI proof that the Client API works over live TCP.
smoke:
	./scripts/smoke-mesh.sh

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# scenarios runs the long-form cluster scenario suite (the Figures 1-3
# schedules and the recovery scenarios) used by the nightly CI job.
scenarios:
	$(GO) test -run Scenario -v ./internal/cluster/...

# ci is exactly what .github/workflows/ci.yml runs on every push.
ci: build vet fmt test
