GO ?= go

.PHONY: all build test race bench bench-disk bench-handle bench-remote bench-namespace bench-compare escapes smoke verify-mesh kill-mesh fmt vet docs-check ci scenarios

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchtime=1x -run '^$$' ./...

# bench-disk compares the storage engines: per-record store cost and fsync
# amortization (BenchmarkFileStore* vs BenchmarkWALStore*), feeding the
# BENCH_*.json trajectories.
bench-disk:
	$(GO) test -bench 'Store' -benchtime=100x -run '^$$' ./internal/stable/

# bench-handle demonstrates the cached Register-handle hot path against the
# per-operation string-map resolution it replaced.
bench-handle:
	$(GO) test -bench 'BenchmarkStringLookup|BenchmarkRegisterHandle' -benchtime=1000000x -run '^$$' ./internal/core/

# bench-remote measures the remote hot path over a loopback mesh (ops/s,
# ns/op, allocs/op for the closed-loop write, closed-loop read and pipelined
# workloads) and appends the run to the BENCH_remote.json trajectory at the
# repo root, stamped with the current commit.
bench-remote:
	$(GO) run ./cmd/recmem-bench -experiment remote -writes 2000 -batch 32 \
		-json BENCH_remote.json -commit $$(git rev-parse --short HEAD)

# bench-namespace sweeps register counts (1k to 1M) over the wal and sharded
# storage engines (load throughput, cold storage recovery, node-level reopen —
# a real core.Node booted over the populated store, docs/adr/0009 — and
# post-recovery probe latency) and appends the rows to the
# BENCH_namespace.json trajectory at the repo root, stamped with the current
# commit. Every entry is its own wal-vs-sharded before/after comparison.
bench-namespace:
	$(GO) run ./cmd/recmem-bench -experiment namespace -batch 32 \
		-json BENCH_namespace.json -commit $$(git rev-parse --short HEAD)

# bench-compare runs the remote benchmarks of BASE (default HEAD~1) and the
# working tree interleaved, then reports per-benchmark deltas — through
# benchstat when installed, a built-in mean comparison otherwise. Nightly CI
# uploads the report as an artifact.
BASE ?= HEAD~1
bench-compare:
	scripts/bench-compare.sh $(BASE)

# smoke boots a real 3-node recmem-node mesh and drives it through the
# remote client, then runs the VERIFIED live-mesh torture round (recording
# clients + tag-witness merge + model check, docs/adr/0004), the
# KILL-RESTART round (real SIGKILL + re-exec of node processes mid-run,
# docs/adr/0005), and the stale-node negative control: the CI proof that
# the Client API works — and is verifiably correct — over a live TCP
# deployment that really dies and really recovers.
smoke:
	./scripts/smoke-mesh.sh

# verify-mesh runs only the verification half of the mesh smoke: boot the
# mesh, run `recmem-torture -remote -verify`, and prove a stale-serving
# node fails the check.
verify-mesh:
	SMOKE_VERIFY_ONLY=1 ./scripts/smoke-mesh.sh

# kill-mesh runs only the kill-restart rounds: recmem-torture spawns a mesh
# (once on wal disks, once on sharded disks), SIGKILLs and re-execs real
# node processes mid-run, and the merged recorded history must still pass
# the atomicity checker.
kill-mesh:
	SMOKE_KILL_ONLY=1 ./scripts/smoke-mesh.sh

# escapes diffs the compiler's escape analysis over the hot-path packages
# (internal/core, remote) against scripts/escape-allowlist.txt: a new heap
# escape on the dispatch/round path fails locally; CI runs it non-blocking.
escapes:
	./scripts/check-escapes.sh

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# docs-check fails when README/ADR prose references CLI flags or exported
# identifiers the source no longer defines — documentation rot is a CI
# failure, not a review nit.
docs-check:
	./scripts/check-docs.sh

# scenarios runs the long-form cluster scenario suite (the Figures 1-3
# schedules and the recovery scenarios) used by the nightly CI job.
scenarios:
	$(GO) test -run Scenario -v ./internal/cluster/...

# ci is exactly what .github/workflows/ci.yml runs on every push.
ci: build vet fmt docs-check test
