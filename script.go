package recmem

import (
	"sync"

	"recmem/internal/wire"
)

// Network scripting: deterministic control over message flow, used by demos
// and tests to reproduce the paper's runs (Figures 1–3) — e.g. "the writer's
// propagation reaches only p3" or "the read's quorum is {2,3,4}". Production
// use of the library never needs these.

type gate struct {
	mu         sync.Mutex
	installed  bool
	partition  map[int32]bool
	ackAllow   map[int32]map[int32]bool
	writeAllow map[int32]map[int32]bool
}

func (c *Cluster) gateLocked() *gate {
	if c.script == nil {
		c.script = &gate{
			partition:  make(map[int32]bool),
			ackAllow:   make(map[int32]map[int32]bool),
			writeAllow: make(map[int32]map[int32]bool),
		}
	}
	if !c.script.installed {
		c.script.installed = true
		c.inner.Net().SetFilter(c.script.filter)
	}
	return c.script
}

func (g *gate) filter(e wire.Envelope) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.partition[e.From] || g.partition[e.To] {
		return e.From == e.To // loopback still works inside a partition
	}
	if e.Kind.IsAck() {
		if allowed := g.ackAllow[e.To]; allowed != nil && !allowed[e.From] {
			return false
		}
		return true
	}
	if e.Kind == wire.KindWrite {
		if allowed := g.writeAllow[e.From]; allowed != nil && !allowed[e.To] {
			return false
		}
	}
	return true
}

func toSet(ids []int) map[int32]bool {
	m := make(map[int32]bool, len(ids))
	for _, id := range ids {
		m[int32(id)] = true
	}
	return m
}

// Partition disconnects a process from all others (it stays up but cannot
// exchange messages) until Heal.
func (c *Cluster) Partition(proc int) {
	c.scriptMu.Lock()
	g := c.gateLocked()
	c.scriptMu.Unlock()
	g.mu.Lock()
	g.partition[int32(proc)] = true
	g.mu.Unlock()
}

// Heal reconnects a partitioned process.
func (c *Cluster) Heal(proc int) {
	c.scriptMu.Lock()
	g := c.gateLocked()
	c.scriptMu.Unlock()
	g.mu.Lock()
	delete(g.partition, int32(proc))
	g.mu.Unlock()
}

// RestrictWritePropagation limits the destinations that receive writer's
// write-round messages (W), creating a partially propagated write. Read
// write-backs and queries are unaffected.
func (c *Cluster) RestrictWritePropagation(writer int, dests ...int) {
	c.scriptMu.Lock()
	g := c.gateLocked()
	c.scriptMu.Unlock()
	g.mu.Lock()
	g.writeAllow[int32(writer)] = toSet(dests)
	g.mu.Unlock()
}

// RestrictAcks pins the quorums of operations running at proc: only
// acknowledgements from the listed senders are delivered to it.
func (c *Cluster) RestrictAcks(proc int, senders ...int) {
	c.scriptMu.Lock()
	g := c.gateLocked()
	c.scriptMu.Unlock()
	g.mu.Lock()
	g.ackAllow[int32(proc)] = toSet(senders)
	g.mu.Unlock()
}

// ClearNetworkScript lifts all Partition/Restrict rules.
func (c *Cluster) ClearNetworkScript() {
	c.scriptMu.Lock()
	g := c.script
	c.scriptMu.Unlock()
	if g == nil {
		return
	}
	g.mu.Lock()
	g.partition = make(map[int32]bool)
	g.ackAllow = make(map[int32]map[int32]bool)
	g.writeAllow = make(map[int32]map[int32]bool)
	g.mu.Unlock()
}
