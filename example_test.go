package recmem_test

import (
	"context"
	"fmt"
	"log"

	"recmem"
)

// ExampleNew emulates a persistent-atomic register over five simulated
// crash-recovery processes: a write at one process is read at another, the
// writer crashes and recovers, and the recorded history is verified.
func ExampleNew() {
	c, err := recmem.New(5, recmem.PersistentAtomic)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Process(0).Write(ctx, "x", []byte("hello")); err != nil {
		log.Fatal(err)
	}
	val, err := c.Process(3).Read(ctx, "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s\n", val)

	c.Process(0).Crash()
	if err := c.Process(0).Recover(ctx); err != nil {
		log.Fatal(err)
	}
	val, err = c.Process(0).Read(ctx, "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %s\n", val)

	fmt.Println("verified:", c.Verify() == nil)
	// Output:
	// read: hello
	// after recovery: hello
	// verified: true
}
