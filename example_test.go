package recmem_test

import (
	"context"
	"fmt"
	"log"

	"recmem"
)

// ExampleNew emulates a persistent-atomic register over five simulated
// crash-recovery processes: a write at one process is read at another, the
// writer crashes and recovers, and the recorded history is verified.
func ExampleNew() {
	c, err := recmem.New(5, recmem.PersistentAtomic)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	x := c.Process(0).Register("x")
	if err := x.Write(ctx, []byte("hello")); err != nil {
		log.Fatal(err)
	}
	val, err := c.Process(3).Register("x").Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s\n", val)

	_ = c.Process(0).Crash(ctx)
	if err := c.Process(0).Recover(ctx); err != nil {
		log.Fatal(err)
	}
	val, err = x.Read(ctx) // the handle survives the crash
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %s\n", val)

	fmt.Println("verified:", c.Verify() == nil)
	// Output:
	// read: hello
	// after recovery: hello
	// verified: true
}

// ExampleProcess_Register shows the first-class handle API: the register's
// dispatch resolution happens once at Register, per-operation options
// capture the cost accounting, and the same handle pipelines asynchronous
// submissions.
func ExampleProcess_Register() {
	c, err := recmem.New(3, recmem.PersistentAtomic)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	reg := c.Process(0).Register("counter")

	// Synchronous write with cost capture: the persistent write uses
	// exactly 2 causal logs (the optimum of the paper's Theorem 1).
	var op recmem.OpID
	if err := reg.Write(ctx, []byte("one"), recmem.WithCost(&op)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("write causal logs:", c.CostOf(op).CausalLogs)

	// Asynchronous submissions through the same handle coalesce into
	// shared quorum rounds; the futures complete as the rounds commit.
	f1, _ := reg.SubmitWrite([]byte("two"))
	f2, _ := reg.SubmitWrite([]byte("three"))
	if err := f1.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	if err := f2.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	val, err := reg.Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %s\n", val)
	// Output:
	// write causal logs: 2
	// final: three
}

// ExampleWithConsistency selects the §VI safe read on the single-writer
// regular register: served by the writer alone (2 messages instead of a
// majority fan-out), still log-free, and available only while the writer
// is up.
func ExampleWithConsistency() {
	c, err := recmem.New(5, recmem.RegularRegister)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Process(0).Register("feed").Write(ctx, []byte("reading-42")); err != nil {
		log.Fatal(err)
	}
	val, err := c.Process(3).Register("feed").Read(ctx,
		recmem.WithConsistency(recmem.Safety))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safe read: %s\n", val)
	// Output:
	// safe read: reading-42
}

// ExampleClient writes an application against the backend-agnostic Client
// interface: here it runs on a simulated process, but passing a
// remote.Dial'ed connection instead pointing at a live recmem-node mesh
// runs the identical code over TCP.
func ExampleClient() {
	c, err := recmem.New(3, recmem.PersistentAtomic)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	put := func(client recmem.Client, key, value string) error {
		return client.Register(key).Write(context.Background(), []byte(value))
	}
	get := func(client recmem.Client, key string) (string, error) {
		v, err := client.Register(key).Read(context.Background())
		return string(v), err
	}

	var client recmem.Client = c.Process(1)
	if err := put(client, "user:7", "ada"); err != nil {
		log.Fatal(err)
	}
	name, err := get(client, "user:7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user:7 =", name)
	// Output:
	// user:7 = ada
}
