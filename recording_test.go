package recmem_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"recmem"
)

// TestRecordingOverSimVerifies is the recording pipeline's cross-check: the
// same run is observed twice — by the simulator's global history recorder
// and by per-client Recording wrappers merged through the group — and both
// observers must pass verification.
func TestRecordingOverSimVerifies(t *testing.T) {
	c, err := recmem.New(3, recmem.PersistentAtomic)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	g := recmem.NewRecordingGroup()
	clients := make([]recmem.Client, 3)
	for i := range clients {
		clients[i] = g.Wrap(c.Process(i))
	}

	x := clients[0].Register("x")
	var wit recmem.Tag
	if err := x.Write(ctx, []byte("v1"), recmem.WithWitness(&wit)); err != nil {
		t.Fatal(err)
	}
	if wit.IsZero() {
		t.Fatal("write reported no tag witness")
	}
	var rwit recmem.Tag
	got, err := clients[1].Register("x").Read(ctx, recmem.WithWitness(&rwit))
	if err != nil || string(got) != "v1" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if rwit != wit {
		t.Fatalf("read witness %v, want the write's %v", rwit, wit)
	}

	// Crash/recover through the wrappers; an op against the downed process
	// is rejected and must not pollute the history.
	if err := clients[2].Crash(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := clients[2].Register("x").Read(ctx); !errors.Is(err, recmem.ErrDown) {
		t.Fatalf("read on downed process = %v", err)
	}
	if err := clients[2].Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clients[0].Register("x").Write(ctx, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err = clients[2].Register("x").Read(ctx)
	if err != nil || string(got) != "v2" {
		t.Fatalf("post-recovery read = %q, %v", got, err)
	}

	// Async submissions ride one-shot virtual clients, like the simulator's.
	f1, err := clients[0].Register("y").SubmitWrite([]byte("a1"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := clients[0].Register("y").SubmitWrite([]byte("a2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Completed app-level futures surface the epoch and tag witnesses.
	if inc, ok := f1.Incarnation(); !ok || inc == 0 {
		t.Fatalf("future Incarnation = %d, %v", inc, ok)
	}
	if _, ok := f2.TagWitness(); !ok {
		t.Fatal("completed write future reported no tag witness")
	}
	rf, err := clients[1].Register("y").SubmitRead()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := rf.Wait(ctx); err != nil || (string(v) != "a1" && string(v) != "a2") {
		t.Fatalf("async read = %q, %v", v, err)
	}

	// Both observers agree the run was atomic.
	if err := c.Verify(); err != nil {
		t.Fatalf("global observer: %v", err)
	}
	if err := g.Verify(recmem.PersistentAtomicity); err != nil {
		t.Fatalf("merged recording: %v", err)
	}
	merged, err := g.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 {
		t.Fatal("merged history is empty")
	}
	if hs := g.Histories(); len(hs) != 3 {
		t.Fatalf("Histories returned %d, want 3", len(hs))
	}
}

// TestRecordingWrapIdempotent: a workload driver and a fault injector
// wrapping the same client share one recording.
func TestRecordingWrapIdempotent(t *testing.T) {
	c, err := recmem.New(1, recmem.CrashStop)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := recmem.NewRecordingGroup()
	p := c.Process(0)
	r1 := g.Wrap(p)
	r2 := g.Wrap(p)
	if r1 != r2 {
		t.Fatal("wrapping the same client twice made two recordings")
	}
	if g.Wrap(r1) != r1 {
		t.Fatal("wrapping a recording of the group must return it unchanged")
	}
	if r1.Proc() != 0 || r1.Unwrap() != Client(p) {
		t.Fatalf("Proc/Unwrap = %d, %v", r1.Proc(), r1.Unwrap())
	}
}

// Client is re-exported for the comparison above.
type Client = recmem.Client

// TestRecordingContinuation: a continuation group carries the previous
// round's committed state as seed anchors, hands back the pre-seeded
// wrappers on Wrap, and verifies the next round's reads against the
// previous round's writers — a round-1 value read in round 2 must check
// out, which against an amnesiac fresh group it could not (the read would
// return a value no recorded writer wrote).
func TestRecordingContinuation(t *testing.T) {
	c, err := recmem.New(3, recmem.PersistentAtomic)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	g := recmem.NewRecordingGroup()
	clients := make([]recmem.Client, 3)
	for i := range clients {
		clients[i] = g.Wrap(c.Process(i))
	}
	if err := clients[0].Register("x").Write(ctx, []byte("round1")); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(recmem.PersistentAtomicity); err != nil {
		t.Fatalf("round 1: %v", err)
	}

	next := g.Continuation()
	for i := range clients {
		r := next.Wrap(c.Process(i))
		if r == clients[i] {
			t.Fatal("continuation reused the previous round's recording")
		}
		clients[i] = r
	}
	// Round 2 opens with a read of round 1's value — no write this round.
	if v, err := clients[1].Register("x").Read(ctx); err != nil || string(v) != "round1" {
		t.Fatalf("round-2 read = %q, %v", v, err)
	}
	if err := next.Verify(recmem.PersistentAtomicity); err != nil {
		t.Fatalf("round 2 with continuation: %v", err)
	}

	// The amnesiac control: a fresh group recording the same read has no
	// writer for the value and must fail verification.
	fresh := recmem.NewRecordingGroup()
	blind := fresh.Wrap(c.Process(1))
	if v, err := blind.Register("x").Read(ctx); err != nil || string(v) != "round1" {
		t.Fatalf("blind read = %q, %v", v, err)
	}
	if err := fresh.Verify(recmem.PersistentAtomicity); err == nil {
		t.Fatal("amnesiac group verified a read with no recorded writer")
	}
}

// TestExpiredDeadlineFailsFast: an already-expired WithDeadline must fail
// with DeadlineExceeded instead of silently running unbounded (regression:
// opCtx used `> 0`, turning negative deadlines into no deadline).
func TestExpiredDeadlineFailsFast(t *testing.T) {
	c, err := recmem.New(3, recmem.PersistentAtomic)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	err = c.Process(0).Register("x").Write(ctx, []byte("v"), recmem.WithDeadline(-time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline write = %v, want DeadlineExceeded", err)
	}
	_, err = c.Process(0).Register("x").Read(ctx, recmem.WithDeadline(-time.Hour))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline read = %v, want DeadlineExceeded", err)
	}
}
