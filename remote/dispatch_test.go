package remote

// Regression tests for the callback-driven dispatch path (docs/adr/0010):
// the server must not spawn a goroutine per operation, and the dispatch
// counters must account for every operation's completion.

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"recmem"
	"recmem/internal/core"
)

// goroutineBudget is the per-connection allowance on top of the pre-burst
// baseline: the dialed connection's own read/write goroutines, the server's
// per-connection pair, and scheduler slack. The point of the bound is the
// asymptote — 1000 in-flight ops must not mean hundreds of awaiting
// goroutines, which is exactly what the pre-callback dispatch path did.
const goroutineBudget = 24

// TestDispatchGoroutineStability pins the tentpole's structural claim: a
// 1k-op pipelined burst leaves the process goroutine count flat, because
// dispatched operations ride completion callbacks instead of parked
// awaiting goroutines.
func TestDispatchGoroutineStability(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	c := mesh.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	regs := make([]*recmem.Register, 4)
	for i := range regs {
		regs[i] = c.Register(fmt.Sprintf("gs%d", i))
	}
	// Warm the path (dial handshake, first dispatchers, pools) before
	// taking the baseline.
	for i := range regs {
		if err := regs[i].Write(ctx, []byte("warm")); err != nil {
			t.Fatal(err)
		}
	}
	baseline := runtime.NumGoroutine()

	const ops = 1000
	val := bytes.Repeat([]byte("g"), 32)
	futs := make([]*recmem.WriteFuture, 0, ops)
	for i := 0; i < ops; i++ {
		f, err := regs[i%len(regs)].SubmitWrite(val)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	// Sample while the burst is in flight: this is where the old
	// goroutine-per-op dispatch exploded.
	inflight := runtime.NumGoroutine()
	for _, f := range futs {
		if err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	settled := runtime.NumGoroutine()

	if inflight > baseline+goroutineBudget {
		t.Errorf("goroutines mid-burst: %d, baseline %d — dispatch is spawning per-op goroutines (budget %d)",
			inflight, baseline, goroutineBudget)
	}
	if settled > baseline+goroutineBudget {
		t.Errorf("goroutines after burst: %d, baseline %d (budget %d)", settled, baseline, goroutineBudget)
	}
}

// TestDispatchStats checks the dispatch counters end to end: every
// submitted op completes through its callback, nothing stays in flight,
// and the happy path never burns a deadline.
func TestDispatchStats(t *testing.T) {
	mesh := startMesh(t, 3, core.Persistent)
	c := mesh.dial(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	srv := mesh.servers[0]
	_, before, _ := srv.DispatchStats()

	reg := c.Register("ds0")
	const ops = 128
	futs := make([]*recmem.WriteFuture, 0, ops)
	for i := 0; i < ops; i++ {
		f, err := reg.SubmitWrite([]byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if err := f.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Read(ctx); err != nil {
		t.Fatal(err)
	}

	// All replies are out; in-flight must drain to zero promptly (the
	// callback runs before the reply is enqueued, but entry recycling is
	// what decrements the gauge — poll briefly).
	deadline := time.Now().Add(5 * time.Second)
	for {
		inflight, completions, deadlines := srv.DispatchStats()
		if inflight == 0 && completions >= before+ops+1 {
			if deadlines != 0 {
				t.Fatalf("deadline drops on the happy path: %d", deadlines)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatch stats never settled: inflight=%d completions=%d (want 0, ≥%d)",
				inflight, completions, before+ops+1)
		}
		time.Sleep(time.Millisecond)
	}
}
