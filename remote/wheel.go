package remote

import (
	"sync"
	"time"
)

// This file implements the server's single deadline timing wheel
// (docs/adr/0010). Before the callback-completion refactor every dispatched
// write/read armed its own timer (pooled, but still one runtime timer per
// in-flight op) inside its own awaiting goroutine. The wheel replaces all of
// them with ONE ticker goroutine per server: entries hash into coarse slots
// by expiry tick, an intrusive doubly-linked list per slot makes both expiry
// and early removal O(1), and completion (the overwhelmingly common case)
// unlinks the entry immediately — an entry's lifetime is its operation's,
// not its deadline's. Coarse ticks are fine here: a deadline only abandons
// the server-side wait, it never cancels the operation.

// wheelTick is the expiry resolution; wheelSlots the ring size. One lap is
// wheelTick*wheelSlots (~5s); longer deadlines (the 1-minute default) ride
// the lap counter.
const (
	wheelTick  = 20 * time.Millisecond
	wheelSlots = 256
)

// opWheel is the per-server deadline wheel. All linkage fields of the
// entries it holds are guarded by mu.
type opWheel struct {
	mu      sync.Mutex
	slots   [wheelSlots]*opEntry
	pos     int
	stopped bool

	ticker *time.Ticker
	done   chan struct{}
	wg     sync.WaitGroup
}

func newOpWheel() *opWheel {
	w := &opWheel{ticker: time.NewTicker(wheelTick), done: make(chan struct{})}
	w.wg.Add(1)
	go w.run()
	return w
}

// add schedules e to expire after d (rounded up to the next tick). It
// reports false — and schedules nothing — once the wheel is stopped.
func (w *opWheel) add(e *opEntry, d time.Duration) bool {
	ticks := int(d/wheelTick) + 1
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return false
	}
	slot := (w.pos + ticks) % wheelSlots
	e.laps = ticks / wheelSlots
	e.slot = slot
	e.inWheel = true
	e.prev = nil
	e.next = w.slots[slot]
	if e.next != nil {
		e.next.prev = e
	}
	w.slots[slot] = e
	w.mu.Unlock()
	return true
}

// remove unlinks e if the wheel still holds it, reporting whether it did —
// the caller that sees true has taken over the wheel's reference on e.
func (w *opWheel) remove(e *opEntry) bool {
	w.mu.Lock()
	ok := e.inWheel
	if ok {
		w.unlink(e)
	}
	w.mu.Unlock()
	return ok
}

// unlink detaches e from its slot list. Caller holds mu.
func (w *opWheel) unlink(e *opEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		w.slots[e.slot] = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.next, e.prev = nil, nil
	e.inWheel = false
}

// run advances the wheel one slot per tick, expiring the entries whose laps
// ran out. Entries are unlinked under the lock and expired outside it (an
// expiry replies through the connection queue).
func (w *opWheel) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.ticker.C:
			var expired *opEntry
			w.mu.Lock()
			w.pos = (w.pos + 1) % wheelSlots
			for e := w.slots[w.pos]; e != nil; {
				next := e.next
				if e.laps > 0 {
					e.laps--
				} else {
					w.unlink(e)
					e.next = expired // chain through the (now free) link
					expired = e
				}
				e = next
			}
			w.mu.Unlock()
			for e := expired; e != nil; {
				next := e.next
				e.next = nil
				e.expire()
				e = next
			}
		case <-w.done:
			return
		}
	}
}

// stop halts the ticker and drops the wheel's reference on every remaining
// entry without replying (stop runs during server Close; the connections are
// gone). Late completions still find a working remove().
func (w *opWheel) stop() {
	close(w.done)
	w.ticker.Stop()
	w.wg.Wait()
	var orphans *opEntry
	w.mu.Lock()
	w.stopped = true
	for i := range w.slots {
		for e := w.slots[i]; e != nil; {
			next := e.next
			w.unlink(e)
			e.next = orphans
			orphans = e
			e = next
		}
	}
	w.mu.Unlock()
	for e := orphans; e != nil; {
		next := e.next
		e.next = nil
		e.dropRef()
		e = next
	}
}
