package remote

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"recmem/internal/core"
	"recmem/internal/wire"
)

// ServerOptions tunes a control-port server.
type ServerOptions struct {
	// OpTimeout bounds a single operation's server-side execution when the
	// request carries no deadline of its own (default 1 minute). Without a
	// bound, an operation invoked while a majority is unreachable would pin
	// its response goroutine forever.
	OpTimeout time.Duration
	// StaleReads makes the server DISHONEST: every read of a register is
	// answered with the first reply the server ever produced for it — value
	// and tag witness frozen forever — while the emulation underneath keeps
	// running correctly. It exists to prove the verification pipeline works:
	// a mesh containing one stale node must fail `recmem-torture -remote
	// -verify` (the merged history shows reads returning superseded values).
	// Never enable it outside fault-injection testing.
	StaleReads bool
	// FreezeEpoch makes the server DISHONEST about its incarnation epoch:
	// every reply (write, read and info) reports the epoch the node had when
	// Serve started, forever — as if the node never died — while crashes and
	// recoveries underneath keep happening. It is the negative control for
	// the epoch-based crash inference (docs/adr/0006): a mesh containing one
	// frozen node must fail `recmem-torture -remote -verify` once faults are
	// injected, because the recorder sees a recorded crash whose epoch never
	// advances past the pre-crash floor. Never enable it outside
	// fault-injection testing.
	FreezeEpoch bool
}

// maxBurstBytes bounds the writer's reply-coalescing buffer: a burst
// reaching it flushes immediately, so group-commit never trades one syscall
// for unbounded staging memory.
const maxBurstBytes = 256 << 10

func (o ServerOptions) withDefaults() ServerOptions {
	if o.OpTimeout <= 0 {
		o.OpTimeout = time.Minute
	}
	return o
}

// Server serves the binary control protocol for one node: the recmem-node
// control port. Every write and read is dispatched through the node's
// batching engine (SubmitWrite/SubmitRead), so the operations of all
// connected clients — and the pipelined operations of a single client —
// coalesce and pipeline exactly like the simulated cluster's asynchronous
// API: concurrent writes to one register share a quorum round and a causal
// log chain, different registers' rounds overlap.
type Server struct {
	node *core.Node
	ln   net.Listener
	opts ServerOptions

	// refs caches the per-register handles, so repeated operations on one
	// register skip the node's per-op resolution — the server-side
	// equivalent of the client API's Register handles.
	refMu sync.Mutex
	refs  map[string]*core.RegisterRef

	// stale pins the first read reply per register under StaleReads.
	staleMu sync.Mutex
	stale   map[string]response

	// frozenEpoch is the epoch reported forever under FreezeEpoch, captured
	// once at Serve time.
	frozenEpoch uint64

	// writeBursts counts the gathered socket writes the connection writers
	// issued; writeFrames the response frames those writes carried. The
	// frames/bursts ratio is the reply group-commit amortization — the
	// socket-side analogue of the WAL's records-per-fsync (docs/adr/0007).
	writeBursts atomic.Uint64
	writeFrames atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// WriterStats reports the reply group-commit counters across all
// connections: bursts is the number of gathered socket writes, frames the
// response frames they carried. frames ≥ bursts always; under pipelined
// load frames/bursts grows with the burst size, under one-at-a-time load it
// stays 1.
func (s *Server) WriterStats() (bursts, frames uint64) {
	return s.writeBursts.Load(), s.writeFrames.Load()
}

// Serve starts serving the control protocol on ln for node. It returns
// immediately; use Done to wait and Close to stop. The server does not own
// the node: closing the server leaves the node running.
func Serve(ln net.Listener, node *core.Node, opts ServerOptions) *Server {
	s := &Server{
		node:  node,
		ln:    ln,
		opts:  opts.withDefaults(),
		refs:  make(map[string]*core.RegisterRef),
		stale: make(map[string]response),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	if s.opts.FreezeEpoch {
		s.frozenEpoch = node.IncarnationEpoch()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Done returns a channel closed when the server has stopped accepting.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close stops the server and closes every client connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// ref resolves the cached register handle.
func (s *Server) ref(reg string) *core.RegisterRef {
	s.refMu.Lock()
	defer s.refMu.Unlock()
	r := s.refs[reg]
	if r == nil {
		r = s.node.RegisterRef(reg)
		s.refs[reg] = r
	}
	return r
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer close(s.done)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn runs one connection: a read loop decoding and dispatching
// requests, and a single writer goroutine serializing response frames.
// Operations are dispatched asynchronously and respond through the writer
// as they complete — out of order, correlated by request id — so the read
// loop never blocks on an operation and the connection pipelines.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	resp := make(chan response, 128)
	connDone := make(chan struct{})
	writerDone := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		defer close(writerDone)
		s.writeReplies(conn, resp, connDone)
	}()
	// reply must also select on writerDone: when a stalled client wedges the
	// writer (full resp channel, blocked writeFrame) and the connection then
	// dies, the writer exits on the write error — without the writerDone arm
	// a reply() caller (the read loop included) would block forever on the
	// full channel, leaking the connection goroutines and hanging Close.
	reply := func(r response) {
		select {
		case resp <- r:
		case <-connDone:
		case <-writerDone:
		}
	}

	// The read loop reuses one frame buffer across requests (the decoder
	// copies the value out, the intern table owns each register name once),
	// so a busy connection's steady-state receive path allocates only the
	// value copy that crosses into the engine.
	rbuf := make([]byte, 0, 4096)
	names := make(map[string]string)
	for {
		body, next, err := readFrameReuse(conn, rbuf)
		rbuf = next
		if err != nil {
			break
		}
		req, err := decodeRequestReuse(body, names)
		if err != nil {
			// Answer decodable-but-unsupported requests (bad version, bad
			// kind) with an error response; drop the connection only on
			// frames too broken to carry an id.
			if len(body) >= 10 {
				reply(response{Kind: reqKind(body[1] &^ byte(respFlag)), ID: binary.BigEndian.Uint64(body[2:]),
					Code: codeBadRequest, Msg: err.Error()})
				continue
			}
			break
		}
		s.dispatch(req, reply)
	}
	close(connDone)
	writerWG.Wait()
}

// writeReplies is one connection's writer: it group-commits replies onto
// the socket. Every wakeup drains ALL queued responses in one gulp, encodes
// them back to back into one recycled buffer (length prefixes reserved in
// place), and issues ONE gathered write — one syscall per burst of
// out-of-order replies instead of one per reply, mirroring the WAL's fsync
// group-commit. Bursts flush early past maxBurstBytes so a pileup of
// maximal read replies cannot balloon the staging buffer. It returns when
// connDone closes or a write fails (closing conn to unblock the read loop).
func (s *Server) writeReplies(conn net.Conn, resp <-chan response, connDone <-chan struct{}) {
	wbuf := getFrame()
	defer putFrame(wbuf)
	for {
		select {
		case r := <-resp:
			frame := wbuf.b[:0]
			frames := uint64(0)
			for {
				var err error
				frame, err = appendResponseFrame(frame, r)
				if err != nil {
					// Unencodable response (oversized value): answer with
					// an error response instead; this encode cannot fail.
					frame, _ = appendResponseFrame(frame, response{
						Kind: r.Kind, ID: r.ID, Code: codeGeneric, Msg: err.Error(),
					})
				}
				frames++
				if len(frame) >= maxBurstBytes {
					break
				}
				select {
				case r = <-resp:
					continue
				default:
				}
				break
			}
			wbuf.b = frame
			s.writeBursts.Add(1)
			s.writeFrames.Add(frames)
			if _, err := conn.Write(frame); err != nil {
				_ = conn.Close() // unblocks the read loop
				return
			}
		case <-connDone:
			return
		}
	}
}

// dispatch executes one request, replying asynchronously for operations
// that block.
func (s *Server) dispatch(req request, reply func(response)) {
	switch req.Kind {
	case reqPing:
		reply(response{Kind: reqPing, ID: req.ID})

	case reqInfo:
		reply(response{Kind: reqInfo, ID: req.ID,
			NodeID: s.node.ID(), N: int32(s.node.N()), Quorum: int32(s.node.Quorum()),
			Algorithm: uint8(s.node.Algorithm()),
			Epoch:     s.epoch(s.node.IncarnationEpoch())})

	case reqCrash:
		if !s.node.Crash(nil) {
			reply(errResponse(req, core.ErrDown))
			return
		}
		reply(response{Kind: reqCrash, ID: req.ID})

	case reqRecover:
		go func() {
			ctx, cancel := s.opCtx(req)
			defer cancel()
			start := time.Now()
			if err := s.node.Recover(ctx, nil, nil); err != nil {
				reply(errResponse(req, err))
				return
			}
			reply(response{Kind: reqRecover, ID: req.ID,
				LatencyUS: uint64(time.Since(start).Microseconds())})
		}()

	case reqWrite:
		start := time.Now()
		fut, err := s.ref(req.Reg).SubmitWrite(req.Value, core.OpObserver{})
		if err != nil {
			reply(errResponse(req, err))
			return
		}
		go func() {
			if _, err := s.await(req, fut); err != nil {
				reply(errResponse(req, err))
				return
			}
			wit, _ := fut.TagWitness()
			inc, _ := fut.Incarnation()
			reply(response{Kind: reqWrite, ID: req.ID, Op: fut.Op(),
				LatencyUS: uint64(time.Since(start).Microseconds()), Tag: wit,
				Epoch: s.epoch(inc)})
		}()

	case reqRead:
		if req.Consistency > uint8(core.ReadSafe) {
			reply(response{Kind: req.Kind, ID: req.ID, Code: codeBadRequest,
				Msg: fmt.Sprintf("unknown read-consistency byte %d", req.Consistency)})
			return
		}
		fut, err := s.ref(req.Reg).SubmitRead(core.ReadMode(req.Consistency), core.OpObserver{})
		if err != nil {
			reply(errResponse(req, err))
			return
		}
		go func() {
			val, err := s.await(req, fut)
			if err != nil {
				reply(errResponse(req, err))
				return
			}
			wit, _ := fut.TagWitness()
			inc, _ := fut.Incarnation()
			resp := response{Kind: reqRead, ID: req.ID, Op: fut.Op(),
				Present: val != nil, Value: val, Tag: wit, Epoch: s.epoch(inc)}
			if s.opts.StaleReads {
				resp = s.staleize(req.Reg, resp)
			}
			reply(resp)
		}()

	default:
		reply(response{Kind: req.Kind, ID: req.ID, Code: codeBadRequest,
			Msg: "unknown request kind"})
	}
}

// epoch resolves the incarnation epoch a reply reports: the honest one, or
// the Serve-time snapshot under FreezeEpoch.
func (s *Server) epoch(honest uint64) uint64 {
	if s.opts.FreezeEpoch {
		return s.frozenEpoch
	}
	return honest
}

// staleize implements ServerOptions.StaleReads: the first read reply ever
// produced for a register is pinned (value, presence and tag witness) and
// served for every later read of it, with only the correlation fields
// (request id, op id) kept fresh.
func (s *Server) staleize(reg string, fresh response) response {
	s.staleMu.Lock()
	defer s.staleMu.Unlock()
	pinned, ok := s.stale[reg]
	if !ok {
		s.stale[reg] = fresh
		return fresh
	}
	pinned.ID = fresh.ID
	pinned.Op = fresh.Op
	return pinned
}

// await blocks on fut with the request's deadline (or the server default)
// enforced by a pooled timer — waiting out an operation costs no context or
// timer allocation in steady state, unlike the context.WithTimeout per
// operation it replaced. The timeout abandons only the server-side wait,
// exactly as the old context expiry did; the engine still runs the
// operation to completion.
func (s *Server) await(req request, fut *core.Future) ([]byte, error) {
	d := s.opts.OpTimeout
	if req.DeadlineUS > 0 {
		d = time.Duration(req.DeadlineUS) * time.Microsecond
	}
	t := getTimer(d)
	defer putTimer(t)
	select {
	case <-fut.Done():
		return fut.Wait(context.Background())
	case <-t.C:
		return nil, context.DeadlineExceeded
	}
}

// opCtx builds the operation context from the request deadline or the
// server default; used by the recovery path, whose context really does
// cancel server-side work.
func (s *Server) opCtx(req request) (context.Context, context.CancelFunc) {
	d := s.opts.OpTimeout
	if req.DeadlineUS > 0 {
		d = time.Duration(req.DeadlineUS) * time.Microsecond
	}
	return context.WithTimeout(context.Background(), d)
}

// errResponse maps an operation error to its wire code.
func errResponse(req request, err error) response {
	code := codeGeneric
	switch {
	case errors.Is(err, core.ErrCrashed):
		code = codeCrashed
	case errors.Is(err, core.ErrDown):
		code = codeDown
	case errors.Is(err, core.ErrNotDown):
		code = codeNotDown
	case errors.Is(err, core.ErrCannotRecover):
		code = codeCannotRecover
	case errors.Is(err, core.ErrNotWriter):
		code = codeNotWriter
	case errors.Is(err, wire.ErrValueTooLarge):
		code = codeValueTooLarge
	case errors.Is(err, core.ErrBadConsistency):
		code = codeBadConsistency
	case errors.Is(err, context.DeadlineExceeded):
		code = codeDeadline
	}
	return response{Kind: req.Kind, ID: req.ID, Code: code, Msg: err.Error()}
}
