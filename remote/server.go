package remote

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"recmem/internal/core"
	"recmem/internal/wire"
)

// ServerOptions tunes a control-port server.
type ServerOptions struct {
	// OpTimeout bounds a single operation's server-side execution when the
	// request carries no deadline of its own (default 1 minute). Without a
	// bound, an operation invoked while a majority is unreachable would pin
	// its response goroutine forever.
	OpTimeout time.Duration
	// StaleReads makes the server DISHONEST: every read of a register is
	// answered with the first reply the server ever produced for it — value
	// and tag witness frozen forever — while the emulation underneath keeps
	// running correctly. It exists to prove the verification pipeline works:
	// a mesh containing one stale node must fail `recmem-torture -remote
	// -verify` (the merged history shows reads returning superseded values).
	// Never enable it outside fault-injection testing.
	StaleReads bool
	// FreezeEpoch makes the server DISHONEST about its incarnation epoch:
	// every reply (write, read and info) reports the epoch the node had when
	// Serve started, forever — as if the node never died — while crashes and
	// recoveries underneath keep happening. It is the negative control for
	// the epoch-based crash inference (docs/adr/0006): a mesh containing one
	// frozen node must fail `recmem-torture -remote -verify` once faults are
	// injected, because the recorder sees a recorded crash whose epoch never
	// advances past the pre-crash floor. Never enable it outside
	// fault-injection testing.
	FreezeEpoch bool
}

// maxBurstBytes bounds the writer's reply-coalescing buffer: a burst
// reaching it flushes immediately, so group-commit never trades one syscall
// for unbounded staging memory.
const maxBurstBytes = 256 << 10

func (o ServerOptions) withDefaults() ServerOptions {
	if o.OpTimeout <= 0 {
		o.OpTimeout = time.Minute
	}
	return o
}

// Server serves the binary control protocol for one node: the recmem-node
// control port. Every write and read is dispatched through the node's
// batching engine (SubmitWrite/SubmitRead), so the operations of all
// connected clients — and the pipelined operations of a single client —
// coalesce and pipeline exactly like the simulated cluster's asynchronous
// API: concurrent writes to one register share a quorum round and a causal
// log chain, different registers' rounds overlap.
type Server struct {
	node *core.Node
	ln   net.Listener
	opts ServerOptions

	// refs caches the per-register handles, so repeated operations on one
	// register skip the node's per-op resolution — the server-side
	// equivalent of the client API's Register handles.
	refMu sync.Mutex
	refs  map[string]*core.RegisterRef

	// stale pins the first read reply per register under StaleReads.
	staleMu sync.Mutex
	stale   map[string]response

	// frozenEpoch is the epoch reported forever under FreezeEpoch, captured
	// once at Serve time.
	frozenEpoch uint64

	// writeBursts counts the gathered socket writes the connection writers
	// issued; writeFrames the response frames those writes carried. The
	// frames/bursts ratio is the reply group-commit amortization — the
	// socket-side analogue of the WAL's records-per-fsync (docs/adr/0007).
	writeBursts atomic.Uint64
	writeFrames atomic.Uint64

	// wheel is the single per-server deadline wheel; the dispatch counters
	// below observe the callback completion path (docs/adr/0010):
	// inflight is the number of write/read ops dispatched into the engine
	// whose entries have not been recycled yet, cbCompletions the replies
	// delivered by the completion callback, deadlineDrops the server-side
	// waits abandoned by the wheel.
	wheel         *opWheel
	inflight      atomic.Int64
	cbCompletions atomic.Uint64
	deadlineDrops atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// WriterStats reports the reply group-commit counters across all
// connections: bursts is the number of gathered socket writes, frames the
// response frames they carried. frames ≥ bursts always; under pipelined
// load frames/bursts grows with the burst size, under one-at-a-time load it
// stays 1.
func (s *Server) WriterStats() (bursts, frames uint64) {
	return s.writeBursts.Load(), s.writeFrames.Load()
}

// DispatchStats reports the callback-completion counters (docs/adr/0010):
// inflight is the number of dispatched write/read operations not yet
// recycled, completions the replies delivered by the engine-side completion
// callback, deadlines the server-side waits the timing wheel abandoned.
// completions + inflight covers every write/read ever dispatched; a steady
// inflight under sustained load is the observable proof that dispatch is
// goroutine-free AND leak-free.
func (s *Server) DispatchStats() (inflight int64, completions, deadlines uint64) {
	return s.inflight.Load(), s.cbCompletions.Load(), s.deadlineDrops.Load()
}

// Serve starts serving the control protocol on ln for node. It returns
// immediately; use Done to wait and Close to stop. The server does not own
// the node: closing the server leaves the node running.
func Serve(ln net.Listener, node *core.Node, opts ServerOptions) *Server {
	s := &Server{
		node:  node,
		ln:    ln,
		opts:  opts.withDefaults(),
		refs:  make(map[string]*core.RegisterRef),
		stale: make(map[string]response),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
		wheel: newOpWheel(),
	}
	if s.opts.FreezeEpoch {
		s.frozenEpoch = node.IncarnationEpoch()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Done returns a channel closed when the server has stopped accepting.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close stops the server and closes every client connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	s.wheel.stop()
	return err
}

// ref resolves the cached register handle.
func (s *Server) ref(reg string) *core.RegisterRef {
	s.refMu.Lock()
	defer s.refMu.Unlock()
	r := s.refs[reg]
	if r == nil {
		r = s.node.RegisterRef(reg)
		s.refs[reg] = r
	}
	return r
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	defer close(s.done)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// srvConn is one connection's server-side state: the socket plus the reply
// queue its writer goroutine drains. The queue is a mutex-guarded slice with
// a capacity-1 wake channel rather than a buffered channel on purpose:
// replies are now enqueued by the engine's completion callback
// (docs/adr/0010), which runs inline in a dispatch loop and must NEVER block
// on a slow client — enqueueing is always non-blocking, and the queue's
// growth is bounded by the client's own in-flight ops.
type srvConn struct {
	s    *Server
	conn net.Conn

	mu     sync.Mutex
	queue  []response
	spare  []response // recycled drain buffer, swapped with queue by the writer
	closed bool       // writer gone; late replies are dropped
	wake   chan struct{}
}

// reply enqueues a response for the connection writer. Never blocks; replies
// after the writer exited (dead connection) are dropped, exactly as the
// socket would have dropped them.
func (c *srvConn) reply(r response) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.queue = append(c.queue, r)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// serveConn runs one connection: a read loop decoding and dispatching
// requests, and a single writer goroutine serializing response frames.
// Operations respond through the writer as they complete — out of order,
// correlated by request id — so the read loop never blocks on an operation
// and the connection pipelines. These two are the ONLY goroutines a
// connection costs: write/read dispatch registers a completion callback
// instead of spawning an awaiter (docs/adr/0010).
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	c := &srvConn{s: s, conn: conn, wake: make(chan struct{}, 1)}
	connDone := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writeLoop(connDone)
	}()

	// The read loop reuses one frame buffer across requests (the decoder
	// copies the value out, the intern table owns each register name once),
	// so a busy connection's steady-state receive path allocates only the
	// value copy that crosses into the engine.
	rbuf := make([]byte, 0, 4096)
	names := make(map[string]string)
	for {
		body, next, err := readFrameReuse(conn, rbuf)
		rbuf = next
		if err != nil {
			break
		}
		req, err := decodeRequestReuse(body, names)
		if err != nil {
			// Answer decodable-but-unsupported requests (bad version, bad
			// kind) with an error response; drop the connection only on
			// frames too broken to carry an id.
			if len(body) >= 10 {
				c.reply(response{Kind: reqKind(body[1] &^ byte(respFlag)), ID: binary.BigEndian.Uint64(body[2:]),
					Code: codeBadRequest, Msg: err.Error()})
				continue
			}
			break
		}
		s.dispatch(req, c)
	}
	close(connDone)
	writerWG.Wait()
}

// writeLoop is one connection's writer: it group-commits replies onto the
// socket. Every wakeup drains ALL queued responses in one gulp, encodes them
// back to back into one recycled buffer (length prefixes reserved in place),
// and issues ONE gathered write — one syscall per burst of out-of-order
// replies instead of one per reply, mirroring the WAL's fsync group-commit.
// Bursts flush early past maxBurstBytes so a pileup of maximal read replies
// cannot balloon the staging buffer. It returns when connDone closes or a
// write fails (closing conn to unblock the read loop); on exit it marks the
// connection closed so late completion callbacks drop their replies instead
// of growing a queue nobody drains.
func (c *srvConn) writeLoop(connDone <-chan struct{}) {
	defer func() {
		c.mu.Lock()
		c.closed = true
		c.queue, c.spare = nil, nil
		c.mu.Unlock()
	}()
	wbuf := getFrame()
	defer putFrame(wbuf)
	for {
		select {
		case <-c.wake:
		case <-connDone:
			return
		}
		for {
			c.mu.Lock()
			batch := c.queue
			c.queue = c.spare
			c.spare = nil
			c.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			frame := wbuf.b[:0]
			frames := uint64(0)
			for i := range batch {
				var err error
				frame, err = appendResponseFrame(frame, batch[i])
				if err != nil {
					// Unencodable response (oversized value): answer with
					// an error response instead; this encode cannot fail.
					frame, _ = appendResponseFrame(frame, response{
						Kind: batch[i].Kind, ID: batch[i].ID, Code: codeGeneric, Msg: err.Error(),
					})
				}
				frames++
				if len(frame) >= maxBurstBytes {
					c.s.writeBursts.Add(1)
					c.s.writeFrames.Add(frames)
					frames = 0
					if _, err := c.conn.Write(frame); err != nil {
						_ = c.conn.Close() // unblocks the read loop
						return
					}
					frame = frame[:0]
				}
			}
			wbuf.b = frame[:0]
			if len(frame) > 0 {
				c.s.writeBursts.Add(1)
				c.s.writeFrames.Add(frames)
				if _, err := c.conn.Write(frame); err != nil {
					_ = c.conn.Close() // unblocks the read loop
					return
				}
			}
			for i := range batch {
				batch[i] = response{} // drop value references before recycling
			}
			c.mu.Lock()
			if c.spare == nil {
				c.spare = batch[:0]
			}
			c.mu.Unlock()
		}
	}
}

// dispatch executes one request. Writes and reads respond asynchronously
// through a completion callback on the operation's future — no goroutine is
// spawned per op (docs/adr/0010); only the rare blocking recovery keeps its
// own goroutine.
func (s *Server) dispatch(req request, c *srvConn) {
	switch req.Kind {
	case reqPing:
		c.reply(response{Kind: reqPing, ID: req.ID})

	case reqInfo:
		c.reply(response{Kind: reqInfo, ID: req.ID,
			NodeID: s.node.ID(), N: int32(s.node.N()), Quorum: int32(s.node.Quorum()),
			Algorithm: uint8(s.node.Algorithm()),
			Epoch:     s.epoch(s.node.IncarnationEpoch())})

	case reqCrash:
		if !s.node.Crash(nil) {
			c.reply(errResponse(req, core.ErrDown))
			return
		}
		c.reply(response{Kind: reqCrash, ID: req.ID})

	case reqRecover:
		go func() {
			ctx, cancel := s.opCtx(req)
			defer cancel()
			start := time.Now()
			if err := s.node.Recover(ctx, nil, nil); err != nil {
				c.reply(errResponse(req, err))
				return
			}
			c.reply(response{Kind: reqRecover, ID: req.ID,
				LatencyUS: uint64(time.Since(start).Microseconds())})
		}()

	case reqWrite:
		// The decoded request value is already an owned copy; hand it to the
		// engine without the defensive re-copy SubmitWrite would make.
		fut, err := s.ref(req.Reg).SubmitWriteOwned(req.Value, core.OpObserver{})
		if err != nil {
			c.reply(errResponse(req, err))
			return
		}
		s.trackOp(c, req, fut)

	case reqRead:
		if req.Consistency > uint8(core.ReadSafe) {
			c.reply(response{Kind: req.Kind, ID: req.ID, Code: codeBadRequest,
				Msg: fmt.Sprintf("unknown read-consistency byte %d", req.Consistency)})
			return
		}
		fut, err := s.ref(req.Reg).SubmitRead(core.ReadMode(req.Consistency), core.OpObserver{})
		if err != nil {
			c.reply(errResponse(req, err))
			return
		}
		s.trackOp(c, req, fut)

	default:
		c.reply(response{Kind: req.Kind, ID: req.ID, Code: codeBadRequest,
			Msg: "unknown request kind"})
	}
}

// opEntry tracks one dispatched write/read from submission to reply: the
// completion callback's argument, the timing wheel's element, and the unit
// of recycling for both itself and the operation's future. Exactly two
// references exist while an op is in flight — the wheel's and the
// callback's; claimed decides (exactly once) whether the reply comes from
// the completion or from deadline expiry, and whoever drops the last
// reference releases the future and recycles the entry.
type opEntry struct {
	srv   *Server
	c     *srvConn
	fut   *core.Future
	kind  reqKind
	id    uint64
	reg   string // interned by the connection's decode table
	start time.Time

	claimed atomic.Bool
	refs    atomic.Int32

	// Wheel linkage; guarded by the wheel's mutex.
	next, prev *opEntry
	slot       int
	laps       int
	inWheel    bool
}

// entryPool recycles opEntries across operations.
var entryPool = sync.Pool{New: func() any { return &opEntry{} }}

// trackOp arms the deadline and registers the completion callback for a
// dispatched operation. This replaces the goroutine the old dispatch spawned
// per write/read: the reply is now built wherever the future completes (the
// engine's dispatch loop) and enqueued on the connection's writer, and the
// deadline lives in the server's single timing wheel.
func (s *Server) trackOp(c *srvConn, req request, fut *core.Future) {
	d := s.opts.OpTimeout
	if req.DeadlineUS > 0 {
		d = time.Duration(req.DeadlineUS) * time.Microsecond
	}
	e := entryPool.Get().(*opEntry)
	e.srv, e.c, e.fut = s, c, fut
	e.kind, e.id, e.reg = req.Kind, req.ID, req.Reg
	e.start = time.Now()
	s.inflight.Add(1)
	e.refs.Store(2) // before add: the wheel may expire the entry immediately
	if !s.wheel.add(e, d) {
		e.refs.Add(-1) // stopped wheel (server closing): callback ref only
	}
	fut.OnDone(opDone, e)
}

// opDone is the completion callback for every dispatched write/read: it runs
// on whatever goroutine completed the operation (the engine's register
// dispatcher), unlinks the deadline, builds the response and enqueues it on
// the connection writer — all non-blocking. If the deadline already claimed
// the op, the reply was a timeout and this late completion only recycles.
func opDone(fut *core.Future, arg any) {
	e := arg.(*opEntry)
	s := e.srv
	inWheel := s.wheel.remove(e)
	if e.claimed.CompareAndSwap(false, true) {
		s.cbCompletions.Add(1)
		val, err := fut.Wait(context.Background()) // done: returns immediately
		if err != nil {
			e.c.reply(errResponseAt(e.kind, e.id, err))
		} else {
			wit, _ := fut.TagWitness()
			inc, _ := fut.Incarnation()
			if e.kind == reqWrite {
				e.c.reply(response{Kind: reqWrite, ID: e.id, Op: fut.Op(),
					LatencyUS: uint64(time.Since(e.start).Microseconds()), Tag: wit,
					Epoch: s.epoch(inc)})
			} else {
				resp := response{Kind: reqRead, ID: e.id, Op: fut.Op(),
					Present: val != nil, Value: val, Tag: wit, Epoch: s.epoch(inc)}
				if s.opts.StaleReads {
					resp = s.staleize(e.reg, resp)
				}
				e.c.reply(resp)
			}
		}
	}
	if inWheel {
		// Completing first consumed the wheel's reference too.
		e.dropRef()
	}
	e.dropRef()
}

// expire is the wheel's expiry action: reply DeadlineExceeded if the op is
// still unclaimed, then drop the wheel's reference. The operation itself
// keeps running — a deadline only abandons the server-side wait — and its
// eventual completion recycles the entry.
func (e *opEntry) expire() {
	if e.claimed.CompareAndSwap(false, true) {
		e.srv.deadlineDrops.Add(1)
		e.c.reply(errResponseAt(e.kind, e.id, context.DeadlineExceeded))
	}
	e.dropRef()
}

// dropRef releases one of the entry's two references; the last one recycles
// the entry and — as the future's sole owner — the future itself.
func (e *opEntry) dropRef() {
	if e.refs.Add(-1) != 0 {
		return
	}
	e.srv.inflight.Add(-1)
	fut := e.fut
	*e = opEntry{}
	entryPool.Put(e)
	fut.Release()
}

// epoch resolves the incarnation epoch a reply reports: the honest one, or
// the Serve-time snapshot under FreezeEpoch.
func (s *Server) epoch(honest uint64) uint64 {
	if s.opts.FreezeEpoch {
		return s.frozenEpoch
	}
	return honest
}

// staleize implements ServerOptions.StaleReads: the first read reply ever
// produced for a register is pinned (value, presence and tag witness) and
// served for every later read of it, with only the correlation fields
// (request id, op id) kept fresh.
func (s *Server) staleize(reg string, fresh response) response {
	s.staleMu.Lock()
	defer s.staleMu.Unlock()
	pinned, ok := s.stale[reg]
	if !ok {
		s.stale[reg] = fresh
		return fresh
	}
	pinned.ID = fresh.ID
	pinned.Op = fresh.Op
	return pinned
}

// opCtx builds the operation context from the request deadline or the
// server default; used by the recovery path, whose context really does
// cancel server-side work.
func (s *Server) opCtx(req request) (context.Context, context.CancelFunc) {
	d := s.opts.OpTimeout
	if req.DeadlineUS > 0 {
		d = time.Duration(req.DeadlineUS) * time.Microsecond
	}
	return context.WithTimeout(context.Background(), d)
}

// errResponse maps an operation error to its wire code.
func errResponse(req request, err error) response {
	return errResponseAt(req.Kind, req.ID, err)
}

// errResponseAt is errResponse when only the request's kind and id survive
// (the completion callback's opEntry, not the decoded request).
func errResponseAt(kind reqKind, id uint64, err error) response {
	code := codeGeneric
	switch {
	case errors.Is(err, core.ErrCrashed):
		code = codeCrashed
	case errors.Is(err, core.ErrDown):
		code = codeDown
	case errors.Is(err, core.ErrNotDown):
		code = codeNotDown
	case errors.Is(err, core.ErrCannotRecover):
		code = codeCannotRecover
	case errors.Is(err, core.ErrNotWriter):
		code = codeNotWriter
	case errors.Is(err, wire.ErrValueTooLarge):
		code = codeValueTooLarge
	case errors.Is(err, core.ErrBadConsistency):
		code = codeBadConsistency
	case errors.Is(err, context.DeadlineExceeded):
		code = codeDeadline
	}
	return response{Kind: kind, ID: id, Code: code, Msg: err.Error()}
}
